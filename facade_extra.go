package lpce

import (
	"io"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/experiments"
	"github.com/lpce-db/lpce/internal/maintain"
	"github.com/lpce-db/lpce/internal/modelio"
	"github.com/lpce-db/lpce/internal/obs"
	"github.com/lpce-db/lpce/internal/sqlparse"
)

// SQL front end.

// ParseSQL compiles a COUNT(*) select-project-equijoin query from SQL text
// against the schema (the dialect of paper §3; see internal/sqlparse for
// the grammar).
func ParseSQL(schema *Schema, sql string) (*Query, error) {
	return sqlparse.Parse(schema, sql)
}

// Model persistence (self-describing files: architecture + weights).

// SaveModel writes a tree model to w.
func SaveModel(w io.Writer, m *TreeModel) error { return core.SaveTreeModel(w, m) }

// LoadModel reads a tree model written by SaveModel.
func LoadModel(r io.Reader) (*TreeModel, error) { return core.LoadTreeModel(r) }

// SaveRefiner writes a trained LPCE-R to w.
func SaveRefiner(w io.Writer, r *Refiner) error { return core.SaveRefiner(w, r) }

// LoadRefiner reads a refiner written by SaveRefiner; the encoder and
// database must match the training-time ones.
func LoadRefiner(r io.Reader, enc *Encoder, db *Database) (*Refiner, error) {
	return core.LoadRefiner(r, enc, db)
}

// Deployment maintenance (the paper's §3.2/§7.3 operational loop).

// DriftMonitor tracks live estimation quality against the training-time
// baseline and reports when re-training is warranted.
type DriftMonitor = maintain.Monitor

// NewDriftMonitor returns a monitor with the validation-time median
// q-error baseline, a drift factor, and a rolling window size.
func NewDriftMonitor(baselineMedianQ, factor float64, windowSize int) *DriftMonitor {
	return maintain.NewMonitor(baselineMedianQ, factor, windowSize)
}

// RefreshStats recomputes catalog and histogram statistics after data
// updates (ANALYZE), re-sealing tables and rebuilding the column segments
// invalidated since the last seal.
func RefreshStats(db *Database) { maintain.RefreshStats(db) }

// AppendRows applies post-load DML to a table: sealed tables reject direct
// Table.AppendRows calls, so updates go through the maintenance path, which
// invalidates the affected segments and indexes. Follow a batch of appends
// with RefreshStats.
func AppendRows(t *StorageTable, rows [][]int64) { maintain.AppendRows(t, rows) }

// Concurrent workload execution.

// EstimateCache is a thread-safe sharded read-through cardinality-estimate
// cache keyed by query fingerprint + relation subset. Share one across
// workers to amortize model inference over a concurrent workload.
type EstimateCache = cardest.Cache

// NewEstimateCache wraps an estimator in an empty cache.
func NewEstimateCache(inner Estimator) *EstimateCache { return cardest.NewCache(inner) }

// LockedEstimator serializes an unaudited estimator behind a mutex so it can
// participate in concurrent workloads.
type LockedEstimator = cardest.Locked

// NewLockedEstimator wraps inner.
func NewLockedEstimator(inner Estimator) *LockedEstimator { return cardest.NewLocked(inner) }

// ParallelRun is the outcome of a concurrent workload execution: per-query
// results aligned with the input, wall time, and cache counters.
type ParallelRun = experiments.ParallelRun

// ExecuteParallel plans and executes the queries across workers goroutines
// (GOMAXPROCS when workers <= 0, serial when 1) sharing cfg's estimator
// behind an estimate cache. Results are identical to a serial run: every
// estimator shipped with the repository is deterministic per (query,
// subset) regardless of call order.
func ExecuteParallel(db *Database, queries []*Query, cfg EngineConfig, workers int) (ParallelRun, error) {
	return experiments.RunParallelWorkload(db, queries, cfg, workers)
}

// Observability.

// Observer is the sink of the observability layer: per-operator runtime
// stats, re-optimization event traces, CE evaluation of every cardinality
// estimate, and a metrics registry. Set EngineConfig.Obs to enable it; one
// observer may be shared by any number of concurrent workers.
type Observer = obs.Observer

// NewObserver returns an empty observer.
func NewObserver() *Observer { return obs.NewObserver() }

// QueryTrace is one query's structured execution trace (per-operator stats
// per execution attempt, re-optimization events, phase times); available as
// Result.Trace when the engine ran with an observer.
type QueryTrace = obs.QueryTrace

// ObsReport is the aggregated, JSON-serializable view of everything an
// observer collected; built with Observer.Report().
type ObsReport = obs.Report

// MetricsRegistry interns named counters, gauges, and histograms. All
// operations are goroutine-safe and nil-safe.
type MetricsRegistry = obs.Registry

// NewEstimateCacheWithMetrics wraps an estimator in an empty cache whose
// hit/miss counters are interned in the registry, so they appear in the
// observer's report alongside the engine metrics.
func NewEstimateCacheWithMetrics(inner Estimator, reg *MetricsRegistry) *EstimateCache {
	return cardest.NewCacheWithMetrics(inner, reg)
}

// Robustness & graceful degradation.

// ResourceError is the typed failure of a query that exceeded one of its
// ResourceLimits ("materialized-rows" or "replans"); match with errors.As.
type ResourceError = exec.ResourceError

// ResourceLimits are per-query resource budgets; set EngineConfig.Limits.
// The zero value disables every limit.
type ResourceLimits = engine.Limits

// EstimatorGuard wraps any estimator with production guardrails: it
// recovers panics, clamps non-finite / non-positive / impossibly large
// estimates, flags latency-budget violations, and trips a circuit breaker
// to a fallback estimator after repeated faults.
type EstimatorGuard = cardest.Guard

// EstimatorGuardConfig configures an EstimatorGuard.
type EstimatorGuardConfig = cardest.GuardConfig

// NewEstimatorGuard wraps inner with the guardrails of cfg.
func NewEstimatorGuard(inner Estimator, cfg EstimatorGuardConfig) *EstimatorGuard {
	return cardest.NewGuard(inner, cfg)
}

// CrossProductBound returns the natural upper bound for cardinality
// estimates over db — the product of the base-table sizes of the estimated
// subset — for use as EstimatorGuardConfig.Bound.
func CrossProductBound(db *Database) func(*Query, BitSet) float64 {
	return cardest.CrossProductBound(db)
}

// Versioned model artifacts (cmd/lpce-train <-> cmd/lpce-bench).

// ModelSet bundles every SGD-trained model of one experiment environment
// into a versioned on-disk artifact directory. Loading validates the format
// version and the encoder's dimension and schema fingerprint, so artifacts
// cannot silently be applied to a database they were not trained on.
type ModelSet = modelio.Set

// SaveModelSet writes the set into dir (created if needed), one
// checksummed artifact file per model.
func SaveModelSet(s *ModelSet, dir string, enc *Encoder) error { return s.Save(dir, enc) }

// LoadModelSet reads a complete artifact directory written by SaveModelSet.
func LoadModelSet(dir string, enc *Encoder, db *Database) (*ModelSet, error) {
	return modelio.LoadSet(dir, enc, db)
}

// ExperimentOptions tune SetupExperimentsWith beyond scale and seed: the
// training worker count (weights are byte-identical for any value), an
// artifact directory to load models from instead of training, and a
// train-only mode that skips test-workload construction.
type ExperimentOptions = experiments.SetupOptions

// SetupExperimentsWith is SetupExperiments with explicit options.
func SetupExperimentsWith(scale ExperimentScale, seed int64, opts ExperimentOptions) (*ExperimentEnv, error) {
	return experiments.SetupWith(scale, seed, opts)
}
