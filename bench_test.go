// Benchmarks regenerating the paper's measurements as testing.B units, one
// per table/figure (full sweeps live in cmd/lpce-bench; these isolate the
// per-operation costs each experiment aggregates):
//
//	Table 1 / Figure 19 — per-estimate inference latency of every estimator
//	Table 2 / Figures 11–13 — end-to-end execution per configuration
//	Figure 12 — plan-search and executor costs in isolation
//	Figure 14 / 16 — re-optimization and refinement inference
//	Figure 18 — training cost per epoch and sample collection
//	Figure 21 / Table 3 — loss-variant training and refinement ablations
//
// Run with: go test -bench=. -benchmem
package lpce

import (
	"sync"
	"testing"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/experiments"
	"github.com/lpce-db/lpce/internal/optimizer"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/reopt"
	"github.com/lpce-db/lpce/internal/tensor"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
)

// benchSetup prepares one shared Tiny-scale environment; setup cost is paid
// once, outside the measured loops.
func benchSetup(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() { benchEnv = experiments.Setup(experiments.ScaleTiny, 5) })
	return benchEnv
}

// benchQuery returns a fixed deep-join query and its full mask.
func benchQuery(e *experiments.Env) (*query.Query, query.BitSet) {
	q := e.JoinHigh[0]
	return q, q.AllTablesMask()
}

// --- Table 1 / Figure 19: per-estimate inference latency ---

func benchEstimator(b *testing.B, est cardest.Estimator) {
	e := benchSetup(b)
	q, mask := benchQuery(e)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.EstimateSubset(q, mask)
	}
}

func BenchmarkTable1Inference(b *testing.B) {
	e := benchSetup(b)
	b.Run("Postgres", func(b *testing.B) { benchEstimator(b, e.Histogram) })
	b.Run("MSCN", func(b *testing.B) { benchEstimator(b, e.MSCN) })
	b.Run("TLSTM", func(b *testing.B) { benchEstimator(b, e.TLSTM) })
	b.Run("FlowLoss", func(b *testing.B) { benchEstimator(b, e.FlowLoss) })
	b.Run("LPCE-I", func(b *testing.B) { benchEstimator(b, e.LPCEIEstimator()) })
	b.Run("NeuroCard-sim", func(b *testing.B) { benchEstimator(b, e.NeuroCard) })
	b.Run("DeepDB-sim", func(b *testing.B) { benchEstimator(b, e.DeepDB) })
	b.Run("FLAT-sim", func(b *testing.B) { benchEstimator(b, e.FLAT) })
	b.Run("UAE-sim", func(b *testing.B) { benchEstimator(b, e.UAE) })
}

func BenchmarkFigure19Variants(b *testing.B) {
	e := benchSetup(b)
	// LPCE-S (uncompressed SRU teacher) vs LPCE-I (distilled student); the
	// LSTM variant is covered by TLSTM above at equal width.
	b.Run("LPCE-S", func(b *testing.B) {
		benchEstimator(b, &core.TreeEstimator{Label: "lpce-s", Model: e.LPCEI.Teacher, Enc: e.Enc})
	})
	b.Run("LPCE-I", func(b *testing.B) { benchEstimator(b, e.LPCEIEstimator()) })
}

// --- Table 2 / Figures 11-13: end-to-end execution ---

func benchEndToEnd(b *testing.B, cfg engine.Config) {
	e := benchSetup(b)
	q, _ := benchQuery(e)
	eng := engine.New(e.DB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Execute(q, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2EndToEnd(b *testing.B) {
	e := benchSetup(b)
	b.Run("PostgreSQL", func(b *testing.B) {
		benchEndToEnd(b, engine.Config{Estimator: e.Histogram, Budget: 100_000_000})
	})
	b.Run("LPCE-I", func(b *testing.B) {
		benchEndToEnd(b, engine.Config{Estimator: e.LPCEIEstimator(), Budget: 100_000_000})
	})
	b.Run("LPCE-R", func(b *testing.B) {
		benchEndToEnd(b, engine.Config{
			Estimator: e.LPCEIEstimator(), Refiner: e.Refiner, Budget: 100_000_000,
		})
	})
	b.Run("NeuroCard-sim", func(b *testing.B) {
		benchEndToEnd(b, engine.Config{Estimator: e.NeuroCard, Budget: 100_000_000})
	})
}

// --- Figure 12 components: plan search and raw execution ---

func BenchmarkFigure12PlanSearch(b *testing.B) {
	e := benchSetup(b)
	q, _ := benchQuery(e)
	opt := newOptimizer(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := opt.Plan(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12Execution(b *testing.B) {
	e := benchSetup(b)
	q, _ := benchQuery(e)
	opt := newOptimizer(e)
	p, _, err := opt.Plan(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := &exec.Ctx{DB: e.DB, Q: q, Controller: exec.NopController{}}
		if _, err := exec.Run(ctx, p.Clone()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 14 / 16: re-optimization machinery ---

func BenchmarkFigure14Reoptimization(b *testing.B) {
	// Worst case: a constant mis-estimator forces the full re-optimization
	// path (checkpoint → LPCE-R refinement → re-planning → resume).
	e := benchSetup(b)
	q, _ := benchQuery(e)
	eng := engine.New(e.DB)
	cfg := engine.Config{
		Estimator: cardest.Fixed{Value: 2, Label: "bad"},
		Refiner:   e.Refiner,
		Policy:    reopt.Policy{QErrThreshold: 10, MaxReopts: 3},
		Budget:    100_000_000,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Execute(q, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure16RefinementInference(b *testing.B) {
	e := benchSetup(b)
	samples := e.CollectTestSamples(e.JoinHigh[:1])
	if len(samples) == 0 {
		b.Skip("no collectable sample")
	}
	s := samples[0]
	k := s.Plan.NumNodes() / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Refiner.EvalPrefix(s, k)
	}
}

// --- Figure 18: training pipeline costs ---

func BenchmarkFigure18TrainingEpoch(b *testing.B) {
	e := benchSetup(b)
	cfg := core.TrainConfig{Hidden: 16, OutWidth: 16, Epochs: 1, Batch: 16, LR: 1e-3, NodeWise: true, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.TrainTreeModel(cfg, e.Enc, e.Samples, e.LogMax, nil)
	}
}

func BenchmarkFigure18SampleCollection(b *testing.B) {
	e := benchSetup(b)
	qs := e.JoinLow[:2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.CollectSamples(e.DB, e.Histogram, qs, 100_000_000)
	}
}

// --- Figure 21 / Table 3: ablation training units ---

func BenchmarkFigure21LossVariants(b *testing.B) {
	e := benchSetup(b)
	for _, nodeWise := range []bool{true, false} {
		name := "query-wise"
		if nodeWise {
			name = "node-wise"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.TrainConfig{Hidden: 12, OutWidth: 12, Epochs: 1, Batch: 16,
				LR: 1e-3, NodeWise: nodeWise, Seed: 2}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.TrainTreeModel(cfg, e.Enc, e.Samples, e.LogMax, nil)
			}
		})
	}
}

func BenchmarkTable3RefinerKinds(b *testing.B) {
	e := benchSetup(b)
	samples := e.CollectTestSamples(e.JoinHigh[:1])
	if len(samples) == 0 {
		b.Skip("no collectable sample")
	}
	s := samples[0]
	k := s.Plan.NumNodes() / 2
	kinds := []core.RefinerKind{core.RefinerFull, core.RefinerSingle, core.RefinerTwo}
	for _, kind := range kinds {
		cfg := core.RefinerConfig{Kind: kind,
			Base:         core.TrainConfig{Hidden: 10, OutWidth: 10, Epochs: 2, Batch: 16, LR: 2e-3, NodeWise: true, Seed: 3},
			AdjustEpochs: 1, PrefixesPerSample: 1}
		r := core.TrainRefiner(cfg, e.Enc, e.DB, e.Samples[:20], e.LogMax)
		b.Run(kind.String(), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.EvalPrefix(s, k)
			}
		})
	}
}

// --- SRU cell microbenchmark (the Eq. 1 kernel) ---

func BenchmarkSRUCellForward(b *testing.B) {
	e := benchSetup(b)
	q, mask := benchQuery(e)
	node := exec.CanonicalPlan(q, mask)
	m := e.LPCEI.Model
	feat := func(n *plan.Node) tensor.Vec { return e.Enc.EncodeNode(n) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(node, feat)
	}
}

// newOptimizer builds a plan enumerator over the environment's LPCE-I
// estimator, the configuration whose plan-search time Figure 12 reports.
func newOptimizer(e *experiments.Env) *optimizer.Optimizer {
	return optimizer.New(e.DB, e.LPCEIEstimator())
}

// --- Concurrent workload execution: pool + shared estimate cache ---

// BenchmarkParallelWorkload measures aggregate workload throughput at one
// worker (the serial baseline on the same code path) and at GOMAXPROCS
// workers, with the histogram stack. b.N counts executed queries.
func BenchmarkParallelWorkload(b *testing.B) {
	e := benchSetup(b)
	cfg := engine.Config{Estimator: e.Histogram, Budget: 100_000_000}
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers != 1 {
			name = "gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			qs := make([]*query.Query, b.N)
			for i := range qs {
				qs[i] = e.JoinLow[i%len(e.JoinLow)]
			}
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := experiments.RunParallelWorkload(e.DB, qs, cfg, workers); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkEstimateCacheHit isolates the cache's hot path: a fingerprint,
// one sharded map lookup, and an atomic counter bump.
func BenchmarkEstimateCacheHit(b *testing.B) {
	e := benchSetup(b)
	q, mask := benchQuery(e)
	c := cardest.NewCache(e.Histogram)
	c.EstimateSubset(q, mask) // warm the single key
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EstimateSubset(q, mask)
	}
}
