// Ablation tour of LPCE-I's three design choices (paper §4): the SRU cell
// versus LSTM, the node-wise versus query-wise loss, and knowledge
// distillation versus directly training a small model.
//
// Run with: go run ./examples/ablation
package main

import (
	"fmt"
	"time"

	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/datagen"
	"github.com/lpce-db/lpce/internal/encode"
	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/treenn"
	"github.com/lpce-db/lpce/internal/workload"
)

func main() {
	db := datagen.Generate(datagen.Config{Titles: 1000, Seed: 31})
	enc := encode.NewEncoder(db.Schema)
	gen := workload.NewGenerator(db, 32)

	fmt.Println("collecting 180 training plans...")
	samples, _ := core.CollectSamples(db, histogram.NewEstimator(db),
		gen.QueriesRange(180, 2, 6), 60_000_000)
	train, val := core.SplitTrainValidation(samples, 0.2)
	logMax := core.MaxLogCard(samples)

	big := core.TrainConfig{Hidden: 24, OutWidth: 32, Epochs: 6, NodeWise: true, Seed: 4}
	small := core.TrainConfig{Hidden: 10, OutWidth: 12, Epochs: 5, NodeWise: true, Seed: 4}

	fmt.Println("training 5 variants (takes a minute)...")
	fmt.Println()

	report := func(name string, m *treenn.TreeModel, trainDur time.Duration) {
		mean, all := core.EvalQError(m, enc, val)
		var p95 float64
		if len(all) > 0 {
			sorted := append([]float64(nil), all...)
			for i := 0; i < len(sorted); i++ {
				for j := i + 1; j < len(sorted); j++ {
					if sorted[j] < sorted[i] {
						sorted[i], sorted[j] = sorted[j], sorted[i]
					}
				}
			}
			p95 = sorted[len(sorted)*95/100]
		}
		fmt.Printf("%-28s weights=%-7d train=%-8s  mean q=%-8.2f p95 q=%.2f\n",
			name, m.NumWeights(), trainDur.Round(time.Millisecond), mean, p95)
	}

	start := time.Now()
	sru := core.TrainTreeModel(big, enc, train, logMax, nil)
	report("SRU + node-wise (LPCE-S)", sru, time.Since(start))

	lstmCfg := big
	lstmCfg.Cell = treenn.CellLSTM
	start = time.Now()
	lstm := core.TrainTreeModel(lstmCfg, enc, train, logMax, nil)
	report("LSTM + node-wise (LPCE-T)", lstm, time.Since(start))

	qCfg := big
	qCfg.NodeWise = false
	start = time.Now()
	qwise := core.TrainTreeModel(qCfg, enc, train, logMax, nil)
	report("SRU + query-wise (LPCE-Q)", qwise, time.Since(start))

	start = time.Now()
	direct := core.TrainTreeModel(small, enc, train, logMax, nil)
	report("small, direct (LPCE-C)", direct, time.Since(start))

	start = time.Now()
	distilled := core.Distill(core.LPCEIConfig{Teacher: big, Student: small}, enc, sru, train)
	report("small, distilled (LPCE-I)", distilled, time.Since(start))

	// per-estimate latency of the big vs small model
	q := gen.Query(6)
	est := func(m *treenn.TreeModel) time.Duration {
		e := &core.TreeEstimator{Label: "x", Model: m, Enc: enc}
		start := time.Now()
		const reps = 200
		for i := 0; i < reps; i++ {
			e.EstimateSubset(q, q.AllTablesMask())
		}
		return time.Since(start) / reps
	}
	fmt.Printf("\nper-estimate inference: LSTM %v, SRU %v, distilled SRU %v\n",
		est(lstm), est(sru), est(distilled))
}
