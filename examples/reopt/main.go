// Re-optimization walkthrough (the paper's Figure 2/17 narrative): a query
// whose initial estimates are badly wrong is paused at a checkpoint,
// LPCE-R refines the remaining estimates from the executed sub-plan, and
// the optimizer re-plans — reusing the materialized intermediate results.
//
// Run with: go run ./examples/reopt
package main

import (
	"fmt"
	"log"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/datagen"
	"github.com/lpce-db/lpce/internal/encode"
	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/reopt"
	"github.com/lpce-db/lpce/internal/workload"
)

func main() {
	db := datagen.Generate(datagen.Config{Titles: 1000, Seed: 11})
	enc := encode.NewEncoder(db.Schema)
	gen := workload.NewGenerator(db, 12)

	fmt.Println("training LPCE-R (content + cardinality + refine modules)...")
	trainQs := gen.QueriesRange(120, 2, 6)
	samples, _ := core.CollectSamples(db, histogram.NewEstimator(db), trainQs, 60_000_000)
	logMax := core.MaxLogCard(samples)
	refiner := core.TrainRefiner(core.RefinerConfig{
		Kind: core.RefinerFull,
		Base: core.TrainConfig{Hidden: 20, OutWidth: 24, Epochs: 5, NodeWise: true, Seed: 2},
	}, enc, db, samples, logMax)

	// Use a deliberately terrible initial estimator (every subset = 3 rows)
	// so the demo reliably shows a checkpoint firing: the paper's Figure 17
	// scenario of a massive underestimate steering the optimizer into a
	// nested loop join.
	bad := cardest.Fixed{Value: 3, Label: "bad-initial"}
	eng := engine.New(db)
	q := gen.Query(5)
	fmt.Printf("\nquery: %s\n", q.SQL())

	noReopt, err := eng.Execute(q, engine.Config{Estimator: bad})
	if err != nil {
		log.Fatal(err)
	}
	withReopt, err := eng.Execute(q, engine.Config{
		Estimator: bad,
		Refiner:   refiner,
		Policy:    reopt.Policy{QErrThreshold: 50, MaxReopts: 3},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n--- plan stuck with the bad estimates (no re-optimization) ---\n%s", noReopt.FinalPlan)
	fmt.Printf("\n--- plan after %d re-optimization(s) ---\n%s", withReopt.Reopts, withReopt.FinalPlan)
	fmt.Printf("\nCOUNT(*) = %d in both runs: %v\n", withReopt.Count, noReopt.Count == withReopt.Count)
	fmt.Printf("end-to-end without re-optimization: %s\n", noReopt.Total())
	fmt.Printf("end-to-end with re-optimization:    %s (of which re-planning %s)\n",
		withReopt.Total(), withReopt.ReoptTime)
	fmt.Println("\nnote the MatScan leaves in the second plan: execution resumed from")
	fmt.Println("the intermediates materialized before the checkpoint fired (paper §6.2)")
}
