// Quickstart: build a synthetic IMDB-like database, train a small LPCE-I
// estimator, and execute one query end to end, comparing against the
// engine's built-in histogram estimator.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/datagen"
	"github.com/lpce-db/lpce/internal/encode"
	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/workload"
)

func main() {
	// 1. Build a database. Everything is deterministic under the seed.
	db := datagen.Generate(datagen.Config{Titles: 800, Seed: 42})
	fmt.Printf("database ready: %d tables, %d rows\n", len(db.Tables), db.TotalRows())

	// 2. Collect training samples: run queries through the engine's
	// histogram-driven optimizer with instrumented execution, recording the
	// true cardinality of every plan operator.
	gen := workload.NewGenerator(db, 7)
	trainQueries := gen.QueriesRange(120, 2, 5)
	samples, stats := core.CollectSamples(db, histogram.NewEstimator(db), trainQueries, 60_000_000)
	fmt.Printf("collected %d training plans in %s\n", stats.Collected, stats.Duration)

	// 3. Train LPCE-I: a large SRU teacher compressed to a small student
	// via knowledge distillation.
	enc := encode.NewEncoder(db.Schema)
	logMax := core.MaxLogCard(samples)
	lpcei := core.TrainLPCEI(core.LPCEIConfig{
		Teacher: core.TrainConfig{Hidden: 24, OutWidth: 32, Epochs: 5, NodeWise: true, Seed: 1},
		Student: core.TrainConfig{Hidden: 10, OutWidth: 12, Epochs: 4, NodeWise: true, Seed: 1},
	}, enc, samples, logMax)
	fmt.Printf("LPCE-I trained: %d weights (teacher had %d)\n",
		lpcei.Model.NumWeights(), lpcei.Teacher.NumWeights())

	// 4. Execute a fresh query end to end with both estimators.
	q := gen.Query(4)
	fmt.Printf("\nquery: %s\n\n", q.SQL())
	eng := engine.New(db)

	hist, err := eng.Execute(q, engine.Config{Estimator: histogram.NewEstimator(db)})
	if err != nil {
		log.Fatal(err)
	}
	learned, err := eng.Execute(q, engine.Config{
		Estimator: &core.TreeEstimator{Label: "lpce-i", Model: lpcei.Model, Enc: enc},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("histogram estimator: COUNT(*)=%d  plan=%s infer=%s exec=%s total=%s\n",
		hist.Count, hist.PlanTime, hist.InferTime, hist.ExecTime, hist.Total())
	fmt.Printf("LPCE-I estimator:    COUNT(*)=%d  plan=%s infer=%s exec=%s total=%s\n",
		learned.Count, learned.PlanTime, learned.InferTime, learned.ExecTime, learned.Total())
	if hist.Count != learned.Count {
		log.Fatal("BUG: estimators changed the query result!")
	}
	fmt.Println("\nresults agree — cardinality estimation only changes the plan, never the answer")
}
