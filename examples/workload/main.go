// Workload comparison: run a batch of deep-join queries end to end under
// four estimator configurations — the histogram baseline, a data-driven
// substitute (wander-join sampling), LPCE-I, and LPCE-R with
// re-optimization — and print a miniature version of the paper's Table 2.
//
// Run with: go run ./examples/workload
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/datadriven"
	"github.com/lpce-db/lpce/internal/datagen"
	"github.com/lpce-db/lpce/internal/encode"
	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/workload"
)

func main() {
	db := datagen.Generate(datagen.Config{Titles: 1500, Seed: 21})
	enc := encode.NewEncoder(db.Schema)
	gen := workload.NewGenerator(db, 22)

	fmt.Println("training LPCE models on 200 queries...")
	samples, _ := core.CollectSamples(db, histogram.NewEstimator(db),
		gen.QueriesRange(200, 3, 6), 60_000_000)
	logMax := core.MaxLogCard(samples)
	base := core.TrainConfig{Hidden: 24, OutWidth: 32, Epochs: 6, NodeWise: true, Seed: 3}
	lpcei := core.TrainLPCEI(core.LPCEIConfig{
		Teacher: base,
		Student: core.TrainConfig{Hidden: 10, OutWidth: 12, Epochs: 4, NodeWise: true, Seed: 3},
	}, enc, samples, logMax)
	refiner := core.TrainRefiner(core.RefinerConfig{Kind: core.RefinerFull, Base: base},
		enc, db, samples, logMax)
	lpceiEst := &core.TreeEstimator{Label: "lpce-i", Model: lpcei.Model, Enc: enc}

	configs := []struct {
		name string
		cfg  engine.Config
	}{
		{"PostgreSQL (histogram)", engine.Config{Estimator: histogram.NewEstimator(db)}},
		{"NeuroCard-sim (sampling)", engine.Config{Estimator: datadriven.NewJoinSample(db, 400, 5)}},
		{"LPCE-I", engine.Config{Estimator: lpceiEst}},
		{"LPCE-R", engine.Config{Estimator: lpceiEst, Refiner: refiner}},
	}

	queries := gen.Queries(12, 6)
	fmt.Printf("running %d Join-six queries under %d configurations...\n\n", len(queries), len(configs))
	eng := engine.New(db)

	totals := make(map[string][]float64)
	var baseline []float64
	for ci, c := range configs {
		for _, q := range queries {
			r, err := eng.Execute(q, c.cfg)
			if err != nil {
				log.Fatal(err)
			}
			totals[c.name] = append(totals[c.name], r.Total().Seconds())
			if ci == 0 {
				baseline = append(baseline, r.Total().Seconds())
			}
		}
	}

	fmt.Printf("%-26s %12s %12s %16s\n", "configuration", "total", "median", "median reduction")
	for _, c := range configs {
		ts := totals[c.name]
		var sum float64
		reds := make([]float64, len(ts))
		for i, t := range ts {
			sum += t
			reds[i] = (baseline[i] - t) / baseline[i]
		}
		sort.Float64s(reds)
		sorted := append([]float64(nil), ts...)
		sort.Float64s(sorted)
		fmt.Printf("%-26s %11.1fms %11.1fms %15.1f%%\n",
			c.name, sum*1e3, sorted[len(sorted)/2]*1e3, reds[len(reds)/2]*100)
	}
	fmt.Println("\n(reduction is relative to the histogram baseline, Eq. 9 of the paper)")
}
