// Deployment maintenance walkthrough: the operational loop the paper
// defers to future work (§3.2 data updates, §7.3 progressive training) —
// deploy a trained estimator, monitor its live q-errors, shift the data
// distribution with appends, watch the drift alarm fire, refresh statistics
// and retrain.
//
// Run with: go run ./examples/maintenance
package main

import (
	"fmt"

	lpce "github.com/lpce-db/lpce"
)

func main() {
	db := lpce.GenerateDatabase(lpce.DataConfig{Titles: 600, Seed: 51})
	gen := lpce.NewWorkloadGenerator(db, 52)
	enc := lpce.NewEncoder(db.Schema)
	eng := lpce.NewEngine(db)

	train := func(seed int64) (*lpce.TreeEstimator, float64) {
		samples, _ := lpce.CollectSamples(db, lpce.NewHistogramEstimator(db),
			gen.QueriesRange(120, 1, 4), 40_000_000)
		logMax := lpce.MaxLogCard(samples)
		model := lpce.TrainLPCEI(lpce.LPCEIConfig{
			Teacher: lpce.TrainConfig{Hidden: 20, OutWidth: 24, Epochs: 20, NodeWise: true, Seed: seed},
			Student: lpce.TrainConfig{Hidden: 10, OutWidth: 12, Epochs: 15, NodeWise: true, Seed: seed},
		}, enc, samples, logMax)
		est := lpce.NewTreeEstimator("lpce-i", model.Model, enc)
		// validation baseline for the drift monitor: median q-error over a
		// fresh batch of queries (true cardinalities come free from the
		// executor on completed queries)
		var qs []float64
		for i := 0; i < 20; i++ {
			q := gen.Query(2)
			res, err := eng.Execute(q, lpce.EngineConfig{Estimator: est})
			if err != nil {
				panic(err)
			}
			est0 := est.EstimateSubset(q, q.AllTablesMask())
			qs = append(qs, qerr(float64(res.Count), est0))
		}
		med := median(qs)
		return est, med
	}

	fmt.Println("training initial model...")
	est, baseline := train(1)
	fmt.Printf("validation median q-error (drift baseline): %.2f\n", baseline)
	monitor := lpce.NewDriftMonitor(baseline, 2.5, 20)

	runBatch := func(label string) {
		for i := 0; i < 20; i++ {
			q := gen.Query(2)
			res, err := eng.Execute(q, lpce.EngineConfig{Estimator: est})
			if err != nil {
				panic(err)
			}
			monitor.Observe(float64(res.Count), est.EstimateSubset(q, q.AllTablesMask()))
		}
		fmt.Printf("%-28s rolling median q-error = %-8.2f drifted = %v\n",
			label, monitor.MedianQ(), monitor.Drifted())
	}
	runBatch("before data update:")

	// Shift the data: one previously-quiet movie suddenly gets 6x the
	// table's rows (a viral release), breaking the trained fan-out model.
	fmt.Println("\nappending 6x cast_info rows concentrated on one movie...")
	ci := db.TableByName("cast_info")
	width := 4
	var rows [][]int64
	for i := 0; i < ci.NumRows()*6; i++ {
		row := make([]int64, width)
		row[0] = 7              // movie_id: one hot movie
		row[1] = int64(i % 100) // person_id
		row[2] = int64(i % 11)  // role_id
		row[3] = int64(i % 50)  // person_role_id
		rows = append(rows, row)
	}
	lpce.AppendRows(ci, rows)
	lpce.RefreshStats(db)

	runBatch("after data update:")
	if monitor.Drifted() {
		fmt.Println("\ndrift alarm fired -> retraining on fresh samples from the updated data")
		est2, baseline2 := train(2)
		est = est2
		monitor = lpce.NewDriftMonitor(baseline2, 2.5, 20)
		runBatch("after retraining:")
	} else {
		fmt.Println("\n(no drift detected on this sample; rerun with another seed to see the alarm)")
	}
}

func qerr(a, b float64) float64 {
	if a < 1 {
		a = 1
	}
	if b < 1 {
		b = 1
	}
	if a > b {
		return a / b
	}
	return b / a
}

func median(x []float64) float64 {
	y := append([]float64(nil), x...)
	for i := range y {
		for j := i + 1; j < len(y); j++ {
			if y[j] < y[i] {
				y[i], y[j] = y[j], y[i]
			}
		}
	}
	return y[len(y)/2]
}
