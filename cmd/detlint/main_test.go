package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func repoRoot(t *testing.T) (string, string) {
	t.Helper()
	dir, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	path, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		t.Fatal(err)
	}
	return dir, path
}

// wantLines scans a fixture for "want finding" markers and returns the
// marked line numbers.
func wantLines(t *testing.T, file string) map[int]bool {
	t.Helper()
	f, err := os.Open(file)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	want := make(map[int]bool)
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		if strings.Contains(sc.Text(), "want finding") {
			want[line] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestAnalyzeFixture pins the analyzer against the testdata package: every
// marked map range is found (including through named map types), ignore
// directives suppress, slice ranges and _test.go files produce nothing.
func TestAnalyzeFixture(t *testing.T) {
	modDir, modPath := repoRoot(t)
	target := filepath.Join("cmd", "detlint", "testdata", "hotpath")
	findings, err := analyze(modDir, modPath, []string{target})
	if err != nil {
		t.Fatal(err)
	}
	want := wantLines(t, filepath.Join(modDir, target, "hotpath.go"))
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%v", len(findings), len(want), findings)
	}
	for _, f := range findings {
		if !strings.HasSuffix(f.pos.Filename, "hotpath.go") {
			t.Errorf("finding in unexpected file: %v", f)
		}
		if !want[f.pos.Line] {
			t.Errorf("unexpected finding at line %d: %v", f.pos.Line, f)
		}
	}
}

// TestHotPathsClean is the lint itself as a regression test: the real
// hot-path packages must stay free of unordered map ranges (modulo
// justified ignore directives).
func TestHotPathsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the stdlib closure from source; skipped in -short")
	}
	modDir, modPath := repoRoot(t)
	findings, err := analyze(modDir, modPath, defaultTargets)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%v", f)
	}
}
