// Command detlint is a vet-style determinism lint for the repository's hot
// paths. It fails on `for ... range` statements over map-typed expressions
// in the named packages: map iteration order is randomized per run, so a
// map range in the executor, storage, or serving path silently breaks the
// byte-identity contract (identical results, work charges, and checkpoint
// sequences for any worker count) that the equivalence suites enforce.
//
// Usage:
//
//	detlint [-root dir] [packages...]
//
// Packages are module-relative directories; the default set is the hot
// paths: internal/exec, internal/storage, internal/server. Test files are
// skipped (tests may iterate maps to build fixtures). A finding is
// suppressed by a `//detlint:ignore <why>` comment on the range statement's
// line or the line directly above — the escape hatch for ranges whose body
// is genuinely order-independent (sorted immediately after, writes into
// another map, deletes during a sweep).
//
// The analyzer type-checks from source with no external dependencies: a
// minimal module-aware importer resolves the repository's own packages
// against the module root and everything else against GOROOT (including
// the stdlib's vendored imports), so it runs in CI with nothing but the
// toolchain. Exit status 0 when clean, 1 on findings, 2 on usage or
// analysis errors.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// defaultTargets are the hot-path packages where map-range nondeterminism
// can leak into query results or observable execution order.
var defaultTargets = []string{"internal/exec", "internal/storage", "internal/server"}

func main() {
	root := flag.String("root", "", "module root directory (default: walk up from cwd to go.mod)")
	flag.Parse()
	targets := flag.Args()
	if len(targets) == 0 {
		targets = defaultTargets
	}

	modDir := *root
	if modDir == "" {
		var err error
		modDir, err = findModuleRoot()
		if err != nil {
			fatal(err)
		}
	}
	modPath, err := modulePath(filepath.Join(modDir, "go.mod"))
	if err != nil {
		fatal(err)
	}

	findings, err := analyze(modDir, modPath, targets)
	if err != nil {
		fatal(err)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d unordered map range(s) in hot paths\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "detlint:", err)
	os.Exit(2)
}

// findModuleRoot walks up from the working directory to the enclosing
// go.mod, mirroring the go tool's main-module discovery.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// modulePath reads the module path from the first `module` directive.
func modulePath(gomod string) (string, error) {
	raw, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// finding is one diagnosed map range, formatted as file:line: message.
type finding struct {
	pos token.Position
	typ string
}

func (f finding) String() string {
	// Report paths relative to the module root when possible, so CI logs
	// are stable across checkouts.
	return fmt.Sprintf("%s:%d: range over %s is unordered; iterate a sorted key slice or add //detlint:ignore with a justification",
		f.pos.Filename, f.pos.Line, f.typ)
}

// analyze type-checks each target package and collects map-range findings.
func analyze(modDir, modPath string, targets []string) ([]finding, error) {
	imp := newImporter(modDir, modPath)
	var findings []finding
	for _, target := range targets {
		pkgPath := modPath + "/" + filepath.ToSlash(target)
		files, err := imp.parseDir(filepath.Join(modDir, target))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", target, err)
		}
		info := &types.Info{Types: make(map[ast.Expr]types.TypeAndValue)}
		conf := types.Config{Importer: imp, FakeImportC: true}
		if _, err := conf.Check(pkgPath, imp.fset, files, info); err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", target, err)
		}
		for _, file := range files {
			ignored := ignoreLines(imp.fset, file)
			ast.Inspect(file, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := info.Types[rng.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				pos := imp.fset.Position(rng.Pos())
				if ignored[pos.Line] || ignored[pos.Line-1] {
					return true
				}
				if rel, err := filepath.Rel(modDir, pos.Filename); err == nil {
					pos.Filename = filepath.ToSlash(rel)
				}
				findings = append(findings, finding{pos: pos, typ: tv.Type.String()})
				return true
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pos.Filename != findings[j].pos.Filename {
			return findings[i].pos.Filename < findings[j].pos.Filename
		}
		return findings[i].pos.Line < findings[j].pos.Line
	})
	return findings, nil
}

// ignoreLines returns the set of lines carrying a detlint:ignore directive.
func ignoreLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, group := range file.Comments {
		for _, c := range group.List {
			if strings.Contains(c.Text, "detlint:ignore") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// importer is a minimal module-aware source importer: the repository's own
// import paths resolve against the module root, everything else against
// GOROOT/src (with the stdlib's internal vendor directory as fallback).
// Packages are type-checked from source recursively and memoized; cgo is
// disabled so package selection picks the pure-Go fallbacks.
type importer struct {
	ctxt    build.Context
	fset    *token.FileSet
	modDir  string
	modPath string
	pkgs    map[string]*types.Package
}

func newImporter(modDir, modPath string) *importer {
	ctxt := build.Default
	ctxt.CgoEnabled = false
	return &importer{
		ctxt: ctxt, fset: token.NewFileSet(),
		modDir: modDir, modPath: modPath,
		pkgs: make(map[string]*types.Package),
	}
}

func (im *importer) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := im.pkgs[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return pkg, nil
	}
	im.pkgs[path] = nil // in-progress marker for cycle detection
	dir, err := im.dirFor(path)
	if err != nil {
		return nil, err
	}
	files, err := im.parseDir(dir)
	if err != nil {
		return nil, fmt.Errorf("import %q: %w", path, err)
	}
	conf := types.Config{Importer: im, FakeImportC: true}
	pkg, err := conf.Check(path, im.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("import %q: %w", path, err)
	}
	im.pkgs[path] = pkg
	return pkg, nil
}

// dirFor maps an import path to its source directory.
func (im *importer) dirFor(path string) (string, error) {
	if path == im.modPath {
		return im.modDir, nil
	}
	if rest, ok := strings.CutPrefix(path, im.modPath+"/"); ok {
		return filepath.Join(im.modDir, filepath.FromSlash(rest)), nil
	}
	std := filepath.Join(im.ctxt.GOROOT, "src", filepath.FromSlash(path))
	if _, err := os.Stat(std); err == nil {
		return std, nil
	}
	// The stdlib's own golang.org/x/... imports live under src/vendor.
	vendored := filepath.Join(im.ctxt.GOROOT, "src", "vendor", filepath.FromSlash(path))
	if _, err := os.Stat(vendored); err == nil {
		return vendored, nil
	}
	return "", fmt.Errorf("cannot resolve import %q (not in module %s or GOROOT)", path, im.modPath)
}

// parseDir parses a package directory's non-test Go files under the
// build-tag selection of the host toolchain (cgo off).
func (im *importer) parseDir(dir string) ([]*ast.File, error) {
	bp, err := im.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
