package hotpath

// Test files are exempt: fixture-building map ranges here must produce no
// findings.
func testOnlyRange(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

var _ = testOnlyRange
