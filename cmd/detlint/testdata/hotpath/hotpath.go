// Package hotpath is detlint's test fixture: each map range is either a
// deliberate violation (carrying the test's marker comment) or suppressed.
package hotpath

func sumCounts(m map[string]int) int {
	total := 0
	for _, v := range m { // want finding
		total += v
	}
	return total
}

func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//detlint:ignore — caller sorts
	for k := range m {
		out = append(out, k)
	}
	return out
}

func countSlice(s []int) int {
	n := 0
	for range s {
		n++
	}
	return n
}

// bag checks that named types with map underlying are still caught.
type bag map[int]int

func (b bag) drain() {
	for k := range b { //detlint:ignore — order-independent sweep
		delete(b, k)
	}
}

func size(b bag) int {
	n := 0
	for range b { // want finding
		n++
	}
	return n
}

var _ = []any{sumCounts, keys, countSlice, bag.drain, size}
