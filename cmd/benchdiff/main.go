// Command benchdiff compares two BENCH_e2e.json perf snapshots (written by
// `lpce-bench -bench-out`) and fails when the candidate regresses against
// the baseline, so CI can gate merges on end-to-end performance and
// estimator accuracy.
//
// Usage:
//
//	benchdiff -baseline BENCH_e2e.json -candidate bench_new.json
//	          [-max-regress 0.25] [-min-seconds 0.5]
//
// For every configuration present in both snapshots (matched by name) it
// compares
//
//   - end-to-end wall time: a regression beyond -max-regress (default +25%)
//     fails, unless both sides are under -min-seconds (absolute slack that
//     keeps sub-second tiny-scale runs from flapping on scheduler noise);
//   - executor wall time (the summed T_E component), under the same rule —
//     this is the number the vectorized batch executor exists to improve;
//   - CE-evaluation accuracy: each estimator's sample-weighted mean q-error
//     p50 across subset sizes, with the same relative threshold;
//   - correctness tallies: any increase in failed queries fails outright, as
//     does a training benchmark whose weights were not bit-identical, an
//     executor benchmark whose batch-path result counts differed from
//     scalar, or a batch path that has become slower than scalar on the
//     hash-join probe hot path (speedup below 1);
//   - zone-map effectiveness: the storage benchmark's segment skip rate
//     (segments_skipped / segments_total) must not drop more than 20% below
//     the committed baseline's, its zone-map result counts must match the
//     raw scan path, and the segmented path must actually have engaged;
//   - build-side determinism and wall time: the load benchmark's parallel
//     hash-join build and parallel segment sealing must both report layouts
//     bitwise identical to their serial oracles, the serial build/seal walls
//     must not regress beyond -max-regress, the parallel walls must not
//     exceed serial by more than 10% (parallelism must never cost), and a
//     candidate missing the block while the baseline carries it fails;
//   - morsel-parallelism sanity, within the candidate alone: every
//     "<config>/pxN" run's executor wall must not exceed its serial
//     "<config>" run's by more than 10% or -min-seconds absolute (whichever
//     is larger; sub-min-seconds deltas on short walls are scheduler noise),
//     and the executor benchmark's parallel probe must not exceed its serial
//     batch probe under the same rule. Speedups above 1 are expected to
//     track available cores and are reported but not gated, so single-core
//     CI machines don't flap.
//
// Exit status 0 when everything holds, 1 on any regression, 2 on usage or
// I/O errors. The report prints every comparison, not just failures, so the
// CI log doubles as a perf changelog.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/lpce-db/lpce/internal/experiments"
	"github.com/lpce-db/lpce/internal/obs"
)

func main() {
	baseline := flag.String("baseline", "", "baseline snapshot (committed BENCH_e2e.json)")
	candidate := flag.String("candidate", "", "candidate snapshot to check")
	maxRegress := flag.Float64("max-regress", 0.25, "maximum tolerated relative regression (0.25 = +25%)")
	minSeconds := flag.Float64("min-seconds", 0.5, "ignore wall-time regressions when both runs are under this many seconds")
	flag.Parse()
	if *baseline == "" || *candidate == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -candidate are required")
		flag.Usage()
		os.Exit(2)
	}

	base, err := readSnapshot(*baseline)
	if err != nil {
		fatal(err)
	}
	cand, err := readSnapshot(*candidate)
	if err != nil {
		fatal(err)
	}

	failures := compare(os.Stdout, base, cand, *maxRegress, *minSeconds)
	if failures > 0 {
		fmt.Printf("\nFAIL: %d regression(s) beyond +%.0f%%\n", failures, *maxRegress*100)
		os.Exit(1)
	}
	fmt.Println("\nOK: no regressions")
}

func readSnapshot(path string) (*experiments.BenchSnapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s experiments.BenchSnapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("benchdiff: parse %s: %w", path, err)
	}
	return &s, nil
}

// compare prints every comparison and returns the number of regressions.
func compare(w *os.File, base, cand *experiments.BenchSnapshot, maxRegress, minSeconds float64) int {
	if base.Scale != cand.Scale {
		fmt.Fprintf(w, "note: scale differs (baseline %q, candidate %q); comparing anyway\n", base.Scale, cand.Scale)
	}
	failures := 0
	baseCfgs := make(map[string]experiments.BenchConfigSnapshot, len(base.Configs))
	for _, c := range base.Configs {
		baseCfgs[c.Name] = c
	}
	for _, c := range cand.Configs {
		b, ok := baseCfgs[c.Name]
		if !ok {
			fmt.Fprintf(w, "config %-12s new in candidate, skipped\n", c.Name)
			continue
		}
		failures += checkWall(w, c.Name, "e2e wall", b.WallSeconds, c.WallSeconds, maxRegress, minSeconds)
		failures += checkWall(w, c.Name, "exec wall", b.ExecWallSeconds, c.ExecWallSeconds, maxRegress, minSeconds)
		if c.Failed > b.Failed {
			fmt.Fprintf(w, "config %-12s failed queries %d -> %d  REGRESSION\n", c.Name, b.Failed, c.Failed)
			failures++
		}
		failures += checkCE(w, c.Name, b, c, maxRegress)
	}
	if cand.Training != nil && !cand.Training.WeightsIdentical {
		fmt.Fprintf(w, "training: parallel weights differ from serial  REGRESSION\n")
		failures++
	}
	if cand.Training != nil {
		fmt.Fprintf(w, "training: %d workers on %d cores, %.2fx speedup, weights identical: %v\n",
			cand.Training.Workers, cand.Training.Cores, cand.Training.Speedup, cand.Training.WeightsIdentical)
	}
	failures += checkParallel(w, cand, minSeconds)
	failures += checkExec(w, cand.Exec, minSeconds)
	failures += checkServer(w, base.Server, cand.Server, maxRegress, minSeconds)
	failures += checkStorage(w, base.Storage, cand.Storage)
	failures += checkLoad(w, base.Load, cand.Load, maxRegress, minSeconds)
	return failures
}

// checkLoad gates the build-side benchmark: both parallel build paths — the
// partitioned hash-join build and parallel segment sealing — must have
// produced layouts bitwise identical to their serial oracles, the serial
// build walls must not regress beyond -max-regress against the baseline
// (with the usual sub-minSeconds slack), and the parallel walls must not
// exceed their serial counterparts by more than parallelOverhead within the
// candidate. A candidate that drops the block while the baseline carries it
// fails — the gate cannot be dodged by not running it.
func checkLoad(w *os.File, base, cand *experiments.LoadBenchResult, maxRegress, minSeconds float64) int {
	if cand == nil {
		if base != nil {
			fmt.Fprintf(w, "load bench: present in baseline, missing in candidate  REGRESSION\n")
			return 1
		}
		return 0
	}
	failures := 0
	if !cand.BuildLayoutIdentical {
		fmt.Fprintf(w, "load bench: parallel hash-join build layout diverged from serial  REGRESSION\n")
		failures++
	}
	if !cand.SealLayoutIdentical {
		fmt.Fprintf(w, "load bench: parallel segment sealing diverged from serial  REGRESSION\n")
		failures++
	}
	if base != nil {
		failures += checkWall(w, "load", "build wall", base.BuildSerialSeconds, cand.BuildSerialSeconds, maxRegress, minSeconds)
		failures += checkWall(w, "load", "seal wall", base.SealSerialSeconds, cand.SealSerialSeconds, maxRegress, minSeconds)
	}
	overhead := func(label string, serial, parallel float64) {
		status := "ok"
		switch {
		case serial <= 0:
			status = "no serial wall"
		case parallel <= serial*(1+parallelOverhead):
		case parallel-serial < minSeconds:
			status = "ok (under min-seconds slack)"
		default:
			status = "REGRESSION"
			failures++
		}
		speedup := 0.0
		if parallel > 0 {
			speedup = serial / parallel
		}
		fmt.Fprintf(w, "load bench: %s parallel %8.3fs vs serial %8.3fs  (%.2fx, %d workers)  %s\n",
			label, parallel, serial, speedup, cand.BuildWorkers, status)
	}
	overhead("hash build", cand.BuildSerialSeconds, cand.BuildParallelSeconds)
	overhead("segment seal", cand.SealSerialSeconds, cand.SealParallelSeconds)
	fmt.Fprintf(w, "load bench: layouts identical: build %v, seal %v (%d build rows, %d seal rows)\n",
		cand.BuildLayoutIdentical, cand.SealLayoutIdentical, cand.BuildRows, cand.SealRows)
	return failures
}

// skipRateSlack is the tolerated relative drop in the zone-map skip rate:
// the candidate's segments_skipped/segments_total must stay within 20% of
// the committed baseline's. Pruning effectiveness is a count ratio, not a
// wall time, so it is stable across CI machines and gated tightly; the
// raw-vs-zone wall speedup is reported but not gated.
const skipRateSlack = 0.20

// checkStorage gates the segment-scan benchmark: the zone-map path must
// return the same result counts as the raw column path, must actually have
// engaged (zero segments scanned means the segmented path was silently
// disabled), and must not have lost more than skipRateSlack of the
// baseline's pruning effectiveness. A candidate that drops the benchmark
// while the baseline carries it fails — the gate cannot be dodged by not
// running it.
func checkStorage(w *os.File, base, cand *experiments.StorageBenchResult) int {
	if cand == nil {
		if base != nil {
			fmt.Fprintf(w, "storage bench: present in baseline, missing in candidate  REGRESSION\n")
			return 1
		}
		return 0
	}
	failures := 0
	if !cand.CountsIdentical {
		fmt.Fprintf(w, "storage bench: zone-map result counts differ from raw scan  REGRESSION\n")
		failures++
	}
	if cand.SegmentsTotal == 0 {
		fmt.Fprintf(w, "storage bench: segment scan path never engaged  REGRESSION\n")
		failures++
	}
	status := "ok"
	if base != nil && base.SkipRate > 0 {
		if cand.SkipRate < base.SkipRate*(1-skipRateSlack) {
			status = "REGRESSION"
			failures++
		}
		fmt.Fprintf(w, "storage bench: skip rate %.1f%% -> %.1f%%  (%+6.1f%%)  %s\n",
			base.SkipRate*100, cand.SkipRate*100, rel(base.SkipRate, cand.SkipRate)*100, status)
	} else {
		fmt.Fprintf(w, "storage bench: skip rate %.1f%% (no baseline)  %s\n", cand.SkipRate*100, status)
	}
	fmt.Fprintf(w, "storage bench: %d queries over %d rows, %d/%d segments skipped, raw/zone %.2fx, counts identical: %v\n",
		cand.Queries, cand.Rows, cand.SegmentsSkipped, cand.SegmentsTotal, cand.Speedup, cand.CountsIdentical)
	return failures
}

// checkServer gates the multi-tenant serving benchmark. Invariants within
// the candidate: served counts must match the bare engine, no query may
// error, the mid-run hot-swap must actually have happened, and — when the
// run used a rate-limited config (RateQPS > 0) — every submitted query must
// have been served (client backoff parity) with exact served+shed
// accounting. Against the
// baseline (when it carries the benchmark): serving wall time must not
// regress beyond the usual threshold, with the same sub-minSeconds slack as
// every other wall comparison. A candidate that silently drops the
// benchmark while the baseline has it fails — the gate cannot be dodged by
// not running it.
func checkServer(w *os.File, base, cand *experiments.ServerBenchResult, maxRegress, minSeconds float64) int {
	if cand == nil {
		if base != nil {
			fmt.Fprintf(w, "server bench: present in baseline, missing in candidate  REGRESSION\n")
			return 1
		}
		return 0
	}
	failures := 0
	if !cand.CountsIdentical {
		fmt.Fprintf(w, "server bench: served counts diverge from the bare engine  REGRESSION\n")
		failures++
	}
	if cand.Errors > 0 {
		fmt.Fprintf(w, "server bench: %d queries errored through the server  REGRESSION\n", cand.Errors)
		failures++
	}
	if cand.Swaps < 1 {
		fmt.Fprintf(w, "server bench: no mid-run hot-swap happened  REGRESSION\n")
		failures++
	}
	// Overload-control gates, armed when the run used a rate-limited config:
	// client backoff must absorb every shed (served-count parity with the
	// submitted workload), and the served/shed split must account for every
	// query exactly — a query that vanished without being served or counted
	// as shed is a bug in the admission path, not load.
	if cand.RateQPS > 0 {
		if cand.Served != cand.Queries {
			fmt.Fprintf(w, "server bench: served %d of %d queries under rate limiting (backoff failed to absorb sheds)  REGRESSION\n",
				cand.Served, cand.Queries)
			failures++
		}
		if cand.Served+cand.Shed != cand.Queries {
			fmt.Fprintf(w, "server bench: served %d + shed %d != %d queries (inexact shed accounting)  REGRESSION\n",
				cand.Served, cand.Shed, cand.Queries)
			failures++
		}
	}
	fmt.Fprintf(w, "server bench: %d queries / %d tenants / %d workers: %.0f qps, p50 %.2fms, p99 %.2fms, %d swaps, %d served, %d shed, %d retries, %d rate-limit hits (bucket %0.f qps burst %d), counts identical: %v\n",
		cand.Queries, cand.Tenants, cand.Workers, cand.QPS, cand.P50Millis, cand.P99Millis,
		cand.Swaps, cand.Served, cand.Shed, cand.Retries, cand.RateLimitHits, cand.RateQPS, cand.RateBurst, cand.CountsIdentical)
	if base != nil {
		failures += checkWall(w, "server", "serve wall", base.WallSeconds, cand.WallSeconds, maxRegress, minSeconds)
	}
	return failures
}

// parallelOverhead is the tolerated slowdown of a morsel-parallel run over
// its serial counterpart: the exchange must cost no more than +10% even when
// no extra cores are available to pay for it.
const parallelOverhead = 0.10

// checkParallel gates the candidate's own "<config>/pxN" runs against their
// serial siblings: intra-query parallelism must never make the executor wall
// more than parallelOverhead slower. The comparison is within the candidate
// snapshot — not against the baseline — so it holds on the very first
// snapshot that carries parallel runs.
func checkParallel(w *os.File, cand *experiments.BenchSnapshot, minSeconds float64) int {
	serial := make(map[string]experiments.BenchConfigSnapshot, len(cand.Configs))
	for _, c := range cand.Configs {
		if !strings.Contains(c.Name, "/px") {
			serial[c.Name] = c
		}
	}
	failures := 0
	for _, c := range cand.Configs {
		name, _, ok := strings.Cut(c.Name, "/px")
		if !ok {
			continue
		}
		s, found := serial[name]
		if !found {
			fmt.Fprintf(w, "config %-12s has no serial sibling %q, skipped\n", c.Name, name)
			continue
		}
		status := "ok"
		switch {
		case s.ExecWallSeconds <= 0:
			status = "no serial exec wall"
		case c.ExecWallSeconds <= s.ExecWallSeconds*(1+parallelOverhead):
		case c.ExecWallSeconds-s.ExecWallSeconds < minSeconds:
			// Sub-minSeconds absolute deltas on short walls are scheduler
			// noise, not exchange overhead.
			status = "ok (under min-seconds slack)"
		default:
			status = "REGRESSION"
			failures++
		}
		speedup := 0.0
		if c.ExecWallSeconds > 0 {
			speedup = s.ExecWallSeconds / c.ExecWallSeconds
		}
		fmt.Fprintf(w, "config %-12s parallel exec wall %8.3fs vs serial %8.3fs  (%.2fx)  %s\n",
			c.Name, c.ExecWallSeconds, s.ExecWallSeconds, speedup, status)
	}
	return failures
}

// checkExec gates the scalar-vs-batch executor benchmark: the batch path
// must return the same result counts as scalar (and, when the parallel pass
// ran, so must the morsel-parallel path) and must not be slower than scalar
// on the probe hot path; the parallel probe must not exceed the serial batch
// probe by more than parallelOverhead. The speedups are not diffed against
// the baseline snapshot — microbenchmark wall times are too noisy across CI
// machines — only the invariants are enforced.
func checkExec(w *os.File, e *experiments.ExecBenchResult, minSeconds float64) int {
	if e == nil {
		return 0
	}
	failures := 0
	if !e.CountsIdentical {
		fmt.Fprintf(w, "exec bench: result counts differ across executor paths  REGRESSION\n")
		failures++
	}
	status := "ok"
	if e.Speedup < 1.0 {
		status = "REGRESSION"
		failures++
	}
	fmt.Fprintf(w, "exec bench: probe %.2fx, suite T_E %.2fx, counts identical: %v  %s\n",
		e.Speedup, e.SuiteSpeedup, e.CountsIdentical, status)
	if e.ExecWorkers > 1 {
		pstatus := "ok"
		switch {
		case e.ParallelProbeSeconds <= e.BatchProbeSeconds*(1+parallelOverhead):
		case e.ParallelProbeSeconds-e.BatchProbeSeconds < minSeconds:
			pstatus = "ok (under min-seconds slack)"
		default:
			pstatus = "REGRESSION"
			failures++
		}
		fmt.Fprintf(w, "exec bench: %d workers, parallel probe %.2fx vs batch, suite T_E %.2fx  %s\n",
			e.ExecWorkers, e.ParallelSpeedup, e.SuiteParallelSpeedup, pstatus)
	}
	return failures
}

func checkWall(w *os.File, name, label string, base, cand, maxRegress, minSeconds float64) int {
	delta := rel(base, cand)
	status := "ok"
	fail := 0
	switch {
	case base <= 0:
		status = "no baseline"
	case cand <= base*(1+maxRegress):
	case base < minSeconds && cand < minSeconds:
		status = "ok (under min-seconds slack)"
	default:
		status = "REGRESSION"
		fail = 1
	}
	fmt.Fprintf(w, "config %-12s %-9s %8.3fs -> %8.3fs  (%+6.1f%%)  %s\n", name, label, base, cand, delta*100, status)
	return fail
}

// checkCE compares each estimator's sample-weighted mean q-error p50.
func checkCE(w *os.File, name string, base, cand experiments.BenchConfigSnapshot, maxRegress float64) int {
	baseQ := make(map[string]float64)
	for _, ce := range base.CE {
		baseQ[ce.Estimator] = meanP50(ce)
	}
	failures := 0
	for _, ce := range cand.CE {
		b, ok := baseQ[ce.Estimator]
		if !ok || b <= 0 {
			continue
		}
		c := meanP50(ce)
		status := "ok"
		if c > b*(1+maxRegress) {
			status = "REGRESSION"
			failures++
		}
		fmt.Fprintf(w, "config %-12s q-error[%s] p50 %8.3f -> %8.3f  (%+6.1f%%)  %s\n",
			name, ce.Estimator, b, c, rel(b, c)*100, status)
	}
	return failures
}

func meanP50(ce obs.CEEstimatorReport) float64 {
	var sum float64
	var n int
	for _, row := range ce.Sizes {
		sum += row.P50 * float64(row.Samples)
		n += row.Samples
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func rel(base, cand float64) float64 {
	if base <= 0 {
		return 0
	}
	return (cand - base) / base
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
