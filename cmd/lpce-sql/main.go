// Command lpce-sql is a SQL front-end over a generated database: an
// interactive shell by default, a long-running multi-tenant HTTP server
// with -serve.
//
// Usage:
//
//	lpce-sql [-titles N] [-seed N] [-estimator histogram|lpce|lpce-r]
//	         [-models-in dir] [-build-workers N] [-serve addr]
//	         [-tenants a:1,b:2] [-rate-qps N] [-rate-burst N]
//
// Interactive shell commands:
//
//	SELECT COUNT(*) FROM ... ;      execute a query
//	EXPLAIN SELECT ...              show the chosen plan without executing
//	\tables                         list tables and row counts
//	\sample [joins]                 print a random generated query
//	\quit                           exit
//
// With -models-in, the lpce/lpce-r estimators load trained artifacts from a
// modelio directory (written by cmd/lpce-train against the same -titles and
// -seed) instead of retraining at startup.
//
// -build-workers fans the initial load's segment sealing (and any later
// stats refresh) across the given worker count; the sealed table is
// byte-identical to serial sealing for any value. Zero resolves like
// engine.Config.BuildWorkers (default ExecWorkers, i.e. serial here).
//
// With -serve, the process becomes a resident server exposing POST /query,
// POST /explain, GET /healthz, GET /metrics, and POST /admin/models/swap,
// with per-tenant namespaces and admission control; SIGINT/SIGTERM drains
// in-flight queries before exiting. -rate-qps/-rate-burst arm a per-tenant
// token bucket: excess requests get HTTP 429 with a Retry-After hint.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/datagen"
	"github.com/lpce-db/lpce/internal/encode"
	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/modelio"
	"github.com/lpce-db/lpce/internal/server"
	"github.com/lpce-db/lpce/internal/sqlparse"
	"github.com/lpce-db/lpce/internal/storage"
	"github.com/lpce-db/lpce/internal/workload"
)

func main() {
	titles := flag.Int("titles", 1500, "rows in the central title table")
	seed := flag.Int64("seed", 1, "random seed")
	estName := flag.String("estimator", "lpce-r", "histogram, lpce, or lpce-r")
	modelsIn := flag.String("models-in", "", "load trained models from this artifact directory instead of training")
	buildWorkers := flag.Int("build-workers", 0, "parallel segment-sealing workers for the load and stats refresh (0 = engine default)")
	serve := flag.String("serve", "", "serve HTTP on this address (e.g. :8080) instead of the interactive shell")
	tenants := flag.String("tenants", "default:1", "comma-separated tenant:weight pairs for -serve")
	maxConcurrent := flag.Int64("max-concurrent", 8, "admission capacity in weight units for -serve")
	maxQueue := flag.Int("max-queue", 32, "admission wait-queue bound for -serve")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query deadline for -serve")
	cacheCap := flag.Int("cache-cap", 65536, "per-tenant estimate-cache capacity for -serve (0 = unbounded)")
	rateQPS := flag.Float64("rate-qps", 0, "per-tenant sustained request rate for -serve (0 = unlimited)")
	rateBurst := flag.Int("rate-burst", 0, "per-tenant token-bucket burst depth for -serve (0 = default)")
	flag.Parse()

	// Resolve sealing parallelism before generating: datagen seals every
	// table at the end of the load.
	storage.SetBuildWorkers(engine.Config{BuildWorkers: *buildWorkers}.EffectiveBuildWorkers())

	fmt.Printf("generating database (titles=%d)...\n", *titles)
	db := datagen.Generate(datagen.Config{Titles: *titles, Seed: *seed})
	enc := encode.NewEncoder(db.Schema)

	est, refiner, set, err := buildEstimator(db, enc, *estName, *modelsIn, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *serve != "" {
		if err := runServer(db, enc, set, serveOptions{
			addr:          *serve,
			mode:          *estName,
			tenants:       *tenants,
			maxConcurrent: *maxConcurrent,
			maxQueue:      *maxQueue,
			timeout:       *timeout,
			cacheCap:      *cacheCap,
			rateQPS:       *rateQPS,
			rateBurst:     *rateBurst,
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	runShell(db, est, refiner, *seed)
}

// buildEstimator resolves -estimator/-models-in into the serving stack: the
// estimator, the optional refiner, and (for the model modes) the artifact
// set the server boots from.
func buildEstimator(db *storage.Database, enc *encode.Encoder, estName, modelsIn string, seed int64) (cardest.Estimator, *core.Refiner, *modelio.Set, error) {
	var est cardest.Estimator = histogram.NewEstimator(db)
	if estName != "lpce" && estName != "lpce-r" {
		if estName != "histogram" {
			return nil, nil, nil, fmt.Errorf("unknown -estimator %q (want histogram, lpce, or lpce-r)", estName)
		}
		return est, nil, nil, nil
	}

	var set *modelio.Set
	if modelsIn != "" {
		fmt.Printf("loading trained models from %s...\n", modelsIn)
		loaded, err := modelio.LoadSet(modelsIn, enc, db)
		if err != nil {
			return nil, nil, nil, err
		}
		set = loaded
	} else {
		fmt.Println("training LPCE models (a few seconds)...")
		gen := workload.NewGenerator(db, seed+1)
		samples, _ := core.CollectSamples(db, histogram.NewEstimator(db),
			gen.QueriesRange(180, 2, 6), 40_000_000)
		logMax := core.MaxLogCard(samples)
		cfg := core.TrainConfig{Hidden: 24, OutWidth: 32, Epochs: 20, NodeWise: true, Seed: seed}
		set = &modelio.Set{
			LPCEI: core.TrainLPCEI(core.LPCEIConfig{
				Teacher: cfg,
				Student: core.TrainConfig{Hidden: 10, OutWidth: 12, Epochs: 15, NodeWise: true, Seed: seed},
			}, enc, samples, logMax),
		}
		if estName == "lpce-r" {
			set.Refiner = core.TrainRefiner(core.RefinerConfig{Kind: core.RefinerFull, Base: cfg, AdjustEpochs: 10},
				enc, db, samples, logMax)
		}
	}
	if set.LPCEI == nil {
		return nil, nil, nil, fmt.Errorf("artifact set has no LPCE-I model")
	}
	est = &core.TreeEstimator{Label: "lpce-i", Model: set.LPCEI.Model, Enc: enc}
	var refiner *core.Refiner
	if estName == "lpce-r" {
		if set.Refiner == nil {
			return nil, nil, nil, fmt.Errorf("estimator lpce-r needs a refiner artifact")
		}
		refiner = set.Refiner
	}
	return est, refiner, set, nil
}

type serveOptions struct {
	addr          string
	mode          string
	tenants       string
	maxConcurrent int64
	maxQueue      int
	timeout       time.Duration
	cacheCap      int
	rateQPS       float64
	rateBurst     int
}

// parseTenants parses "alpha:2,beta:1" (weight optional, default 1).
func parseTenants(spec string) ([]server.TenantConfig, error) {
	var out []server.TenantConfig
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, hasWeight := strings.Cut(part, ":")
		tc := server.TenantConfig{Name: name, Weight: 1}
		if hasWeight {
			w, err := strconv.ParseInt(weightStr, 10, 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("bad tenant weight in %q", part)
			}
			tc.Weight = w
		}
		out = append(out, tc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-tenants is empty")
	}
	return out, nil
}

// runServer runs the resident HTTP server until SIGINT/SIGTERM, then drains
// in-flight queries (30s grace) before exiting.
func runServer(db *storage.Database, enc *encode.Encoder, set *modelio.Set, opts serveOptions) error {
	tcs, err := parseTenants(opts.tenants)
	if err != nil {
		return err
	}
	// -rate-qps/-rate-burst apply uniformly to every tenant: the flags set a
	// per-tenant bucket, not a shared one, matching server.TenantConfig.
	for i := range tcs {
		tcs[i].RateQPS = opts.rateQPS
		tcs[i].RateBurst = opts.rateBurst
	}
	srv, err := server.New(server.Config{
		DB:             db,
		Enc:            enc,
		Mode:           opts.mode,
		Models:         set,
		Tenants:        tcs,
		MaxConcurrent:  opts.maxConcurrent,
		MaxQueue:       opts.maxQueue,
		DefaultTimeout: opts.timeout,
		CacheCapacity:  opts.cacheCap,
	})
	if err != nil {
		return err
	}

	hs := &http.Server{Addr: opts.addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	names := make([]string, len(tcs))
	for i, tc := range tcs {
		names[i] = fmt.Sprintf("%s(w=%d)", tc.Name, tc.Weight)
	}
	fmt.Printf("serving on %s (mode=%s, tenants=%s); Ctrl-C to drain and exit\n",
		opts.addr, opts.mode, strings.Join(names, ","))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		_ = srv.Close(context.Background())
		return err
	case s := <-sig:
		fmt.Printf("\n%v: draining...\n", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = hs.Shutdown(ctx)
	if err := srv.Close(ctx); err != nil {
		fmt.Printf("drain cut short: %v\n", err)
	} else {
		fmt.Println("drained cleanly")
	}
	return nil
}

// runShell is the interactive loop.
func runShell(db *storage.Database, est cardest.Estimator, refiner *core.Refiner, seed int64) {
	eng := engine.New(db)
	gen := workload.NewGenerator(db, seed+1)
	fmt.Printf("ready (estimator=%s). Try \\tables, \\sample 4, or a SELECT COUNT(*) query.\n", est.Name())

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("lpce> ")
		if !sc.Scan() {
			fmt.Println()
			if err := sc.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "stdin: %v\n", err)
				os.Exit(1)
			}
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case line == `\tables`:
			for _, t := range db.Tables {
				fmt.Printf("  %-18s %8d rows  %d columns\n", t.Meta.Name, t.NumRows(), len(t.Meta.Columns))
			}
		case strings.HasPrefix(line, `\sample`):
			joins := 4
			if fields := strings.Fields(line); len(fields) > 1 {
				if n, err := strconv.Atoi(fields[1]); err == nil {
					joins = n
				}
			}
			fmt.Println(" ", gen.Query(joins).SQL())
		case strings.HasPrefix(strings.ToUpper(line), "EXPLAIN"):
			sql := strings.TrimSpace(line[len("EXPLAIN"):])
			q, err := sqlparse.Parse(db.Schema, sql)
			if err != nil {
				fmt.Println(" ", err)
				continue
			}
			out, err := eng.Explain(q, est)
			if err != nil {
				fmt.Println(" ", err)
				continue
			}
			fmt.Println(out)
		default:
			q, err := sqlparse.Parse(db.Schema, line)
			if err != nil {
				fmt.Println(" ", err)
				continue
			}
			out, _, err := eng.ExplainAnalyze(q, engine.Config{
				Estimator: est, Refiner: refiner, Budget: 500_000_000,
			})
			if err != nil {
				fmt.Println(" ", err)
				continue
			}
			fmt.Println(out)
		}
	}
}
