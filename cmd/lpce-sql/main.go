// Command lpce-sql is an interactive SQL shell over a generated database:
// type COUNT(*) queries and watch the optimizer, the learned estimator and
// the re-optimizing executor at work.
//
// Usage:
//
//	lpce-sql [-titles N] [-seed N] [-estimator histogram|lpce|lpce-r]
//
// Shell commands:
//
//	SELECT COUNT(*) FROM ... ;      execute a query
//	EXPLAIN SELECT ...              show the chosen plan without executing
//	\tables                         list tables and row counts
//	\sample [joins]                 print a random generated query
//	\quit                           exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/datagen"
	"github.com/lpce-db/lpce/internal/encode"
	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/sqlparse"
	"github.com/lpce-db/lpce/internal/workload"
)

func main() {
	titles := flag.Int("titles", 1500, "rows in the central title table")
	seed := flag.Int64("seed", 1, "random seed")
	estName := flag.String("estimator", "lpce-r", "histogram, lpce, or lpce-r")
	flag.Parse()

	fmt.Printf("generating database (titles=%d)...\n", *titles)
	db := datagen.Generate(datagen.Config{Titles: *titles, Seed: *seed})
	eng := engine.New(db)
	gen := workload.NewGenerator(db, *seed+1)

	var est cardest.Estimator = histogram.NewEstimator(db)
	var refiner *core.Refiner
	if *estName == "lpce" || *estName == "lpce-r" {
		fmt.Println("training LPCE models (a few seconds)...")
		enc := encode.NewEncoder(db.Schema)
		samples, _ := core.CollectSamples(db, histogram.NewEstimator(db),
			gen.QueriesRange(180, 2, 6), 40_000_000)
		logMax := core.MaxLogCard(samples)
		cfg := core.TrainConfig{Hidden: 24, OutWidth: 32, Epochs: 20, NodeWise: true, Seed: *seed}
		lpcei := core.TrainLPCEI(core.LPCEIConfig{
			Teacher: cfg,
			Student: core.TrainConfig{Hidden: 10, OutWidth: 12, Epochs: 15, NodeWise: true, Seed: *seed},
		}, enc, samples, logMax)
		est = &core.TreeEstimator{Label: "lpce-i", Model: lpcei.Model, Enc: enc}
		if *estName == "lpce-r" {
			refiner = core.TrainRefiner(core.RefinerConfig{Kind: core.RefinerFull, Base: cfg, AdjustEpochs: 10},
				enc, db, samples, logMax)
		}
	}
	fmt.Printf("ready (estimator=%s). Try \\tables, \\sample 4, or a SELECT COUNT(*) query.\n", est.Name())

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("lpce> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case line == `\tables`:
			for _, t := range db.Tables {
				fmt.Printf("  %-18s %8d rows  %d columns\n", t.Meta.Name, t.NumRows(), len(t.Meta.Columns))
			}
		case strings.HasPrefix(line, `\sample`):
			joins := 4
			if fields := strings.Fields(line); len(fields) > 1 {
				if n, err := strconv.Atoi(fields[1]); err == nil {
					joins = n
				}
			}
			fmt.Println(" ", gen.Query(joins).SQL())
		case strings.HasPrefix(strings.ToUpper(line), "EXPLAIN"):
			sql := strings.TrimSpace(line[len("EXPLAIN"):])
			q, err := sqlparse.Parse(db.Schema, sql)
			if err != nil {
				fmt.Println(" ", err)
				continue
			}
			out, err := eng.Explain(q, est)
			if err != nil {
				fmt.Println(" ", err)
				continue
			}
			fmt.Println(out)
		default:
			q, err := sqlparse.Parse(db.Schema, line)
			if err != nil {
				fmt.Println(" ", err)
				continue
			}
			out, _, err := eng.ExplainAnalyze(q, engine.Config{
				Estimator: est, Refiner: refiner, Budget: 500_000_000,
			})
			if err != nil {
				fmt.Println(" ", err)
				continue
			}
			fmt.Println(out)
		}
	}
}
