// Command lpce-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	lpce-bench [-scale tiny|small|full] [-seed N] [-experiment all|table1|
//	           figure1|endtoend|refinement|ablations|figure17|figure18|
//	           parallel|observe|trainbench|execbench|storagebench|loadbench]
//	           [-parallel N] [-o file]
//	           [-trace] [-metrics-out file] [-bench-out file]
//	           [-timeout D] [-max-mat-rows N] [-exec batch|scalar]
//	           [-exec-workers N] [-build-workers N]
//	           [-segment-rows N] [-raw-scan]
//	           [-models-in dir] [-train-workers N]
//	           [-cpuprofile file] [-memprofile file]
//
// The default runs every experiment at small scale and streams the rendered
// tables to stdout. "endtoend" covers Table 2 and Figures 11–15;
// "refinement" covers Figure 16 and Table 3; "ablations" covers Figures
// 19–21. "parallel" executes the test workload concurrently across -parallel
// workers (GOMAXPROCS when 0) and reports aggregate throughput with
// per-phase latency percentiles against the serial baseline.
//
// -trace (equivalently -experiment observe) runs the JOB-like named suite
// with the full observability layer on and renders per-operator runtime
// stats, re-optimization events, and the CE-evaluation q-error tables.
// -metrics-out writes the complete observability report as JSON (implies
// -trace); -bench-out writes the BENCH_e2e.json perf snapshot (per-phase
// time distributions + q-error summary per configuration).
//
// -timeout sets a per-query deadline and -max-mat-rows caps materialized
// intermediate rows per query (both for the observe experiment; zero
// disables each). A query over budget fails alone with a typed error while
// the rest of the workload keeps running; the summary table and bench JSON
// report the degraded and failed counts.
//
// -models-in loads the SGD-trained models from a versioned artifact
// directory written by `lpce-train -out=<dir>` instead of training them —
// the CI bench gate uses this to cache training across runs. The artifacts
// must match the (scale, seed) schema; a fingerprint mismatch is a hard
// error. -train-workers fans training across goroutines when models are
// trained in-process (weights are byte-identical for any value).
//
// "trainbench" (also run automatically when -bench-out is set) trains the
// teacher model twice — serially and with -train-workers workers — asserts
// the weights are bit-identical, and reports the speedup.
//
// "execbench" (also run automatically when -bench-out is set) measures the
// vectorized batch executor against the scalar reference on a hash-join
// probe hot path and across the JOB-like suite, asserting identical result
// counts. -exec selects the executor for the observe experiment ("batch" is
// the engine default; "scalar" forces the tuple-at-a-time reference path)
// so the two can be compared under the full observability layer.
//
// -exec-workers enables morsel-driven intra-query parallelism at the given
// worker count (default 4; <= 1 keeps execution strictly serial). The
// observe experiment then adds one extra "<config>/px<N>" run per
// configuration alongside the serial baselines, and execbench adds
// batch-vs-parallel measurements, so the perf snapshot carries serial and
// parallel exec walls side by side. Results are byte-identical to the serial
// batch path for any worker count; wall-clock gains track available cores.
//
// "storagebench" (also run automatically when -bench-out is set) measures
// the segmented columnar scan path with zone-map pruning against the raw
// column path on a clustered synthetic table, asserting identical result
// counts and recording the segment skip rate that cmd/benchdiff gates.
// -segment-rows overrides the rows-per-segment granularity for tables
// sealed after startup, and -raw-scan disables the segmented path engine-wide
// (the oracle escape hatch, mirroring engine.Config.RawScan) so the two can
// be compared under the full observability layer.
//
// "loadbench" (also run automatically when -bench-out is set) measures the
// parallel build side: the partitioned hash-join build and parallel segment
// sealing against their serial oracles, asserting bitwise layout parity on
// both. -build-workers sets the sealing parallelism for every load and
// stats refresh (0 defaults to -exec-workers, matching how
// engine.Config.BuildWorkers resolves); results are byte-identical to
// serial sealing for any value.
//
// -cpuprofile and -memprofile write pprof profiles covering the selected
// experiment (setup excluded), for digging into executor hot spots with
// `go tool pprof`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/experiments"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
)

func main() {
	scale := flag.String("scale", "small", "experiment scale: tiny, small, or full")
	seed := flag.Int64("seed", 1, "random seed for data, workload and model init")
	exp := flag.String("experiment", "all", "experiment to run")
	workers := flag.Int("parallel", 0, "worker count for the parallel experiment (0 = GOMAXPROCS)")
	out := flag.String("o", "", "write output to this file instead of stdout")
	trace := flag.Bool("trace", false, "run the observability pass over the JOB-like suite")
	metricsOut := flag.String("metrics-out", "", "write the full observability report as JSON to this file (implies -trace)")
	benchOut := flag.String("bench-out", "", "write the BENCH_e2e.json perf snapshot to this file (implies -trace)")
	timeout := flag.Duration("timeout", 0, "per-query deadline for the observe experiment (0 = none)")
	maxMatRows := flag.Int64("max-mat-rows", 0, "per-query cap on materialized intermediate rows (0 = unlimited)")
	modelsIn := flag.String("models-in", "", "load trained models from this artifact directory instead of training")
	trainWorkers := flag.Int("train-workers", 0, "training worker goroutines (0 = serial; weights are identical for any value)")
	execMode := flag.String("exec", "batch", "executor for the observe experiment: batch (default) or scalar")
	execWorkers := flag.Int("exec-workers", 4, "morsel-parallelism worker count for observe/execbench (<= 1 = serial only)")
	buildWorkers := flag.Int("build-workers", 0, "parallel segment-sealing workers for loads and stats refresh (0 = match -exec-workers)")
	segmentRows := flag.Int("segment-rows", 0, "rows per columnar segment (0 = default; applies to data generated after startup)")
	rawScan := flag.Bool("raw-scan", false, "disable zone-map segment scans and read raw columns (oracle escape hatch)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the experiment to this file")
	flag.Parse()
	if *execMode != "batch" && *execMode != "scalar" {
		fmt.Fprintf(os.Stderr, "unknown -exec mode %q (want batch or scalar)\n", *execMode)
		os.Exit(1)
	}
	if *metricsOut != "" || *benchOut != "" {
		*trace = true
	}
	if *segmentRows > 0 {
		storage.SetSegmentRows(*segmentRows)
	}
	// Sealing parallelism defaults to the exec parallelism (resolved the
	// same way engine.Config does); set before setup so the initial data
	// load already seals in parallel.
	bw := engine.Config{ExecWorkers: *execWorkers, BuildWorkers: *buildWorkers}.EffectiveBuildWorkers()
	storage.SetBuildWorkers(bw)
	if *trace && *exp == "all" {
		*exp = "observe"
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	start := time.Now()
	fmt.Fprintf(w, "setting up environment (scale=%s, seed=%d)...\n", *scale, *seed)
	if *modelsIn != "" {
		fmt.Fprintf(w, "loading trained models from %s\n", *modelsIn)
	}
	env, err := experiments.SetupWith(experiments.ParseScale(*scale), *seed, experiments.SetupOptions{
		TrainWorkers: *trainWorkers,
		ModelsDir:    *modelsIn,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(w, "setup done in %s\n\n", time.Since(start).Round(time.Millisecond))

	opts := obsOpts{
		metricsOut: *metricsOut, benchOut: *benchOut, scale: *scale, seed: *seed,
		timeout: *timeout, maxMatRows: *maxMatRows, trainWorkers: *trainWorkers,
		scalarExec: *execMode == "scalar", execWorkers: *execWorkers, rawScan: *rawScan,
		buildWorkers: bw,
	}
	// Profiles cover the experiment only; the setup phase (data generation
	// and training) would otherwise drown the executor hot spots.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if err := run(env, *exp, *workers, w, opts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
	}
	fmt.Fprintf(w, "\ntotal wall time: %s\n", time.Since(start).Round(time.Millisecond))
}

// obsOpts carries the observability output destinations and the per-query
// resource budgets into run.
type obsOpts struct {
	metricsOut   string
	benchOut     string
	scale        string
	seed         int64
	timeout      time.Duration
	maxMatRows   int64
	trainWorkers int
	scalarExec   bool
	execWorkers  int
	buildWorkers int
	rawScan      bool
}

func run(env *experiments.Env, exp string, workers int, w io.Writer, opts obsOpts) error {
	switch exp {
	case "all":
		return experiments.RunAll(env, w)
	case "table1":
		fmt.Fprintln(w, experiments.Table1(env).Render())
	case "figure1":
		fmt.Fprintln(w, experiments.Figure1(env).Render())
	case "endtoend":
		sets := []struct {
			label   string
			queries []*query.Query
		}{
			{env.JoinLowLabel, env.JoinLow},
			{env.JoinHighLabel, env.JoinHigh},
			{env.JoinTinyLabel, env.JoinTiny},
		}
		for _, set := range sets {
			suite, err := env.RunSuite(set.label, set.queries)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, experiments.Figure11(suite).Render())
			fmt.Fprintln(w, experiments.Table2(suite).Render())
			fmt.Fprintln(w, experiments.Figure12(suite).Render())
			fmt.Fprintln(w, experiments.Figure13(suite).Render())
			fmt.Fprintln(w, experiments.Figure14(suite).Render())
		}
	case "refinement":
		samples := env.CollectTestSamples(env.JoinHigh)
		fmt.Fprintln(w, experiments.Figure16(env, env.JoinHighLabel, samples).Render())
		fmt.Fprintln(w, experiments.Table3(env, samples).Render())
	case "ablations":
		fmt.Fprintln(w, experiments.Figure19And20(env).Render())
		fmt.Fprintln(w, experiments.Figure21(env).Render())
	case "figure17":
		fmt.Fprintln(w, experiments.Figure17(env).Render())
	case "figure18":
		fmt.Fprintln(w, experiments.Figure18(env).Render())
	case "joblike":
		r, err := experiments.JobSuite(env)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Render())
	case "parallel":
		r, err := experiments.ParallelBench(env, workers)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Render())
	case "trainbench":
		fmt.Fprintln(w, experiments.TrainBench(env, opts.trainWorkers).Render())
	case "execbench":
		r, err := experiments.ExecBench(env, opts.execWorkers)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Render())
		if !r.CountsIdentical {
			return fmt.Errorf("exec bench: batch path result counts differ from scalar")
		}
	case "storagebench":
		r, err := experiments.StorageBench(opts.buildWorkers)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Render())
		if !r.CountsIdentical {
			return fmt.Errorf("storage bench: zone-map path result counts differ from raw scan")
		}
	case "loadbench":
		r := experiments.LoadBench(opts.buildWorkers)
		fmt.Fprintln(w, r.Render())
		if !r.BuildLayoutIdentical {
			return fmt.Errorf("load bench: parallel hash-build layout diverges from serial")
		}
		if !r.SealLayoutIdentical {
			return fmt.Errorf("load bench: parallel-sealed segments diverge from serial sealing")
		}
	case "observe":
		r, err := experiments.ObservabilityWithOptions(env, experiments.ObsOptions{
			Workers: workers, Timeout: opts.timeout, MaxMatRows: opts.maxMatRows,
			ScalarExec: opts.scalarExec, ExecWorkers: opts.execWorkers, RawScan: opts.rawScan,
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Render())
		if opts.metricsOut != "" {
			if err := writeJSON(opts.metricsOut, r); err != nil {
				return err
			}
			fmt.Fprintf(w, "observability report written to %s\n", opts.metricsOut)
		}
		if opts.benchOut != "" {
			snap := r.Snapshot(opts.scale, opts.seed)
			// The perf snapshot carries the training benchmark so the CI
			// gate also watches training-side regressions (determinism and
			// speedup).
			snap.Training = experiments.TrainBench(env, opts.trainWorkers)
			fmt.Fprintln(w, snap.Training.Render())
			if !snap.Training.WeightsIdentical {
				return fmt.Errorf("train bench: parallel weights differ from serial weights")
			}
			// ... and the executor benchmark, so it also watches batch-path
			// regressions (correctness and speedup).
			eb, err := experiments.ExecBench(env, opts.execWorkers)
			if err != nil {
				return err
			}
			snap.Exec = eb
			fmt.Fprintln(w, eb.Render())
			if !eb.CountsIdentical {
				return fmt.Errorf("exec bench: batch path result counts differ from scalar")
			}
			// ... and the serving benchmark, so it also watches the
			// multi-tenant server path (throughput, tail latency, hot-swap).
			sb, err := experiments.ServerBench(env, opts.execWorkers)
			if err != nil {
				return err
			}
			snap.Server = sb
			fmt.Fprintf(w, "server bench: %d queries, %d tenants, %d workers (bucket %.0f qps burst %d): %.0f qps, p50 %.2fms, p99 %.2fms, %d swaps, %d served, %d shed, %d retries, %d rate-limit hits, counts identical: %v\n",
				sb.Queries, sb.Tenants, sb.Workers, sb.RateQPS, sb.RateBurst,
				sb.QPS, sb.P50Millis, sb.P99Millis, sb.Swaps, sb.Served, sb.Shed,
				sb.Retries, sb.RateLimitHits, sb.CountsIdentical)
			if !sb.CountsIdentical {
				return fmt.Errorf("server bench: served results diverge from the bare engine")
			}
			if sb.RateQPS > 0 && sb.Served != sb.Queries {
				return fmt.Errorf("server bench: served %d of %d queries under rate limiting", sb.Served, sb.Queries)
			}
			// ... and the storage benchmark, so it also watches the segmented
			// scan path (byte-identity with raw scans and zone-map skip rate).
			stb, err := experiments.StorageBench(opts.buildWorkers)
			if err != nil {
				return err
			}
			snap.Storage = stb
			fmt.Fprintln(w, stb.Render())
			if !stb.CountsIdentical {
				return fmt.Errorf("storage bench: zone-map path result counts differ from raw scan")
			}
			// ... and the build-side benchmark, so it also watches the
			// parallel hash-join build and parallel sealing (walls and
			// bitwise layout parity against the serial oracles).
			lb := experiments.LoadBench(opts.buildWorkers)
			snap.Load = lb
			fmt.Fprintln(w, lb.Render())
			if !lb.BuildLayoutIdentical {
				return fmt.Errorf("load bench: parallel hash-build layout diverges from serial")
			}
			if !lb.SealLayoutIdentical {
				return fmt.Errorf("load bench: parallel-sealed segments diverge from serial sealing")
			}
			if err := writeJSON(opts.benchOut, snap); err != nil {
				return err
			}
			fmt.Fprintf(w, "perf snapshot written to %s\n", opts.benchOut)
		}
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// writeJSON writes v to path as indented JSON.
func writeJSON(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
