// Command lpce-train runs the training half of the experiment pipeline —
// synthetic database, sample collection via the instrumented engine, LPCE-I
// distillation, LPCE-R two-stage training, and the query-driven baselines —
// and saves every model as a versioned artifact directory that
// `lpce-bench -models-in=<dir>` loads instead of retraining.
//
// Training is deterministic per (scale, seed) and byte-identical for every
// -workers value, so artifacts are cacheable by (scale, seed, code
// version): the CI bench gate trains once, caches the directory, and every
// subsequent run skips straight to evaluation.
//
// Usage:
//
//	lpce-train [-scale tiny|small|full] [-seed N] [-workers N] [-out dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/lpce-db/lpce/internal/experiments"
)

func main() {
	scale := flag.String("scale", "small", "training scale: tiny, small, or full")
	seed := flag.Int64("seed", 1, "random seed for data, workload and model init")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "training worker goroutines (weights are identical for any value)")
	out := flag.String("out", "models", "output directory for model artifacts")
	flag.Parse()

	start := time.Now()
	fmt.Printf("training environment (scale=%s, seed=%d, workers=%d)...\n", *scale, *seed, *workers)
	env, err := experiments.SetupWith(experiments.ParseScale(*scale), *seed, experiments.SetupOptions{
		TrainWorkers: *workers,
		TrainOnly:    true,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  collected %d plans (%d skipped), trained all models in %s\n",
		env.CollectStats.Collected, env.CollectStats.Skipped, env.TrainTime.Round(time.Millisecond))
	fmt.Printf("  teacher %d weights -> student %d weights (%.1fx compression)\n",
		env.LPCEI.Teacher.NumWeights(), env.LPCEI.Model.NumWeights(),
		float64(env.LPCEI.Teacher.NumWeights())/float64(env.LPCEI.Model.NumWeights()))

	if err := env.ModelSet().Save(*out, env.Enc); err != nil {
		fatal(err)
	}
	fmt.Printf("artifacts written to %s (schema fingerprint %016x) in %s total\n",
		*out, env.Enc.Fingerprint(), time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
