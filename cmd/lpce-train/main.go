// Command lpce-train runs the training pipeline — synthetic database,
// sample collection via the instrumented engine, LPCE-I distillation and
// LPCE-R two-stage training — and saves the model weights to a directory.
//
// Usage:
//
//	lpce-train [-titles N] [-queries N] [-seed N] [-out dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/datagen"
	"github.com/lpce-db/lpce/internal/encode"
	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/workload"
)

func main() {
	titles := flag.Int("titles", 2500, "rows in the central title table")
	queries := flag.Int("queries", 400, "training queries to generate")
	minJoins := flag.Int("min-joins", 3, "minimum joins per training query")
	maxJoins := flag.Int("max-joins", 8, "maximum joins per training query")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "models", "output directory for model weights")
	flag.Parse()

	fmt.Printf("generating database (titles=%d, seed=%d)...\n", *titles, *seed)
	db := datagen.Generate(datagen.Config{Titles: *titles, Seed: *seed})
	fmt.Printf("  %d tables, %d total rows\n", len(db.Tables), db.TotalRows())

	enc := encode.NewEncoder(db.Schema)
	gen := workload.NewGenerator(db, *seed+1)
	qs := gen.QueriesRange(*queries, *minJoins, *maxJoins)

	fmt.Printf("collecting training samples from %d queries...\n", len(qs))
	samples, stats := core.CollectSamples(db, histogram.NewEstimator(db), qs, 150_000_000)
	fmt.Printf("  collected %d plans (%d skipped) in %s\n",
		stats.Collected, stats.Skipped, stats.Duration.Round(time.Millisecond))
	logMax := core.MaxLogCard(samples)

	teacher := core.TrainConfig{Hidden: 48, OutWidth: 64, Epochs: 8, Batch: 32, LR: 1.5e-3, NodeWise: true, Seed: *seed}
	student := core.TrainConfig{Hidden: 12, OutWidth: 16, Epochs: 6, Batch: 32, LR: 1.5e-3, NodeWise: true, Seed: *seed}

	fmt.Println("training LPCE-I (teacher + knowledge distillation)...")
	start := time.Now()
	lpcei := core.TrainLPCEI(core.LPCEIConfig{Teacher: teacher, Student: student}, enc, samples, logMax)
	fmt.Printf("  done in %s: teacher %d weights -> student %d weights (%.1fx compression)\n",
		time.Since(start).Round(time.Millisecond),
		lpcei.Teacher.NumWeights(), lpcei.Model.NumWeights(),
		float64(lpcei.Teacher.NumWeights())/float64(lpcei.Model.NumWeights()))

	fmt.Println("training LPCE-R (pre-train + adjustment)...")
	start = time.Now()
	refiner := core.TrainRefiner(core.RefinerConfig{
		Kind: core.RefinerFull, Base: teacher, AdjustEpochs: 5, PrefixesPerSample: 3,
	}, enc, db, samples, logMax)
	fmt.Printf("  done in %s\n", time.Since(start).Round(time.Millisecond))

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	fmt.Println("saving models (self-describing: architecture + weights)...")
	for name, write := range map[string]func(string) error{
		"lpce-i.gob":         func(p string) error { return core.SaveTreeModelFile(p, lpcei.Model) },
		"lpce-i-teacher.gob": func(p string) error { return core.SaveTreeModelFile(p, lpcei.Teacher) },
		"lpce-r.gob": func(p string) error {
			f, err := os.Create(p)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := core.SaveRefiner(f, refiner); err != nil {
				return err
			}
			return f.Close()
		},
	} {
		path := filepath.Join(*out, name)
		if err := write(path); err != nil {
			fatal(err)
		}
		fmt.Printf("  wrote %s\n", path)
	}
	fmt.Printf("training complete; normalization logMax=%.4f travels inside the model files\n", logMax)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
