// Command lpce-demo walks one query through the full LPCE pipeline and
// prints a narrated trace: initial estimates, the chosen plan, checkpoint
// behaviour, the re-optimized plan when triggered, and the end-to-end time
// decomposition with and without re-optimization.
//
// Usage:
//
//	lpce-demo [-titles N] [-seed N] [-joins N] [-threshold Q]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/datagen"
	"github.com/lpce-db/lpce/internal/encode"
	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/reopt"
	"github.com/lpce-db/lpce/internal/workload"
)

func main() {
	titles := flag.Int("titles", 1200, "rows in the central title table")
	seed := flag.Int64("seed", 3, "random seed")
	joins := flag.Int("joins", 6, "joins in the demo query")
	threshold := flag.Float64("threshold", 10, "re-optimization q-error threshold")
	flag.Parse()

	fmt.Println("== LPCE demo: progressive cardinality estimation in action ==")
	db := datagen.Generate(datagen.Config{Titles: *titles, Seed: *seed})
	enc := encode.NewEncoder(db.Schema)
	gen := workload.NewGenerator(db, *seed+1)

	fmt.Println("training models on 150 sample queries (tiny demo config)...")
	trainQs := gen.QueriesRange(150, 2, *joins)
	samples, _ := core.CollectSamples(db, histogram.NewEstimator(db), trainQs, 60_000_000)
	logMax := core.MaxLogCard(samples)
	cfg := core.TrainConfig{Hidden: 24, OutWidth: 32, Epochs: 6, Batch: 32, LR: 2e-3, NodeWise: true, Seed: *seed}
	lpcei := core.TrainLPCEI(core.LPCEIConfig{
		Teacher: cfg,
		Student: core.TrainConfig{Hidden: 10, OutWidth: 12, Epochs: 4, Batch: 32, LR: 2e-3, NodeWise: true, Seed: *seed},
	}, enc, samples, logMax)
	refiner := core.TrainRefiner(core.RefinerConfig{
		Kind: core.RefinerFull, Base: cfg, AdjustEpochs: 4, PrefixesPerSample: 3,
	}, enc, db, samples, logMax)

	est := &core.TreeEstimator{Label: "lpce-i", Model: lpcei.Model, Enc: enc}
	eng := engine.New(db)
	policy := reopt.Policy{QErrThreshold: *threshold, MaxReopts: 3}

	// hunt for a query where re-optimization fires
	for attempt := 0; attempt < 60; attempt++ {
		q := gen.Query(*joins)
		withR, err := eng.Execute(q, engine.Config{Estimator: est, Refiner: refiner, Policy: policy})
		if err != nil {
			fatal(err)
		}
		if withR.Reopts == 0 {
			continue
		}
		withoutR, err := eng.Execute(q, engine.Config{Estimator: est})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nquery (%d joins):\n  %s\n", q.NumJoins(), q.SQL())
		fmt.Printf("\ninitial plan chosen from LPCE-I estimates:\n%s\n", withoutR.FinalPlan)
		fmt.Printf("re-optimization fired %d time(s); final plan (resumes from materialized intermediates):\n%s\n",
			withR.Reopts, withR.FinalPlan)
		fmt.Printf("result COUNT(*) = %d (identical with and without re-optimization: %v)\n\n",
			withR.Count, withR.Count == withoutR.Count)
		decompose := func(name string, r engine.Result) {
			fmt.Printf("%-22s plan=%-10s infer=%-10s reopt=%-10s exec=%-10s total=%s\n",
				name,
				r.PlanTime.Round(time.Microsecond), r.InferTime.Round(time.Microsecond),
				r.ReoptTime.Round(time.Microsecond), r.ExecTime.Round(time.Microsecond),
				r.Total().Round(time.Microsecond))
		}
		decompose("LPCE-I (no reopt):", withoutR)
		decompose("LPCE-R (with reopt):", withR)
		return
	}
	fmt.Println("\nno query triggered re-optimization — LPCE-I estimates were " +
		"accurate enough everywhere; rerun with a lower -threshold or another -seed")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
