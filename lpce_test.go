package lpce

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

// TestPublicAPIEndToEnd drives the entire documented quick-start flow
// through the facade, mirroring what a downstream user would write.
func TestPublicAPIEndToEnd(t *testing.T) {
	db := GenerateDatabase(DataConfig{Titles: 300, Seed: 1})
	if db.TotalRows() == 0 {
		t.Fatal("empty database")
	}
	gen := NewWorkloadGenerator(db, 2)

	samples, stats := CollectSamples(db, NewHistogramEstimator(db),
		gen.QueriesRange(40, 2, 4), 50_000_000)
	if stats.Collected < 30 {
		t.Fatalf("collected %d samples", stats.Collected)
	}

	enc := NewEncoder(db.Schema)
	logMax := MaxLogCard(samples)
	model := TrainLPCEI(LPCEIConfig{
		Teacher: TrainConfig{Hidden: 12, OutWidth: 12, Epochs: 4, NodeWise: true, Seed: 1},
		Student: TrainConfig{Hidden: 8, OutWidth: 8, Epochs: 3, NodeWise: true, Seed: 1},
	}, enc, samples, logMax)
	refiner := TrainRefiner(RefinerConfig{
		Base: TrainConfig{Hidden: 12, OutWidth: 12, Epochs: 3, NodeWise: true, Seed: 1},
	}, enc, db, samples, logMax)

	eng := NewEngine(db)
	q := gen.Query(4)
	res, err := eng.Execute(q, EngineConfig{
		Estimator: NewTreeEstimator("lpce-i", model.Model, enc),
		Refiner:   refiner,
		Policy:    DefaultReoptPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() <= 0 {
		t.Fatal("no time recorded")
	}

	// same result as the histogram baseline
	base, err := eng.Execute(q, EngineConfig{Estimator: NewHistogramEstimator(db)})
	if err != nil {
		t.Fatal(err)
	}
	if base.Count != res.Count {
		t.Fatalf("LPCE changed the result: %d vs %d", res.Count, base.Count)
	}
}

func TestDefaultReoptPolicyValues(t *testing.T) {
	p := DefaultReoptPolicy()
	if p.QErrThreshold != 50 || p.MaxReopts != 3 {
		t.Fatalf("policy = %+v", p)
	}
}

// TestExperimentFacade smoke-tests the experiment entry points at tiny
// scale through the public API.
func TestExperimentFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny experiment environment still trains several models")
	}
	env := SetupExperiments(ScaleTiny, 3)
	var buf bytes.Buffer
	// RunExperiments executes the full suite; at tiny scale it completes in
	// well under a minute, and the rendered report must contain every
	// table/figure heading.
	if err := RunExperiments(env, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"Table 1", "Figure 1", "Table 2", "Figure 11", "Figure 12",
		"Figure 13", "Figure 14", "Figure 15", "Figure 16", "Figure 17",
		"Figure 18", "Figures 19-20", "Figure 21", "Table 3",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("experiment report missing %q", frag)
		}
	}
}

// TestRobustnessFacade drives the fault-tolerance surface through the
// public API: a guarded estimator over a panicky inner model, per-query
// deadlines, and resource budgets.
func TestRobustnessFacade(t *testing.T) {
	db := GenerateDatabase(DataConfig{Titles: 300, Seed: 5})
	gen := NewWorkloadGenerator(db, 6)
	eng := NewEngine(db)
	q := gen.Query(3)

	guard := NewEstimatorGuard(panicky{}, EstimatorGuardConfig{
		Fallback: NewHistogramEstimator(db),
		Bound:    CrossProductBound(db),
	})
	res, err := eng.Execute(q, EngineConfig{Estimator: guard})
	if err != nil {
		t.Fatalf("guarded execution failed: %v", err)
	}
	base, err := eng.Execute(q, EngineConfig{Estimator: NewHistogramEstimator(db)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != base.Count {
		t.Fatalf("guard changed the result: %d vs %d", res.Count, base.Count)
	}
	if guard.Stats().Panics == 0 {
		t.Fatal("guard saw no panics from the panicky estimator")
	}

	// A 10-row materialization budget fails some query with the typed error.
	var hit bool
	for i := 0; i < 20 && !hit; i++ {
		_, err := eng.Execute(gen.Query(4), EngineConfig{
			Estimator: NewHistogramEstimator(db),
			Limits:    ResourceLimits{MaxMatRows: 10},
		})
		var re *ResourceError
		if errors.As(err, &re) {
			hit = true
		} else if err != nil {
			t.Fatalf("unexpected error type: %v", err)
		}
	}
	if !hit {
		t.Fatal("no query tripped the materialization budget")
	}

	// A cancelled context fails the query with the context's error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.ExecuteContext(ctx, q, EngineConfig{Estimator: NewHistogramEstimator(db)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// panicky is an estimator that always panics, standing in for a broken
// learned model behind the guard.
type panicky struct{}

func (panicky) Name() string                          { return "panicky" }
func (panicky) EstimateSubset(*Query, BitSet) float64 { panic("model exploded") }
