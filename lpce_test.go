package lpce

import (
	"bytes"
	"strings"
	"testing"
)

// TestPublicAPIEndToEnd drives the entire documented quick-start flow
// through the facade, mirroring what a downstream user would write.
func TestPublicAPIEndToEnd(t *testing.T) {
	db := GenerateDatabase(DataConfig{Titles: 300, Seed: 1})
	if db.TotalRows() == 0 {
		t.Fatal("empty database")
	}
	gen := NewWorkloadGenerator(db, 2)

	samples, stats := CollectSamples(db, NewHistogramEstimator(db),
		gen.QueriesRange(40, 2, 4), 50_000_000)
	if stats.Collected < 30 {
		t.Fatalf("collected %d samples", stats.Collected)
	}

	enc := NewEncoder(db.Schema)
	logMax := MaxLogCard(samples)
	model := TrainLPCEI(LPCEIConfig{
		Teacher: TrainConfig{Hidden: 12, OutWidth: 12, Epochs: 4, NodeWise: true, Seed: 1},
		Student: TrainConfig{Hidden: 8, OutWidth: 8, Epochs: 3, NodeWise: true, Seed: 1},
	}, enc, samples, logMax)
	refiner := TrainRefiner(RefinerConfig{
		Base: TrainConfig{Hidden: 12, OutWidth: 12, Epochs: 3, NodeWise: true, Seed: 1},
	}, enc, db, samples, logMax)

	eng := NewEngine(db)
	q := gen.Query(4)
	res, err := eng.Execute(q, EngineConfig{
		Estimator: NewTreeEstimator("lpce-i", model.Model, enc),
		Refiner:   refiner,
		Policy:    DefaultReoptPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() <= 0 {
		t.Fatal("no time recorded")
	}

	// same result as the histogram baseline
	base, err := eng.Execute(q, EngineConfig{Estimator: NewHistogramEstimator(db)})
	if err != nil {
		t.Fatal(err)
	}
	if base.Count != res.Count {
		t.Fatalf("LPCE changed the result: %d vs %d", res.Count, base.Count)
	}
}

func TestDefaultReoptPolicyValues(t *testing.T) {
	p := DefaultReoptPolicy()
	if p.QErrThreshold != 50 || p.MaxReopts != 3 {
		t.Fatalf("policy = %+v", p)
	}
}

// TestExperimentFacade smoke-tests the experiment entry points at tiny
// scale through the public API.
func TestExperimentFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny experiment environment still trains several models")
	}
	env := SetupExperiments(ScaleTiny, 3)
	var buf bytes.Buffer
	// RunExperiments executes the full suite; at tiny scale it completes in
	// well under a minute, and the rendered report must contain every
	// table/figure heading.
	if err := RunExperiments(env, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"Table 1", "Figure 1", "Table 2", "Figure 11", "Figure 12",
		"Figure 13", "Figure 14", "Figure 15", "Figure 16", "Figure 17",
		"Figure 18", "Figures 19-20", "Figure 21", "Table 3",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("experiment report missing %q", frag)
		}
	}
}
