module github.com/lpce-db/lpce

go 1.22
