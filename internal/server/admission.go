package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/lpce-db/lpce/internal/obs"
)

// Typed admission errors. The HTTP layer maps them to status codes (429,
// 503, 504); embedded callers match them with errors.Is.
var (
	// ErrQueueFull rejects an admission because the bounded wait queue is
	// already at capacity — the server is overloaded and sheds load instead
	// of buffering unboundedly (HTTP 429).
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrClosed rejects an admission because the server is shutting down
	// (HTTP 503). In-flight queries keep running; only new work is refused.
	ErrClosed = errors.New("server: shutting down")
	// ErrDeadlineUnmeetable rejects an admission whose deadline is closer
	// than the predicted queue wait: queueing the request would only have it
	// expire in line, wasting a queue slot and the client's patience. It is
	// cheaper for everyone to say 504 now (HTTP 504).
	ErrDeadlineUnmeetable = errors.New("server: deadline unmeetable before predicted queue wait")
)

// ShedError wraps an admission rejection with an earliest-retry hint for
// the Retry-After header and for backoff clients. errors.Is matching passes
// through to the wrapped sentinel.
type ShedError struct {
	Err   error
	After time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("%v (retry after %v)", e.Err, e.After)
}

// Unwrap exposes the wrapped sentinel to errors.Is / errors.As.
func (e *ShedError) Unwrap() error { return e.Err }

// RetryAfter returns the earliest-retry hint.
func (e *ShedError) RetryAfter() time.Duration { return e.After }

// admitter is a weighted semaphore with a bounded FIFO wait queue: the
// admission-control core. Each tenant acquires its configured weight per
// query, so heavier tenants occupy more of the shared capacity and one
// tenant's burst cannot starve the rest beyond its weight share. When the
// capacity is exhausted, up to maxQueue acquisitions wait in arrival order;
// the queue overflowing rejects immediately with ErrQueueFull rather than
// buffering every caller the network can deliver.
type admitter struct {
	mu      sync.Mutex
	cap     int64
	used    int64
	queue   []*waiter
	maxWait int
	closed  bool
	// drained is closed when the admitter is closed AND the last in-flight
	// weight is released; Close waits on it to drain.
	drained chan struct{}

	// waitEWMA smooths the observed queue waits of recently granted waiters;
	// it is the predicted wait a newly enqueued request faces, used by the
	// deadline-aware rejection below. Direct (no-queue) admissions decay it
	// toward zero so an idle server forgets old congestion.
	waitEWMA time.Duration
	// onQueue, when set, observes the queue depth after every change — the
	// health state machine's feed. Invoked outside the mutex.
	onQueue func(depth int)

	// metrics (nil-safe, interned by the owning server)
	inflight *obs.Gauge
	queued   *obs.Gauge
	waitMs   *obs.Gauge // predicted queue wait (the EWMA), milliseconds
	admitted *obs.Counter
	rejected *obs.Counter
	shedded  *obs.Counter // rejected because closed
	deadline *obs.Counter // rejected because the deadline cannot be met
}

type waiter struct {
	weight     int64
	ready      chan struct{} // closed on grant
	err        error         // set before ready is closed on failure
	enqueuedAt time.Time     // feeds the wait EWMA on grant
	// abandoned marks a waiter whose context expired; the granter skips it.
	abandoned bool
}

func newAdmitter(capacity int64, maxWait int, reg *obs.Registry) *admitter {
	if capacity <= 0 {
		capacity = 1
	}
	if maxWait < 0 {
		maxWait = 0
	}
	return &admitter{
		cap:      capacity,
		maxWait:  maxWait,
		drained:  make(chan struct{}),
		inflight: reg.Gauge("server.admission.inflight_weight"),
		queued:   reg.Gauge("server.admission.queued"),
		waitMs:   reg.Gauge("server.admission.predicted_wait_ms"),
		admitted: reg.Counter("server.admission.admitted"),
		rejected: reg.Counter("server.admission.rejected_queue_full"),
		shedded:  reg.Counter("server.admission.rejected_closed"),
		deadline: reg.Counter("server.admission.rejected_deadline"),
	}
}

// ewmaAlphaShift sets the wait-EWMA smoothing: new = old + (sample-old)/8.
const ewmaAlphaShift = 3

// noteWaitLocked folds one observed queue wait into the EWMA. Called with
// the mutex held; direct admissions pass 0 to decay it.
func (a *admitter) noteWaitLocked(wait time.Duration) {
	a.waitEWMA += (wait - a.waitEWMA) >> ewmaAlphaShift
	a.waitMs.Set(float64(a.waitEWMA) / float64(time.Millisecond))
}

// predictedWait returns the current queue-wait prediction.
func (a *admitter) predictedWait() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waitEWMA
}

// retryHintLocked is the Retry-After hint attached to sheds: the predicted
// queue wait, floored at 1ms so clients never busy-spin on a zero hint.
// Called with the mutex held.
func (a *admitter) retryHintLocked() time.Duration {
	if a.waitEWMA < time.Millisecond {
		return time.Millisecond
	}
	return a.waitEWMA
}

// notifyQueue reports a queue-depth change to the health hook, outside the
// mutex (the hook takes its own locks and may fan out to observers).
func (a *admitter) notifyQueue(depth int) {
	if a.onQueue != nil {
		a.onQueue(depth)
	}
}

// acquire blocks until weight units of capacity are granted, the context is
// done, or the server closes. Weights above the total capacity are clamped
// to it so a misconfigured tenant degrades to exclusive access instead of
// deadlocking. Rejections carry a *ShedError Retry-After hint; a request
// whose context deadline is closer than the predicted queue wait is
// rejected with ErrDeadlineUnmeetable BEFORE enqueueing — it would only
// expire in line, holding a queue slot no one can use. The caller must
// release(weight) exactly once on success.
func (a *admitter) acquire(ctx context.Context, weight int64) error {
	if weight <= 0 {
		weight = 1
	}
	a.mu.Lock()
	if weight > a.cap {
		weight = a.cap
	}
	switch {
	case a.closed:
		err := &ShedError{Err: ErrClosed, After: a.retryHintLocked()}
		a.mu.Unlock()
		a.shedded.Inc()
		return err
	case len(a.queue) == 0 && a.used+weight <= a.cap:
		a.used += weight
		a.inflight.Set(float64(a.used))
		a.noteWaitLocked(0)
		a.mu.Unlock()
		a.admitted.Inc()
		return nil
	case len(a.queue) >= a.maxWait:
		err := &ShedError{Err: ErrQueueFull, After: a.retryHintLocked()}
		a.mu.Unlock()
		a.rejected.Inc()
		return err
	}
	// Deadline-aware admission: compare the request's remaining budget with
	// the EWMA-predicted queue wait before committing a queue slot.
	if d, ok := ctx.Deadline(); ok && time.Until(d) < a.waitEWMA {
		err := &ShedError{Err: ErrDeadlineUnmeetable, After: a.retryHintLocked()}
		a.mu.Unlock()
		a.deadline.Inc()
		return err
	}
	w := &waiter{weight: weight, ready: make(chan struct{}), enqueuedAt: time.Now()}
	a.queue = append(a.queue, w)
	depth := len(a.queue)
	a.queued.Set(float64(depth))
	a.mu.Unlock()
	a.notifyQueue(depth)

	select {
	case <-w.ready:
		if w.err != nil {
			a.shedded.Inc()
			return w.err
		}
		a.admitted.Inc()
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		select {
		case <-w.ready:
			// The grant raced the deadline; keep it — the caller's engine
			// context will surface the expiry immediately, releasing cleanly.
			a.mu.Unlock()
			if w.err != nil {
				a.shedded.Inc()
				return w.err
			}
			a.admitted.Inc()
			return nil
		default:
			w.abandoned = true
			a.compactQueue()
			depth := len(a.queue)
			a.mu.Unlock()
			a.notifyQueue(depth)
			return ctx.Err()
		}
	}
}

// release returns weight units and promotes queued waiters in FIFO order.
func (a *admitter) release(weight int64) {
	if weight <= 0 {
		weight = 1
	}
	a.mu.Lock()
	if weight > a.cap {
		weight = a.cap
	}
	a.used -= weight
	if a.used < 0 {
		a.used = 0
	}
	a.promote()
	a.inflight.Set(float64(a.used))
	depth := len(a.queue)
	a.queued.Set(float64(depth))
	done := a.closed && a.used == 0
	a.mu.Unlock()
	a.notifyQueue(depth)
	if done {
		a.signalDrained()
	}
}

// promote grants queued waiters while capacity allows, preserving arrival
// order (a large waiter at the head blocks smaller ones behind it — FIFO
// fairness over utilization). Called with the mutex held.
func (a *admitter) promote() {
	for len(a.queue) > 0 {
		w := a.queue[0]
		if w.abandoned {
			a.queue = a.queue[1:]
			continue
		}
		if a.used+w.weight > a.cap {
			return
		}
		a.used += w.weight
		a.queue = a.queue[1:]
		if !w.enqueuedAt.IsZero() {
			a.noteWaitLocked(time.Since(w.enqueuedAt))
		}
		close(w.ready)
	}
	// Reset the backing array when empty so abandoned waiters are not
	// pinned.
	if len(a.queue) == 0 {
		a.queue = nil
	}
}

// compactQueue drops abandoned waiters from the queue. Called with the
// mutex held.
func (a *admitter) compactQueue() {
	live := a.queue[:0]
	for _, w := range a.queue {
		if !w.abandoned {
			live = append(live, w)
		}
	}
	for i := len(live); i < len(a.queue); i++ {
		a.queue[i] = nil
	}
	a.queue = live
	a.queued.Set(float64(len(a.queue)))
}

// close stops admissions: every queued waiter fails with ErrClosed, new
// acquisitions are rejected, and the drained channel closes once the last
// in-flight weight is released.
func (a *admitter) close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	for _, w := range a.queue {
		if !w.abandoned {
			w.err = &ShedError{Err: ErrClosed, After: a.retryHintLocked()}
			close(w.ready)
		}
	}
	a.queue = nil
	a.queued.Set(0)
	done := a.used == 0
	a.mu.Unlock()
	a.notifyQueue(0)
	if done {
		a.signalDrained()
	}
}

// signalDrained closes the drained channel exactly once.
func (a *admitter) signalDrained() {
	a.mu.Lock()
	select {
	case <-a.drained:
	default:
		close(a.drained)
	}
	a.mu.Unlock()
}

// stats returns the current in-flight weight and queue length.
func (a *admitter) stats() (used int64, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used, len(a.queue)
}
