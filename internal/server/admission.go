package server

import (
	"context"
	"errors"
	"sync"

	"github.com/lpce-db/lpce/internal/obs"
)

// Typed admission errors. The HTTP layer maps them to status codes (429 and
// 503); embedded callers match them with errors.Is.
var (
	// ErrQueueFull rejects an admission because the bounded wait queue is
	// already at capacity — the server is overloaded and sheds load instead
	// of buffering unboundedly (HTTP 429).
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrClosed rejects an admission because the server is shutting down
	// (HTTP 503). In-flight queries keep running; only new work is refused.
	ErrClosed = errors.New("server: shutting down")
)

// admitter is a weighted semaphore with a bounded FIFO wait queue: the
// admission-control core. Each tenant acquires its configured weight per
// query, so heavier tenants occupy more of the shared capacity and one
// tenant's burst cannot starve the rest beyond its weight share. When the
// capacity is exhausted, up to maxQueue acquisitions wait in arrival order;
// the queue overflowing rejects immediately with ErrQueueFull rather than
// buffering every caller the network can deliver.
type admitter struct {
	mu      sync.Mutex
	cap     int64
	used    int64
	queue   []*waiter
	maxWait int
	closed  bool
	// drained is closed when the admitter is closed AND the last in-flight
	// weight is released; Close waits on it to drain.
	drained chan struct{}

	// metrics (nil-safe, interned by the owning server)
	inflight *obs.Gauge
	queued   *obs.Gauge
	admitted *obs.Counter
	rejected *obs.Counter
	shedded  *obs.Counter // rejected because closed
}

type waiter struct {
	weight int64
	ready  chan struct{} // closed on grant
	err    error         // set before ready is closed on failure
	// abandoned marks a waiter whose context expired; the granter skips it.
	abandoned bool
}

func newAdmitter(capacity int64, maxWait int, reg *obs.Registry) *admitter {
	if capacity <= 0 {
		capacity = 1
	}
	if maxWait < 0 {
		maxWait = 0
	}
	return &admitter{
		cap:      capacity,
		maxWait:  maxWait,
		drained:  make(chan struct{}),
		inflight: reg.Gauge("server.admission.inflight_weight"),
		queued:   reg.Gauge("server.admission.queued"),
		admitted: reg.Counter("server.admission.admitted"),
		rejected: reg.Counter("server.admission.rejected_queue_full"),
		shedded:  reg.Counter("server.admission.rejected_closed"),
	}
}

// acquire blocks until weight units of capacity are granted, the context is
// done, or the server closes. Weights above the total capacity are clamped
// to it so a misconfigured tenant degrades to exclusive access instead of
// deadlocking. The caller must release(weight) exactly once on success.
func (a *admitter) acquire(ctx context.Context, weight int64) error {
	if weight <= 0 {
		weight = 1
	}
	a.mu.Lock()
	if weight > a.cap {
		weight = a.cap
	}
	switch {
	case a.closed:
		a.mu.Unlock()
		a.shedded.Inc()
		return ErrClosed
	case len(a.queue) == 0 && a.used+weight <= a.cap:
		a.used += weight
		a.inflight.Set(float64(a.used))
		a.mu.Unlock()
		a.admitted.Inc()
		return nil
	case len(a.queue) >= a.maxWait:
		a.mu.Unlock()
		a.rejected.Inc()
		return ErrQueueFull
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.queued.Set(float64(len(a.queue)))
	a.mu.Unlock()

	select {
	case <-w.ready:
		if w.err != nil {
			a.shedded.Inc()
			return w.err
		}
		a.admitted.Inc()
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		select {
		case <-w.ready:
			// The grant raced the deadline; keep it — the caller's engine
			// context will surface the expiry immediately, releasing cleanly.
			a.mu.Unlock()
			if w.err != nil {
				a.shedded.Inc()
				return w.err
			}
			a.admitted.Inc()
			return nil
		default:
			w.abandoned = true
			a.compactQueue()
			a.mu.Unlock()
			return ctx.Err()
		}
	}
}

// release returns weight units and promotes queued waiters in FIFO order.
func (a *admitter) release(weight int64) {
	if weight <= 0 {
		weight = 1
	}
	a.mu.Lock()
	if weight > a.cap {
		weight = a.cap
	}
	a.used -= weight
	if a.used < 0 {
		a.used = 0
	}
	a.promote()
	a.inflight.Set(float64(a.used))
	a.queued.Set(float64(len(a.queue)))
	done := a.closed && a.used == 0
	a.mu.Unlock()
	if done {
		a.signalDrained()
	}
}

// promote grants queued waiters while capacity allows, preserving arrival
// order (a large waiter at the head blocks smaller ones behind it — FIFO
// fairness over utilization). Called with the mutex held.
func (a *admitter) promote() {
	for len(a.queue) > 0 {
		w := a.queue[0]
		if w.abandoned {
			a.queue = a.queue[1:]
			continue
		}
		if a.used+w.weight > a.cap {
			return
		}
		a.used += w.weight
		a.queue = a.queue[1:]
		close(w.ready)
	}
	// Reset the backing array when empty so abandoned waiters are not
	// pinned.
	if len(a.queue) == 0 {
		a.queue = nil
	}
}

// compactQueue drops abandoned waiters from the queue. Called with the
// mutex held.
func (a *admitter) compactQueue() {
	live := a.queue[:0]
	for _, w := range a.queue {
		if !w.abandoned {
			live = append(live, w)
		}
	}
	for i := len(live); i < len(a.queue); i++ {
		a.queue[i] = nil
	}
	a.queue = live
	a.queued.Set(float64(len(a.queue)))
}

// close stops admissions: every queued waiter fails with ErrClosed, new
// acquisitions are rejected, and the drained channel closes once the last
// in-flight weight is released.
func (a *admitter) close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	for _, w := range a.queue {
		if !w.abandoned {
			w.err = ErrClosed
			close(w.ready)
		}
	}
	a.queue = nil
	a.queued.Set(0)
	done := a.used == 0
	a.mu.Unlock()
	if done {
		a.signalDrained()
	}
}

// signalDrained closes the drained channel exactly once.
func (a *admitter) signalDrained() {
	a.mu.Lock()
	select {
	case <-a.drained:
	default:
		close(a.drained)
	}
	a.mu.Unlock()
}

// stats returns the current in-flight weight and queue length.
func (a *admitter) stats() (used int64, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used, len(a.queue)
}
