package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/fault"
	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/testutil"
	"github.com/lpce-db/lpce/internal/workload"
)

// slowOp pads each operator's Open with a fixed sleep. The served soak run
// wraps its operators in it so every query has a guaranteed minimum service
// time: overload then follows from arithmetic (burst arrival rate × service
// time ≫ capacity) instead of from scheduler luck, which matters on
// single-CPU CI runners. Outcomes are untouched — soak classification is
// budget-based, never wall-clock-based — so the serial oracles skip the
// padding and stay fast.
type slowOp struct {
	exec.Operator
	d time.Duration
}

func (o slowOp) Open(ctx *exec.Ctx) error {
	time.Sleep(o.d)
	return o.Operator.Open(ctx)
}

// TestServerOverloadSoak extends the chaos soak with the full overload
// story: spiky arrivals against a rate-limited, deliberately undersized
// server, backoff-retrying clients honoring Retry-After, the health machine
// walking healthy→degraded→overloaded and back, and the estimator ladder
// routing overloaded-state queries onto the shed rung.
//
// The correctness bar is the same as the base soak, adapted to two rungs:
// every query that the server ADMITTED and answered must match a serial
// oracle byte-for-byte — the primary-rung oracle (chaos stack) or the
// shed-rung oracle (plain histogram), selected by the rung the result
// reports. Queries the server SHED are excluded from oracle comparison but
// accounted exactly: the clients' per-class error observations must equal
// the server's per-tenant shed counters to the last request.
func TestServerOverloadSoak(t *testing.T) {
	n := 240
	if *soakFlag {
		n = 2000
	}
	db := testutil.TinyDB()
	queries := workload.NewGenerator(db, 23).QueriesRange(n, 2, 4)
	limits := engine.Limits{MaxMatRows: 2_000_000}

	// Serial oracles, one per ladder rung. Both stacks are pure functions of
	// (query, subset) — the chaos stack's breaker never trips (TripAfter
	// 1<<30) and the histogram is stateless — so each oracle predicts its
	// rung of the concurrent server exactly.
	oracleRun := func(shed bool) []string {
		eng := engine.New(db)
		ops := chaosOps()
		cfg := engine.Config{ExecWrap: ops.Wrap, Limits: limits, Budget: soakBudget}
		if shed {
			cfg.Estimator = histogram.NewEstimator(db)
		} else {
			cfg.Estimator = chaosStack(db)
		}
		out := make([]string, n)
		for i, q := range queries {
			res, err := eng.Execute(q, cfg)
			out[i] = soakOutcome(res.Count, res.TimedOut, err)
		}
		return out
	}
	oraclePrimary := oracleRun(false)
	oracleShed := oracleRun(true)

	// The served run: 2 weight units of capacity, 24 workers, spiky
	// arrivals, per-tenant rate limits, queue-depth-driven health states
	// (latency thresholds stay off — wall-clock must not steer outcomes).
	before := runtime.NumGoroutine()
	var transMu sync.Mutex
	var transitions []string
	ops := chaosOps()
	slowWrap := func(ctx *exec.Ctx, op exec.Operator, n *plan.Node) exec.Operator {
		return slowOp{Operator: ops.Wrap(ctx, op, n), d: 500 * time.Microsecond}
	}
	cfg := Config{
		DB:   db,
		Mode: ModeHistogram,
		Tenants: []TenantConfig{
			{Name: "alpha", Weight: 1, Limits: limits, RateQPS: 300, RateBurst: 4},
			{Name: "beta", Weight: 1, Limits: limits, RateQPS: 300, RateBurst: 4},
		},
		MaxConcurrent:  2,
		MaxQueue:       2 * n,
		DefaultTimeout: 10 * time.Minute, // degradation is the Budget's job
		CacheCapacity:  256,
		Budget:         soakBudget,
		ExecWrap:       slowWrap,
		Overload: OverloadPolicy{
			DegradedQueue:   2,
			OverloadedQueue: 5,
			HoldDown:        50 * time.Millisecond,
			OnTransition: func(from, to HealthState) {
				transMu.Lock()
				transitions = append(transitions, from.String()+">"+to.String())
				transMu.Unlock()
			},
		},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.InstallLadder("overload-v1", chaosStack(db), nil, histogram.NewEstimator(db))
	var maxDepth atomic.Int64
	innerHook := s.adm.onQueue
	s.adm.onQueue = func(d int) {
		for {
			m := maxDepth.Load()
			if int64(d) <= m || maxDepth.CompareAndSwap(m, int64(d)) {
				break
			}
		}
		innerHook(d)
	}

	// Client-side accounting: every error observation by class, including
	// retried attempts — the server counts attempts too, so these must tie
	// out exactly at the end.
	var cliRateLimited, cliQueueFull, cliUnmeetable, cliClosed atomic.Int64
	countCli := func(err error) {
		switch {
		case errors.Is(err, ErrRateLimited):
			cliRateLimited.Add(1)
		case errors.Is(err, ErrQueueFull):
			cliQueueFull.Add(1)
		case errors.Is(err, ErrDeadlineUnmeetable):
			cliUnmeetable.Add(1)
		case errors.Is(err, ErrClosed):
			cliClosed.Add(1)
		}
	}

	spike := fault.Spike{Period: 32, Burst: 24, Gap: 300 * time.Microsecond}
	backoff := workload.Backoff{
		Base: time.Millisecond, Max: 20 * time.Millisecond,
		MaxAttempts: 8, Seed: 7,
		Budget: workload.NewRetryBudget(int64(n) * 16),
	}

	type outcome struct {
		s        string
		compared bool // admitted non-deadline request: oracle-comparable
		rungOK   bool // result seen, rung known
		fallback bool // served from the shed rung
	}
	served := make([]outcome, n)
	runErrs := workload.RunEach(context.Background(), n, 32, func(i int) error {
		time.Sleep(spike.Delay(i))
		tenant := []string{"alpha", "beta"}[i%2]
		req := QueryRequest{
			Tenant:  tenant,
			Session: fmt.Sprintf("%s-sess-%d", tenant, i%4),
			SQL:     queries[i].SQL(),
		}
		if i%16 == 9 {
			// Deadline-carrying probe: too tight to survive a loaded queue.
			// Whether it dies pre-admission (504 unmeetable) or mid-execution
			// depends on load, so it is accounted but never oracle-compared.
			req.Timeout = time.Millisecond
			_, err := s.Query(context.Background(), req)
			if err != nil {
				countCli(err)
			}
			return nil
		}
		var res *QueryResult
		_, err := backoff.Retry(context.Background(), uint64(i), nil, func() error {
			var qerr error
			res, qerr = s.Query(context.Background(), req)
			if qerr != nil {
				countCli(qerr)
			}
			return qerr
		})
		var hint workload.RetryAfterHint
		if err != nil && errors.As(err, &hint) {
			// Finally shed after exhausting retries: accounted, not compared.
			served[i] = outcome{s: "shed"}
			return nil
		}
		count, timedOut := 0, false
		if res != nil {
			count, timedOut = res.Count, res.TimedOut
		}
		served[i] = outcome{
			s:        soakOutcome(count, timedOut, err),
			compared: true,
			rungOK:   res != nil,
			fallback: res != nil && res.FallbackEstimator,
		}
		return nil
	})
	for i, err := range runErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	// Oracle equality for every admitted query. A result in hand pins the
	// rung; an errored query (no result) must match one of the two rungs.
	tally := map[string]int{}
	fallbacks := 0
	for i, o := range served {
		if !o.compared {
			continue
		}
		switch {
		case o.rungOK && o.fallback:
			fallbacks++
			if o.s != oracleShed[i] {
				t.Fatalf("query %d (%s) on shed rung: served %q, oracle %q",
					i, queries[i].SQL(), o.s, oracleShed[i])
			}
		case o.rungOK:
			if o.s != oraclePrimary[i] {
				t.Fatalf("query %d (%s) on primary rung: served %q, oracle %q",
					i, queries[i].SQL(), o.s, oraclePrimary[i])
			}
		default:
			if o.s != oraclePrimary[i] && o.s != oracleShed[i] {
				t.Fatalf("query %d (%s): served %q, oracle primary %q / shed %q",
					i, queries[i].SQL(), o.s, oraclePrimary[i], oracleShed[i])
			}
		}
		switch {
		case o.s == "failed" || o.s == "degraded":
			tally[o.s]++
		default:
			tally["ok"]++
		}
	}
	if tally["ok"] == 0 {
		t.Fatal("no admitted query succeeded; the soak proved nothing")
	}
	if tally["failed"]+tally["degraded"] == 0 {
		t.Fatal("no chaos fault fired during the soak")
	}
	if cliRateLimited.Load() == 0 {
		t.Fatal("no request was rate limited; the overload never happened")
	}

	// Recovery: with the load gone, polling walks the state back down to
	// healthy (stepwise, hold-down 50ms per step).
	waitCond(t, 10*time.Second, func() bool {
		return s.HealthState() == StateHealthy
	}, "health state never recovered to healthy")

	// The full transition cycle must have been observed, in order.
	transMu.Lock()
	seq := append([]string(nil), transitions...)
	transMu.Unlock()
	wantCycle := []string{"healthy>degraded", "degraded>overloaded", "overloaded>degraded", "degraded>healthy"}
	at := 0
	for _, tr := range seq {
		if at < len(wantCycle) && tr == wantCycle[at] {
			at++
		}
	}
	if at != len(wantCycle) {
		t.Fatalf("transitions %v missing the cycle %v (max depth %d)", seq, wantCycle, maxDepth.Load())
	}

	// Post-drain burst: the rate buckets refilled to full depth during the
	// recovery wait (4 tokens ≫ 13ms of refill; recovery holds ≥100ms), so
	// all 8 queries — 4 per tenant, within burst — reach admission and shed
	// with the typed 503.
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	for i := 0; i < 8; i++ {
		_, err := s.Query(context.Background(), QueryRequest{
			Tenant: []string{"alpha", "beta"}[i%2], SQL: queries[0].SQL(),
		})
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("post-close query %d: %v, want ErrClosed", i, err)
		}
		countCli(err)
	}

	// Exact shed accounting: client observations == server counters, per
	// class, across both tenants.
	m := s.MetricsSnapshot()
	sum := func(metric string) int64 {
		return m.Counters["tenant.alpha."+metric] + m.Counters["tenant.beta."+metric]
	}
	if got, want := sum("server.shed.rate_limited"), cliRateLimited.Load(); got != want {
		t.Fatalf("shed.rate_limited: server %d, clients observed %d", got, want)
	}
	if got, want := sum("server.shed.queue_full"), cliQueueFull.Load(); got != want {
		t.Fatalf("shed.queue_full: server %d, clients observed %d", got, want)
	}
	if got, want := sum("server.shed.deadline"), cliUnmeetable.Load(); got != want {
		t.Fatalf("shed.deadline: server %d, clients observed %d", got, want)
	}
	if got, want := sum("server.shed.closed"), cliClosed.Load(); got != want {
		t.Fatalf("shed.closed: server %d, clients observed %d", got, want)
	}
	if got := cliClosed.Load(); got != 8 {
		t.Fatalf("post-close 503 tally = %d, want exactly 8", got)
	}

	t.Logf("overload soak n=%d tally=%v fallback-rung=%d rate-limited=%d unmeetable=%d transitions=%d",
		n, tally, fallbacks, cliRateLimited.Load(), cliUnmeetable.Load(), len(seq))

	// Leak-free under the same roof.
	waitCond(t, 5*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before
	}, fmt.Sprintf("goroutines leaked after overload soak: %d before, %d after", before, runtime.NumGoroutine()))
}
