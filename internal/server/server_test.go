package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/lpce-db/lpce/internal/baselines"
	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/encode"
	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/modelio"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
	"github.com/lpce-db/lpce/internal/testutil"
	"github.com/lpce-db/lpce/internal/workload"
)

// Shared fixture: the tiny database plus a trained model artifact set,
// built once per test binary (training dominates the suite's runtime).
var (
	fixOnce sync.Once
	fixDB   *storage.Database
	fixEnc  *encode.Encoder
	fixSet  *modelio.Set
)

func fixture(t *testing.T) (*storage.Database, *encode.Encoder, *modelio.Set) {
	t.Helper()
	fixOnce.Do(func() {
		fixDB = testutil.TinyDB()
		fixEnc = encode.NewEncoder(fixDB.Schema)
		g := workload.NewGenerator(fixDB, 61)
		queries := g.QueriesRange(30, 2, 3)
		samples, _ := core.CollectSamples(fixDB, histogram.NewEstimator(fixDB), queries, 50_000_000)
		logMax := core.MaxLogCard(samples)
		base := core.TrainConfig{Hidden: 8, OutWidth: 8, Epochs: 1, Batch: 16, LR: 3e-3, NodeWise: true, Seed: 41}
		fixSet = &modelio.Set{
			LPCEI: core.TrainLPCEI(core.LPCEIConfig{
				Teacher: base,
				Student: core.TrainConfig{Hidden: 6, OutWidth: 6, Epochs: 1, Batch: 16, LR: 3e-3, NodeWise: true, Seed: 41},
			}, fixEnc, samples, logMax),
			Refiner: core.TrainRefiner(core.RefinerConfig{
				Kind: core.RefinerFull, Base: base, AdjustEpochs: 1, PrefixesPerSample: 1,
			}, fixEnc, fixDB, samples, logMax),
			TLSTM:    baselines.TrainTLSTM(base, fixEnc, samples, logMax).Model,
			FlowLoss: baselines.TrainFlowLoss(base, fixEnc, samples, logMax).Model,
			MSCN:     baselines.TrainMSCN(baselines.MSCNConfig{Hidden: 8, Epochs: 1, Batch: 32, LR: 3e-3, Seed: 41}, fixDB.Schema, samples, logMax),
		}
	})
	return fixDB, fixEnc, fixSet
}

// histConfig is the base histogram-mode server config over the tiny
// database with two tenants, no models needed.
func histConfig(db *storage.Database) Config {
	return Config{
		DB:   db,
		Mode: ModeHistogram,
		Tenants: []TenantConfig{
			{Name: "alpha", Weight: 1},
			{Name: "beta", Weight: 1},
		},
		MaxConcurrent:  4,
		MaxQueue:       16,
		DefaultTimeout: 30 * time.Second,
		CacheCapacity:  4096,
	}
}

func mustServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = s.Close(context.Background()) })
	return s
}

func testSQL(i int) string {
	// Three distinct shapes over the tiny IMDb-style schema, all cheap.
	switch i % 3 {
	case 0:
		return "SELECT COUNT(*) FROM title, movie_companies WHERE movie_companies.movie_id = title.id AND title.production_year > 1990"
	case 1:
		return "SELECT COUNT(*) FROM title, movie_info WHERE movie_info.movie_id = title.id AND movie_info.info_type_id < 5"
	default:
		return "SELECT COUNT(*) FROM title, movie_companies, movie_info WHERE movie_companies.movie_id = title.id AND movie_info.movie_id = title.id AND title.production_year > 1985"
	}
}

// TestServerConcurrentTenantsIsolated runs two tenants' workloads
// concurrently and asserts results match direct engine execution, metrics
// attribute per tenant, and the estimate caches are namespace-isolated.
func TestServerConcurrentTenantsIsolated(t *testing.T) {
	db := testutil.TinyDB()
	s := mustServer(t, histConfig(db))

	// Direct-engine oracle per statement shape.
	eng := engine.New(db)
	hist := histogram.NewEstimator(db)
	oracle := make(map[string]int)
	for i := 0; i < 3; i++ {
		sql := testSQL(i)
		q, _, err := (&session{prepared: map[string]*query.Query{}}).prepare(db.Schema, sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		res, err := eng.Execute(q, engine.Config{Estimator: hist})
		if err != nil {
			t.Fatalf("oracle %q: %v", sql, err)
		}
		oracle[sql] = res.Count
	}

	const perTenant = 30
	run := func(tenant string) []error {
		return workload.RunEach(context.Background(), perTenant, 4, func(i int) error {
			sql := testSQL(i)
			res, err := s.Query(context.Background(), QueryRequest{
				Tenant: tenant, Session: fmt.Sprintf("%s-%d", tenant, i%2), SQL: sql,
			})
			if err != nil {
				return err
			}
			if res.Count != oracle[sql] {
				return fmt.Errorf("%s query %d: count %d, oracle %d", tenant, i, res.Count, oracle[sql])
			}
			return nil
		})
	}
	var wg sync.WaitGroup
	errsByTenant := make([][]error, 2)
	for ti, tenant := range []string{"alpha", "beta"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errsByTenant[ti] = run(tenant)
		}()
	}
	wg.Wait()
	for ti, errs := range errsByTenant {
		for i, err := range errs {
			if err != nil {
				t.Fatalf("tenant %d query %d: %v", ti, i, err)
			}
		}
	}

	snap := s.MetricsSnapshot()
	for _, tenant := range []string{"alpha", "beta"} {
		key := "tenant." + tenant + ".server.queries"
		if got := snap.Counters[key]; got != perTenant {
			t.Fatalf("%s = %d, want %d", key, got, perTenant)
		}
		if errs := snap.Counters["tenant."+tenant+".server.query_errors"]; errs != 0 {
			t.Fatalf("tenant %s reported %d errors", tenant, errs)
		}
	}
	if admitted := snap.Counters["server.admission.admitted"]; admitted != 2*perTenant {
		t.Fatalf("admitted = %d, want %d", admitted, 2*perTenant)
	}

	// Cache isolation: the tenants ran identical statements, so each cache
	// served its own tenant's repeats — per-tenant hit counters are
	// populated independently and the cache objects are distinct.
	if s.TenantCache("alpha") == s.TenantCache("beta") {
		t.Fatal("tenants share an estimate cache")
	}
	for _, tenant := range []string{"alpha", "beta"} {
		c := s.TenantCache(tenant)
		hits, misses := c.Stats()
		if misses == 0 || hits == 0 {
			t.Fatalf("tenant %s cache hits=%d misses=%d; want both > 0", tenant, hits, misses)
		}
	}
}

// gate blocks every wrapped operator's Open until released, holding
// queries inside the engine (and their admission weight) under test
// control. Open also unblocks on context cancellation, like any
// cooperative operator.
type gate struct {
	release  chan struct{}
	announce chan struct{} // one token per operator entering
}

func newGate() *gate {
	return &gate{release: make(chan struct{}), announce: make(chan struct{}, 1024)}
}

func (g *gate) wrap(ctx *exec.Ctx, op exec.Operator, n *plan.Node) exec.Operator {
	return &gatedOp{inner: op, g: g}
}

type gatedOp struct {
	inner exec.Operator
	g     *gate
}

func (o *gatedOp) Open(ctx *exec.Ctx) error {
	select {
	case o.g.announce <- struct{}{}:
	default:
	}
	var done <-chan struct{}
	if ctx.Context != nil {
		done = ctx.Context.Done()
	}
	select {
	case <-o.g.release:
	case <-done:
		return ctx.Context.Err()
	}
	return o.inner.Open(ctx)
}

func (o *gatedOp) Next(ctx *exec.Ctx) (exec.Tuple, bool, error) { return o.inner.Next(ctx) }
func (o *gatedOp) Close()                                       { o.inner.Close() }

// TestServerQueueOverflowRejects asserts the bounded wait queue sheds load
// with the typed ErrQueueFull once capacity and queue are both full.
func TestServerQueueOverflowRejects(t *testing.T) {
	db := testutil.TinyDB()
	g := newGate()
	cfg := histConfig(db)
	cfg.MaxConcurrent = 1
	cfg.MaxQueue = 1
	cfg.ExecWrap = g.wrap
	s := mustServer(t, cfg)

	// Query 1 occupies the only slot, blocked at the gate.
	first := make(chan error, 1)
	go func() {
		_, err := s.Query(context.Background(), QueryRequest{Tenant: "alpha", SQL: testSQL(0)})
		first <- err
	}()
	select {
	case <-g.announce:
	case <-time.After(10 * time.Second):
		t.Fatal("first query never reached the executor")
	}

	// Query 2 waits in the queue (capacity 1); fire it and give it time to
	// enqueue before the overflow probe.
	second := make(chan error, 1)
	go func() {
		_, err := s.Query(context.Background(), QueryRequest{Tenant: "beta", SQL: testSQL(1)})
		second <- err
	}()
	waitCond(t, 5*time.Second, func() bool {
		_, queued := s.adm.stats()
		return queued == 1
	}, "second query never enqueued")

	// Query 3 overflows the queue: typed 429.
	_, err := s.Query(context.Background(), QueryRequest{Tenant: "alpha", SQL: testSQL(2)})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow error = %v, want ErrQueueFull", err)
	}
	if statusFor(err) != http.StatusTooManyRequests {
		t.Fatalf("ErrQueueFull maps to %d, want 429", statusFor(err))
	}

	close(g.release)
	if err := <-first; err != nil {
		t.Fatalf("first query: %v", err)
	}
	if err := <-second; err != nil {
		t.Fatalf("second query: %v", err)
	}
	if rej := s.MetricsSnapshot().Counters["server.admission.rejected_queue_full"]; rej != 1 {
		t.Fatalf("rejected_queue_full = %d, want 1", rej)
	}
}

// TestServerCloseDrainsInflight asserts graceful shutdown: Close refuses
// new work immediately but waits for the in-flight query to finish — and
// that query completes successfully.
func TestServerCloseDrainsInflight(t *testing.T) {
	db := testutil.TinyDB()
	g := newGate()
	cfg := histConfig(db)
	cfg.ExecWrap = g.wrap
	s := mustServer(t, cfg)

	inflight := make(chan error, 1)
	var res *QueryResult
	go func() {
		r, err := s.Query(context.Background(), QueryRequest{Tenant: "alpha", SQL: testSQL(0)})
		res = r
		inflight <- err
	}()
	select {
	case <-g.announce:
	case <-time.After(10 * time.Second):
		t.Fatal("query never reached the executor")
	}

	closed := make(chan error, 1)
	go func() { closed <- s.Close(context.Background()) }()

	// New work is refused while the drain waits. An unluckily-timed probe
	// can slip in before the Close goroutine shuts the admission gate; it
	// then blocks at the exec gate until its own short deadline, so retry
	// until the typed refusal appears.
	waitCond(t, 10*time.Second, func() bool {
		_, err := s.Query(context.Background(), QueryRequest{
			Tenant: "beta", SQL: testSQL(1), Timeout: 100 * time.Millisecond,
		})
		return errors.Is(err, ErrClosed)
	}, "admissions not refused during drain")
	select {
	case err := <-closed:
		t.Fatalf("Close returned %v with a query still in flight", err)
	default:
	}

	close(g.release)
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight query failed during drain: %v", err)
	}
	if res == nil || res.Count < 0 {
		t.Fatal("in-flight query returned no result")
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestServerForcedCloseCancelsInflight asserts that when the drain deadline
// expires, in-flight queries are cut loose cooperatively and Close still
// returns only after they unwound.
func TestServerForcedCloseCancelsInflight(t *testing.T) {
	db := testutil.TinyDB()
	g := newGate() // never released: the query blocks until cancelled
	cfg := histConfig(db)
	cfg.ExecWrap = g.wrap
	s := mustServer(t, cfg)

	inflight := make(chan error, 1)
	go func() {
		_, err := s.Query(context.Background(), QueryRequest{Tenant: "alpha", SQL: testSQL(0)})
		inflight <- err
	}()
	select {
	case <-g.announce:
	case <-time.After(10 * time.Second):
		t.Fatal("query never reached the executor")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := s.Close(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced Close = %v, want DeadlineExceeded", err)
	}
	qerr := <-inflight
	if !errors.Is(qerr, context.Canceled) {
		t.Fatalf("in-flight query error = %v, want Canceled", qerr)
	}
}

// TestServerHotSwapNeverTorn hammers queries while hot-swapping between two
// estimator stacks whose version labels and estimator names are paired, and
// asserts no query ever observes a mixed (version, estimator) pair — the
// serving set is atomic — and no query fails because of a swap.
func TestServerHotSwapNeverTorn(t *testing.T) {
	db := testutil.TinyDB()
	s := mustServer(t, histConfig(db))
	hist := histogram.NewEstimator(db)

	// Paired stacks: version vN serves an estimator named est-vN.
	s.InstallEstimator("v1", cardest.FuncEstimator{
		Label: "est-v1",
		Fn:    hist.EstimateSubset,
	}, nil)

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		n := 1
		for {
			select {
			case <-stop:
				return
			default:
			}
			n++
			v := fmt.Sprintf("v%d", n)
			s.InstallEstimator(v, cardest.FuncEstimator{Label: "est-" + v, Fn: hist.EstimateSubset}, nil)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	errs := workload.RunEach(context.Background(), 200, 8, func(i int) error {
		res, err := s.Query(context.Background(), QueryRequest{
			Tenant: []string{"alpha", "beta"}[i%2], SQL: testSQL(i),
		})
		if err != nil {
			return fmt.Errorf("query %d failed under swap load: %w", i, err)
		}
		if want := "est-" + res.ModelVersion; res.Estimator != want {
			return fmt.Errorf("torn serving set: version %q served estimator %q", res.ModelVersion, res.Estimator)
		}
		return nil
	})
	close(stop)
	swapper.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if swaps := s.MetricsSnapshot().Counters["server.model_swaps"]; swaps < 2 {
		t.Fatalf("only %d swaps happened; the test raced nothing", swaps)
	}
}

// TestServerSwapModelsFromArtifacts round-trips a real artifact directory
// through SwapModels: the server boots on histograms and hot-swaps to
// LPCE-R, after which queries report the new version and estimator.
func TestServerSwapModelsFromArtifacts(t *testing.T) {
	db, enc, set := fixture(t)
	dir := t.TempDir() + "/v2"
	if err := set.Save(dir, enc); err != nil {
		t.Fatalf("save artifacts: %v", err)
	}

	cfg := histConfig(db)
	cfg.Enc = enc
	cfg.Mode = "" // histogram boot (no Models), LPCE-R after swap
	s := mustServer(t, cfg)

	res, err := s.Query(context.Background(), QueryRequest{Tenant: "alpha", SQL: testSQL(0)})
	if err != nil {
		t.Fatalf("pre-swap query: %v", err)
	}
	preCount := res.Count
	if res.ModelVersion != "boot" {
		t.Fatalf("boot version = %q", res.ModelVersion)
	}

	s.cfg.Mode = ModeLPCER
	old, cur, err := s.SwapModels(dir, "")
	if err != nil {
		t.Fatalf("SwapModels: %v", err)
	}
	if old != "boot" || cur != "v2" {
		t.Fatalf("swap returned old=%q cur=%q", old, cur)
	}

	res, err = s.Query(context.Background(), QueryRequest{Tenant: "alpha", SQL: testSQL(0)})
	if err != nil {
		t.Fatalf("post-swap query: %v", err)
	}
	if res.ModelVersion != "v2" || !strings.Contains(res.Estimator, "lpce") {
		t.Fatalf("post-swap version=%q estimator=%q", res.ModelVersion, res.Estimator)
	}
	if res.Count != preCount {
		t.Fatalf("swap changed the answer: %d vs %d", res.Count, preCount)
	}

	// A bogus directory must be rejected without disturbing serving.
	if _, _, err := s.SwapModels(t.TempDir(), "broken"); err == nil {
		t.Fatal("swap of an empty dir succeeded")
	}
	if v := s.ModelVersion(); v != "v2" {
		t.Fatalf("failed swap changed serving version to %q", v)
	}
}

// TestServerCloseGoroutineLeakFree asserts a full create→serve→close cycle
// returns the process to its original goroutine count.
func TestServerCloseGoroutineLeakFree(t *testing.T) {
	db := testutil.TinyDB()
	before := runtime.NumGoroutine()

	for cycle := 0; cycle < 3; cycle++ {
		s := mustServer(t, histConfig(db))
		errs := workload.RunEach(context.Background(), 8, 4, func(i int) error {
			_, err := s.Query(context.Background(), QueryRequest{Tenant: "alpha", SQL: testSQL(i)})
			return err
		})
		for _, err := range errs {
			if err != nil {
				t.Fatalf("cycle %d: %v", cycle, err)
			}
		}
		if err := s.Close(context.Background()); err != nil {
			t.Fatalf("cycle %d close: %v", cycle, err)
		}
	}

	waitCond(t, 5*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before
	}, fmt.Sprintf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine()))
}

// TestServerSessionsPrepareOnce asserts prepared-statement reuse within a
// session, isolation across sessions, and TTL expiry.
func TestServerSessionsPrepareOnce(t *testing.T) {
	db := testutil.TinyDB()
	cfg := histConfig(db)
	cfg.SessionTTL = 10 * time.Millisecond
	s := mustServer(t, cfg)

	r1, err := s.Query(context.Background(), QueryRequest{Tenant: "alpha", Session: "s1", SQL: testSQL(0)})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Prepared {
		t.Fatal("first execution claimed a prepared hit")
	}
	r2, err := s.Query(context.Background(), QueryRequest{Tenant: "alpha", Session: "s1", SQL: testSQL(0)})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Prepared {
		t.Fatal("second execution in the same session re-parsed")
	}
	r3, err := s.Query(context.Background(), QueryRequest{Tenant: "alpha", Session: "s2", SQL: testSQL(0)})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Prepared {
		t.Fatal("fresh session saw another session's prepared statement")
	}
	if n := s.sess.count(); n != 2 {
		t.Fatalf("session count = %d, want 2", n)
	}
	if n := s.sess.sweep(time.Now().Add(time.Second)); n != 2 {
		t.Fatalf("sweep expired %d sessions, want 2", n)
	}
	if n := s.sess.count(); n != 0 {
		t.Fatalf("session count after sweep = %d", n)
	}
}

// TestHTTPEndpoints exercises the JSON front-end end to end over httptest:
// query, explain, error mapping, healthz, metrics, and model swap.
func TestHTTPEndpoints(t *testing.T) {
	db, enc, set := fixture(t)
	dir := t.TempDir() + "/v9"
	if err := set.Save(dir, enc); err != nil {
		t.Fatal(err)
	}
	cfg := histConfig(db)
	cfg.Enc = enc
	s := mustServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path string, body any) (*http.Response, map[string]any) {
		t.Helper()
		raw, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("POST %s: decode: %v", path, err)
		}
		return resp, out
	}

	// Successful query.
	resp, out := post("/query", queryBody{Tenant: "alpha", Session: "h1", SQL: testSQL(0)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/query status %d: %v", resp.StatusCode, out)
	}
	if _, ok := out["count"]; !ok {
		t.Fatalf("/query response missing count: %v", out)
	}

	// Error mapping.
	resp, _ = post("/query", queryBody{Tenant: "alpha", SQL: "SELECT COUNT(*) FROM nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("parse error status = %d, want 400", resp.StatusCode)
	}
	resp, _ = post("/query", queryBody{Tenant: "ghost", SQL: testSQL(0)})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant status = %d, want 404", resp.StatusCode)
	}

	// Explain returns a rendered plan.
	resp, out = post("/explain", queryBody{Tenant: "alpha", SQL: testSQL(2)})
	if resp.StatusCode != http.StatusOK || !strings.Contains(out["plan"].(string), "plan (estimator=") {
		t.Fatalf("/explain status %d body %v", resp.StatusCode, out)
	}

	// Healthz.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || h.Status != "ok" || h.Tenants != 2 {
		t.Fatalf("healthz = %d %+v", hresp.StatusCode, h)
	}

	// Metrics carries both global and tenant-prefixed series.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if snap.Counters["server.admission.admitted"] == 0 {
		t.Fatalf("metrics missing admission counters: %v", snap.Counters)
	}
	if snap.Counters["tenant.alpha.server.queries"] == 0 {
		t.Fatalf("metrics missing tenant series: %v", snap.Counters)
	}

	// Hot swap over HTTP, then verify the served version changed.
	s.cfg.Mode = ModeLPCER
	resp, out = post("/admin/models/swap", map[string]string{"dir": dir})
	if resp.StatusCode != http.StatusOK || out["current"] != "v9" {
		t.Fatalf("/admin/models/swap = %d %v", resp.StatusCode, out)
	}
	resp, out = post("/query", queryBody{Tenant: "alpha", SQL: testSQL(0)})
	if resp.StatusCode != http.StatusOK || out["model_version"] != "v9" {
		t.Fatalf("post-swap query = %d %v", resp.StatusCode, out)
	}
}

// waitCond polls cond until it holds or the deadline expires.
func waitCond(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}
