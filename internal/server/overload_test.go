package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/lpce-db/lpce/internal/obs"
	"github.com/lpce-db/lpce/internal/testutil"
	"github.com/lpce-db/lpce/internal/workload"
)

// Compile-time: the typed sheds satisfy the client backoff hint interface.
var (
	_ workload.RetryAfterHint = (*RateLimitError)(nil)
	_ workload.RetryAfterHint = (*ShedError)(nil)
)

// manualClock is a settable time source for bucket and health tests.
type manualClock struct{ t time.Time }

func (c *manualClock) now() time.Time                    { return c.t }
func (c *manualClock) advance(d time.Duration) time.Time { c.t = c.t.Add(d); return c.t }

func TestTokenBucketBurstAndRefill(t *testing.T) {
	clk := &manualClock{t: time.Unix(1000, 0)}
	b := newTokenBucket(10, 3, nil) // 10 qps, burst 3
	b.now = clk.now
	b.last = clk.t

	// The full burst passes back-to-back, then the bucket is dry.
	for i := 0; i < 3; i++ {
		if ok, _ := b.take(); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, after := b.take()
	if ok {
		t.Fatal("4th back-to-back request must be refused")
	}
	// One token refills in 1/qps = 100ms; the hint must say so.
	if after <= 0 || after > 100*time.Millisecond {
		t.Fatalf("retry-after = %v, want (0, 100ms]", after)
	}

	// After exactly the hinted wait, one request passes and the next is
	// refused again (sustained rate, not burst).
	clk.advance(after)
	if ok, _ := b.take(); !ok {
		t.Fatal("request after hinted wait refused")
	}
	if ok, _ := b.take(); ok {
		t.Fatal("second request at sustained rate must be refused")
	}

	// A long idle refills to burst depth, never beyond.
	clk.advance(time.Hour)
	for i := 0; i < 3; i++ {
		if ok, _ := b.take(); !ok {
			t.Fatalf("post-idle burst request %d refused", i)
		}
	}
	if ok, _ := b.take(); ok {
		t.Fatal("bucket refilled beyond burst depth")
	}
}

func TestRateLimitErrorTyping(t *testing.T) {
	err := &RateLimitError{Tenant: "alpha", After: 250 * time.Millisecond}
	if !errors.Is(err, ErrRateLimited) {
		t.Fatal("RateLimitError must match ErrRateLimited")
	}
	if statusFor(err) != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", statusFor(err))
	}
	var hint workload.RetryAfterHint
	if !errors.As(err, &hint) || hint.RetryAfter() != 250*time.Millisecond {
		t.Fatal("RetryAfter hint not exposed")
	}
}

func TestShedErrorWrapsSentinels(t *testing.T) {
	err := &ShedError{Err: ErrQueueFull, After: 5 * time.Millisecond}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatal("ShedError must unwrap to its sentinel")
	}
	if statusFor(err) != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", statusFor(err))
	}
	if err.RetryAfter() != 5*time.Millisecond {
		t.Fatal("hint lost")
	}
	un := &ShedError{Err: ErrDeadlineUnmeetable, After: time.Millisecond}
	if statusFor(un) != http.StatusGatewayTimeout {
		t.Fatalf("unmeetable status = %d, want 504", statusFor(un))
	}
}

// TestServerRateLimitedQuery drives one tenant past its token bucket and
// asserts typed rejection, per-tenant attribution, and the other tenant's
// isolation from the flood.
func TestServerRateLimitedQuery(t *testing.T) {
	db := testutil.TinyDB()
	cfg := histConfig(db)
	// alpha: effectively no refill within the test, burst 2.
	cfg.Tenants[0].RateQPS = 0.001
	cfg.Tenants[0].RateBurst = 2
	s := mustServer(t, cfg)

	for i := 0; i < 2; i++ {
		if _, err := s.Query(context.Background(), QueryRequest{Tenant: "alpha", SQL: testSQL(0)}); err != nil {
			t.Fatalf("burst query %d: %v", i, err)
		}
	}
	_, err := s.Query(context.Background(), QueryRequest{Tenant: "alpha", SQL: testSQL(0)})
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	var hint workload.RetryAfterHint
	if !errors.As(err, &hint) || hint.RetryAfter() <= 0 {
		t.Fatal("rate-limit rejection must carry a positive Retry-After hint")
	}

	// beta has no rate config and is untouched by alpha's flood.
	if _, err := s.Query(context.Background(), QueryRequest{Tenant: "beta", SQL: testSQL(1)}); err != nil {
		t.Fatalf("beta query: %v", err)
	}

	m := s.MetricsSnapshot()
	if n := m.Counters["tenant.alpha.server.shed.rate_limited"]; n != 1 {
		t.Fatalf("alpha shed.rate_limited = %d, want 1", n)
	}
	if n := m.Counters["tenant.alpha.server.served"]; n != 2 {
		t.Fatalf("alpha served = %d, want 2", n)
	}
	if n := m.Counters["tenant.beta.server.shed.rate_limited"]; n != 0 {
		t.Fatalf("beta shed.rate_limited = %d, want 0", n)
	}
	if n := m.Counters["tenant.beta.server.served"]; n != 1 {
		t.Fatalf("beta served = %d, want 1", n)
	}
}

// TestHTTPRetryAfterHeaders asserts the Retry-After header on every shed
// class the HTTP layer can produce: 429 rate limited, 503 closed, and 504
// deadline-unmeetable (driven via the X-Deadline-Ms header).
func TestHTTPRetryAfterHeaders(t *testing.T) {
	db := testutil.TinyDB()
	cfg := histConfig(db)
	cfg.Tenants[0].RateQPS = 0.001
	cfg.Tenants[0].RateBurst = 1
	s := mustServer(t, cfg)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(tenant, deadlineMS string) *http.Response {
		body, _ := json.Marshal(map[string]string{"tenant": tenant, "sql": testSQL(0)})
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/query", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if deadlineMS != "" {
			req.Header.Set("X-Deadline-Ms", deadlineMS)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST /query: %v", err)
		}
		resp.Body.Close()
		return resp
	}

	// Exhaust alpha's single token, then expect 429 + Retry-After.
	if resp := post("alpha", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("first query status = %d", resp.StatusCode)
	}
	resp := post("alpha", "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate-limited status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}

	// An unmeetable deadline (predicted wait above the header deadline,
	// with the admit path forced through the queue) → 504 + Retry-After.
	s.adm.mu.Lock()
	s.adm.waitEWMA = time.Second
	s.adm.used = s.adm.cap // force the would-enqueue path
	s.adm.mu.Unlock()
	resp = post("beta", "5")
	s.adm.mu.Lock()
	s.adm.used = 0
	s.adm.waitEWMA = 0
	s.adm.mu.Unlock()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("unmeetable status = %d, want 504", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("504-unmeetable must carry Retry-After")
	}

	// Closed server → 503 + Retry-After.
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	resp = post("beta", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("closed status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 must carry Retry-After")
	}
}

func TestHealthMachineStepwiseTransitionsAndHoldDown(t *testing.T) {
	clk := &manualClock{t: time.Unix(2000, 0)}
	var seen []string
	p := OverloadPolicy{
		DegradedQueue:   4,
		OverloadedQueue: 8,
		HoldDown:        2 * time.Second,
		OnTransition: func(from, to HealthState) {
			seen = append(seen, from.String()+">"+to.String())
		},
	}
	h := newHealthMachine(p, 16, obs.NewObserver().Registry())
	h.now = clk.now
	h.lastStep = clk.t

	// A sudden jump straight past both thresholds still steps one level per
	// evaluation: healthy→degraded, then degraded→overloaded.
	h.observeQueue(12)
	if h.current() != StateDegraded {
		t.Fatalf("after first eval state = %v, want degraded", h.current())
	}
	h.observeQueue(12)
	if h.current() != StateOverloaded {
		t.Fatalf("after second eval state = %v, want overloaded", h.current())
	}

	// The queue empties: hold-down pins the state until the dwell passes,
	// then recovery steps down one level at a time.
	h.observeQueue(0)
	if h.current() != StateOverloaded {
		t.Fatal("hold-down must delay the downward step")
	}
	clk.advance(3 * time.Second)
	h.observeQueue(0)
	if h.current() != StateDegraded {
		t.Fatalf("state = %v, want degraded (stepwise recovery)", h.current())
	}
	clk.advance(3 * time.Second)
	h.tick() // idle recovery needs no traffic
	if h.current() != StateHealthy {
		t.Fatalf("state = %v, want healthy", h.current())
	}

	want := []string{"healthy>degraded", "degraded>overloaded", "overloaded>degraded", "degraded>healthy"}
	if len(seen) != len(want) {
		t.Fatalf("transitions %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transition[%d] = %s, want %s", i, seen[i], want[i])
		}
	}
}

func TestHealthMachineLatencyEWMAAsymmetric(t *testing.T) {
	clk := &manualClock{t: time.Unix(3000, 0)}
	p := OverloadPolicy{
		DegradedQueue:       100, // queue never triggers here
		OverloadedQueue:     200,
		DegradedLatencyMs:   50,
		OverloadedLatencyMs: 500,
		Alpha:               0.5,
		HoldDown:            time.Second,
	}
	h := newHealthMachine(p, 16, obs.NewObserver().Registry())
	h.now = clk.now
	h.lastStep = clk.t

	// Latency spikes attack the EWMA fast...
	h.observeLatency(200)
	h.observeLatency(200)
	if h.current() != StateDegraded {
		t.Fatalf("state = %v, want degraded after latency spikes (EWMA %.1f)", h.current(), h.latEWMA)
	}
	up := h.latEWMA
	// ...but fast samples decay it 4x slower than it rose.
	h.mu.Lock()
	h.latEWMA = up
	h.mu.Unlock()
	h.observeLatency(0)
	if h.latEWMA < up/2 {
		t.Fatalf("decay too fast: %.1f -> %.1f", up, h.latEWMA)
	}
	// Enough fast samples plus the dwell recovers.
	clk.advance(2 * time.Second)
	for i := 0; i < 64; i++ {
		h.observeLatency(1)
	}
	if h.current() != StateHealthy {
		t.Fatalf("state = %v, want healthy after recovery (EWMA %.1f)", h.current(), h.latEWMA)
	}
}

// TestAdmissionDeadlineUnmeetableRejectsBeforeQueueing seeds the wait EWMA
// and asserts a too-tight deadline is rejected without consuming a
// semaphore unit or a queue slot.
func TestAdmissionDeadlineUnmeetableRejectsBeforeQueueing(t *testing.T) {
	reg := obs.NewObserver().Registry()
	a := newAdmitter(1, 4, reg)

	// Occupy the only slot so new arrivals face the queue.
	if err := a.acquire(context.Background(), 1); err != nil {
		t.Fatalf("occupy: %v", err)
	}
	a.mu.Lock()
	a.waitEWMA = 100 * time.Millisecond
	a.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := a.acquire(ctx, 1)
	if !errors.Is(err, ErrDeadlineUnmeetable) {
		t.Fatalf("err = %v, want ErrDeadlineUnmeetable", err)
	}
	var hint workload.RetryAfterHint
	if !errors.As(err, &hint) || hint.RetryAfter() <= 0 {
		t.Fatal("unmeetable rejection must hint a retry delay")
	}
	used, queued := a.stats()
	if used != 1 || queued != 0 {
		t.Fatalf("used=%d queued=%d; the rejection must consume nothing", used, queued)
	}
	if n := reg.Counter("server.admission.rejected_deadline").Value(); n != 1 {
		t.Fatalf("rejected_deadline = %d, want 1", n)
	}

	// A deadline beyond the prediction queues normally.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	done := make(chan error, 1)
	go func() { done <- a.acquire(ctx2, 1) }()
	waitCond(t, 5*time.Second, func() bool { _, q := a.stats(); return q == 1 }, "roomy deadline never queued")
	a.release(1)
	if err := <-done; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	a.release(1)
}

// TestAdmissionCancelWhileQueuedReleasesSlot cancels a queued waiter and
// asserts the queue depth drops immediately and no capacity leaks.
func TestAdmissionCancelWhileQueuedReleasesSlot(t *testing.T) {
	a := newAdmitter(1, 4, obs.NewObserver().Registry())
	var depths []int
	a.onQueue = func(d int) { depths = append(depths, d) }

	if err := a.acquire(context.Background(), 1); err != nil {
		t.Fatalf("occupy: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.acquire(ctx, 1) }()
	waitCond(t, 5*time.Second, func() bool { _, q := a.stats(); return q == 1 }, "waiter never queued")

	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v", err)
	}
	waitCond(t, 5*time.Second, func() bool { _, q := a.stats(); return q == 0 }, "queue depth not decremented on cancel")

	// The cancelled waiter must not have consumed capacity: releasing the
	// original admit leaves the semaphore fully free.
	a.release(1)
	used, queued := a.stats()
	if used != 0 || queued != 0 {
		t.Fatalf("used=%d queued=%d after release; cancelled waiter leaked", used, queued)
	}
	// The health feed observed both the enqueue and the cancel-drop.
	sawUp, sawDown := false, false
	for _, d := range depths {
		if d == 1 {
			sawUp = true
		}
		if sawUp && d == 0 {
			sawDown = true
		}
	}
	if !sawUp || !sawDown {
		t.Fatalf("onQueue saw %v, want 1 then 0", depths)
	}
}

// TestServerDrainDuringRateLimitedBurst closes the server mid-burst against
// a rate-limited tenant: every outcome is one of success, 429, or 503, and
// the drain completes cleanly.
func TestServerDrainDuringRateLimitedBurst(t *testing.T) {
	db := testutil.TinyDB()
	cfg := histConfig(db)
	cfg.Tenants[0].RateQPS = 50
	cfg.Tenants[0].RateBurst = 4
	s := mustServer(t, cfg)

	const n = 24
	errs := make(chan error, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		go func() {
			<-start
			_, err := s.Query(context.Background(), QueryRequest{Tenant: "alpha", SQL: testSQL(0)})
			errs <- err
		}()
	}
	close(start)
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("Close during burst: %v", err)
	}
	for i := 0; i < n; i++ {
		err := <-errs
		if err == nil || errors.Is(err, ErrRateLimited) || errors.Is(err, ErrClosed) || errors.Is(err, ErrQueueFull) {
			continue
		}
		t.Fatalf("unexpected outcome during drain: %v", err)
	}
	// Post-drain stragglers shed with 503 or 429, never hang.
	_, err := s.Query(context.Background(), QueryRequest{Tenant: "alpha", SQL: testSQL(0)})
	if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrRateLimited) {
		t.Fatalf("post-close err = %v, want ErrClosed or ErrRateLimited", err)
	}
}

// TestLadderRoutingUnderForcedOverload pins the health state and asserts
// the estimator rung, the result annotations, and the re-optimization
// suppression hook at each level.
func TestLadderRoutingUnderForcedOverload(t *testing.T) {
	db := testutil.TinyDB()
	s := mustServer(t, histConfig(db))

	// Healthy: primary stack, no suppression.
	res, err := s.Query(context.Background(), QueryRequest{Tenant: "alpha", SQL: testSQL(0)})
	if err != nil {
		t.Fatalf("healthy query: %v", err)
	}
	if res.FallbackEstimator || res.HealthState != "healthy" {
		t.Fatalf("healthy result = %+v", res)
	}
	if r := s.reoptSuppress(); r != "" {
		t.Fatalf("healthy suppression = %q, want none", r)
	}
	base := res.Count

	// Degraded: primary stack still serves, but re-optimization is shed.
	s.health.force(StateDegraded)
	res, err = s.Query(context.Background(), QueryRequest{Tenant: "alpha", SQL: testSQL(0)})
	if err != nil {
		t.Fatalf("degraded query: %v", err)
	}
	if res.FallbackEstimator {
		t.Fatal("degraded must NOT route to the shed estimator")
	}
	if res.HealthState != "degraded" {
		t.Fatalf("HealthState = %q, want degraded", res.HealthState)
	}
	if r := s.reoptSuppress(); r != "server-degraded" {
		t.Fatalf("degraded suppression = %q, want server-degraded", r)
	}

	// Overloaded: shed fallback chain serves, results stay correct.
	s.health.force(StateOverloaded)
	res, err = s.Query(context.Background(), QueryRequest{Tenant: "alpha", SQL: testSQL(0)})
	if err != nil {
		t.Fatalf("overloaded query: %v", err)
	}
	if !res.FallbackEstimator {
		t.Fatal("overloaded must route to the shed estimator")
	}
	ms := s.models.Load()
	if res.Estimator != ms.shedEstName {
		t.Fatalf("estimator = %q, want shed rung %q", res.Estimator, ms.shedEstName)
	}
	if res.Count != base {
		t.Fatalf("shed-rung count = %d, want %d (plans may differ, results may not)", res.Count, base)
	}
	if r := s.reoptSuppress(); r != "server-degraded" {
		t.Fatalf("overloaded suppression = %q, want server-degraded", r)
	}

	// healthz reports the state without flipping to 503.
	s.health.force(StateDegraded)
	h := s.Health()
	if h.State != "degraded" || h.Status != "degraded" {
		t.Fatalf("Health = %+v, want degraded state", h)
	}
	rr := httptest.NewRecorder()
	s.handleHealthz(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("degraded healthz = %d, want 200 (alive, reduced quality)", rr.Code)
	}
	s.health.force(StateHealthy)
}

// TestQueryDeadlineUnmeetableAtServerLevel drives the server-level path:
// capacity occupied, seeded wait prediction, short request timeout → typed
// 504 with the tenant's shed.deadline counter incremented and no semaphore
// consumption.
func TestQueryDeadlineUnmeetableAtServerLevel(t *testing.T) {
	db := testutil.TinyDB()
	g := newGate()
	cfg := histConfig(db)
	cfg.MaxConcurrent = 1
	cfg.ExecWrap = g.wrap
	s := mustServer(t, cfg)

	first := make(chan error, 1)
	go func() {
		_, err := s.Query(context.Background(), QueryRequest{Tenant: "alpha", SQL: testSQL(0)})
		first <- err
	}()
	select {
	case <-g.announce:
	case <-time.After(10 * time.Second):
		t.Fatal("first query never reached the executor")
	}
	s.adm.mu.Lock()
	s.adm.waitEWMA = time.Second
	s.adm.mu.Unlock()

	_, err := s.Query(context.Background(), QueryRequest{Tenant: "beta", SQL: testSQL(1), Timeout: 5 * time.Millisecond})
	if !errors.Is(err, ErrDeadlineUnmeetable) {
		t.Fatalf("err = %v, want ErrDeadlineUnmeetable", err)
	}
	used, queued := s.adm.stats()
	if used != 1 || queued != 0 {
		t.Fatalf("used=%d queued=%d; rejection consumed admission state", used, queued)
	}
	if n := s.MetricsSnapshot().Counters["tenant.beta.server.shed.deadline"]; n != 1 {
		t.Fatalf("beta shed.deadline = %d, want 1", n)
	}

	close(g.release)
	if err := <-first; err != nil {
		t.Fatalf("first query: %v", err)
	}
}
