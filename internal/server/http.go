package server

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strconv"
	"time"
)

// Handler returns the server's HTTP/JSON front-end:
//
//	POST /query             execute SQL        {tenant, session?, sql, timeout_ms?}
//	POST /explain           plan without executing (same body)
//	GET  /healthz           liveness + serving gauges
//	GET  /metrics           merged global + per-tenant metrics snapshot
//	POST /admin/models/swap hot-swap model artifacts {dir, version?}
//
// Error mapping: parse failures 400, unknown tenant 404, rate limiting and
// admission-queue overflow 429, shutdown 503, deadline (exceeded or
// unmeetable) 504, resource-limit degradation 422, anything else 500.
// Sheds carry a Retry-After header with the server's earliest-retry hint.
// Every error body is {"error": "..."}.
//
// Requests may carry their deadline as an X-Deadline-Ms header (remaining
// milliseconds); a JSON timeout_ms takes precedence when both are present.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/admin/models/swap", s.handleSwap)
	return mux
}

// queryBody is the wire form of QueryRequest; the timeout travels as
// integer milliseconds so clients never format durations.
type queryBody struct {
	Tenant    string `json:"tenant"`
	Session   string `json:"session,omitempty"`
	SQL       string `json:"sql"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

func (b queryBody) request() QueryRequest {
	return QueryRequest{
		Tenant:  b.Tenant,
		Session: b.Session,
		SQL:     b.SQL,
		Timeout: time.Duration(b.TimeoutMS) * time.Millisecond,
	}
}

// applyDeadlineHeader folds an X-Deadline-Ms header into the request when
// the body carried no explicit timeout, so proxies and clients can attach
// deadlines without touching the JSON payload.
func applyDeadlineHeader(req *QueryRequest, r *http.Request) {
	if req.Timeout > 0 {
		return
	}
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		if ms, err := strconv.ParseInt(h, 10, 64); err == nil && ms > 0 {
			req.Timeout = time.Duration(ms) * time.Millisecond
		}
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var body queryBody
	if !decodeBody(w, r, &body) {
		return
	}
	req := body.request()
	applyDeadlineHeader(&req, r)
	res, err := s.Query(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var body queryBody
	if !decodeBody(w, r, &body) {
		return
	}
	plan, err := s.Explain(r.Context(), body.request())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"plan": plan})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET only"})
		return
	}
	h := s.Health()
	code := http.StatusOK
	// Degraded/overloaded still answer 200 — the server is alive and
	// serving (with reduced quality); only shutdown reads as unavailable.
	if h.Status == "closing" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}

func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Dir     string `json:"dir"`
		Version string `json:"version,omitempty"`
	}
	if !decodeBody(w, r, &body) {
		return
	}
	if body.Dir == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "dir is required"})
		return
	}
	old, cur, err := s.SwapModels(body.Dir, body.Version)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"old": old, "current": cur})
}

// decodeBody parses a POST JSON body, writing the error response itself on
// failure.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return false
	}
	return true
}

// writeError maps a serving error to its HTTP status. Errors carrying an
// earliest-retry hint (rate limits, queue overflow, shutdown, unmeetable
// deadlines) also get a Retry-After header, in whole seconds rounded up
// and floored at 1 per RFC 9110's delay-seconds grammar.
func writeError(w http.ResponseWriter, err error) {
	var hint interface{ RetryAfter() time.Duration }
	if errors.As(err, &hint) {
		secs := int64(math.Ceil(hint.RetryAfter().Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, statusFor(err), map[string]string{"error": err.Error()})
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrBadQuery):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnknownTenant):
		return http.StatusNotFound
	case errors.Is(err, ErrRateLimited), errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrDeadlineUnmeetable), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case isResourceErr(err):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
