package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"
)

// Handler returns the server's HTTP/JSON front-end:
//
//	POST /query             execute SQL        {tenant, session?, sql, timeout_ms?}
//	POST /explain           plan without executing (same body)
//	GET  /healthz           liveness + serving gauges
//	GET  /metrics           merged global + per-tenant metrics snapshot
//	POST /admin/models/swap hot-swap model artifacts {dir, version?}
//
// Error mapping: parse failures 400, unknown tenant 404, admission-queue
// overflow 429, shutdown 503, deadline 504, resource-limit degradation 422,
// anything else 500. Every error body is {"error": "..."}.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/admin/models/swap", s.handleSwap)
	return mux
}

// queryBody is the wire form of QueryRequest; the timeout travels as
// integer milliseconds so clients never format durations.
type queryBody struct {
	Tenant    string `json:"tenant"`
	Session   string `json:"session,omitempty"`
	SQL       string `json:"sql"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

func (b queryBody) request() QueryRequest {
	return QueryRequest{
		Tenant:  b.Tenant,
		Session: b.Session,
		SQL:     b.SQL,
		Timeout: time.Duration(b.TimeoutMS) * time.Millisecond,
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var body queryBody
	if !decodeBody(w, r, &body) {
		return
	}
	res, err := s.Query(r.Context(), body.request())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var body queryBody
	if !decodeBody(w, r, &body) {
		return
	}
	plan, err := s.Explain(r.Context(), body.request())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"plan": plan})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET only"})
		return
	}
	h := s.Health()
	code := http.StatusOK
	if h.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}

func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Dir     string `json:"dir"`
		Version string `json:"version,omitempty"`
	}
	if !decodeBody(w, r, &body) {
		return
	}
	if body.Dir == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "dir is required"})
		return
	}
	old, cur, err := s.SwapModels(body.Dir, body.Version)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"old": old, "current": cur})
}

// decodeBody parses a POST JSON body, writing the error response itself on
// failure.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return false
	}
	return true
}

// writeError maps a serving error to its HTTP status.
func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, statusFor(err), map[string]string{"error": err.Error()})
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrBadQuery):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnknownTenant):
		return http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case isResourceErr(err):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
