package server

import (
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/modelio"
)

// servingSet is the atomically-swapped model bundle: the estimator stack,
// the optional LPCE-R refiner, and one bounded read-through estimate cache
// per tenant, all built together so a single pointer load yields a mutually
// consistent triple. Hot-swapping installs a fully-constructed servingSet
// with one atomic store: queries admitted before the swap finish on the old
// set, queries admitted after see the new one, and no query can ever
// observe the new estimator with the old refiner or a cache warmed by a
// different model (a "torn" set).
type servingSet struct {
	version string
	estName string
	refiner *core.Refiner
	overlay bool
	// caches maps tenant name to that tenant's bounded estimate cache. The
	// caches wrap the same underlying estimator but are per-tenant, so hit
	// rates are attributable and one tenant's churn cannot evict another's
	// working set.
	caches map[string]*cardest.Cache

	// shedEstName and shedCaches are the overload fallback rung: when the
	// health machine reports StateOverloaded, Query routes estimation here —
	// a guarded chain that degrades learned model → histogram → heuristic —
	// so admitted queries still plan cheaply instead of paying model
	// inference under pressure. Built and swapped together with the primary
	// stack so ladder routing is torn-set-free too.
	shedEstName string
	shedCaches  map[string]*cardest.Cache
}

// Estimator modes for Config.Mode.
const (
	ModeHistogram = "histogram" // PostgreSQL-style histogram baseline, no models
	ModeLPCE      = "lpce"      // LPCE-I initial estimates only
	ModeLPCER     = "lpce-r"    // LPCE-I + LPCE-R progressive refinement
)

// buildServingSet wires an estimator and optional refiner into a servingSet
// for the server's tenants: one bounded cache per tenant, registered on
// that tenant's metrics registry. A nil shed estimator gets the default
// overload ladder: the primary estimator guarded by a latency budget,
// falling back to the histogram baseline, bottoming at the chain heuristic.
func (s *Server) buildServingSet(version string, est cardest.Estimator, refiner *core.Refiner, overlay bool, shed cardest.Estimator) *servingSet {
	if shed == nil {
		shed = s.defaultShedChain(est)
	}
	set := &servingSet{
		version:     version,
		estName:     est.Name(),
		refiner:     refiner,
		overlay:     overlay && refiner == nil,
		caches:      make(map[string]*cardest.Cache, len(s.tenants)),
		shedEstName: shed.Name(),
		shedCaches:  make(map[string]*cardest.Cache, len(s.tenants)),
	}
	// Populates per-tenant cache maps keyed by the ranged key; no
	// order-dependent state is touched.
	for name, tn := range s.tenants { //detlint:ignore — order-independent build
		set.caches[name] = cardest.NewCacheBounded(est, tn.obs.Registry(), s.cfg.CacheCapacity)
		set.shedCaches[name] = cardest.NewCacheBounded(shed, tn.obs.Registry(), s.cfg.CacheCapacity)
	}
	return set
}

// defaultShedChain builds the standard load-shedding estimator ladder over
// a primary estimator: the primary runs under a circuit breaker with a
// half-open recovery probe; when it trips (or exceeds its latency budget),
// estimation degrades to the histogram baseline, and — should the histogram
// itself fault — to the fixed chain heuristic. Every rung is bounded by the
// cross-product sanity clamp.
func (s *Server) defaultShedChain(primary cardest.Estimator) cardest.Estimator {
	return cardest.NewFallbackChain(cardest.GuardConfig{
		Bound:         cardest.CrossProductBound(s.cfg.DB),
		Registry:      s.global.Registry(),
		TripAfter:     3,
		Cooldown:      64,
		ProbeInterval: 5 * time.Second,
	}, primary, histogram.NewEstimator(s.cfg.DB))
}

// setFromArtifacts builds the serving estimator stack for the configured
// mode from a loaded model set. A nil set is only valid in histogram mode.
func (s *Server) setFromArtifacts(version string, set *modelio.Set) (*servingSet, error) {
	mode := s.cfg.Mode
	if mode == "" {
		mode = ModeHistogram
		if set != nil {
			mode = ModeLPCER
		}
	}
	switch mode {
	case ModeHistogram:
		return s.buildServingSet(version, histogram.NewEstimator(s.cfg.DB), nil, s.cfg.OverlayReopt, nil), nil
	case ModeLPCE, ModeLPCER:
		if set == nil || set.LPCEI == nil {
			return nil, fmt.Errorf("server: mode %q needs a model set", mode)
		}
		est := &core.TreeEstimator{Label: "lpce-i", Model: set.LPCEI.Model, Enc: s.cfg.Enc}
		var refiner *core.Refiner
		if mode == ModeLPCER {
			if set.Refiner == nil {
				return nil, fmt.Errorf("server: mode %q needs a refiner artifact", mode)
			}
			refiner = set.Refiner
		}
		return s.buildServingSet(version, est, refiner, s.cfg.OverlayReopt, nil), nil
	default:
		return nil, fmt.Errorf("server: unknown estimator mode %q", mode)
	}
}

// SwapModels loads a versioned modelio artifact directory and installs it
// with zero downtime: in-flight queries finish on the set they were
// admitted under, new admissions see the new set. The artifact's encoder
// fingerprint must match the serving schema — a mismatched directory is
// rejected before anything is swapped, leaving the old set serving.
func (s *Server) SwapModels(dir, version string) (old, cur string, err error) {
	if s.cfg.Enc == nil {
		return "", "", fmt.Errorf("server: model swap needs an encoder (Config.Enc)")
	}
	set, err := modelio.LoadSet(dir, s.cfg.Enc, s.cfg.DB)
	if err != nil {
		return "", "", err
	}
	if version == "" {
		version = filepath.Base(strings.TrimRight(dir, "/"))
	}
	next, err := s.setFromArtifacts(version, set)
	if err != nil {
		return "", "", err
	}
	return s.install(next), version, nil
}

// InstallEstimator hot-swaps an arbitrary estimator stack (with optional
// refiner) under the given version label, bypassing artifact loading. The
// soak harness uses it to swap fault-injected stacks mid-load; embedders
// can use it to serve estimators that have no modelio artifact form.
func (s *Server) InstallEstimator(version string, est cardest.Estimator, refiner *core.Refiner) (old string) {
	return s.install(s.buildServingSet(version, est, refiner, s.cfg.OverlayReopt, nil))
}

// InstallLadder hot-swaps an estimator stack together with an explicit shed
// (overload fallback) estimator, replacing the default guarded chain. The
// soak harness uses it to install a deterministic shed rung; embedders can
// use it to control exactly what serves during overload.
func (s *Server) InstallLadder(version string, est cardest.Estimator, refiner *core.Refiner, shed cardest.Estimator) (old string) {
	return s.install(s.buildServingSet(version, est, refiner, s.cfg.OverlayReopt, shed))
}

// install atomically publishes the new serving set and returns the previous
// version.
func (s *Server) install(next *servingSet) (old string) {
	prev := s.models.Swap(next)
	if prev != nil {
		old = prev.version
	}
	s.swaps.Inc()
	s.global.Registry().Gauge("server.model_generation").Set(float64(s.swaps.Value()))
	return old
}

// ModelVersion returns the currently-serving model version label.
func (s *Server) ModelVersion() string {
	if ms := s.models.Load(); ms != nil {
		return ms.version
	}
	return ""
}
