package server

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/fault"
	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
	"github.com/lpce-db/lpce/internal/testutil"
	"github.com/lpce-db/lpce/internal/workload"
)

// -soak scales the chaos soak from the short deterministic CI run (120
// queries) to an extended one (2000 queries).
var soakFlag = flag.Bool("soak", false, "run the extended server soak")

// chaosStack builds the soak's estimator stack: the histogram baseline
// wrapped in deterministic fault injection (panics, garbage, latency)
// wrapped in the guard. TripAfter is effectively infinite so the breaker
// never trips: with breaker state out of the picture, the guarded estimate
// is a pure function of (query, subset), which is what lets a serial oracle
// predict the concurrent server's behavior exactly.
func chaosStack(db *storage.Database) cardest.Estimator {
	hist := histogram.NewEstimator(db)
	flaky := &fault.Estimator{
		Inner:        hist,
		Panic:        fault.Injector{Seed: 101, Rate: 0.03},
		Garbage:      fault.Injector{Seed: 102, Rate: 0.05},
		Latency:      fault.Injector{Seed: 103, Rate: 0.02},
		LatencyDelay: 50 * time.Microsecond,
	}
	return cardest.NewGuard(flaky, cardest.GuardConfig{
		Fallback:  hist,
		Bound:     cardest.CrossProductBound(db),
		TripAfter: 1 << 30,
		Cooldown:  16,
	})
}

func chaosOps() *fault.Ops {
	return &fault.Ops{
		Err:   fault.Injector{Seed: 104, Rate: 0.04},
		AtRow: 2,
	}
}

// soakBudget bounds each query's executor work units. The soak must not
// rely on wall-clock deadlines — those fire or don't depending on machine
// load, which would unhinge the serial oracle — so heavy queries are
// truncated by this deterministic budget instead, identically on both
// paths.
const soakBudget = 3_000_000

// soakOutcome classifies one query's result the same way on the serial and
// served paths: exact count on success (budget-truncated counts are
// labelled, and still deterministic), "degraded" for typed resource or
// deadline errors, "failed" for injected operator faults.
func soakOutcome(count int, timedOut bool, err error) string {
	switch {
	case err == nil && timedOut:
		return fmt.Sprintf("budget:%d", count)
	case err == nil:
		return fmt.Sprintf("ok:%d", count)
	case errors.Is(err, fault.ErrInjected):
		return "failed"
	case isResourceErr(err) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return "degraded"
	default:
		return "error:" + err.Error()
	}
}

// TestServerSoakUnderChaosMatchesSerialOracle drives a concurrent
// two-tenant workload through the fault-injection harness with hot-swaps
// landing mid-load, and asserts every per-query outcome — and therefore the
// ok/degraded/failed tallies — exactly matches a serial fault-free-of-
// concurrency oracle run of the same queries through a bare engine. The
// fault injectors decide by pure hashes of (seed, site, fingerprint, mask),
// so any divergence means the server's concurrency, caching, session, or
// swap machinery changed query semantics.
func TestServerSoakUnderChaosMatchesSerialOracle(t *testing.T) {
	n := 120
	if *soakFlag {
		n = 2000
	}
	db := testutil.TinyDB()
	gen := workload.NewGenerator(db, 17)
	queries := gen.QueriesRange(n, 2, 4)

	ops := chaosOps()
	limits := engine.Limits{MaxMatRows: 2_000_000}

	// Serial oracle: same stack shape, bare engine, one query at a time.
	oracleEst := chaosStack(db)
	eng := engine.New(db)
	oracle := make([]string, n)
	for i, q := range queries {
		res, err := eng.Execute(q, engine.Config{
			Estimator: oracleEst,
			ExecWrap:  ops.Wrap,
			Limits:    limits,
			Budget:    soakBudget,
		})
		oracle[i] = soakOutcome(res.Count, res.TimedOut, err)
	}

	// Served run: two tenants, eight workers, sessions reused per tenant,
	// hot-swaps racing the whole time between two identically-behaving
	// serving sets (so a swap can never be the thing that changes an
	// answer — any swap-attributable failure breaks oracle equality).
	before := runtime.NumGoroutine()
	servedEst := chaosStack(db)
	cfg := Config{
		DB:   db,
		Mode: ModeHistogram,
		Tenants: []TenantConfig{
			{Name: "alpha", Weight: 1, Limits: limits},
			{Name: "beta", Weight: 1, Limits: limits},
		},
		MaxConcurrent:  8,
		MaxQueue:       2 * n,
		DefaultTimeout: 10 * time.Minute, // must never fire: degradation is the Budget's job
		CacheCapacity:  256,              // small on purpose: eviction + recompute must stay byte-identical
		Budget:         soakBudget,
		ExecWrap:       ops.Wrap,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.InstallEstimator("chaos-v1", servedEst, nil)

	stopSwaps := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		v := 1
		for {
			select {
			case <-stopSwaps:
				return
			case <-time.After(500 * time.Microsecond):
			}
			v++
			s.InstallEstimator(fmt.Sprintf("chaos-v%d", v), servedEst, nil)
		}
	}()

	served := make([]string, n)
	runErrs := workload.RunEach(context.Background(), n, 8, func(i int) error {
		tenant := []string{"alpha", "beta"}[i%2]
		res, err := s.Query(context.Background(), QueryRequest{
			Tenant:  tenant,
			Session: fmt.Sprintf("%s-sess-%d", tenant, i%4),
			SQL:     queries[i].SQL(),
		})
		count, timedOut := 0, false
		if res != nil {
			count, timedOut = res.Count, res.TimedOut
		}
		served[i] = soakOutcome(count, timedOut, err)
		return nil
	})
	close(stopSwaps)
	swapper.Wait()
	for i, err := range runErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	// Per-query equality, and the tallies that follow from it.
	tally := map[string]int{}
	for i := range oracle {
		if served[i] != oracle[i] {
			t.Fatalf("query %d (%s): served %q, oracle %q", i, queries[i].SQL(), served[i], oracle[i])
		}
		switch {
		case served[i] == "failed" || served[i] == "degraded":
			tally[served[i]]++
		default:
			tally["ok"]++
		}
	}
	t.Logf("soak n=%d tally=%v swaps=%d", n, tally, s.MetricsSnapshot().Counters["server.model_swaps"])
	if tally["ok"] == 0 {
		t.Fatal("no query succeeded; the soak exercised nothing")
	}
	if tally["failed"]+tally["degraded"] == 0 {
		t.Fatal("no query was faulted; the chaos injectors never fired")
	}
	if swaps := s.MetricsSnapshot().Counters["server.model_swaps"]; swaps < 2 {
		t.Fatalf("only %d hot-swaps landed during the soak", swaps)
	}

	// Leak-free shutdown under the same roof.
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	waitCond(t, 5*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before
	}, fmt.Sprintf("goroutines leaked after soak: %d before, %d after", before, runtime.NumGoroutine()))
}

// TestSoakOracleIsDeterministic guards the soak's foundation: two serial
// runs of the chaos stack over the same workload produce identical
// outcomes. If someone adds breaker state or scheduling dependence to the
// stack, this fails before the soak starts flaking.
func TestSoakOracleIsDeterministic(t *testing.T) {
	db := testutil.TinyDB()
	queries := workload.NewGenerator(db, 17).QueriesRange(40, 2, 4)
	run := func() []string {
		est := chaosStack(db)
		ops := chaosOps()
		eng := engine.New(db)
		out := make([]string, len(queries))
		for i, q := range queries {
			res, err := eng.Execute(q, engine.Config{Estimator: est, ExecWrap: ops.Wrap, Budget: soakBudget})
			out[i] = soakOutcome(res.Count, res.TimedOut, err)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d: run1 %q, run2 %q", i, a[i], b[i])
		}
	}
	// The parsed-back SQL round trip used by the served path preserves
	// fingerprints, which the fault injectors key on.
	for _, q := range queries[:10] {
		rt, _, err := (&session{prepared: map[string]*query.Query{}}).prepare(db.Schema, q.SQL())
		if err != nil {
			t.Fatalf("reparse %q: %v", q.SQL(), err)
		}
		if rt.Fingerprint() != q.Fingerprint() {
			t.Fatalf("fingerprint drift through SQL round trip: %q", q.SQL())
		}
	}
}
