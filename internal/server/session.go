package server

import (
	"fmt"
	"sync"
	"time"

	"github.com/lpce-db/lpce/internal/catalog"
	"github.com/lpce-db/lpce/internal/obs"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/sqlparse"
)

// maxPreparedPerSession bounds one session's prepared-statement cache; the
// oldest statement is evicted first, mirroring the bounded estimate cache's
// FIFO discipline.
const maxPreparedPerSession = 256

// session is one client's prepared-statement namespace: SQL text is parsed
// once and the compiled *query.Query reused on every subsequent execution,
// so a workload replaying the same statements skips the parser entirely.
type session struct {
	key      string // tenant + "\x00" + id
	mu       sync.Mutex
	prepared map[string]*query.Query
	order    []string // insertion order for FIFO eviction
	lastUsed time.Time
}

// prepare returns the compiled query for sql, parsing at most once per
// session. The second return reports whether the statement was already
// prepared (a cache hit).
func (s *session) prepare(schema *catalog.Schema, sql string) (*query.Query, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q, ok := s.prepared[sql]; ok {
		return q, true, nil
	}
	q, err := sqlparse.Parse(schema, sql)
	if err != nil {
		return nil, false, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	for len(s.prepared) >= maxPreparedPerSession {
		oldest := s.order[0]
		s.order = s.order[1:]
		delete(s.prepared, oldest)
	}
	s.prepared[sql] = q
	s.order = append(s.order, sql)
	return q, false, nil
}

// sessionTable interns sessions by (tenant, id) and expires the idle ones.
// lastUsed is guarded by the table's mutex — the table owns expiry, the
// session only owns its prepared statements.
type sessionTable struct {
	mu  sync.Mutex
	m   map[string]*session
	ttl time.Duration

	active  *obs.Gauge
	expired *obs.Counter
	created *obs.Counter
}

func newSessionTable(ttl time.Duration, reg *obs.Registry) *sessionTable {
	if ttl <= 0 {
		ttl = 15 * time.Minute
	}
	return &sessionTable{
		m:       make(map[string]*session),
		ttl:     ttl,
		active:  reg.Gauge("server.sessions.active"),
		expired: reg.Counter("server.sessions.expired"),
		created: reg.Counter("server.sessions.created"),
	}
}

// get returns the session for (tenant, id), creating it on first use and
// refreshing its TTL. An empty id yields a throwaway session that is never
// stored — stateless clients pay a parse per request and leak nothing.
func (t *sessionTable) get(tenant, id string) *session {
	if id == "" {
		return &session{prepared: make(map[string]*query.Query)}
	}
	key := tenant + "\x00" + id
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.m[key]
	if !ok {
		s = &session{key: key, prepared: make(map[string]*query.Query)}
		t.m[key] = s
		t.created.Inc()
		t.active.Set(float64(len(t.m)))
	}
	s.lastUsed = now
	return s
}

// sweep expires sessions idle beyond the TTL and returns how many were
// dropped.
func (t *sessionTable) sweep(now time.Time) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	// Expiry sweep: each entry is tested and deleted independently, so
	// iteration order cannot change which sessions survive.
	for key, s := range t.m { //detlint:ignore — order-independent sweep
		if now.Sub(s.lastUsed) > t.ttl {
			delete(t.m, key)
			n++
		}
	}
	if n > 0 {
		t.expired.Add(int64(n))
		t.active.Set(float64(len(t.m)))
	}
	return n
}

// count returns the number of live sessions.
func (t *sessionTable) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
