package server

import (
	"sync"
	"time"

	"github.com/lpce-db/lpce/internal/obs"
)

// HealthState is the server's coarse load condition, driving the graceful
// degradation ladder: healthy serves everything, degraded sheds optional
// work (LPCE-R re-optimization checkpoints are suppressed), overloaded
// additionally routes estimation through the cheap fallback chain so
// admitted queries still finish, just with worse plans.
type HealthState int32

const (
	// StateHealthy: full service — learned estimation and re-optimization.
	StateHealthy HealthState = iota
	// StateDegraded: re-optimization suppressed ("server-degraded"); queries
	// still use the primary estimator stack.
	StateDegraded
	// StateOverloaded: estimation routed to the shed fallback chain and
	// re-optimization suppressed; admission keeps shedding at the edges.
	StateOverloaded
)

// String implements fmt.Stringer with the healthz vocabulary.
func (s HealthState) String() string {
	switch s {
	case StateDegraded:
		return "degraded"
	case StateOverloaded:
		return "overloaded"
	default:
		return "healthy"
	}
}

// OverloadPolicy sets the health state machine's thresholds. The zero value
// is usable: queue thresholds default from the admission queue bound and
// latency thresholds default to disabled (queue depth alone drives state).
type OverloadPolicy struct {
	// DegradedQueue and OverloadedQueue are admission queue depths at which
	// the state steps up. Defaults: max(1, MaxQueue/2) and
	// max(DegradedQueue+1, MaxQueue*9/10).
	DegradedQueue   int
	OverloadedQueue int
	// DegradedLatencyMs and OverloadedLatencyMs are tail-latency levels (the
	// asymmetric EWMA below, a p99 proxy) at which the state steps up even
	// with a shallow queue. Zero disables latency-driven transitions.
	DegradedLatencyMs   float64
	OverloadedLatencyMs float64
	// Alpha is the EWMA smoothing factor on the way up (default 0.2); decay
	// uses Alpha/4 so the proxy tracks spikes fast and forgets them slowly,
	// like a percentile.
	Alpha float64
	// HoldDown is the minimum dwell before stepping DOWN a level (default
	// 2s; negative disables the dwell). Stepping up is immediate — hysteresis
	// protects against flapping on recovery, not against reacting to load.
	HoldDown time.Duration
	// OnTransition, when set, observes every state change (old, new). Called
	// outside the machine's lock.
	OnTransition func(from, to HealthState)
}

func (p OverloadPolicy) normalized(maxQueue int) OverloadPolicy {
	if p.DegradedQueue <= 0 {
		p.DegradedQueue = maxQueue / 2
		if p.DegradedQueue < 1 {
			p.DegradedQueue = 1
		}
	}
	if p.OverloadedQueue <= 0 {
		p.OverloadedQueue = maxQueue * 9 / 10
	}
	if p.OverloadedQueue <= p.DegradedQueue {
		p.OverloadedQueue = p.DegradedQueue + 1
	}
	if p.Alpha <= 0 || p.Alpha > 1 {
		p.Alpha = 0.2
	}
	if p.HoldDown == 0 {
		p.HoldDown = 2 * time.Second
	}
	if p.HoldDown < 0 {
		p.HoldDown = 0
	}
	return p
}

// healthMachine tracks the server's load condition. Observations arrive
// from two places: the admission layer reports queue depth on every
// enqueue/dequeue, and Query reports each request's latency. The machine
// re-evaluates on every observation and moves STEPWISE — one level per
// evaluation in either direction — so a sudden queue jump still yields the
// full healthy→degraded→overloaded transition sequence for observers, and
// recovery passes back through degraded instead of snapping to healthy.
type healthMachine struct {
	mu     sync.Mutex
	policy OverloadPolicy
	state  HealthState
	// latEWMA is the asymmetric latency EWMA (ms): fast attack, slow decay —
	// a cheap p99 proxy that needs no histogram reads on the hot path.
	latEWMA float64
	// queue is the last reported admission queue depth.
	queue int
	// lastStep is when the state last changed; hold-down gates downward
	// steps on it.
	lastStep time.Time
	now      func() time.Time

	// metrics (nil-safe)
	stateGauge  *obs.Gauge
	transitions *obs.Counter
	degradedSec *obs.Counter // entries into degraded-or-worse
}

func newHealthMachine(p OverloadPolicy, maxQueue int, reg *obs.Registry) *healthMachine {
	h := &healthMachine{
		policy:      p.normalized(maxQueue),
		now:         time.Now,
		stateGauge:  reg.Gauge("server.health.state"),
		transitions: reg.Counter("server.health.transitions"),
		degradedSec: reg.Counter("server.health.degraded_entries"),
	}
	h.lastStep = h.now()
	h.stateGauge.Set(0)
	return h
}

// current returns the present state without re-evaluating.
func (h *healthMachine) current() HealthState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// observeQueue records the admission queue depth and re-evaluates.
func (h *healthMachine) observeQueue(depth int) {
	h.mu.Lock()
	h.queue = depth
	from, to := h.evalLocked()
	h.mu.Unlock()
	h.notify(from, to)
}

// observeLatency records one query's latency (ms) into the asymmetric EWMA
// and re-evaluates.
func (h *healthMachine) observeLatency(ms float64) {
	h.mu.Lock()
	a := h.policy.Alpha
	if ms < h.latEWMA {
		a /= 4 // slow decay: spikes linger, like a tail percentile
	}
	h.latEWMA += a * (ms - h.latEWMA)
	from, to := h.evalLocked()
	h.mu.Unlock()
	h.notify(from, to)
}

// tick re-evaluates with no new observation — Health() calls it so an idle
// server (no queries arriving to observe) still steps down over time.
func (h *healthMachine) tick() {
	h.mu.Lock()
	from, to := h.evalLocked()
	h.mu.Unlock()
	h.notify(from, to)
}

// target computes the level the current signals call for, ignoring
// stepwise movement and hold-down. Called with the lock held.
func (h *healthMachine) targetLocked() HealthState {
	p := h.policy
	switch {
	case h.queue >= p.OverloadedQueue,
		p.OverloadedLatencyMs > 0 && h.latEWMA >= p.OverloadedLatencyMs:
		return StateOverloaded
	case h.queue >= p.DegradedQueue,
		p.DegradedLatencyMs > 0 && h.latEWMA >= p.DegradedLatencyMs:
		return StateDegraded
	default:
		return StateHealthy
	}
}

// evalLocked steps the state at most one level toward the target, applying
// hold-down to downward steps. Returns (from, to); from == to means no
// transition. Called with the lock held.
func (h *healthMachine) evalLocked() (from, to HealthState) {
	from, to = h.state, h.state
	target := h.targetLocked()
	switch {
	case target > h.state:
		to = h.state + 1
	case target < h.state:
		if h.policy.HoldDown > 0 && h.now().Sub(h.lastStep) < h.policy.HoldDown {
			return from, from
		}
		to = h.state - 1
	default:
		return from, from
	}
	h.state = to
	h.lastStep = h.now()
	h.stateGauge.Set(float64(to))
	h.transitions.Inc()
	if to > from && to == StateDegraded {
		h.degradedSec.Inc()
	}
	return from, to
}

// notify invokes the transition hook outside the lock.
func (h *healthMachine) notify(from, to HealthState) {
	if from != to && h.policy.OnTransition != nil {
		h.policy.OnTransition(from, to)
	}
}

// force pins the state (test hook — ladder routing tests need a specific
// state without synthesizing the load that produces it).
func (h *healthMachine) force(s HealthState) {
	h.mu.Lock()
	from := h.state
	h.state = s
	h.lastStep = h.now()
	h.stateGauge.Set(float64(s))
	h.mu.Unlock()
	h.notify(from, s)
}
