// Package server is the long-running multi-tenant SQL serving subsystem: it
// wraps the single-query engine.Engine in everything a resident process
// needs — admission control with load shedding, per-tenant namespaces
// (estimate caches, resource limits, metrics), sessions with parse-once
// prepared statements, zero-downtime model hot-swap, and graceful
// drain-on-shutdown. The engine stays a pure library; this package owns all
// the lifecycle.
package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/encode"
	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/modelio"
	"github.com/lpce-db/lpce/internal/obs"
	"github.com/lpce-db/lpce/internal/storage"
)

// ErrUnknownTenant rejects a request naming a tenant the server was not
// configured with (HTTP 404).
var ErrUnknownTenant = errors.New("server: unknown tenant")

// ErrBadQuery wraps SQL parse failures so transport layers can classify
// them as client errors (HTTP 400) without string matching.
var ErrBadQuery = errors.New("server: bad query")

// TenantConfig declares one tenant's namespace: its admission weight (share
// of the concurrency capacity one of its queries occupies), its per-query
// resource limits, and its request-rate envelope.
type TenantConfig struct {
	Name   string
	Weight int64         // admission weight per query; <=0 means 1
	Limits engine.Limits // per-query resource limits for this tenant
	// RateQPS is the tenant's sustained request rate; requests beyond it are
	// rejected with ErrRateLimited (HTTP 429 + Retry-After) before touching
	// the shared admission queue. <=0 disables rate limiting for the tenant.
	RateQPS float64
	// RateBurst is the token-bucket depth — how many requests may arrive
	// back-to-back before pacing kicks in (default 1 when RateQPS is set).
	RateBurst int
}

// Config configures a Server. DB and at least one tenant are required.
type Config struct {
	DB  *storage.Database
	Enc *encode.Encoder // required for model modes and hot-swap

	// Mode selects the serving estimator stack: ModeHistogram, ModeLPCE, or
	// ModeLPCER. Empty defaults to ModeHistogram without Models and ModeLPCER
	// with them.
	Mode string
	// Models is the initial model artifact set for the model modes; nil is
	// valid only for ModeHistogram. Later sets arrive via SwapModels.
	Models        *modelio.Set
	ModelsVersion string // label for the initial set ("boot" when empty)

	Tenants []TenantConfig

	// MaxConcurrent is the admission capacity in weight units (default 4).
	MaxConcurrent int64
	// MaxQueue bounds the admission wait queue; an overflowing queue rejects
	// with ErrQueueFull (default 16; negative means no queueing at all).
	MaxQueue int
	// DefaultTimeout bounds each query's wall time when the request carries
	// no tighter deadline (default 30s).
	DefaultTimeout time.Duration
	// SessionTTL expires idle sessions (default 15m).
	SessionTTL time.Duration
	// CacheCapacity bounds each tenant's estimate cache (entries across all
	// shards); 0 leaves the caches unbounded.
	CacheCapacity int
	// TraceCap bounds each tenant observer's retained query traces and CE
	// evaluation tables (default 4096; negative disables the cap).
	TraceCap int

	// Overload sets the health state machine's thresholds; the zero value
	// derives queue thresholds from MaxQueue and disables latency triggers.
	Overload OverloadPolicy

	// Engine knobs, applied to every query.
	Budget       int64
	ExecWorkers  int
	ScalarExec   bool
	OverlayReopt bool
	// ExecWrap intercepts every executor operator (fault-injection harness).
	ExecWrap exec.WrapFunc
}

// tenant is one configured namespace at runtime.
type tenant struct {
	name   string
	weight int64
	limits engine.Limits
	// obs is the tenant's private observer: metrics, traces, and CE
	// evaluation accumulate here and surface under "tenant.<name>." in the
	// merged snapshot. Isolation means one tenant's workload cannot perturb
	// another's numbers.
	obs *obs.Observer

	queries  *obs.Counter
	errs     *obs.Counter
	degraded *obs.Counter
	latency  *obs.Histogram

	// bucket is the tenant's token-bucket rate limiter; nil when the tenant
	// has no configured rate.
	bucket *tokenBucket
	// served counts queries that completed (success or query-level error)
	// after admission; the shed counters tally each rejection class so a
	// scrape shows shed-vs-served per tenant exactly.
	served       *obs.Counter
	shedRate     *obs.Counter // ErrRateLimited
	shedQueue    *obs.Counter // ErrQueueFull
	shedClosed   *obs.Counter // ErrClosed
	shedDeadline *obs.Counter // ErrDeadlineUnmeetable
}

// Server is a resident multi-tenant SQL serving process over one database.
// All methods are safe for concurrent use.
type Server struct {
	cfg     Config
	eng     *engine.Engine
	tenants map[string]*tenant
	adm     *admitter
	sess    *sessionTable
	health  *healthMachine
	models  atomic.Pointer[servingSet]

	// global holds server-wide (tenant-independent) metrics.
	global *obs.Observer
	swaps  *obs.Counter

	// baseCtx is cancelled only on forced shutdown; every query context is
	// additionally bound to it via context.AfterFunc, so a drain deadline
	// can cut in-flight queries loose cooperatively.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	janitorStop chan struct{}
	janitorDone chan struct{}
	closed      atomic.Bool
}

// New validates the configuration, builds the per-tenant namespaces,
// installs the initial serving set, and starts the session janitor.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, fmt.Errorf("server: Config.DB is required")
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("server: at least one tenant is required")
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 16
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.TraceCap == 0 {
		cfg.TraceCap = 4096
	}
	if cfg.TraceCap < 0 {
		cfg.TraceCap = 0
	}

	s := &Server{
		cfg:         cfg,
		eng:         engine.New(cfg.DB),
		tenants:     make(map[string]*tenant, len(cfg.Tenants)),
		global:      obs.NewObserver(),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	reg := s.global.Registry()
	s.swaps = reg.Counter("server.model_swaps")
	s.adm = newAdmitter(cfg.MaxConcurrent, cfg.MaxQueue, reg)
	s.sess = newSessionTable(cfg.SessionTTL, reg)
	s.health = newHealthMachine(cfg.Overload, cfg.MaxQueue, reg)
	s.adm.onQueue = s.health.observeQueue

	for _, tc := range cfg.Tenants {
		if tc.Name == "" {
			return nil, fmt.Errorf("server: tenant with empty name")
		}
		if _, dup := s.tenants[tc.Name]; dup {
			return nil, fmt.Errorf("server: duplicate tenant %q", tc.Name)
		}
		if tc.Weight <= 0 {
			tc.Weight = 1
		}
		to := obs.NewObserver()
		to.SetTraceCap(cfg.TraceCap)
		to.CE().SetCap(cfg.TraceCap)
		treg := to.Registry()
		tn := &tenant{
			name:         tc.Name,
			weight:       tc.Weight,
			limits:       tc.Limits,
			obs:          to,
			queries:      treg.Counter("server.queries"),
			errs:         treg.Counter("server.query_errors"),
			degraded:     treg.Counter("server.queries_degraded"),
			latency:      treg.Histogram("server.query_ms"),
			served:       treg.Counter("server.served"),
			shedRate:     treg.Counter("server.shed.rate_limited"),
			shedQueue:    treg.Counter("server.shed.queue_full"),
			shedClosed:   treg.Counter("server.shed.closed"),
			shedDeadline: treg.Counter("server.shed.deadline"),
		}
		if tc.RateQPS > 0 {
			tn.bucket = newTokenBucket(tc.RateQPS, tc.RateBurst, treg.Counter("server.rate_limited"))
		}
		s.tenants[tc.Name] = tn
	}

	initial, err := s.setFromArtifacts(initialVersion(cfg.ModelsVersion), cfg.Models)
	if err != nil {
		return nil, err
	}
	s.models.Store(initial)

	go s.janitor()
	return s, nil
}

func initialVersion(v string) string {
	if v == "" {
		return "boot"
	}
	return v
}

// janitor periodically expires idle sessions until Close stops it.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	interval := s.sess.ttl / 4
	if interval < time.Second {
		interval = time.Second
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case now := <-t.C:
			s.sess.sweep(now)
		}
	}
}

// QueryRequest is one SQL execution request.
type QueryRequest struct {
	Tenant  string        `json:"tenant"`
	Session string        `json:"session,omitempty"` // empty = stateless, no prepared-statement reuse
	SQL     string        `json:"sql"`
	Timeout time.Duration `json:"-"` // <=0 uses the server default
}

// QueryResult is one successful execution's outcome.
type QueryResult struct {
	Count        int           `json:"count"`
	Reopts       int           `json:"reopts"`
	TimedOut     bool          `json:"timed_out,omitempty"`
	Prepared     bool          `json:"prepared"` // statement served from the session cache
	ModelVersion string        `json:"model_version"`
	Estimator    string        `json:"estimator"`
	Elapsed      time.Duration `json:"elapsed_ns"`
	// HealthState is the server state the query was admitted under.
	HealthState string `json:"health_state,omitempty"`
	// FallbackEstimator marks a query served from the shed (overload) rung
	// of the estimator ladder rather than the primary stack.
	FallbackEstimator bool `json:"fallback_estimator,omitempty"`
}

// countShed attributes an admission rejection to the tenant's per-class
// shed counters. Context expiry while queued is the client's own deadline,
// not a server shed, and is left uncounted.
func countShed(tn *tenant, err error) {
	switch {
	case errors.Is(err, ErrRateLimited):
		tn.shedRate.Inc()
	case errors.Is(err, ErrQueueFull):
		tn.shedQueue.Inc()
	case errors.Is(err, ErrClosed):
		tn.shedClosed.Inc()
	case errors.Is(err, ErrDeadlineUnmeetable):
		tn.shedDeadline.Inc()
	}
}

// reoptSuppress is the serving layer's hook into the re-optimization
// controller: while the health machine reports degraded or worse, every
// checkpoint is suppressed under "server-degraded" — re-optimization is the
// first work shed because it is optional (the query still finishes on its
// current plan) yet costs an extra planning pass plus refinement inference.
func (s *Server) reoptSuppress() string {
	if s.health.current() >= StateDegraded {
		return "server-degraded"
	}
	return ""
}

// Query admits, prepares, and executes one SQL statement for a tenant,
// applying the overload-control ladder in order: the tenant's token bucket
// (cheapest rejection, charged to the flooding tenant alone), deadline-aware
// admission on the shared semaphore, then — for admitted queries — estimator
// routing by health state: overloaded servers plan with the shed fallback
// chain and suppress re-optimization instead of paying model inference.
// Admission failures surface as ErrRateLimited / ErrQueueFull / ErrClosed /
// ErrDeadlineUnmeetable; unknown tenants as ErrUnknownTenant; parse errors
// and engine errors pass through typed.
func (s *Server) Query(ctx context.Context, req QueryRequest) (*QueryResult, error) {
	tn, ok := s.tenants[req.Tenant]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, req.Tenant)
	}
	if tn.bucket != nil {
		if ok, after := tn.bucket.take(); !ok {
			tn.shedRate.Inc()
			return nil, &RateLimitError{Tenant: tn.name, After: after}
		}
	}
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	qctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	// Bind the query to the server lifecycle: a forced shutdown cancels
	// baseCtx, which cancels every in-flight query cooperatively.
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()

	if err := s.adm.acquire(qctx, tn.weight); err != nil {
		countShed(tn, err)
		return nil, err
	}
	defer s.adm.release(tn.weight)

	// One atomic load fixes the serving set for this query: estimator,
	// refiner, and cache are mutually consistent even if a swap lands
	// mid-flight. The health state is sampled once at admission so the
	// query's whole plan comes from one rung of the ladder.
	ms := s.models.Load()
	state := s.health.current()
	est := ms.caches[tn.name]
	estName := ms.estName
	refiner := ms.refiner
	overlay := ms.overlay
	fallback := false
	if state >= StateOverloaded {
		est = ms.shedCaches[tn.name]
		estName = ms.shedEstName
		refiner = nil
		overlay = false
		fallback = true
	}

	sess := s.sess.get(req.Tenant, req.Session)
	q, hit, err := sess.prepare(s.cfg.DB.Schema, req.SQL)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	res, err := s.eng.ExecuteContext(qctx, q, engine.Config{
		Estimator:     est,
		Refiner:       refiner,
		OverlayReopt:  overlay,
		ReoptSuppress: s.reoptSuppress,
		Budget:        s.cfg.Budget,
		Obs:           tn.obs,
		Limits:        tn.limits,
		ExecWrap:      s.cfg.ExecWrap,
		ScalarExec:    s.cfg.ScalarExec,
		ExecWorkers:   s.cfg.ExecWorkers,
	})
	elapsed := time.Since(start)
	tn.queries.Inc()
	tn.served.Inc()
	tn.latency.Observe(float64(elapsed) / float64(time.Millisecond))
	s.health.observeLatency(float64(elapsed) / float64(time.Millisecond))
	if err != nil {
		tn.errs.Inc()
		if isResourceErr(err) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			tn.degraded.Inc()
		}
		return nil, err
	}
	return &QueryResult{
		Count:             res.Count,
		Reopts:            res.Reopts,
		TimedOut:          res.TimedOut,
		Prepared:          hit,
		ModelVersion:      ms.version,
		Estimator:         estName,
		Elapsed:           elapsed,
		HealthState:       state.String(),
		FallbackEstimator: fallback,
	}, nil
}

// Explain admits and plans (but does not execute) one SQL statement,
// returning the optimizer's chosen plan under the tenant's current
// estimator stack.
func (s *Server) Explain(ctx context.Context, req QueryRequest) (string, error) {
	tn, ok := s.tenants[req.Tenant]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownTenant, req.Tenant)
	}
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	qctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()

	if err := s.adm.acquire(qctx, tn.weight); err != nil {
		return "", err
	}
	defer s.adm.release(tn.weight)

	ms := s.models.Load()
	sess := s.sess.get(req.Tenant, req.Session)
	q, _, err := sess.prepare(s.cfg.DB.Schema, req.SQL)
	if err != nil {
		return "", err
	}
	return s.eng.Explain(q, ms.caches[tn.name])
}

// Close drains and shuts the server down: new admissions are refused
// immediately, queued waiters fail with ErrClosed, and in-flight queries
// run to completion. If ctx expires before the drain completes, in-flight
// queries are cancelled cooperatively (they observe context.Canceled) and
// Close still waits for them to unwind — it never returns with queries
// running. Safe to call more than once.
func (s *Server) Close(ctx context.Context) error {
	if !s.closed.CompareAndSwap(false, true) {
		<-s.adm.drained
		<-s.janitorDone
		return nil
	}
	s.adm.close()
	var err error
	select {
	case <-s.adm.drained:
	case <-ctx.Done():
		// Forced: cut the in-flight queries loose and wait for the unwind.
		err = ctx.Err()
		s.baseCancel()
		<-s.adm.drained
	}
	s.baseCancel()
	close(s.janitorStop)
	<-s.janitorDone
	return err
}

// Tenants returns the configured tenant names, sorted.
func (s *Server) Tenants() []string {
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants { //detlint:ignore — sorted immediately below
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// TenantObserver returns the named tenant's observer (nil for unknown
// tenants) — test and embedding hook for per-tenant traces and CE reports.
func (s *Server) TenantObserver(name string) *obs.Observer {
	tn, ok := s.tenants[name]
	if !ok {
		return nil
	}
	return tn.obs
}

// TenantCache returns the named tenant's current estimate cache (nil for
// unknown tenants). The cache belongs to the current serving set and is
// replaced wholesale on hot-swap.
func (s *Server) TenantCache(name string) *cardest.Cache {
	ms := s.models.Load()
	if ms == nil {
		return nil
	}
	return ms.caches[name]
}

// MetricsSnapshot merges the server-wide registry with every tenant's
// registry, the tenant metrics prefixed "tenant.<name>.", so one scrape
// shows global admission state next to per-tenant attribution.
func (s *Server) MetricsSnapshot() obs.MetricsSnapshot {
	out := s.global.Registry().Snapshot()
	if out.Counters == nil {
		out.Counters = map[string]int64{}
	}
	if out.Gauges == nil {
		out.Gauges = map[string]float64{}
	}
	if out.Histograms == nil {
		out.Histograms = map[string]obs.HistSummary{}
	}
	// Aggregation into key-disjoint map entries; iteration order cannot
	// leak into the merged snapshot.
	for name, tn := range s.tenants { //detlint:ignore — order-independent merge
		snap := tn.obs.Registry().Snapshot()
		prefix := "tenant." + name + "."
		for k, v := range snap.Counters { //detlint:ignore — order-independent merge
			out.Counters[prefix+k] = v
		}
		for k, v := range snap.Gauges { //detlint:ignore — order-independent merge
			out.Gauges[prefix+k] = v
		}
		for k, v := range snap.Histograms { //detlint:ignore — order-independent merge
			out.Histograms[prefix+k] = v
		}
	}
	return out
}

// Health is the healthz payload.
type Health struct {
	Status       string `json:"status"` // "ok", "degraded", "overloaded", or "closing"
	ModelVersion string `json:"model_version"`
	Inflight     int64  `json:"inflight_weight"`
	Queued       int    `json:"queued"`
	Sessions     int    `json:"sessions"`
	Tenants      int    `json:"tenants"`
	// State is the health state machine's current level; Status mirrors it
	// unless the server is closing ("ok" when healthy, for compatibility).
	State string `json:"state"`
	// PredictedWaitMs is the admission queue-wait EWMA driving
	// deadline-aware rejection.
	PredictedWaitMs float64 `json:"predicted_wait_ms"`
}

// isResourceErr reports whether err is a typed per-query resource-limit
// violation (graceful degradation, not a server fault).
func isResourceErr(err error) bool {
	var re *exec.ResourceError
	return errors.As(err, &re)
}

// Health reports liveness, the health state, and the key serving gauges.
// Each call re-evaluates the state machine, so a polled idle server steps
// back down to healthy even with no queries arriving to observe.
func (s *Server) Health() Health {
	s.health.tick()
	used, queued := s.adm.stats()
	state := s.health.current()
	status := "ok"
	if state != StateHealthy {
		status = state.String()
	}
	if s.closed.Load() {
		status = "closing"
	}
	return Health{
		Status:          status,
		ModelVersion:    s.ModelVersion(),
		Inflight:        used,
		Queued:          queued,
		Sessions:        s.sess.count(),
		Tenants:         len(s.tenants),
		State:           state.String(),
		PredictedWaitMs: float64(s.adm.predictedWait()) / float64(time.Millisecond),
	}
}

// HealthState returns the health state machine's current level — the
// embedding hook the soak harness and experiment drivers poll.
func (s *Server) HealthState() HealthState {
	s.health.tick()
	return s.health.current()
}
