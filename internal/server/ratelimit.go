package server

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/lpce-db/lpce/internal/obs"
)

// ErrRateLimited rejects a request because the tenant exceeded its
// configured request rate (HTTP 429). The concrete error is a
// *RateLimitError carrying the earliest-retry hint for the Retry-After
// header; callers match the class with errors.Is(err, ErrRateLimited).
var ErrRateLimited = errors.New("server: tenant rate limited")

// RateLimitError is the typed rate-limit rejection: which tenant, and how
// long until a token will be available. It satisfies errors.Is against
// ErrRateLimited and exposes RetryAfter for the transport layer and for
// backoff clients (workload.RetryAfterHint).
type RateLimitError struct {
	Tenant string
	After  time.Duration
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("server: tenant %q rate limited (retry after %v)", e.Tenant, e.After)
}

// Is makes errors.Is(err, ErrRateLimited) match.
func (e *RateLimitError) Is(target error) bool { return target == ErrRateLimited }

// RetryAfter returns the earliest-retry hint.
func (e *RateLimitError) RetryAfter() time.Duration { return e.After }

// tokenBucket is a standard token-bucket rate limiter: tokens refill
// continuously at qps up to burst, each admission spends one. It shapes a
// tenant's sustained request rate while permitting short bursts up to the
// bucket depth — the first overload-control line of defense, applied before
// the shared admission semaphore so one tenant's flood is charged to that
// tenant alone instead of filling the global wait queue.
//
// The clock is injectable so tests drive refill deterministically.
type tokenBucket struct {
	mu     sync.Mutex
	qps    float64 // sustained refill rate, tokens/second
	burst  float64 // bucket depth
	tokens float64
	last   time.Time
	now    func() time.Time

	limited *obs.Counter // nil-safe
}

// newTokenBucket returns a bucket refilling at qps with the given burst
// depth (clamped to at least 1), starting full. A qps <= 0 would never
// refill; callers gate on that and skip the bucket entirely.
func newTokenBucket(qps float64, burst int, limited *obs.Counter) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	b := &tokenBucket{
		qps:     qps,
		burst:   float64(burst),
		tokens:  float64(burst),
		now:     time.Now,
		limited: limited,
	}
	b.last = b.now()
	return b
}

// take attempts to spend one token. On refusal it returns the time until
// one full token will have refilled — the Retry-After hint.
func (b *tokenBucket) take() (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.qps
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	b.limited.Inc()
	return false, time.Duration((1 - b.tokens) / b.qps * float64(time.Second))
}
