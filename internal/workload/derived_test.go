package workload

import (
	"testing"

	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/testutil"
)

func TestDerivedEdgesExist(t *testing.T) {
	db := testutil.TinyDB()
	derived := db.Schema.DerivedEdges()
	if len(derived) == 0 {
		t.Fatal("IMDB-lite schema should have FK-FK derived edges (5 fact tables share title.id)")
	}
	for _, e := range derived {
		if e.Left.Ref != e.Right.Ref {
			t.Fatalf("derived edge %v-%v does not share a referenced key",
				e.Left.QualifiedName(), e.Right.QualifiedName())
		}
		if e.Left.Table == e.Right.Table {
			t.Fatal("derived self-edge")
		}
	}
}

func TestDerivedGeneratorProducesFactFactJoins(t *testing.T) {
	db := testutil.TinyDB()
	g := NewGeneratorDerived(db, 171)
	factFact := false
	for i := 0; i < 60 && !factFact; i++ {
		q := g.Query(3)
		for _, j := range q.Joins {
			// a join where neither side is a primary key is fact-fact
			if j.Left.Ref != nil && j.Right.Ref != nil {
				factFact = true
			}
		}
	}
	if !factFact {
		t.Fatal("derived generator never produced a fact-to-fact join")
	}
}

func TestDerivedQueriesExecuteCorrectly(t *testing.T) {
	// Pipelined execution must agree with the independent bottom-up
	// collector on fact-fact join queries (brute force is quadratic in two
	// fact tables, so the collector is the reference here; the operators
	// themselves are brute-validated in the exec package).
	db := testutil.TinyDB()
	g := NewGeneratorDerived(db, 172)
	for i := 0; i < 8; i++ {
		q := g.Query(2)
		want, err := exec.RunCollect(&exec.Ctx{DB: db, Q: q}, exec.CanonicalPlan(q, q.AllTablesMask()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := exec.Run(&exec.Ctx{DB: db, Q: q}, exec.CanonicalPlan(q, q.AllTablesMask()))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("derived-edge query: pipelined %d, collected %d for %s", got, want, q.SQL())
		}
	}
}

func TestPlainGeneratorUnchangedByDerivedOption(t *testing.T) {
	db := testutil.TinyDB()
	a := NewGenerator(db, 173).Queries(5, 3)
	b := NewGenerator(db, 173).Queries(5, 3)
	for i := range a {
		if a[i].SQL() != b[i].SQL() {
			t.Fatal("plain generator should stay deterministic")
		}
	}
	// derived generator has strictly more adjacency
	plain := NewGenerator(db, 1)
	derived := NewGeneratorDerived(db, 1)
	plainEdges, derivedEdges := 0, 0
	for i := range plain.adj {
		plainEdges += len(plain.adj[i])
		derivedEdges += len(derived.adj[i])
	}
	if derivedEdges <= plainEdges {
		t.Fatalf("derived adjacency (%d) should exceed plain (%d)", derivedEdges, plainEdges)
	}
}

func TestConnectedWithDerivedJoins(t *testing.T) {
	db := testutil.TinyDB()
	g := NewGeneratorDerived(db, 174)
	for i := 0; i < 20; i++ {
		q := g.Query(4)
		if !q.Connected(q.AllTablesMask()) {
			t.Fatalf("disconnected derived query %s", q.SQL())
		}
		_ = query.NewBitSet()
	}
}
