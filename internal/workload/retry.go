package workload

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// RetryAfterHint is implemented by errors that carry a server-provided
// earliest-retry delay (the HTTP Retry-After header, or the typed shed
// errors from internal/server). Backoff honors the hint as a floor on its
// own computed delay, so a compliant client never hammers a server that
// just told it when to come back.
type RetryAfterHint interface {
	RetryAfter() time.Duration
}

// RetryBudget caps the total retries spent across a whole client pool.
// Per-call attempt limits bound one request's persistence; the shared
// budget bounds the pool's aggregate retry traffic — without it, a server
// shedding 50% of requests doubles its arrival rate from retries alone
// (a retry storm), which is exactly the feedback loop overload control
// exists to break. A nil *RetryBudget is unlimited.
type RetryBudget struct {
	left atomic.Int64
}

// NewRetryBudget returns a budget of n total retries.
func NewRetryBudget(n int64) *RetryBudget {
	b := &RetryBudget{}
	b.left.Store(n)
	return b
}

// Take consumes one retry from the budget, reporting false when exhausted.
// Nil-safe: a nil budget always grants.
func (b *RetryBudget) Take() bool {
	if b == nil {
		return true
	}
	return b.left.Add(-1) >= 0
}

// Remaining returns the retries left (possibly negative after contention;
// clamped to zero). Nil-safe.
func (b *RetryBudget) Remaining() int64 {
	if b == nil {
		return 1 << 62
	}
	if n := b.left.Load(); n > 0 {
		return n
	}
	return 0
}

// Backoff is a jittered exponential retry policy for workload clients
// talking to a load-shedding server. Delays are deterministic in
// (Seed, key, attempt) — the jitter comes from a hash, not a stateful RNG —
// so a chaos run retries at exactly the same offsets every time.
type Backoff struct {
	// Base is the first retry's delay cap (default 5ms); attempt k's cap is
	// Base*Factor^k, clamped to Max.
	Base time.Duration
	// Max clamps the per-attempt delay cap (default 500ms).
	Max time.Duration
	// Factor is the exponential growth rate (default 2).
	Factor float64
	// Seed feeds the deterministic jitter hash.
	Seed int64
	// MaxAttempts bounds the total tries per call, the first included
	// (default 4; 1 disables retries).
	MaxAttempts int
	// Budget, when non-nil, is the shared pool-wide retry budget; an
	// exhausted budget stops retrying even with attempts left.
	Budget *RetryBudget
}

func (b Backoff) normalized() Backoff {
	if b.Base <= 0 {
		b.Base = 5 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 500 * time.Millisecond
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.MaxAttempts <= 0 {
		b.MaxAttempts = 4
	}
	return b
}

// retryMix is the splitmix64 finalizer (same construction as the fault
// injectors): a strong stateless avalanche for deterministic jitter.
func retryMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Delay returns the jittered delay before retry attempt (0-based: attempt 0
// is the wait after the first failure). Full jitter in (0, cap]: uniform
// over the exponential cap, so synchronized clients that failed together
// spread out instead of re-colliding (the thundering-herd fix).
func (b Backoff) Delay(key uint64, attempt int) time.Duration {
	b = b.normalized()
	ceil := float64(b.Base)
	for i := 0; i < attempt; i++ {
		ceil *= b.Factor
		if ceil >= float64(b.Max) {
			ceil = float64(b.Max)
			break
		}
	}
	h := retryMix(uint64(b.Seed) ^ retryMix(key) ^ uint64(attempt)*0x9e3779b97f4a7c15)
	frac := float64(h>>11) / float64(1<<53) // [0, 1)
	d := time.Duration((1 - frac) * ceil)   // (0, ceil]
	if d <= 0 {
		d = time.Nanosecond
	}
	return d
}

// Retry runs fn until it succeeds, fails with a non-retryable error, or the
// attempt/budget limits are exhausted. retryable classifies errors; when
// nil, only errors carrying a RetryAfterHint are retried. A server hint is
// honored as a floor under the computed backoff delay. A context that ends
// mid-wait stops immediately, returning the last error from fn.
//
// attempts reports how many times fn ran (≥1), so attempts-1 is the retry
// count a caller charges against its own accounting.
func (b Backoff) Retry(ctx context.Context, key uint64, retryable func(error) bool, fn func() error) (attempts int, err error) {
	b = b.normalized()
	for {
		attempts++
		err = fn()
		if err == nil {
			return attempts, nil
		}
		if retryable == nil {
			var hint RetryAfterHint
			if !errors.As(err, &hint) {
				return attempts, err
			}
		} else if !retryable(err) {
			return attempts, err
		}
		if attempts >= b.MaxAttempts || !b.Budget.Take() {
			return attempts, err
		}
		d := b.Delay(key, attempts-1)
		var hint RetryAfterHint
		if errors.As(err, &hint) && hint.RetryAfter() > d {
			d = hint.RetryAfter()
		}
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return attempts, err
		}
	}
}
