package workload

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// RunParallel executes fn(i) for every i in [0, n) across a pool of worker
// goroutines pulling indices from a shared atomic counter (work stealing, so
// uneven per-item costs balance automatically). workers <= 0 defaults to
// GOMAXPROCS; workers == 1 runs serially on the calling goroutine, making
// serial baselines share this exact code path.
//
// The first error stops the pool: remaining workers drain without picking up
// new indices, and that error is returned. fn must be safe to call
// concurrently from multiple goroutines for distinct indices.
func RunParallel(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		stopped atomic.Bool
		errOnce sync.Once
		firstEr error
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stopped.Load() {
					return
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstEr = err })
					stopped.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}
