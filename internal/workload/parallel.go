package workload

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError wraps a panic recovered from one pool task, so a single
// panicking query degrades to a per-query error instead of killing the
// whole worker pool (and with it every in-flight query).
type PanicError struct {
	Index int    // task index that panicked
	Value any    // the recovered panic value
	Stack []byte // stack captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("workload: task %d panicked: %v", e.Index, e.Value)
}

// safeCall runs fn(i), converting a panic into a *PanicError.
func safeCall(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// RunParallel executes fn(i) for every i in [0, n) across a pool of worker
// goroutines pulling indices from a shared atomic counter (work stealing, so
// uneven per-item costs balance automatically). workers <= 0 defaults to
// GOMAXPROCS; workers == 1 runs serially on the calling goroutine, making
// serial baselines share this exact code path.
//
// The first error stops the pool: remaining workers drain without picking up
// new indices, and that error is returned. A panicking task is recovered
// into a *PanicError and treated the same way. fn must be safe to call
// concurrently from multiple goroutines for distinct indices.
func RunParallel(n, workers int, fn func(i int) error) error {
	return RunParallelCtx(context.Background(), n, workers, fn)
}

// RunParallelCtx is RunParallel under a context: when ctx is cancelled the
// pool stops picking up new indices and the context's error is returned
// (unless a task error arrived first). In-flight tasks are not interrupted —
// cancel-aware tasks should thread ctx themselves.
func RunParallelCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := safeCall(i, fn); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		stopped atomic.Bool
		errOnce sync.Once
		firstEr error
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stopped.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					errOnce.Do(func() { firstEr = err })
					stopped.Store(true)
					return
				}
				if err := safeCall(i, fn); err != nil {
					errOnce.Do(func() { firstEr = err })
					stopped.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}

// RunEach executes fn(i) for every i in [0, n) across a worker pool like
// RunParallelCtx, but never stops on task failure: each task's error (with
// panics recovered into *PanicError) lands in the returned slice at its
// index, nil marking success. This is the chaos-tolerant runner — one bad
// query cannot take down the pool or starve the queries behind it.
//
// A cancelled ctx stops new work; tasks never started report ctx.Err().
func RunEach(ctx context.Context, n, workers int, fn func(i int) error) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	run := func(i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		errs[i] = safeCall(i, fn)
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
		return errs
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	return errs
}
