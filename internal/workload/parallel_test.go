package workload

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunParallelCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 57
		var hits [n]atomic.Int32
		if err := RunParallel(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, got)
			}
		}
	}
}

func TestRunParallelEmptyAndSerial(t *testing.T) {
	if err := RunParallel(0, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	// workers == 1 preserves order
	var order []int
	if err := RunParallel(5, 1, func(i int) error {
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestRunParallelStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int32
	err := RunParallel(10_000, 4, func(i int) error {
		calls.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c := calls.Load(); c == 10_000 {
		t.Fatal("pool did not stop early after the error")
	}
}
