package workload

import (
	"testing"

	"github.com/lpce-db/lpce/internal/testutil"
)

func TestQueryHasRequestedJoins(t *testing.T) {
	db := testutil.TinyDB()
	g := NewGenerator(db, 1)
	for _, joins := range []int{1, 2, 4, 6, 8} {
		q := g.Query(joins)
		if q.NumJoins() != joins {
			t.Fatalf("requested %d joins, got %d", joins, q.NumJoins())
		}
		if len(q.Tables) != joins+1 {
			t.Fatalf("%d joins should span %d tables, got %d", joins, joins+1, len(q.Tables))
		}
	}
}

func TestQueriesAreConnected(t *testing.T) {
	db := testutil.TinyDB()
	g := NewGenerator(db, 2)
	for i := 0; i < 50; i++ {
		q := g.Query(2 + i%7)
		if !q.Connected(q.AllTablesMask()) {
			t.Fatalf("query %d is disconnected: %s", i, q.SQL())
		}
	}
}

func TestNoDuplicateTables(t *testing.T) {
	db := testutil.TinyDB()
	g := NewGenerator(db, 3)
	for i := 0; i < 30; i++ {
		q := g.Query(5)
		seen := map[int]bool{}
		for _, tab := range q.Tables {
			if seen[tab.ID] {
				t.Fatalf("duplicate table %s", tab.Name)
			}
			seen[tab.ID] = true
		}
	}
}

func TestPredicatesPresentAndValid(t *testing.T) {
	db := testutil.TinyDB()
	g := NewGenerator(db, 4)
	for i := 0; i < 30; i++ {
		q := g.Query(3)
		if len(q.Preds) < 1 || len(q.Preds) > 4 {
			t.Fatalf("predicate count %d outside [1,4]", len(q.Preds))
		}
		for _, p := range q.Preds {
			if q.TableIndex(p.Col.Table) < 0 {
				t.Fatalf("predicate on table %s outside query", p.Col.Table.Name)
			}
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	db := testutil.TinyDB()
	a := NewGenerator(db, 99).Queries(10, 4)
	b := NewGenerator(db, 99).Queries(10, 4)
	for i := range a {
		if a[i].SQL() != b[i].SQL() {
			t.Fatalf("query %d differs:\n%s\n%s", i, a[i].SQL(), b[i].SQL())
		}
	}
}

func TestQueriesRangeBounds(t *testing.T) {
	db := testutil.TinyDB()
	qs := NewGenerator(db, 5).QueriesRange(40, 6, 8)
	seen := map[int]bool{}
	for _, q := range qs {
		if q.NumJoins() < 6 || q.NumJoins() > 8 {
			t.Fatalf("join count %d outside [6,8]", q.NumJoins())
		}
		seen[q.NumJoins()] = true
	}
	if len(seen) < 2 {
		t.Fatal("expected a spread of join counts")
	}
}
