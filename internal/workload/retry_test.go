package workload

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// hintedErr is a shed error carrying a server Retry-After hint.
type hintedErr struct {
	after time.Duration
}

func (e *hintedErr) Error() string             { return "shed" }
func (e *hintedErr) RetryAfter() time.Duration { return e.after }

func TestBackoffDelayDeterministicAndBounded(t *testing.T) {
	b := Backoff{Base: 4 * time.Millisecond, Max: 64 * time.Millisecond, Factor: 2, Seed: 9}
	for attempt := 0; attempt < 8; attempt++ {
		ceil := 4 * time.Millisecond << attempt
		if ceil > 64*time.Millisecond {
			ceil = 64 * time.Millisecond
		}
		for key := uint64(0); key < 50; key++ {
			d1, d2 := b.Delay(key, attempt), b.Delay(key, attempt)
			if d1 != d2 {
				t.Fatalf("delay(%d,%d) not deterministic: %v vs %v", key, attempt, d1, d2)
			}
			if d1 <= 0 || d1 > ceil {
				t.Fatalf("delay(%d,%d) = %v outside (0, %v]", key, attempt, d1, ceil)
			}
		}
	}
	// Different keys must jitter apart (not all equal): count distinct.
	seen := map[time.Duration]bool{}
	for key := uint64(0); key < 50; key++ {
		seen[b.Delay(key, 3)] = true
	}
	if len(seen) < 25 {
		t.Fatalf("jitter too clumped: %d distinct delays over 50 keys", len(seen))
	}
}

func TestRetrySucceedsAfterSheds(t *testing.T) {
	calls := 0
	b := Backoff{Base: time.Microsecond, Max: 10 * time.Microsecond, MaxAttempts: 5, Seed: 1}
	attempts, err := b.Retry(context.Background(), 7, nil, func() error {
		calls++
		if calls < 3 {
			return &hintedErr{after: time.Microsecond}
		}
		return nil
	})
	if err != nil || attempts != 3 || calls != 3 {
		t.Fatalf("attempts=%d calls=%d err=%v", attempts, calls, err)
	}
}

func TestRetryStopsOnNonRetryable(t *testing.T) {
	permanent := errors.New("permanent")
	b := Backoff{MaxAttempts: 5, Seed: 1}
	attempts, err := b.Retry(context.Background(), 0, nil, func() error { return permanent })
	if attempts != 1 || !errors.Is(err, permanent) {
		t.Fatalf("attempts=%d err=%v; a hint-less error must not be retried by default", attempts, err)
	}

	// An explicit classifier overrides the hint-based default.
	calls := 0
	attempts, err = b.Retry(context.Background(), 0,
		func(error) bool { return true },
		func() error { calls++; return permanent })
	if attempts != 5 || calls != 5 || !errors.Is(err, permanent) {
		t.Fatalf("attempts=%d calls=%d err=%v", attempts, calls, err)
	}
}

func TestRetryHonorsServerHintAsFloor(t *testing.T) {
	b := Backoff{Base: time.Nanosecond, Max: 2 * time.Nanosecond, MaxAttempts: 2, Seed: 1}
	hint := 30 * time.Millisecond
	start := time.Now()
	_, err := b.Retry(context.Background(), 0, nil, func() error { return &hintedErr{after: hint} })
	if err == nil {
		t.Fatal("want final error")
	}
	if waited := time.Since(start); waited < hint {
		t.Fatalf("waited %v, want at least the server hint %v", waited, hint)
	}
}

func TestRetryBudgetStopsThePool(t *testing.T) {
	budget := NewRetryBudget(3)
	b := Backoff{Base: time.Microsecond, MaxAttempts: 10, Seed: 1, Budget: budget}
	total := 0
	for i := 0; i < 4; i++ {
		attempts, _ := b.Retry(context.Background(), uint64(i), nil, func() error {
			return &hintedErr{after: time.Microsecond}
		})
		total += attempts - 1
	}
	if total != 3 {
		t.Fatalf("pool spent %d retries, budget was 3", total)
	}
	if budget.Remaining() != 0 {
		t.Fatalf("remaining = %d", budget.Remaining())
	}
}

func TestRetryCancelledContextReturnsLastError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	shed := &hintedErr{after: time.Hour} // the wait would be eternal; ctx cuts it
	b := Backoff{MaxAttempts: 3, Seed: 1}
	start := time.Now()
	attempts, err := b.Retry(ctx, 0, nil, func() error { return shed })
	if attempts != 1 || !errors.Is(err, shed) {
		t.Fatalf("attempts=%d err=%v", attempts, err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancelled retry must return immediately")
	}
}

func TestRetryBudgetNilUnlimited(t *testing.T) {
	var b *RetryBudget
	for i := 0; i < 10; i++ {
		if !b.Take() {
			t.Fatal("nil budget must always grant")
		}
	}
	if fmt.Sprint(b.Remaining()) == "0" {
		t.Fatal("nil budget must report headroom")
	}
}
