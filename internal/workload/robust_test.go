package workload

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/lpce-db/lpce/internal/testutil"
)

func TestGenerateOversizedJoinReturnsError(t *testing.T) {
	db := testutil.TinyDB()
	g := NewGenerator(db, 1)
	nTables := len(db.Schema.Tables)
	q, err := g.Generate(nTables) // needs nTables+1 distinct tables
	if err == nil || q != nil {
		t.Fatalf("oversized join request must fail, got q=%v err=%v", q, err)
	}
	if !strings.Contains(err.Error(), "joins") {
		t.Fatalf("unhelpful error: %v", err)
	}
	if _, err := g.Generate(-1); err == nil {
		t.Fatal("negative join count must fail")
	}
	// The generator stays usable after a failed request.
	if q, err := g.Generate(2); err != nil || q.NumJoins() != 2 {
		t.Fatalf("generator broken after failure: q=%v err=%v", q, err)
	}
}

func TestQueryPanicsOnOversizedRequest(t *testing.T) {
	db := testutil.TinyDB()
	g := NewGenerator(db, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Query must keep its documented panic behaviour")
		}
	}()
	g.Query(len(db.Schema.Tables) + 5)
}

func TestRunParallelRecoversTaskPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := RunParallel(50, workers, func(i int) error {
			if i == 7 {
				panic("chaos")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 7 || pe.Value != "chaos" || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: recovered %+v", workers, pe)
		}
	}
}

func TestRunParallelCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int32
	err := RunParallelCtx(ctx, 100_000, 4, func(i int) error {
		if calls.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c := calls.Load(); c == 100_000 {
		t.Fatal("pool ignored cancellation")
	}
}

func TestRunEachCollectsAllErrors(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var calls atomic.Int32
		errs := RunEach(context.Background(), 60, workers, func(i int) error {
			calls.Add(1)
			switch {
			case i%10 == 3:
				return boom
			case i%10 == 7:
				panic("chaos")
			}
			return nil
		})
		if c := calls.Load(); c != 60 {
			t.Fatalf("workers=%d: pool stopped early after %d calls", workers, c)
		}
		for i, err := range errs {
			switch {
			case i%10 == 3 && !errors.Is(err, boom):
				t.Fatalf("workers=%d: errs[%d] = %v, want boom", workers, i, err)
			case i%10 == 7:
				var pe *PanicError
				if !errors.As(err, &pe) || pe.Index != i {
					t.Fatalf("workers=%d: errs[%d] = %v, want PanicError{Index:%d}", workers, i, err, i)
				}
			case i%10 != 3 && i%10 != 7 && err != nil:
				t.Fatalf("workers=%d: errs[%d] = %v, want nil", workers, i, err)
			}
		}
	}
}

func TestRunEachCancelledContextMarksRemaining(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	errs := RunEach(ctx, 25, 4, func(i int) error { return nil })
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("errs[%d] = %v, want context.Canceled", i, err)
		}
	}
}
