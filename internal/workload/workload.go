// Package workload generates random training and test queries over the
// relational graph of a database, following the methodology of Kipf et al.
// (MSCN) that the paper adopts in §7.1: sample a connected subgraph of the
// join graph with the requested number of joins, then attach filter
// predicates whose operands are drawn from the actual column data so
// selectivities are realistic.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/lpce-db/lpce/internal/catalog"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
)

// Generator produces random queries for one database.
type Generator struct {
	db    *storage.Database
	rng   *rand.Rand
	edges []catalog.JoinEdge
	adj   [][]int // table adjacency over edges
}

// NewGenerator returns a deterministic generator for the database using
// the schema's declared foreign-key join edges.
func NewGenerator(db *storage.Database, seed int64) *Generator {
	return newGenerator(db, seed, db.Schema.Edges)
}

// NewGeneratorDerived additionally uses the implicit FK-FK edges between
// foreign keys referencing the same primary key (JOB-style fact-to-fact
// joins), producing denser join graphs.
func NewGeneratorDerived(db *storage.Database, seed int64) *Generator {
	edges := append(append([]catalog.JoinEdge(nil), db.Schema.Edges...), db.Schema.DerivedEdges()...)
	return newGenerator(db, seed, edges)
}

func newGenerator(db *storage.Database, seed int64, edges []catalog.JoinEdge) *Generator {
	g := &Generator{
		db:    db,
		rng:   rand.New(rand.NewSource(seed)),
		edges: edges,
	}
	g.adj = make([][]int, len(db.Schema.Tables))
	seen := make([]map[int]bool, len(db.Schema.Tables))
	for i := range seen {
		seen[i] = make(map[int]bool)
	}
	add := func(a, b int) {
		if a != b && !seen[a][b] {
			seen[a][b] = true
			g.adj[a] = append(g.adj[a], b)
		}
	}
	for _, e := range edges {
		a, b := e.Left.Table.ID, e.Right.Table.ID
		add(a, b)
		add(b, a)
	}
	return g
}

// edgesBetween returns the generator's join edges connecting two tables.
func (g *Generator) edgesBetween(a, b *catalog.Table) []catalog.JoinEdge {
	var out []catalog.JoinEdge
	for _, e := range g.edges {
		if (e.Left.Table == a && e.Right.Table == b) || (e.Left.Table == b && e.Right.Table == a) {
			out = append(out, e)
		}
	}
	return out
}

// Generate builds one random query with exactly numJoins join conditions
// (numJoins+1 relations), reporting an error — never panicking — when the
// request is infeasible: an oversized join count the schema cannot support
// without repeating a table, or a join graph with no reachable connected
// subgraph of that size.
func (g *Generator) Generate(numJoins int) (*query.Query, error) {
	if numJoins < 0 {
		return nil, fmt.Errorf("workload: negative join count %d", numJoins)
	}
	if n := len(g.db.Schema.Tables); numJoins+1 > n {
		return nil, fmt.Errorf("workload: %d joins need %d distinct tables but the schema has %d",
			numJoins, numJoins+1, n)
	}
	for attempt := 0; attempt <= 200; attempt++ {
		if q := g.tryQuery(numJoins); q != nil {
			return q, nil
		}
	}
	return nil, fmt.Errorf("workload: no connected %d-join subgraph found in 200 attempts", numJoins)
}

// Query generates one random query with exactly numJoins join conditions.
// It panics on an infeasible request; Generate is the error-returning
// variant for callers that must survive bad input.
func (g *Generator) Query(numJoins int) *query.Query {
	q, err := g.Generate(numJoins)
	if err != nil {
		panic(err)
	}
	return q
}

func (g *Generator) tryQuery(numJoins int) *query.Query {
	schema := g.db.Schema
	// Random walk over the join graph collecting distinct tables. Starting
	// from a random fact table keeps deep joins feasible (dimension tables
	// are leaves of the graph).
	start := g.rng.Intn(len(schema.Tables))
	inSet := map[int]bool{start: true}
	tables := []int{start}
	var joins []query.Join

	for len(joins) < numJoins {
		// candidate expansion edges: from any chosen table to a new one
		type cand struct {
			from, to int
		}
		var cands []cand
		for _, t := range tables {
			for _, nb := range g.adj[t] {
				if !inSet[nb] {
					cands = append(cands, cand{t, nb})
				}
			}
		}
		if len(cands) == 0 {
			return nil // dead end, retry with a new start
		}
		c := cands[g.rng.Intn(len(cands))]
		edges := g.edgesBetween(schema.Tables[c.from], schema.Tables[c.to])
		e := edges[g.rng.Intn(len(edges))]
		joins = append(joins, query.Join{Left: e.Left, Right: e.Right})
		inSet[c.to] = true
		tables = append(tables, c.to)
	}

	metas := make([]*catalog.Table, len(tables))
	for i, id := range tables {
		metas[i] = schema.Tables[id]
	}
	preds := g.predicates(metas)
	return query.New(metas, joins, preds)
}

// predicates attaches 1–4 filter predicates to the chosen tables.
func (g *Generator) predicates(tables []*catalog.Table) []query.Predicate {
	// collect candidate columns: all attributes, FKs to small enums, and
	// occasionally primary keys (the paper's example query filters on
	// title.id ranges).
	var cands []*catalog.Column
	for _, t := range tables {
		for _, c := range t.Columns {
			switch c.Kind {
			case catalog.KindAttribute:
				cands = append(cands, c)
			case catalog.KindForeignKey:
				if c.Ref != nil && len(c.Ref.Table.Columns) == 1 {
					// FK to a pure enum table (kind_type, info_type, ...)
					cands = append(cands, c)
				}
			case catalog.KindPrimaryKey:
				if g.rng.Float64() < 0.25 {
					cands = append(cands, c)
				}
			}
		}
	}
	if len(cands) == 0 {
		return nil
	}
	n := 1 + g.rng.Intn(4)
	if n > len(cands) {
		n = len(cands)
	}
	g.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })

	var preds []query.Predicate
	used := map[int]bool{}
	for _, c := range cands {
		if len(preds) >= n {
			break
		}
		if used[c.GlobalID] {
			continue
		}
		used[c.GlobalID] = true
		preds = append(preds, g.predicateOn(c))
	}
	return preds
}

// predicateOn builds one predicate on column c with an operand sampled from
// the column's live data, so the predicate is never trivially empty.
func (g *Generator) predicateOn(c *catalog.Column) query.Predicate {
	tbl := g.db.Table(c.Table)
	col := tbl.Col(c.Pos)
	v := col[g.rng.Intn(len(col))]

	lowNDV := c.NDV > 0 && c.NDV <= 64
	if lowNDV {
		switch g.rng.Intn(3) {
		case 0:
			return query.Predicate{Col: c, Op: query.OpEQ, Operand: v}
		case 1:
			// IN list of 2-4 distinct sampled values
			set := map[int64]bool{v: true}
			for len(set) < 2+g.rng.Intn(3) {
				set[col[g.rng.Intn(len(col))]] = true
			}
			in := make([]int64, 0, len(set))
			for x := range set {
				in = append(in, x)
			}
			sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
			return query.Predicate{Col: c, Op: query.OpIn, InSet: in}
		default:
			return query.Predicate{Col: c, Op: query.OpGT, Operand: v}
		}
	}
	switch g.rng.Intn(5) {
	case 0:
		return query.Predicate{Col: c, Op: query.OpLT, Operand: v}
	case 1:
		return query.Predicate{Col: c, Op: query.OpLE, Operand: v}
	case 2:
		return query.Predicate{Col: c, Op: query.OpGT, Operand: v}
	case 3:
		return query.Predicate{Col: c, Op: query.OpGE, Operand: v}
	default:
		return query.Predicate{Col: c, Op: query.OpEQ, Operand: v}
	}
}

// Queries generates n queries each with exactly numJoins joins.
func (g *Generator) Queries(n, numJoins int) []*query.Query {
	out := make([]*query.Query, n)
	for i := range out {
		out[i] = g.Query(numJoins)
	}
	return out
}

// QueriesRange generates n queries with join counts drawn uniformly from
// [minJoins, maxJoins], the paper's training-set recipe (10,000 queries
// with 6–8 joins).
func (g *Generator) QueriesRange(n, minJoins, maxJoins int) []*query.Query {
	out := make([]*query.Query, n)
	for i := range out {
		out[i] = g.Query(minJoins + g.rng.Intn(maxJoins-minJoins+1))
	}
	return out
}
