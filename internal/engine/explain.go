package engine

import (
	"fmt"
	"strings"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/optimizer"
	"github.com/lpce-db/lpce/internal/query"
)

// Explain returns the plan the optimizer would choose for the query under
// the given estimator, without executing it — the engine's EXPLAIN. The
// rendering shows each operator with its estimated cardinality.
func (e *Engine) Explain(q *query.Query, est cardest.Estimator) (string, error) {
	opt := optimizer.New(e.DB, est)
	p, stats, err := opt.Plan(q)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "plan (estimator=%s, %d cardinality estimates, est. cost %.0f):\n",
		est.Name(), stats.EstimateCalls, p.EstCost)
	b.WriteString(p.String())
	return b.String(), nil
}

// ExplainAnalyze executes the query and returns the final plan annotated
// with true cardinalities plus the end-to-end time decomposition — the
// engine's EXPLAIN ANALYZE, and the paper's source of training labels.
func (e *Engine) ExplainAnalyze(q *query.Query, cfg Config) (string, Result, error) {
	res, err := e.Execute(q, cfg)
	if err != nil {
		return "", res, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "COUNT(*) = %d\n", res.Count)
	if res.TimedOut {
		b.WriteString("WARNING: execution exceeded the work budget (reported as timeout)\n")
	}
	fmt.Fprintf(&b, "planning %v · inference %v · re-optimization %v (%d rounds) · execution %v · total %v\n",
		res.PlanTime, res.InferTime, res.ReoptTime, res.Reopts, res.ExecTime, res.Total())
	b.WriteString(res.FinalPlan.String())
	return b.String(), res, nil
}
