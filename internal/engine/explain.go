package engine

import (
	"fmt"
	"strings"
	"time"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/obs"
	"github.com/lpce-db/lpce/internal/optimizer"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
)

// Explain returns the plan the optimizer would choose for the query under
// the given estimator, without executing it — the engine's EXPLAIN. The
// rendering shows each operator with its estimated cardinality.
func (e *Engine) Explain(q *query.Query, est cardest.Estimator) (string, error) {
	opt := optimizer.New(e.DB, est)
	p, stats, err := opt.Plan(q)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "plan (estimator=%s, %d cardinality estimates, est. cost %.0f):\n",
		est.Name(), stats.EstimateCalls, p.EstCost)
	b.WriteString(p.String())
	return b.String(), nil
}

// ExplainAnalyze executes the query and returns the final plan annotated
// with true cardinalities plus the end-to-end time decomposition — the
// engine's EXPLAIN ANALYZE, and the paper's source of training labels.
//
// When cfg.Obs is set the rendering is fully instrumented: every operator
// line carries its runtime stats from the final execution attempt
// (`actual=N est=M time=T`), and the re-optimization events — triggered or
// suppressed, with their q-errors — are listed after the plan.
func (e *Engine) ExplainAnalyze(q *query.Query, cfg Config) (string, Result, error) {
	res, err := e.Execute(q, cfg)
	if err != nil {
		return "", res, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "COUNT(*) = %d\n", res.Count)
	if res.TimedOut {
		b.WriteString("WARNING: execution exceeded the work budget (reported as timeout)\n")
	}
	fmt.Fprintf(&b, "planning %v · inference %v · re-optimization %v (%d rounds) · execution %v · total %v\n",
		res.PlanTime, res.InferTime, res.ReoptTime, res.Reopts, res.ExecTime, res.Total())
	b.WriteString(res.FinalPlan.StringWith(operatorAnnotations(res.Trace)))
	writeReoptEvents(&b, res.Trace)
	return b.String(), res, nil
}

// operatorAnnotations returns a plan annotation callback rendering each
// operator's runtime stats from the trace's final execution attempt, or nil
// when tracing was off.
func operatorAnnotations(t *obs.QueryTrace) func(*plan.Node) string {
	final := t.FinalRound()
	if final == nil {
		return nil
	}
	return func(n *plan.Node) string {
		s := final.ByMask(n.Tables)
		if s == nil {
			return ""
		}
		actual := "?" // operator did not run to completion
		if s.ActualRows >= 0 {
			actual = fmt.Sprintf("%.0f", s.ActualRows)
		}
		return fmt.Sprintf(" (actual=%s est=%.0f time=%s)", actual, s.EstRows, s.Wall.Round(time.Microsecond))
	}
}

// writeReoptEvents appends the trace's checkpoint events, one line each.
func writeReoptEvents(b *strings.Builder, t *obs.QueryTrace) {
	if t == nil || len(t.Events) == 0 {
		return
	}
	b.WriteString("re-optimization events:\n")
	for _, ev := range t.Events {
		outcome := "suppressed: " + ev.Suppressed
		if ev.Triggered {
			outcome = "TRIGGERED re-planning"
			if ev.PlanDiff != "" {
				outcome += " (" + ev.PlanDiff + ")"
			}
		}
		fmt.Fprintf(b, "  round %d %s: est=%.0f actual=%.0f q-error=%.1f — %s\n",
			ev.Round, ev.Op, ev.EstRows, ev.ActualRows, ev.QError, outcome)
	}
}
