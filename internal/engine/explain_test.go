package engine

import (
	"strings"
	"testing"

	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/workload"
)

func TestExplain(t *testing.T) {
	db, _, _ := fixture(t)
	e := New(db)
	g := workload.NewGenerator(db, 191)
	q := g.Query(3)
	out, err := e.Explain(q, histogram.NewEstimator(db))
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"plan (estimator=postgres", "cardinality estimates", "est="} {
		if !strings.Contains(out, frag) {
			t.Fatalf("explain output missing %q:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "true=") {
		t.Fatal("EXPLAIN must not execute (no true cardinalities)")
	}
}

func TestExplainAnalyze(t *testing.T) {
	db, _, _ := fixture(t)
	e := New(db)
	g := workload.NewGenerator(db, 192)
	q := g.Query(2)
	out, res, err := e.ExplainAnalyze(q, Config{Estimator: histogram.NewEstimator(db)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != trueCount(t, db, q) {
		t.Fatal("wrong count")
	}
	for _, frag := range []string{"COUNT(*) =", "planning", "execution", "true="} {
		if !strings.Contains(out, frag) {
			t.Fatalf("explain analyze missing %q:\n%s", frag, out)
		}
	}
}

func TestExplainAnalyzeTimeoutWarning(t *testing.T) {
	db, _, _ := fixture(t)
	e := New(db)
	g := workload.NewGenerator(db, 193)
	q := g.Query(4)
	out, res, err := e.ExplainAnalyze(q, Config{Estimator: histogram.NewEstimator(db), Budget: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut || !strings.Contains(out, "WARNING") {
		t.Fatal("timeout warning missing")
	}
}
