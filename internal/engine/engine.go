// Package engine drives end-to-end query execution, mirroring the paper's
// decomposition (Eq. 7/8): T_end = T_P (plan search) + T_I (model
// inference) + T_R (re-optimization) + T_E (execution). It wires together
// the optimizer, the pipelined executor with checkpoints, the
// re-optimization controller, and — when a refiner is supplied — LPCE-R's
// progressive estimate refinement.
package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/obs"
	"github.com/lpce-db/lpce/internal/optimizer"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/reopt"
	"github.com/lpce-db/lpce/internal/storage"
)

// Config selects the estimator stack for a run.
type Config struct {
	// Estimator provides initial cardinalities (histogram, LPCE-I, or any
	// baseline).
	Estimator cardest.Estimator
	// Refiner enables LPCE-R re-optimization when non-nil.
	Refiner *core.Refiner
	// OverlayReopt enables re-optimization WITHOUT a learned refiner: on a
	// checkpoint trigger the remaining estimates come from the base
	// estimator overlaid with the exact cardinalities (and error ratios) of
	// the executed sub-plans — the paper's §8 suggestion of applying
	// progressive estimation to other estimator families. Ignored when
	// Refiner is set.
	OverlayReopt bool
	// Policy is the re-optimization trigger rule (DefaultPolicy when zero).
	Policy reopt.Policy
	// ReoptSuppress, when non-nil, is consulted live at every checkpoint: a
	// non-empty reason suppresses the re-optimization trigger (recorded in
	// the trace under that reason). The serving layer uses it to shed
	// re-optimization work while its health state machine reports the
	// process degraded — estimation refinement is the first work worth
	// dropping under overload, well before queries themselves.
	ReoptSuppress func() string
	// Budget bounds executor work units per query; exceeded queries are
	// reported as timeouts. Zero means unlimited.
	Budget int64
	// Obs, when non-nil, turns on the observability layer: per-operator
	// runtime stats in the executor, re-optimization event tracing, CE
	// evaluation of every cardinality estimate, and engine-level metrics.
	// The observer may be shared by concurrent workers. Nil costs nothing.
	Obs *obs.Observer
	// Limits bounds per-query resource usage; exceeding a limit fails the
	// single query with a typed *exec.ResourceError instead of the process.
	Limits Limits
	// ExecWrap, when non-nil, intercepts every executor operator the engine
	// builds. It exists for the fault-injection harness; production configs
	// leave it nil.
	ExecWrap exec.WrapFunc
	// ScalarExec forces the tuple-at-a-time executor. The default (false)
	// runs the vectorized batch executor, which produces identical results,
	// TrueCard stamps, checkpoint sequences, and typed errors while
	// amortizing per-tuple overheads over 1024-row batches; the scalar path
	// remains as the reference implementation and an escape hatch.
	ScalarExec bool
	// ExecWorkers enables morsel-driven intra-query parallelism on the batch
	// executor: eligible scan→hash-join pipelines are split into morsels and
	// probed by up to ExecWorkers goroutines behind an order-preserving
	// exchange. Results stay byte-identical to the serial path for any value;
	// <= 1 (and ScalarExec) keep execution strictly serial.
	ExecWorkers int
	// RawScan forces batch scans to bypass the encoded column segments and
	// their zone maps, reading the flat raw columns directly — the oracle
	// escape hatch for the segment layer, mirroring what ScalarExec is for
	// the batch executor. Results are byte-identical either way.
	RawScan bool
	// BuildWorkers is the sealing parallelism loaders apply on behalf of
	// this config (via storage.SetBuildWorkers): FinishLoad fans per-column
	// statistics and per-(column, segment) encoding across this many
	// workers, byte-equal to serial sealing for any value. Zero defaults to
	// ExecWorkers; the effective count also clamps to the host's core count.
	// The engine itself never seals — resolve the value with
	// EffectiveBuildWorkers at load/refresh sites.
	BuildWorkers int
}

// EffectiveBuildWorkers resolves Config.BuildWorkers: itself when positive,
// else ExecWorkers, never below 1 (serial).
func (c Config) EffectiveBuildWorkers() int {
	w := c.BuildWorkers
	if w <= 0 {
		w = c.ExecWorkers
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Limits are the per-query resource budgets. The zero value disables every
// limit (the pre-hardening behaviour).
type Limits struct {
	// MaxMatRows caps the tuples buffered by pipeline breakers (hash-join
	// builds, merge-join sorts, nested-loop materializations) within one
	// execution attempt — a memory guardrail against runaway intermediates.
	MaxMatRows int64
	// MaxReplans hard-caps re-optimizations per query. Unlike
	// Policy.MaxReopts, which gracefully suppresses further triggers, a
	// query exceeding MaxReplans fails with a *exec.ResourceError — a
	// backstop for policies configured without a suppression bound.
	MaxReplans int
}

// Result is the outcome and time decomposition of one query execution.
type Result struct {
	Count     int
	PlanTime  time.Duration // T_P: plan enumeration excluding inference
	InferTime time.Duration // T_I: initial model inference
	ReoptTime time.Duration // T_R: re-planning + refinement inference
	ExecTime  time.Duration // T_E: executor wall time
	Reopts    int
	TimedOut  bool
	FinalPlan *plan.Node
	// ExecWork is the total executor work units consumed across all
	// execution attempts — a deterministic, load-insensitive proxy for
	// execution cost (wall times above vary with machine load).
	ExecWork int64
	// EstimateCalls counts initial-optimization estimator invocations.
	EstimateCalls int
	// Trace is the structured execution trace (per-operator stats per
	// attempt, re-optimization events, phase times); nil unless Config.Obs
	// was set.
	Trace *obs.QueryTrace
}

// Total returns the end-to-end time T_end.
func (r Result) Total() time.Duration {
	return r.PlanTime + r.InferTime + r.ReoptTime + r.ExecTime
}

// Engine executes queries against one database.
type Engine struct {
	DB *storage.Database
}

// New returns an engine over db.
func New(db *storage.Database) *Engine { return &Engine{DB: db} }

// Execute runs the query end to end without a deadline; it is
// ExecuteContext with a background context.
func (e *Engine) Execute(q *query.Query, cfg Config) (Result, error) {
	return e.ExecuteContext(context.Background(), q, cfg)
}

// ExecuteContext runs the query end to end under ctx: a deadline or caller
// cancellation unwinds the executor cooperatively (checked in every scan
// and join inner loop), aborts re-planning, releases any materialized
// intermediates, and returns the context's error for this query only.
func (e *Engine) ExecuteContext(ctx context.Context, q *query.Query, cfg Config) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	var qt *obs.QueryTrace
	if cfg.Obs != nil {
		qt = cfg.Obs.NewQueryTrace(q.Fingerprint(), cfg.Estimator.Name())
	}
	res, err := e.execute(ctx, q, cfg, qt)
	if qt != nil && err == nil {
		finishTrace(q, cfg.Obs, qt, &res)
	}
	return res, err
}

// testHookController, when non-nil, observes the re-optimization controller
// the engine creates for a query; tests use it to assert that failure paths
// release materialized intermediates.
var testHookController func(*reopt.Controller)

// execute is ExecuteContext's body, with the optional query trace threaded
// through the optimizer, the executor contexts, and the re-optimization
// controller.
func (e *Engine) execute(ctx context.Context, q *query.Query, cfg Config, qt *obs.QueryTrace) (Result, error) {
	var res Result
	if cfg.Policy.QErrThreshold == 0 {
		cfg.Policy = reopt.DefaultPolicy()
	}

	// Initial optimization: wall time minus time inside the estimator is
	// T_P; estimator time is T_I.
	timed := cardest.NewTimed(cfg.Estimator)
	opt := optimizer.New(e.DB, timed)
	opt.CE = cfg.Obs.CE().Recorder(cfg.Estimator.Name())
	start := time.Now()
	p, stats, err := opt.Plan(q)
	if err != nil {
		return res, err
	}
	res.PlanTime = time.Since(start) - timed.Time
	res.InferTime = timed.Time
	res.EstimateCalls = stats.EstimateCalls
	if err := ctx.Err(); err != nil {
		return res, err
	}

	var ctrl exec.Controller = exec.NopController{}
	var rctrl *reopt.Controller
	if cfg.Refiner != nil || cfg.OverlayReopt {
		rctrl = reopt.NewController(cfg.Policy)
		rctrl.Trace = qt
		rctrl.Suppress = cfg.ReoptSuppress
		ctrl = rctrl
		if testHookController != nil {
			testHookController(rctrl)
		}
	}
	// fail releases any materialized intermediates before failing the query,
	// so buffered rows never outlive the query that materialized them.
	fail := func(err error) (Result, error) {
		if rctrl != nil {
			rctrl.Release()
		}
		return res, err
	}

	for {
		if rctrl != nil {
			rctrl.SetPlan(p)
		}
		ectx := &exec.Ctx{
			DB: e.DB, Q: q, Controller: ctrl, Budget: cfg.Budget, Trace: qt.NewRound(),
			Context: ctx, MaxMatRows: cfg.Limits.MaxMatRows, Wrap: cfg.ExecWrap,
			ExecWorkers: cfg.ExecWorkers,
			Metrics:     cfg.Obs.Registry(), RawScan: cfg.RawScan,
		}
		execStart := time.Now()
		var count int
		if cfg.ScalarExec {
			count, err = exec.Run(ectx, p)
		} else {
			count, err = exec.RunBatch(ectx, p)
		}
		res.ExecTime += time.Since(execStart)
		res.ExecWork += ectx.Work()
		switch {
		case err == nil:
			res.Count = count
			res.FinalPlan = p
			return res, nil
		case errors.Is(err, exec.ErrBudget):
			res.TimedOut = true
			res.FinalPlan = p
			return res, nil
		default:
			var sig *exec.ReoptSignal
			if !errors.As(err, &sig) || rctrl == nil {
				return fail(err)
			}
			// The controller already counted this trigger, so Reopts is the
			// replan about to run; beyond the hard cap the query fails.
			if lim := cfg.Limits.MaxReplans; lim > 0 && rctrl.Reopts > lim {
				return fail(&exec.ResourceError{
					Resource: "replans", Limit: int64(lim), Used: int64(rctrl.Reopts),
				})
			}
			// Re-optimization: refine estimates with LPCE-R using the
			// executed sub-plans, then re-plan from the materialized
			// intermediates. Both the refinement inference and the plan
			// search count toward T_R (paper Eq. 8).
			rctrl.ClearTrigger()
			reoptStart := time.Now()
			prev := p
			p, err = e.replan(q, cfg, rctrl)
			res.ReoptTime += time.Since(reoptStart)
			if err == nil {
				err = ctx.Err() // a cancellation that landed mid-replan
			}
			if err != nil {
				return fail(err)
			}
			qt.AttachPlanDiff(planDiff(prev, p))
			res.Reopts = rctrl.Reopts
		}
	}
}

// planDiff summarises how re-planning changed the plan: how many of the new
// plan's operators (identified by physical operator + covered subset) did
// not exist in the old one.
func planDiff(old, cur *plan.Node) string {
	if old == nil || cur == nil {
		return ""
	}
	type opKey struct {
		op   plan.PhysOp
		mask query.BitSet
	}
	before := make(map[opKey]bool)
	old.Walk(func(n *plan.Node) { before[opKey{n.Op, n.Tables}] = true })
	changed, total := 0, 0
	cur.Walk(func(n *plan.Node) {
		total++
		if !before[opKey{n.Op, n.Tables}] {
			changed++
		}
	})
	if changed == 0 {
		return "plan unchanged"
	}
	return fmt.Sprintf("%d/%d operators changed", changed, total)
}

// finishTrace stamps the finished query's outcome on its trace, joins the
// observed true cardinalities into the CE evaluation, bumps the engine
// metrics, and publishes the trace.
func finishTrace(q *query.Query, o *obs.Observer, qt *obs.QueryTrace, res *Result) {
	qt.PlanTime = res.PlanTime
	qt.InferTime = res.InferTime
	qt.ReoptTime = res.ReoptTime
	qt.ExecTime = res.ExecTime
	qt.Count = res.Count
	qt.TimedOut = res.TimedOut
	qt.ExecWork = res.ExecWork

	// Every completed operator yields an exact cardinality for its subset —
	// the trace is the CE evaluation's source of true labels.
	ce := o.CE()
	fp := q.Fingerprint()
	for _, rd := range qt.Rounds {
		for _, op := range rd.Ops {
			if op.ActualRows >= 0 {
				ce.RecordTrue(fp, op.Mask, op.ActualRows)
			}
		}
	}

	m := o.Registry()
	m.Counter("engine.queries").Inc()
	if res.TimedOut {
		m.Counter("engine.timeouts").Inc()
	}
	m.Counter("engine.reopts").Add(int64(res.Reopts))
	m.Counter("engine.estimate_calls").Add(int64(res.EstimateCalls))
	m.Histogram("engine.plan_seconds").Observe(res.PlanTime.Seconds())
	m.Histogram("engine.infer_seconds").Observe(res.InferTime.Seconds())
	m.Histogram("engine.reopt_seconds").Observe(res.ReoptTime.Seconds())
	m.Histogram("engine.exec_seconds").Observe(res.ExecTime.Seconds())
	m.Histogram("engine.total_seconds").Observe(res.Total().Seconds())

	o.Observe(qt)
	res.Trace = qt
}

// replan refines the remaining estimates and searches a new plan that may
// resume from materialized intermediates or restart from scratch. With a
// refiner, LPCE-R provides the refined estimates; otherwise the exact
// cardinalities of the executed sub-plans are overlaid on the base
// estimator.
func (e *Engine) replan(q *query.Query, cfg Config, rctrl *reopt.Controller) (*plan.Node, error) {
	var refined cardest.Estimator
	if cfg.Refiner != nil {
		var execs []core.ExecutedSub
		for _, ex := range rctrl.ExecutedSubs() {
			execs = append(execs, core.ExecutedSub{Node: ex.Node, Card: ex.Card})
		}
		refined = cfg.Refiner.Estimator(q, execs)
	} else {
		execs := rctrl.ExecutedSubs()
		estimates := make(map[query.BitSet]float64, len(execs))
		for _, ex := range execs {
			estimates[ex.Mask] = cfg.Estimator.EstimateSubset(q, ex.Mask)
		}
		refined = reopt.NewOverlay(cfg.Estimator, execs, estimates)
	}
	opt := optimizer.New(e.DB, refined)
	// Replan estimates are recorded under the refined estimator's own name,
	// so the CE report separates initial estimates from overlay/refinement
	// ones.
	opt.CE = cfg.Obs.CE().Recorder(refined.Name())
	p, _, err := opt.PlanWithMaterialized(q, rctrl.Materialized())
	return p, err
}
