// Package engine drives end-to-end query execution, mirroring the paper's
// decomposition (Eq. 7/8): T_end = T_P (plan search) + T_I (model
// inference) + T_R (re-optimization) + T_E (execution). It wires together
// the optimizer, the pipelined executor with checkpoints, the
// re-optimization controller, and — when a refiner is supplied — LPCE-R's
// progressive estimate refinement.
package engine

import (
	"errors"
	"time"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/optimizer"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/reopt"
	"github.com/lpce-db/lpce/internal/storage"
)

// Config selects the estimator stack for a run.
type Config struct {
	// Estimator provides initial cardinalities (histogram, LPCE-I, or any
	// baseline).
	Estimator cardest.Estimator
	// Refiner enables LPCE-R re-optimization when non-nil.
	Refiner *core.Refiner
	// OverlayReopt enables re-optimization WITHOUT a learned refiner: on a
	// checkpoint trigger the remaining estimates come from the base
	// estimator overlaid with the exact cardinalities (and error ratios) of
	// the executed sub-plans — the paper's §8 suggestion of applying
	// progressive estimation to other estimator families. Ignored when
	// Refiner is set.
	OverlayReopt bool
	// Policy is the re-optimization trigger rule (DefaultPolicy when zero).
	Policy reopt.Policy
	// Budget bounds executor work units per query; exceeded queries are
	// reported as timeouts. Zero means unlimited.
	Budget int64
}

// Result is the outcome and time decomposition of one query execution.
type Result struct {
	Count     int
	PlanTime  time.Duration // T_P: plan enumeration excluding inference
	InferTime time.Duration // T_I: initial model inference
	ReoptTime time.Duration // T_R: re-planning + refinement inference
	ExecTime  time.Duration // T_E: executor wall time
	Reopts    int
	TimedOut  bool
	FinalPlan *plan.Node
	// EstimateCalls counts initial-optimization estimator invocations.
	EstimateCalls int
}

// Total returns the end-to-end time T_end.
func (r Result) Total() time.Duration {
	return r.PlanTime + r.InferTime + r.ReoptTime + r.ExecTime
}

// Engine executes queries against one database.
type Engine struct {
	DB *storage.Database
}

// New returns an engine over db.
func New(db *storage.Database) *Engine { return &Engine{DB: db} }

// Execute runs the query end to end.
func (e *Engine) Execute(q *query.Query, cfg Config) (Result, error) {
	var res Result
	if cfg.Policy.QErrThreshold == 0 {
		cfg.Policy = reopt.DefaultPolicy()
	}

	// Initial optimization: wall time minus time inside the estimator is
	// T_P; estimator time is T_I.
	timed := cardest.NewTimed(cfg.Estimator)
	opt := optimizer.New(e.DB, timed)
	start := time.Now()
	p, stats, err := opt.Plan(q)
	if err != nil {
		return res, err
	}
	res.PlanTime = time.Since(start) - timed.Time
	res.InferTime = timed.Time
	res.EstimateCalls = stats.EstimateCalls

	var ctrl exec.Controller = exec.NopController{}
	var rctrl *reopt.Controller
	if cfg.Refiner != nil || cfg.OverlayReopt {
		rctrl = reopt.NewController(cfg.Policy)
		ctrl = rctrl
	}

	for {
		if rctrl != nil {
			rctrl.SetPlan(p)
		}
		ctx := &exec.Ctx{DB: e.DB, Q: q, Controller: ctrl, Budget: cfg.Budget}
		execStart := time.Now()
		count, err := exec.Run(ctx, p)
		res.ExecTime += time.Since(execStart)
		switch {
		case err == nil:
			res.Count = count
			res.FinalPlan = p
			return res, nil
		case errors.Is(err, exec.ErrBudget):
			res.TimedOut = true
			res.FinalPlan = p
			return res, nil
		default:
			var sig *exec.ReoptSignal
			if !errors.As(err, &sig) || rctrl == nil {
				return res, err
			}
			// Re-optimization: refine estimates with LPCE-R using the
			// executed sub-plans, then re-plan from the materialized
			// intermediates. Both the refinement inference and the plan
			// search count toward T_R (paper Eq. 8).
			rctrl.ClearTrigger()
			reoptStart := time.Now()
			p, err = e.replan(q, cfg, rctrl)
			res.ReoptTime += time.Since(reoptStart)
			if err != nil {
				return res, err
			}
			res.Reopts = rctrl.Reopts
		}
	}
}

// replan refines the remaining estimates and searches a new plan that may
// resume from materialized intermediates or restart from scratch. With a
// refiner, LPCE-R provides the refined estimates; otherwise the exact
// cardinalities of the executed sub-plans are overlaid on the base
// estimator.
func (e *Engine) replan(q *query.Query, cfg Config, rctrl *reopt.Controller) (*plan.Node, error) {
	var refined cardest.Estimator
	if cfg.Refiner != nil {
		var execs []core.ExecutedSub
		for _, ex := range rctrl.ExecutedSubs() {
			execs = append(execs, core.ExecutedSub{Node: ex.Node, Card: ex.Card})
		}
		refined = cfg.Refiner.Estimator(q, execs)
	} else {
		execs := rctrl.ExecutedSubs()
		estimates := make(map[query.BitSet]float64, len(execs))
		for _, ex := range execs {
			estimates[ex.Mask] = cfg.Estimator.EstimateSubset(q, ex.Mask)
		}
		refined = reopt.NewOverlay(cfg.Estimator, execs, estimates)
	}
	opt := optimizer.New(e.DB, refined)
	p, _, err := opt.PlanWithMaterialized(q, rctrl.Materialized())
	return p, err
}
