package engine

import (
	"sync"
	"testing"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/encode"
	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/reopt"
	"github.com/lpce-db/lpce/internal/storage"
	"github.com/lpce-db/lpce/internal/testutil"
	"github.com/lpce-db/lpce/internal/workload"
)

var (
	fixOnce    sync.Once
	fixDB      *storage.Database
	fixRefiner *core.Refiner
	fixLPCEI   *core.LPCEI
)

func fixture(t *testing.T) (*storage.Database, *core.LPCEI, *core.Refiner) {
	t.Helper()
	fixOnce.Do(func() {
		fixDB = testutil.TinyDB()
		enc := encode.NewEncoder(fixDB.Schema)
		g := workload.NewGenerator(fixDB, 111)
		queries := g.QueriesRange(50, 2, 5)
		samples, _ := core.CollectSamples(fixDB, histogram.NewEstimator(fixDB), queries, 50_000_000)
		logMax := core.MaxLogCard(samples)
		base := core.TrainConfig{Hidden: 16, OutWidth: 16, Epochs: 5, Batch: 16, LR: 3e-3, NodeWise: true, Seed: 1}
		fixLPCEI = core.TrainLPCEI(core.LPCEIConfig{
			Teacher: base,
			Student: core.TrainConfig{Hidden: 8, OutWidth: 8, Epochs: 3, Batch: 16, LR: 3e-3, NodeWise: true, Seed: 1},
		}, enc, samples, logMax)
		fixRefiner = core.TrainRefiner(core.RefinerConfig{
			Kind: core.RefinerFull, Base: base, AdjustEpochs: 3, PrefixesPerSample: 2,
		}, enc, fixDB, samples, logMax)
	})
	return fixDB, fixLPCEI, fixRefiner
}

func trueCount(t *testing.T, db *storage.Database, q *query.Query) int {
	t.Helper()
	want, err := exec.RunCollect(&exec.Ctx{DB: db, Q: q}, exec.CanonicalPlan(q, q.AllTablesMask()))
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func TestExecuteWithHistogram(t *testing.T) {
	db, _, _ := fixture(t)
	e := New(db)
	g := workload.NewGenerator(db, 112)
	for i := 0; i < 8; i++ {
		q := g.Query(2 + i%3)
		res, err := e.Execute(q, Config{Estimator: histogram.NewEstimator(db)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != trueCount(t, db, q) {
			t.Fatalf("wrong count for %s", q.SQL())
		}
		if res.Reopts != 0 {
			t.Fatal("no refiner configured, reopts must be 0")
		}
		if res.PlanTime < 0 || res.InferTime < 0 || res.ExecTime <= 0 {
			t.Fatalf("bad time decomposition: %+v", res)
		}
		if res.Total() != res.PlanTime+res.InferTime+res.ReoptTime+res.ExecTime {
			t.Fatal("Total() mismatch")
		}
		if res.EstimateCalls == 0 {
			t.Fatal("no estimate calls recorded")
		}
	}
}

// TestExecWorkersMatchesSerial threads the Config.ExecWorkers knob end to
// end: counts, executor work, and reopt behaviour must be identical to the
// serial engine for every worker count, including with a refiner-driven
// controller attached.
func TestExecWorkersMatchesSerial(t *testing.T) {
	t.Cleanup(exec.SetMorselSize(64)) // tiny fixtures must split into many morsels
	t.Cleanup(exec.SetExchangeWorkerCap(64))
	db, _, _ := fixture(t)
	e := New(db)
	g := workload.NewGenerator(db, 117)
	for i := 0; i < 6; i++ {
		q := g.Query(2 + i%3)
		base := Config{Estimator: histogram.NewEstimator(db)}
		sres, err := e.Execute(q, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 2, 4, 8} {
			cfg := base
			cfg.ExecWorkers = w
			pres, err := e.Execute(q, cfg)
			if err != nil {
				t.Fatalf("%s w=%d: %v", q.SQL(), w, err)
			}
			if pres.Count != sres.Count {
				t.Fatalf("%s w=%d: count %d, serial %d", q.SQL(), w, pres.Count, sres.Count)
			}
			if pres.ExecWork != sres.ExecWork {
				t.Fatalf("%s w=%d: work %d, serial %d", q.SQL(), w, pres.ExecWork, sres.ExecWork)
			}
			if pres.Reopts != sres.Reopts {
				t.Fatalf("%s w=%d: reopts %d, serial %d", q.SQL(), w, pres.Reopts, sres.Reopts)
			}
		}
	}
}

func TestExecuteWithLPCEI(t *testing.T) {
	db, lpcei, _ := fixture(t)
	e := New(db)
	est := &core.TreeEstimator{Label: "lpce-i", Model: lpcei.Model, Enc: lpcei.Enc}
	g := workload.NewGenerator(db, 113)
	for i := 0; i < 5; i++ {
		q := g.Query(3)
		res, err := e.Execute(q, Config{Estimator: est})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != trueCount(t, db, q) {
			t.Fatalf("wrong count for %s", q.SQL())
		}
		if res.InferTime <= 0 {
			t.Fatal("learned estimator should record inference time")
		}
	}
}

func TestReoptimizationPreservesCorrectness(t *testing.T) {
	// Force constant mis-estimates so checkpoints trigger, and verify the
	// re-optimized execution still returns the exact count.
	db, _, refiner := fixture(t)
	e := New(db)
	g := workload.NewGenerator(db, 114)
	triggered := 0
	for i := 0; i < 10; i++ {
		q := g.Query(3 + i%2)
		res, err := e.Execute(q, Config{
			Estimator: cardest.Fixed{Value: 2, Label: "bad"},
			Refiner:   refiner,
			Policy:    reopt.Policy{QErrThreshold: 10, MaxReopts: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != trueCount(t, db, q) {
			t.Fatalf("re-optimized count wrong for %s: got %d", q.SQL(), res.Count)
		}
		if res.Reopts > 0 {
			triggered++
			if res.ReoptTime <= 0 {
				t.Fatal("reopts happened but ReoptTime is zero")
			}
		}
	}
	if triggered == 0 {
		t.Fatal("constant estimate of 2 should have triggered at least one re-optimization")
	}
}

func TestReoptRespectsMaxLimit(t *testing.T) {
	db, _, refiner := fixture(t)
	e := New(db)
	g := workload.NewGenerator(db, 115)
	for i := 0; i < 6; i++ {
		q := g.Query(4)
		res, err := e.Execute(q, Config{
			Estimator: cardest.Fixed{Value: 2, Label: "bad"},
			Refiner:   refiner,
			Policy:    reopt.Policy{QErrThreshold: 5, MaxReopts: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Reopts > 2 {
			t.Fatalf("reopts = %d exceeds limit", res.Reopts)
		}
	}
}

func TestBudgetTimeout(t *testing.T) {
	db, _, _ := fixture(t)
	e := New(db)
	g := workload.NewGenerator(db, 116)
	q := g.Query(4)
	res, err := e.Execute(q, Config{Estimator: histogram.NewEstimator(db), Budget: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("tiny budget should time out")
	}
}

func TestDefaultPolicyApplied(t *testing.T) {
	db, _, refiner := fixture(t)
	e := New(db)
	g := workload.NewGenerator(db, 117)
	q := g.Query(2)
	// zero policy should be replaced by the paper defaults, not trigger on
	// every materialization (threshold 0 would always fire)
	res, err := e.Execute(q, Config{Estimator: histogram.NewEstimator(db), Refiner: refiner})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != trueCount(t, db, q) {
		t.Fatal("wrong count")
	}
}

func TestLPCERReducesBadPlanWork(t *testing.T) {
	// The headline claim at micro scale: with a terrible initial estimator,
	// enabling LPCE-R re-optimization should not increase total executor
	// work across a workload, and should usually decrease it. Compared in
	// deterministic executor work units (Result.ExecWork) rather than wall
	// time, which varies with machine load.
	db, _, refiner := fixture(t)
	e := New(db)
	g := workload.NewGenerator(db, 118)

	var withoutWork, withWork int64
	for i := 0; i < 8; i++ {
		q := g.Query(4)
		bad := cardest.Fixed{Value: 2, Label: "bad"}
		r1, err := e.Execute(q, Config{Estimator: bad})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := e.Execute(q, Config{
			Estimator: bad,
			Refiner:   refiner,
			Policy:    reopt.Policy{QErrThreshold: 10, MaxReopts: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Count != r2.Count {
			t.Fatalf("counts diverge: %d vs %d", r1.Count, r2.Count)
		}
		if r1.ExecWork <= 0 || r2.ExecWork <= 0 {
			t.Fatalf("work accounting missing: %d vs %d", r1.ExecWork, r2.ExecWork)
		}
		withoutWork += r1.ExecWork
		withWork += r2.ExecWork
	}
	// Allow some slack: re-optimized executions replay materialized
	// intermediates, so per-query work can exceed the uninterrupted run's;
	// the guard is against catastrophic regressions.
	if withWork > withoutWork*3 {
		t.Fatalf("re-optimization tripled total work: %d vs %d units", withWork, withoutWork)
	}
}
