package engine

import (
	"context"
	"errors"
	"testing"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/reopt"
	"github.com/lpce-db/lpce/internal/testutil"
	"github.com/lpce-db/lpce/internal/workload"
)

// cancelOnReplan cancels the query's context from inside the first
// re-planning pass: the engine only calls the base estimator again after a
// trigger incremented the controller's Reopts, so any call observed with
// Reopts > 0 is mid-replan.
type cancelOnReplan struct {
	cardest.Estimator
	ctrl   **reopt.Controller
	cancel context.CancelFunc
}

func (c *cancelOnReplan) EstimateSubset(q *query.Query, mask query.BitSet) float64 {
	if ctrl := *c.ctrl; ctrl != nil && ctrl.Reopts > 0 {
		c.cancel()
	}
	return c.Estimator.EstimateSubset(q, mask)
}

func TestCancelDuringReplanReleasesMaterialized(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 301)
	e := New(db)

	var captured *reopt.Controller
	testHookController = func(c *reopt.Controller) { captured = c }
	defer func() { testHookController = nil }()

	// A Fixed(1) estimator underestimates every join, so the first
	// materialization checkpoint triggers re-optimization.
	done := false
	for i := 0; i < 20 && !done; i++ {
		captured = nil
		q := g.Query(3)
		ctx, cancel := context.WithCancel(context.Background())
		est := &cancelOnReplan{
			Estimator: cardest.Fixed{Value: 1, Label: "always-one"},
			ctrl:      &captured,
			cancel:    cancel,
		}
		_, err := e.ExecuteContext(ctx, q, Config{
			Estimator:    est,
			OverlayReopt: true,
			Policy:       reopt.Policy{QErrThreshold: 1.1, MaxReopts: 3},
		})
		cancel()
		if captured == nil {
			t.Fatal("controller hook never fired")
		}
		if captured.Reopts == 0 {
			continue // this query never triggered; try the next one
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("query %d: err = %v, want context.Canceled", i, err)
		}
		// The failure path must have dropped every buffered intermediate.
		if n := len(captured.Materialized()); n != 0 {
			t.Fatalf("query %d: %d materialized intermediates survived cancellation", i, n)
		}
		if captured.ExecutedSubs() != nil || captured.Triggered != nil {
			t.Fatalf("query %d: controller still holds execution state", i)
		}
		done = true
	}
	if !done {
		t.Fatal("no query triggered re-optimization; test exercised nothing")
	}
}

func TestMaxReplansFailsWithResourceError(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 307)
	e := New(db)
	cfg := Config{
		Estimator:    cardest.Fixed{Value: 1, Label: "always-one"},
		OverlayReopt: true,
		Policy:       reopt.Policy{QErrThreshold: 1.1, MaxReopts: 10},
		Limits:       Limits{MaxReplans: 1},
	}
	var hit bool
	for i := 0; i < 30 && !hit; i++ {
		_, err := e.Execute(g.Query(4), cfg)
		if err == nil {
			continue
		}
		var re *exec.ResourceError
		if !errors.As(err, &re) {
			t.Fatalf("query %d: %v, want *exec.ResourceError", i, err)
		}
		if re.Resource != "replans" || re.Limit != 1 || re.Used != 2 {
			t.Fatalf("query %d: unexpected resource error %+v", i, re)
		}
		hit = true
	}
	if !hit {
		t.Fatal("no query exceeded a 1-replan budget")
	}
}

func TestPreCancelledContextRejectedUpfront(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 311)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := New(db).ExecuteContext(ctx, g.Query(2), Config{
		Estimator: cardest.Fixed{Value: 1, Label: "always-one"},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
