package engine

import (
	"testing"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/reopt"
	"github.com/lpce-db/lpce/internal/workload"
)

// TestOverlayReoptCorrectness exercises the §8 extension: re-optimization
// without a learned refiner, using exact-cardinality overlays on the base
// estimator. Results must match the uninterrupted execution exactly.
func TestOverlayReoptCorrectness(t *testing.T) {
	db, _, _ := fixture(t)
	e := New(db)
	g := workload.NewGenerator(db, 141)
	triggered := 0
	for i := 0; i < 10; i++ {
		q := g.Query(3 + i%2)
		bad := cardest.Fixed{Value: 2, Label: "bad"}
		res, err := e.Execute(q, Config{
			Estimator:    bad,
			OverlayReopt: true,
			Policy:       reopt.Policy{QErrThreshold: 10, MaxReopts: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != trueCount(t, db, q) {
			t.Fatalf("overlay reopt changed the result for %s", q.SQL())
		}
		if res.Reopts > 0 {
			triggered++
		}
	}
	if triggered == 0 {
		t.Fatal("overlay re-optimization never triggered with constant estimates")
	}
}

// TestOverlayReoptWithHistogram runs the extension on the engine's own
// histogram estimator — "progressive estimation for traditional
// estimators".
func TestOverlayReoptWithHistogram(t *testing.T) {
	db, _, _ := fixture(t)
	e := New(db)
	g := workload.NewGenerator(db, 142)
	for i := 0; i < 5; i++ {
		q := g.Query(4)
		res, err := e.Execute(q, Config{
			Estimator:    histogram.NewEstimator(db),
			OverlayReopt: true,
			Policy:       reopt.Policy{QErrThreshold: 20, MaxReopts: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != trueCount(t, db, q) {
			t.Fatalf("histogram overlay reopt changed the result")
		}
	}
}

// TestCostAwarePolicyEndToEnd verifies the cost-aware trigger suppresses
// late re-optimizations without breaking correctness.
func TestCostAwarePolicyEndToEnd(t *testing.T) {
	db, _, refiner := fixture(t)
	e := New(db)
	g := workload.NewGenerator(db, 143)
	var plainReopts, costAwareReopts int
	for i := 0; i < 8; i++ {
		q := g.Query(4)
		bad := cardest.Fixed{Value: 2, Label: "bad"}
		r1, err := e.Execute(q, Config{
			Estimator: bad, Refiner: refiner,
			Policy: reopt.Policy{QErrThreshold: 10, MaxReopts: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := e.Execute(q, Config{
			Estimator: bad, Refiner: refiner,
			Policy: reopt.Policy{QErrThreshold: 10, MaxReopts: 3, MinRemainingCostFrac: 0.3},
		})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Count != r2.Count {
			t.Fatalf("cost-aware policy changed the result: %d vs %d", r1.Count, r2.Count)
		}
		plainReopts += r1.Reopts
		costAwareReopts += r2.Reopts
	}
	if costAwareReopts > plainReopts {
		t.Fatalf("cost-aware policy (%d reopts) should not trigger more than plain (%d)",
			costAwareReopts, plainReopts)
	}
}
