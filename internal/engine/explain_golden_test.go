package engine

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/obs"
	"github.com/lpce-db/lpce/internal/reopt"
	"github.com/lpce-db/lpce/internal/testutil"
	"github.com/lpce-db/lpce/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden files under testdata/")

// durRE matches Go duration renderings ("1.234ms", "12µs", "1m2.3s") so
// golden comparisons are stable across machines. Cardinalities, operator
// order, and annotations are compared exactly.
var durRE = regexp.MustCompile(`(\d+(\.\d+)?(ns|µs|ms|s|m|h))+`)

func normalizeDurations(s string) string {
	return durRE.ReplaceAllString(s, "<dur>")
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run Golden -update-golden): %v", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestExplainGolden pins the EXPLAIN rendering: operator tree, estimated
// cardinalities, estimator header.
func TestExplainGolden(t *testing.T) {
	db := testutil.TinyDB()
	e := New(db)
	q := workload.NewGenerator(db, 271).Query(3)
	out, err := e.Explain(q, histogram.NewEstimator(db))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "explain.golden", normalizeDurations(out))
}

// TestExplainAnalyzeGolden pins the instrumented EXPLAIN ANALYZE rendering:
// the phase decomposition line, the per-operator actual/est/time
// annotations, and the re-optimization event listing. Durations are
// normalized; every cardinality is exact and deterministic.
func TestExplainAnalyzeGolden(t *testing.T) {
	db := testutil.TinyDB()
	e := New(db)
	// Seed 263 produces a query whose first checkpoint q-error crosses the
	// threshold, so the golden pins a TRIGGERED event (with its plan diff)
	// as well as suppressed ones.
	q := workload.NewGenerator(db, 263).Query(3)
	cfg := Config{
		Estimator:    histogram.NewEstimator(db),
		OverlayReopt: true,
		// A low trigger threshold makes the tiny fixture exercise the
		// re-optimization path, so the golden pins event rendering too.
		Policy: reopt.Policy{QErrThreshold: 2, MaxReopts: 2},
		Obs:    obs.NewObserver(),
	}
	out, res, err := e.ExplainAnalyze(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("observability enabled but no trace on the result")
	}
	for _, frag := range []string{"actual=", "est=", "time="} {
		if !strings.Contains(out, frag) {
			t.Fatalf("annotated output missing %q:\n%s", frag, out)
		}
	}
	checkGolden(t, "explain_analyze.golden", normalizeDurations(out))
}
