// Package maintain implements the operational machinery around a deployed
// learned estimator that the paper discusses but defers (§3.2 "handling
// data updates", §7.3 "progressive training"): drift monitoring of live
// estimation quality, and statistics refresh after data updates.
//
// The intended loop is the paper's deployment suggestion: ship the model
// trained on a small sample, observe the q-errors of completed queries
// (their true cardinalities are free — the executor counts them anyway),
// and re-train when the observed error drifts away from the validation
// baseline.
package maintain

import (
	"sort"
	"sync"

	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/nn"
	"github.com/lpce-db/lpce/internal/storage"
)

// Monitor tracks the rolling estimation quality of a deployed estimator.
// It is safe for concurrent use.
type Monitor struct {
	mu sync.Mutex
	// Baseline is the validation median q-error at training time.
	baseline float64
	// Factor is how much worse than baseline the rolling median may get
	// before Drifted reports true.
	factor float64
	window []float64
	size   int
	next   int
	filled bool
}

// NewMonitor returns a monitor with the given validation baseline, drift
// factor (e.g. 4: alarm when live errors are 4x the training-time median)
// and rolling window size.
func NewMonitor(baselineMedianQ, factor float64, windowSize int) *Monitor {
	if windowSize < 1 {
		windowSize = 1
	}
	if factor <= 1 {
		factor = 4
	}
	if baselineMedianQ < 1 {
		baselineMedianQ = 1
	}
	return &Monitor{
		baseline: baselineMedianQ,
		factor:   factor,
		window:   make([]float64, windowSize),
		size:     windowSize,
	}
}

// Observe records one completed query's true and estimated root
// cardinality.
func (m *Monitor) Observe(trueCard, estCard float64) {
	q := nn.QError(trueCard, estCard)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.window[m.next] = q
	m.next = (m.next + 1) % m.size
	if m.next == 0 {
		m.filled = true
	}
}

// Observations reports how many samples the rolling window currently holds.
func (m *Monitor) Observations() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.filled {
		return m.size
	}
	return m.next
}

// MedianQ returns the rolling median q-error (1 when empty).
func (m *Monitor) MedianQ() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.medianLocked()
}

func (m *Monitor) medianLocked() float64 {
	n := m.next
	if m.filled {
		n = m.size
	}
	if n == 0 {
		return 1
	}
	s := append([]float64(nil), m.window[:n]...)
	sort.Float64s(s)
	return s[n/2]
}

// Drifted reports whether the rolling median exceeds factor x baseline. It
// stays false until the window has at least a quarter of its capacity, so
// a few unlucky queries right after deployment do not trip the alarm.
func (m *Monitor) Drifted() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.next
	if m.filled {
		n = m.size
	}
	if n*4 < m.size {
		return false
	}
	return m.medianLocked() > m.baseline*m.factor
}

// AppendRows is the DML entry point for tables that are already serving
// queries: it appends through storage.Table.MaintenanceAppend, which
// unseals the table and invalidates exactly the column segments the new
// rows dirty (scans fall back to the raw path until stats are refreshed).
// Callers must still externally synchronize against in-flight readers, and
// should follow a batch of appends with RefreshStats to re-seal the table,
// rebuild the dirtied segments, and re-ANALYZE.
func AppendRows(t *storage.Table, rows [][]int64) {
	t.MaintenanceAppend(rows)
}

// RefreshStats re-computes catalog column statistics and histogram
// statistics after data updates (the engine's ANALYZE), re-sealing every
// table and rebuilding the segments invalidated by DML since the last
// seal. Sealing fans out across the storage.SetBuildWorkers pool (set it
// from engine.Config.EffectiveBuildWorkers; the result is byte-equal to
// serial sealing for any worker count). Learned models are NOT retrained
// here — Monitor decides when that is worth the cost.
func RefreshStats(db *storage.Database) *histogram.Stats {
	for _, t := range db.Tables {
		if t != nil {
			t.FinishLoad()
		}
	}
	return histogram.Analyze(db)
}
