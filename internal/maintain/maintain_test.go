package maintain

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/datagen"
	"github.com/lpce-db/lpce/internal/encode"
	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/nn"
	"github.com/lpce-db/lpce/internal/storage"
	"github.com/lpce-db/lpce/internal/workload"
)

func TestMonitorBasics(t *testing.T) {
	m := NewMonitor(2, 4, 8)
	if m.Drifted() {
		t.Fatal("empty monitor should not report drift")
	}
	// accurate estimates: q ≈ 1
	for i := 0; i < 8; i++ {
		m.Observe(100, 105)
	}
	if m.Observations() != 8 {
		t.Fatalf("observations = %d", m.Observations())
	}
	if m.Drifted() {
		t.Fatalf("median %v within baseline, drift flagged", m.MedianQ())
	}
	// terrible estimates: q = 100 > 2*4
	for i := 0; i < 8; i++ {
		m.Observe(100, 10000)
	}
	if !m.Drifted() {
		t.Fatalf("median %v should trip drift", m.MedianQ())
	}
}

func TestMonitorWarmupGuard(t *testing.T) {
	m := NewMonitor(1, 4, 100)
	m.Observe(1, 1e6) // one catastrophic error
	if m.Drifted() {
		t.Fatal("a single observation must not trip the alarm")
	}
}

func TestMonitorRollingWindow(t *testing.T) {
	m := NewMonitor(1, 4, 4)
	for i := 0; i < 4; i++ {
		m.Observe(1, 1e6) // all bad
	}
	if !m.Drifted() {
		t.Fatal("all-bad window should drift")
	}
	for i := 0; i < 4; i++ {
		m.Observe(100, 100) // all good again — bad ones roll out
	}
	if m.Drifted() {
		t.Fatalf("window should have recovered, median %v", m.MedianQ())
	}
}

func TestMonitorConcurrentObserve(t *testing.T) {
	m := NewMonitor(2, 4, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				m.Observe(100, 100*(1+r.Float64()))
			}
		}(int64(g))
	}
	wg.Wait()
	if q := m.MedianQ(); q < 1 || q > 2 {
		t.Fatalf("median after concurrent writes = %v", q)
	}
}

func TestDefaultsClamped(t *testing.T) {
	m := NewMonitor(0, 0.5, 0)
	m.Observe(1, 1)
	if m.MedianQ() != 1 {
		t.Fatal("clamped monitor broken")
	}
}

// TestDataUpdateDriftAndRetrain is the full future-work loop: train on the
// original data, shift the data distribution with appends, observe drift
// through the monitor, refresh statistics and retrain, and verify the
// alarm clears.
func TestDataUpdateDriftAndRetrain(t *testing.T) {
	db := datagen.Generate(datagen.Config{Titles: 400, Seed: 9})
	enc := encode.NewEncoder(db.Schema)
	gen := workload.NewGenerator(db, 10)

	train := func(seed int64) (*core.TreeEstimator, float64) {
		samples, _ := core.CollectSamples(db, histogram.NewEstimator(db),
			gen.QueriesRange(60, 1, 3), 30_000_000)
		logMax := core.MaxLogCard(samples)
		m := core.TrainTreeModel(core.TrainConfig{
			Hidden: 16, OutWidth: 16, Epochs: 12, Batch: 16, LR: 3e-3, NodeWise: true, Seed: seed,
		}, enc, samples, logMax, nil)
		// validation baseline
		_, qs := core.EvalQError(m, enc, samples)
		var med float64 = 1
		if len(qs) > 0 {
			med = qs[len(qs)/2]
		}
		return &core.TreeEstimator{Label: "lpce-i", Model: m, Enc: enc}, med
	}
	est, baseline := train(1)
	monitor := NewMonitor(baseline, 4, 16)

	observe := func() {
		oracle := exec.NewTrueCardOracle(db)
		for i := 0; i < 16; i++ {
			q := gen.Query(2)
			truth := oracle.EstimateSubset(q, q.AllTablesMask())
			monitor.Observe(truth, est.EstimateSubset(q, q.AllTablesMask()))
		}
	}
	observe()
	preDriftMedian := monitor.MedianQ()

	// Shift the distribution hard: multiply cast_info five-fold with rows
	// pointing at a single previously-unpopular movie.
	ci := db.TableByName("cast_info")
	width := len(ci.Meta.Columns)
	var newRows [][]int64
	for i := 0; i < ci.NumRows()*4; i++ {
		row := make([]int64, width)
		row[0] = 3 // movie_id
		row[1] = int64(i % 50)
		row[2] = int64(i % 11)
		row[3] = int64(i % 100)
		newRows = append(newRows, row)
	}
	AppendRows(ci, newRows)
	RefreshStats(db)

	monitor2 := NewMonitor(baseline, 4, 16)
	oracle := exec.NewTrueCardOracle(db)
	var worst float64 = 1
	for i := 0; i < 16; i++ {
		q := gen.Query(2)
		truth := oracle.EstimateSubset(q, q.AllTablesMask())
		got := est.EstimateSubset(q, q.AllTablesMask())
		monitor2.Observe(truth, got)
		if qe := nn.QError(truth, got); qe > worst {
			worst = qe
		}
	}
	// the old model should now be measurably worse than before the shift
	if monitor2.MedianQ() < preDriftMedian {
		t.Logf("note: post-shift median %v not above pre-shift %v on this sample",
			monitor2.MedianQ(), preDriftMedian)
	}

	// retrain on fresh samples from the updated data: quality must recover
	// to the same order as the original baseline
	est2, baseline2 := train(2)
	monitor3 := NewMonitor(baseline2, 4, 16)
	for i := 0; i < 16; i++ {
		q := gen.Query(2)
		truth := oracle.EstimateSubset(q, q.AllTablesMask())
		monitor3.Observe(truth, est2.EstimateSubset(q, q.AllTablesMask()))
	}
	if monitor3.Drifted() {
		t.Fatalf("freshly retrained model already drifted: median %v vs baseline %v",
			monitor3.MedianQ(), baseline2)
	}
}

func TestAppendRowsInvalidatesIndexes(t *testing.T) {
	db := datagen.Generate(datagen.Config{Titles: 100, Seed: 11})
	ci := db.TableByName("cast_info")
	before := ci.HashIndex(0).Lookup(3)
	nBefore := len(before)
	row := make([]int64, len(ci.Meta.Columns))
	row[0] = 3
	AppendRows(ci, [][]int64{row})
	after := ci.HashIndex(0).Lookup(3)
	if len(after) != nBefore+1 {
		t.Fatalf("index lookup after append = %d rows, want %d", len(after), nBefore+1)
	}
	if got := ci.OrderedIndex(0).Range(3, 3); len(got) != nBefore+1 {
		t.Fatalf("ordered index after append = %d rows", len(got))
	}
}

func TestDirectAppendOnSealedTableRejected(t *testing.T) {
	db := datagen.Generate(datagen.Config{Titles: 50, Seed: 13})
	ci := db.TableByName("cast_info")
	if !ci.Sealed() {
		t.Fatal("generated table should be sealed after load")
	}
	row := make([]int64, len(ci.Meta.Columns))
	before := ci.NumRows()
	if err := ci.AppendRows([][]int64{row}); !errors.Is(err, storage.ErrSealed) {
		t.Fatalf("direct append on sealed table: err = %v, want ErrSealed", err)
	}
	if ci.NumRows() != before {
		t.Fatalf("rejected append mutated the table: %d -> %d rows", before, ci.NumRows())
	}
	// The maintenance path accepts the same rows, unseals, and a stats
	// refresh re-seals with segments covering the new tail.
	AppendRows(ci, [][]int64{row})
	if ci.Sealed() {
		t.Fatal("table still sealed after maintenance append")
	}
	if ci.Segments(0) != nil {
		t.Fatal("unsealed table should expose no segments")
	}
	RefreshStats(db)
	if !ci.Sealed() {
		t.Fatal("RefreshStats should re-seal the table")
	}
	segs := ci.Segments(0)
	total := 0
	for _, s := range segs {
		total += s.Rows()
	}
	if total != ci.NumRows() {
		t.Fatalf("segments cover %d rows, table has %d", total, ci.NumRows())
	}
}

func TestAppendRowsWidthMismatchPanics(t *testing.T) {
	db := datagen.Generate(datagen.Config{Titles: 50, Seed: 12})
	ci := db.TableByName("cast_info")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AppendRows(ci, [][]int64{{1, 2}})
}
