package cardest

import (
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/lpce-db/lpce/internal/obs"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
)

// Guard fault kinds, used in GuardEvent.Kind and the obs counter names.
const (
	FaultPanic   = "panic"   // inner estimator panicked; fallback value served
	FaultGarbage = "garbage" // NaN, ±Inf, or ≤0 estimate; fallback value served
	FaultClamp   = "clamp"   // estimate above the cross-product bound; clamped
	FaultLatency = "latency" // call exceeded the latency budget; value kept
)

// GuardConfig tunes a Guard. The zero value of every field selects a safe
// default, so Guard{} wiring only needs a Fallback.
type GuardConfig struct {
	// Fallback serves estimates while the breaker is open and substitutes
	// for unusable (panicked/garbage) answers. Deployments pass the
	// PostgreSQL-style histogram baseline; a nil Fallback defaults to a
	// Fixed estimator so the guard never dereferences nil mid-recovery.
	Fallback Estimator
	// Bound, when non-nil, caps each estimate: values above Bound(q, mask)
	// are clamped to it and counted as faults. CrossProductBound builds the
	// natural ceiling — no join result can exceed the cross product of its
	// base tables.
	Bound func(q *query.Query, mask query.BitSet) float64
	// LatencyBudget, when positive, marks calls whose inner latency exceeds
	// it as faults. The value is still returned (it is valid, just late);
	// repeated overruns trip the breaker onto the cheap fallback.
	LatencyBudget time.Duration
	// TripAfter is how many consecutive faults open the circuit breaker
	// (default 3).
	TripAfter int
	// Cooldown is how many calls the open breaker serves from the fallback
	// before letting a single probe through to the inner estimator (default
	// 64). A clean probe closes the breaker; a faulty one restarts the
	// cooldown.
	Cooldown int
	// ProbeInterval, when positive, adds a time-based half-open path to the
	// breaker: an open breaker admits a recovery probe once the interval has
	// elapsed since the trip (or the last failed probe) even if fewer than
	// Cooldown fallback calls have arrived. Without it a tripped guard on a
	// low-traffic path can stay on the fallback long after the inner
	// estimator's latency recovered — the cooldown is counted in calls, and
	// the calls may never come.
	ProbeInterval time.Duration
	// Registry, when non-nil, interns the guard's counters
	// (cardest.guard.*) so trips and recoveries surface in obs reports.
	Registry *obs.Registry
	// OnDegrade, when non-nil, receives one event per fault, breaker trip,
	// and recovery. It may be called concurrently.
	OnDegrade func(GuardEvent)
}

// GuardEvent is one degradation event: a recovered fault, a breaker trip,
// or a recovery back to the inner estimator.
type GuardEvent struct {
	// Kind is one of the Fault* constants, "breaker-open", or
	// "breaker-close".
	Kind string
	// Estimator is the guarded (inner) estimator's name.
	Estimator string
	// Detail narrates the event for logs.
	Detail string
}

// GuardStats is a snapshot of a guard's fault accounting.
type GuardStats struct {
	Panics        int64
	Garbage       int64
	Clamps        int64
	LatencyFaults int64
	Trips         int64
	Recoveries    int64
	FallbackCalls int64
	// Open reports whether the breaker is currently serving the fallback.
	Open bool
}

// Guard hardens an estimator for production use, following the TiCard
// deployability argument: a learned model may panic, emit garbage, or turn
// slow, and none of that may take the engine down. The guard
//
//   - recovers panics from the inner estimator and serves the fallback's
//     value for that call;
//   - clamps insane estimates — NaN, ±Inf, non-positive, or beyond the
//     cross-product bound;
//   - flags calls that exceed a per-call latency budget;
//   - trips a circuit breaker after TripAfter consecutive faults, degrading
//     every call to the fallback estimator until a cooldown-spaced probe of
//     the inner estimator succeeds again.
//
// Every fault, trip, and recovery bumps an obs counter and emits a
// GuardEvent. A Guard is safe for concurrent use and adds two short mutex
// sections per call; the inner estimator runs outside the lock.
//
// Note the Estimator determinism contract ("same value for the same (query,
// subset) pair") holds through a Guard only while the inner estimator is
// healthy: once faults occur, answers depend on breaker state and so on
// call order. Guarded runs trade bit-exact reproducibility for survival —
// result correctness is unaffected, since estimates only steer plan choice.
type Guard struct {
	inner Estimator
	cfg   GuardConfig

	mu        sync.Mutex
	faults    int       // consecutive fault count while closed
	open      bool      // breaker state
	cool      int       // fallback calls remaining before a probe
	probing   bool      // one probe in flight
	nextProbe time.Time // earliest time-based half-open probe (ProbeInterval)
	now       func() time.Time

	stats GuardStats

	cPanic, cGarbage, cClamp, cLatency  *obs.Counter
	cTrips, cRecoveries, cFallbackCalls *obs.Counter
}

// NewGuard wraps inner. See GuardConfig for the defaults applied.
func NewGuard(inner Estimator, cfg GuardConfig) *Guard {
	if cfg.Fallback == nil {
		cfg.Fallback = Fixed{Value: 1000, Label: "guard-default-fallback"}
	}
	if cfg.TripAfter <= 0 {
		cfg.TripAfter = 3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 64
	}
	g := &Guard{inner: inner, cfg: cfg, now: time.Now}
	if r := cfg.Registry; r != nil {
		g.cPanic = r.Counter("cardest.guard.panics")
		g.cGarbage = r.Counter("cardest.guard.garbage")
		g.cClamp = r.Counter("cardest.guard.clamps")
		g.cLatency = r.Counter("cardest.guard.latency_faults")
		g.cTrips = r.Counter("cardest.guard.breaker_trips")
		g.cRecoveries = r.Counter("cardest.guard.breaker_recoveries")
		g.cFallbackCalls = r.Counter("cardest.guard.fallback_calls")
	}
	return g
}

// Name implements Estimator; the guard is transparent in traces and CE
// reports.
func (g *Guard) Name() string { return g.inner.Name() }

// Stats snapshots the guard's fault accounting.
func (g *Guard) Stats() GuardStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.stats
	s.Open = g.open
	return s
}

// EstimateSubset implements Estimator with the full guardrail stack.
func (g *Guard) EstimateSubset(q *query.Query, mask query.BitSet) float64 {
	probe := false
	g.mu.Lock()
	if g.open {
		allow := !g.probing && g.cool <= 0
		if !allow && !g.probing && g.cfg.ProbeInterval > 0 && !g.now().Before(g.nextProbe) {
			// Half-open by wall clock: enough time has passed since the trip
			// (or the last failed probe) that the inner estimator deserves a
			// try, even though the call-counted cooldown has not elapsed.
			allow = true
		}
		if !allow {
			g.cool--
			g.stats.FallbackCalls++
			g.mu.Unlock()
			g.cFallbackCalls.Inc()
			return g.cfg.Fallback.EstimateSubset(q, mask)
		}
		g.probing = true
		probe = true
	}
	g.mu.Unlock()

	v, fault := g.call(q, mask)
	if fault == "" {
		switch {
		case math.IsNaN(v) || math.IsInf(v, 0) || v <= 0:
			fault = FaultGarbage
		case g.cfg.Bound != nil:
			if max := g.cfg.Bound(q, mask); max > 0 && v > max {
				fault = FaultClamp
				v = max
			}
		}
	}
	if fault == "" {
		g.onSuccess(probe)
		return v
	}
	g.onFault(fault, probe)
	switch fault {
	case FaultClamp, FaultLatency:
		return v // the value itself is usable
	default: // panic, garbage: no usable value from the inner estimator
		return g.cfg.Fallback.EstimateSubset(q, mask)
	}
}

// call invokes the inner estimator with panic recovery and latency timing.
func (g *Guard) call(q *query.Query, mask query.BitSet) (v float64, fault string) {
	defer func() {
		if r := recover(); r != nil {
			v, fault = math.NaN(), FaultPanic
		}
	}()
	start := time.Now()
	v = g.inner.EstimateSubset(q, mask)
	if b := g.cfg.LatencyBudget; b > 0 && time.Since(start) > b {
		fault = FaultLatency
	}
	return v, fault
}

// onSuccess resets the consecutive-fault count and, after a clean probe,
// closes the breaker.
func (g *Guard) onSuccess(probe bool) {
	closed := false
	g.mu.Lock()
	g.faults = 0
	if probe {
		g.probing = false
		g.open = false
		g.stats.Recoveries++
		closed = true
	}
	g.mu.Unlock()
	if closed {
		g.cRecoveries.Inc()
		g.emit("breaker-close", "probe succeeded; serving the inner estimator again")
	}
}

// onFault books one fault, restarts the cooldown after a failed probe, and
// trips the breaker once TripAfter consecutive faults accumulate.
func (g *Guard) onFault(kind string, probe bool) {
	tripped := false
	g.mu.Lock()
	switch kind {
	case FaultPanic:
		g.stats.Panics++
	case FaultGarbage:
		g.stats.Garbage++
	case FaultClamp:
		g.stats.Clamps++
	case FaultLatency:
		g.stats.LatencyFaults++
	}
	g.faults++
	switch {
	case probe:
		g.probing = false
		g.cool = g.cfg.Cooldown
		g.armProbeLocked()
	case !g.open && g.faults >= g.cfg.TripAfter:
		g.open = true
		g.cool = g.cfg.Cooldown
		g.stats.Trips++
		g.armProbeLocked()
		tripped = true
	}
	g.mu.Unlock()

	switch kind {
	case FaultPanic:
		g.cPanic.Inc()
	case FaultGarbage:
		g.cGarbage.Inc()
	case FaultClamp:
		g.cClamp.Inc()
	case FaultLatency:
		g.cLatency.Inc()
	}
	g.emit(kind, "recovered estimator fault")
	if tripped {
		g.cTrips.Inc()
		g.emit("breaker-open", fmt.Sprintf("%d consecutive faults; degrading to %s",
			g.cfg.TripAfter, g.cfg.Fallback.Name()))
	}
}

// armProbeLocked schedules the next time-based half-open probe. Called with
// the mutex held, after a trip or a failed probe.
func (g *Guard) armProbeLocked() {
	if g.cfg.ProbeInterval > 0 {
		g.nextProbe = g.now().Add(g.cfg.ProbeInterval)
	}
}

func (g *Guard) emit(kind, detail string) {
	if g.cfg.OnDegrade != nil {
		g.cfg.OnDegrade(GuardEvent{Kind: kind, Estimator: g.inner.Name(), Detail: detail})
	}
}

// NewFallbackChain builds a load-shedding estimator ladder out of guards:
// each rung is wrapped in a Guard whose fallback is the next (cheaper) rung,
// itself guarded, down to cfg.Fallback (or the default Fixed heuristic) at
// the bottom. NewFallbackChain(cfg, learned, histogram) therefore serves the
// learned model while it behaves, degrades to the histogram when the learned
// rung's breaker trips, and degrades again to the heuristic constant if the
// histogram itself misbehaves — queries keep completing with progressively
// cheaper plans instead of failing. Every rung shares cfg's breaker tuning
// and registry (the cardest.guard.* counters aggregate across rungs).
func NewFallbackChain(cfg GuardConfig, rungs ...Estimator) Estimator {
	bottom := cfg.Fallback
	if bottom == nil {
		bottom = Fixed{Value: 1000, Label: "chain-heuristic"}
	}
	var out Estimator = bottom
	for i := len(rungs) - 1; i >= 0; i-- {
		c := cfg
		c.Fallback = out
		out = NewGuard(rungs[i], c)
	}
	return out
}

// CrossProductBound returns a Bound function for GuardConfig that caps each
// subset's estimate at the cross product of its base-table sizes — the
// tightest data-independent upper bound any equi-join result can reach.
func CrossProductBound(db *storage.Database) func(*query.Query, query.BitSet) float64 {
	return func(q *query.Query, mask query.BitSet) float64 {
		prod := 1.0
		for _, i := range mask.Indices() {
			if i >= len(q.Tables) {
				return 0 // foreign mask; no bound
			}
			prod *= float64(db.Table(q.Tables[i]).NumRows())
			if prod > 1e30 {
				return 1e30 // saturate before float overflow
			}
		}
		return prod
	}
}
