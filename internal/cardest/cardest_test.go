package cardest

import (
	"testing"
	"time"

	"github.com/lpce-db/lpce/internal/catalog"
	"github.com/lpce-db/lpce/internal/query"
)

func testQuery() *query.Query {
	s := catalog.NewSchema()
	a := s.AddTable("a", catalog.PK("id"))
	b := s.AddTable("b", catalog.FK("a_id", a.Column("id")))
	return query.New([]*catalog.Table{a, b},
		[]query.Join{{Left: b.Column("a_id"), Right: a.Column("id")}}, nil)
}

func TestFixed(t *testing.T) {
	f := Fixed{Value: 42}
	if f.Name() != "fixed" {
		t.Fatalf("name = %s", f.Name())
	}
	if got := f.EstimateSubset(testQuery(), 1); got != 42 {
		t.Fatalf("estimate = %v", got)
	}
	if (Fixed{Value: 1, Label: "custom"}).Name() != "custom" {
		t.Fatal("custom label ignored")
	}
}

func TestFuncEstimator(t *testing.T) {
	q := testQuery()
	calls := 0
	f := FuncEstimator{Label: "fn", Fn: func(qq *query.Query, m query.BitSet) float64 {
		calls++
		if qq != q {
			t.Fatal("wrong query passed through")
		}
		return float64(m.Count()) * 10
	}}
	if f.Name() != "fn" {
		t.Fatal("name")
	}
	if got := f.EstimateSubset(q, query.NewBitSet().Set(0).Set(1)); got != 20 {
		t.Fatalf("estimate = %v", got)
	}
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestTimedAccumulates(t *testing.T) {
	slow := FuncEstimator{Label: "slow", Fn: func(*query.Query, query.BitSet) float64 {
		time.Sleep(time.Millisecond)
		return 7
	}}
	timed := NewTimed(slow)
	if timed.Name() != "slow" {
		t.Fatal("name should pass through")
	}
	q := testQuery()
	for i := 0; i < 3; i++ {
		if got := timed.EstimateSubset(q, 1); got != 7 {
			t.Fatalf("estimate = %v", got)
		}
	}
	if timed.Calls != 3 {
		t.Fatalf("calls = %d", timed.Calls)
	}
	if timed.Time < 3*time.Millisecond {
		t.Fatalf("time = %v, want >= 3ms", timed.Time)
	}
	timed.Reset()
	if timed.Calls != 0 || timed.Time != 0 {
		t.Fatal("reset failed")
	}
}
