package cardest

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/lpce-db/lpce/internal/obs"
	"github.com/lpce-db/lpce/internal/query"
)

// flaky is a scriptable estimator: each call pops the next behaviour.
type flaky struct {
	mu     sync.Mutex
	script []func() float64
	calls  int
}

func (f *flaky) Name() string { return "flaky" }

func (f *flaky) EstimateSubset(*query.Query, query.BitSet) float64 {
	f.mu.Lock()
	fn := f.script[f.calls%len(f.script)]
	f.calls++
	f.mu.Unlock()
	return fn()
}

func ok(v float64) func() float64  { return func() float64 { return v } }
func boom() float64                { panic("injected") }
func est(v float64) func() float64 { return ok(v) }

func TestGuardRecoversPanicsAndServesFallback(t *testing.T) {
	inner := &flaky{script: []func() float64{func() float64 { return boom() }}}
	g := NewGuard(inner, GuardConfig{Fallback: Fixed{Value: 77, Label: "fb"}, TripAfter: 100})
	if v := g.EstimateSubset(nil, 0); v != 77 {
		t.Fatalf("want fallback 77, got %v", v)
	}
	if s := g.Stats(); s.Panics != 1 || s.Open {
		t.Fatalf("want 1 panic, closed breaker; got %+v", s)
	}
}

func TestGuardClampsGarbage(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -4} {
		inner := &flaky{script: []func() float64{est(bad)}}
		g := NewGuard(inner, GuardConfig{Fallback: Fixed{Value: 9, Label: "fb"}, TripAfter: 100})
		if v := g.EstimateSubset(nil, 0); v != 9 {
			t.Fatalf("garbage %v: want fallback 9, got %v", bad, v)
		}
		if s := g.Stats(); s.Garbage != 1 {
			t.Fatalf("garbage %v: stats %+v", bad, s)
		}
	}
}

func TestGuardClampsAboveBound(t *testing.T) {
	inner := &flaky{script: []func() float64{est(1e12)}}
	g := NewGuard(inner, GuardConfig{
		Fallback:  Fixed{Value: 9},
		Bound:     func(*query.Query, query.BitSet) float64 { return 500 },
		TripAfter: 100,
	})
	if v := g.EstimateSubset(nil, 0); v != 500 {
		t.Fatalf("want clamp to 500, got %v", v)
	}
	if s := g.Stats(); s.Clamps != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestGuardLatencyBudget(t *testing.T) {
	inner := &flaky{script: []func() float64{func() float64 {
		time.Sleep(3 * time.Millisecond)
		return 42
	}}}
	g := NewGuard(inner, GuardConfig{Fallback: Fixed{Value: 9}, LatencyBudget: time.Microsecond, TripAfter: 100})
	if v := g.EstimateSubset(nil, 0); v != 42 {
		t.Fatalf("late but valid value must be kept, got %v", v)
	}
	if s := g.Stats(); s.LatencyFaults != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestGuardBreakerTripAndRecovery(t *testing.T) {
	// Script: three panics (trip), then healthy 5s forever.
	inner := &flaky{script: []func() float64{
		func() float64 { return boom() },
		func() float64 { return boom() },
		func() float64 { return boom() },
		est(5), est(5), est(5), est(5), est(5), est(5), est(5), est(5),
	}}
	var events []GuardEvent
	var mu sync.Mutex
	reg := obs.NewRegistry()
	g := NewGuard(inner, GuardConfig{
		Fallback:  Fixed{Value: 11, Label: "fb"},
		TripAfter: 3,
		Cooldown:  2,
		Registry:  reg,
		OnDegrade: func(e GuardEvent) { mu.Lock(); events = append(events, e); mu.Unlock() },
	})

	for i := 0; i < 3; i++ {
		if v := g.EstimateSubset(nil, 0); v != 11 {
			t.Fatalf("call %d: want fallback 11, got %v", i, v)
		}
	}
	s := g.Stats()
	if !s.Open || s.Trips != 1 || s.Panics != 3 {
		t.Fatalf("breaker should be open after 3 faults: %+v", s)
	}

	// Two cooldown calls from the fallback, then the probe hits the healthy
	// inner estimator and closes the breaker.
	for i := 0; i < 2; i++ {
		if v := g.EstimateSubset(nil, 0); v != 11 {
			t.Fatalf("cooldown call %d: want 11, got %v", i, v)
		}
	}
	if v := g.EstimateSubset(nil, 0); v != 5 {
		t.Fatalf("probe should reach inner estimator, got %v", v)
	}
	s = g.Stats()
	if s.Open || s.Recoveries != 1 {
		t.Fatalf("breaker should have closed: %+v", s)
	}
	if v := g.EstimateSubset(nil, 0); v != 5 {
		t.Fatalf("closed breaker must serve inner, got %v", v)
	}

	if got := reg.Counter("cardest.guard.breaker_trips").Value(); got != 1 {
		t.Fatalf("trip counter = %d", got)
	}
	if got := reg.Counter("cardest.guard.breaker_recoveries").Value(); got != 1 {
		t.Fatalf("recovery counter = %d", got)
	}
	if got := reg.Counter("cardest.guard.fallback_calls").Value(); got == 0 {
		t.Fatal("fallback calls not counted")
	}

	mu.Lock()
	defer mu.Unlock()
	var kinds []string
	for _, e := range events {
		kinds = append(kinds, e.Kind)
	}
	want := []string{"panic", "panic", "panic", "breaker-open", "breaker-close"}
	if len(kinds) != len(want) {
		t.Fatalf("events %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("events %v, want %v", kinds, want)
		}
	}
}

func TestGuardConcurrentHammer(t *testing.T) {
	// Mixed healthy/faulty script under heavy concurrency: the guard must
	// never panic outward and always return a finite positive value.
	inner := &flaky{script: []func() float64{
		est(3), func() float64 { return boom() }, est(7), est(math.NaN()), est(2),
	}}
	g := NewGuard(inner, GuardConfig{Fallback: Fixed{Value: 13}, TripAfter: 2, Cooldown: 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v := g.EstimateSubset(nil, 0)
				if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
					panic("guard let a garbage value through")
				}
			}
		}()
	}
	wg.Wait()
}

// slowThenFast is an estimator whose latency is switchable: slow until
// recover() is called, instant after — the "learned model under load"
// scenario for the half-open probe.
type slowThenFast struct {
	slow  atomic.Bool
	delay time.Duration
	calls atomic.Int64
}

func (s *slowThenFast) Name() string { return "slow-then-fast" }

func (s *slowThenFast) EstimateSubset(*query.Query, query.BitSet) float64 {
	s.calls.Add(1)
	if s.slow.Load() {
		time.Sleep(s.delay)
	}
	return 42
}

// TestGuardHalfOpenProbeRecoversByTime is the regression test for the
// breaker staying on the fallback forever: with a call-counted Cooldown that
// never elapses, ProbeInterval must still let a wall-clock-spaced probe
// re-admit the inner estimator once its latency budget recovers.
func TestGuardHalfOpenProbeRecoversByTime(t *testing.T) {
	inner := &slowThenFast{delay: 2 * time.Millisecond}
	inner.slow.Store(true)
	g := NewGuard(inner, GuardConfig{
		Fallback:      Fixed{Value: 9, Label: "fb"},
		LatencyBudget: 100 * time.Microsecond,
		TripAfter:     1,
		Cooldown:      1 << 30, // the call-counted path alone would keep the breaker open ~forever
		ProbeInterval: time.Minute,
	})
	now := time.Unix(1000, 0)
	g.now = func() time.Time { return now }

	// First call overruns the latency budget and trips the breaker (the
	// late value itself is still served).
	if v := g.EstimateSubset(nil, 0); v != 42 {
		t.Fatalf("late value must be kept, got %v", v)
	}
	if s := g.Stats(); !s.Open || s.LatencyFaults != 1 {
		t.Fatalf("breaker should be open on latency fault: %+v", s)
	}

	// While open and before the interval, everything is fallback: the inner
	// estimator is not called again.
	for i := 0; i < 10; i++ {
		if v := g.EstimateSubset(nil, 0); v != 9 {
			t.Fatalf("open breaker call %d: want fallback 9, got %v", i, v)
		}
	}
	if c := inner.calls.Load(); c != 1 {
		t.Fatalf("inner called %d times while breaker open", c)
	}

	// The latency recovers, the interval elapses: the next call is a probe,
	// it succeeds, and the breaker closes.
	inner.slow.Store(false)
	now = now.Add(2 * time.Minute)
	if v := g.EstimateSubset(nil, 0); v != 42 {
		t.Fatalf("probe should reach the recovered inner estimator, got %v", v)
	}
	if s := g.Stats(); s.Open || s.Recoveries != 1 {
		t.Fatalf("breaker should have closed after the probe: %+v", s)
	}
	if v := g.EstimateSubset(nil, 0); v != 42 {
		t.Fatalf("closed breaker must serve inner, got %v", v)
	}
}

// TestGuardHalfOpenFailedProbeRearmsInterval: a probe that still overruns
// the budget re-arms the interval instead of closing the breaker.
func TestGuardHalfOpenFailedProbeRearmsInterval(t *testing.T) {
	inner := &slowThenFast{delay: 2 * time.Millisecond}
	inner.slow.Store(true)
	g := NewGuard(inner, GuardConfig{
		Fallback:      Fixed{Value: 9, Label: "fb"},
		LatencyBudget: 100 * time.Microsecond,
		TripAfter:     1,
		Cooldown:      1 << 30,
		ProbeInterval: time.Minute,
	})
	now := time.Unix(2000, 0)
	g.now = func() time.Time { return now }

	g.EstimateSubset(nil, 0) // trip
	now = now.Add(2 * time.Minute)
	if v := g.EstimateSubset(nil, 0); v != 42 {
		t.Fatalf("probe keeps the late value, got %v", v)
	}
	if s := g.Stats(); !s.Open || s.Recoveries != 0 {
		t.Fatalf("failed probe must not close the breaker: %+v", s)
	}
	// Immediately after the failed probe the interval is re-armed.
	if v := g.EstimateSubset(nil, 0); v != 9 {
		t.Fatalf("want fallback right after failed probe, got %v", v)
	}
	if c := inner.calls.Load(); c != 2 {
		t.Fatalf("inner calls = %d, want 2", c)
	}
}

// TestFallbackChainDegradesRungByRung: the ladder serves the top rung while
// healthy, the next rung when the top breaker trips, and the heuristic when
// every rung misbehaves.
func TestFallbackChainDegradesRungByRung(t *testing.T) {
	top := &flaky{script: []func() float64{func() float64 { return boom() }}}
	mid := &flaky{script: []func() float64{est(7)}}
	chain := NewFallbackChain(GuardConfig{TripAfter: 2, Cooldown: 1 << 30}, top, mid)
	if chain.Name() != "flaky" {
		t.Fatalf("chain name = %q", chain.Name())
	}
	// Every call recovers the top rung's panic into the mid rung's value;
	// after TripAfter faults the top breaker is open and the top rung is no
	// longer called at all.
	for i := 0; i < 6; i++ {
		if v := chain.EstimateSubset(nil, 0); v != 7 {
			t.Fatalf("call %d: want mid rung 7, got %v", i, v)
		}
	}
	if top.calls != 2 {
		t.Fatalf("top rung called %d times, want 2 (tripped after)", top.calls)
	}

	// A chain of nothing but a panicking rung bottoms out at the heuristic.
	bad := &flaky{script: []func() float64{func() float64 { return boom() }}}
	all := NewFallbackChain(GuardConfig{TripAfter: 1, Cooldown: 1 << 30}, bad)
	if v := all.EstimateSubset(nil, 0); v != 1000 {
		t.Fatalf("want default heuristic 1000, got %v", v)
	}
}
