package cardest

import (
	"math"
	"sync"
	"testing"
	"time"

	"github.com/lpce-db/lpce/internal/obs"
	"github.com/lpce-db/lpce/internal/query"
)

// flaky is a scriptable estimator: each call pops the next behaviour.
type flaky struct {
	mu     sync.Mutex
	script []func() float64
	calls  int
}

func (f *flaky) Name() string { return "flaky" }

func (f *flaky) EstimateSubset(*query.Query, query.BitSet) float64 {
	f.mu.Lock()
	fn := f.script[f.calls%len(f.script)]
	f.calls++
	f.mu.Unlock()
	return fn()
}

func ok(v float64) func() float64  { return func() float64 { return v } }
func boom() float64                { panic("injected") }
func est(v float64) func() float64 { return ok(v) }

func TestGuardRecoversPanicsAndServesFallback(t *testing.T) {
	inner := &flaky{script: []func() float64{func() float64 { return boom() }}}
	g := NewGuard(inner, GuardConfig{Fallback: Fixed{Value: 77, Label: "fb"}, TripAfter: 100})
	if v := g.EstimateSubset(nil, 0); v != 77 {
		t.Fatalf("want fallback 77, got %v", v)
	}
	if s := g.Stats(); s.Panics != 1 || s.Open {
		t.Fatalf("want 1 panic, closed breaker; got %+v", s)
	}
}

func TestGuardClampsGarbage(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -4} {
		inner := &flaky{script: []func() float64{est(bad)}}
		g := NewGuard(inner, GuardConfig{Fallback: Fixed{Value: 9, Label: "fb"}, TripAfter: 100})
		if v := g.EstimateSubset(nil, 0); v != 9 {
			t.Fatalf("garbage %v: want fallback 9, got %v", bad, v)
		}
		if s := g.Stats(); s.Garbage != 1 {
			t.Fatalf("garbage %v: stats %+v", bad, s)
		}
	}
}

func TestGuardClampsAboveBound(t *testing.T) {
	inner := &flaky{script: []func() float64{est(1e12)}}
	g := NewGuard(inner, GuardConfig{
		Fallback:  Fixed{Value: 9},
		Bound:     func(*query.Query, query.BitSet) float64 { return 500 },
		TripAfter: 100,
	})
	if v := g.EstimateSubset(nil, 0); v != 500 {
		t.Fatalf("want clamp to 500, got %v", v)
	}
	if s := g.Stats(); s.Clamps != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestGuardLatencyBudget(t *testing.T) {
	inner := &flaky{script: []func() float64{func() float64 {
		time.Sleep(3 * time.Millisecond)
		return 42
	}}}
	g := NewGuard(inner, GuardConfig{Fallback: Fixed{Value: 9}, LatencyBudget: time.Microsecond, TripAfter: 100})
	if v := g.EstimateSubset(nil, 0); v != 42 {
		t.Fatalf("late but valid value must be kept, got %v", v)
	}
	if s := g.Stats(); s.LatencyFaults != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestGuardBreakerTripAndRecovery(t *testing.T) {
	// Script: three panics (trip), then healthy 5s forever.
	inner := &flaky{script: []func() float64{
		func() float64 { return boom() },
		func() float64 { return boom() },
		func() float64 { return boom() },
		est(5), est(5), est(5), est(5), est(5), est(5), est(5), est(5),
	}}
	var events []GuardEvent
	var mu sync.Mutex
	reg := obs.NewRegistry()
	g := NewGuard(inner, GuardConfig{
		Fallback:  Fixed{Value: 11, Label: "fb"},
		TripAfter: 3,
		Cooldown:  2,
		Registry:  reg,
		OnDegrade: func(e GuardEvent) { mu.Lock(); events = append(events, e); mu.Unlock() },
	})

	for i := 0; i < 3; i++ {
		if v := g.EstimateSubset(nil, 0); v != 11 {
			t.Fatalf("call %d: want fallback 11, got %v", i, v)
		}
	}
	s := g.Stats()
	if !s.Open || s.Trips != 1 || s.Panics != 3 {
		t.Fatalf("breaker should be open after 3 faults: %+v", s)
	}

	// Two cooldown calls from the fallback, then the probe hits the healthy
	// inner estimator and closes the breaker.
	for i := 0; i < 2; i++ {
		if v := g.EstimateSubset(nil, 0); v != 11 {
			t.Fatalf("cooldown call %d: want 11, got %v", i, v)
		}
	}
	if v := g.EstimateSubset(nil, 0); v != 5 {
		t.Fatalf("probe should reach inner estimator, got %v", v)
	}
	s = g.Stats()
	if s.Open || s.Recoveries != 1 {
		t.Fatalf("breaker should have closed: %+v", s)
	}
	if v := g.EstimateSubset(nil, 0); v != 5 {
		t.Fatalf("closed breaker must serve inner, got %v", v)
	}

	if got := reg.Counter("cardest.guard.breaker_trips").Value(); got != 1 {
		t.Fatalf("trip counter = %d", got)
	}
	if got := reg.Counter("cardest.guard.breaker_recoveries").Value(); got != 1 {
		t.Fatalf("recovery counter = %d", got)
	}
	if got := reg.Counter("cardest.guard.fallback_calls").Value(); got == 0 {
		t.Fatal("fallback calls not counted")
	}

	mu.Lock()
	defer mu.Unlock()
	var kinds []string
	for _, e := range events {
		kinds = append(kinds, e.Kind)
	}
	want := []string{"panic", "panic", "panic", "breaker-open", "breaker-close"}
	if len(kinds) != len(want) {
		t.Fatalf("events %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("events %v, want %v", kinds, want)
		}
	}
}

func TestGuardConcurrentHammer(t *testing.T) {
	// Mixed healthy/faulty script under heavy concurrency: the guard must
	// never panic outward and always return a finite positive value.
	inner := &flaky{script: []func() float64{
		est(3), func() float64 { return boom() }, est(7), est(math.NaN()), est(2),
	}}
	g := NewGuard(inner, GuardConfig{Fallback: Fixed{Value: 13}, TripAfter: 2, Cooldown: 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v := g.EstimateSubset(nil, 0)
				if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
					panic("guard let a garbage value through")
				}
			}
		}()
	}
	wg.Wait()
}
