package cardest

import (
	"sync"

	"github.com/lpce-db/lpce/internal/obs"
	"github.com/lpce-db/lpce/internal/query"
)

// cacheShards is the fixed shard count of the estimate cache. Sharding
// keeps lock contention negligible when many workers consult the cache at
// once: keys are spread by hash, so two concurrent estimates rarely touch
// the same mutex.
const cacheShards = 64

type cacheKey struct {
	fp   uint64
	mask query.BitSet
}

type cacheShard struct {
	mu sync.RWMutex
	m  map[cacheKey]float64
	// order is the shard's keys in insertion order, maintained only when the
	// cache is bounded; the oldest insertion is evicted first.
	order []cacheKey
}

// Cache is a thread-safe sharded read-through cardinality-estimate cache
// keyed by query fingerprint + subset mask. Wrapping an estimator in a
// Cache makes repeated estimates of the same (query, subset) pair — from
// re-optimizations of one query or from many concurrent workers running
// the same workload — cost one map lookup instead of a model inference.
//
// A cache miss computes the inner estimate outside any lock, so a slow
// inner estimator never blocks readers of other keys; two workers racing
// on the same cold key may both compute it, which is harmless because
// every estimator in the repository is deterministic per (query, subset).
//
// A bounded cache (NewCacheBounded) evicts deterministically — per shard,
// oldest insertion first — once a shard reaches its capacity. Eviction
// never changes results: an evicted estimate is simply recomputed by the
// deterministic inner estimator on its next use, so bounded and unbounded
// runs stay byte-identical. Long-running processes (the serving subsystem)
// must bound their caches or leak memory across millions of distinct query
// fingerprints.
type Cache struct {
	Inner  Estimator
	shards [cacheShards]cacheShard
	// shardCap bounds each shard's entry count; 0 means unbounded.
	shardCap int
	// hits and misses live on the obs metrics registry (standalone counters
	// when the cache was built without one), so every counter in the
	// repository is read through one API.
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

// NewCache wraps inner in an empty cache with standalone hit/miss counters.
func NewCache(inner Estimator) *Cache {
	return NewCacheWithMetrics(inner, nil)
}

// NewCacheWithMetrics wraps inner in an empty unbounded cache whose hit/miss
// counters are interned in reg as "cardest.cache.hits" /
// "cardest.cache.misses", so they appear in the registry's snapshot
// alongside every other metric. A nil registry falls back to standalone
// counters.
func NewCacheWithMetrics(inner Estimator, reg *obs.Registry) *Cache {
	return NewCacheBounded(inner, reg, 0)
}

// NewCacheBounded is NewCacheWithMetrics with a total entry capacity: the
// capacity is split evenly across the shards (rounded up, minimum one entry
// per shard), and a full shard evicts its oldest insertion before admitting
// a new key. Evictions are counted in reg as "cardest.cache.evictions".
// capacity <= 0 means unbounded.
func NewCacheBounded(inner Estimator, reg *obs.Registry, capacity int) *Cache {
	c := &Cache{Inner: inner}
	if capacity > 0 {
		c.shardCap = (capacity + cacheShards - 1) / cacheShards
	}
	if reg != nil {
		c.hits = reg.Counter("cardest.cache.hits")
		c.misses = reg.Counter("cardest.cache.misses")
		c.evictions = reg.Counter("cardest.cache.evictions")
	} else {
		c.hits = &obs.Counter{}
		c.misses = &obs.Counter{}
		c.evictions = &obs.Counter{}
	}
	for i := range c.shards {
		c.shards[i].m = make(map[cacheKey]float64)
	}
	return c
}

// Name implements Estimator.
func (c *Cache) Name() string { return c.Inner.Name() + "+cache" }

// EstimateSubset implements Estimator with read-through caching.
func (c *Cache) EstimateSubset(q *query.Query, mask query.BitSet) float64 {
	if q == nil {
		return c.Inner.EstimateSubset(q, mask)
	}
	k := cacheKey{fp: q.Fingerprint(), mask: mask}
	s := &c.shards[(k.fp^uint64(mask)*0x9e3779b97f4a7c15)%cacheShards]
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	if ok {
		c.hits.Inc()
		return v
	}
	v = c.Inner.EstimateSubset(q, mask)
	c.misses.Inc()
	s.mu.Lock()
	if _, exists := s.m[k]; !exists {
		if c.shardCap > 0 {
			for len(s.m) >= c.shardCap {
				oldest := s.order[0]
				s.order = s.order[1:]
				delete(s.m, oldest)
				c.evictions.Inc()
			}
			// Re-slicing leaves evicted keys pinned in the backing array;
			// compact once the dead prefix dominates.
			if cap(s.order) > 2*c.shardCap && len(s.order) <= c.shardCap {
				s.order = append(make([]cacheKey, 0, c.shardCap), s.order...)
			}
			s.order = append(s.order, k)
		}
		s.m[k] = v
	}
	s.mu.Unlock()
	return v
}

// Stats returns the accumulated hit and miss counters.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Value(), c.misses.Value()
}

// Evictions returns the number of entries evicted since creation or Reset.
func (c *Cache) Evictions() int64 { return c.evictions.Value() }

// Len returns the number of cached estimates.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Reset discards every cached estimate and zeroes the counters.
func (c *Cache) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = make(map[cacheKey]float64)
		s.order = nil
		s.mu.Unlock()
	}
	c.hits.Reset()
	c.misses.Reset()
	c.evictions.Reset()
}

var _ Estimator = (*Cache)(nil)

// Locked serializes every EstimateSubset call of an estimator behind one
// mutex. It is the blunt instrument for third-party estimators whose
// concurrency behaviour has not been audited; the in-repo estimators are
// all safe for concurrent reads and do not need it.
type Locked struct {
	mu    sync.Mutex
	inner Estimator
}

// NewLocked wraps inner.
func NewLocked(inner Estimator) *Locked { return &Locked{inner: inner} }

// Name implements Estimator.
func (l *Locked) Name() string { return l.inner.Name() }

// EstimateSubset implements Estimator under the mutex.
func (l *Locked) EstimateSubset(q *query.Query, mask query.BitSet) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.EstimateSubset(q, mask)
}

var _ Estimator = (*Locked)(nil)
