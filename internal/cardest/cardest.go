// Package cardest defines the estimator interface shared by every
// cardinality estimator in the repository — the histogram baseline, the
// query-driven learned models (MSCN, TLSTM, Flow-Loss, LPCE-I), the
// data-driven substitutes, and the LPCE-R refinement wrapper — plus the
// timing instrumentation the end-to-end experiments use to attribute model
// inference time (T_I in Eq. 7 of the paper).
package cardest

import (
	"time"

	"github.com/lpce-db/lpce/internal/query"
)

// Estimator estimates the result cardinality of joining a subset of a
// query's relations (with all applicable filter predicates pushed down).
// The optimizer calls it once per connected subset during plan enumeration,
// so a Join-eight query costs up to 2⁹−1 = 511 estimates.
//
// Implementations must be safe for concurrent EstimateSubset calls and must
// return the same value for the same (query, subset) pair regardless of
// call order — the concurrent workload runner shares one estimator across
// all workers and asserts parallel runs reproduce serial ones exactly.
// Wrap an unaudited estimator in Locked if it mutates internal state.
type Estimator interface {
	Name() string
	EstimateSubset(q *query.Query, mask query.BitSet) float64
}

// Timed wraps an estimator and accumulates the wall-clock time spent inside
// it. The engine reads Time as the query's model inference time T_I.
//
// Timed is deliberately NOT safe for concurrent use: it is per-query
// instrumentation, and the engine allocates a fresh Timed per execution.
// Concurrent workloads share the inner estimator, never the Timed wrapper.
type Timed struct {
	Inner Estimator
	Time  time.Duration
	Calls int
}

// NewTimed wraps inner.
func NewTimed(inner Estimator) *Timed { return &Timed{Inner: inner} }

// Name implements Estimator.
func (t *Timed) Name() string { return t.Inner.Name() }

// EstimateSubset implements Estimator, timing the inner call.
func (t *Timed) EstimateSubset(q *query.Query, mask query.BitSet) float64 {
	start := time.Now()
	v := t.Inner.EstimateSubset(q, mask)
	t.Time += time.Since(start)
	t.Calls++
	return v
}

// Reset clears the accumulated time between queries.
func (t *Timed) Reset() {
	t.Time = 0
	t.Calls = 0
}

// Fixed returns a constant for every subset; used in tests to force the
// optimizer into known plans.
type Fixed struct {
	Value float64
	Label string
}

// Name implements Estimator.
func (f Fixed) Name() string {
	if f.Label != "" {
		return f.Label
	}
	return "fixed"
}

// EstimateSubset implements Estimator.
func (f Fixed) EstimateSubset(*query.Query, query.BitSet) float64 { return f.Value }

// FuncEstimator adapts a closure; used by tests and by the re-optimization
// controller to overlay exact cardinalities of executed sub-plans.
type FuncEstimator struct {
	Label string
	Fn    func(q *query.Query, mask query.BitSet) float64
}

// Name implements Estimator.
func (f FuncEstimator) Name() string { return f.Label }

// EstimateSubset implements Estimator.
func (f FuncEstimator) EstimateSubset(q *query.Query, mask query.BitSet) float64 {
	return f.Fn(q, mask)
}
