package cardest

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/lpce-db/lpce/internal/catalog"
	"github.com/lpce-db/lpce/internal/query"
)

func cacheFixtureQueries() []*query.Query {
	s := catalog.NewSchema()
	a := s.AddTable("a", catalog.PK("id"), catalog.Attr("x"))
	b := s.AddTable("b", catalog.FK("a_id", a.Column("id")))
	q1 := query.New([]*catalog.Table{a, b},
		[]query.Join{{Left: b.Column("a_id"), Right: a.Column("id")}}, nil)
	q2 := query.New([]*catalog.Table{a, b},
		[]query.Join{{Left: b.Column("a_id"), Right: a.Column("id")}},
		[]query.Predicate{{Col: a.Column("x"), Op: query.OpGT, Operand: 3}})
	return []*query.Query{q1, q2}
}

func TestCacheReadThrough(t *testing.T) {
	var calls atomic.Int64
	inner := FuncEstimator{Label: "counting", Fn: func(q *query.Query, m query.BitSet) float64 {
		calls.Add(1)
		return float64(q.Fingerprint()%1000) + float64(m)
	}}
	c := NewCache(inner)
	if c.Name() != "counting+cache" {
		t.Fatalf("name = %s", c.Name())
	}
	qs := cacheFixtureQueries()
	m := qs[0].AllTablesMask()

	first := c.EstimateSubset(qs[0], m)
	if got := c.EstimateSubset(qs[0], m); got != first {
		t.Fatalf("cached value changed: %v then %v", first, got)
	}
	if calls.Load() != 1 {
		t.Fatalf("inner called %d times, want 1", calls.Load())
	}
	// distinct queries have distinct fingerprints, so no false sharing
	if c.EstimateSubset(qs[1], m); calls.Load() != 2 {
		t.Fatalf("second query should miss, calls = %d", calls.Load())
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 2 {
		t.Fatalf("stats = %d/%d, want 1 hit, 2 misses", hits, misses)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	c.Reset()
	if hits, misses := c.Stats(); hits != 0 || misses != 0 || c.Len() != 0 {
		t.Fatalf("reset left hits=%d misses=%d len=%d", hits, misses, c.Len())
	}
}

func TestCacheNilQueryPassthrough(t *testing.T) {
	var calls atomic.Int64
	inner := FuncEstimator{Label: "n", Fn: func(*query.Query, query.BitSet) float64 {
		calls.Add(1)
		return 7
	}}
	c := NewCache(inner)
	c.EstimateSubset(nil, 3)
	c.EstimateSubset(nil, 3)
	if calls.Load() != 2 {
		t.Fatalf("nil queries must bypass the cache, calls = %d", calls.Load())
	}
	if c.Len() != 0 {
		t.Fatal("nil query polluted the cache")
	}
}

func TestCacheConcurrent(t *testing.T) {
	inner := FuncEstimator{Label: "f", Fn: func(q *query.Query, m query.BitSet) float64 {
		return float64(m) * 2
	}}
	c := NewCache(inner)
	qs := cacheFixtureQueries()
	var wg sync.WaitGroup
	bad := atomic.Bool{}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				q := qs[i%len(qs)]
				m := query.BitSet(1 + i%3)
				if c.EstimateSubset(q, m) != float64(m)*2 {
					bad.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if bad.Load() {
		t.Fatal("concurrent cached estimate diverged")
	}
	hits, misses := c.Stats()
	if hits+misses != 8*500 {
		t.Fatalf("counters lost updates: %d + %d != 4000", hits, misses)
	}
}

func TestCacheBoundedEvicts(t *testing.T) {
	var calls atomic.Int64
	inner := FuncEstimator{Label: "b", Fn: func(q *query.Query, m query.BitSet) float64 {
		calls.Add(1)
		return float64(q.Fingerprint()%997) + float64(m)
	}}
	const capacity = 64 // one entry per shard
	c := NewCacheBounded(inner, nil, capacity)
	qs := cacheFixtureQueries()

	// Insert far more distinct (query, mask) keys than the capacity admits.
	const keys = 1000
	for i := 0; i < keys; i++ {
		c.EstimateSubset(qs[i%len(qs)], query.BitSet(1+i/len(qs)))
	}
	if c.Len() > capacity {
		t.Fatalf("bounded cache holds %d entries, cap %d", c.Len(), capacity)
	}
	if c.Evictions() == 0 {
		t.Fatal("no evictions despite overflowing the capacity")
	}
	if got := c.Evictions() + int64(c.Len()); got != keys {
		t.Fatalf("evictions (%d) + live (%d) = %d, want %d inserts",
			c.Evictions(), c.Len(), got, keys)
	}

	// Evicted keys are recomputed to the same deterministic value: the
	// bounded cache must agree with an unbounded one on every estimate.
	u := NewCache(inner)
	for i := 0; i < keys; i++ {
		q, m := qs[i%len(qs)], query.BitSet(1+i/len(qs))
		if bv, uv := c.EstimateSubset(q, m), u.EstimateSubset(q, m); bv != uv {
			t.Fatalf("key %d: bounded %v != unbounded %v", i, bv, uv)
		}
	}

	c.Reset()
	if c.Len() != 0 || c.Evictions() != 0 {
		t.Fatalf("reset left len=%d evictions=%d", c.Len(), c.Evictions())
	}
}

func TestCacheBoundedDeterministicEviction(t *testing.T) {
	// The same insertion sequence must leave two bounded caches in the same
	// state: identical live-key sets and eviction counts (FIFO per shard is
	// a pure function of the insertion order).
	inner := FuncEstimator{Label: "d", Fn: func(q *query.Query, m query.BitSet) float64 {
		return float64(q.Fingerprint()^uint64(m)) / 3
	}}
	qs := cacheFixtureQueries()
	run := func() (*Cache, int64) {
		c := NewCacheBounded(inner, nil, 128)
		for i := 0; i < 600; i++ {
			c.EstimateSubset(qs[i%len(qs)], query.BitSet(1+i/len(qs)))
		}
		return c, c.Evictions()
	}
	c1, ev1 := run()
	c2, ev2 := run()
	if ev1 != ev2 || c1.Len() != c2.Len() {
		t.Fatalf("eviction diverged across identical runs: %d/%d entries, %d/%d evictions",
			c1.Len(), c2.Len(), ev1, ev2)
	}
	// Replay: the same keys must hit/miss identically in both caches.
	h1, m1 := c1.Stats()
	h2, m2 := c2.Stats()
	if h1 != h2 || m1 != m2 {
		t.Fatalf("hit/miss diverged: %d/%d vs %d/%d", h1, m1, h2, m2)
	}
}

func TestCacheBoundedConcurrent(t *testing.T) {
	inner := FuncEstimator{Label: "c", Fn: func(q *query.Query, m query.BitSet) float64 {
		return float64(m) * 5
	}}
	c := NewCacheBounded(inner, nil, 32)
	qs := cacheFixtureQueries()
	var wg sync.WaitGroup
	bad := atomic.Bool{}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				q := qs[i%len(qs)]
				m := query.BitSet(1 + i%50)
				if c.EstimateSubset(q, m) != float64(m)*5 {
					bad.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if bad.Load() {
		t.Fatal("concurrent bounded cache returned a wrong value")
	}
	if c.Len() > 64 { // 32 requested -> 1 per shard, 64 shards ceiling
		t.Fatalf("bounded cache overflowed: %d entries", c.Len())
	}
}

func TestLockedSerializes(t *testing.T) {
	// a deliberately racy inner estimator: Locked must make it safe
	counter := 0
	inner := FuncEstimator{Label: "racy", Fn: func(*query.Query, query.BitSet) float64 {
		counter++
		return float64(counter)
	}}
	l := NewLocked(inner)
	if l.Name() != "racy" {
		t.Fatalf("name = %s", l.Name())
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.EstimateSubset(nil, 1)
			}
		}()
	}
	wg.Wait()
	if counter != 8*200 {
		t.Fatalf("lost updates through Locked: %d", counter)
	}
}
