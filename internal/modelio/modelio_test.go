package modelio

import (
	"bytes"
	"errors"
	"math"
	"sync"
	"testing"

	"github.com/lpce-db/lpce/internal/baselines"
	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/encode"
	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
	"github.com/lpce-db/lpce/internal/testutil"
	"github.com/lpce-db/lpce/internal/workload"
)

// Shared fixture: one tiny database with a trained model set, built once per
// test binary (training dominates the suite's runtime).
var (
	fixOnce    sync.Once
	fixDB      *storage.Database
	fixEnc     *encode.Encoder
	fixSamples []core.Sample
	fixSet     *Set
)

func fixture(t *testing.T) (*storage.Database, *encode.Encoder, *Set) {
	t.Helper()
	fixOnce.Do(func() {
		fixDB = testutil.TinyDB()
		fixEnc = encode.NewEncoder(fixDB.Schema)
		g := workload.NewGenerator(fixDB, 61)
		queries := g.QueriesRange(40, 2, 4)
		fixSamples, _ = core.CollectSamples(fixDB, histogram.NewEstimator(fixDB), queries, 50_000_000)
		logMax := core.MaxLogCard(fixSamples)
		base := core.TrainConfig{Hidden: 12, OutWidth: 16, Epochs: 2, Batch: 16, LR: 3e-3, NodeWise: true, Seed: 41}
		fixSet = &Set{
			LPCEI: core.TrainLPCEI(core.LPCEIConfig{
				Teacher: base,
				Student: core.TrainConfig{Hidden: 8, OutWidth: 8, Epochs: 2, Batch: 16, LR: 3e-3, NodeWise: true, Seed: 41},
			}, fixEnc, fixSamples, logMax),
			Refiner: core.TrainRefiner(core.RefinerConfig{
				Kind: core.RefinerFull, Base: base, AdjustEpochs: 2, PrefixesPerSample: 2,
			}, fixEnc, fixDB, fixSamples, logMax),
			TLSTM:    baselines.TrainTLSTM(base, fixEnc, fixSamples, logMax).Model,
			FlowLoss: baselines.TrainFlowLoss(base, fixEnc, fixSamples, logMax).Model,
			MSCN:     baselines.TrainMSCN(baselines.MSCNConfig{Hidden: 16, Epochs: 2, Batch: 32, LR: 3e-3, Seed: 41}, fixDB.Schema, fixSamples, logMax),
		}
	})
	if len(fixSamples) < 20 {
		t.Fatalf("only %d samples", len(fixSamples))
	}
	return fixDB, fixEnc, fixSet
}

// estimates evaluates an estimator over every connected subset of a few
// fresh queries, as a behavioral signature for round-trip comparison.
func estimates(t *testing.T, db *storage.Database, est interface {
	EstimateSubset(*query.Query, query.BitSet) float64
}) []float64 {
	t.Helper()
	g := workload.NewGenerator(db, 62)
	var out []float64
	for i := 0; i < 4; i++ {
		q := g.Query(2 + i%2)
		for mask := query.BitSet(1); mask <= q.AllTablesMask(); mask++ {
			if q.Connected(mask) {
				out = append(out, est.EstimateSubset(q, mask))
			}
		}
	}
	return out
}

func TestSetRoundtripIdenticalEstimates(t *testing.T) {
	db, enc, set := fixture(t)
	dir := t.TempDir()
	if err := set.Save(dir, enc); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSet(dir, enc, db)
	if err != nil {
		t.Fatal(err)
	}

	pairs := []struct {
		name string
		a, b interface {
			EstimateSubset(*query.Query, query.BitSet) float64
		}
	}{
		{"lpce-i", &core.TreeEstimator{Label: "a", Model: set.LPCEI.Model, Enc: enc},
			&core.TreeEstimator{Label: "b", Model: loaded.LPCEI.Model, Enc: enc}},
		{"teacher", &core.TreeEstimator{Label: "a", Model: set.LPCEI.Teacher, Enc: enc},
			&core.TreeEstimator{Label: "b", Model: loaded.LPCEI.Teacher, Enc: enc}},
		{"tlstm", &core.TreeEstimator{Label: "a", Model: set.TLSTM, Enc: enc},
			&core.TreeEstimator{Label: "b", Model: loaded.TLSTM, Enc: enc}},
		{"flow-loss", &core.TreeEstimator{Label: "a", Model: set.FlowLoss, Enc: enc},
			&core.TreeEstimator{Label: "b", Model: loaded.FlowLoss, Enc: enc}},
		{"mscn", set.MSCN, loaded.MSCN},
	}
	for _, p := range pairs {
		ea, eb := estimates(t, db, p.a), estimates(t, db, p.b)
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("%s: loaded model diverges at %d: %v vs %v", p.name, i, ea[i], eb[i])
			}
		}
	}

	// The refiner round-trips through its own prefix-evaluation path.
	s := fixSamples[1]
	k := s.Plan.NumNodes() / 2
	if k < 1 {
		k = 1
	}
	qa, qb := set.Refiner.EvalPrefix(s, k), loaded.Refiner.EvalPrefix(s, k)
	if len(qa) != len(qb) {
		t.Fatal("refiner estimate count differs after load")
	}
	for i := range qa {
		if math.Abs(qa[i]-qb[i]) > 1e-12 {
			t.Fatalf("refiner diverges at %d: %v vs %v", i, qa[i], qb[i])
		}
	}
}

func saveLPCEIBytes(t *testing.T) ([]byte, *encode.Encoder) {
	t.Helper()
	_, enc, set := fixture(t)
	var b bytes.Buffer
	if err := SaveLPCEI(&b, set.LPCEI, enc); err != nil {
		t.Fatal(err)
	}
	return b.Bytes(), enc
}

func TestLoadRejectsBadMagic(t *testing.T) {
	raw, enc := saveLPCEIBytes(t)
	bad := append([]byte("NOTMODEL"), raw[8:]...)
	if _, err := LoadLPCEI(bytes.NewReader(bad), enc); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	if _, err := LoadLPCEI(bytes.NewReader(nil), enc); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("empty file: err = %v, want ErrBadMagic", err)
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	raw, enc := saveLPCEIBytes(t)
	bad := bytes.Clone(raw)
	bad[8] = 99 // little-endian version field follows the 8-byte magic
	if _, err := LoadLPCEI(bytes.NewReader(bad), enc); !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestLoadRejectsWrongKind(t *testing.T) {
	raw, enc := saveLPCEIBytes(t)
	if _, err := LoadTreeModel(bytes.NewReader(raw), enc); !errors.Is(err, ErrKind) {
		t.Fatalf("err = %v, want ErrKind", err)
	}
}

func TestLoadRejectsFingerprintMismatch(t *testing.T) {
	raw, _ := saveLPCEIBytes(t)
	// A different-seed database has different column statistics, hence a
	// different fingerprint (and possibly dimension; either rejection is a
	// compatibility failure).
	other := encode.NewEncoder(testutil.SmallDB().Schema)
	_, err := LoadLPCEI(bytes.NewReader(raw), other)
	if !errors.Is(err, ErrFingerprint) && !errors.Is(err, ErrInputDim) {
		t.Fatalf("err = %v, want ErrFingerprint or ErrInputDim", err)
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	raw, enc := saveLPCEIBytes(t)
	for _, n := range []int{len(raw) - 1, len(raw) / 2, len(raw) / 4} {
		if _, err := LoadLPCEI(bytes.NewReader(raw[:n]), enc); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
}

func TestLoadRejectsBitRot(t *testing.T) {
	raw, enc := saveLPCEIBytes(t)
	bad := bytes.Clone(raw)
	bad[len(bad)/2] ^= 0x40
	if _, err := LoadLPCEI(bytes.NewReader(bad), enc); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestLoadSetMissingFile(t *testing.T) {
	db, enc, set := fixture(t)
	dir := t.TempDir()
	if err := set.Save(dir, enc); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSet(t.TempDir(), enc, db); err == nil {
		t.Fatal("loading an empty directory should fail")
	}
}
