// Package modelio implements the versioned on-disk artifact format for
// trained models, decoupling training (cmd/lpce-train) from evaluation
// (cmd/lpce-bench -models-in).
//
// An artifact is a fixed binary header followed by length-prefixed,
// CRC32-checksummed frames. The header carries the format version, the
// artifact kind, and two compatibility checks: the encoder's base feature
// dimension and its schema fingerprint (encode.Encoder.Fingerprint). A
// model trained against one schema therefore cannot be silently loaded
// against another — or against the same schema with different column
// statistics, which would shift every operand feature. Each frame holds
// one gob payload produced by the core/baselines persistence code; framing
// keeps the payloads independent (sequential gob decoders on one stream
// over-read) and lets truncation and bit-rot be detected before gob sees
// the bytes.
package modelio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"github.com/lpce-db/lpce/internal/baselines"
	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/encode"
	"github.com/lpce-db/lpce/internal/storage"
	"github.com/lpce-db/lpce/internal/treenn"
)

// magic identifies model artifact files.
const magic = "LPCEMODL"

// Version is the current artifact format version. Readers reject any other
// version outright; there is no cross-version migration.
const Version = 1

// Artifact kinds.
const (
	KindTree    = "tree"
	KindLPCEI   = "lpcei"
	KindRefiner = "refiner"
	KindMSCN    = "mscn"
)

// Sentinel load errors, matchable with errors.Is.
var (
	ErrBadMagic    = errors.New("modelio: not a model artifact")
	ErrVersion     = errors.New("modelio: unsupported artifact version")
	ErrKind        = errors.New("modelio: artifact kind mismatch")
	ErrInputDim    = errors.New("modelio: input dimension mismatch")
	ErrFingerprint = errors.New("modelio: encoder fingerprint mismatch")
	ErrCorrupt     = errors.New("modelio: corrupt artifact")
)

// maxFrame bounds a frame's declared length so a corrupt header cannot
// trigger a multi-gigabyte allocation.
const maxFrame = 1 << 30

const maxKindLen = 64

func writeHeader(w io.Writer, kind string, enc *encode.Encoder) error {
	if _, err := io.WriteString(w, magic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(Version)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(kind))); err != nil {
		return err
	}
	if _, err := io.WriteString(w, kind); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(enc.Dim())); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, enc.Fingerprint())
}

func readHeader(r io.Reader, wantKind string, enc *encode.Encoder) error {
	var m [len(magic)]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if string(m[:]) != magic {
		return ErrBadMagic
	}
	var ver, kindLen uint32
	if err := binary.Read(r, binary.LittleEndian, &ver); err != nil {
		return fmt.Errorf("%w: truncated header: %v", ErrCorrupt, err)
	}
	if ver != Version {
		return fmt.Errorf("%w: artifact is v%d, this build reads v%d", ErrVersion, ver, Version)
	}
	if err := binary.Read(r, binary.LittleEndian, &kindLen); err != nil {
		return fmt.Errorf("%w: truncated header: %v", ErrCorrupt, err)
	}
	if kindLen > maxKindLen {
		return fmt.Errorf("%w: implausible kind length %d", ErrCorrupt, kindLen)
	}
	kind := make([]byte, kindLen)
	if _, err := io.ReadFull(r, kind); err != nil {
		return fmt.Errorf("%w: truncated header: %v", ErrCorrupt, err)
	}
	if string(kind) != wantKind {
		return fmt.Errorf("%w: artifact is %q, want %q", ErrKind, kind, wantKind)
	}
	var dim uint32
	if err := binary.Read(r, binary.LittleEndian, &dim); err != nil {
		return fmt.Errorf("%w: truncated header: %v", ErrCorrupt, err)
	}
	if int(dim) != enc.Dim() {
		return fmt.Errorf("%w: artifact encodes %d features, this schema encodes %d", ErrInputDim, dim, enc.Dim())
	}
	var fp uint64
	if err := binary.Read(r, binary.LittleEndian, &fp); err != nil {
		return fmt.Errorf("%w: truncated header: %v", ErrCorrupt, err)
	}
	if fp != enc.Fingerprint() {
		return fmt.Errorf("%w: artifact %016x, schema %016x", ErrFingerprint, fp, enc.Fingerprint())
	}
	return nil
}

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated frame header: %v", ErrCorrupt, err)
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return nil, fmt.Errorf("%w: implausible frame length %d", ErrCorrupt, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated frame: %v", ErrCorrupt, err)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:]) {
		return nil, fmt.Errorf("%w: frame checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// frame runs a gob-producing save function into a byte frame.
func frame(save func(io.Writer) error) ([]byte, error) {
	var b bytes.Buffer
	if err := save(&b); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// SaveTreeModel writes a standalone tree model (TLSTM, Flow-Loss, or any
// core.TrainTreeModel output) as a versioned artifact.
func SaveTreeModel(w io.Writer, m *treenn.TreeModel, enc *encode.Encoder) error {
	if err := writeHeader(w, KindTree, enc); err != nil {
		return err
	}
	p, err := frame(func(w io.Writer) error { return core.SaveTreeModel(w, m) })
	if err != nil {
		return err
	}
	return writeFrame(w, p)
}

// LoadTreeModel reads an artifact written by SaveTreeModel, validating the
// format version and the encoder's dimension and fingerprint.
func LoadTreeModel(r io.Reader, enc *encode.Encoder) (*treenn.TreeModel, error) {
	if err := readHeader(r, KindTree, enc); err != nil {
		return nil, err
	}
	p, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	m, err := core.LoadTreeModel(bytes.NewReader(p))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return m, nil
}

// SaveLPCEI writes the distilled student and its teacher as one artifact.
func SaveLPCEI(w io.Writer, l *core.LPCEI, enc *encode.Encoder) error {
	if err := writeHeader(w, KindLPCEI, enc); err != nil {
		return err
	}
	for _, m := range []*treenn.TreeModel{l.Model, l.Teacher} {
		p, err := frame(func(w io.Writer) error { return core.SaveTreeModel(w, m) })
		if err != nil {
			return err
		}
		if err := writeFrame(w, p); err != nil {
			return err
		}
	}
	return nil
}

// LoadLPCEI reads an artifact written by SaveLPCEI.
func LoadLPCEI(r io.Reader, enc *encode.Encoder) (*core.LPCEI, error) {
	if err := readHeader(r, KindLPCEI, enc); err != nil {
		return nil, err
	}
	models := make([]*treenn.TreeModel, 2)
	for i := range models {
		p, err := readFrame(r)
		if err != nil {
			return nil, err
		}
		if models[i], err = core.LoadTreeModel(bytes.NewReader(p)); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	return &core.LPCEI{Model: models[0], Teacher: models[1], Enc: enc}, nil
}

// SaveRefiner writes a trained LPCE-R composite (all modules plus the
// connect layer) as one artifact.
func SaveRefiner(w io.Writer, r *core.Refiner, enc *encode.Encoder) error {
	if err := writeHeader(w, KindRefiner, enc); err != nil {
		return err
	}
	p, err := frame(func(w io.Writer) error { return core.SaveRefiner(w, r) })
	if err != nil {
		return err
	}
	return writeFrame(w, p)
}

// LoadRefiner reads an artifact written by SaveRefiner. The encoder and
// database are runtime dependencies; the header's fingerprint check ensures
// they match the training-time schema.
func LoadRefiner(rd io.Reader, enc *encode.Encoder, db *storage.Database) (*core.Refiner, error) {
	if err := readHeader(rd, KindRefiner, enc); err != nil {
		return nil, err
	}
	p, err := readFrame(rd)
	if err != nil {
		return nil, err
	}
	r, err := core.LoadRefiner(bytes.NewReader(p), enc, db)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return r, nil
}

// SaveMSCN writes a trained MSCN baseline as an artifact.
func SaveMSCN(w io.Writer, m *baselines.MSCN, enc *encode.Encoder) error {
	if err := writeHeader(w, KindMSCN, enc); err != nil {
		return err
	}
	p, err := frame(func(w io.Writer) error { return baselines.SaveMSCN(w, m) })
	if err != nil {
		return err
	}
	return writeFrame(w, p)
}

// LoadMSCN reads an artifact written by SaveMSCN.
func LoadMSCN(r io.Reader, enc *encode.Encoder) (*baselines.MSCN, error) {
	if err := readHeader(r, KindMSCN, enc); err != nil {
		return nil, err
	}
	p, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	m, err := baselines.LoadMSCN(bytes.NewReader(p), enc.Schema)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return m, nil
}

// Artifact file names inside a model directory written by Set.Save.
const (
	FileLPCEI    = "lpcei.model"
	FileRefiner  = "refiner.model"
	FileTLSTM    = "tlstm.model"
	FileFlowLoss = "flowloss.model"
	FileMSCN     = "mscn.model"
)

// Set bundles every SGD-trained model of one experiment environment — the
// artifacts cmd/lpce-train produces and cmd/lpce-bench consumes. The
// data-driven estimators (NeuroCard, DeepDB, FLAT, UAE) are rebuilt from
// the generated data and are not serialized.
type Set struct {
	LPCEI    *core.LPCEI
	Refiner  *core.Refiner
	TLSTM    *treenn.TreeModel
	FlowLoss *treenn.TreeModel
	MSCN     *baselines.MSCN
}

func saveFile(path string, save func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := save(f); err != nil {
		f.Close()
		return fmt.Errorf("modelio: write %s: %w", path, err)
	}
	return f.Close()
}

func loadFile[T any](path string, load func(io.Reader) (T, error)) (T, error) {
	f, err := os.Open(path)
	if err != nil {
		var zero T
		return zero, err
	}
	defer f.Close()
	v, err := load(f)
	if err != nil {
		var zero T
		return zero, fmt.Errorf("modelio: load %s: %w", path, err)
	}
	return v, nil
}

// Save writes every model in the set into dir (created if needed).
func (s *Set) Save(dir string, enc *encode.Encoder) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	steps := []struct {
		name string
		save func(io.Writer) error
	}{
		{FileLPCEI, func(w io.Writer) error { return SaveLPCEI(w, s.LPCEI, enc) }},
		{FileRefiner, func(w io.Writer) error { return SaveRefiner(w, s.Refiner, enc) }},
		{FileTLSTM, func(w io.Writer) error { return SaveTreeModel(w, s.TLSTM, enc) }},
		{FileFlowLoss, func(w io.Writer) error { return SaveTreeModel(w, s.FlowLoss, enc) }},
		{FileMSCN, func(w io.Writer) error { return SaveMSCN(w, s.MSCN, enc) }},
	}
	for _, st := range steps {
		if err := saveFile(filepath.Join(dir, st.name), st.save); err != nil {
			return err
		}
	}
	return nil
}

// LoadSet reads a complete artifact directory written by Set.Save. All five
// artifacts must be present and must validate against the encoder.
func LoadSet(dir string, enc *encode.Encoder, db *storage.Database) (*Set, error) {
	s := &Set{}
	var err error
	if s.LPCEI, err = loadFile(filepath.Join(dir, FileLPCEI), func(r io.Reader) (*core.LPCEI, error) {
		return LoadLPCEI(r, enc)
	}); err != nil {
		return nil, err
	}
	if s.Refiner, err = loadFile(filepath.Join(dir, FileRefiner), func(r io.Reader) (*core.Refiner, error) {
		return LoadRefiner(r, enc, db)
	}); err != nil {
		return nil, err
	}
	if s.TLSTM, err = loadFile(filepath.Join(dir, FileTLSTM), func(r io.Reader) (*treenn.TreeModel, error) {
		return LoadTreeModel(r, enc)
	}); err != nil {
		return nil, err
	}
	if s.FlowLoss, err = loadFile(filepath.Join(dir, FileFlowLoss), func(r io.Reader) (*treenn.TreeModel, error) {
		return LoadTreeModel(r, enc)
	}); err != nil {
		return nil, err
	}
	if s.MSCN, err = loadFile(filepath.Join(dir, FileMSCN), func(r io.Reader) (*baselines.MSCN, error) {
		return LoadMSCN(r, enc)
	}); err != nil {
		return nil, err
	}
	return s, nil
}
