// Package joblike provides a fixed, named benchmark query suite over the
// IMDB-lite schema, in the spirit of the Join Order Benchmark (JOB) the
// paper's evaluation methodology descends from: hand-written queries
// organised in families, each family probing one estimation pathology —
// correlated predicates, skewed fan-outs, fact-to-fact joins, deep chains.
// Unlike the random workload generator, these queries are stable across
// versions, so regressions in estimator accuracy or plan quality show up
// as diffs.
package joblike

import (
	"fmt"
	"sort"

	"github.com/lpce-db/lpce/internal/catalog"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/sqlparse"
)

// SQL maps query names to their SQL text. Families:
//
//	1x — single-join warm-ups
//	2x — correlated-predicate probes (kind↔year, year↔info, kind↔keyword)
//	3x — skew probes (popular-movie fan-out)
//	4x — fact-to-fact joins (derived FK-FK edges)
//	5x — deep chains and stars (6–8 joins)
var SQL = map[string]string{
	// --- family 1: warm-ups ---
	"1a": `SELECT COUNT(*) FROM title, movie_keyword WHERE movie_keyword.movie_id = title.id AND title.production_year > 1995`,
	"1b": `SELECT COUNT(*) FROM title, cast_info WHERE cast_info.movie_id = title.id AND cast_info.role_id = 0`,
	"1c": `SELECT COUNT(*) FROM title, movie_companies WHERE movie_companies.movie_id = title.id AND title.kind_id = 1`,
	"1d": `SELECT COUNT(*) FROM title, movie_info WHERE movie_info.movie_id = title.id AND movie_info.info_type_id = 7`,

	// --- family 2: correlated predicates ---
	"2a": `SELECT COUNT(*) FROM title, movie_keyword WHERE movie_keyword.movie_id = title.id AND title.kind_id = 0 AND movie_keyword.keyword_id < 40`,
	"2b": `SELECT COUNT(*) FROM title, movie_info WHERE movie_info.movie_id = title.id AND title.production_year < 1960 AND movie_info.info > 2000`,
	"2c": `SELECT COUNT(*) FROM title, movie_info_idx WHERE movie_info_idx.movie_id = title.id AND title.production_year >= 1990 AND movie_info_idx.info >= 1500`,
	"2d": `SELECT COUNT(*) FROM title, cast_info WHERE cast_info.movie_id = title.id AND title.kind_id IN (4, 5, 6) AND title.season_nr > 10`,
	"2e": `SELECT COUNT(*) FROM title, movie_keyword, keyword WHERE movie_keyword.movie_id = title.id AND movie_keyword.keyword_id = keyword.id AND title.kind_id = 2 AND keyword.phonetic_code < 500`,

	// --- family 3: skewed fan-outs ---
	"3a": `SELECT COUNT(*) FROM title, cast_info WHERE cast_info.movie_id = title.id AND title.production_year > 2000`,
	"3b": `SELECT COUNT(*) FROM title, cast_info, movie_keyword WHERE cast_info.movie_id = title.id AND movie_keyword.movie_id = title.id AND title.production_year >= 1998`,
	"3c": `SELECT COUNT(*) FROM title, movie_companies, company_name WHERE movie_companies.movie_id = title.id AND movie_companies.company_id = company_name.id AND company_name.country_code = 0 AND title.production_year > 1990`,
	"3d": `SELECT COUNT(*) FROM title, cast_info, name WHERE cast_info.movie_id = title.id AND cast_info.person_id = name.id AND name.gender = 1 AND cast_info.role_id <= 2`,

	// --- family 4: fact-to-fact joins (FK-FK) ---
	"4a": `SELECT COUNT(*) FROM movie_keyword, movie_companies WHERE movie_keyword.movie_id = movie_companies.movie_id AND movie_keyword.keyword_id < 25`,
	"4b": `SELECT COUNT(*) FROM movie_info, movie_info_idx WHERE movie_info.movie_id = movie_info_idx.movie_id AND movie_info.info_type_id = 3 AND movie_info_idx.info_type_id = 5`,
	"4c": `SELECT COUNT(*) FROM cast_info, movie_keyword WHERE cast_info.movie_id = movie_keyword.movie_id AND cast_info.role_id = 1 AND movie_keyword.keyword_id < 15`,

	// --- family 5: deep chains and stars ---
	"5a": `SELECT COUNT(*) FROM title, movie_keyword, keyword, movie_companies, company_name
	       WHERE movie_keyword.movie_id = title.id AND movie_keyword.keyword_id = keyword.id
	         AND movie_companies.movie_id = title.id AND movie_companies.company_id = company_name.id
	         AND title.production_year > 1985 AND company_name.country_code IN (0, 1)`,
	"5b": `SELECT COUNT(*) FROM title, cast_info, name, char_name, role_type
	       WHERE cast_info.movie_id = title.id AND cast_info.person_id = name.id
	         AND cast_info.person_role_id = char_name.id AND cast_info.role_id = role_type.id
	         AND title.kind_id = 0 AND name.gender = 0`,
	"5c": `SELECT COUNT(*) FROM title, movie_info, info_type, movie_keyword, keyword, kind_type
	       WHERE movie_info.movie_id = title.id AND movie_info.info_type_id = info_type.id
	         AND movie_keyword.movie_id = title.id AND movie_keyword.keyword_id = keyword.id
	         AND title.kind_id = kind_type.id
	         AND title.production_year >= 1970 AND movie_info.info < 900`,
	"5d": `SELECT COUNT(*) FROM title, cast_info, movie_companies, movie_info, movie_keyword
	       WHERE cast_info.movie_id = title.id AND movie_companies.movie_id = title.id
	         AND movie_info.movie_id = title.id AND movie_keyword.movie_id = title.id
	         AND title.production_year > 2005 AND cast_info.role_id = 0`,
	"5e": `SELECT COUNT(*) FROM title, cast_info, name, movie_keyword, keyword, movie_companies, company_name
	       WHERE cast_info.movie_id = title.id AND cast_info.person_id = name.id
	         AND movie_keyword.movie_id = title.id AND movie_keyword.keyword_id = keyword.id
	         AND movie_companies.movie_id = title.id AND movie_companies.company_id = company_name.id
	         AND title.kind_id = 0 AND name.gender = 1 AND company_name.country_code = 0
	         AND title.production_year >= 1995`,
	"5f": `SELECT COUNT(*) FROM title, cast_info, name, char_name, movie_info, info_type, movie_keyword, keyword
	       WHERE cast_info.movie_id = title.id AND cast_info.person_id = name.id
	         AND cast_info.person_role_id = char_name.id
	         AND movie_info.movie_id = title.id AND movie_info.info_type_id = info_type.id
	         AND movie_keyword.movie_id = title.id AND movie_keyword.keyword_id = keyword.id
	         AND title.production_year > 1990 AND cast_info.role_id <= 1 AND keyword.phonetic_code < 300`,
}

// Names returns the query names in stable sorted order.
func Names() []string {
	out := make([]string, 0, len(SQL))
	for n := range SQL {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Queries parses the whole suite against the schema, keyed by name.
func Queries(schema *catalog.Schema) (map[string]*query.Query, error) {
	out := make(map[string]*query.Query, len(SQL))
	for name, sql := range SQL {
		q, err := sqlparse.Parse(schema, sql)
		if err != nil {
			return nil, fmt.Errorf("joblike: query %s: %w", name, err)
		}
		out[name] = q
	}
	return out, nil
}
