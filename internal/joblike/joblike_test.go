package joblike

import (
	"testing"

	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/optimizer"
	"github.com/lpce-db/lpce/internal/testutil"
)

func TestAllQueriesParse(t *testing.T) {
	db := testutil.TinyDB()
	qs, err := Queries(db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != len(SQL) {
		t.Fatalf("parsed %d of %d queries", len(qs), len(SQL))
	}
	for name, q := range qs {
		if !q.Connected(q.AllTablesMask()) {
			t.Fatalf("query %s is disconnected", name)
		}
	}
}

func TestNamesStable(t *testing.T) {
	a, b := Names(), Names()
	if len(a) != len(SQL) {
		t.Fatalf("names = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Names not stable")
		}
		if i > 0 && a[i-1] >= a[i] {
			t.Fatal("Names not sorted")
		}
	}
}

func TestFamiliesCoverJoinDepths(t *testing.T) {
	db := testutil.TinyDB()
	qs, err := Queries(db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	depths := map[int]bool{}
	for _, q := range qs {
		depths[q.NumJoins()] = true
	}
	for _, want := range []int{1, 2, 4, 7} {
		if !depths[want] {
			t.Fatalf("suite missing a %d-join query (have %v)", want, depths)
		}
	}
}

func TestSuiteExecutes(t *testing.T) {
	db := testutil.TinyDB()
	qs, err := Queries(db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(db, histogram.NewEstimator(db))
	for _, name := range Names() {
		q := qs[name]
		p, _, err := opt.Plan(q)
		if err != nil {
			t.Fatalf("%s: plan: %v", name, err)
		}
		ctx := &exec.Ctx{DB: db, Q: q, Budget: 200_000_000}
		got, err := exec.Run(ctx, p)
		if err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
		want, err := exec.RunCollect(&exec.Ctx{DB: db, Q: q, Budget: 200_000_000},
			exec.CanonicalPlan(q, q.AllTablesMask()))
		if err != nil {
			t.Fatalf("%s: collect: %v", name, err)
		}
		if got != want {
			t.Fatalf("%s: optimized plan returned %d, reference %d", name, got, want)
		}
	}
}

func TestFactFactFamilyHasNoPKSide(t *testing.T) {
	db := testutil.TinyDB()
	qs, err := Queries(db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"4a", "4b", "4c"} {
		for _, j := range qs[name].Joins {
			if j.Left.Ref == nil || j.Right.Ref == nil {
				t.Fatalf("%s: expected FK-FK join, got %s", name, j)
			}
		}
	}
}
