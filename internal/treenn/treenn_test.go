package treenn

import (
	"math"
	"testing"

	"github.com/lpce-db/lpce/internal/autodiff"
	"github.com/lpce-db/lpce/internal/encode"
	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/nn"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/tensor"
	"github.com/lpce-db/lpce/internal/testutil"
	"github.com/lpce-db/lpce/internal/workload"
)

func testModel(cell CellKind, seed int64) (*TreeModel, *encode.Encoder) {
	db := testutil.TinyDB()
	enc := encode.NewEncoder(db.Schema)
	m := NewTreeModel(Config{InputDim: enc.Dim(), Hidden: 12, OutWidth: 16, Cell: cell, Seed: seed})
	m.LogMax = math.Log(1e6)
	return m, enc
}

func testPlan(joins int, seed int64) *plan.Node {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, seed)
	q := g.Query(joins)
	return exec.CanonicalPlan(q, q.AllTablesMask())
}

func TestForwardProducesAllNodes(t *testing.T) {
	for _, cell := range []CellKind{CellSRU, CellLSTM} {
		m, enc := testModel(cell, 1)
		p := testPlan(3, 71)
		tp := autodiff.NewTape()
		outs := m.Forward(tp, p, func(n *plan.Node) tensor.Vec { return enc.EncodeNode(n) }, nil)
		if len(outs) != p.NumNodes() {
			t.Fatalf("%v: outputs for %d nodes, plan has %d", cell, len(outs), p.NumNodes())
		}
		for n, o := range outs {
			if o.Pred.Scalar() < 0 || o.Pred.Scalar() > 1 {
				t.Fatalf("%v: prediction %v outside [0,1] at %v", cell, o.Pred.Scalar(), n.Op)
			}
			if o.C.Len() != 12 || o.H.Len() != 12 {
				t.Fatalf("%v: embedding widths wrong", cell)
			}
		}
	}
}

func TestForwardDeterministic(t *testing.T) {
	m, enc := testModel(CellSRU, 2)
	p := testPlan(2, 72)
	feat := func(n *plan.Node) tensor.Vec { return enc.EncodeNode(n) }
	a := m.Predict(p, feat)
	b := m.Predict(p, feat)
	if a != b {
		t.Fatalf("predictions differ: %v vs %v", a, b)
	}
	if a < 1 || a > 1e6+1 {
		t.Fatalf("prediction %v outside cardinality range", a)
	}
}

func TestSRUSmallerThanLSTM(t *testing.T) {
	sru, _ := testModel(CellSRU, 3)
	lstm, _ := testModel(CellLSTM, 3)
	if sru.NumWeights() >= lstm.NumWeights() {
		t.Fatalf("SRU (%d weights) should be smaller than LSTM (%d)", sru.NumWeights(), lstm.NumWeights())
	}
}

func TestChildCOverrideSkipsSubtree(t *testing.T) {
	m, enc := testModel(CellSRU, 4)
	p := testPlan(3, 73)
	feat := func(n *plan.Node) tensor.Vec { return enc.EncodeNode(n) }
	tp := autodiff.NewTape()
	override := tp.Const(tensor.NewVec(12))
	childC := map[*plan.Node]*autodiff.Node{p.Left: override}
	outs := m.Forward(tp, p, feat, childC)
	if _, ok := outs[p.Left]; ok {
		t.Fatal("overridden subtree should not be evaluated")
	}
	p.Left.Walk(func(n *plan.Node) {
		if n == p.Left {
			return
		}
		if _, ok := outs[n]; ok {
			t.Fatal("descendant of overridden subtree was evaluated")
		}
	})
	if _, ok := outs[p]; !ok {
		t.Fatal("root missing from outputs")
	}
}

func TestGradientsFlowThroughTree(t *testing.T) {
	// One training step on a toy target should reduce loss.
	for _, cell := range []CellKind{CellSRU, CellLSTM} {
		m, enc := testModel(cell, 5)
		p := testPlan(2, 74)
		feat := func(n *plan.Node) tensor.Vec { return enc.EncodeNode(n) }
		opt := nn.NewAdam(0.01)
		var first, last float64
		for i := 0; i < 60; i++ {
			tp := autodiff.NewTape()
			outs := m.Forward(tp, p, feat, nil)
			loss := nn.QErrorLoss(tp, outs[p].Pred, 5000, m.LogMax)
			if i == 0 {
				first = loss.Scalar()
			}
			last = loss.Scalar()
			m.Params.ZeroGrad()
			tp.Backward(loss)
			m.Params.ClipGrad(5)
			opt.Step(m.Params)
		}
		if last >= first {
			t.Fatalf("%v: loss did not decrease (%v -> %v)", cell, first, last)
		}
		if last > 2 {
			t.Fatalf("%v: failed to fit single target (q=%v)", cell, last)
		}
	}
}

func TestSRUCellEquationStructure(t *testing.T) {
	// With f -> 1 (children pass through) the cell must reduce to
	// c = cl + cr: force the forget gate high by setting Wf rows to zero
	// and bf to a large positive value.
	ps := nn.NewParams()
	rng := tensor.NewRNG(6)
	cell := NewSRUCell(ps, "c", 4, rng)
	bf := ps.Get("c.wf.b")
	bf.Val.Fill(100) // σ(100) ≈ 1
	wf := ps.Get("c.wf.W")
	wf.Val.Zero()

	tp := autodiff.NewTape()
	x := tp.Input(tensor.Vec{0.1, 0.2, 0.3, 0.4})
	cl := tp.Input(tensor.Vec{1, 2, 3, 4})
	cr := tp.Input(tensor.Vec{5, 6, 7, 8})
	c, _ := cell.Apply(tp, x, cl, cr)
	for i := range c.Data {
		want := cl.Data[i] + cr.Data[i]
		if math.Abs(c.Data[i]-want) > 1e-6 {
			t.Fatalf("c[%d] = %v, want %v (f≈1 should pass children through)", i, c.Data[i], want)
		}
	}
}

func TestLSTMZeroChildrenLeaf(t *testing.T) {
	// At a leaf (zero child encodings) the LSTM reduces to c = i ⊙ u.
	ps := nn.NewParams()
	rng := tensor.NewRNG(7)
	cell := NewLSTMCell(ps, "l", 4, rng)
	tp := autodiff.NewTape()
	x := tp.Input(tensor.Vec{0.5, -0.5, 1, 0})
	zero := tp.NewNode(4)
	c, h := cell.Apply(tp, x, zero, zero)
	if c.Len() != 4 || h.Len() != 4 {
		t.Fatal("shapes wrong")
	}
	for i := range h.Data {
		if math.Abs(h.Data[i]) > 1 {
			t.Fatalf("h[%d] = %v outside tanh*sigmoid range", i, h.Data[i])
		}
	}
}

func TestCellKindString(t *testing.T) {
	if CellSRU.String() != "sru" || CellLSTM.String() != "lstm" {
		t.Fatal("cell kind strings")
	}
}

func TestFeatureDimMismatchPanics(t *testing.T) {
	m, _ := testModel(CellSRU, 8)
	p := testPlan(1, 75)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong feature dim")
		}
	}()
	m.Predict(p, func(*plan.Node) tensor.Vec { return tensor.NewVec(3) })
}
