// Package treenn implements the tree-structured recurrent models that
// process execution plans bottom-up: the SRU cell of LPCE (paper Eq. 1) and
// the child-sum tree-LSTM used by the TLSTM baseline. A TreeModel combines
// an embed MLP, a recurrent cell, and an output MLP — the three modules of
// Figure 6 — and exposes per-node cardinality predictions for the node-wise
// loss.
package treenn

import (
	"fmt"

	"github.com/lpce-db/lpce/internal/autodiff"
	"github.com/lpce-db/lpce/internal/nn"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/tensor"
)

// CellKind selects the recurrent cell.
type CellKind int

// Supported cells.
const (
	CellSRU CellKind = iota
	CellLSTM
)

func (k CellKind) String() string {
	if k == CellLSTM {
		return "lstm"
	}
	return "sru"
}

// Cell computes a node's encoding c and representation h from its embedded
// input x and the encodings/representations of its children (zero vectors
// at leaves).
type Cell interface {
	Apply(t *autodiff.Tape, x, cl, cr *autodiff.Node) (c, h *autodiff.Node)
	Hidden() int
}

// SRUCell implements Eq. 1 of the paper:
//
//	x̃ = Wx·x
//	f = σ(Wf·x + bf)
//	r = σ(Wr·x + br)
//	c = f ⊙ (cl + cr) + (1−f) ⊙ x̃
//	h = r ⊙ tanh(c) + (1−r) ⊙ x
//
// Only 3 matrix multiplications versus the LSTM's 8, and all three depend
// only on x, which is what makes SRU faster than LSTM in the paper's
// Figure 19.
type SRUCell struct {
	wx, wf, wr *nn.Linear
	hidden     int
}

// NewSRUCell registers an SRU cell with the given hidden width. The
// embedded input x must have the same width (the highway term (1−r)⊙x
// requires it).
func NewSRUCell(ps *nn.Params, name string, hidden int, rng *tensor.RNG) *SRUCell {
	return &SRUCell{
		wx:     nn.NewLinear(ps, name+".wx", hidden, hidden, rng),
		wf:     nn.NewLinear(ps, name+".wf", hidden, hidden, rng),
		wr:     nn.NewLinear(ps, name+".wr", hidden, hidden, rng),
		hidden: hidden,
	}
}

// Hidden implements Cell.
func (s *SRUCell) Hidden() int { return s.hidden }

// Apply implements Cell.
func (s *SRUCell) Apply(t *autodiff.Tape, x, cl, cr *autodiff.Node) (c, h *autodiff.Node) {
	xt := s.wx.Apply(t, x)
	f := t.Sigmoid(s.wf.Apply(t, x))
	r := t.Sigmoid(s.wr.Apply(t, x))
	c = t.Add(t.Mul(f, t.Add(cl, cr)), t.Mul(t.OneMinus(f), xt))
	h = t.Add(t.Mul(r, t.Tanh(c)), t.Mul(t.OneMinus(r), x))
	return c, h
}

// LSTMCell is a child-sum tree-LSTM (Tai et al.), the backbone of the
// TLSTM baseline [30]:
//
//	i  = σ(Wi·x + Ui·(hl+hr) + bi)
//	fl = σ(Wf·x + Uf·hl + bf),  fr = σ(Wf·x + Uf·hr + bf)
//	o  = σ(Wo·x + Uo·(hl+hr) + bo)
//	u  = tanh(Wu·x + Uu·(hl+hr) + bu)
//	c  = i ⊙ u + fl ⊙ cl + fr ⊙ cr
//	h  = o ⊙ tanh(c)
type LSTMCell struct {
	wi, ui *nn.Linear
	wf, uf *nn.Linear
	wo, uo *nn.Linear
	wu, uu *nn.Linear
	hidden int
}

// NewLSTMCell registers a tree-LSTM cell.
func NewLSTMCell(ps *nn.Params, name string, hidden int, rng *tensor.RNG) *LSTMCell {
	l := &LSTMCell{hidden: hidden}
	l.wi = nn.NewLinear(ps, name+".wi", hidden, hidden, rng)
	l.ui = nn.NewLinear(ps, name+".ui", hidden, hidden, rng)
	l.wf = nn.NewLinear(ps, name+".wf", hidden, hidden, rng)
	l.uf = nn.NewLinear(ps, name+".uf", hidden, hidden, rng)
	l.wo = nn.NewLinear(ps, name+".wo", hidden, hidden, rng)
	l.uo = nn.NewLinear(ps, name+".uo", hidden, hidden, rng)
	l.wu = nn.NewLinear(ps, name+".wu", hidden, hidden, rng)
	l.uu = nn.NewLinear(ps, name+".uu", hidden, hidden, rng)
	return l
}

// Hidden implements Cell.
func (l *LSTMCell) Hidden() int { return l.hidden }

// Apply implements Cell. The children's h states are not threaded
// separately through our Cell interface; like the SRU we treat the child
// encodings cl, cr as carrying the child state (for the LSTM this is the
// concatenation trick of using c as both — we pass children's h via c,
// which keeps both cells plug-compatible and matches the paper's usage
// where only c flows upward in Figure 6).
func (l *LSTMCell) Apply(t *autodiff.Tape, x, cl, cr *autodiff.Node) (c, h *autodiff.Node) {
	hsum := t.Add(cl, cr)
	i := t.Sigmoid(t.Add(l.wi.Apply(t, x), l.ui.Apply(t, hsum)))
	fl := t.Sigmoid(t.Add(l.wf.Apply(t, x), l.uf.Apply(t, cl)))
	fr := t.Sigmoid(t.Add(l.wf.Apply(t, x), l.uf.Apply(t, cr)))
	o := t.Sigmoid(t.Add(l.wo.Apply(t, x), l.uo.Apply(t, hsum)))
	u := t.Tanh(t.Add(l.wu.Apply(t, x), l.uu.Apply(t, hsum)))
	c = t.Add(t.Mul(i, u), t.Add(t.Mul(fl, cl), t.Mul(fr, cr)))
	h = t.Mul(o, t.Tanh(c))
	return c, h
}

// Config describes a TreeModel's architecture.
type Config struct {
	InputDim int      // feature dimension
	Hidden   int      // embed output and cell width
	OutWidth int      // hidden width of the output MLP
	Cell     CellKind // SRU or LSTM
	Seed     int64
}

// TreeModel is the full estimator of Figure 6: embed MLP → recurrent cell
// over the plan tree → output MLP with sigmoid producing the normalized
// log-cardinality.
type TreeModel struct {
	Cfg    Config
	Params *nn.Params
	Embed  *nn.MLP
	Cell   Cell
	Out    *nn.MLP
	// LogMax is ln of the maximum cardinality in the training set; the
	// sigmoid output is interpreted as ln(card)/LogMax.
	LogMax float64
}

// NewTreeModel builds a model with fresh parameters.
func NewTreeModel(cfg Config) *TreeModel {
	ps := nn.NewParams()
	rng := tensor.NewRNG(cfg.Seed)
	m := &TreeModel{Cfg: cfg, Params: ps}
	m.Embed = nn.NewMLP(ps, "embed", []int{cfg.InputDim, cfg.Hidden, cfg.Hidden}, nn.ActReLU, nn.ActReLU, rng)
	switch cfg.Cell {
	case CellLSTM:
		m.Cell = NewLSTMCell(ps, "cell", cfg.Hidden, rng)
	default:
		m.Cell = NewSRUCell(ps, "cell", cfg.Hidden, rng)
	}
	m.Out = nn.NewMLP(ps, "out", []int{cfg.Hidden, cfg.OutWidth, 1}, nn.ActReLU, nn.ActSigmoid, rng)
	return m
}

// Replica returns a model that shares this model's weights but owns
// private gradient buffers. Training workers forward/backward on replicas
// concurrently: weight reads observe the master's current values (updates
// by the optimizer between batches are visible immediately), while each
// replica's gradients stay private until the trainer reduces them. The
// replica must not be stepped by an optimizer.
func (m *TreeModel) Replica() *TreeModel {
	r := NewTreeModel(m.Cfg)
	r.LogMax = m.LogMax
	src, dst := m.Params.All(), r.Params.All()
	for i := range dst {
		dst[i].Val = src[i].Val
	}
	return r
}

// NodeOut holds the tape nodes produced for one plan operator.
type NodeOut struct {
	X     *autodiff.Node // embedded input (embed module output)
	C     *autodiff.Node // node encoding passed to the parent
	H     *autodiff.Node // node representation
	Logit *autodiff.Node // pre-sigmoid output (distillation target)
	Pred  *autodiff.Node // sigmoid output in [0,1]
}

// Card converts the prediction to a cardinality.
func (o *NodeOut) Card(logMax float64) float64 {
	return nn.DenormalizeCard(o.Pred.Scalar(), logMax)
}

// FeatureFn supplies the feature vector for a plan node; different callers
// plug in the plain encoding or the cardinality-augmented one.
type FeatureFn func(n *plan.Node) tensor.Vec

// Forward runs the model over a plan tree, returning the outputs per node
// in post-order. childC optionally overrides the encoding of specific
// subtrees (LPCE-R's refine module substitutes the connect-layer embedding
// of executed sub-plans); when a node is present in childC its subtree is
// not descended.
func (m *TreeModel) Forward(t *autodiff.Tape, root *plan.Node, feat FeatureFn, childC map[*plan.Node]*autodiff.Node) map[*plan.Node]*NodeOut {
	outs := make(map[*plan.Node]*NodeOut)
	m.forward(t, root, feat, childC, outs)
	return outs
}

func (m *TreeModel) forward(t *autodiff.Tape, n *plan.Node, feat FeatureFn, childC map[*plan.Node]*autodiff.Node, outs map[*plan.Node]*NodeOut) *autodiff.Node {
	if c, ok := childC[n]; ok {
		return c
	}
	zero := t.NewNode(m.Cell.Hidden())
	cl, cr := zero, zero
	if n.Left != nil {
		cl = m.forward(t, n.Left, feat, childC, outs)
	}
	if n.Right != nil {
		cr = m.forward(t, n.Right, feat, childC, outs)
	}
	fv := feat(n)
	if len(fv) != m.Cfg.InputDim {
		panic(fmt.Sprintf("treenn: feature dim %d, model expects %d", len(fv), m.Cfg.InputDim))
	}
	x := m.Embed.Apply(t, t.Input(fv))
	c, h := m.Cell.Apply(t, x, cl, cr)
	logit, pred := m.Out.ApplyPreOutput(t, h)
	outs[n] = &NodeOut{X: x, C: c, H: h, Logit: logit, Pred: pred}
	return c
}

// Predict runs an inference-only forward pass and returns the estimated
// cardinality of the root.
func (m *TreeModel) Predict(root *plan.Node, feat FeatureFn) float64 {
	t := autodiff.NewTape()
	outs := m.Forward(t, root, feat, nil)
	return outs[root].Card(m.LogMax)
}

// NumWeights reports the model size (the paper's >10x compression claim is
// checked against this).
func (m *TreeModel) NumWeights() int { return m.Params.NumWeights() }
