package storage

import (
	"testing"

	"github.com/lpce-db/lpce/internal/catalog"
)

func buildLoaded(t *testing.T) (*Database, *Table) {
	t.Helper()
	s := catalog.NewSchema()
	meta := s.AddTable("t", catalog.PK("id"), catalog.Attr("v"))
	db := NewDatabase(s)
	tab := NewTable(meta, 6)
	copy(tab.ColByName("id"), []int64{0, 1, 2, 3, 4, 5})
	copy(tab.ColByName("v"), []int64{5, 3, 5, 1, 9, 3})
	db.Tables[meta.ID] = tab
	tab.FinishLoad()
	return db, tab
}

func TestFinishLoadStats(t *testing.T) {
	_, tab := buildLoaded(t)
	v := tab.Meta.Column("v")
	if v.Min != 1 || v.Max != 9 || v.NDV != 4 {
		t.Fatalf("stats = min %d max %d ndv %d", v.Min, v.Max, v.NDV)
	}
	id := tab.Meta.Column("id")
	if id.NDV != 6 {
		t.Fatalf("id ndv = %d", id.NDV)
	}
}

func TestHashIndexLookup(t *testing.T) {
	_, tab := buildLoaded(t)
	ix := tab.HashIndex(tab.Meta.Column("v").Pos)
	got := ix.Lookup(5)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("lookup(5) = %v", got)
	}
	if ix.Lookup(42) != nil {
		t.Fatal("lookup of absent value should be nil")
	}
	// cached instance
	if tab.HashIndex(tab.Meta.Column("v").Pos) != ix {
		t.Fatal("hash index should be cached")
	}
}

func TestOrderedIndexRange(t *testing.T) {
	_, tab := buildLoaded(t)
	ix := tab.OrderedIndex(tab.Meta.Column("v").Pos)
	rids := ix.Range(3, 5)
	// values 3,3,5,5 -> rows {1,5,0,2} in some sorted-by-value order
	if len(rids) != 4 {
		t.Fatalf("range(3,5) = %v", rids)
	}
	seen := map[int32]bool{}
	for _, r := range rids {
		seen[r] = true
	}
	for _, want := range []int32{0, 1, 2, 5} {
		if !seen[want] {
			t.Fatalf("row %d missing from range result %v", want, rids)
		}
	}
	if got := ix.Range(100, 200); len(got) != 0 {
		t.Fatalf("empty range returned %v", got)
	}
	if got := ix.Range(9, 9); len(got) != 1 {
		t.Fatalf("range(9,9) = %v", got)
	}
}

func TestDatabaseLookups(t *testing.T) {
	db, tab := buildLoaded(t)
	if db.TableByName("t") != tab {
		t.Fatal("TableByName failed")
	}
	if db.TableByName("missing") != nil {
		t.Fatal("missing table should be nil")
	}
	if db.Table(tab.Meta) != tab {
		t.Fatal("Table by meta failed")
	}
	if db.TotalRows() != 6 {
		t.Fatalf("TotalRows = %d", db.TotalRows())
	}
}

func TestColByNamePanicsOnMissing(t *testing.T) {
	_, tab := buildLoaded(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab.ColByName("missing")
}
