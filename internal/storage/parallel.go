package storage

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel sealing: FinishLoad's two passes — per-column catalog statistics
// and per-(column, segment) encoding — are embarrassingly parallel, and both
// are deterministic per job (buildSegment is one-pass with a sorted
// dictionary; min/max/NDV are exact). Fanning the jobs across a bounded
// worker pool with results landing by index therefore produces a sealed
// table byte-equal to serial sealing for any worker count, which the
// equivalence suite asserts under the race detector.

// buildWorkers is the requested parallelism for sealing work (FinishLoad,
// and through it maintain.RefreshStats). The effective count additionally
// clamps to sealWorkerCap and to the number of jobs. It defaults to serial;
// engine.Config.BuildWorkers / lpce-bench -build-workers / lpce-sql
// -build-workers raise it (defaulting to their ExecWorkers).
var buildWorkers = 1

// SetBuildWorkers sets the sealing parallelism for tables sealed after the
// call and returns a function restoring the previous value. Values below 1
// clamp to 1. Like SetSegmentRows, it must not be called while loads are in
// flight.
func SetBuildWorkers(n int) (restore func()) {
	old := buildWorkers
	if n < 1 {
		n = 1
	}
	buildWorkers = n
	return func() { buildWorkers = old }
}

// BuildWorkers reports the current requested sealing parallelism.
func BuildWorkers() int { return buildWorkers }

// sealWorkerCap clamps the effective sealing workers to the host's core
// count, mirroring the executor's exchange clamp — extra goroutines on a
// saturated machine only add scheduling overhead. exec.SetExchangeWorkerCap
// forwards here so tests that force real concurrency cap (or uncap) both
// build paths together.
var sealWorkerCap = runtime.GOMAXPROCS(0)

// SetSealWorkerCap overrides the GOMAXPROCS clamp on sealing workers and
// returns a function restoring the previous value. It exists for tests that
// must exercise genuinely concurrent sealing regardless of the host's core
// count (results are identical either way — that is the property under
// test); production code never calls it.
func SetSealWorkerCap(n int) (restore func()) {
	old := sealWorkerCap
	sealWorkerCap = n
	return func() { sealWorkerCap = old }
}

// runSealJobs runs fn(0) … fn(n-1) across min(workers, n) goroutines pulling
// from an atomic job counter, returning once all jobs finished. Jobs must be
// mutually independent with results landing by index; with fewer than two
// effective workers the jobs run inline in index order, so the serial path
// is the parallel path's oracle by construction.
func runSealJobs(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
