package storage

import (
	"math/rand"
	"testing"

	"github.com/lpce-db/lpce/internal/catalog"
)

// segTestData generates value distributions that steer buildSegment into
// each encoding: constants (dict, width 0), low-NDV categoricals (dict),
// dense ranges (frame-of-reference pack), and wide random values (raw).
func segTestData(rng *rand.Rand, kind string, n int) []int64 {
	vals := make([]int64, n)
	switch kind {
	case "constant":
		c := rng.Int63n(1000) - 500
		for i := range vals {
			vals[i] = c
		}
	case "low-ndv":
		ndv := 2 + rng.Intn(dictMaxNDV-2)
		// Distinct values spread wide so pack would need many bits and the
		// dictionary wins.
		dict := make([]int64, ndv)
		for i := range dict {
			dict[i] = rng.Int63n(1 << 40)
		}
		for i := range vals {
			vals[i] = dict[rng.Intn(ndv)]
		}
	case "dense-range":
		base := rng.Int63n(1<<50) - (1 << 49)
		spread := int64(1) << (10 + uint(rng.Intn(20)))
		for i := range vals {
			vals[i] = base + rng.Int63n(spread)
		}
	case "wide":
		for i := range vals {
			vals[i] = rng.Int63() - rng.Int63()
		}
	}
	return vals
}

var segKinds = []string{"constant", "low-ndv", "dense-range", "wide"}

// TestSegmentRoundTrip is the encode/decode property suite: for every
// encoding-steering distribution and a spread of segment lengths, the
// segment must reproduce the source column exactly — value by value via
// Get, in bulk via DecodeRange over random sub-ranges, and strided via
// Gather over random selection vectors — and its zone map must be the true
// min/max.
func TestSegmentRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lengths := []int{1, 2, 63, 64, 65, 1000, 4096, 5000}
	for _, kind := range segKinds {
		for _, n := range lengths {
			for trial := 0; trial < 3; trial++ {
				vals := segTestData(rng, kind, n)
				seg := buildSegment(vals)
				if seg.Rows() != n {
					t.Fatalf("%s/%d: rows = %d", kind, n, seg.Rows())
				}
				mn, mx := vals[0], vals[0]
				for _, v := range vals {
					if v < mn {
						mn = v
					}
					if v > mx {
						mx = v
					}
				}
				if seg.Min != mn || seg.Max != mx {
					t.Fatalf("%s/%d (%v): zone map [%d,%d], want [%d,%d]",
						kind, n, seg.Encoding(), seg.Min, seg.Max, mn, mx)
				}
				for i, want := range vals {
					if got := seg.Get(i); got != want {
						t.Fatalf("%s/%d (%v): Get(%d) = %d, want %d",
							kind, n, seg.Encoding(), i, got, want)
					}
				}
				var buf []int64
				for r := 0; r < 5; r++ {
					lo := rng.Intn(n)
					hi := lo + 1 + rng.Intn(n-lo)
					buf = seg.DecodeRange(buf[:0], lo, hi)
					for k, got := range buf {
						if got != vals[lo+k] {
							t.Fatalf("%s/%d (%v): DecodeRange(%d,%d)[%d] = %d, want %d",
								kind, n, seg.Encoding(), lo, hi, k, got, vals[lo+k])
						}
					}
					// buf may alias the raw column; reset to a private slice so
					// the next DecodeRange cannot scribble on it.
					if seg.Encoding() == EncRaw {
						buf = nil
					}
				}
				base := 100 * 4096
				sel := make([]int32, 0, 64)
				for len(sel) < 64 {
					sel = append(sel, int32(base+rng.Intn(n)))
				}
				stride := 3
				dst := make([]int64, len(sel)*stride)
				seg.Gather(dst, stride, sel, base)
				for k, r := range sel {
					if dst[k*stride] != vals[int(r)-base] {
						t.Fatalf("%s/%d (%v): Gather[%d] = %d, want %d",
							kind, n, seg.Encoding(), k, dst[k*stride], vals[int(r)-base])
					}
				}
			}
		}
	}
}

// TestSegmentEncodingSelection pins the encoding chooser to the documented
// rules, including that the chosen encodings actually compress.
func TestSegmentEncodingSelection(t *testing.T) {
	constant := buildSegment([]int64{42, 42, 42, 42})
	if constant.Encoding() != EncDict || constant.EncodedBits() != 0 {
		t.Fatalf("constant: %v/%d bits", constant.Encoding(), constant.EncodedBits())
	}

	// 4 distinct values spread over 2^40: dict codes need 2 bits, pack 40.
	lowNDV := make([]int64, 1000)
	for i := range lowNDV {
		lowNDV[i] = int64(i%4) << 38
	}
	dict := buildSegment(lowNDV)
	if dict.Encoding() != EncDict {
		t.Fatalf("low-NDV: %v", dict.Encoding())
	}
	if dict.EncodedBits() != 2 {
		t.Fatalf("low-NDV: %d bits, want 2", dict.EncodedBits())
	}

	// Dense range with high NDV: every value distinct, spread fits 10 bits.
	dense := make([]int64, 1000)
	for i := range dense {
		dense[i] = 1_000_000 + int64(i)
	}
	pack := buildSegment(dense)
	if pack.Encoding() != EncPack {
		t.Fatalf("dense: %v", pack.Encoding())
	}
	if pack.EncodedBits() != 10 {
		t.Fatalf("dense: %d bits, want 10", pack.EncodedBits())
	}

	// Wide random values: > packMaxBits spread and > dictMaxNDV distinct.
	rng := rand.New(rand.NewSource(1))
	wide := make([]int64, 1000)
	for i := range wide {
		wide[i] = rng.Int63()
	}
	raw := buildSegment(wide)
	if raw.Encoding() != EncRaw {
		t.Fatalf("wide: %v", raw.Encoding())
	}
}

func segTestTable(t *testing.T, nRows int) *Table {
	t.Helper()
	meta := &catalog.Table{Name: "seg_t", Columns: []*catalog.Column{
		{Name: "a", Pos: 0}, {Name: "b", Pos: 1},
	}}
	for _, c := range meta.Columns {
		c.Table = meta
	}
	tbl := NewTable(meta, nRows)
	for i := 0; i < nRows; i++ {
		tbl.Cols[0][i] = int64(i)
		tbl.Cols[1][i] = int64(i % 7)
	}
	return tbl
}

// TestTableSealLifecycle covers the seal state machine: FinishLoad seals
// and builds segments covering every row; direct AppendRows is rejected
// while sealed; MaintenanceAppend unseals, keeps only the clean segment
// prefix, and the next FinishLoad rebuilds just the dirtied tail (reusing
// untouched segment objects).
func TestTableSealLifecycle(t *testing.T) {
	defer SetSegmentRows(64)()
	tbl := segTestTable(t, 300)

	if tbl.Sealed() {
		t.Fatal("fresh table should not be sealed")
	}
	if tbl.Segments(0) != nil {
		t.Fatal("unsealed table should expose no segments")
	}
	if err := tbl.AppendRows([][]int64{{300, 300 % 7}}); err != nil {
		t.Fatalf("pre-seal append: %v", err)
	}

	tbl.FinishLoad()
	if !tbl.Sealed() || tbl.SegRows() != 64 {
		t.Fatalf("sealed=%v segRows=%d", tbl.Sealed(), tbl.SegRows())
	}
	segs := tbl.Segments(0)
	wantSegs := (301 + 63) / 64
	if len(segs) != wantSegs {
		t.Fatalf("segments = %d, want %d", len(segs), wantSegs)
	}
	total := 0
	for _, s := range segs {
		total += s.Rows()
	}
	if total != 301 {
		t.Fatalf("segment rows sum to %d, want 301", total)
	}
	if err := tbl.AppendRows([][]int64{{1, 1}}); err == nil {
		t.Fatal("sealed append should fail")
	}

	// Dirty the tail: 301 rows at 64/segment = 4 full + 1 ragged segment;
	// appending must keep the 4 full ones and drop the ragged one.
	keep := append([]*Segment(nil), segs[:4]...)
	tbl.MaintenanceAppend([][]int64{{301, 301 % 7}, {302, 302 % 7}})
	if tbl.Sealed() {
		t.Fatal("maintenance append should unseal")
	}
	tbl.FinishLoad()
	segs2 := tbl.Segments(0)
	if len(segs2) != (303+63)/64 {
		t.Fatalf("segments after reseal = %d", len(segs2))
	}
	for g, s := range keep {
		if segs2[g] != s {
			t.Fatalf("full segment %d was rebuilt instead of reused", g)
		}
	}
	for i := 0; i < 303; i++ {
		g, off := i/64, i%64
		if got := segs2[g].Get(off); got != int64(i) {
			t.Fatalf("row %d after reseal = %d", i, got)
		}
	}

	// Changing the granularity invalidates the reuse prefix wholesale.
	restore := SetSegmentRows(32)
	tbl.FinishLoad()
	restore()
	if got := len(tbl.Segments(0)); got != (303+31)/32 {
		t.Fatalf("segments after regranulating = %d", got)
	}
}
