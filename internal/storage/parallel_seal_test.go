package storage

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"github.com/lpce-db/lpce/internal/catalog"
)

// Parallel sealing must be byte-equal to serial sealing for every worker
// count: same catalog statistics, same segment geometry, same per-segment
// encoding choice, dictionary, packed words, and zone maps. These tests
// compare whole sealed tables field by field — including the unexported
// packed/dict arrays — against a serially sealed copy of the same data,
// across the same worker grid as the executor's equivalence suite, plus the
// unseal/reseal transition after MaintenanceAppend.

var parallelSealWorkers = []int{1, 2, 4, 8}

// parSealTable builds (without sealing) a fixture whose columns steer
// buildSegment into each encoding: a dense sequence (frame-of-reference
// pack), a low-NDV categorical (dict), a constant (dict, width 0), and wide
// random values (raw).
func parSealTable(nRows int) *Table {
	meta := &catalog.Table{Name: "par_seal_t", Columns: []*catalog.Column{
		{Name: "seq", Pos: 0}, {Name: "cat", Pos: 1},
		{Name: "konst", Pos: 2}, {Name: "wide", Pos: 3},
	}}
	for _, c := range meta.Columns {
		c.Table = meta
	}
	tbl := NewTable(meta, nRows)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < nRows; i++ {
		tbl.Cols[0][i] = int64(i)
		tbl.Cols[1][i] = rng.Int63n(7) << 40 // wide spread, 7 distinct: dict wins
		tbl.Cols[2][i] = 42
		tbl.Cols[3][i] = rng.Int63() - rng.Int63()
	}
	return tbl
}

// segBitwiseEqual compares every field of two segments, including the
// unexported encoding internals. Raw segments alias different column slices
// across tables, so raw is compared by value.
func segBitwiseEqual(x, y *Segment) bool {
	if x.rows != y.rows || x.enc != y.enc || x.width != y.width ||
		x.Min != y.Min || x.Max != y.Max {
		return false
	}
	if len(x.dict) != len(y.dict) || len(x.packed) != len(y.packed) || len(x.raw) != len(y.raw) {
		return false
	}
	for i := range x.dict {
		if x.dict[i] != y.dict[i] {
			return false
		}
	}
	for i := range x.packed {
		if x.packed[i] != y.packed[i] {
			return false
		}
	}
	for i := range x.raw {
		if x.raw[i] != y.raw[i] {
			return false
		}
	}
	return true
}

// requireSealedIdentical fails unless two independently sealed tables have
// identical catalog statistics and bitwise-identical segments.
func requireSealedIdentical(t *testing.T, label string, a, b *Table) {
	t.Helper()
	if !a.Sealed() || !b.Sealed() || a.SegRows() != b.SegRows() {
		t.Fatalf("%s: seal state mismatch", label)
	}
	for c := range a.Cols {
		am, bm := a.Meta.Columns[c], b.Meta.Columns[c]
		if am.Min != bm.Min || am.Max != bm.Max || am.NDV != bm.NDV {
			t.Fatalf("%s col %d: stats (%d,%d,%d), serial (%d,%d,%d)",
				label, c, bm.Min, bm.Max, bm.NDV, am.Min, am.Max, am.NDV)
		}
		as, bs := a.Segments(c), b.Segments(c)
		if len(as) != len(bs) {
			t.Fatalf("%s col %d: %d segments, serial %d", label, c, len(bs), len(as))
		}
		for g := range as {
			if !segBitwiseEqual(as[g], bs[g]) {
				t.Fatalf("%s col %d seg %d: layout differs from serial (%v vs %v)",
					label, c, g, bs[g].Encoding(), as[g].Encoding())
			}
		}
	}
}

// TestParallelSealEquivalence seals identical tables serially and at each
// worker count and requires bitwise-equal results. The seal worker cap is
// lifted so every count runs genuinely concurrently even on one core.
func TestParallelSealEquivalence(t *testing.T) {
	defer SetSegmentRows(64)()
	defer SetSealWorkerCap(64)()
	for _, nRows := range []int{1, 63, 300, 4100} {
		serial := parSealTable(nRows)
		func() {
			defer SetBuildWorkers(1)()
			serial.FinishLoad()
		}()
		for _, w := range parallelSealWorkers {
			tbl := parSealTable(nRows)
			func() {
				defer SetBuildWorkers(w)()
				tbl.FinishLoad()
			}()
			requireSealedIdentical(t, fmt.Sprintf("rows=%d workers=%d", nRows, w), serial, tbl)
		}
	}
}

// TestParallelSealResealAfterAppend covers the unseal/reseal transition:
// MaintenanceAppend unseals and drops the dirty segment tail, and the next
// parallel FinishLoad must both match a serial reseal bitwise and reuse the
// untouched prefix segment objects (identity, not just equality).
func TestParallelSealResealAfterAppend(t *testing.T) {
	defer SetSegmentRows(64)()
	defer SetSealWorkerCap(64)()
	appendRow := []int64{9999, 3 << 40, 42, -17}

	serial := parSealTable(300)
	func() {
		defer SetBuildWorkers(1)()
		serial.FinishLoad()
		serial.MaintenanceAppend([][]int64{appendRow, appendRow})
		serial.FinishLoad()
	}()

	for _, w := range parallelSealWorkers {
		tbl := parSealTable(300)
		func() {
			defer SetBuildWorkers(w)()
			tbl.FinishLoad()
		}()
		// 300 rows at 64/segment: 4 full segments survive the append.
		keep := append([]*Segment(nil), tbl.Segments(0)[:4]...)
		tbl.MaintenanceAppend([][]int64{appendRow, appendRow})
		if tbl.Sealed() {
			t.Fatalf("workers=%d: maintenance append should unseal", w)
		}
		func() {
			defer SetBuildWorkers(w)()
			tbl.FinishLoad()
		}()
		requireSealedIdentical(t, fmt.Sprintf("reseal workers=%d", w), serial, tbl)
		for g, s := range tbl.Segments(0)[:4] {
			if s != keep[g] {
				t.Fatalf("workers=%d: clean prefix segment %d rebuilt instead of reused", w, g)
			}
		}
	}
}

// TestParallelSealNoGoroutineLeaks requires every seal worker to exit
// before FinishLoad returns.
func TestParallelSealNoGoroutineLeaks(t *testing.T) {
	defer SetSegmentRows(64)()
	defer SetSealWorkerCap(64)()
	defer SetBuildWorkers(8)()
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		parSealTable(4100).FinishLoad()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func BenchmarkFinishLoad(b *testing.B) {
	const nRows = 32 * DefaultSegmentRows
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			defer SetBuildWorkers(w)()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tbl := parSealTable(nRows)
				b.StartTimer()
				tbl.FinishLoad()
			}
		})
	}
}
