package storage

import (
	"fmt"
	"math/bits"
	"sort"
)

// The columnar segment layer: after FinishLoad seals a table, every column
// is additionally held as a sequence of fixed-size encoded segments, each
// carrying a min/max zone map. The batch executor's scans read through this
// layer — pruning whole segments whose zone map disproves a predicate and
// decoding the survivors straight into its arena batches — while the flat
// Cols slices remain the random-access store for index builds, the
// sampling-based estimators, and the scalar oracle path.
//
// Encodings are chosen per segment at build time:
//
//   - dictionary: low-NDV segments store the sorted distinct values once
//     and bit-pack an index per row (a constant segment packs zero bits);
//   - frame-of-reference bit-packing: dense ranges store v-Min in the
//     fewest bits that fit the segment's spread;
//   - raw: wide segments alias the column slice directly (zero copy).

// DefaultSegmentRows is the production segment granularity: a multiple of
// the executor's batch size so serial scan chunks never straddle a segment,
// and small enough that one segment's decode scratch stays L1-resident.
const DefaultSegmentRows = 4096

// segmentRows is the build-time segment granularity. Tests shrink it (via
// SetSegmentRows) to exercise multi-segment pruning on tiny fixtures;
// cmd/lpce-bench exposes it as -segment-rows.
var segmentRows = DefaultSegmentRows

// SetSegmentRows overrides the segment granularity for tables sealed after
// the call and returns a function restoring the previous value. It must not
// be called while loads or executions are in flight.
func SetSegmentRows(n int) (restore func()) {
	old := segmentRows
	if n < 1 {
		n = 1
	}
	segmentRows = n
	return func() { segmentRows = old }
}

// SegmentRows reports the current build-time segment granularity.
func SegmentRows() int { return segmentRows }

// SegEncoding identifies how one segment stores its values.
type SegEncoding uint8

const (
	// EncRaw aliases the column slice unencoded.
	EncRaw SegEncoding = iota
	// EncDict stores sorted distinct values plus bit-packed indexes.
	EncDict
	// EncPack stores bit-packed frame-of-reference offsets from Min.
	EncPack
)

func (e SegEncoding) String() string {
	switch e {
	case EncRaw:
		return "raw"
	case EncDict:
		return "dict"
	case EncPack:
		return "pack"
	default:
		return fmt.Sprintf("SegEncoding(%d)", uint8(e))
	}
}

// dictMaxNDV bounds dictionary encoding: beyond this many distinct values a
// segment's dictionary stops paying for itself against plain bit-packing.
const dictMaxNDV = 256

// packMaxBits bounds frame-of-reference encoding: a spread needing more
// bits than this compresses too little to justify the decode work.
const packMaxBits = 32

// Segment is one fixed-size encoded run of a column with its zone map.
// Segments are immutable after construction and safe for concurrent reads.
type Segment struct {
	// Min and Max are the zone map: the smallest and largest value in the
	// segment. Scans prune the whole segment when a predicate cannot hold
	// anywhere in [Min, Max].
	Min, Max int64

	rows   int
	enc    SegEncoding
	raw    []int64  // EncRaw: aliases the sealed column slice
	dict   []int64  // EncDict: sorted distinct values
	packed []uint64 // EncDict codes or EncPack offsets, width bits each
	width  uint     // bits per packed value; 0 encodes a constant segment
}

// Rows reports the number of values in the segment.
func (s *Segment) Rows() int { return s.rows }

// Encoding reports the segment's storage encoding.
func (s *Segment) Encoding() SegEncoding { return s.enc }

// EncodedBits reports the packed bits per value (0 for raw and constant
// segments); tests and the storage benchmark use it to assert compression.
func (s *Segment) EncodedBits() uint {
	if s.enc == EncRaw {
		return 64
	}
	return s.width
}

// Get returns value i. Constant-width arithmetic for every encoding, so
// scattered access (index-scan residual filters, sparse gathers) stays O(1).
func (s *Segment) Get(i int) int64 {
	switch s.enc {
	case EncRaw:
		return s.raw[i]
	case EncDict:
		return s.dict[s.code(i)]
	default:
		return s.Min + int64(s.code(i))
	}
}

// code extracts packed value i (width > 0 may straddle a word boundary).
func (s *Segment) code(i int) uint64 {
	w := s.width
	if w == 0 {
		return 0
	}
	bit := uint(i) * w
	word, off := bit>>6, bit&63
	v := s.packed[word] >> off
	if off+w > 64 {
		v |= s.packed[word+1] << (64 - off)
	}
	return v & (1<<w - 1)
}

// DecodeRange materializes values [lo, hi) of the segment. Raw segments
// return a zero-copy subslice; encoded segments decode into dst (grown as
// needed) and return it. The result is read-only and valid until dst is
// reused.
func (s *Segment) DecodeRange(dst []int64, lo, hi int) []int64 {
	if s.enc == EncRaw {
		return s.raw[lo:hi]
	}
	n := hi - lo
	if cap(dst) < n {
		dst = make([]int64, n)
	}
	dst = dst[:n]
	switch {
	case s.width == 0:
		c := s.Min
		if s.enc == EncDict {
			c = s.dict[0]
		}
		for i := range dst {
			dst[i] = c
		}
	case s.enc == EncDict:
		for i := range dst {
			dst[i] = s.dict[s.code(lo+i)]
		}
	default:
		for i := range dst {
			dst[i] = s.Min + int64(s.code(lo+i))
		}
	}
	return dst
}

// Gather writes Get(int(rids[k])-base) into dst[k*stride] for each k — the
// late-materialization primitive: the executor hands it a selection vector
// of absolute row ids plus the segment's base row, and only the selected
// values are ever decoded. The encoding switch sits outside the loop so
// each case is a tight copy or unpack loop.
func (s *Segment) Gather(dst []int64, stride int, rids []int32, base int) {
	switch {
	case s.enc == EncRaw:
		for k, r := range rids {
			dst[k*stride] = s.raw[int(r)-base]
		}
	case s.width == 0:
		c := s.Min
		if s.enc == EncDict {
			c = s.dict[0]
		}
		for k := range rids {
			dst[k*stride] = c
		}
	case s.enc == EncDict:
		for k, r := range rids {
			dst[k*stride] = s.dict[s.code(int(r)-base)]
		}
	default:
		for k, r := range rids {
			dst[k*stride] = s.Min + int64(s.code(int(r)-base))
		}
	}
}

// buildSegment encodes one run of column values. vals must stay immutable
// for the segment's lifetime (EncRaw aliases it).
func buildSegment(vals []int64) *Segment {
	s := &Segment{rows: len(vals)}
	if len(vals) == 0 {
		s.enc = EncRaw
		return s
	}
	mn, mx := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	s.Min, s.Max = mn, mx
	if mn == mx {
		// Constant segment: zero packed bits, dictionary of one.
		s.enc, s.dict, s.width = EncDict, []int64{mn}, 0
		return s
	}

	// Distinct values up to the dictionary cutoff; one pass, abandoned the
	// moment the segment proves too diverse.
	distinct := make(map[int64]uint64, dictMaxNDV)
	for _, v := range vals {
		if _, ok := distinct[v]; !ok {
			if len(distinct) == dictMaxNDV {
				distinct = nil
				break
			}
			distinct[v] = 0
		}
	}

	spread := uint64(mx) - uint64(mn)
	packBits := uint(bits.Len64(spread))
	if distinct != nil {
		dictBits := uint(bits.Len64(uint64(len(distinct) - 1)))
		// Dictionary wins when its codes are strictly narrower than the
		// frame-of-reference offsets; ties go to pack (no dictionary to
		// chase on decode).
		if dictBits < packBits || packBits > packMaxBits {
			s.enc = EncDict
			s.dict = make([]int64, 0, len(distinct))
			for v := range distinct { //detlint:ignore — sorted immediately below
				s.dict = append(s.dict, v)
			}
			sort.Slice(s.dict, func(i, j int) bool { return s.dict[i] < s.dict[j] })
			for i, v := range s.dict {
				distinct[v] = uint64(i)
			}
			s.width = dictBits
			s.packed = packAll(vals, s.width, func(v int64) uint64 { return distinct[v] })
			return s
		}
	}
	if packBits <= packMaxBits {
		s.enc, s.width = EncPack, packBits
		s.packed = packAll(vals, s.width, func(v int64) uint64 { return uint64(v) - uint64(mn) })
		return s
	}
	s.enc, s.raw = EncRaw, vals
	return s
}

// packAll bit-packs code(v) for every value at the given width.
func packAll(vals []int64, width uint, code func(int64) uint64) []uint64 {
	if width == 0 {
		return nil
	}
	packed := make([]uint64, (uint(len(vals))*width+63)/64+1)
	for i, v := range vals {
		c := code(v)
		bit := uint(i) * width
		word, off := bit>>6, bit&63
		packed[word] |= c << off
		if off+width > 64 {
			packed[word+1] |= c >> (64 - off)
		}
	}
	return packed
}
