// Package storage implements the in-memory column store that backs the
// execution engine: tables hold int64 columns (string attributes are
// dictionary-encoded to integers before load, as the paper does for
// categorical columns), with hash and ordered indexes built per column on
// demand for index scans, index nested-loop joins, and the sampling-based
// estimators.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/lpce-db/lpce/internal/catalog"
)

// ErrSealed is returned (wrapped with the table name) by AppendRows once
// FinishLoad has sealed a table: direct appends would race lazy index
// construction and the encoded segment layer. DML against a sealed table
// must go through maintain.AppendRows, which uses MaintenanceAppend to
// invalidate exactly the affected state.
var ErrSealed = errors.New("table is sealed; route appends through internal/maintain")

// Table holds one relation's data column-major. Reads (including lazy
// index construction) are safe for concurrent use; AppendRows,
// MaintenanceAppend, and FinishLoad are not and must be externally
// synchronized against readers.
type Table struct {
	Meta *catalog.Table
	Cols [][]int64

	mu      sync.Mutex // guards lazy index construction
	hashIdx map[int]*HashIndex
	ordIdx  map[int]*OrderedIndex

	// Segment state (see segment.go). sealed flips on FinishLoad and off
	// on MaintenanceAppend; scans only trust segments while sealed.
	sealed  bool
	segRows int          // segment granularity this table was sealed with
	segs    [][]*Segment // per column position, nil until first seal
}

// NewTable allocates a table for the given catalog entry with numRows rows.
func NewTable(meta *catalog.Table, numRows int) *Table {
	t := &Table{
		Meta:    meta,
		Cols:    make([][]int64, len(meta.Columns)),
		hashIdx: make(map[int]*HashIndex),
		ordIdx:  make(map[int]*OrderedIndex),
	}
	for i := range t.Cols {
		t.Cols[i] = make([]int64, numRows)
	}
	return t
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return len(t.Cols[0])
}

// Col returns the column at position pos.
func (t *Table) Col(pos int) []int64 { return t.Cols[pos] }

// ColByName returns the column data for the named column.
func (t *Table) ColByName(name string) []int64 {
	c := t.Meta.Column(name)
	if c == nil {
		panic(fmt.Sprintf("storage: table %s has no column %s", t.Meta.Name, name))
	}
	return t.Cols[c.Pos]
}

// AppendRows adds rows to the table during the initial load (each row must
// have one value per column), invalidating any indexes built so far. Once
// FinishLoad has sealed the table it returns an error wrapping ErrSealed;
// post-load DML must go through internal/maintain instead, which pairs the
// append with segment invalidation and a stats refresh.
func (t *Table) AppendRows(rows [][]int64) error {
	if t.sealed {
		return fmt.Errorf("storage: table %s: %w", t.Meta.Name, ErrSealed)
	}
	t.appendRows(rows)
	return nil
}

// MaintenanceAppend adds rows to a table that may already be sealed. It
// unseals the table (scans fall back to the raw path until the next
// FinishLoad) and drops only the segment tail the new rows dirty, so
// resealing re-encodes the affected segments instead of the whole table.
// Callers outside internal/maintain should use maintain.AppendRows.
func (t *Table) MaintenanceAppend(rows [][]int64) {
	oldRows := t.NumRows()
	t.appendRows(rows)
	if t.sealed && t.segRows > 0 {
		// Segments fully below the old row count are still exact; the
		// ragged tail segment (if any) now has stale rows/zone maps.
		valid := oldRows / t.segRows
		for c := range t.segs {
			if valid < len(t.segs[c]) {
				t.segs[c] = t.segs[c][:valid]
			}
		}
	}
	t.sealed = false
}

func (t *Table) appendRows(rows [][]int64) {
	for _, row := range rows {
		if len(row) != len(t.Cols) {
			panic(fmt.Sprintf("storage: row width %d, table %s has %d columns",
				len(row), t.Meta.Name, len(t.Cols)))
		}
		for c, v := range row {
			t.Cols[c] = append(t.Cols[c], v)
		}
	}
	// indexes are stale now; drop them so the next access rebuilds
	t.hashIdx = make(map[int]*HashIndex)
	t.ordIdx = make(map[int]*OrderedIndex)
}

// FinishLoad computes per-column statistics (min, max, NDV) into the
// catalog, then seals the table and builds its encoded column segments.
// Call once after populating the columns; maintain.RefreshStats calls it
// again after DML, which rebuilds only the segments the DML invalidated.
// Both passes fan out across SetBuildWorkers workers (clamped to the core
// count), byte-equal to serial sealing for any worker count; see parallel.go.
func (t *Table) FinishLoad() {
	workers := buildWorkers
	if workers > sealWorkerCap {
		workers = sealWorkerCap
	}
	runSealJobs(workers, len(t.Meta.Columns), t.statsColumn)
	t.buildSegments(workers)
	t.sealed = true
}

// statsColumn computes the catalog statistics for column i — each column's
// stats are independent and exact (order-insensitive), so FinishLoad fans
// the columns across workers.
func (t *Table) statsColumn(i int) {
	meta := t.Meta.Columns[i]
	col := t.Cols[i]
	if len(col) == 0 {
		meta.Min, meta.Max, meta.NDV = 0, 0, 0
		return
	}
	mn, mx := col[0], col[0]
	distinct := make(map[int64]struct{}, 1024)
	for _, v := range col {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		distinct[v] = struct{}{}
	}
	meta.Min, meta.Max, meta.NDV = mn, mx, len(distinct)
}

// buildSegments (re)encodes the segment layer. Valid segments from a prior
// seal at the same granularity are reused; appends since then only cost the
// dirtied tail. The planning pass below is cheap and serial; the encoding
// work — one job per (column, segment) that cannot be reused — fans out
// across the worker pool, every job writing only its own t.segs[c][g] slot,
// so the sealed layout is byte-equal to a serial build.
func (t *Table) buildSegments(workers int) {
	segRows := segmentRows
	if t.segs == nil || t.segRows != segRows {
		t.segs = make([][]*Segment, len(t.Cols)) // drops any stale prefix
	}
	t.segRows = segRows
	type sealJob struct{ col, seg int }
	var jobs []sealJob
	for c, col := range t.Cols {
		nSegs := (len(col) + segRows - 1) / segRows
		prefix := t.segs[c]
		segs := make([]*Segment, nSegs)
		for g := 0; g < nSegs; g++ {
			lo := g * segRows
			hi := min(lo+segRows, len(col))
			if g < len(prefix) && prefix[g] != nil && prefix[g].rows == hi-lo {
				segs[g] = prefix[g] // still exact from the prior seal
				continue
			}
			jobs = append(jobs, sealJob{c, g})
		}
		t.segs[c] = segs
	}
	runSealJobs(workers, len(jobs), func(j int) {
		c, g := jobs[j].col, jobs[j].seg
		col := t.Cols[c]
		lo := g * segRows
		hi := min(lo+segRows, len(col))
		t.segs[c][g] = buildSegment(col[lo:hi])
	})
}

// Sealed reports whether FinishLoad has run with no appends since: the
// state in which segments and zone maps are trustworthy.
func (t *Table) Sealed() bool { return t.sealed }

// SegRows returns the segment granularity the table was sealed with, or 0
// if it has never been sealed.
func (t *Table) SegRows() int { return t.segRows }

// Segments returns the encoded segments for column pos, or nil if the
// table is not sealed (scans must then fall back to the raw columns).
func (t *Table) Segments(pos int) []*Segment {
	if !t.sealed {
		return nil
	}
	return t.segs[pos]
}

// HashIndex maps a column value to the row IDs holding it.
type HashIndex struct {
	Rows map[int64][]int32
}

// Lookup returns the row IDs with the given value.
func (ix *HashIndex) Lookup(v int64) []int32 { return ix.Rows[v] }

// HashIndex returns (building if necessary) the hash index on column pos.
func (t *Table) HashIndex(pos int) *HashIndex {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ix, ok := t.hashIdx[pos]; ok {
		return ix
	}
	ix := &HashIndex{Rows: make(map[int64][]int32, t.NumRows())}
	for r, v := range t.Cols[pos] {
		ix.Rows[v] = append(ix.Rows[v], int32(r))
	}
	t.hashIdx[pos] = ix
	return ix
}

// OrderedIndex holds (value, row) pairs sorted by value for range scans.
type OrderedIndex struct {
	Vals []int64
	Rids []int32
}

// OrderedIndex returns (building if necessary) the ordered index on column
// pos.
func (t *Table) OrderedIndex(pos int) *OrderedIndex {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ix, ok := t.ordIdx[pos]; ok {
		return ix
	}
	n := t.NumRows()
	ix := &OrderedIndex{Vals: make([]int64, n), Rids: make([]int32, n)}
	copy(ix.Vals, t.Cols[pos])
	for i := range ix.Rids {
		ix.Rids[i] = int32(i)
	}
	sort.Sort(byVal{ix})
	t.ordIdx[pos] = ix
	return ix
}

// Range returns the row IDs whose value v satisfies lo <= v <= hi, using
// binary search over the ordered index.
func (ix *OrderedIndex) Range(lo, hi int64) []int32 {
	start := sort.Search(len(ix.Vals), func(i int) bool { return ix.Vals[i] >= lo })
	end := sort.Search(len(ix.Vals), func(i int) bool { return ix.Vals[i] > hi })
	if start >= end {
		return nil
	}
	return ix.Rids[start:end]
}

type byVal struct{ ix *OrderedIndex }

func (b byVal) Len() int           { return len(b.ix.Vals) }
func (b byVal) Less(i, j int) bool { return b.ix.Vals[i] < b.ix.Vals[j] }
func (b byVal) Swap(i, j int) {
	b.ix.Vals[i], b.ix.Vals[j] = b.ix.Vals[j], b.ix.Vals[i]
	b.ix.Rids[i], b.ix.Rids[j] = b.ix.Rids[j], b.ix.Rids[i]
}

// Database is a set of loaded tables plus their schema.
type Database struct {
	Schema *catalog.Schema
	Tables []*Table // indexed by catalog table ID
}

// NewDatabase allocates a database shell for the schema; tables are filled
// by the data generator.
func NewDatabase(schema *catalog.Schema) *Database {
	return &Database{Schema: schema, Tables: make([]*Table, len(schema.Tables))}
}

// Table returns the storage table for the catalog table.
func (db *Database) Table(meta *catalog.Table) *Table { return db.Tables[meta.ID] }

// TableByName returns the storage table with the given name, or nil.
func (db *Database) TableByName(name string) *Table {
	meta := db.Schema.Table(name)
	if meta == nil {
		return nil
	}
	return db.Tables[meta.ID]
}

// TotalRows returns the sum of row counts across all tables.
func (db *Database) TotalRows() int {
	n := 0
	for _, t := range db.Tables {
		if t != nil {
			n += t.NumRows()
		}
	}
	return n
}
