// Package storage implements the in-memory column store that backs the
// execution engine: tables hold int64 columns (string attributes are
// dictionary-encoded to integers before load, as the paper does for
// categorical columns), with hash and ordered indexes built per column on
// demand for index scans, index nested-loop joins, and the sampling-based
// estimators.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"github.com/lpce-db/lpce/internal/catalog"
)

// Table holds one relation's data column-major. Reads (including lazy
// index construction) are safe for concurrent use; AppendRows is not and
// must be externally synchronized against readers.
type Table struct {
	Meta *catalog.Table
	Cols [][]int64

	mu      sync.Mutex // guards lazy index construction
	hashIdx map[int]*HashIndex
	ordIdx  map[int]*OrderedIndex
}

// NewTable allocates a table for the given catalog entry with numRows rows.
func NewTable(meta *catalog.Table, numRows int) *Table {
	t := &Table{
		Meta:    meta,
		Cols:    make([][]int64, len(meta.Columns)),
		hashIdx: make(map[int]*HashIndex),
		ordIdx:  make(map[int]*OrderedIndex),
	}
	for i := range t.Cols {
		t.Cols[i] = make([]int64, numRows)
	}
	return t
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return len(t.Cols[0])
}

// Col returns the column at position pos.
func (t *Table) Col(pos int) []int64 { return t.Cols[pos] }

// ColByName returns the column data for the named column.
func (t *Table) ColByName(name string) []int64 {
	c := t.Meta.Column(name)
	if c == nil {
		panic(fmt.Sprintf("storage: table %s has no column %s", t.Meta.Name, name))
	}
	return t.Cols[c.Pos]
}

// AppendRows adds rows to the table (each row must have one value per
// column), invalidating any indexes built so far. Callers should re-run
// FinishLoad (and re-ANALYZE statistics) after a batch of appends — the
// "handling data updates" path the paper defers to future work.
func (t *Table) AppendRows(rows [][]int64) {
	for _, row := range rows {
		if len(row) != len(t.Cols) {
			panic(fmt.Sprintf("storage: row width %d, table %s has %d columns",
				len(row), t.Meta.Name, len(t.Cols)))
		}
		for c, v := range row {
			t.Cols[c] = append(t.Cols[c], v)
		}
	}
	// indexes are stale now; drop them so the next access rebuilds
	t.hashIdx = make(map[int]*HashIndex)
	t.ordIdx = make(map[int]*OrderedIndex)
}

// FinishLoad computes per-column statistics (min, max, NDV) into the
// catalog. Call once after populating the columns.
func (t *Table) FinishLoad() {
	for i, meta := range t.Meta.Columns {
		col := t.Cols[i]
		if len(col) == 0 {
			meta.Min, meta.Max, meta.NDV = 0, 0, 0
			continue
		}
		mn, mx := col[0], col[0]
		distinct := make(map[int64]struct{}, 1024)
		for _, v := range col {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
			distinct[v] = struct{}{}
		}
		meta.Min, meta.Max, meta.NDV = mn, mx, len(distinct)
	}
}

// HashIndex maps a column value to the row IDs holding it.
type HashIndex struct {
	Rows map[int64][]int32
}

// Lookup returns the row IDs with the given value.
func (ix *HashIndex) Lookup(v int64) []int32 { return ix.Rows[v] }

// HashIndex returns (building if necessary) the hash index on column pos.
func (t *Table) HashIndex(pos int) *HashIndex {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ix, ok := t.hashIdx[pos]; ok {
		return ix
	}
	ix := &HashIndex{Rows: make(map[int64][]int32, t.NumRows())}
	for r, v := range t.Cols[pos] {
		ix.Rows[v] = append(ix.Rows[v], int32(r))
	}
	t.hashIdx[pos] = ix
	return ix
}

// OrderedIndex holds (value, row) pairs sorted by value for range scans.
type OrderedIndex struct {
	Vals []int64
	Rids []int32
}

// OrderedIndex returns (building if necessary) the ordered index on column
// pos.
func (t *Table) OrderedIndex(pos int) *OrderedIndex {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ix, ok := t.ordIdx[pos]; ok {
		return ix
	}
	n := t.NumRows()
	ix := &OrderedIndex{Vals: make([]int64, n), Rids: make([]int32, n)}
	copy(ix.Vals, t.Cols[pos])
	for i := range ix.Rids {
		ix.Rids[i] = int32(i)
	}
	sort.Sort(byVal{ix})
	t.ordIdx[pos] = ix
	return ix
}

// Range returns the row IDs whose value v satisfies lo <= v <= hi, using
// binary search over the ordered index.
func (ix *OrderedIndex) Range(lo, hi int64) []int32 {
	start := sort.Search(len(ix.Vals), func(i int) bool { return ix.Vals[i] >= lo })
	end := sort.Search(len(ix.Vals), func(i int) bool { return ix.Vals[i] > hi })
	if start >= end {
		return nil
	}
	return ix.Rids[start:end]
}

type byVal struct{ ix *OrderedIndex }

func (b byVal) Len() int           { return len(b.ix.Vals) }
func (b byVal) Less(i, j int) bool { return b.ix.Vals[i] < b.ix.Vals[j] }
func (b byVal) Swap(i, j int) {
	b.ix.Vals[i], b.ix.Vals[j] = b.ix.Vals[j], b.ix.Vals[i]
	b.ix.Rids[i], b.ix.Rids[j] = b.ix.Rids[j], b.ix.Rids[i]
}

// Database is a set of loaded tables plus their schema.
type Database struct {
	Schema *catalog.Schema
	Tables []*Table // indexed by catalog table ID
}

// NewDatabase allocates a database shell for the schema; tables are filled
// by the data generator.
func NewDatabase(schema *catalog.Schema) *Database {
	return &Database{Schema: schema, Tables: make([]*Table, len(schema.Tables))}
}

// Table returns the storage table for the catalog table.
func (db *Database) Table(meta *catalog.Table) *Table { return db.Tables[meta.ID] }

// TableByName returns the storage table with the given name, or nil.
func (db *Database) TableByName(name string) *Table {
	meta := db.Schema.Table(name)
	if meta == nil {
		return nil
	}
	return db.Tables[meta.ID]
}

// TotalRows returns the sum of row counts across all tables.
func (db *Database) TotalRows() int {
	n := 0
	for _, t := range db.Tables {
		if t != nil {
			n += t.NumRows()
		}
	}
	return n
}
