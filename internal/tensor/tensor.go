// Package tensor provides the dense float64 vector and matrix kernels that
// back the autodiff engine and the learned estimators. Everything is plain
// Go on contiguous slices: at the model sizes used by LPCE (hidden widths of
// 32–1024, plan trees with at most a few dozen nodes) scalar loops are more
// than fast enough and keep the package dependency-free.
package tensor

import (
	"fmt"
	"math"
)

// Vec is a dense column vector.
type Vec []float64

// NewVec returns a zeroed vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a deep copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Zero sets every element of v to zero.
func (v Vec) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every element of v to x.
func (v Vec) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// Dot returns the inner product of v and w. The vectors must have equal
// length.
func (v Vec) Dot(w Vec) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: dot length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Axpy computes v += alpha*w in place.
func (v Vec) Axpy(alpha float64, w Vec) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: axpy length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range w {
		v[i] += alpha * w[i]
	}
}

// Add computes v += w in place.
func (v Vec) Add(w Vec) { v.Axpy(1, w) }

// Scale multiplies every element of v by alpha in place.
func (v Vec) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of v.
func (v Vec) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// MaxAbs returns the largest absolute element of v, or 0 for an empty vector.
func (v Vec) MaxAbs() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       Vec // len == Rows*Cols, row-major
}

// NewMat returns a zeroed Rows x Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid matrix shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: NewVec(rows * cols)}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Mat) Row(i int) Vec { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	return &Mat{Rows: m.Rows, Cols: m.Cols, Data: m.Data.Clone()}
}

// Zero sets every element of m to zero.
func (m *Mat) Zero() { m.Data.Zero() }

// MatVec computes out = m * x. out must have length m.Rows and x length
// m.Cols; out is overwritten.
func (m *Mat) MatVec(x, out Vec) {
	if len(x) != m.Cols || len(out) != m.Rows {
		panic(fmt.Sprintf("tensor: matvec shape mismatch: %dx%d * %d -> %d",
			m.Rows, m.Cols, len(x), len(out)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, xj := range x {
			s += row[j] * xj
		}
		out[i] = s
	}
}

// MatVecT computes out += mᵀ * x (the transpose product), used by the
// backward pass of a linear layer. x must have length m.Rows and out length
// m.Cols.
func (m *Mat) MatVecT(x, out Vec) {
	if len(x) != m.Rows || len(out) != m.Cols {
		panic(fmt.Sprintf("tensor: matvecT shape mismatch: (%dx%d)ᵀ * %d -> %d",
			m.Rows, m.Cols, len(x), len(out)))
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range row {
			out[j] += xi * row[j]
		}
	}
}

// AddOuter computes m += alpha * (x ⊗ y), i.e. m[i][j] += alpha*x[i]*y[j].
// Used to accumulate weight gradients.
func (m *Mat) AddOuter(alpha float64, x, y Vec) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic(fmt.Sprintf("tensor: outer shape mismatch: %d ⊗ %d into %dx%d",
			len(x), len(y), m.Rows, m.Cols))
	}
	for i := range x {
		xi := alpha * x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range y {
			row[j] += xi * y[j]
		}
	}
}
