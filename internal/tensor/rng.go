package tensor

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with the initialization helpers the NN layers need.
// All randomness in the repository flows through explicitly seeded RNGs so
// every experiment is reproducible.
type RNG struct{ *rand.Rand }

// NewRNG returns a deterministic RNG for the given seed.
func NewRNG(seed int64) *RNG { return &RNG{rand.New(rand.NewSource(seed))} }

// FillUniform fills v with samples from U(lo, hi).
func (r *RNG) FillUniform(v Vec, lo, hi float64) {
	for i := range v {
		v[i] = lo + (hi-lo)*r.Float64()
	}
}

// FillNormal fills v with samples from N(mean, std²).
func (r *RNG) FillNormal(v Vec, mean, std float64) {
	for i := range v {
		v[i] = mean + std*r.NormFloat64()
	}
}

// Xavier initializes a weight matrix with the Glorot-uniform scheme, the
// default for the fully-connected modules in LPCE.
func (r *RNG) Xavier(m *Mat) {
	bound := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	r.FillUniform(m.Data, -bound, bound)
}
