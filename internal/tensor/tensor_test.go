package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestVecDot(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, 5, 6}
	if got := v.Dot(w); !almostEq(got, 32) {
		t.Fatalf("dot = %v, want 32", got)
	}
}

func TestVecDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vec{1}.Dot(Vec{1, 2})
}

func TestVecAxpy(t *testing.T) {
	v := Vec{1, 2}
	v.Axpy(2, Vec{10, 20})
	if v[0] != 21 || v[1] != 42 {
		t.Fatalf("axpy = %v", v)
	}
}

func TestVecScaleZeroFill(t *testing.T) {
	v := Vec{1, 2, 3}
	v.Scale(3)
	if v[2] != 9 {
		t.Fatalf("scale = %v", v)
	}
	v.Fill(7)
	if v[0] != 7 || v[1] != 7 {
		t.Fatalf("fill = %v", v)
	}
	v.Zero()
	if v.Norm2() != 0 {
		t.Fatalf("zero = %v", v)
	}
}

func TestVecCloneIndependent(t *testing.T) {
	v := Vec{1, 2}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestVecMaxAbs(t *testing.T) {
	if got := (Vec{-5, 3, 4}).MaxAbs(); got != 5 {
		t.Fatalf("maxabs = %v", got)
	}
	if got := (Vec{}).MaxAbs(); got != 0 {
		t.Fatalf("maxabs empty = %v", got)
	}
}

func TestMatVec(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.Data, Vec{1, 2, 3, 4, 5, 6})
	out := NewVec(2)
	m.MatVec(Vec{1, 1, 1}, out)
	if !almostEq(out[0], 6) || !almostEq(out[1], 15) {
		t.Fatalf("matvec = %v", out)
	}
}

func TestMatVecT(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.Data, Vec{1, 2, 3, 4, 5, 6})
	out := NewVec(3)
	m.MatVecT(Vec{1, 2}, out)
	// mᵀ * [1,2] = [1+8, 2+10, 3+12]
	want := Vec{9, 12, 15}
	for i := range want {
		if !almostEq(out[i], want[i]) {
			t.Fatalf("matvecT = %v, want %v", out, want)
		}
	}
}

func TestMatAddOuter(t *testing.T) {
	m := NewMat(2, 2)
	m.AddOuter(2, Vec{1, 2}, Vec{3, 4})
	want := Vec{6, 8, 12, 16}
	for i := range want {
		if !almostEq(m.Data[i], want[i]) {
			t.Fatalf("outer = %v, want %v", m.Data, want)
		}
	}
}

func TestMatAtSetRow(t *testing.T) {
	m := NewMat(3, 2)
	m.Set(2, 1, 42)
	if m.At(2, 1) != 42 {
		t.Fatal("At/Set roundtrip failed")
	}
	if m.Row(2)[1] != 42 {
		t.Fatal("Row does not alias storage")
	}
	m2 := m.Clone()
	m2.Set(2, 1, 0)
	if m.At(2, 1) != 42 {
		t.Fatal("Clone aliases original")
	}
	m.Zero()
	if m.At(2, 1) != 0 {
		t.Fatal("Zero failed")
	}
}

// Property: MatVecT is the true transpose of MatVec, i.e. ⟨Ax, y⟩ == ⟨x, Aᵀy⟩.
func TestMatVecTransposeAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(seed)
		rows, cols := 1+r.Intn(8), 1+r.Intn(8)
		m := NewMat(rows, cols)
		r.FillNormal(m.Data, 0, 1)
		x, y := NewVec(cols), NewVec(rows)
		r.FillNormal(x, 0, 1)
		r.FillNormal(y, 0, 1)
		ax := NewVec(rows)
		m.MatVec(x, ax)
		aty := NewVec(cols)
		m.MatVecT(y, aty)
		return math.Abs(ax.Dot(y)-x.Dot(aty)) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AddOuter(a, x, y) then MatVec(z) equals a*x*(y·z) for rank-1
// matrices.
func TestAddOuterRankOneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(seed)
		rows, cols := 1+r.Intn(6), 1+r.Intn(6)
		x, y, z := NewVec(rows), NewVec(cols), NewVec(cols)
		r.FillNormal(x, 0, 1)
		r.FillNormal(y, 0, 1)
		r.FillNormal(z, 0, 1)
		m := NewMat(rows, cols)
		m.AddOuter(1.5, x, y)
		out := NewVec(rows)
		m.MatVec(z, out)
		dot := y.Dot(z)
		for i := range out {
			if math.Abs(out[i]-1.5*x[i]*dot) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewVec(16), NewVec(16)
	NewRNG(7).FillNormal(a, 0, 1)
	NewRNG(7).FillNormal(b, 0, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should give identical samples")
		}
	}
}

func TestXavierBound(t *testing.T) {
	m := NewMat(10, 30)
	NewRNG(1).Xavier(m)
	bound := math.Sqrt(6.0 / 40.0)
	for _, x := range m.Data {
		if math.Abs(x) > bound {
			t.Fatalf("xavier sample %v outside bound %v", x, bound)
		}
	}
	if m.Data.MaxAbs() == 0 {
		t.Fatal("xavier left matrix zeroed")
	}
}
