// Package autodiff implements a small tape-based reverse-mode automatic
// differentiation engine over dense vectors. It is the substrate for every
// learned estimator in the repository (LPCE-I, LPCE-R, MSCN, TLSTM,
// Flow-Loss): each forward pass builds a tape of recorded operations, and
// Backward replays the tape in reverse, accumulating gradients into the
// activations and, through the nn layers, into model parameters.
//
// The engine deliberately supports only what tree-structured recurrent
// estimators need — vector activations, matrix-vector products, elementwise
// arithmetic, the sigmoid/tanh/ReLU activations, concatenation, and scalar
// reductions — which keeps it easy to audit and fast at LPCE's model sizes.
package autodiff

import (
	"fmt"
	"math"

	"github.com/lpce-db/lpce/internal/tensor"
)

// Node is a vector activation with its gradient. Nodes are created by a Tape
// and must not be shared across tapes.
type Node struct {
	Data tensor.Vec
	Grad tensor.Vec
}

// Len returns the vector length of the node.
func (n *Node) Len() int { return len(n.Data) }

// Scalar returns the single element of a length-1 node.
func (n *Node) Scalar() float64 {
	if len(n.Data) != 1 {
		panic(fmt.Sprintf("autodiff: Scalar on length-%d node", len(n.Data)))
	}
	return n.Data[0]
}

// Tape records the operations of one forward pass. Calling Backward runs the
// recorded closures in reverse order. A Tape is not safe for concurrent use;
// training goroutines each own their tape.
type Tape struct {
	steps []func()
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// NewNode allocates a fresh node of length n with zeroed data and gradient.
func (t *Tape) NewNode(n int) *Node {
	return &Node{Data: tensor.NewVec(n), Grad: tensor.NewVec(n)}
}

// Input creates a leaf node holding a copy of data. Inputs receive gradients
// but have no backward step of their own.
func (t *Tape) Input(data tensor.Vec) *Node {
	n := t.NewNode(len(data))
	copy(n.Data, data)
	return n
}

// Const creates a leaf node whose gradient is ignored.
func (t *Tape) Const(data tensor.Vec) *Node { return t.Input(data) }

func (t *Tape) record(step func()) { t.steps = append(t.steps, step) }

// Record appends a custom backward step to the tape. Layer packages (nn,
// treenn) use it to implement fused operations such as linear layers whose
// gradients flow into both activations and parameters.
func (t *Tape) Record(step func()) { t.record(step) }

// Backward seeds the gradient of the scalar output node with 1 and replays
// the tape in reverse.
func (t *Tape) Backward(out *Node) {
	if len(out.Data) != 1 {
		panic("autodiff: Backward requires a scalar output node")
	}
	out.Grad[0] = 1
	t.BackwardFrom()
}

// BackwardFrom replays the tape in reverse without seeding any gradient.
// Callers that accumulate losses into several scalar nodes can seed each
// node's Grad manually and then invoke BackwardFrom once.
func (t *Tape) BackwardFrom() {
	for i := len(t.steps) - 1; i >= 0; i-- {
		t.steps[i]()
	}
}

// Steps reports how many operations the tape recorded, used by tests to
// assert that incremental refinement reuses prior embeddings.
func (t *Tape) Steps() int { return len(t.steps) }

// Add returns a + b.
func (t *Tape) Add(a, b *Node) *Node {
	checkLen("Add", a, b)
	out := t.NewNode(a.Len())
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	t.record(func() {
		a.Grad.Add(out.Grad)
		b.Grad.Add(out.Grad)
	})
	return out
}

// Sub returns a - b.
func (t *Tape) Sub(a, b *Node) *Node {
	checkLen("Sub", a, b)
	out := t.NewNode(a.Len())
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	t.record(func() {
		a.Grad.Add(out.Grad)
		b.Grad.Axpy(-1, out.Grad)
	})
	return out
}

// Mul returns the elementwise (Hadamard) product a ⊙ b.
func (t *Tape) Mul(a, b *Node) *Node {
	checkLen("Mul", a, b)
	out := t.NewNode(a.Len())
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	t.record(func() {
		for i := range out.Grad {
			a.Grad[i] += out.Grad[i] * b.Data[i]
			b.Grad[i] += out.Grad[i] * a.Data[i]
		}
	})
	return out
}

// Scale returns alpha * a.
func (t *Tape) Scale(alpha float64, a *Node) *Node {
	out := t.NewNode(a.Len())
	for i := range out.Data {
		out.Data[i] = alpha * a.Data[i]
	}
	t.record(func() { a.Grad.Axpy(alpha, out.Grad) })
	return out
}

// AddScalar returns a + c applied elementwise.
func (t *Tape) AddScalar(c float64, a *Node) *Node {
	out := t.NewNode(a.Len())
	for i := range out.Data {
		out.Data[i] = a.Data[i] + c
	}
	t.record(func() { a.Grad.Add(out.Grad) })
	return out
}

// OneMinus returns 1 - a elementwise, the gate complement used by SRU and
// LSTM cells.
func (t *Tape) OneMinus(a *Node) *Node {
	out := t.NewNode(a.Len())
	for i := range out.Data {
		out.Data[i] = 1 - a.Data[i]
	}
	t.record(func() { a.Grad.Axpy(-1, out.Grad) })
	return out
}

// Sigmoid returns the logistic function applied elementwise.
func (t *Tape) Sigmoid(a *Node) *Node {
	out := t.NewNode(a.Len())
	for i := range out.Data {
		out.Data[i] = 1 / (1 + math.Exp(-a.Data[i]))
	}
	t.record(func() {
		for i := range out.Grad {
			a.Grad[i] += out.Grad[i] * out.Data[i] * (1 - out.Data[i])
		}
	})
	return out
}

// Tanh returns tanh applied elementwise.
func (t *Tape) Tanh(a *Node) *Node {
	out := t.NewNode(a.Len())
	for i := range out.Data {
		out.Data[i] = math.Tanh(a.Data[i])
	}
	t.record(func() {
		for i := range out.Grad {
			a.Grad[i] += out.Grad[i] * (1 - out.Data[i]*out.Data[i])
		}
	})
	return out
}

// ReLU returns max(0, a) applied elementwise.
func (t *Tape) ReLU(a *Node) *Node {
	out := t.NewNode(a.Len())
	for i := range out.Data {
		if a.Data[i] > 0 {
			out.Data[i] = a.Data[i]
		}
	}
	t.record(func() {
		for i := range out.Grad {
			if a.Data[i] > 0 {
				a.Grad[i] += out.Grad[i]
			}
		}
	})
	return out
}

// Concat returns the concatenation of the inputs in order.
func (t *Tape) Concat(parts ...*Node) *Node {
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	out := t.NewNode(total)
	off := 0
	for _, p := range parts {
		copy(out.Data[off:off+p.Len()], p.Data)
		off += p.Len()
	}
	t.record(func() {
		off := 0
		for _, p := range parts {
			p.Grad.Add(out.Grad[off : off+len(p.Grad)])
			off += len(p.Grad)
		}
	})
	return out
}

// Mean returns the elementwise mean of the inputs, which must share a
// length. It implements the average pooling used by MSCN's set modules.
func (t *Tape) Mean(parts []*Node) *Node {
	if len(parts) == 0 {
		panic("autodiff: Mean of no nodes")
	}
	out := t.NewNode(parts[0].Len())
	inv := 1 / float64(len(parts))
	for _, p := range parts {
		checkLen("Mean", parts[0], p)
		out.Data.Axpy(inv, p.Data)
	}
	t.record(func() {
		for _, p := range parts {
			p.Grad.Axpy(inv, out.Grad)
		}
	})
	return out
}

// Sum returns the scalar sum of the elements of a.
func (t *Tape) Sum(a *Node) *Node {
	out := t.NewNode(1)
	for _, x := range a.Data {
		out.Data[0] += x
	}
	t.record(func() {
		for i := range a.Grad {
			a.Grad[i] += out.Grad[0]
		}
	})
	return out
}

// AbsDiffSum returns Σ|a_i - b_i|, the L1 distance used by the knowledge
// distillation hint loss (Eq. 4 of the paper). The subgradient at zero is 0.
func (t *Tape) AbsDiffSum(a, b *Node) *Node {
	checkLen("AbsDiffSum", a, b)
	out := t.NewNode(1)
	for i := range a.Data {
		out.Data[0] += math.Abs(a.Data[i] - b.Data[i])
	}
	t.record(func() {
		g := out.Grad[0]
		for i := range a.Data {
			switch d := a.Data[i] - b.Data[i]; {
			case d > 0:
				a.Grad[i] += g
				b.Grad[i] -= g
			case d < 0:
				a.Grad[i] -= g
				b.Grad[i] += g
			}
		}
	})
	return out
}

func checkLen(op string, a, b *Node) {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("autodiff: %s length mismatch %d vs %d", op, len(a.Data), len(b.Data)))
	}
}
