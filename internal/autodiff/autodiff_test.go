package autodiff

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/lpce-db/lpce/internal/tensor"
)

// numGrad estimates d f / d x[i] by central differences, where f rebuilds
// the computation from scratch on fresh tapes.
func numGrad(f func(x tensor.Vec) float64, x tensor.Vec, i int) float64 {
	const h = 1e-6
	xp := x.Clone()
	xp[i] += h
	xm := x.Clone()
	xm[i] -= h
	return (f(xp) - f(xm)) / (2 * h)
}

// checkGrad verifies the analytic gradient of a scalar-valued computation
// against central differences at every input coordinate.
func checkGrad(t *testing.T, name string, build func(tp *Tape, x *Node) *Node, x tensor.Vec) {
	t.Helper()
	tp := NewTape()
	in := tp.Input(x)
	out := build(tp, in)
	tp.Backward(out)
	f := func(v tensor.Vec) float64 {
		tp2 := NewTape()
		return build(tp2, tp2.Input(v)).Scalar()
	}
	for i := range x {
		want := numGrad(f, x, i)
		got := in.Grad[i]
		if math.Abs(want-got) > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("%s: grad[%d] = %v, numeric %v", name, i, got, want)
		}
	}
}

func TestGradElementwiseChain(t *testing.T) {
	x := tensor.Vec{0.3, -0.7, 1.2}
	checkGrad(t, "sigmoid-sum", func(tp *Tape, in *Node) *Node {
		return tp.Sum(tp.Sigmoid(in))
	}, x)
	checkGrad(t, "tanh-sum", func(tp *Tape, in *Node) *Node {
		return tp.Sum(tp.Tanh(in))
	}, x)
	checkGrad(t, "relu-sum", func(tp *Tape, in *Node) *Node {
		return tp.Sum(tp.ReLU(in))
	}, x)
	checkGrad(t, "scale-addscalar", func(tp *Tape, in *Node) *Node {
		return tp.Sum(tp.AddScalar(3, tp.Scale(-2.5, in)))
	}, x)
}

func TestGradMulAddSub(t *testing.T) {
	x := tensor.Vec{0.5, -1.5, 2.0, 0.1}
	checkGrad(t, "mul-self-combination", func(tp *Tape, in *Node) *Node {
		a := tp.Sigmoid(in)
		b := tp.Tanh(in)
		return tp.Sum(tp.Sub(tp.Mul(a, b), tp.Add(a, tp.OneMinus(b))))
	}, x)
}

func TestGradConcatMean(t *testing.T) {
	x := tensor.Vec{0.2, -0.4, 0.9, 1.1}
	checkGrad(t, "concat", func(tp *Tape, in *Node) *Node {
		a := tp.Sigmoid(in)
		b := tp.Tanh(in)
		return tp.Sum(tp.Mul(tp.Concat(a, b), tp.Concat(b, a)))
	}, x)
	checkGrad(t, "mean", func(tp *Tape, in *Node) *Node {
		a := tp.Sigmoid(in)
		b := tp.Tanh(in)
		c := tp.ReLU(in)
		return tp.Sum(tp.Mean([]*Node{a, b, c}))
	}, x)
}

func TestGradAbsDiffSum(t *testing.T) {
	x := tensor.Vec{0.5, -1.5, 2.0}
	checkGrad(t, "absdiff", func(tp *Tape, in *Node) *Node {
		a := tp.Sigmoid(in)
		b := tp.Tanh(in)
		return tp.AbsDiffSum(a, b)
	}, x)
}

func TestGradSRUStyleCell(t *testing.T) {
	// Exercise the exact op pattern an SRU cell uses: gates, complements and
	// Hadamard mixing (Eq. 1 of the paper), ensuring gradients flow through
	// reused nodes correctly.
	x := tensor.Vec{0.3, -0.2, 0.8}
	checkGrad(t, "sru-cell", func(tp *Tape, in *Node) *Node {
		f := tp.Sigmoid(in)
		r := tp.Sigmoid(tp.Scale(0.5, in))
		c := tp.Add(tp.Mul(f, in), tp.Mul(tp.OneMinus(f), tp.Tanh(in)))
		h := tp.Add(tp.Mul(r, tp.Tanh(c)), tp.Mul(tp.OneMinus(r), in))
		return tp.Sum(h)
	}, x)
}

func TestBackwardRequiresScalar(t *testing.T) {
	tp := NewTape()
	n := tp.Input(tensor.Vec{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-scalar Backward")
		}
	}()
	tp.Backward(n)
}

func TestScalarAccessor(t *testing.T) {
	tp := NewTape()
	n := tp.Input(tensor.Vec{42})
	if n.Scalar() != 42 {
		t.Fatal("Scalar read failed")
	}
	bad := tp.Input(tensor.Vec{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Scalar on vector node")
		}
	}()
	bad.Scalar()
}

func TestMultiOutputBackwardFrom(t *testing.T) {
	// Accumulating two scalar losses then running BackwardFrom must equal
	// the gradient of their sum.
	x := tensor.Vec{0.4, -0.9}
	tp := NewTape()
	in := tp.Input(x)
	l1 := tp.Sum(tp.Sigmoid(in))
	l2 := tp.Sum(tp.Tanh(in))
	l1.Grad[0] = 1
	l2.Grad[0] = 1
	tp.BackwardFrom()
	grads := in.Grad.Clone()

	checkSum := func(v tensor.Vec) float64 {
		tp2 := NewTape()
		in2 := tp2.Input(v)
		return tp2.Sum(tp2.Sigmoid(in2)).Scalar() + tp2.Sum(tp2.Tanh(in2)).Scalar()
	}
	for i := range x {
		want := numGrad(checkSum, x, i)
		if math.Abs(grads[i]-want) > 1e-5 {
			t.Fatalf("multi-output grad[%d] = %v, want %v", i, grads[i], want)
		}
	}
}

// Property: gradient of Sum(Mul(a,b)) w.r.t. a is exactly b's data.
func TestMulGradientProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := tensor.NewRNG(seed)
		n := 1 + r.Intn(10)
		av, bv := tensor.NewVec(n), tensor.NewVec(n)
		r.FillNormal(av, 0, 2)
		r.FillNormal(bv, 0, 2)
		tp := NewTape()
		a, b := tp.Input(av), tp.Input(bv)
		tp.Backward(tp.Sum(tp.Mul(a, b)))
		for i := range av {
			if math.Abs(a.Grad[i]-bv[i]) > 1e-12 || math.Abs(b.Grad[i]-av[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTapeStepsCount(t *testing.T) {
	tp := NewTape()
	in := tp.Input(tensor.Vec{1})
	if tp.Steps() != 0 {
		t.Fatal("Input should not record a backward step")
	}
	tp.Sigmoid(in)
	tp.Tanh(in)
	if tp.Steps() != 2 {
		t.Fatalf("Steps = %d, want 2", tp.Steps())
	}
}

func TestMeanOfNothingPanics(t *testing.T) {
	tp := NewTape()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Mean of empty slice")
		}
	}()
	tp.Mean(nil)
}

func TestLengthMismatchPanics(t *testing.T) {
	tp := NewTape()
	a := tp.Input(tensor.Vec{1, 2})
	b := tp.Input(tensor.Vec{1})
	for name, f := range map[string]func(){
		"Add":        func() { tp.Add(a, b) },
		"Sub":        func() { tp.Sub(a, b) },
		"Mul":        func() { tp.Mul(a, b) },
		"AbsDiffSum": func() { tp.AbsDiffSum(a, b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected length-mismatch panic", name)
				}
			}()
			f()
		}()
	}
}
