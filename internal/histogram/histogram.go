// Package histogram implements the PostgreSQL-style statistics-based
// cardinality estimator that serves as the engine's built-in baseline (the
// paper's "PostgreSQL" rows): per-column most-common-value lists and
// equi-depth histograms combined under the attribute-independence
// assumption, with the textbook 1/max(ndv) equi-join selectivity. On the
// skewed, correlated IMDB-like data these assumptions fail in exactly the
// ways the paper exploits, producing order-of-magnitude errors on deep
// joins.
package histogram

import (
	"sort"

	"github.com/lpce-db/lpce/internal/catalog"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
)

// Tunables mirroring PostgreSQL's default_statistics_target behaviour.
const (
	numMCVs    = 16
	numBuckets = 64
)

// ColStats holds the statistics for one column.
type ColStats struct {
	RowCount int
	NDV      int
	// MCVs: most common values with their frequency fractions.
	MCVVals  []int64
	MCVFreqs []float64
	mcvFrac  float64
	// Bounds are equi-depth histogram bucket boundaries over the non-MCV
	// values (len = numBuckets+1 when populated).
	Bounds []int64
}

// Stats holds statistics for every column of a database, i.e. the result of
// the paper's ANALYZE warm-up step.
type Stats struct {
	cols map[int]*ColStats // keyed by catalog.Column.GlobalID
}

// Analyze scans every table and builds the statistics.
func Analyze(db *storage.Database) *Stats {
	s := &Stats{cols: make(map[int]*ColStats)}
	for _, t := range db.Tables {
		if t == nil {
			continue
		}
		for pos, meta := range t.Meta.Columns {
			s.cols[meta.GlobalID] = analyzeColumn(t.Cols[pos])
		}
	}
	return s
}

// Col returns the statistics for a column, or nil.
func (s *Stats) Col(c *catalog.Column) *ColStats { return s.cols[c.GlobalID] }

func analyzeColumn(col []int64) *ColStats {
	cs := &ColStats{RowCount: len(col)}
	if len(col) == 0 {
		return cs
	}
	freq := make(map[int64]int, 1024)
	for _, v := range col {
		freq[v]++
	}
	cs.NDV = len(freq)

	// MCVs: the top-k frequent values.
	type vc struct {
		v int64
		c int
	}
	all := make([]vc, 0, len(freq))
	for v, c := range freq {
		all = append(all, vc{v, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].v < all[j].v
	})
	k := numMCVs
	if k > len(all) {
		k = len(all)
	}
	mcvSet := make(map[int64]bool, k)
	n := float64(len(col))
	for i := 0; i < k; i++ {
		cs.MCVVals = append(cs.MCVVals, all[i].v)
		f := float64(all[i].c) / n
		cs.MCVFreqs = append(cs.MCVFreqs, f)
		cs.mcvFrac += f
		mcvSet[all[i].v] = true
	}

	// Equi-depth histogram over the remaining values.
	rest := make([]int64, 0, len(col))
	for _, v := range col {
		if !mcvSet[v] {
			rest = append(rest, v)
		}
	}
	if len(rest) > 0 {
		sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
		b := numBuckets
		if b > len(rest) {
			b = len(rest)
		}
		cs.Bounds = append(cs.Bounds, rest[0])
		for i := 1; i <= b; i++ {
			idx := i * (len(rest) - 1) / b
			cs.Bounds = append(cs.Bounds, rest[idx])
		}
	}
	return cs
}

// eqSel estimates the selectivity of col = v.
func (cs *ColStats) eqSel(v int64) float64 {
	for i, mv := range cs.MCVVals {
		if mv == v {
			return cs.MCVFreqs[i]
		}
	}
	restNDV := cs.NDV - len(cs.MCVVals)
	if restNDV <= 0 {
		return 0
	}
	return (1 - cs.mcvFrac) / float64(restNDV)
}

// ltSel estimates the selectivity of col < v (strict).
func (cs *ColStats) ltSel(v int64) float64 {
	var sel float64
	for i, mv := range cs.MCVVals {
		if mv < v {
			sel += cs.MCVFreqs[i]
		}
	}
	sel += (1 - cs.mcvFrac) * cs.histFracBelow(v)
	return clamp01(sel)
}

// histFracBelow returns the fraction of histogram-covered values strictly
// below v, with linear interpolation inside the containing bucket.
func (cs *ColStats) histFracBelow(v int64) float64 {
	b := cs.Bounds
	if len(b) < 2 {
		return 0.5
	}
	if v <= b[0] {
		return 0
	}
	if v > b[len(b)-1] {
		return 1
	}
	nb := len(b) - 1
	for i := 0; i < nb; i++ {
		lo, hi := b[i], b[i+1]
		if v > hi {
			continue
		}
		frac := float64(i) / float64(nb)
		if hi > lo {
			frac += (float64(v-lo) / float64(hi-lo)) / float64(nb)
		}
		return clamp01(frac)
	}
	return 1
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Selectivity estimates the fraction of rows satisfying the predicate.
func (s *Stats) Selectivity(p query.Predicate) float64 {
	cs := s.Col(p.Col)
	if cs == nil || cs.RowCount == 0 {
		return 1
	}
	switch p.Op {
	case query.OpEQ:
		return cs.eqSel(p.Operand)
	case query.OpNE:
		return clamp01(1 - cs.eqSel(p.Operand))
	case query.OpLT:
		return cs.ltSel(p.Operand)
	case query.OpLE:
		return clamp01(cs.ltSel(p.Operand) + cs.eqSel(p.Operand))
	case query.OpGT:
		return clamp01(1 - cs.ltSel(p.Operand) - cs.eqSel(p.Operand))
	case query.OpGE:
		return clamp01(1 - cs.ltSel(p.Operand))
	case query.OpIn:
		var sel float64
		for _, v := range p.InSet {
			sel += cs.eqSel(v)
		}
		return clamp01(sel)
	default:
		return 1
	}
}

// Estimator is the histogram-based cardinality estimator.
type Estimator struct {
	DB    *storage.Database
	Stats *Stats
}

// NewEstimator analyzes db and returns the estimator.
func NewEstimator(db *storage.Database) *Estimator {
	return &Estimator{DB: db, Stats: Analyze(db)}
}

// Name implements cardest.Estimator.
func (e *Estimator) Name() string { return "postgres" }

// EstimateSubset multiplies filtered base-table cardinalities by the
// independence-assumption join selectivities of every join condition inside
// the subset.
func (e *Estimator) EstimateSubset(q *query.Query, mask query.BitSet) float64 {
	card := 1.0
	for _, i := range mask.Indices() {
		t := q.Tables[i]
		rows := float64(e.DB.Table(t).NumRows())
		sel := 1.0
		for _, p := range q.PredsOn(t) {
			sel *= e.Stats.Selectivity(p)
		}
		card *= rows * sel
	}
	for _, j := range q.JoinsWithin(mask) {
		ls, rs := e.Stats.Col(j.Left), e.Stats.Col(j.Right)
		ndv := 1
		if ls != nil && ls.NDV > ndv {
			ndv = ls.NDV
		}
		if rs != nil && rs.NDV > ndv {
			ndv = rs.NDV
		}
		card /= float64(ndv)
	}
	if card < 1 {
		card = 1
	}
	return card
}
