package histogram

import (
	"math"
	"testing"

	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/testutil"
	"github.com/lpce-db/lpce/internal/workload"
)

// trueSel counts the actual fraction of rows satisfying p.
func trueSel(p query.Predicate) float64 {
	db := testutil.TinyDB()
	tab := db.Table(p.Col.Table)
	col := tab.Col(p.Col.Pos)
	n := 0
	for _, v := range col {
		if p.Eval(v) {
			n++
		}
	}
	return float64(n) / float64(len(col))
}

func TestSingleColumnSelectivityAccuracy(t *testing.T) {
	db := testutil.TinyDB()
	s := Analyze(db)
	title := db.Schema.Table("title")
	cases := []query.Predicate{
		{Col: title.Column("production_year"), Op: query.OpLT, Operand: 1975},
		{Col: title.Column("production_year"), Op: query.OpGE, Operand: 1990},
		{Col: title.Column("kind_id"), Op: query.OpEQ, Operand: 0},
		{Col: title.Column("kind_id"), Op: query.OpIn, InSet: []int64{0, 1}},
		{Col: title.Column("season_nr"), Op: query.OpEQ, Operand: 0},
		{Col: title.Column("phonetic_code"), Op: query.OpLE, Operand: 500},
		{Col: title.Column("kind_id"), Op: query.OpNE, Operand: 0},
		{Col: title.Column("id"), Op: query.OpGT, Operand: 150},
	}
	for _, p := range cases {
		want := trueSel(p)
		got := s.Selectivity(p)
		// single-column histograms should be within a small additive error
		if math.Abs(got-want) > 0.08 {
			t.Errorf("%s: estimated %.3f, actual %.3f", p, got, want)
		}
	}
}

func TestSelectivityBounds(t *testing.T) {
	db := testutil.TinyDB()
	s := Analyze(db)
	g := workload.NewGenerator(db, 31)
	for i := 0; i < 60; i++ {
		q := g.Query(2)
		for _, p := range q.Preds {
			sel := s.Selectivity(p)
			if sel < 0 || sel > 1 || math.IsNaN(sel) {
				t.Fatalf("selectivity %v out of range for %s", sel, p)
			}
		}
	}
}

func TestSingleTableEstimates(t *testing.T) {
	db := testutil.TinyDB()
	e := NewEstimator(db)
	g := workload.NewGenerator(db, 32)
	oracleQ := func(q *query.Query, mask query.BitSet) float64 {
		i := mask.First()
		tab := db.Table(q.Tables[i])
		n := 0
		for r := 0; r < tab.NumRows(); r++ {
			ok := true
			for _, p := range q.PredsOn(q.Tables[i]) {
				if !p.Eval(tab.Col(p.Col.Pos)[r]) {
					ok = false
					break
				}
			}
			if ok {
				n++
			}
		}
		return float64(n)
	}
	var worstQ float64 = 1
	for i := 0; i < 30; i++ {
		q := g.Query(1)
		for ti := range q.Tables {
			mask := query.NewBitSet().Set(ti)
			want := oracleQ(q, mask)
			got := e.EstimateSubset(q, mask)
			qerr := qerror(want, got)
			if qerr > worstQ {
				worstQ = qerr
			}
		}
	}
	// single-table estimates should rarely be off by more than ~30x even
	// with multi-predicate independence errors on correlated columns
	if worstQ > 100 {
		t.Fatalf("worst single-table q-error = %.1f, histogram is broken", worstQ)
	}
}

func qerror(a, b float64) float64 {
	if a < 1 {
		a = 1
	}
	if b < 1 {
		b = 1
	}
	if a > b {
		return a / b
	}
	return b / a
}

func TestJoinEstimateSanity(t *testing.T) {
	db := testutil.TinyDB()
	e := NewEstimator(db)
	g := workload.NewGenerator(db, 33)
	for i := 0; i < 20; i++ {
		q := g.Query(2)
		est := e.EstimateSubset(q, q.AllTablesMask())
		if est < 1 || math.IsNaN(est) || math.IsInf(est, 0) {
			t.Fatalf("join estimate %v invalid", est)
		}
	}
}

func TestDeepJoinsUnderestimated(t *testing.T) {
	// On correlated, skewed data the independence assumption should
	// produce large errors for deep joins — the phenomenon motivating the
	// paper. We check that errors grow with join count on average.
	db := testutil.TinyDB()
	e := NewEstimator(db)
	g := workload.NewGenerator(db, 34)

	meanLogQ := func(joins, n int) float64 {
		var sum float64
		cnt := 0
		oracle := exec.NewTrueCardOracle(db)
		for i := 0; i < n; i++ {
			q := g.Query(joins)
			want := oracle.EstimateSubset(q, q.AllTablesMask())
			got := e.EstimateSubset(q, q.AllTablesMask())
			sum += math.Log(qerror(want, got))
			cnt++
		}
		return sum / float64(cnt)
	}
	shallow := meanLogQ(1, 8)
	deep := meanLogQ(4, 8)
	if deep <= shallow {
		t.Logf("warning: deep joins (%.2f) not worse than shallow (%.2f) on this sample", deep, shallow)
	}
	if deep < 0.1 {
		t.Fatalf("histogram estimator is implausibly accurate on 4-join queries (mean log q = %.3f)", deep)
	}
}

func TestMCVExactForHeavyHitters(t *testing.T) {
	db := testutil.TinyDB()
	s := Analyze(db)
	kind := db.Schema.Table("title").Column("kind_id")
	cs := s.Col(kind)
	if cs == nil || len(cs.MCVVals) == 0 {
		t.Fatal("kind_id should have MCVs")
	}
	// with 7 distinct values everything is an MCV, so eq estimates are exact
	p := query.Predicate{Col: kind, Op: query.OpEQ, Operand: 0}
	if math.Abs(s.Selectivity(p)-trueSel(p)) > 1e-9 {
		t.Fatal("MCV selectivity should be exact for low-NDV columns")
	}
}

func TestEstimatorName(t *testing.T) {
	db := testutil.TinyDB()
	if NewEstimator(db).Name() != "postgres" {
		t.Fatal("name")
	}
}
