package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/lpce-db/lpce/internal/catalog"
	"github.com/lpce-db/lpce/internal/query"
)

// Parse compiles a SQL string against the schema into the engine's query
// representation. Supported grammar (keywords case-insensitive):
//
//	query    := SELECT COUNT ( * ) FROM tables [WHERE conds] [;]
//	tables   := ident ("," ident)*
//	conds    := cond (AND cond)*
//	cond     := colref op (number | colref)
//	         |  colref IN "(" number ("," number)* ")"
//	colref   := table "." column
//	op       := "=" | "<>" | "!=" | "<" | "<=" | ">" | ">="
//
// A condition comparing two column references with "=" becomes an
// equi-join; a condition comparing a column to a number becomes a filter
// predicate.
func Parse(schema *catalog.Schema, sql string) (*query.Query, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{schema: schema, toks: toks}
	return p.parseQuery()
}

type parser struct {
	schema *catalog.Schema
	toks   []token
	i      int

	tables map[string]*catalog.Table
	order  []*catalog.Table
	joins  []query.Join
	preds  []query.Predicate
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errf(t token, format string, args ...interface{}) error {
	return fmt.Errorf("sqlparse: offset %d: %s", t.pos, fmt.Sprintf(format, args...))
}

// expectKeyword consumes an identifier token matching kw (case-insensitive).
func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return p.errf(t, "expected %s, found %q", kw, t.text)
	}
	return nil
}

// expectSymbol consumes the exact symbol.
func (p *parser) expectSymbol(sym string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != sym {
		return p.errf(t, "expected %q, found %q", sym, t.text)
	}
	return nil
}

func (p *parser) parseQuery() (*query.Query, error) {
	p.tables = make(map[string]*catalog.Table)
	for _, kw := range []string{"SELECT", "COUNT"} {
		if err := p.expectKeyword(kw); err != nil {
			return nil, err
		}
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("*"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if err := p.parseTables(); err != nil {
		return nil, err
	}
	if t := p.cur(); t.kind == tokIdent && strings.EqualFold(t.text, "WHERE") {
		p.next()
		if err := p.parseConds(); err != nil {
			return nil, err
		}
	}
	if t := p.cur(); t.kind == tokSymbol && t.text == ";" {
		p.next()
	}
	if t := p.cur(); t.kind != tokEOF {
		return nil, p.errf(t, "unexpected trailing input %q", t.text)
	}
	return query.New(p.order, p.joins, p.preds), nil
}

func (p *parser) parseTables() error {
	for {
		t := p.next()
		if t.kind != tokIdent {
			return p.errf(t, "expected table name, found %q", t.text)
		}
		meta := p.schema.Table(t.text)
		if meta == nil {
			return p.errf(t, "unknown table %q", t.text)
		}
		if _, dup := p.tables[meta.Name]; dup {
			return p.errf(t, "table %q listed twice (self-joins are not supported)", t.text)
		}
		p.tables[meta.Name] = meta
		p.order = append(p.order, meta)
		if c := p.cur(); c.kind == tokSymbol && c.text == "," {
			p.next()
			continue
		}
		return nil
	}
}

func (p *parser) parseConds() error {
	for {
		if err := p.parseCond(); err != nil {
			return err
		}
		if t := p.cur(); t.kind == tokIdent && strings.EqualFold(t.text, "AND") {
			p.next()
			continue
		}
		return nil
	}
}

func (p *parser) parseCond() error {
	col, err := p.parseColRef()
	if err != nil {
		return err
	}
	t := p.next()
	switch {
	case t.kind == tokIdent && strings.EqualFold(t.text, "IN"):
		set, err := p.parseNumberList()
		if err != nil {
			return err
		}
		p.preds = append(p.preds, query.Predicate{Col: col, Op: query.OpIn, InSet: set})
		return nil
	case t.kind == tokOperator:
		op, err := parseOp(t.text)
		if err != nil {
			return p.errf(t, "%v", err)
		}
		rhs := p.cur()
		if rhs.kind == tokNumber {
			p.next()
			v, err := strconv.ParseInt(rhs.text, 10, 64)
			if err != nil {
				return p.errf(rhs, "bad number %q", rhs.text)
			}
			p.preds = append(p.preds, query.Predicate{Col: col, Op: op, Operand: v})
			return nil
		}
		// column = column: an equi-join
		right, err := p.parseColRef()
		if err != nil {
			return err
		}
		if op != query.OpEQ {
			return p.errf(t, "only equi-joins are supported between columns (found %q)", t.text)
		}
		p.joins = append(p.joins, query.Join{Left: col, Right: right})
		return nil
	default:
		return p.errf(t, "expected comparison operator or IN, found %q", t.text)
	}
}

func parseOp(s string) (query.Op, error) {
	switch s {
	case "=":
		return query.OpEQ, nil
	case "<>", "!=":
		return query.OpNE, nil
	case "<":
		return query.OpLT, nil
	case "<=":
		return query.OpLE, nil
	case ">":
		return query.OpGT, nil
	case ">=":
		return query.OpGE, nil
	default:
		return 0, fmt.Errorf("unknown operator %q", s)
	}
}

func (p *parser) parseColRef() (*catalog.Column, error) {
	t := p.next()
	if t.kind != tokIdent {
		return nil, p.errf(t, "expected column reference, found %q", t.text)
	}
	tab, ok := p.tables[t.text]
	if !ok {
		if p.schema.Table(t.text) != nil {
			return nil, p.errf(t, "table %q referenced but not in FROM list", t.text)
		}
		return nil, p.errf(t, "unknown table %q", t.text)
	}
	if err := p.expectSymbol("."); err != nil {
		return nil, err
	}
	c := p.next()
	if c.kind != tokIdent {
		return nil, p.errf(c, "expected column name, found %q", c.text)
	}
	col := tab.Column(c.text)
	if col == nil {
		return nil, p.errf(c, "table %q has no column %q", tab.Name, c.text)
	}
	return col, nil
}

func (p *parser) parseNumberList() ([]int64, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var out []int64
	for {
		t := p.next()
		if t.kind != tokNumber {
			return nil, p.errf(t, "expected number in IN list, found %q", t.text)
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf(t, "bad number %q", t.text)
		}
		out = append(out, v)
		s := p.next()
		if s.kind == tokSymbol && s.text == "," {
			continue
		}
		if s.kind == tokSymbol && s.text == ")" {
			return out, nil
		}
		return nil, p.errf(s, "expected ',' or ')' in IN list, found %q", s.text)
	}
}
