// Package sqlparse parses the SQL dialect the engine executes —
// select-project-equijoin-aggregate queries of the paper's §3 form:
//
//	SELECT COUNT(*) FROM R, U, S, T
//	WHERE R.a = U.a AND U.b = S.b AND S.c = T.c
//	  AND R.x > 10 AND S.y IN (1, 2, 3)
//
// into the internal query representation, resolving table and column names
// against a catalog schema. It is the inverse of query.SQL() and makes the
// library usable from SQL text (cmd/lpce-sql builds a shell on it).
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokSymbol   // punctuation: ( ) , ; . *
	tokOperator // = <> != < <= > >=
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
}

// lexer produces tokens from SQL text.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the input or returns a positioned error.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case unicode.IsDigit(rune(c)) || (c == '-' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			l.lexNumber()
		case strings.ContainsRune("(),;.*", rune(c)):
			l.pos++
			l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
		case strings.ContainsRune("=<>!", rune(c)):
			if err := l.lexOperator(); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, start)
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexOperator() error {
	start := l.pos
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.pos += 2
		l.toks = append(l.toks, token{kind: tokOperator, text: two, pos: start})
		return nil
	}
	switch l.src[l.pos] {
	case '=', '<', '>':
		op := string(l.src[l.pos])
		l.pos++
		l.toks = append(l.toks, token{kind: tokOperator, text: op, pos: start})
		return nil
	}
	return fmt.Errorf("sqlparse: unexpected operator starting at offset %d", start)
}
