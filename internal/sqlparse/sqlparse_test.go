package sqlparse

import (
	"strings"
	"testing"

	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/testutil"
	"github.com/lpce-db/lpce/internal/workload"
)

func TestParseSimpleQuery(t *testing.T) {
	db := testutil.TinyDB()
	q, err := Parse(db.Schema,
		"SELECT COUNT(*) FROM title, cast_info WHERE cast_info.movie_id = title.id AND title.production_year > 1980")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 2 || q.NumJoins() != 1 || len(q.Preds) != 1 {
		t.Fatalf("parsed shape wrong: %d tables, %d joins, %d preds",
			len(q.Tables), q.NumJoins(), len(q.Preds))
	}
	p := q.Preds[0]
	if p.Col.QualifiedName() != "title.production_year" || p.Op != query.OpGT || p.Operand != 1980 {
		t.Fatalf("predicate = %v", p)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	db := testutil.TinyDB()
	if _, err := Parse(db.Schema, "select count(*) from title where title.kind_id = 0;"); err != nil {
		t.Fatal(err)
	}
}

func TestParseInList(t *testing.T) {
	db := testutil.TinyDB()
	q, err := Parse(db.Schema,
		"SELECT COUNT(*) FROM title WHERE title.kind_id IN (0, 2, 4)")
	if err != nil {
		t.Fatal(err)
	}
	p := q.Preds[0]
	if p.Op != query.OpIn || len(p.InSet) != 3 || p.InSet[1] != 2 {
		t.Fatalf("IN predicate = %v", p)
	}
}

func TestParseAllOperators(t *testing.T) {
	db := testutil.TinyDB()
	ops := map[string]query.Op{
		"=": query.OpEQ, "<>": query.OpNE, "!=": query.OpNE,
		"<": query.OpLT, "<=": query.OpLE, ">": query.OpGT, ">=": query.OpGE,
	}
	for s, want := range ops {
		q, err := Parse(db.Schema,
			"SELECT COUNT(*) FROM title WHERE title.production_year "+s+" 1990")
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if q.Preds[0].Op != want {
			t.Fatalf("%s parsed to %v", s, q.Preds[0].Op)
		}
	}
}

func TestParseNegativeNumber(t *testing.T) {
	db := testutil.TinyDB()
	q, err := Parse(db.Schema, "SELECT COUNT(*) FROM title WHERE title.season_nr > -1")
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Operand != -1 {
		t.Fatalf("operand = %d", q.Preds[0].Operand)
	}
}

func TestRoundtripGeneratedQueries(t *testing.T) {
	// Parse(q.SQL()) must reproduce an equivalent query: same tables, same
	// predicate set, same join set, and — decisively — the same COUNT(*).
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 161)
	for i := 0; i < 25; i++ {
		orig := g.Query(1 + i%4)
		parsed, err := Parse(db.Schema, orig.SQL())
		if err != nil {
			t.Fatalf("roundtrip parse failed for %q: %v", orig.SQL(), err)
		}
		if parsed.SQL() != orig.SQL() {
			t.Fatalf("roundtrip SQL differs:\n%s\n%s", orig.SQL(), parsed.SQL())
		}
		want, err := exec.RunCollect(&exec.Ctx{DB: db, Q: orig}, exec.CanonicalPlan(orig, orig.AllTablesMask()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := exec.RunCollect(&exec.Ctx{DB: db, Q: parsed}, exec.CanonicalPlan(parsed, parsed.AllTablesMask()))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("parsed query returns %d, original %d", got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	db := testutil.TinyDB()
	cases := []struct {
		sql  string
		frag string
	}{
		{"SELECT SUM(*) FROM title", "expected COUNT"},
		{"SELECT COUNT(*) FROM nosuch", "unknown table"},
		{"SELECT COUNT(*) FROM title, title", "listed twice"},
		{"SELECT COUNT(*) FROM title WHERE title.nosuch = 1", "no column"},
		{"SELECT COUNT(*) FROM title WHERE cast_info.movie_id = 1", "not in FROM"},
		{"SELECT COUNT(*) FROM title WHERE title.id < title.kind_id", "only equi-joins"},
		{"SELECT COUNT(*) FROM title WHERE title.id IN (1, x)", "expected number"},
		{"SELECT COUNT(*) FROM title WHERE", "expected column reference"},
		{"SELECT COUNT(*) FROM title extra", "trailing"},
		{"SELECT COUNT(*) FROM title WHERE title.id @ 3", "unexpected character"},
	}
	for _, c := range cases {
		_, err := Parse(db.Schema, c.sql)
		if err == nil {
			t.Fatalf("%q: expected error", c.sql)
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Fatalf("%q: error %q missing %q", c.sql, err, c.frag)
		}
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := lex("a.b >= 10, (x)")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokIdent, tokSymbol, tokIdent, tokOperator, tokNumber, tokSymbol, tokSymbol, tokIdent, tokSymbol, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("tokens = %d, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Fatalf("token %d kind = %d, want %d (%q)", i, toks[i].kind, k, toks[i].text)
		}
	}
}

func TestRoundtripDerivedEdgeQueries(t *testing.T) {
	// fact-to-fact join queries (FK = FK) must also roundtrip through SQL.
	db := testutil.TinyDB()
	g := workload.NewGeneratorDerived(db, 162)
	for i := 0; i < 15; i++ {
		orig := g.Query(2 + i%3)
		parsed, err := Parse(db.Schema, orig.SQL())
		if err != nil {
			t.Fatalf("derived roundtrip failed for %q: %v", orig.SQL(), err)
		}
		if parsed.SQL() != orig.SQL() {
			t.Fatalf("roundtrip differs:\n%s\n%s", orig.SQL(), parsed.SQL())
		}
	}
}
