package core

import (
	"github.com/lpce-db/lpce/internal/autodiff"
	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/encode"
	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/nn"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/tensor"
	"github.com/lpce-db/lpce/internal/treenn"
)

// LPCEIConfig assembles the full LPCE-I training pipeline: a large teacher
// is trained with the node-wise loss, then a small student is compressed
// from it via knowledge distillation (paper §4.4, Eq. 4–5).
type LPCEIConfig struct {
	Teacher TrainConfig
	Student TrainConfig
	// Alpha balances the student's own q-error against matching the
	// teacher's logit in the prediction loss (paper default 0.5).
	Alpha float64
	// HintEpochs and PredictEpochs control the two distillation phases.
	HintEpochs    int
	PredictEpochs int
}

// Defaults fills zero fields. The teacher is ~4x wider than the student,
// giving the >10x parameter-count compression the paper reports.
func (c LPCEIConfig) Defaults() LPCEIConfig {
	c.Teacher = c.Teacher.Defaults()
	if c.Student.Hidden == 0 {
		c.Student.Hidden = c.Teacher.Hidden / 4
		if c.Student.Hidden < 8 {
			c.Student.Hidden = 8
		}
	}
	if c.Student.OutWidth == 0 {
		c.Student.OutWidth = c.Teacher.OutWidth / 4
		if c.Student.OutWidth < 8 {
			c.Student.OutWidth = 8
		}
	}
	c.Student = c.Student.Defaults()
	if c.Alpha == 0 {
		c.Alpha = 0.5
	}
	if c.HintEpochs == 0 {
		c.HintEpochs = c.Student.Epochs
	}
	if c.PredictEpochs == 0 {
		c.PredictEpochs = c.Student.Epochs
	}
	return c
}

// LPCEI bundles the distilled student model (the deployed LPCE-I) with its
// teacher for inspection by the ablation experiments.
type LPCEI struct {
	Model   *treenn.TreeModel // the compressed student
	Teacher *treenn.TreeModel
	Enc     *encode.Encoder
}

// TrainLPCEI runs the full pipeline: teacher training, hint distillation,
// prediction-loss calibration.
func TrainLPCEI(cfg LPCEIConfig, enc *encode.Encoder, samples []Sample, logMax float64) *LPCEI {
	cfg = cfg.Defaults()
	teacher := TrainTreeModel(cfg.Teacher, enc, samples, logMax, nil)
	student := Distill(cfg, enc, teacher, samples)
	return &LPCEI{Model: student, Teacher: teacher, Enc: enc}
}

// Distill trains a small student against a trained teacher: first the hint
// loss (Eq. 4) matches the student's embed output and node representation
// to the teacher's through single-layer adapters, then the prediction loss
// (Eq. 5) calibrates the student's logits.
func Distill(cfg LPCEIConfig, enc *encode.Encoder, teacher *treenn.TreeModel, samples []Sample) *treenn.TreeModel {
	cfg = cfg.Defaults()
	student := treenn.NewTreeModel(treenn.Config{
		InputDim: enc.Dim(),
		Hidden:   cfg.Student.Hidden,
		OutWidth: cfg.Student.OutWidth,
		Cell:     cfg.Student.Cell,
		Seed:     cfg.Student.Seed + 17,
	})
	student.LogMax = teacher.LogMax
	if len(samples) == 0 {
		return student
	}

	feat := func(n *plan.Node) tensor.Vec { return enc.EncodeNode(n) }

	// Adapters p_e, p_s mapping student widths to teacher widths (Eq. 4).
	aps := nn.NewParams()
	rng := tensor.NewRNG(cfg.Student.Seed + 23)
	nn.NewLinear(aps, "pe", cfg.Student.Hidden, cfg.Teacher.Hidden, rng)
	nn.NewLinear(aps, "ps", cfg.Student.Hidden, cfg.Teacher.Hidden, rng)

	// teacherOuts runs the teacher without gradients and returns detached
	// copies of the per-node tensors the student matches. The teacher's
	// weights are only read, so workers share it safely.
	type tOut struct {
		x, h  tensor.Vec
		logit float64
	}
	teacherOuts := func(s Sample) map[*plan.Node]tOut {
		t := autodiff.NewTape()
		outs := teacher.Forward(t, s.Plan, feat, nil)
		m := make(map[*plan.Node]tOut, len(outs))
		for n, o := range outs {
			m[n] = tOut{x: o.X.Data.Clone(), h: o.H.Data.Clone(), logit: o.Logit.Scalar()}
		}
		return m
	}

	// Phase 1: hint loss.
	optStudent := nn.NewAdam(cfg.Student.LR)
	optAdapter := nn.NewAdam(cfg.Student.LR)
	hintPool := NewGradPool(cfg.Student.Workers, cfg.Student.Batch, []*nn.Params{student.Params, aps},
		func() (func(int, float64), []*nn.Params) {
			rep := student.Replica()
			apsRep := aps.ShareWeights()
			pe := &nn.Linear{W: apsRep.Get("pe.W"), B: apsRep.Get("pe.b")}
			psAdapter := &nn.Linear{W: apsRep.Get("ps.W"), B: apsRep.Get("ps.b")}
			run := func(si int, weight float64) {
				s := samples[si]
				tOuts := teacherOuts(s)
				t := autodiff.NewTape()
				sOuts := rep.Forward(t, s.Plan, feat, nil)
				// Iterate nodes in post-order, not map order: the tape
				// records ops in loop order and backward accumulates in tape
				// order, so a randomized map walk would make the float
				// reduction order — and hence the weights — nondeterministic.
				for _, n := range s.Plan.Nodes() {
					so := sOuts[n]
					to, ok := tOuts[n]
					if so == nil || !ok {
						continue
					}
					lx := t.AbsDiffSum(t.Const(to.x), pe.Apply(t, so.X))
					lh := t.AbsDiffSum(t.Const(to.h), psAdapter.Apply(t, so.H))
					lx.Grad[0] = weight
					lh.Grad[0] = weight
				}
				t.BackwardFrom()
			}
			return run, []*nn.Params{rep.Params, apsRep}
		})
	for epoch := 0; epoch < cfg.HintEpochs; epoch++ {
		order := EpochOrder(cfg.Student.Seed, streamDistillHint, epoch, len(samples))
		for b := 0; b < len(order); b += cfg.Student.Batch {
			end := b + cfg.Student.Batch
			if end > len(order) {
				end = len(order)
			}
			hintPool.RunBatch(order[b:end], 1/float64(end-b))
			student.Params.ClipGrad(cfg.Student.ClipNorm)
			aps.ClipGrad(cfg.Student.ClipNorm)
			optStudent.Step(student.Params)
			optAdapter.Step(aps)
		}
	}

	// Phase 2: prediction loss αq + (1−α)|logit_t − logit_s| (Eq. 5).
	optCal := nn.NewAdam(cfg.Student.LR)
	calPool := NewGradPool(cfg.Student.Workers, cfg.Student.Batch, []*nn.Params{student.Params},
		func() (func(int, float64), []*nn.Params) {
			rep := student.Replica()
			run := func(si int, weight float64) {
				s := samples[si]
				tOuts := teacherOuts(s)
				t := autodiff.NewTape()
				sOuts := rep.Forward(t, s.Plan, feat, nil)
				// Post-order for the same reason as the hint phase: backward
				// reduction order must not depend on map iteration.
				for _, n := range s.Plan.Nodes() {
					so := sOuts[n]
					to, ok := tOuts[n]
					if so == nil || !ok || n.TrueCard < 0 {
						continue
					}
					qloss := nn.QErrorLoss(t, so.Pred, n.TrueCard, rep.LogMax)
					qloss.Grad[0] = cfg.Alpha * weight
					ldiff := t.AbsDiffSum(t.Const(tensor.Vec{to.logit}), so.Logit)
					ldiff.Grad[0] = (1 - cfg.Alpha) * weight
				}
				t.BackwardFrom()
			}
			return run, []*nn.Params{rep.Params}
		})
	for epoch := 0; epoch < cfg.PredictEpochs; epoch++ {
		order := EpochOrder(cfg.Student.Seed, streamDistillPredict, epoch, len(samples))
		for b := 0; b < len(order); b += cfg.Student.Batch {
			end := b + cfg.Student.Batch
			if end > len(order) {
				end = len(order)
			}
			calPool.RunBatch(order[b:end], 1/float64(end-b))
			student.Params.ClipGrad(cfg.Student.ClipNorm)
			optCal.Step(student.Params)
		}
	}
	return student
}

// TreeEstimator adapts any tree model to the optimizer's estimator
// interface: a table subset is featurized through its canonical logical
// plan (scan leaves plus left-deep joins) and the model's root prediction is
// the estimate. It serves LPCE-I, TLSTM and the LPCE ablation variants.
type TreeEstimator struct {
	Label string
	Model *treenn.TreeModel
	Enc   *encode.Encoder
}

// Name implements cardest.Estimator.
func (e *TreeEstimator) Name() string { return e.Label }

// EstimateSubset implements cardest.Estimator.
func (e *TreeEstimator) EstimateSubset(q *query.Query, mask query.BitSet) float64 {
	node := exec.CanonicalPlan(q, mask)
	return e.Model.Predict(node, func(n *plan.Node) tensor.Vec { return e.Enc.EncodeNode(n) })
}

var _ cardest.Estimator = (*TreeEstimator)(nil)
