// Package core implements the paper's primary contribution: the LPCE-I
// initial cardinality estimation model (§4 — SRU backbone, node-wise loss,
// knowledge-distillation compression) and the LPCE-R progressive refinement
// model (§5 — content/cardinality/connect/refine modules with two-stage
// training), together with the training-sample collection pipeline and the
// estimator adapters that plug the models into the query optimizer.
package core

import (
	"math"
	"time"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/optimizer"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
)

// Sample is one training example: an execution plan with the true
// cardinality of every node (the paper's EXPLAIN ANALYZE output).
type Sample struct {
	Query *query.Query
	Plan  *plan.Node
}

// CollectStats reports the cost of sample collection, the dominant cost in
// the paper's Figure 18.
type CollectStats struct {
	Collected int
	Skipped   int // queries whose collection exceeded the work budget
	Duration  time.Duration
}

// CollectSamples executes each query with an instrumented bottom-up
// executor to obtain per-node true cardinalities. Plans are produced by the
// engine's built-in histogram estimator, matching the paper's workflow of
// harvesting plans from the production optimizer's log. Queries exceeding
// budget work units are skipped (they would dominate collection time).
func CollectSamples(db *storage.Database, est cardest.Estimator, queries []*query.Query, budget int64) ([]Sample, CollectStats) {
	start := time.Now()
	opt := optimizer.New(db, est)
	var out []Sample
	var stats CollectStats
	for _, q := range queries {
		p, _, err := opt.Plan(q)
		if err != nil {
			stats.Skipped++
			continue
		}
		ctx := &exec.Ctx{DB: db, Q: q, Budget: budget}
		if _, err := exec.RunCollect(ctx, p); err != nil {
			stats.Skipped++
			continue
		}
		out = append(out, Sample{Query: q, Plan: p})
		stats.Collected++
	}
	stats.Duration = time.Since(start)
	return out, stats
}

// MaxLogCard returns ln of the largest node cardinality across the samples
// (at least ln 2), the normalization constant shared by all models trained
// on the set.
func MaxLogCard(samples []Sample) float64 {
	maxCard := 2.0
	for _, s := range samples {
		s.Plan.Walk(func(n *plan.Node) {
			if n.TrueCard > maxCard {
				maxCard = n.TrueCard
			}
		})
	}
	return math.Log(maxCard)
}

// SplitTrainValidation splits samples into train and validation sets with
// the given validation fraction (the paper holds out 10%).
func SplitTrainValidation(samples []Sample, valFrac float64) (train, val []Sample) {
	nVal := int(float64(len(samples)) * valFrac)
	if nVal >= len(samples) {
		nVal = len(samples) - 1
	}
	if nVal < 0 {
		nVal = 0
	}
	return samples[:len(samples)-nVal], samples[len(samples)-nVal:]
}
