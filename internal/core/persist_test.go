package core

import (
	"bytes"
	"math"
	"testing"

	"github.com/lpce-db/lpce/internal/autodiff"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/tensor"
	"github.com/lpce-db/lpce/internal/workload"
)

func TestTreeModelSaveLoadRoundtrip(t *testing.T) {
	db, enc, samples, logMax := fixture(t)
	m := TrainTreeModel(tinyCfg(51), enc, samples[:15], logMax, nil)

	var buf bytes.Buffer
	if err := SaveTreeModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadTreeModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Cfg != m.Cfg || m2.LogMax != m.LogMax {
		t.Fatal("spec not preserved")
	}
	// identical predictions on a fresh query
	g := workload.NewGenerator(db, 151)
	q := g.Query(3)
	e1 := &TreeEstimator{Label: "a", Model: m, Enc: enc}
	e2 := &TreeEstimator{Label: "b", Model: m2, Enc: enc}
	for mask := query.BitSet(1); mask <= q.AllTablesMask(); mask++ {
		if !q.Connected(mask) {
			continue
		}
		a, b := e1.EstimateSubset(q, mask), e2.EstimateSubset(q, mask)
		if a != b {
			t.Fatalf("loaded model diverges: %v vs %v", a, b)
		}
	}
}

func TestTreeModelFileRoundtrip(t *testing.T) {
	_, enc, samples, logMax := fixture(t)
	m := TrainTreeModel(tinyCfg(52), enc, samples[:10], logMax, nil)
	path := t.TempDir() + "/model.gob"
	if err := SaveTreeModelFile(path, m); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadTreeModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumWeights() != m.NumWeights() {
		t.Fatal("weight count changed")
	}
}

func TestLoadTreeModelGarbage(t *testing.T) {
	if _, err := LoadTreeModel(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestRefinerSaveLoadRoundtrip(t *testing.T) {
	db, enc, samples, logMax := fixture(t)
	for _, kind := range []RefinerKind{RefinerFull, RefinerSingle, RefinerTwo} {
		cfg := RefinerConfig{Kind: kind, Base: tinyCfg(53), AdjustEpochs: 2, PrefixesPerSample: 2}
		r := TrainRefiner(cfg, enc, db, samples, logMax)
		var buf bytes.Buffer
		if err := SaveRefiner(&buf, r); err != nil {
			t.Fatalf("%v: save: %v", kind, err)
		}
		r2, err := LoadRefiner(&buf, enc, db)
		if err != nil {
			t.Fatalf("%v: load: %v", kind, err)
		}
		if r2.Kind != kind || r2.LogMax != logMax {
			t.Fatalf("%v: spec not preserved", kind)
		}
		// identical refinement estimates
		s := samples[2]
		k := s.Plan.NumNodes() / 2
		q1 := r.EvalPrefix(s, k)
		q2 := r2.EvalPrefix(s, k)
		if len(q1) != len(q2) {
			t.Fatalf("%v: estimate count differs", kind)
		}
		for i := range q1 {
			if math.Abs(q1[i]-q2[i]) > 1e-12 {
				t.Fatalf("%v: loaded refiner diverges at %d: %v vs %v", kind, i, q1[i], q2[i])
			}
		}
	}
}

func TestConnectLayerDeterministicApply(t *testing.T) {
	// loaded connect layers must not depend on their construction seed once
	// weights are overwritten
	c1 := NewConnectLayer(8, 1)
	c2 := NewConnectLayer(8, 99)
	var buf bytes.Buffer
	if err := c1.Params.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := c2.Params.Load(&buf); err != nil {
		t.Fatal(err)
	}
	a := tensor.NewVec(8)
	b := tensor.NewVec(8)
	tensor.NewRNG(5).FillNormal(a, 0, 1)
	tensor.NewRNG(6).FillNormal(b, 0, 1)
	out1 := applyConnect(c1, a, b)
	out2 := applyConnect(c2, a, b)
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatal("connect layers diverge after weight transfer")
		}
	}
}

func applyConnect(c *ConnectLayer, a, b tensor.Vec) tensor.Vec {
	t := autodiff.NewTape()
	out := c.Apply(t, t.Const(a), t.Const(b))
	return out.Data
}
