package core

import (
	"github.com/lpce-db/lpce/internal/autodiff"
	"github.com/lpce-db/lpce/internal/encode"
	"github.com/lpce-db/lpce/internal/nn"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/storage"
	"github.com/lpce-db/lpce/internal/tensor"
	"github.com/lpce-db/lpce/internal/treenn"
)

// TrainConfig controls the training of one tree model.
type TrainConfig struct {
	Hidden   int
	OutWidth int
	Cell     treenn.CellKind
	Epochs   int
	Batch    int // paper: 50
	LR       float64
	// NodeWise selects the node-wise loss (Eq. 3); false uses the
	// query-wise loss (Eq. 2), the LPCE-Q ablation.
	NodeWise bool
	ClipNorm float64
	Seed     int64
	// Workers fans each minibatch's per-sample forward/backward passes
	// across this many goroutines (<= 0 runs serially). Gradients are
	// reduced in fixed sample-index order, so the trained weights are
	// byte-identical for every Workers value; only wall-clock time changes.
	Workers int
}

// Defaults fills zero fields with sensible values.
func (c TrainConfig) Defaults() TrainConfig {
	if c.Hidden == 0 {
		c.Hidden = 32
	}
	if c.OutWidth == 0 {
		c.OutWidth = 64
	}
	if c.Epochs == 0 {
		c.Epochs = 10
	}
	if c.Batch == 0 {
		c.Batch = 50
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = 25
	}
	return c
}

// CardFeature builds the cardinality-augmented feature of LPCE-R's
// cardinality module (§5.2): node features concatenated with the true
// cardinalities of the node's children. Leaves, which have no children, use
// their base table's row count ("the number of tuples in the considered
// attributes") and zero.
func CardFeature(enc *encode.Encoder, logMax float64, db *storage.Database) treenn.FeatureFn {
	return func(n *plan.Node) tensor.Vec {
		base := enc.EncodeNode(n)
		var l, r float64
		switch {
		case n.Left != nil:
			l = n.Left.TrueCard
			if n.Right != nil {
				r = n.Right.TrueCard
			}
		case n.Table != nil:
			l = float64(db.Table(n.Table).NumRows())
		case n.Mat != nil:
			l = float64(n.Mat.Card())
		}
		return enc.WithCards(base, l, r, logMax)
	}
}

// TrainTreeModel trains a tree model (any cell, either loss) on the
// samples, minimizing mean q-error with Adam. It is the shared trainer for
// LPCE-I's teacher, the TLSTM baseline, LPCE-R's content module, and the
// LPCE-S/LPCE-C/LPCE-Q ablations.
func TrainTreeModel(cfg TrainConfig, enc *encode.Encoder, samples []Sample, logMax float64, feat func(m *treenn.TreeModel) treenn.FeatureFn) *treenn.TreeModel {
	cfg = cfg.Defaults()
	m := treenn.NewTreeModel(treenn.Config{
		InputDim: enc.Dim(),
		Hidden:   cfg.Hidden,
		OutWidth: cfg.OutWidth,
		Cell:     cfg.Cell,
		Seed:     cfg.Seed,
	})
	m.LogMax = logMax
	if feat == nil {
		feat = func(m *treenn.TreeModel) treenn.FeatureFn {
			return func(n *plan.Node) tensor.Vec { return enc.EncodeNode(n) }
		}
	}
	trainLoop(cfg, m, samples, feat(m))
	return m
}

// TrainTreeModelWithDim trains a tree model whose input dimension differs
// from the plain encoding (the cardinality-augmented module).
func TrainTreeModelWithDim(cfg TrainConfig, inputDim int, samples []Sample, logMax float64, feat treenn.FeatureFn) *treenn.TreeModel {
	cfg = cfg.Defaults()
	m := treenn.NewTreeModel(treenn.Config{
		InputDim: inputDim,
		Hidden:   cfg.Hidden,
		OutWidth: cfg.OutWidth,
		Cell:     cfg.Cell,
		Seed:     cfg.Seed,
	})
	m.LogMax = logMax
	trainLoop(cfg, m, samples, feat)
	return m
}

// trainLoop runs minibatch Adam over the samples, fanning each batch's
// per-sample passes across cfg.Workers goroutines. The per-sample gradient
// snapshots are reduced in sample-index order (see GradPool), so the
// resulting weights do not depend on the worker count.
func trainLoop(cfg TrainConfig, m *treenn.TreeModel, samples []Sample, feat treenn.FeatureFn) {
	if len(samples) == 0 {
		return
	}
	opt := nn.NewAdam(cfg.LR)
	pool := NewGradPool(cfg.Workers, cfg.Batch, []*nn.Params{m.Params}, func() (func(int, float64), []*nn.Params) {
		rep := m.Replica()
		run := func(si int, weight float64) {
			s := samples[si]
			t := autodiff.NewTape()
			outs := rep.Forward(t, s.Plan, feat, nil)
			seedQErrorGrads(t, rep, s.Plan, outs, cfg.NodeWise, weight)
			t.BackwardFrom()
		}
		return run, []*nn.Params{rep.Params}
	})
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// step-decay schedule: halve the rate twice in the final stretch so
		// the q-error loss settles instead of oscillating around minima
		switch {
		case epoch == cfg.Epochs*8/10:
			opt.LR = cfg.LR / 2
		case epoch == cfg.Epochs*19/20:
			opt.LR = cfg.LR / 4
		}
		order := EpochOrder(cfg.Seed, streamTrainLoop, epoch, len(samples))
		for b := 0; b < len(order); b += cfg.Batch {
			end := b + cfg.Batch
			if end > len(order) {
				end = len(order)
			}
			pool.RunBatch(order[b:end], 1/float64(end-b))
			m.Params.ClipGrad(cfg.ClipNorm)
			opt.Step(m.Params)
		}
	}
}

// seedQErrorGrads attaches q-error losses to the requested nodes and seeds
// their gradients with weight w; the caller then runs BackwardFrom once.
func seedQErrorGrads(t *autodiff.Tape, m *treenn.TreeModel, root *plan.Node, outs map[*plan.Node]*treenn.NodeOut, nodeWise bool, w float64) {
	attach := func(n *plan.Node) {
		out, ok := outs[n]
		if !ok || n.TrueCard < 0 {
			return
		}
		loss := nn.QErrorLoss(t, out.Pred, n.TrueCard, m.LogMax)
		loss.Grad[0] = w
	}
	if nodeWise {
		root.Walk(attach)
	} else {
		attach(root)
	}
}

// EvalQError computes the mean and per-sample q-errors of a model's root
// (final-result) predictions over the samples, the metric of the paper's
// Figures 1/20/21.
func EvalQError(m *treenn.TreeModel, enc *encode.Encoder, samples []Sample) (mean float64, all []float64) {
	feat := func(n *plan.Node) tensor.Vec { return enc.EncodeNode(n) }
	for _, s := range samples {
		est := m.Predict(s.Plan, feat)
		q := nn.QError(s.Plan.TrueCard, est)
		all = append(all, q)
		mean += q
	}
	if len(all) > 0 {
		mean /= float64(len(all))
	}
	return mean, all
}
