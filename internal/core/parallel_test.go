package core

import (
	"testing"

	"github.com/lpce-db/lpce/internal/nn"
)

// sameWeights compares two parameter lists bit for bit and reports the first
// divergence.
func sameWeights(t *testing.T, what string, a, b []*nn.Param) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: param count %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Val) != len(b[i].Val) {
			t.Fatalf("%s: param %d shape mismatch (%s vs %s)", what, i, a[i].Name, b[i].Name)
		}
		for j := range a[i].Val {
			if a[i].Val[j] != b[i].Val[j] {
				t.Fatalf("%s: %s[%d] = %v (serial) vs %v (parallel) — weights not byte-identical",
					what, a[i].Name, j, a[i].Val[j], b[i].Val[j])
			}
		}
	}
}

func TestEpochOrderDeterministicPermutation(t *testing.T) {
	const n = 97
	a := EpochOrder(7, streamTrainLoop, 3, n)
	b := EpochOrder(7, streamTrainLoop, 3, n)
	if len(a) != n {
		t.Fatalf("order length %d", len(a))
	}
	seen := make([]bool, n)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("EpochOrder is not a pure function of (seed, stream, epoch, n)")
		}
		if a[i] < 0 || a[i] >= n || seen[a[i]] {
			t.Fatalf("not a permutation: index %d at position %d", a[i], i)
		}
		seen[a[i]] = true
	}
}

func TestEpochOrderStreamsIndependent(t *testing.T) {
	// Different epochs and different streams must draw from unrelated
	// shuffles; a coupled RNG stream would replay the same permutation.
	same := func(a, b []int) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	base := EpochOrder(7, streamTrainLoop, 0, 64)
	if same(base, EpochOrder(7, streamTrainLoop, 1, 64)) {
		t.Fatal("consecutive epochs produced identical shuffles")
	}
	if same(base, EpochOrder(7, streamDistillHint, 0, 64)) {
		t.Fatal("distinct streams produced identical shuffles")
	}
	if same(base, EpochOrder(8, streamTrainLoop, 0, 64)) {
		t.Fatal("distinct seeds produced identical shuffles")
	}
}

// TestTrainTreeModelParallelDeterministic is the tentpole invariant: training
// with a worker pool produces weights byte-identical to serial training,
// because per-sample gradients are buffered and reduced in sample-index
// order regardless of which goroutine computed them.
func TestTrainTreeModelParallelDeterministic(t *testing.T) {
	_, enc, samples, logMax := fixture(t)
	cfg := tinyCfg(31)
	cfg.Workers = 1
	serial := TrainTreeModel(cfg, enc, samples, logMax, nil)
	cfg.Workers = 4
	parallel := TrainTreeModel(cfg, enc, samples, logMax, nil)
	sameWeights(t, "tree model", serial.Params.All(), parallel.Params.All())
}

func TestTrainLPCEIParallelDeterministic(t *testing.T) {
	_, enc, samples, logMax := fixture(t)
	mk := func(workers int) *LPCEI {
		cfg := LPCEIConfig{
			Teacher: TrainConfig{Hidden: 24, OutWidth: 32, Epochs: 3, Batch: 16, LR: 3e-3, NodeWise: true, Seed: 32, Workers: workers},
			Student: TrainConfig{Hidden: 8, OutWidth: 8, Epochs: 3, Batch: 16, LR: 3e-3, NodeWise: true, Seed: 32, Workers: workers},
		}
		return TrainLPCEI(cfg, enc, samples, logMax)
	}
	serial, parallel := mk(1), mk(4)
	sameWeights(t, "teacher", serial.Teacher.Params.All(), parallel.Teacher.Params.All())
	sameWeights(t, "student", serial.Model.Params.All(), parallel.Model.Params.All())
}

func TestTrainRefinerParallelDeterministic(t *testing.T) {
	db, enc, samples, logMax := fixture(t)
	mk := func(workers int) *Refiner {
		base := tinyCfg(33)
		base.Workers = workers
		cfg := RefinerConfig{Kind: RefinerFull, Base: base, AdjustEpochs: 2, PrefixesPerSample: 2}
		return TrainRefiner(cfg, enc, db, samples, logMax)
	}
	serial, parallel := mk(1), mk(4)
	sameWeights(t, "refine", serial.Refine.Params.All(), parallel.Refine.Params.All())
	sameWeights(t, "connect", serial.Connect.Params.All(), parallel.Connect.Params.All())
	sameWeights(t, "card", serial.CardM.Params.All(), parallel.CardM.Params.All())
}

// TestEpochResumeIndependentOfWorkers guards the shuffle-stream bugfix: the
// order drawn for an epoch depends only on (seed, stream, epoch, n), never on
// how many batches or gradient evaluations preceded it, so changing Workers
// or resuming mid-run cannot shift later epochs' shuffles.
func TestEpochResumeIndependentOfWorkers(t *testing.T) {
	late := EpochOrder(9, streamTrainLoop, 5, 40)
	// Draw unrelated epochs in between — a stateful RNG would advance.
	_ = EpochOrder(9, streamTrainLoop, 0, 40)
	_ = EpochOrder(9, streamAdjust, 2, 40)
	again := EpochOrder(9, streamTrainLoop, 5, 40)
	for i := range late {
		if late[i] != again[i] {
			t.Fatal("epoch shuffle depends on draw history")
		}
	}
}

func TestGradPoolMatchesSingleWorker(t *testing.T) {
	// The pool's reduction must not depend on worker count even at the raw
	// GradPool level (independent of any model): accumulate per-index
	// gradients into a single parameter and compare 1 vs 3 workers.
	build := func(workers int) []float64 {
		ps := nn.NewParams()
		p := ps.NewVecParam("w", 8)
		newWorker := func() (func(si int, weight float64), []*nn.Params) {
			rep := nn.NewParams()
			rp := rep.NewVecParam("w", 8)
			run := func(si int, weight float64) {
				for j := range rp.Grad {
					rp.Grad[j] += weight * float64(si+1) * float64(j+1)
				}
			}
			return run, []*nn.Params{rep}
		}
		pool := NewGradPool(workers, 8, []*nn.Params{ps}, newWorker)
		pool.RunBatch([]int{4, 1, 7, 2}, 0.25)
		out := make([]float64, len(p.Grad))
		copy(out, p.Grad)
		return out
	}
	a, b := build(1), build(3)
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("grad[%d] = %v (1 worker) vs %v (3 workers)", j, a[j], b[j])
		}
	}
}
