package core

import (
	"math"
	"sync"
	"testing"

	"github.com/lpce-db/lpce/internal/encode"
	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
	"github.com/lpce-db/lpce/internal/testutil"
	"github.com/lpce-db/lpce/internal/treenn"
	"github.com/lpce-db/lpce/internal/workload"
)

// Shared fixture: a small sample set collected once per test binary.
var (
	fixOnce    sync.Once
	fixDB      *storage.Database
	fixEnc     *encode.Encoder
	fixSamples []Sample
	fixLogMax  float64
)

func fixture(t *testing.T) (*storage.Database, *encode.Encoder, []Sample, float64) {
	t.Helper()
	fixOnce.Do(func() {
		fixDB = testutil.TinyDB()
		fixEnc = encode.NewEncoder(fixDB.Schema)
		g := workload.NewGenerator(fixDB, 81)
		queries := g.QueriesRange(60, 2, 5)
		est := histogram.NewEstimator(fixDB)
		fixSamples, _ = CollectSamples(fixDB, est, queries, 50_000_000)
		fixLogMax = MaxLogCard(fixSamples)
	})
	if len(fixSamples) < 30 {
		t.Fatalf("fixture collected only %d samples", len(fixSamples))
	}
	return fixDB, fixEnc, fixSamples, fixLogMax
}

func tinyCfg(seed int64) TrainConfig {
	return TrainConfig{Hidden: 16, OutWidth: 16, Epochs: 6, Batch: 16, LR: 3e-3, NodeWise: true, Seed: seed}
}

func TestCollectSamplesStampsTrueCards(t *testing.T) {
	_, _, samples, _ := fixture(t)
	for _, s := range samples[:10] {
		s.Plan.Walk(func(n *plan.Node) {
			if n.TrueCard < 0 {
				t.Fatalf("node %v missing true cardinality", n.Op)
			}
		})
	}
}

func TestCollectSamplesSkipsOverBudget(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 82)
	queries := g.Queries(5, 3)
	est := histogram.NewEstimator(db)
	_, stats := CollectSamples(db, est, queries, 10) // absurdly small budget
	if stats.Skipped != 5 || stats.Collected != 0 {
		t.Fatalf("stats = %+v, want all skipped", stats)
	}
}

func TestMaxLogCard(t *testing.T) {
	_, _, samples, logMax := fixture(t)
	var maxCard float64
	for _, s := range samples {
		s.Plan.Walk(func(n *plan.Node) {
			if n.TrueCard > maxCard {
				maxCard = n.TrueCard
			}
		})
	}
	if math.Abs(logMax-math.Log(maxCard)) > 1e-9 {
		t.Fatalf("MaxLogCard = %v, want %v", logMax, math.Log(maxCard))
	}
}

func TestSplitTrainValidation(t *testing.T) {
	_, _, samples, _ := fixture(t)
	train, val := SplitTrainValidation(samples, 0.1)
	if len(train)+len(val) != len(samples) {
		t.Fatal("split loses samples")
	}
	if len(val) != len(samples)/10 {
		t.Fatalf("val size = %d", len(val))
	}
	// degenerate fractions
	tr2, v2 := SplitTrainValidation(samples[:1], 0.9)
	if len(tr2) != 1 || len(v2) != 0 {
		t.Fatal("single-sample split should keep the sample in train")
	}
}

func TestTrainingImprovesOverUntrained(t *testing.T) {
	_, enc, samples, logMax := fixture(t)
	train, val := SplitTrainValidation(samples, 0.2)

	untrained := treenn.NewTreeModel(treenn.Config{
		InputDim: enc.Dim(), Hidden: 16, OutWidth: 16, Cell: treenn.CellSRU, Seed: 9,
	})
	untrained.LogMax = logMax
	meanBefore, _ := EvalQError(untrained, enc, val)

	m := TrainTreeModel(tinyCfg(10), enc, train, logMax, nil)
	meanAfter, all := EvalQError(m, enc, val)
	if len(all) != len(val) {
		t.Fatal("EvalQError lost samples")
	}
	if meanAfter >= meanBefore {
		t.Fatalf("training did not improve q-error: %v -> %v", meanBefore, meanAfter)
	}
	for _, q := range all {
		if q < 1 || math.IsNaN(q) || math.IsInf(q, 0) {
			t.Fatalf("invalid q-error %v", q)
		}
	}
}

func TestQueryWiseLossAlsoTrains(t *testing.T) {
	_, enc, samples, logMax := fixture(t)
	cfg := tinyCfg(11)
	cfg.NodeWise = false
	m := TrainTreeModel(cfg, enc, samples, logMax, nil)
	mean, _ := EvalQError(m, enc, samples)
	if math.IsNaN(mean) || mean < 1 {
		t.Fatalf("query-wise training produced invalid mean q %v", mean)
	}
}

func TestDistillCompressesModel(t *testing.T) {
	_, enc, samples, logMax := fixture(t)
	cfg := LPCEIConfig{
		Teacher: TrainConfig{Hidden: 32, OutWidth: 64, Epochs: 4, Batch: 16, LR: 3e-3, NodeWise: true, Seed: 12},
		Student: TrainConfig{Hidden: 8, OutWidth: 8, Epochs: 3, Batch: 16, LR: 3e-3, NodeWise: true, Seed: 12},
	}
	lp := TrainLPCEI(cfg, enc, samples, logMax)
	if lp.Model.NumWeights()*5 > lp.Teacher.NumWeights() {
		t.Fatalf("student %d weights vs teacher %d: compression below 5x",
			lp.Model.NumWeights(), lp.Teacher.NumWeights())
	}
	mean, _ := EvalQError(lp.Model, enc, samples)
	if math.IsNaN(mean) || mean < 1 {
		t.Fatalf("distilled model invalid (mean q = %v)", mean)
	}
	if lp.Model.LogMax != lp.Teacher.LogMax {
		t.Fatal("student must inherit the teacher's normalization")
	}
}

func TestTreeEstimatorInterface(t *testing.T) {
	db, enc, samples, logMax := fixture(t)
	m := TrainTreeModel(tinyCfg(13), enc, samples, logMax, nil)
	est := &TreeEstimator{Label: "lpce-i", Model: m, Enc: enc}
	if est.Name() != "lpce-i" {
		t.Fatal("name")
	}
	g := workload.NewGenerator(db, 83)
	q := g.Query(3)
	for mask := query.BitSet(1); mask <= q.AllTablesMask(); mask++ {
		if !q.Connected(mask) {
			continue
		}
		v := est.EstimateSubset(q, mask)
		if v < 1 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("estimate %v invalid for mask %b", v, uint32(mask))
		}
	}
}

func TestPrefixSubtreesInvariants(t *testing.T) {
	_, _, samples, _ := fixture(t)
	s := samples[0]
	m := s.Plan.NumNodes()
	nodes := s.Plan.Nodes()
	for k := 1; k < m; k++ {
		execRoots, remaining := PrefixSubtrees(s.Plan, k)
		// executed subtrees cover exactly the first k post-order nodes
		covered := map[*plan.Node]bool{}
		for _, r := range execRoots {
			r.Walk(func(n *plan.Node) {
				if covered[n] {
					t.Fatal("executed subtrees overlap")
				}
				covered[n] = true
			})
		}
		if len(covered) != k {
			t.Fatalf("k=%d: executed cover %d nodes", k, len(covered))
		}
		for i, n := range nodes {
			if (i < k) != covered[n] {
				t.Fatalf("k=%d: node %d coverage mismatch", k, i)
			}
		}
		if len(remaining)+len(covered) != m {
			t.Fatalf("k=%d: remaining %d + covered %d != %d", k, len(remaining), len(covered), m)
		}
	}
}

func TestRefinerFullTrainAndEval(t *testing.T) {
	db, enc, samples, logMax := fixture(t)
	cfg := RefinerConfig{Kind: RefinerFull, Base: tinyCfg(14), AdjustEpochs: 3, PrefixesPerSample: 2}
	r := TrainRefiner(cfg, enc, db, samples, logMax)
	if r.Content == nil || r.CardM == nil || r.Refine == nil || r.Connect == nil {
		t.Fatal("full refiner missing modules")
	}
	s := samples[1]
	m := s.Plan.NumNodes()
	for _, k := range []int{1, m / 2, m - 1} {
		qs := r.EvalPrefix(s, k)
		for _, q := range qs {
			if q < 1 || math.IsNaN(q) || math.IsInf(q, 0) {
				t.Fatalf("invalid refined q-error %v at k=%d", q, k)
			}
		}
	}
}

func TestRefinerVariants(t *testing.T) {
	db, enc, samples, logMax := fixture(t)
	for _, kind := range []RefinerKind{RefinerSingle, RefinerTwo} {
		cfg := RefinerConfig{Kind: kind, Base: tinyCfg(15), AdjustEpochs: 2, PrefixesPerSample: 2}
		r := TrainRefiner(cfg, enc, db, samples, logMax)
		if kind == RefinerSingle && (r.Refine != nil || r.Content != nil) {
			t.Fatal("single variant should only have the cardinality module")
		}
		if kind == RefinerTwo && (r.Content != nil || r.Connect != nil) {
			t.Fatal("two-module variant should not have content/connect")
		}
		qs := r.EvalPrefix(samples[2], 2)
		if len(qs) == 0 {
			t.Fatalf("%v produced no refined estimates", kind)
		}
	}
}

func TestRefinedEstimatorExactForExecuted(t *testing.T) {
	db, enc, samples, logMax := fixture(t)
	cfg := RefinerConfig{Kind: RefinerFull, Base: tinyCfg(16), AdjustEpochs: 2, PrefixesPerSample: 2}
	r := TrainRefiner(cfg, enc, db, samples, logMax)
	s := samples[3]
	execRoots, _ := PrefixSubtrees(s.Plan, s.Plan.NumNodes()/2)
	var execs []ExecutedSub
	for _, n := range execRoots {
		execs = append(execs, ExecutedSub{Node: n, Card: n.TrueCard})
	}
	est := r.Estimator(s.Query, execs)
	for _, e := range execs {
		if got := est.EstimateSubset(s.Query, e.Mask()); got != e.Card {
			t.Fatalf("executed subset should be exact: got %v want %v", got, e.Card)
		}
	}
	// full-query estimate should be finite and >= 1
	v := est.EstimateSubset(s.Query, s.Query.AllTablesMask())
	if v < 1 || math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("refined full estimate %v invalid", v)
	}
	if est.Name() != "lpce-r" {
		t.Fatalf("name = %s", est.Name())
	}
}

func TestSingleCardsUsesRealForExecuted(t *testing.T) {
	db, enc, samples, logMax := fixture(t)
	cfg := RefinerConfig{Kind: RefinerSingle, Base: tinyCfg(17)}
	r := TrainRefiner(cfg, enc, db, samples, logMax)
	s := samples[4]
	execRoots, _ := PrefixSubtrees(s.Plan, 3)
	executed := markExecuted(execRoots)
	cards := r.singleCards(s.Plan, executed)
	for n, isExec := range executed {
		if isExec && cards[n] != n.TrueCard {
			t.Fatalf("executed node card = %v, want real %v", cards[n], n.TrueCard)
		}
	}
}

func TestBuildUnitPlanCoversMask(t *testing.T) {
	db, _, samples, _ := fixture(t)
	_ = db
	s := samples[5]
	q := s.Query
	execRoots, _ := PrefixSubtrees(s.Plan, s.Plan.NumNodes()/2)
	var units []ExecutedSub
	var covered query.BitSet
	for _, n := range execRoots {
		units = append(units, ExecutedSub{Node: n, Card: n.TrueCard})
		covered = covered.Union(n.Tables)
	}
	full := q.AllTablesMask()
	root := buildUnitPlan(q, full, covered, units)
	if root.Tables != full {
		t.Fatalf("unit plan covers %b, want %b", uint32(root.Tables), uint32(full))
	}
}

func TestCardFeatureShapes(t *testing.T) {
	db, enc, samples, logMax := fixture(t)
	feat := CardFeature(enc, logMax, db)
	s := samples[6]
	s.Plan.Walk(func(n *plan.Node) {
		v := feat(n)
		if len(v) != enc.DimWithCards() {
			t.Fatalf("card feature dim = %d, want %d", len(v), enc.DimWithCards())
		}
		for _, x := range v[len(v)-2:] {
			if x < 0 || x > 1 || math.IsNaN(x) {
				t.Fatalf("card slot %v out of range", x)
			}
		}
	})
}

func TestCloneModelIndependence(t *testing.T) {
	_, enc, samples, logMax := fixture(t)
	m := TrainTreeModel(tinyCfg(18), enc, samples[:10], logMax, nil)
	cp := cloneModel(m)
	if cp.NumWeights() != m.NumWeights() {
		t.Fatal("clone changed size")
	}
	cp.Params.All()[0].Val[0] += 1
	if m.Params.All()[0].Val[0] == cp.Params.All()[0].Val[0] {
		t.Fatal("clone aliases parameters")
	}
}
