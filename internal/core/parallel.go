package core

import (
	"math/rand"
	"sync"

	"github.com/lpce-db/lpce/internal/nn"
)

// Shuffle streams. Every training phase draws its per-epoch sample order
// (and any auxiliary randomness) from its own stream so the phases stay
// independent of each other, of the worker count, and of how many epochs
// ran before — see EpochOrder.
const (
	streamTrainLoop = iota + 1
	streamDistillHint
	streamDistillPredict
	streamAdjust
	streamAdjustPrefix
)

// mixSeed derives the RNG seed of one (stream, epoch) cell from the user
// seed with a splitmix64-style finalizer, so neighbouring cells produce
// unrelated sequences.
func mixSeed(seed int64, stream, epoch int) int64 {
	z := uint64(seed) ^ 0x9e3779b97f4a7c15
	z += 0xbf58476d1ce4e5b9 * uint64(stream+1)
	z += 0x94d049bb133111eb * uint64(epoch+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// epochRand returns the RNG of one (stream, epoch) cell.
func epochRand(seed int64, stream, epoch int) *rand.Rand {
	return rand.New(rand.NewSource(mixSeed(seed, stream, epoch)))
}

// EpochOrder returns the deterministic minibatch sample order of one
// training epoch: a permutation of [0, n) that is a pure function of
// (seed, stream, epoch). Earlier versions derived every epoch's order from
// one sequential RNG stream, so the order of epoch k depended on having
// replayed epochs 0..k-1 in the same process — reproducibility broke under
// epoch-resume and any configuration change that consumed randomness.
// EpochOrder's independence per cell is also what keeps the shuffle
// identical across TrainConfig.Workers settings.
func EpochOrder(seed int64, stream, epoch, n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	epochRand(seed, stream, epoch).Shuffle(n, func(i, j int) {
		order[i], order[j] = order[j], order[i]
	})
	return order
}

// gradWorker is one goroutine's training state: a closure computing one
// sample's gradients plus the private replica registries it writes them to.
type gradWorker struct {
	run   func(si int, weight float64)
	grads []*nn.Params
}

// GradPool fans a minibatch's per-sample forward/backward passes across a
// fixed set of workers while keeping the accumulated gradient bit-identical
// to serial execution for any worker count: every sample's backward pass
// runs against a private weight-sharing replica, its flat gradient is
// copied into the slot of the sample's position in the batch, and the slots
// are reduced into the master registries in ascending position order. The
// reduction order — not the execution order — determines the floating-point
// result, so scheduling is free to be arbitrary.
type GradPool struct {
	workers int
	master  []*nn.Params
	ws      []gradWorker
	bufs    [][]float64 // one flat gradient slot per batch position
}

// NewGradPool builds the pool. newWorker is called once per worker and must
// return a per-sample gradient closure together with the replica registries
// it accumulates into, parallel to master.
func NewGradPool(workers, maxBatch int, master []*nn.Params, newWorker func() (func(si int, weight float64), []*nn.Params)) *GradPool {
	if workers < 1 {
		workers = 1
	}
	size := 0
	for _, ps := range master {
		size += ps.NumWeights()
	}
	p := &GradPool{workers: workers, master: master}
	for w := 0; w < workers; w++ {
		run, grads := newWorker()
		if len(grads) != len(master) {
			panic("core: worker registries do not match master")
		}
		p.ws = append(p.ws, gradWorker{run: run, grads: grads})
	}
	p.bufs = make([][]float64, maxBatch)
	for i := range p.bufs {
		p.bufs[i] = make([]float64, size)
	}
	return p
}

// snapshot copies a worker's replica gradients into the slot for one batch
// position.
func (w gradWorker) snapshot(buf []float64) {
	off := 0
	for _, ps := range w.grads {
		off = ps.CopyGradTo(buf, off)
	}
}

// RunBatch computes the summed gradient of the samples at idxs into the
// master registries (which are zeroed first). weight scales each sample's
// loss seed, typically 1/len(idxs).
func (p *GradPool) RunBatch(idxs []int, weight float64) {
	for _, ps := range p.master {
		ps.ZeroGrad()
	}
	one := func(w gradWorker, pos int) {
		for _, ps := range w.grads {
			ps.ZeroGrad()
		}
		w.run(idxs[pos], weight)
		w.snapshot(p.bufs[pos])
	}
	if p.workers == 1 {
		for pos := range idxs {
			one(p.ws[0], pos)
		}
	} else {
		var wg sync.WaitGroup
		for wi := 0; wi < p.workers; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				for pos := wi; pos < len(idxs); pos += p.workers {
					one(p.ws[wi], pos)
				}
			}(wi)
		}
		wg.Wait()
	}
	// Ordered reduction: the only floating-point accumulation across
	// samples, fixed by batch position regardless of worker count.
	for pos := range idxs {
		off := 0
		for _, ps := range p.master {
			off = ps.AddGradFrom(p.bufs[pos], off)
		}
	}
}
