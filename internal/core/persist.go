package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"github.com/lpce-db/lpce/internal/encode"
	"github.com/lpce-db/lpce/internal/storage"
	"github.com/lpce-db/lpce/internal/treenn"
)

// Model persistence: saved models are self-describing (architecture
// metadata travels with the weights) so deployments load them without
// reconstructing training configuration.

type treeModelSpec struct {
	Cfg    treenn.Config
	LogMax float64
}

// SaveTreeModel writes a tree model (architecture + weights) to w.
func SaveTreeModel(w io.Writer, m *treenn.TreeModel) error {
	return encodeTreeModel(gob.NewEncoder(w), m)
}

func encodeTreeModel(enc *gob.Encoder, m *treenn.TreeModel) error {
	if err := enc.Encode(treeModelSpec{Cfg: m.Cfg, LogMax: m.LogMax}); err != nil {
		return fmt.Errorf("core: encode model spec: %w", err)
	}
	return m.Params.EncodeGob(enc)
}

// LoadTreeModel reconstructs a tree model previously written by
// SaveTreeModel.
func LoadTreeModel(r io.Reader) (*treenn.TreeModel, error) {
	return decodeTreeModel(gob.NewDecoder(r))
}

func decodeTreeModel(dec *gob.Decoder) (*treenn.TreeModel, error) {
	var spec treeModelSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("core: decode model spec: %w", err)
	}
	m := treenn.NewTreeModel(spec.Cfg)
	m.LogMax = spec.LogMax
	if err := m.Params.DecodeGob(dec); err != nil {
		return nil, err
	}
	return m, nil
}

// SaveTreeModelFile writes the model to path.
func SaveTreeModelFile(path string, m *treenn.TreeModel) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := SaveTreeModel(f, m); err != nil {
		return err
	}
	return f.Close()
}

// LoadTreeModelFile loads a model from path.
func LoadTreeModelFile(path string) (*treenn.TreeModel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadTreeModel(f)
}

type refinerSpec struct {
	Kind       RefinerKind
	LogMax     float64
	HasContent bool
	HasRefine  bool
	HasConnect bool
	ConnectDim int
}

// SaveRefiner writes a trained LPCE-R (all modules plus the connect layer)
// to w.
func SaveRefiner(w io.Writer, r *Refiner) error {
	enc := gob.NewEncoder(w)
	spec := refinerSpec{
		Kind: r.Kind, LogMax: r.LogMax,
		HasContent: r.Content != nil,
		HasRefine:  r.Refine != nil,
		HasConnect: r.Connect != nil,
	}
	if r.Connect != nil {
		spec.ConnectDim = r.CardM.Cfg.Hidden
	}
	if err := enc.Encode(spec); err != nil {
		return fmt.Errorf("core: encode refiner spec: %w", err)
	}
	if err := encodeTreeModel(enc, r.CardM); err != nil {
		return err
	}
	if r.Content != nil {
		if err := encodeTreeModel(enc, r.Content); err != nil {
			return err
		}
	}
	if r.Refine != nil {
		if err := encodeTreeModel(enc, r.Refine); err != nil {
			return err
		}
	}
	if r.Connect != nil {
		if err := r.Connect.Params.EncodeGob(enc); err != nil {
			return err
		}
	}
	return nil
}

// LoadRefiner reconstructs a refiner written by SaveRefiner. The encoder
// and database are runtime dependencies that do not travel with the
// weights; they must match the ones used at training time.
func LoadRefiner(rd io.Reader, enc *encode.Encoder, db *storage.Database) (*Refiner, error) {
	dec := gob.NewDecoder(rd)
	var spec refinerSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("core: decode refiner spec: %w", err)
	}
	r := &Refiner{Kind: spec.Kind, LogMax: spec.LogMax, Enc: enc, DB: db}
	var err error
	if r.CardM, err = decodeTreeModel(dec); err != nil {
		return nil, err
	}
	if spec.HasContent {
		if r.Content, err = decodeTreeModel(dec); err != nil {
			return nil, err
		}
	}
	if spec.HasRefine {
		if r.Refine, err = decodeTreeModel(dec); err != nil {
			return nil, err
		}
	}
	if spec.HasConnect {
		r.Connect = NewConnectLayer(spec.ConnectDim, 0)
		if err := r.Connect.Params.DecodeGob(dec); err != nil {
			return nil, err
		}
	}
	return r, nil
}
