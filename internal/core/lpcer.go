package core

import (
	"sort"

	"github.com/lpce-db/lpce/internal/autodiff"
	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/encode"
	"github.com/lpce-db/lpce/internal/nn"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
	"github.com/lpce-db/lpce/internal/tensor"
	"github.com/lpce-db/lpce/internal/treenn"
)

// RefinerKind selects the LPCE-R architecture: the paper's full three-module
// design or the two ablations of Table 3.
type RefinerKind int

// Refiner variants.
const (
	// RefinerFull is LPCE-R: content + cardinality modules merged by a
	// learned connect layer feeding the refine module.
	RefinerFull RefinerKind = iota
	// RefinerSingle is LPCE-R-Single: one cardinality-augmented module;
	// executed operators use real cardinalities, remaining operators use
	// the model's own estimates.
	RefinerSingle
	// RefinerTwo is LPCE-R-Two: cardinality module + refine module, no
	// content module and no connect layer.
	RefinerTwo
)

func (k RefinerKind) String() string {
	switch k {
	case RefinerSingle:
		return "lpce-r-single"
	case RefinerTwo:
		return "lpce-r-two"
	default:
		return "lpce-r"
	}
}

// ConnectLayer merges the content embedding c_A and the cardinality
// embedding c_B of an executed sub-plan (paper Eq. 6):
//
//	w_A = σ(W_A·c_A + b_A),  w_B = σ(W_B·c_B + b_B)
//	c_AB = ReLU(W_AB(w_A ⊙ c_A + w_B ⊙ c_B) + b_AB)
type ConnectLayer struct {
	Params       *nn.Params
	wa, wb, wout *nn.Linear
}

// NewConnectLayer builds a connect layer over hidden-width embeddings.
func NewConnectLayer(hidden int, seed int64) *ConnectLayer {
	ps := nn.NewParams()
	rng := tensor.NewRNG(seed)
	return &ConnectLayer{
		Params: ps,
		wa:     nn.NewLinear(ps, "connect.wa", hidden, hidden, rng),
		wb:     nn.NewLinear(ps, "connect.wb", hidden, hidden, rng),
		wout:   nn.NewLinear(ps, "connect.wout", hidden, hidden, rng),
	}
}

// Replica returns a connect layer sharing this layer's weights with private
// gradient buffers, for data-parallel adjustment workers. Like
// treenn.TreeModel.Replica, it must not be stepped by an optimizer.
func (c *ConnectLayer) Replica() *ConnectLayer {
	ps := c.Params.ShareWeights()
	return &ConnectLayer{
		Params: ps,
		wa:     &nn.Linear{W: ps.Get("connect.wa.W"), B: ps.Get("connect.wa.b")},
		wb:     &nn.Linear{W: ps.Get("connect.wb.W"), B: ps.Get("connect.wb.b")},
		wout:   &nn.Linear{W: ps.Get("connect.wout.W"), B: ps.Get("connect.wout.b")},
	}
}

// Apply merges the two embeddings on the tape.
func (c *ConnectLayer) Apply(t *autodiff.Tape, cA, cB *autodiff.Node) *autodiff.Node {
	wA := t.Sigmoid(c.wa.Apply(t, cA))
	wB := t.Sigmoid(c.wb.Apply(t, cB))
	mix := t.Add(t.Mul(wA, cA), t.Mul(wB, cB))
	return t.ReLU(c.wout.Apply(t, mix))
}

// RefinerConfig controls LPCE-R training.
type RefinerConfig struct {
	Kind RefinerKind
	// Base configures each module's architecture and pre-training.
	Base TrainConfig
	// AdjustEpochs is the fine-tuning budget for the refine module.
	AdjustEpochs int
	// PrefixesPerSample bounds the executed-prefix positions drawn per plan
	// per epoch during adjustment (a plan with m operators provides m−1
	// potential samples; using all of them is wasteful).
	PrefixesPerSample int
}

// Defaults fills zero fields.
func (c RefinerConfig) Defaults() RefinerConfig {
	c.Base = c.Base.Defaults()
	if c.AdjustEpochs == 0 {
		c.AdjustEpochs = c.Base.Epochs
	}
	if c.PrefixesPerSample == 0 {
		c.PrefixesPerSample = 3
	}
	return c
}

// Refiner is the trained LPCE-R model (or one of its ablation variants).
type Refiner struct {
	Kind    RefinerKind
	Enc     *encode.Encoder
	DB      *storage.Database
	LogMax  float64
	Content *treenn.TreeModel // nil for Single and Two
	CardM   *treenn.TreeModel // cardinality-augmented module
	Refine  *treenn.TreeModel // nil for Single
	Connect *ConnectLayer     // nil unless Full
}

// TrainRefiner runs the two-stage training of §5.2: pre-train the content
// and cardinality modules (refine starts as a copy of content), then freeze
// them and fine-tune the refine module (plus the connect layer) on executed
// prefixes.
func TrainRefiner(cfg RefinerConfig, enc *encode.Encoder, db *storage.Database, samples []Sample, logMax float64) *Refiner {
	cfg = cfg.Defaults()
	r := &Refiner{Kind: cfg.Kind, Enc: enc, DB: db, LogMax: logMax}

	cardFeat := CardFeature(enc, logMax, db)
	r.CardM = TrainTreeModelWithDim(cfg.Base, enc.DimWithCards(), samples, logMax, cardFeat)

	if cfg.Kind == RefinerSingle {
		return r
	}

	if cfg.Kind == RefinerFull {
		r.Content = TrainTreeModel(cfg.Base, enc, samples, logMax, nil)
		r.Refine = cloneModel(r.Content)
		r.Connect = NewConnectLayer(cfg.Base.Hidden, cfg.Base.Seed+41)
	} else { // RefinerTwo
		pre := TrainTreeModel(cfg.Base, enc, samples, logMax, nil)
		r.Refine = pre
	}

	r.adjust(cfg, samples)
	return r
}

// cloneModel builds a new model with identical architecture and parameter
// values ("refine module shares the same parameters as content module").
func cloneModel(m *treenn.TreeModel) *treenn.TreeModel {
	cp := treenn.NewTreeModel(m.Cfg)
	cp.LogMax = m.LogMax
	src := m.Params.All()
	dst := cp.Params.All()
	for i := range src {
		copy(dst[i].Val, src[i].Val)
	}
	return cp
}

// adjust is stage 2: content and cardinality modules are frozen (their
// embeddings enter the tape as constants) and the refine module — plus the
// connect layer for the full design — is fine-tuned to predict the
// cardinalities of the remaining operators for random executed prefixes.
// The prefix cut points are drawn in the main goroutine in epoch order
// before each epoch's batches run, so they are identical for every
// Workers setting.
func (r *Refiner) adjust(cfg RefinerConfig, samples []Sample) {
	if len(samples) == 0 {
		return
	}
	optRefine := nn.NewAdam(cfg.Base.LR)
	var optConnect *nn.Adam
	if r.Connect != nil {
		optConnect = nn.NewAdam(cfg.Base.LR)
	}
	plainFeat := func(n *plan.Node) tensor.Vec { return r.Enc.EncodeNode(n) }

	master := []*nn.Params{r.Refine.Params}
	if r.Connect != nil {
		master = append(master, r.Connect.Params)
	}
	// order and ks are refreshed per epoch by the main goroutine between
	// batches; RunBatch's WaitGroup ordering makes the writes visible to the
	// workers, which index both by epoch-order position.
	var order []int
	var ks [][]int
	pool := NewGradPool(cfg.Base.Workers, cfg.Base.Batch, master,
		func() (func(int, float64), []*nn.Params) {
			refRep := r.Refine.Replica()
			var conRep *ConnectLayer
			grads := []*nn.Params{refRep.Params}
			connect := r.Connect
			if r.Connect != nil {
				conRep = r.Connect.Replica()
				connect = conRep
				grads = append(grads, conRep.Params)
			}
			run := func(oi int, weight float64) {
				s := samples[order[oi]]
				for _, k := range ks[oi] {
					execRoots, remaining := PrefixSubtrees(s.Plan, k)
					if len(execRoots) == 0 || len(remaining) == 0 {
						continue
					}
					t := autodiff.NewTape()
					childC := r.executedOverridesUsing(t, connect, execRoots)
					outs := refRep.Forward(t, s.Plan, plainFeat, childC)
					w := weight / float64(cfg.PrefixesPerSample)
					for _, n := range remaining {
						out, ok := outs[n]
						if !ok || n.TrueCard < 0 {
							continue
						}
						loss := nn.QErrorLoss(t, out.Pred, n.TrueCard, r.LogMax)
						loss.Grad[0] = w
					}
					t.BackwardFrom()
				}
			}
			return run, grads
		})

	// Batches index epoch-order positions, not sample indices, so the
	// pre-drawn ks line up with their samples.
	pos := make([]int, len(samples))
	for i := range pos {
		pos[i] = i
	}
	for epoch := 0; epoch < cfg.AdjustEpochs; epoch++ {
		order = EpochOrder(cfg.Base.Seed, streamAdjust, epoch, len(samples))
		prng := epochRand(cfg.Base.Seed, streamAdjustPrefix, epoch)
		ks = make([][]int, len(order))
		for i, si := range order {
			m := samples[si].Plan.NumNodes()
			if m < 2 {
				continue
			}
			ki := make([]int, cfg.PrefixesPerSample)
			for p := range ki {
				ki[p] = 1 + prng.Intn(m-1)
			}
			ks[i] = ki
		}
		for b := 0; b < len(pos); b += cfg.Base.Batch {
			end := b + cfg.Base.Batch
			if end > len(pos) {
				end = len(pos)
			}
			pool.RunBatch(pos[b:end], 1/float64(end-b))
			r.Refine.Params.ClipGrad(cfg.Base.ClipNorm)
			optRefine.Step(r.Refine.Params)
			if r.Connect != nil {
				r.Connect.Params.ClipGrad(cfg.Base.ClipNorm)
				optConnect.Step(r.Connect.Params)
			}
		}
	}
}

// executedOverrides computes, for each executed subtree root, the embedding
// the refine module sees in place of that child: the connect-layer merge of
// the content and cardinality embeddings (full design) or the cardinality
// embedding alone (two-module ablation). The module embeddings are detached
// so no gradient reaches the frozen modules.
func (r *Refiner) executedOverrides(t *autodiff.Tape, execRoots []*plan.Node) map[*plan.Node]*autodiff.Node {
	return r.executedOverridesUsing(t, r.Connect, execRoots)
}

// executedOverridesUsing is executedOverrides with an explicit connect
// layer, so adjustment workers substitute their gradient replicas while the
// frozen content/cardinality modules are shared read-only.
func (r *Refiner) executedOverridesUsing(t *autodiff.Tape, connect *ConnectLayer, execRoots []*plan.Node) map[*plan.Node]*autodiff.Node {
	childC := make(map[*plan.Node]*autodiff.Node, len(execRoots))
	for _, sub := range execRoots {
		cB := r.moduleEmbedding(r.CardM, sub, CardFeature(r.Enc, r.LogMax, r.DB))
		if r.Kind == RefinerFull {
			cA := r.moduleEmbedding(r.Content, sub, func(n *plan.Node) tensor.Vec { return r.Enc.EncodeNode(n) })
			childC[sub] = connect.Apply(t, t.Const(cA), t.Const(cB))
		} else {
			childC[sub] = t.Const(cB)
		}
	}
	return childC
}

// moduleEmbedding runs a frozen module over an executed subtree on a
// throwaway tape and returns the detached root encoding.
func (r *Refiner) moduleEmbedding(m *treenn.TreeModel, sub *plan.Node, feat treenn.FeatureFn) tensor.Vec {
	t := autodiff.NewTape()
	outs := m.Forward(t, sub, feat, nil)
	return outs[sub].C.Data.Clone()
}

// PrefixSubtrees partitions a plan after its first k post-order operators
// have completed: it returns the maximal fully-executed subtrees (whose
// embeddings summarize the finished work) and the remaining operators
// (whose cardinalities LPCE-R re-estimates). Post-order matches the
// bottom-up completion order of the executor.
func PrefixSubtrees(root *plan.Node, k int) (execRoots, remaining []*plan.Node) {
	idx := make(map[*plan.Node]int)
	for i, n := range root.Nodes() {
		idx[n] = i
	}
	complete := func(n *plan.Node) bool { return idx[n] < k }
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		if n == nil {
			return
		}
		if complete(n) {
			execRoots = append(execRoots, n) // maximal: parent not complete
			return
		}
		remaining = append(remaining, n)
		walk(n.Left)
		walk(n.Right)
	}
	walk(root)
	return execRoots, remaining
}

// EvalPrefix simulates re-estimation after k executed operators on a
// collected sample and returns the q-errors of the remaining operators'
// refined estimates — the measurement behind Figure 16 and Table 3.
func (r *Refiner) EvalPrefix(s Sample, k int) []float64 {
	execRoots, remaining := PrefixSubtrees(s.Plan, k)
	if len(remaining) == 0 {
		return nil
	}
	var qs []float64
	switch r.Kind {
	case RefinerSingle:
		executed := markExecuted(execRoots)
		cards := r.singleCards(s.Plan, executed)
		for _, n := range remaining {
			if n.TrueCard >= 0 {
				qs = append(qs, nn.QError(n.TrueCard, cards[n]))
			}
		}
	default:
		t := autodiff.NewTape()
		childC := r.executedOverrides(t, execRoots)
		outs := r.Refine.Forward(t, s.Plan, func(n *plan.Node) tensor.Vec { return r.Enc.EncodeNode(n) }, childC)
		for _, n := range remaining {
			out, ok := outs[n]
			if !ok || n.TrueCard < 0 {
				continue
			}
			qs = append(qs, nn.QError(n.TrueCard, out.Card(r.LogMax)))
		}
	}
	return qs
}

// markExecuted flags every node inside the executed subtrees.
func markExecuted(execRoots []*plan.Node) map[*plan.Node]bool {
	m := make(map[*plan.Node]bool)
	for _, sub := range execRoots {
		sub.Walk(func(n *plan.Node) { m[n] = true })
	}
	return m
}

// singleCards is the LPCE-R-Single inference pass: one cardinality-
// augmented module processes the whole plan bottom-up; executed children
// contribute their real cardinalities while remaining children contribute
// the model's own running estimates — the train/inference mismatch the
// paper blames for LPCE-R-Single's poor accuracy.
func (r *Refiner) singleCards(root *plan.Node, executed map[*plan.Node]bool) map[*plan.Node]float64 {
	t := autodiff.NewTape()
	cards := make(map[*plan.Node]float64)
	hidden := r.CardM.Cfg.Hidden
	var rec func(n *plan.Node) *autodiff.Node
	rec = func(n *plan.Node) *autodiff.Node {
		zero := t.NewNode(hidden)
		cl, cr := zero, zero
		var cardL, cardR float64
		switch {
		case n.Left != nil:
			cl = rec(n.Left)
			cardL = childCard(n.Left, executed, cards)
			if n.Right != nil {
				cr = rec(n.Right)
				cardR = childCard(n.Right, executed, cards)
			}
		case n.Table != nil:
			cardL = float64(r.DB.Table(n.Table).NumRows())
		case n.Mat != nil:
			cardL = float64(n.Mat.Card())
		}
		fv := r.Enc.WithCards(r.Enc.EncodeNode(n), cardL, cardR, r.LogMax)
		x := r.CardM.Embed.Apply(t, t.Input(fv))
		c, h := r.CardM.Cell.Apply(t, x, cl, cr)
		_, pred := r.CardM.Out.ApplyPreOutput(t, h)
		card := nn.DenormalizeCard(pred.Scalar(), r.LogMax)
		if executed[n] && n.TrueCard >= 0 {
			card = n.TrueCard
		}
		cards[n] = card
		return c
	}
	rec(root)
	return cards
}

func childCard(n *plan.Node, executed map[*plan.Node]bool, cards map[*plan.Node]float64) float64 {
	if executed[n] && n.TrueCard >= 0 {
		return n.TrueCard
	}
	return cards[n]
}

// ExecutedSub describes one executed sub-plan handed to the refinement
// estimator at re-optimization time: the subtree (with true cardinalities
// stamped by the executor) and its exact output cardinality.
type ExecutedSub struct {
	Node *plan.Node
	Card float64
}

// Mask returns the table subset the executed sub-plan covers.
func (e ExecutedSub) Mask() query.BitSet { return e.Node.Tables }

// Estimator returns a cardest.Estimator that refines subset estimates using
// the executed sub-plans: subsets exactly matching an executed sub-plan get
// its exact cardinality; other subsets are estimated by the refine module
// over a unit tree in which executed sub-plans appear as pre-embedded
// leaves.
func (r *Refiner) Estimator(q *query.Query, execs []ExecutedSub) cardest.Estimator {
	// keep maximal, disjoint executed subtrees, largest first
	sort.Slice(execs, func(i, j int) bool { return execs[i].Mask().Count() > execs[j].Mask().Count() })
	var kept []ExecutedSub
	var covered query.BitSet
	for _, e := range execs {
		if e.Mask().Intersects(covered) {
			continue
		}
		kept = append(kept, e)
		covered = covered.Union(e.Mask())
	}
	return &refinedEstimator{r: r, q: q, execs: kept}
}

type refinedEstimator struct {
	r     *Refiner
	q     *query.Query
	execs []ExecutedSub
}

func (e *refinedEstimator) Name() string { return e.r.Kind.String() }

func (e *refinedEstimator) EstimateSubset(q *query.Query, mask query.BitSet) float64 {
	// exact answers for executed subsets
	for _, ex := range e.execs {
		if ex.Mask() == mask {
			return ex.Card
		}
	}
	// build the unit tree: executed sub-plans fully inside the mask become
	// leaves, remaining tables become scan leaves
	var units []ExecutedSub
	var covered query.BitSet
	for _, ex := range e.execs {
		if ex.Mask()&mask == ex.Mask() {
			units = append(units, ex)
			covered = covered.Union(ex.Mask())
		}
	}
	root := buildUnitPlan(q, mask, covered, units)
	switch e.r.Kind {
	case RefinerSingle:
		executed := markExecuted(execNodes(units))
		cards := e.r.singleCards(root, executed)
		return cards[root]
	default:
		t := autodiff.NewTape()
		childC := e.r.executedOverrides(t, execNodes(units))
		outs := e.r.Refine.Forward(t, root, func(n *plan.Node) tensor.Vec { return e.r.Enc.EncodeNode(n) }, childC)
		return outs[root].Card(e.r.LogMax)
	}
}

func execNodes(units []ExecutedSub) []*plan.Node {
	out := make([]*plan.Node, len(units))
	for i, u := range units {
		out[i] = u.Node
	}
	return out
}

// buildUnitPlan constructs a canonical left-deep tree over heterogeneous
// units: executed sub-plans (kept as their original subtrees) and
// single-table scans for the uncovered part of the mask.
func buildUnitPlan(q *query.Query, mask, covered query.BitSet, units []ExecutedSub) *plan.Node {
	type unit struct {
		mask query.BitSet
		node *plan.Node
	}
	var us []unit
	for _, e := range units {
		us = append(us, unit{e.Mask(), e.Node})
	}
	for _, i := range mask.Indices() {
		if covered.Has(i) {
			continue
		}
		t := q.Tables[i]
		us = append(us, unit{query.NewBitSet().Set(i), plan.NewLeaf(plan.SeqScan, t, i, q.PredsOn(t))})
	}
	sort.Slice(us, func(i, j int) bool { return us[i].mask < us[j].mask })

	cur := us[0]
	rest := us[1:]
	for len(rest) > 0 {
		pick := -1
		for i, u := range rest {
			if len(q.JoinsBetween(cur.mask, u.mask)) > 0 {
				pick = i
				break
			}
		}
		if pick == -1 {
			pick = 0
		}
		u := rest[pick]
		rest = append(rest[:pick], rest[pick+1:]...)
		conds := q.JoinsBetween(cur.mask, u.mask)
		cur = unit{cur.mask.Union(u.mask), plan.NewJoin(plan.HashJoin, cur.node, u.node, conds)}
	}
	return cur.node
}
