package baselines

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/lpce-db/lpce/internal/catalog"
)

// mscnSpec is the architecture metadata that travels with MSCN weights; the
// set-MLP dimensions themselves derive from the schema the loader supplies.
type mscnSpec struct {
	Hidden int
	LogMax float64
}

// SaveMSCN writes a trained MSCN (architecture + weights) to w.
func SaveMSCN(w io.Writer, m *MSCN) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(mscnSpec{Hidden: m.hidden, LogMax: m.LogMax}); err != nil {
		return fmt.Errorf("baselines: encode mscn spec: %w", err)
	}
	return m.Params.EncodeGob(enc)
}

// LoadMSCN reconstructs an MSCN written by SaveMSCN. The schema is a runtime
// dependency that does not travel with the weights; it must match the one
// used at training time (modelio's encoder fingerprint enforces this for
// artifact files).
func LoadMSCN(r io.Reader, schema *catalog.Schema) (*MSCN, error) {
	dec := gob.NewDecoder(r)
	var spec mscnSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("baselines: decode mscn spec: %w", err)
	}
	m := NewMSCN(MSCNConfig{Hidden: spec.Hidden}, schema)
	m.LogMax = spec.LogMax
	if err := m.Params.DecodeGob(dec); err != nil {
		return nil, err
	}
	return m, nil
}
