package baselines

import (
	"math"
	"sync"
	"testing"

	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/encode"
	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
	"github.com/lpce-db/lpce/internal/testutil"
	"github.com/lpce-db/lpce/internal/treenn"
	"github.com/lpce-db/lpce/internal/workload"
)

var (
	fixOnce    sync.Once
	fixDB      *storage.Database
	fixEnc     *encode.Encoder
	fixSamples []core.Sample
	fixLogMax  float64
)

func fixture(t *testing.T) (*storage.Database, *encode.Encoder, []core.Sample, float64) {
	t.Helper()
	fixOnce.Do(func() {
		fixDB = testutil.TinyDB()
		fixEnc = encode.NewEncoder(fixDB.Schema)
		g := workload.NewGenerator(fixDB, 91)
		queries := g.QueriesRange(40, 2, 4)
		fixSamples, _ = core.CollectSamples(fixDB, histogram.NewEstimator(fixDB), queries, 50_000_000)
		fixLogMax = core.MaxLogCard(fixSamples)
	})
	if len(fixSamples) < 20 {
		t.Fatalf("only %d samples", len(fixSamples))
	}
	return fixDB, fixEnc, fixSamples, fixLogMax
}

func tinyCfg(seed int64) core.TrainConfig {
	return core.TrainConfig{Hidden: 12, OutWidth: 16, Epochs: 4, Batch: 16, LR: 3e-3, Seed: seed}
}

func checkEstimates(t *testing.T, db *storage.Database, est interface {
	Name() string
	EstimateSubset(*query.Query, query.BitSet) float64
}) {
	t.Helper()
	g := workload.NewGenerator(db, 92)
	for i := 0; i < 5; i++ {
		q := g.Query(2 + i%2)
		for mask := query.BitSet(1); mask <= q.AllTablesMask(); mask++ {
			if !q.Connected(mask) {
				continue
			}
			v := est.EstimateSubset(q, mask)
			if v < 1 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: invalid estimate %v", est.Name(), v)
			}
		}
	}
}

func TestMSCNTrainAndEstimate(t *testing.T) {
	db, _, samples, logMax := fixture(t)
	m := TrainMSCN(MSCNConfig{Hidden: 16, Epochs: 2, Batch: 32, LR: 3e-3, Seed: 1}, db.Schema, samples, logMax)
	if m.Name() != "mscn" {
		t.Fatal("name")
	}
	if !m.EncodeSupportsSchema(db.Schema) {
		t.Fatal("schema binding")
	}
	if m.NumWeights() == 0 {
		t.Fatal("no weights")
	}
	checkEstimates(t, db, m)
}

func TestMSCNLearnsSomething(t *testing.T) {
	db, _, samples, logMax := fixture(t)
	untrained := NewMSCN(MSCNConfig{Hidden: 16, Seed: 2}.Defaults(), db.Schema)
	untrained.LogMax = logMax
	trained := TrainMSCN(MSCNConfig{Hidden: 16, Epochs: 4, Batch: 32, LR: 3e-3, Seed: 2}, db.Schema, samples, logMax)

	meanQ := func(m *MSCN) float64 {
		var s float64
		n := 0
		for _, smp := range samples {
			est := m.EstimateSubset(smp.Query, smp.Query.AllTablesMask())
			s += math.Log(qerr(smp.Plan.TrueCard, est))
			n++
		}
		return s / float64(n)
	}
	if meanQ(trained) >= meanQ(untrained) {
		t.Fatalf("MSCN training did not improve: %v -> %v", meanQ(untrained), meanQ(trained))
	}
}

func qerr(a, b float64) float64 {
	if a < 1 {
		a = 1
	}
	if b < 1 {
		b = 1
	}
	if a > b {
		return a / b
	}
	return b / a
}

func TestTLSTMUsesLSTMAndQueryWiseLoss(t *testing.T) {
	db, enc, samples, logMax := fixture(t)
	est := TrainTLSTM(tinyCfg(3), enc, samples, logMax)
	if est.Name() != "tlstm" {
		t.Fatal("name")
	}
	if est.Model.Cfg.Cell != treenn.CellLSTM {
		t.Fatal("TLSTM must use the LSTM cell")
	}
	checkEstimates(t, db, est)
}

func TestFlowLossTrains(t *testing.T) {
	db, enc, samples, logMax := fixture(t)
	est := TrainFlowLoss(tinyCfg(4), enc, samples, logMax)
	if est.Name() != "flow-loss" {
		t.Fatal("name")
	}
	checkEstimates(t, db, est)
	mean, _ := core.EvalQError(est.Model, enc, samples)
	if math.IsNaN(mean) || mean < 1 {
		t.Fatalf("flow-loss mean q = %v", mean)
	}
}

func TestCostWeightsNormalized(t *testing.T) {
	_, _, samples, _ := fixture(t)
	w := costWeights(samples[0].Plan)
	var sum float64
	for _, v := range w {
		if v < 0 {
			t.Fatal("negative weight")
		}
		sum += v
	}
	if math.Abs(sum-float64(len(w))) > 1e-6 {
		t.Fatalf("weights sum to %v, want %d", sum, len(w))
	}
	// larger intermediate results must get larger weights
	var maxCard, maxCardW, minCard, minCardW float64
	minCard = math.Inf(1)
	for n, v := range w {
		if n.TrueCard > maxCard {
			maxCard, maxCardW = n.TrueCard, v
		}
		if n.TrueCard < minCard {
			minCard, minCardW = n.TrueCard, v
		}
	}
	if maxCard > minCard && maxCardW < minCardW {
		t.Fatal("cost weights should increase with cardinality")
	}
}
