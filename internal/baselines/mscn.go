// Package baselines implements the query-driven learned estimators the
// paper compares against: MSCN [15] (multi-set convolutional network),
// TLSTM [30] (tree-LSTM cost estimator), and Flow-Loss [22] (cost-weighted
// training). All share the repository's autodiff/nn substrate and plug into
// the optimizer through cardest.Estimator.
package baselines

import (
	"github.com/lpce-db/lpce/internal/autodiff"
	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/catalog"
	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/nn"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/tensor"
)

// MSCNConfig controls the MSCN architecture and training.
type MSCNConfig struct {
	Hidden int
	Epochs int
	Batch  int
	LR     float64
	Seed   int64
	// Workers fans per-example gradient passes across goroutines, with the
	// same order-fixed reduction as core.TrainConfig.Workers.
	Workers int
}

// Shuffle streams for the baselines' EpochOrder calls; values are arbitrary
// but distinct per training phase.
const (
	streamMSCN = iota + 101
	streamFlowLoss
)

// Defaults fills zero fields.
func (c MSCNConfig) Defaults() MSCNConfig {
	if c.Hidden == 0 {
		c.Hidden = 32
	}
	if c.Epochs == 0 {
		c.Epochs = 10
	}
	if c.Batch == 0 {
		c.Batch = 50
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	return c
}

// MSCN is the multi-set convolutional network: three per-element MLPs
// (tables, joins, predicates) whose outputs are average-pooled per set,
// concatenated, and mapped to a cardinality by an output MLP. Unlike the
// tree models it ignores plan structure, the deficiency the paper
// highlights.
type MSCN struct {
	Params  *nn.Params
	schema  *catalog.Schema
	tables  *nn.MLP
	joins   *nn.MLP
	preds   *nn.MLP
	out     *nn.MLP
	hidden  int
	numCols int
	LogMax  float64
}

// replica returns an MSCN sharing this model's weights with private
// gradient buffers, for data-parallel training workers.
func (m *MSCN) replica() *MSCN {
	ps := m.Params.ShareWeights()
	return &MSCN{
		Params: ps, schema: m.schema, hidden: m.hidden, numCols: m.numCols,
		LogMax: m.LogMax,
		tables: m.tables.ShareWeights(ps),
		joins:  m.joins.ShareWeights(ps),
		preds:  m.preds.ShareWeights(ps),
		out:    m.out.ShareWeights(ps),
	}
}

// table element: one-hot over tables; join element: two-hot over columns;
// predicate element: column one-hot + op one-hot + operand.
func (m *MSCN) tableDim() int { return len(m.schema.Tables) }
func (m *MSCN) joinDim() int  { return m.numCols }
func (m *MSCN) predDim() int  { return m.numCols + query.NumOps + 1 }

// NewMSCN builds an untrained MSCN for the schema.
func NewMSCN(cfg MSCNConfig, schema *catalog.Schema) *MSCN {
	cfg = cfg.Defaults()
	ps := nn.NewParams()
	rng := tensor.NewRNG(cfg.Seed)
	m := &MSCN{Params: ps, schema: schema, hidden: cfg.Hidden, numCols: schema.NumColumns()}
	m.tables = nn.NewMLP(ps, "tables", []int{m.tableDim(), cfg.Hidden, cfg.Hidden}, nn.ActReLU, nn.ActReLU, rng)
	m.joins = nn.NewMLP(ps, "joins", []int{m.joinDim(), cfg.Hidden, cfg.Hidden}, nn.ActReLU, nn.ActReLU, rng)
	m.preds = nn.NewMLP(ps, "preds", []int{m.predDim(), cfg.Hidden, cfg.Hidden}, nn.ActReLU, nn.ActReLU, rng)
	m.out = nn.NewMLP(ps, "out", []int{3 * cfg.Hidden, cfg.Hidden, 1}, nn.ActReLU, nn.ActSigmoid, rng)
	return m
}

// forward runs the set model for a table subset of a query.
func (m *MSCN) forward(t *autodiff.Tape, q *query.Query, mask query.BitSet) *autodiff.Node {
	var tableNodes, joinNodes, predNodes []*autodiff.Node
	for _, i := range mask.Indices() {
		tab := q.Tables[i]
		v := tensor.NewVec(m.tableDim())
		v[tab.ID] = 1
		tableNodes = append(tableNodes, m.tables.Apply(t, t.Input(v)))
		for _, p := range q.PredsOn(tab) {
			predNodes = append(predNodes, m.preds.Apply(t, t.Input(m.encodePred(p))))
		}
	}
	for _, j := range q.JoinsWithin(mask) {
		v := tensor.NewVec(m.joinDim())
		v[j.Left.GlobalID] = 1
		v[j.Right.GlobalID] = 1
		joinNodes = append(joinNodes, m.joins.Apply(t, t.Input(v)))
	}
	pool := func(nodes []*autodiff.Node) *autodiff.Node {
		if len(nodes) == 0 {
			return t.NewNode(m.hidden)
		}
		return t.Mean(nodes)
	}
	cat := t.Concat(pool(tableNodes), pool(joinNodes), pool(predNodes))
	return m.out.Apply(t, cat)
}

func (m *MSCN) encodePred(p query.Predicate) tensor.Vec {
	v := tensor.NewVec(m.predDim())
	v[p.Col.GlobalID] = 1
	v[m.numCols+int(p.Op)] = 1
	span := float64(p.Col.Max - p.Col.Min)
	operand := 0.5
	if span > 0 {
		val := float64(p.Operand)
		if p.Op == query.OpIn && len(p.InSet) > 0 {
			var s float64
			for _, x := range p.InSet {
				s += float64(x)
			}
			val = s / float64(len(p.InSet))
		}
		operand = (val - float64(p.Col.Min)) / span
		if operand < 0 {
			operand = 0
		}
		if operand > 1 {
			operand = 1
		}
	}
	v[m.predDim()-1] = operand
	return v
}

// TrainMSCN fits the model on collected samples with the query-wise q-error
// loss over every plan node's subset (MSCN's published training uses
// queries of mixed sizes; the plan nodes provide exactly that).
func TrainMSCN(cfg MSCNConfig, schema *catalog.Schema, samples []core.Sample, logMax float64) *MSCN {
	cfg = cfg.Defaults()
	m := NewMSCN(cfg, schema)
	m.LogMax = logMax
	if len(samples) == 0 {
		return m
	}
	type example struct {
		q    *query.Query
		mask query.BitSet
		card float64
	}
	var exs []example
	for _, s := range samples {
		s.Plan.Walk(func(n *plan.Node) {
			if n.TrueCard >= 0 {
				exs = append(exs, example{s.Query, n.Tables, n.TrueCard})
			}
		})
	}
	opt := nn.NewAdam(cfg.LR)
	pool := core.NewGradPool(cfg.Workers, cfg.Batch, []*nn.Params{m.Params},
		func() (func(int, float64), []*nn.Params) {
			rep := m.replica()
			run := func(ei int, weight float64) {
				ex := exs[ei]
				t := autodiff.NewTape()
				pred := rep.forward(t, ex.q, ex.mask)
				loss := nn.QErrorLoss(t, pred, ex.card, rep.LogMax)
				loss.Grad[0] = weight
				t.BackwardFrom()
			}
			return run, []*nn.Params{rep.Params}
		})
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		order := core.EpochOrder(cfg.Seed+1, streamMSCN, epoch, len(exs))
		for b := 0; b < len(order); b += cfg.Batch {
			end := b + cfg.Batch
			if end > len(order) {
				end = len(order)
			}
			pool.RunBatch(order[b:end], 1/float64(end-b))
			m.Params.ClipGrad(5)
			opt.Step(m.Params)
		}
	}
	return m
}

// Name implements cardest.Estimator.
func (m *MSCN) Name() string { return "mscn" }

// EstimateSubset implements cardest.Estimator.
func (m *MSCN) EstimateSubset(q *query.Query, mask query.BitSet) float64 {
	t := autodiff.NewTape()
	pred := m.forward(t, q, mask)
	return nn.DenormalizeCard(pred.Scalar(), m.LogMax)
}

var _ cardest.Estimator = (*MSCN)(nil)

// EncodeSupportsSchema reports whether the MSCN instance was built for the
// given schema (guards against mixing databases in the harness).
func (m *MSCN) EncodeSupportsSchema(s *catalog.Schema) bool { return m.schema == s }

// NumWeights reports the model size.
func (m *MSCN) NumWeights() int { return m.Params.NumWeights() }
