package baselines

import (
	"math"

	"github.com/lpce-db/lpce/internal/autodiff"
	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/encode"
	"github.com/lpce-db/lpce/internal/nn"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/tensor"
	"github.com/lpce-db/lpce/internal/treenn"
)

// TrainTLSTM trains the TLSTM baseline [30]: a child-sum tree-LSTM over the
// plan, supervised only at the root (the query-wise loss of Eq. 2) — both
// deficiencies LPCE-I's SRU backbone and node-wise loss address.
func TrainTLSTM(cfg core.TrainConfig, enc *encode.Encoder, samples []core.Sample, logMax float64) *core.TreeEstimator {
	cfg.Cell = treenn.CellLSTM
	cfg.NodeWise = false
	m := core.TrainTreeModel(cfg, enc, samples, logMax, nil)
	return &core.TreeEstimator{Label: "tlstm", Model: m, Enc: enc}
}

// TrainFlowLoss trains the Flow-Loss baseline [22]. Flow-Loss's idea is to
// weight estimation errors by their effect on plan cost rather than
// treating all q-errors equally; we realize it as a cost-weighted node loss:
// each plan node's q-error is weighted by its share of the plan's total
// intermediate-result volume (the dominant term of the engine's cost
// model), so errors on large intermediate results — the ones that make the
// optimizer pick catastrophic plans — dominate training.
func TrainFlowLoss(cfg core.TrainConfig, enc *encode.Encoder, samples []core.Sample, logMax float64) *core.TreeEstimator {
	cfg = cfg.Defaults()
	m := treenn.NewTreeModel(treenn.Config{
		InputDim: enc.Dim(),
		Hidden:   cfg.Hidden,
		OutWidth: cfg.OutWidth,
		Cell:     cfg.Cell,
		Seed:     cfg.Seed,
	})
	m.LogMax = logMax
	feat := func(n *plan.Node) tensor.Vec { return enc.EncodeNode(n) }

	if len(samples) > 0 {
		opt := nn.NewAdam(cfg.LR)
		pool := core.NewGradPool(cfg.Workers, cfg.Batch, []*nn.Params{m.Params},
			func() (func(int, float64), []*nn.Params) {
				rep := m.Replica()
				run := func(si int, weight float64) {
					s := samples[si]
					t := autodiff.NewTape()
					outs := rep.Forward(t, s.Plan, feat, nil)
					weights := costWeights(s.Plan)
					// Walk nodes in post-order rather than map order: tape
					// ops record in loop order and backward reduces in tape
					// order, so a randomized map walk would break the
					// byte-identical-weights guarantee.
					for _, n := range s.Plan.Nodes() {
						w, hasW := weights[n]
						out, ok := outs[n]
						if !hasW || !ok || n.TrueCard < 0 {
							continue
						}
						loss := nn.QErrorLoss(t, out.Pred, n.TrueCard, rep.LogMax)
						loss.Grad[0] = w * weight
					}
					t.BackwardFrom()
				}
				return run, []*nn.Params{rep.Params}
			})
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			order := core.EpochOrder(cfg.Seed+1, streamFlowLoss, epoch, len(samples))
			for b := 0; b < len(order); b += cfg.Batch {
				end := b + cfg.Batch
				if end > len(order) {
					end = len(order)
				}
				pool.RunBatch(order[b:end], 1/float64(end-b))
				m.Params.ClipGrad(cfg.ClipNorm)
				opt.Step(m.Params)
			}
		}
	}
	return &core.TreeEstimator{Label: "flow-loss", Model: m, Enc: enc}
}

// costWeights assigns each node a weight proportional to log(1+card),
// normalized to sum to the node count (so the total gradient magnitude
// matches the node-wise loss).
func costWeights(root *plan.Node) map[*plan.Node]float64 {
	w := make(map[*plan.Node]float64)
	var sum float64
	root.Walk(func(n *plan.Node) {
		if n.TrueCard < 0 {
			return
		}
		v := math.Log1p(n.TrueCard)
		w[n] = v
		sum += v
	})
	if sum == 0 {
		return w
	}
	scale := float64(len(w)) / sum
	for n := range w {
		w[n] *= scale
	}
	return w
}
