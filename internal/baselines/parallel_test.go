package baselines

import (
	"testing"

	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/nn"
)

func sameWeights(t *testing.T, what string, a, b []*nn.Param) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: param count %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		for j := range a[i].Val {
			if a[i].Val[j] != b[i].Val[j] {
				t.Fatalf("%s: %s[%d] = %v (serial) vs %v (parallel)",
					what, a[i].Name, j, a[i].Val[j], b[i].Val[j])
			}
		}
	}
}

func TestTrainMSCNParallelDeterministic(t *testing.T) {
	db, _, samples, logMax := fixture(t)
	mk := func(workers int) *MSCN {
		cfg := MSCNConfig{Hidden: 16, Epochs: 2, Batch: 32, LR: 3e-3, Seed: 5, Workers: workers}
		return TrainMSCN(cfg, db.Schema, samples, logMax)
	}
	serial, parallel := mk(1), mk(4)
	sameWeights(t, "mscn", serial.Params.All(), parallel.Params.All())
}

func TestTrainFlowLossParallelDeterministic(t *testing.T) {
	_, enc, samples, logMax := fixture(t)
	mk := func(workers int) *core.TreeEstimator {
		cfg := tinyCfg(6)
		cfg.Workers = workers
		return TrainFlowLoss(cfg, enc, samples, logMax)
	}
	serial, parallel := mk(1), mk(4)
	sameWeights(t, "flow-loss", serial.Model.Params.All(), parallel.Model.Params.All())
}
