package reopt

import (
	"errors"
	"testing"

	"github.com/lpce-db/lpce/internal/catalog"
	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
)

func twoTableNode(est float64) *plan.Node {
	s := catalog.NewSchema()
	a := s.AddTable("a", catalog.PK("id"))
	b := s.AddTable("b", catalog.FK("a_id", a.Column("id")))
	q := query.New([]*catalog.Table{a, b},
		[]query.Join{{Left: b.Column("a_id"), Right: a.Column("id")}}, nil)
	la := plan.NewLeaf(plan.SeqScan, a, 0, nil)
	lb := plan.NewLeaf(plan.SeqScan, b, 1, nil)
	j := plan.NewJoin(plan.HashJoin, la, lb, q.Joins)
	j.EstCard = est
	return j
}

func rows(n int) [][]int64 {
	out := make([][]int64, n)
	for i := range out {
		out[i] = []int64{int64(i), int64(i)}
	}
	return out
}

func TestTriggerOnLargeQError(t *testing.T) {
	c := NewController(Policy{QErrThreshold: 50, MaxReopts: 3})
	n := twoTableNode(10)
	err := c.OnMaterialized(n, rows(10*51)) // q-error 51 > 50
	var sig *exec.ReoptSignal
	if !errors.As(err, &sig) {
		t.Fatalf("expected trigger, got %v", err)
	}
	if sig.Actual != 510 {
		t.Fatalf("actual = %d", sig.Actual)
	}
	if c.Reopts != 1 || c.Triggered != sig {
		t.Fatal("controller state not updated")
	}
	c.ClearTrigger()
	if c.Triggered != nil {
		t.Fatal("trigger not cleared")
	}
}

func TestNoTriggerBelowThreshold(t *testing.T) {
	c := NewController(Policy{QErrThreshold: 50, MaxReopts: 3})
	n := twoTableNode(100)
	if err := c.OnMaterialized(n, rows(200)); err != nil { // q-error 2
		t.Fatalf("unexpected trigger: %v", err)
	}
	// underestimates and overestimates both count
	n2 := twoTableNode(100000)
	if err := c.OnMaterialized(n2, rows(10)); err == nil {
		t.Fatal("overestimate q-error should trigger too")
	}
}

func TestMaxReoptsBounds(t *testing.T) {
	c := NewController(Policy{QErrThreshold: 10, MaxReopts: 2})
	for i := 0; i < 2; i++ {
		if err := c.OnMaterialized(twoTableNode(1), rows(1000)); err == nil {
			t.Fatalf("trigger %d should fire", i)
		}
	}
	if err := c.OnMaterialized(twoTableNode(1), rows(1000)); err != nil {
		t.Fatal("third trigger should be suppressed by MaxReopts")
	}
	if c.Reopts != 2 {
		t.Fatalf("reopts = %d", c.Reopts)
	}
}

func TestMaterializedAccumulate(t *testing.T) {
	c := NewController(Policy{QErrThreshold: 1e12, MaxReopts: 3})
	n := twoTableNode(5)
	if err := c.OnMaterialized(n, rows(5)); err != nil {
		t.Fatal(err)
	}
	m := c.Materialized()
	if len(m) != 1 {
		t.Fatalf("mats = %d", len(m))
	}
	if m[n.Tables].Card() != 5 {
		t.Fatalf("mat card = %d", m[n.Tables].Card())
	}
	execs := c.ExecutedSubs()
	if len(execs) != 1 || execs[0].Card != 5 || execs[0].Mask != n.Tables {
		t.Fatalf("execs = %+v", execs)
	}
}

func TestMatScanReplayIgnored(t *testing.T) {
	c := NewController(Policy{QErrThreshold: 2, MaxReopts: 3})
	mat := &plan.Materialized{Tables: query.NewBitSet().Set(0).Set(1), Rows: rows(100)}
	leaf := plan.NewMatLeaf(mat)
	leaf.EstCard = 1 // even a huge q-error must not re-trigger on replay
	if err := c.OnMaterialized(leaf, rows(100)); err != nil {
		t.Fatalf("MatScan replay should not trigger: %v", err)
	}
	if len(c.Materialized()) != 0 {
		t.Fatal("MatScan replay should not be re-recorded")
	}
}

func TestZeroEstimateIgnored(t *testing.T) {
	c := NewController(DefaultPolicy())
	n := twoTableNode(0) // un-annotated node
	if err := c.OnMaterialized(n, rows(1000)); err != nil {
		t.Fatalf("missing estimate should not trigger: %v", err)
	}
}

func TestDefaultPolicy(t *testing.T) {
	p := DefaultPolicy()
	if p.QErrThreshold != 50 || p.MaxReopts != 3 {
		t.Fatalf("default policy = %+v, paper uses threshold 50 and 3 reopts", p)
	}
}

// TestExternalSuppression: a non-empty Suppress answer beats every policy
// rule — the serving layer uses it to shed re-optimization work under load —
// and the suppression lifts as soon as the hook reports healthy again.
func TestExternalSuppression(t *testing.T) {
	c := NewController(Policy{QErrThreshold: 10, MaxReopts: 3})
	reason := "server-degraded"
	c.Suppress = func() string { return reason }

	if err := c.OnMaterialized(twoTableNode(1), rows(1000)); err != nil {
		t.Fatalf("suppressed checkpoint must not trigger: %v", err)
	}
	if c.Reopts != 0 {
		t.Fatalf("reopts = %d, want 0", c.Reopts)
	}

	reason = "" // the overload cleared; the same controller triggers again
	if err := c.OnMaterialized(twoTableNode(1), rows(1000)); err == nil {
		t.Fatal("unsuppressed checkpoint should trigger")
	}
	if c.Reopts != 1 {
		t.Fatalf("reopts = %d, want 1", c.Reopts)
	}
}
