package reopt

import (
	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/query"
)

// Overlay implements the paper's §8 observation that progressive
// estimation "can be applied to other estimators": it wraps ANY base
// estimator with the exact cardinalities of the executed sub-plans. Subsets
// that exactly match an executed sub-plan return the observed cardinality;
// subsets containing one are estimated by the base estimator and then
// scaled by the ratio between the executed sub-plan's true and originally
// estimated cardinality (error propagation correction); everything else
// falls through unchanged.
//
// Unlike LPCE-R this uses no learned refinement — it is the natural
// baseline for progressive estimation with data-driven or histogram
// estimators, and the ablation benches compare the two.
type Overlay struct {
	Base cardest.Estimator
	// exact holds the observed cardinality per executed subset. Repeated
	// executions of the same subset are deduped at construction, last
	// observation winning (later re-optimizations see fresher counts).
	exact map[query.BitSet]float64
	// ratio of true/estimated cardinality per executed subset, used to
	// rescale containing subsets.
	ratios map[query.BitSet]float64
}

// NewOverlay builds the overlay from the controller's executed sub-plans.
// estimates supplies the base estimator's original estimate per executed
// subset (exact-cardinality correction needs both sides of the ratio); pass
// nil to disable ratio scaling.
func NewOverlay(base cardest.Estimator, execs []Executed, estimates map[query.BitSet]float64) *Overlay {
	o := &Overlay{
		Base:   base,
		exact:  make(map[query.BitSet]float64, len(execs)),
		ratios: make(map[query.BitSet]float64),
	}
	for _, e := range execs {
		o.exact[e.Mask] = e.Card
		if estimates == nil {
			continue
		}
		if est, ok := estimates[e.Mask]; ok && est >= 1 && e.Card >= 1 {
			o.ratios[e.Mask] = e.Card / est
		} else {
			// a stale ratio from an earlier execution of this subset must not
			// survive the fresher observation
			delete(o.ratios, e.Mask)
		}
	}
	return o
}

// Name implements cardest.Estimator.
func (o *Overlay) Name() string { return o.Base.Name() + "+overlay" }

// EstimateSubset implements cardest.Estimator.
func (o *Overlay) EstimateSubset(q *query.Query, mask query.BitSet) float64 {
	// exact cardinalities for executed subsets
	if card, ok := o.exact[mask]; ok {
		return card
	}
	est := o.Base.EstimateSubset(q, mask)
	// error-propagation correction: scale by the largest contained
	// executed sub-plan's observed error ratio (errors propagate
	// multiplicatively up the join tree, the paper's §1 observation).
	// Equal-size candidates tie-break on the smaller mask value so the
	// choice never depends on map iteration order — replans must be
	// reproducible run to run.
	best := 0
	bestMask := query.BitSet(0)
	ratio := 1.0
	for m, r := range o.ratios {
		if m&mask != m {
			continue
		}
		c := m.Count()
		if c > best || (c == best && best > 0 && m < bestMask) {
			best, bestMask, ratio = c, m, r
		}
	}
	v := est * ratio
	if v < 1 {
		v = 1
	}
	return v
}

var _ cardest.Estimator = (*Overlay)(nil)
