package reopt

import (
	"testing"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/catalog"
	"github.com/lpce-db/lpce/internal/query"
)

func TestOverlayExactForExecuted(t *testing.T) {
	base := cardest.Fixed{Value: 100, Label: "base"}
	mask := query.NewBitSet().Set(0).Set(1)
	execs := []Executed{{Mask: mask, Card: 5000}}
	o := NewOverlay(base, execs, map[query.BitSet]float64{mask: 100})
	if got := o.EstimateSubset(nil, mask); got != 5000 {
		t.Fatalf("executed subset = %v, want exact 5000", got)
	}
	if o.Name() != "base+overlay" {
		t.Fatalf("name = %s", o.Name())
	}
}

func TestOverlayRatioScaling(t *testing.T) {
	s := testQuerySchema()
	q := s.q
	base := cardest.Fixed{Value: 100, Label: "base"}
	sub := query.NewBitSet().Set(0).Set(1)
	// base estimated 100 for the executed subset, reality was 5000: 50x
	// underestimate, so containing subsets scale up 50x
	execs := []Executed{{Mask: sub, Card: 5000}}
	o := NewOverlay(base, execs, map[query.BitSet]float64{sub: 100})
	full := q.AllTablesMask()
	if got := o.EstimateSubset(q, full); got != 100*50 {
		t.Fatalf("containing subset = %v, want 5000", got)
	}
	// non-containing subsets pass through unchanged
	other := query.NewBitSet().Set(2)
	if got := o.EstimateSubset(q, other); got != 100 {
		t.Fatalf("unrelated subset = %v, want 100", got)
	}
}

func TestOverlayWithoutEstimates(t *testing.T) {
	base := cardest.Fixed{Value: 100, Label: "base"}
	sub := query.NewBitSet().Set(0)
	o := NewOverlay(base, []Executed{{Mask: sub, Card: 7}}, nil)
	s := testQuerySchema()
	// exact for executed, plain base elsewhere (no ratio learned)
	if got := o.EstimateSubset(s.q, sub); got != 7 {
		t.Fatalf("executed = %v", got)
	}
	if got := o.EstimateSubset(s.q, s.q.AllTablesMask()); got != 100 {
		t.Fatalf("containing without ratios = %v, want 100", got)
	}
}

func TestOverlayLargestContainedWins(t *testing.T) {
	s := testQuerySchema()
	q := s.q
	base := cardest.Fixed{Value: 100, Label: "base"}
	small := query.NewBitSet().Set(0)
	big := query.NewBitSet().Set(0).Set(1)
	execs := []Executed{
		{Mask: small, Card: 1000},
		{Mask: big, Card: 300},
	}
	o := NewOverlay(base, execs, map[query.BitSet]float64{
		small: 100, // ratio 10
		big:   100, // ratio 3
	})
	// the bigger executed subset's ratio (3x) must be chosen over the
	// smaller one's (10x)
	if got := o.EstimateSubset(q, q.AllTablesMask()); got != 300 {
		t.Fatalf("estimate = %v, want 300 (ratio of largest contained subset)", got)
	}
}

func TestOverlayEqualSizeTieBreakDeterministic(t *testing.T) {
	s := testQuerySchema()
	q := s.q
	base := cardest.Fixed{Value: 100, Label: "base"}
	ab := query.NewBitSet().Set(0).Set(1) // mask 0b011
	bc := query.NewBitSet().Set(1).Set(2) // mask 0b110
	execs := []Executed{
		{Mask: bc, Card: 300},  // ratio 3
		{Mask: ab, Card: 1000}, // ratio 10
	}
	estimates := map[query.BitSet]float64{ab: 100, bc: 100}
	full := q.AllTablesMask()
	// both executed subsets are the same size and both are contained in the
	// full mask; the smaller mask value (ab) must win every time, never the
	// map iteration order of the moment
	for trial := 0; trial < 50; trial++ {
		o := NewOverlay(base, execs, estimates)
		if got := o.EstimateSubset(q, full); got != 1000 {
			t.Fatalf("trial %d: estimate = %v, want 1000 (ratio of smaller-mask subset)", trial, got)
		}
	}
}

func TestOverlayDedupLastWriteWins(t *testing.T) {
	s := testQuerySchema()
	q := s.q
	base := cardest.Fixed{Value: 100, Label: "base"}
	sub := query.NewBitSet().Set(0).Set(1)
	// the same subset executed twice: the later observation is fresher and
	// must win for both the exact lookup and the ratio
	execs := []Executed{
		{Mask: sub, Card: 200},
		{Mask: sub, Card: 5000},
	}
	o := NewOverlay(base, execs, map[query.BitSet]float64{sub: 100})
	if got := o.EstimateSubset(q, sub); got != 5000 {
		t.Fatalf("exact = %v, want last-written 5000", got)
	}
	if got := o.EstimateSubset(q, q.AllTablesMask()); got != 5000 {
		t.Fatalf("containing = %v, want 100*50 from the last-written ratio", got)
	}
}

// chainFixture holds a 3-table chain query (a–b–c).
type chainFixture struct{ q *query.Query }

func testQuerySchema() chainFixture {
	s := catalog.NewSchema()
	a := s.AddTable("a", catalog.PK("id"))
	b := s.AddTable("b", catalog.FK("a_id", a.Column("id")), catalog.Attr("y"))
	c := s.AddTable("c", catalog.FK("b_y", b.Column("y")))
	q := query.New([]*catalog.Table{a, b, c},
		[]query.Join{
			{Left: b.Column("a_id"), Right: a.Column("id")},
			{Left: c.Column("b_y"), Right: b.Column("y")},
		}, nil)
	return chainFixture{q: q}
}

func TestCostAwareSuppression(t *testing.T) {
	c := NewController(Policy{QErrThreshold: 10, MaxReopts: 3, MinRemainingCostFrac: 0.5})
	root := twoTableNode(10)
	root.EstCost = 1000
	c.SetPlan(root)

	// a node that accounts for 90% of estimated cost: only 10% remains,
	// below the 50% threshold -> suppressed despite the huge q-error
	late := twoTableNode(10)
	late.EstCost = 900
	if err := c.OnMaterialized(late, rows(10000)); err != nil {
		t.Fatalf("late trigger should be suppressed: %v", err)
	}
	// an early node (10% of cost executed) still triggers
	early := twoTableNode(10)
	early.EstCost = 100
	if err := c.OnMaterialized(early, rows(10000)); err == nil {
		t.Fatal("early trigger should fire")
	}
}

func TestCostAwareDisabledByDefault(t *testing.T) {
	c := NewController(DefaultPolicy())
	root := twoTableNode(10)
	root.EstCost = 1000
	c.SetPlan(root)
	late := twoTableNode(10)
	late.EstCost = 999
	if err := c.OnMaterialized(late, rows(10000)); err == nil {
		t.Fatal("plain policy should trigger regardless of remaining cost")
	}
}
