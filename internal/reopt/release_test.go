package reopt

import (
	"testing"

	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/obs"
)

func TestMaxReoptsSuppressionEventRecorded(t *testing.T) {
	qt := &obs.QueryTrace{}
	qt.NewRound()
	c := NewController(Policy{QErrThreshold: 10, MaxReopts: 2})
	c.Trace = qt
	for i := 0; i < 2; i++ {
		if err := c.OnMaterialized(twoTableNode(1), rows(1000)); err == nil {
			t.Fatalf("trigger %d should fire", i)
		}
		c.ClearTrigger()
	}
	// Budget exhausted: the checkpoint still exceeds the q-error threshold,
	// but must be suppressed — and the suppression must be auditable.
	if err := c.OnMaterialized(twoTableNode(1), rows(1000)); err != nil {
		t.Fatalf("exhausted budget must suppress, got %v", err)
	}
	if n := len(qt.Events); n != 3 {
		t.Fatalf("recorded %d events, want 3", n)
	}
	for i := 0; i < 2; i++ {
		if ev := qt.Events[i]; !ev.Triggered || ev.Suppressed != "" {
			t.Fatalf("event %d = %+v, want triggered", i, ev)
		}
	}
	last := qt.Events[2]
	if last.Triggered || last.Suppressed != "max-reopts" {
		t.Fatalf("exhaustion event = %+v, want Suppressed=max-reopts", last)
	}
	if last.QError <= 10 {
		t.Fatalf("exhaustion event q-error %v should still show the violation", last.QError)
	}
}

func TestReleaseFreesMaterializedIntermediates(t *testing.T) {
	c := NewController(Policy{QErrThreshold: 1e12, MaxReopts: 3})
	n := twoTableNode(1000)
	if err := c.OnMaterialized(n, rows(1000)); err != nil {
		t.Fatal(err)
	}
	held := c.Materialized()[n.Tables]
	if held == nil || held.Card() != 1000 {
		t.Fatalf("mat not recorded: %+v", held)
	}
	c.Triggered = &exec.ReoptSignal{}

	c.Release()

	if len(c.Materialized()) != 0 || c.ExecutedSubs() != nil || c.Triggered != nil {
		t.Fatalf("controller not cleared: mats=%d execs=%v trig=%v",
			len(c.Materialized()), c.ExecutedSubs(), c.Triggered)
	}
	// The buffered rows themselves are dropped, not just the map entry, so
	// anything still pointing at the Materialized cannot pin 1000 rows.
	if held.Rows != nil {
		t.Fatal("released intermediate still holds its rows")
	}
	// The controller stays usable after Release.
	if err := c.OnMaterialized(twoTableNode(5), rows(5)); err != nil {
		t.Fatal(err)
	}
	if len(c.Materialized()) != 1 {
		t.Fatal("controller unusable after Release")
	}
}
