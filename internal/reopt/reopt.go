// Package reopt implements the query re-optimization controller of paper
// §6.2: it observes the executor's materialization checkpoints, compares
// each materialized sub-plan's actual cardinality against the optimizer's
// estimate, and — when the q-error exceeds the trigger threshold — pauses
// execution so the engine can refine the remaining estimates with LPCE-R
// and re-plan from the materialized intermediates.
package reopt

import (
	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/nn"
	"github.com/lpce-db/lpce/internal/obs"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
)

// Policy is the re-optimization trigger rule.
type Policy struct {
	// QErrThreshold triggers re-optimization when the q-error between a
	// materialized sub-plan's actual and estimated cardinality exceeds it
	// (paper: empirically 50).
	QErrThreshold float64
	// MaxReopts bounds the number of re-optimizations per query (paper: 3)
	// so difficult queries the model never learned do not thrash.
	MaxReopts int
	// MinRemainingCostFrac is the cost-aware extension the paper leaves as
	// future work ("re-optimization should be triggered when its execution
	// time reduction outweighs T_R"): a trigger is suppressed unless the
	// estimated cost of the not-yet-executed part of the plan is at least
	// this fraction of the whole plan's estimated cost. Zero disables the
	// check (the paper's plain threshold rule).
	MinRemainingCostFrac float64
}

// DefaultPolicy returns the paper's settings.
func DefaultPolicy() Policy { return Policy{QErrThreshold: 50, MaxReopts: 3} }

// Executed records one materialized sub-plan.
type Executed struct {
	Node *plan.Node
	Mask query.BitSet
	Card float64
}

// Controller implements exec.Controller across the (possibly several)
// executions of one query. It persists between re-optimizations: the
// re-optimization count is cumulative and materialized intermediates
// accumulate.
type Controller struct {
	Policy Policy
	Reopts int
	mats   map[query.BitSet]*plan.Materialized
	execs  []Executed
	// Triggered holds the signal that paused the current execution, for
	// inspection by the engine and the experiment harness.
	Triggered *exec.ReoptSignal
	// planCost is the current plan's total estimated cost, set by the
	// engine before each execution for the cost-aware trigger.
	planCost float64
	// Trace, when non-nil, receives one obs.ReoptEvent per checkpoint —
	// triggered or suppressed — so a workload's re-optimization behaviour
	// can be audited after the fact.
	Trace *obs.QueryTrace
	// Suppress, when non-nil, is consulted at every checkpoint before the
	// policy rules: a non-empty return suppresses the trigger under that
	// reason. It is the hook for suppression decided outside the controller
	// — the serving layer returns "server-degraded" while its health state
	// machine reports overload, shedding re-optimization work before
	// shedding queries.
	Suppress func() string
}

// SetPlan informs the controller of the plan about to execute (used by the
// cost-aware trigger rule).
func (c *Controller) SetPlan(root *plan.Node) {
	if root != nil {
		c.planCost = root.EstCost
	}
}

// NewController returns a controller with the given policy.
func NewController(p Policy) *Controller {
	return &Controller{Policy: p, mats: make(map[query.BitSet]*plan.Materialized)}
}

// OnMaterialized implements exec.Controller.
func (c *Controller) OnMaterialized(node *plan.Node, rows [][]int64) error {
	if node.Op == plan.MatScan {
		return nil // replaying an already-checked intermediate
	}
	c.mats[node.Tables] = &plan.Materialized{Tables: node.Tables, Rows: rows}
	c.execs = append(c.execs, Executed{Node: node, Mask: node.Tables, Card: float64(len(rows))})

	ev := obs.ReoptEvent{
		Op:         node.Op.String(),
		Mask:       node.Tables,
		EstRows:    node.EstCard,
		ActualRows: float64(len(rows)),
	}
	if node.EstCard > 0 {
		ev.QError = nn.QError(float64(len(rows)), node.EstCard)
	}
	suppress := func(reason string) error {
		ev.Suppressed = reason
		c.Trace.AddEvent(ev)
		return nil
	}
	if c.Suppress != nil {
		if reason := c.Suppress(); reason != "" {
			return suppress(reason)
		}
	}
	if c.Reopts >= c.Policy.MaxReopts {
		return suppress("max-reopts")
	}
	if node.EstCard <= 0 {
		return suppress("no-estimate")
	}
	if ev.QError <= c.Policy.QErrThreshold {
		return suppress("below-threshold")
	}
	// cost-aware suppression: if almost all estimated work is already done,
	// re-planning cannot pay for its own overhead
	if c.Policy.MinRemainingCostFrac > 0 && c.planCost > 0 {
		remaining := 1 - node.EstCost/c.planCost
		if remaining < c.Policy.MinRemainingCostFrac {
			return suppress("remaining-cost")
		}
	}
	c.Reopts++
	ev.Triggered = true
	c.Trace.AddEvent(ev)
	sig := &exec.ReoptSignal{Node: node, Actual: len(rows)}
	c.Triggered = sig
	return sig
}

// Materialized returns the accumulated intermediates for plan resumption.
func (c *Controller) Materialized() map[query.BitSet]*plan.Materialized { return c.mats }

// ExecutedSubs returns the executed sub-plans recorded so far, most recent
// last. Node pointers reference the plans they were part of, with true
// cardinalities stamped by the executor.
func (c *Controller) ExecutedSubs() []Executed { return c.execs }

// ClearTrigger resets the triggered signal before resuming execution.
func (c *Controller) ClearTrigger() { c.Triggered = nil }

// Release frees every accumulated materialized intermediate and executed
// sub-plan record. The engine calls it when a query fails or is cancelled —
// including a cancellation that lands mid-replan — so buffered rows never
// outlive the query that materialized them. The controller is reusable
// afterwards, though the engine never does.
func (c *Controller) Release() {
	for _, m := range c.mats {
		m.Rows = nil
	}
	c.mats = make(map[query.BitSet]*plan.Materialized)
	c.execs = nil
	c.Triggered = nil
}
