// Package testutil provides the shared fixtures used by the test suites:
// small deterministic databases and a brute-force query evaluator that is
// independent of the execution engine, so engine results can be checked
// against a second implementation.
package testutil

import (
	"sync"

	"github.com/lpce-db/lpce/internal/datagen"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
)

var (
	tinyOnce sync.Once
	tinyDB   *storage.Database

	smallOnce sync.Once
	smallDB   *storage.Database
)

// TinyDB returns a cached ~300-title database for fast unit tests.
func TinyDB() *storage.Database {
	tinyOnce.Do(func() {
		tinyDB = datagen.Generate(datagen.Config{Titles: 300, Seed: 42})
	})
	return tinyDB
}

// SmallDB returns a cached ~1200-title database for integration tests.
func SmallDB() *storage.Database {
	smallOnce.Do(func() {
		smallDB = datagen.Generate(datagen.Config{Titles: 1200, Seed: 7})
	})
	return smallDB
}

// BruteCount evaluates a COUNT(*) query by explicit backtracking over base
// tables — a reference implementation sharing no code with the execution
// engine. Exponential in the worst case; use only on TinyDB-sized data.
func BruteCount(db *storage.Database, q *query.Query) int {
	n := len(q.Tables)
	rows := make([]int, n) // current row index per table
	tabs := make([]*storage.Table, n)
	for i, t := range q.Tables {
		tabs[i] = db.Table(t)
	}

	// Precompute per-table predicate checks.
	predOK := func(i, r int) bool {
		for _, p := range q.PredsOn(q.Tables[i]) {
			if !p.Eval(tabs[i].Cols[p.Col.Pos][r]) {
				return false
			}
		}
		return true
	}
	// Check join conditions whose both tables are among the first k+1
	// assigned tables.
	joinOK := func(k int) bool {
		for _, j := range q.Joins {
			li, ri := q.TableIndex(j.Left.Table), q.TableIndex(j.Right.Table)
			if li > k || ri > k {
				continue
			}
			lv := tabs[li].Cols[j.Left.Pos][rows[li]]
			rv := tabs[ri].Cols[j.Right.Pos][rows[ri]]
			if lv != rv {
				return false
			}
		}
		return true
	}

	count := 0
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			count++
			return
		}
		for r := 0; r < tabs[k].NumRows(); r++ {
			rows[k] = r
			if !predOK(k, r) {
				continue
			}
			if !joinOK(k) {
				continue
			}
			rec(k + 1)
		}
	}
	rec(0)
	return count
}
