package optimizer

import (
	"fmt"
	"math"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/obs"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
)

// JoinShape restricts the plan-shape search space.
type JoinShape int

// Plan shapes.
const (
	// ShapeBushy searches the full space of binary join trees
	// (PostgreSQL's behaviour, and the default).
	ShapeBushy JoinShape = iota
	// ShapeLeftDeep restricts to left-deep trees (right child of every
	// join is a base relation), the classic System R space; the Figure 17
	// ablation shows re-optimization exploiting bushy plans left-deep
	// search cannot reach.
	ShapeLeftDeep
)

// Optimizer finds the minimum-cost physical plan for a query via dynamic
// programming over connected relation subsets.
type Optimizer struct {
	DB    *storage.Database
	Est   cardest.Estimator
	Cost  CostModel
	Shape JoinShape
	// CE, when non-nil, records every EstimateSubset result (query
	// fingerprint, relation mask, estimate) for CE evaluation: after
	// execution the recorded estimates are joined against observed true
	// cardinalities to grade the estimator sub-plan by sub-plan.
	CE *obs.CERecorder
}

// New returns an optimizer over db using est for cardinalities.
func New(db *storage.Database, est cardest.Estimator) *Optimizer {
	return &Optimizer{DB: db, Est: est, Cost: DefaultCost()}
}

// Stats reports plan-search effort for the experiment harness.
type Stats struct {
	EstimateCalls int // cardinality estimations performed (≤ 2ⁿ−1)
	PlannedMasks  int // connected subsets with a plan
}

type dpEntry struct {
	node *plan.Node
	cost float64
}

// Plan optimizes the query from scratch.
func (o *Optimizer) Plan(q *query.Query) (*plan.Node, Stats, error) {
	return o.PlanWithMaterialized(q, nil)
}

// PlanWithMaterialized optimizes the query treating the supplied
// materialized intermediates as additional leaf candidates with exact
// cardinalities — the re-optimization resume path (paper §6.2): the search
// space contains both plans that continue from the executed sub-plans and
// plans that restart from scratch, and the cheapest wins.
func (o *Optimizer) PlanWithMaterialized(q *query.Query, mats map[query.BitSet]*plan.Materialized) (*plan.Node, Stats, error) {
	n := len(q.Tables)
	if n == 0 {
		return nil, Stats{}, fmt.Errorf("optimizer: empty query")
	}
	full := q.AllTablesMask()
	var stats Stats

	// Per-run estimate cache: the paper stores sub-query estimates in a
	// memory pool so each subset is estimated once.
	cards := make(map[query.BitSet]float64)
	est := func(mask query.BitSet) float64 {
		if v, ok := cards[mask]; ok {
			return v
		}
		stats.EstimateCalls++
		v := o.Est.EstimateSubset(q, mask)
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 1 {
			v = 1
		}
		o.CE.RecordEstimate(q.Fingerprint(), mask, v)
		cards[mask] = v
		return v
	}
	// Materialized subsets have exact cardinalities; seed the cache so
	// refinement models and overlays agree with reality for executed parts.
	for mask, m := range mats {
		cards[mask] = float64(m.Card())
	}

	best := make(map[query.BitSet]*dpEntry)

	// Level 1: base-table access paths.
	for i := 0; i < n; i++ {
		mask := query.NewBitSet().Set(i)
		e := o.bestScan(q, i, est(mask))
		best[mask] = e
	}
	// Materialized leaves compete with whatever covers the same subset.
	for mask, m := range mats {
		cost := o.Cost.MatScanCost(float64(m.Card()))
		node := plan.NewMatLeaf(m)
		node.EstCost = cost
		if cur, ok := best[mask]; !ok || cost < cur.cost {
			best[mask] = &dpEntry{node: node, cost: cost}
		}
	}

	// Levels 2..n: enumerate connected subsets by increasing size.
	masks := make([][]query.BitSet, n+1)
	for mask := query.BitSet(1); mask <= full; mask++ {
		if mask&full != mask {
			continue
		}
		masks[mask.Count()] = append(masks[mask.Count()], mask)
	}
	for size := 2; size <= n; size++ {
		for _, mask := range masks[size] {
			if !q.Connected(mask) {
				continue
			}
			outCard := est(mask)
			var bestEntry *dpEntry
			if e, ok := best[mask]; ok {
				bestEntry = e // a materialized leaf already covers it
			}
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				rest := mask &^ sub
				if o.Shape == ShapeLeftDeep && rest.Count() != 1 {
					continue // right child must be a single relation
				}
				le, lok := best[sub]
				re, rok := best[rest]
				if !lok || !rok {
					continue
				}
				conds := q.JoinsBetween(sub, rest)
				if len(conds) == 0 {
					continue // no cross products
				}
				cardL, cardR := est(sub), est(rest)
				childCost := le.cost + re.cost
				for _, cand := range o.joinCandidates(le.node, re.node, conds, cardL, cardR, outCard) {
					total := childCost + cand.cost
					if bestEntry == nil || total < bestEntry.cost {
						node := cand.node
						node.EstCard = outCard
						node.EstCost = total
						bestEntry = &dpEntry{node: node, cost: total}
					}
				}
			}
			if bestEntry != nil {
				best[mask] = bestEntry
				stats.PlannedMasks++
			}
		}
	}

	root, ok := best[full]
	if !ok {
		return nil, stats, fmt.Errorf("optimizer: query join graph is disconnected")
	}
	return root.node, stats, nil
}

type joinCand struct {
	node *plan.Node
	cost float64
}

// joinCandidates enumerates the physical join operators for one (left,
// right) split. Children are cloned per candidate so the DP can hold
// multiple plans sharing subtrees without aliasing annotations.
func (o *Optimizer) joinCandidates(l, r *plan.Node, conds []query.Join, cardL, cardR, out float64) []joinCand {
	var cands []joinCand
	add := func(op plan.PhysOp, cost float64) {
		cands = append(cands, joinCand{node: plan.NewJoin(op, l.Clone(), r.Clone(), conds), cost: cost})
	}
	add(plan.HashJoin, o.Cost.HashJoinCost(cardL, cardR, out))
	add(plan.MergeJoin, o.Cost.MergeJoinCost(cardL, cardR, out))
	if r.IsLeaf() && r.Op != plan.MatScan {
		add(plan.NestLoopJoin, o.Cost.IndexNLJoinCost(cardL, out))
	} else {
		add(plan.NestLoopJoin, o.Cost.RescanNLJoinCost(cardL, cardR, out))
	}
	return cands
}

// bestScan picks the cheaper of a sequential scan and an index scan for one
// base table.
func (o *Optimizer) bestScan(q *query.Query, idx int, estCard float64) *dpEntry {
	t := q.Tables[idx]
	preds := q.PredsOn(t)
	rows := float64(o.DB.Table(t).NumRows())

	seq := plan.NewLeaf(plan.SeqScan, t, idx, preds)
	seq.EstCard = estCard
	seqCost := o.Cost.SeqScanCost(rows)
	seq.EstCost = seqCost
	bestE := &dpEntry{node: seq, cost: seqCost}

	// Index scan: any predicate except != can drive an index. Each candidate
	// is costed with its own selectivity from the catalog statistics, so the
	// scan drives through the most selective predicate rather than whichever
	// happens to come first in the query.
	for pi := range preds {
		if preds[pi].Op == query.OpNE {
			continue
		}
		matches := indexMatches(preds[pi], estCard, rows, len(preds))
		cost := o.Cost.IndexScanCost(matches)
		if cost < bestE.cost {
			node := plan.NewLeaf(plan.IndexScan, t, idx, preds)
			node.IndexPred = &node.Preds[pi]
			node.EstCard = estCard
			node.EstCost = cost
			bestE = &dpEntry{node: node, cost: cost}
		}
	}
	return bestE
}

// indexMatches estimates how many rows an index fetch driven by predicate p
// returns when the combined selectivity of all k predicates yields estCard.
// The driving predicate alone matches at least estCard rows (the other
// predicates only filter further) and at most the whole table.
func indexMatches(p query.Predicate, estCard, rows float64, k int) float64 {
	if k <= 1 || estCard >= rows {
		return estCard
	}
	if sel := predSelectivity(p); sel >= 0 {
		m := rows * sel
		if m < estCard {
			m = estCard
		}
		if m > rows {
			m = rows
		}
		return m
	}
	// no statistics: geometric interpolation — one predicate accounts for
	// the k-th root of the combined selectivity
	sel := estCard / rows
	return rows * math.Pow(sel, 1/float64(k))
}

// predSelectivity estimates the standalone selectivity of one predicate from
// the catalog column statistics (uniformity assumption over NDV for equality
// and over the [Min, Max] span for ranges), or -1 when the statistics cannot
// price it.
func predSelectivity(p query.Predicate) float64 {
	c := p.Col
	switch p.Op {
	case query.OpEQ:
		if c.NDV > 0 {
			return 1 / float64(c.NDV)
		}
	case query.OpIn:
		if c.NDV > 0 {
			return float64(len(p.InSet)) / float64(c.NDV)
		}
	case query.OpLT, query.OpLE, query.OpGT, query.OpGE:
		span := float64(c.Max-c.Min) + 1
		if span <= 1 {
			return -1 // stats absent or single-valued column
		}
		var frac float64
		switch p.Op {
		case query.OpLT:
			frac = float64(p.Operand-c.Min) / span
		case query.OpLE:
			frac = float64(p.Operand-c.Min+1) / span
		case query.OpGT:
			frac = float64(c.Max-p.Operand) / span
		case query.OpGE:
			frac = float64(c.Max-p.Operand+1) / span
		}
		return math.Min(math.Max(frac, 0), 1)
	}
	return -1
}
