package optimizer

import (
	"math"
	"testing"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/catalog"
	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
	"github.com/lpce-db/lpce/internal/testutil"
	"github.com/lpce-db/lpce/internal/workload"
)

func oracleOpt(db *storage.Database) *Optimizer {
	return New(db, exec.NewTrueCardOracle(db))
}

func TestPlanCoversAllTablesAndJoins(t *testing.T) {
	db := testutil.TinyDB()
	o := oracleOpt(db)
	g := workload.NewGenerator(db, 41)
	for i := 0; i < 15; i++ {
		q := g.Query(2 + i%4)
		p, stats, err := o.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		if p.Tables != q.AllTablesMask() {
			t.Fatalf("plan covers %b, want %b", uint32(p.Tables), uint32(q.AllTablesMask()))
		}
		joinConds := 0
		p.Walk(func(n *plan.Node) {
			if n.Op.IsJoin() {
				joinConds += len(n.JoinConds)
				if len(n.JoinConds) == 0 {
					t.Fatal("plan contains a cross join")
				}
			}
		})
		if joinConds != q.NumJoins() {
			t.Fatalf("plan applies %d join conds, query has %d", joinConds, q.NumJoins())
		}
		if stats.EstimateCalls == 0 {
			t.Fatal("no estimator calls recorded")
		}
	}
}

func TestPlanExecutesCorrectly(t *testing.T) {
	db := testutil.TinyDB()
	o := oracleOpt(db)
	g := workload.NewGenerator(db, 42)
	for i := 0; i < 10; i++ {
		q := g.Query(2 + i%3)
		p, _, err := o.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		ctx := &exec.Ctx{DB: db, Q: q, Controller: exec.NopController{}}
		got, err := exec.Run(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := exec.RunCollect(&exec.Ctx{DB: db, Q: q},
			exec.CanonicalPlan(q, q.AllTablesMask()))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("optimized plan returned %d, want %d for %s", got, want, q.SQL())
		}
	}
}

func TestOraclePlansBeatBadEstimates(t *testing.T) {
	// Plans chosen with exact cardinalities should not cost more actual
	// work than plans chosen with a constant (useless) estimator.
	db := testutil.SmallDB()
	g := workload.NewGenerator(db, 43)
	oracle := oracleOpt(db)
	fixed := New(db, cardest.Fixed{Value: 1000})

	var oracleWork, fixedWork int64
	for i := 0; i < 6; i++ {
		q := g.Query(4)
		po, _, err := oracle.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		pf, _, err := fixed.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		co := &exec.Ctx{DB: db, Q: q}
		if _, err := exec.Run(co, po); err != nil {
			t.Fatal(err)
		}
		cf := &exec.Ctx{DB: db, Q: q}
		if _, err := exec.Run(cf, pf); err != nil {
			t.Fatal(err)
		}
		oracleWork += co.Work()
		fixedWork += cf.Work()
	}
	if oracleWork > fixedWork*3/2 {
		t.Fatalf("oracle plans did %d work, fixed-estimate plans %d — cost model is inverted", oracleWork, fixedWork)
	}
}

func TestEstimateCacheOneCallPerSubset(t *testing.T) {
	db := testutil.TinyDB()
	calls := map[query.BitSet]int{}
	est := cardest.FuncEstimator{Label: "counting", Fn: func(q *query.Query, m query.BitSet) float64 {
		calls[m]++
		return 100
	}}
	o := New(db, est)
	g := workload.NewGenerator(db, 44)
	q := g.Query(4)
	if _, _, err := o.Plan(q); err != nil {
		t.Fatal(err)
	}
	for m, c := range calls {
		if c != 1 {
			t.Fatalf("subset %b estimated %d times", uint32(m), c)
		}
	}
}

func TestEstimateCallBudget(t *testing.T) {
	// Join-eight queries need up to 2^9-1 = 511 estimates (paper §7.2).
	db := testutil.TinyDB()
	o := New(db, cardest.Fixed{Value: 50})
	g := workload.NewGenerator(db, 45)
	q := g.Query(8)
	_, stats, err := o.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EstimateCalls > 511 {
		t.Fatalf("estimate calls = %d > 511", stats.EstimateCalls)
	}
	if stats.EstimateCalls < 9 {
		t.Fatalf("estimate calls = %d, implausibly few", stats.EstimateCalls)
	}
}

func TestMaterializedLeafUsed(t *testing.T) {
	db := testutil.TinyDB()
	o := oracleOpt(db)
	g := workload.NewGenerator(db, 46)
	q := g.Query(3)
	// materialize subset {0,1} if connected, with a tiny buffer so the
	// optimizer should prefer resuming from it
	sub := query.NewBitSet().Set(0).Set(1)
	if !q.Connected(sub) {
		t.Skip("pair not connected in generated query")
	}
	rows := [][]int64{} // empty: zero cost, exact card 0
	mats := map[query.BitSet]*plan.Materialized{sub: {Tables: sub, Rows: rows}}
	p, _, err := o.PlanWithMaterialized(q, mats)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	p.Walk(func(n *plan.Node) {
		if n.Op == plan.MatScan {
			found = true
		}
	})
	if !found {
		t.Fatal("optimizer ignored a free materialized intermediate")
	}
}

func TestDisconnectedQueryFails(t *testing.T) {
	db := testutil.TinyDB()
	s := db.Schema
	q := query.New(
		[]*catalog.Table{s.Table("kind_type"), s.Table("info_type")},
		nil, nil,
	)
	o := oracleOpt(db)
	if _, _, err := o.Plan(q); err == nil {
		t.Fatal("expected error for disconnected query")
	}
}

func TestIndexMatchesInterpolation(t *testing.T) {
	// without column statistics the geometric interpolation fallback applies
	noStats := query.Predicate{Col: &catalog.Column{}, Op: query.OpEQ}
	if got := indexMatches(noStats, 100, 10000, 1); got != 100 {
		t.Fatalf("k=1 should return estCard, got %v", got)
	}
	got := indexMatches(noStats, 100, 10000, 2)
	if got <= 100 || got >= 10000 {
		t.Fatalf("k=2 interpolation %v outside (100, 10000)", got)
	}
	if got := indexMatches(noStats, 20000, 10000, 2); got != 20000 {
		t.Fatalf("estCard >= rows should pass through, got %v", got)
	}
	// with statistics the driving predicate's own selectivity prices the
	// fetch, never below the combined estimate
	eq := query.Predicate{Col: &catalog.Column{NDV: 100}, Op: query.OpEQ}
	if got := indexMatches(eq, 50, 10000, 2); got != 100 {
		t.Fatalf("NDV-priced matches = %v, want 10000/100", got)
	}
	if got := indexMatches(eq, 500, 10000, 2); got != 500 {
		t.Fatalf("matches = %v, want clamp up to estCard 500", got)
	}
}

func TestPredSelectivityFromStats(t *testing.T) {
	c := &catalog.Column{Min: 1, Max: 100, NDV: 100}
	cases := []struct {
		p    query.Predicate
		want float64
	}{
		{query.Predicate{Col: c, Op: query.OpEQ, Operand: 7}, 0.01},
		{query.Predicate{Col: c, Op: query.OpIn, InSet: []int64{1, 2, 3, 4, 5}}, 0.05},
		{query.Predicate{Col: c, Op: query.OpLE, Operand: 50}, 0.5},
		{query.Predicate{Col: c, Op: query.OpGE, Operand: 51}, 0.5},
		{query.Predicate{Col: c, Op: query.OpLT, Operand: 1}, 0},
		{query.Predicate{Col: c, Op: query.OpGT, Operand: 100}, 0},
		{query.Predicate{Col: c, Op: query.OpNE, Operand: 5}, -1},
		{query.Predicate{Col: &catalog.Column{}, Op: query.OpEQ, Operand: 5}, -1},
		{query.Predicate{Col: &catalog.Column{}, Op: query.OpLT, Operand: 5}, -1},
	}
	for i, tc := range cases {
		if got := predSelectivity(tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("case %d: selectivity = %v, want %v", i, got, tc.want)
		}
	}
}

func TestIndexPredPicksMostSelective(t *testing.T) {
	// Regression: bestScan used to compute the index-fetch size
	// loop-invariantly, so the index predicate always landed on the first
	// non-!= predicate regardless of selectivity.
	db := testutil.TinyDB()
	title := db.Schema.Table("title")
	year := title.Column("production_year")
	id := title.Column("id")
	preds := []query.Predicate{
		{Col: year, Op: query.OpGE, Operand: year.Min}, // matches every row
		{Col: id, Op: query.OpEQ, Operand: id.Min},     // matches one row
	}
	q := query.New([]*catalog.Table{title}, nil, preds)
	o := oracleOpt(db)
	e := o.bestScan(q, 0, 1)
	if e.node.Op != plan.IndexScan {
		t.Fatalf("scan op = %v, want IndexScan for a one-row equality", e.node.Op)
	}
	if e.node.IndexPred == nil || e.node.IndexPred.Col != id {
		t.Fatalf("index predicate on %v, want the equality on title.id", e.node.IndexPred)
	}
}

func TestCostModelOrdering(t *testing.T) {
	c := DefaultCost()
	// hash join should beat rescan NLJ for large inputs
	if c.HashJoinCost(1e4, 1e4, 1e4) >= c.RescanNLJoinCost(1e4, 1e4, 1e4) {
		t.Fatal("hash join should be cheaper than quadratic NLJ at scale")
	}
	// index NLJ should win for tiny outer sides
	if c.IndexNLJoinCost(3, 10) >= c.HashJoinCost(3, 1e5, 10) {
		t.Fatal("index NLJ should win with a tiny outer and huge inner")
	}
	// seq scan of everything vs index fetch of a few rows
	if c.IndexScanCost(10) >= c.SeqScanCost(1e5) {
		t.Fatal("index scan should win for selective predicates")
	}
}

func TestOptimizerGuardsBadEstimates(t *testing.T) {
	// NaN/Inf/negative estimates must be clamped, never poison the DP.
	db := testutil.TinyDB()
	bad := cardest.FuncEstimator{Label: "nan", Fn: func(q *query.Query, m query.BitSet) float64 {
		switch m.Count() % 3 {
		case 0:
			return math.NaN()
		case 1:
			return math.Inf(1)
		default:
			return -5
		}
	}}
	o := New(db, bad)
	g := workload.NewGenerator(db, 47)
	q := g.Query(3)
	p, _, err := o.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	p.Walk(func(n *plan.Node) {
		if math.IsNaN(n.EstCard) || math.IsInf(n.EstCard, 0) || n.EstCard < 0 {
			t.Fatalf("unclamped estimate %v survived", n.EstCard)
		}
		if math.IsNaN(n.EstCost) || math.IsInf(n.EstCost, 0) {
			t.Fatalf("cost %v poisoned by bad estimates", n.EstCost)
		}
	})
	// and the plan still executes correctly
	got, err := exec.Run(&exec.Ctx{DB: db, Q: q}, p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exec.RunCollect(&exec.Ctx{DB: db, Q: q}, exec.CanonicalPlan(q, q.AllTablesMask()))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("count %d != %d", got, want)
	}
}
