// Package optimizer implements the dynamic-programming plan enumerator and
// the cost model, mirroring PostgreSQL's approach (paper §6.1): enumeration
// proceeds level by level over connected relation subsets, each subset's
// cardinality is estimated once by the pluggable estimator, and physical
// join operators are costed from the estimated input/output cardinalities.
package optimizer

import "math"

// CostModel holds per-tuple cost constants calibrated against the execution
// engine's work charges (exec.Ctx.charge), so that estimated cost tracks
// actual execution effort when cardinalities are accurate.
type CostModel struct {
	SeqTuple    float64 // per tuple scanned sequentially
	IdxDescend  float64 // per index descent
	IdxTuple    float64 // per tuple fetched from an index
	HashBuild   float64 // per tuple inserted into a hash table
	HashProbe   float64 // per probe
	SortFactor  float64 // multiplier on n*log2(n) for sorts
	NLProbe     float64 // per outer tuple index probe in a nested loop
	NLPair      float64 // per (outer, inner) pair in a rescan nested loop
	OutputTuple float64 // per output tuple of any operator
	MatTuple    float64 // per tuple replayed from a materialized buffer
}

// DefaultCost returns the calibrated default cost model.
func DefaultCost() CostModel {
	return CostModel{
		SeqTuple:    1.0,
		IdxDescend:  16,
		IdxTuple:    1.0,
		HashBuild:   1.0,
		HashProbe:   1.0,
		SortFactor:  1.0,
		NLProbe:     2.0,
		NLPair:      1.0,
		OutputTuple: 1.0,
		MatTuple:    1.0,
	}
}

// SeqScanCost is the cost of a full scan of n rows.
func (c CostModel) SeqScanCost(n float64) float64 { return c.SeqTuple * n }

// IndexScanCost is the cost of fetching matches rows through an index.
func (c CostModel) IndexScanCost(matches float64) float64 {
	return c.IdxDescend + c.IdxTuple*matches
}

// MatScanCost is the cost of replaying a materialized intermediate.
func (c CostModel) MatScanCost(n float64) float64 { return c.MatTuple * n }

// HashJoinCost costs a hash join with build side cardR, probe side cardL.
func (c CostModel) HashJoinCost(cardL, cardR, out float64) float64 {
	return c.HashBuild*cardR + c.HashProbe*cardL + c.OutputTuple*out
}

// MergeJoinCost costs a sort-merge join over two unsorted inputs.
func (c CostModel) MergeJoinCost(cardL, cardR, out float64) float64 {
	return c.SortFactor*(nLogN(cardL)+nLogN(cardR)) +
		c.SeqTuple*(cardL+cardR) + c.OutputTuple*out
}

// IndexNLJoinCost costs a nested loop whose inner side is probed through a
// base-table index: the inner table is never scanned in full.
func (c CostModel) IndexNLJoinCost(cardOuter, out float64) float64 {
	return c.NLProbe*cardOuter + c.OutputTuple*out*1.5
}

// RescanNLJoinCost costs the quadratic nested loop over materialized
// buffers.
func (c CostModel) RescanNLJoinCost(cardL, cardR, out float64) float64 {
	return c.NLPair*cardL*cardR + c.OutputTuple*out
}

func nLogN(n float64) float64 {
	if n < 2 {
		return 1
	}
	return n * math.Log2(n)
}
