package optimizer

import (
	"testing"

	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/testutil"
	"github.com/lpce-db/lpce/internal/workload"
)

func TestLeftDeepShapeEnforced(t *testing.T) {
	db := testutil.TinyDB()
	o := oracleOpt(db)
	o.Shape = ShapeLeftDeep
	g := workload.NewGenerator(db, 181)
	for i := 0; i < 10; i++ {
		q := g.Query(3 + i%3)
		p, _, err := o.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		p.Walk(func(n *plan.Node) {
			if n.Op.IsJoin() && !n.Right.IsLeaf() {
				t.Fatalf("left-deep plan has a composite right child:\n%s", p)
			}
		})
		// correctness preserved
		got, err := exec.Run(&exec.Ctx{DB: db, Q: q}, p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := exec.RunCollect(&exec.Ctx{DB: db, Q: q}, exec.CanonicalPlan(q, q.AllTablesMask()))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("left-deep plan wrong: %d vs %d", got, want)
		}
	}
}

func TestBushyAtLeastAsCheapAsLeftDeep(t *testing.T) {
	// The bushy space strictly contains the left-deep space, so with the
	// same (oracle) estimates the bushy optimum can never cost more.
	db := testutil.TinyDB()
	bushy := oracleOpt(db)
	leftDeep := oracleOpt(db)
	leftDeep.Shape = ShapeLeftDeep
	g := workload.NewGenerator(db, 182)
	for i := 0; i < 10; i++ {
		q := g.Query(4)
		pb, _, err := bushy.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		pl, _, err := leftDeep.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		if pb.EstCost > pl.EstCost+1e-9 {
			t.Fatalf("bushy optimum (%v) costs more than left-deep (%v)", pb.EstCost, pl.EstCost)
		}
	}
}
