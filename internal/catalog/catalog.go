// Package catalog defines database schemas: tables, columns, and the
// relational (join) graph between them. The catalog is shared by the
// storage layer, the query/workload generators, the optimizer, and the
// feature encoder (which needs stable global column and table IDs to build
// the one-hot/two-hot vectors of paper §4.1).
package catalog

import "fmt"

// ColumnKind describes how the data generator populates a column and how
// the workload generator may filter on it.
type ColumnKind int

// Column kinds.
const (
	KindPrimaryKey ColumnKind = iota // dense 0..n-1 identifiers
	KindForeignKey                   // references another table's primary key
	KindAttribute                    // filterable data column
)

// Column is one attribute of a table.
type Column struct {
	GlobalID int // index into Schema.Columns, stable across the process
	Table    *Table
	Pos      int // position within the table
	Name     string
	Kind     ColumnKind
	// Ref is the referenced column for foreign keys, nil otherwise.
	Ref *Column
	// Min, Max and NDV are filled by the storage layer after data load and
	// used by the histogram estimator and the feature encoder's operand
	// normalization.
	Min, Max int64
	NDV      int
}

// QualifiedName returns "table.column".
func (c *Column) QualifiedName() string { return c.Table.Name + "." + c.Name }

// Table is one relation.
type Table struct {
	ID      int // index into Schema.Tables
	Name    string
	Columns []*Column
	byName  map[string]*Column
}

// Column returns the column with the given name, or nil.
func (t *Table) Column(name string) *Column { return t.byName[name] }

// JoinEdge is one edge of the relational graph: an equi-join between a
// foreign key and the primary key it references (or between two foreign
// keys referencing the same key, which the workload generator derives).
type JoinEdge struct {
	Left, Right *Column
}

// Schema is a full database schema.
type Schema struct {
	Tables  []*Table
	Columns []*Column // all columns in GlobalID order
	Edges   []JoinEdge
	byName  map[string]*Table
}

// NewSchema returns an empty schema.
func NewSchema() *Schema { return &Schema{byName: make(map[string]*Table)} }

// AddTable registers a new table with the given column specs.
func (s *Schema) AddTable(name string, cols ...ColumnSpec) *Table {
	if _, dup := s.byName[name]; dup {
		panic(fmt.Sprintf("catalog: duplicate table %q", name))
	}
	t := &Table{ID: len(s.Tables), Name: name, byName: make(map[string]*Column)}
	for i, cs := range cols {
		c := &Column{
			GlobalID: len(s.Columns),
			Table:    t,
			Pos:      i,
			Name:     cs.Name,
			Kind:     cs.Kind,
			Ref:      cs.Ref,
		}
		t.Columns = append(t.Columns, c)
		t.byName[cs.Name] = c
		s.Columns = append(s.Columns, c)
		if cs.Ref != nil {
			s.Edges = append(s.Edges, JoinEdge{Left: c, Right: cs.Ref})
		}
	}
	s.Tables = append(s.Tables, t)
	s.byName[name] = t
	return t
}

// Table returns the table with the given name, or nil.
func (s *Schema) Table(name string) *Table { return s.byName[name] }

// NumColumns returns the number of columns across all tables, i.e. |C| in
// the paper's feature encoding.
func (s *Schema) NumColumns() int { return len(s.Columns) }

// ColumnSpec describes a column when building a schema.
type ColumnSpec struct {
	Name string
	Kind ColumnKind
	Ref  *Column // for foreign keys
}

// PK declares a primary-key column spec.
func PK(name string) ColumnSpec { return ColumnSpec{Name: name, Kind: KindPrimaryKey} }

// FK declares a foreign-key column spec referencing ref.
func FK(name string, ref *Column) ColumnSpec {
	if ref == nil {
		panic("catalog: FK target is nil")
	}
	return ColumnSpec{Name: name, Kind: KindForeignKey, Ref: ref}
}

// Attr declares a plain attribute column spec.
func Attr(name string) ColumnSpec { return ColumnSpec{Name: name, Kind: KindAttribute} }

// JoinableTables returns, for each table ID, the set of table IDs reachable
// by one join edge. The workload generator uses this adjacency to sample
// connected join subgraphs.
func (s *Schema) JoinableTables() [][]int {
	adj := make([][]int, len(s.Tables))
	seen := make([]map[int]bool, len(s.Tables))
	for i := range seen {
		seen[i] = make(map[int]bool)
	}
	add := func(a, b int) {
		if a != b && !seen[a][b] {
			seen[a][b] = true
			adj[a] = append(adj[a], b)
		}
	}
	for _, e := range s.Edges {
		a, b := e.Left.Table.ID, e.Right.Table.ID
		add(a, b)
		add(b, a)
	}
	return adj
}

// EdgesBetween returns the join edges connecting tables a and b, in either
// orientation.
func (s *Schema) EdgesBetween(a, b *Table) []JoinEdge {
	var out []JoinEdge
	for _, e := range s.Edges {
		if (e.Left.Table == a && e.Right.Table == b) || (e.Left.Table == b && e.Right.Table == a) {
			out = append(out, e)
		}
	}
	return out
}

// DerivedEdges returns the implicit join edges between foreign keys that
// reference the same primary key — e.g. movie_companies.movie_id =
// movie_info.movie_id, both referencing title.id. The Join Order Benchmark
// uses such fact-to-fact joins heavily; workload generators can opt in to
// them for denser join graphs.
func (s *Schema) DerivedEdges() []JoinEdge {
	var fks []*Column
	for _, c := range s.Columns {
		if c.Kind == KindForeignKey && c.Ref != nil {
			fks = append(fks, c)
		}
	}
	var out []JoinEdge
	for i, a := range fks {
		for _, b := range fks[i+1:] {
			if a.Ref == b.Ref && a.Table != b.Table {
				out = append(out, JoinEdge{Left: a, Right: b})
			}
		}
	}
	return out
}
