package catalog

import "testing"

func buildTestSchema() *Schema {
	s := NewSchema()
	dim := s.AddTable("dim", PK("id"), Attr("x"))
	s.AddTable("fact",
		FK("dim_id", dim.Column("id")),
		Attr("v"),
	)
	return s
}

func TestAddTableAndLookup(t *testing.T) {
	s := buildTestSchema()
	if s.Table("dim") == nil || s.Table("fact") == nil {
		t.Fatal("table lookup failed")
	}
	if s.Table("nope") != nil {
		t.Fatal("lookup of missing table should be nil")
	}
	if got := s.NumColumns(); got != 4 {
		t.Fatalf("NumColumns = %d, want 4", got)
	}
}

func TestGlobalIDsAreStableAndDense(t *testing.T) {
	s := buildTestSchema()
	for i, c := range s.Columns {
		if c.GlobalID != i {
			t.Fatalf("column %s has GlobalID %d at position %d", c.Name, c.GlobalID, i)
		}
	}
}

func TestColumnQualifiedName(t *testing.T) {
	s := buildTestSchema()
	c := s.Table("fact").Column("dim_id")
	if c.QualifiedName() != "fact.dim_id" {
		t.Fatalf("QualifiedName = %s", c.QualifiedName())
	}
}

func TestForeignKeyEdge(t *testing.T) {
	s := buildTestSchema()
	if len(s.Edges) != 1 {
		t.Fatalf("edges = %d, want 1", len(s.Edges))
	}
	e := s.Edges[0]
	if e.Left.QualifiedName() != "fact.dim_id" || e.Right.QualifiedName() != "dim.id" {
		t.Fatalf("edge = %v -> %v", e.Left.QualifiedName(), e.Right.QualifiedName())
	}
}

func TestJoinableTablesAdjacency(t *testing.T) {
	s := buildTestSchema()
	adj := s.JoinableTables()
	dimID := s.Table("dim").ID
	factID := s.Table("fact").ID
	if len(adj[dimID]) != 1 || adj[dimID][0] != factID {
		t.Fatalf("dim adjacency = %v", adj[dimID])
	}
	if len(adj[factID]) != 1 || adj[factID][0] != dimID {
		t.Fatalf("fact adjacency = %v", adj[factID])
	}
}

func TestEdgesBetween(t *testing.T) {
	s := buildTestSchema()
	dim, fact := s.Table("dim"), s.Table("fact")
	if got := s.EdgesBetween(dim, fact); len(got) != 1 {
		t.Fatalf("EdgesBetween = %d edges", len(got))
	}
	if got := s.EdgesBetween(dim, dim); len(got) != 0 {
		t.Fatalf("self edges = %d", len(got))
	}
}

func TestDuplicateTablePanics(t *testing.T) {
	s := buildTestSchema()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate table")
		}
	}()
	s.AddTable("dim", PK("id"))
}

func TestFKNilTargetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil FK target")
		}
	}()
	FK("bad", nil)
}
