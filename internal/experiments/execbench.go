package experiments

import (
	"fmt"
	"time"

	"github.com/lpce-db/lpce/internal/catalog"
	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/joblike"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
)

// ExecBenchResult is the scalar-vs-batch executor benchmark recorded in
// BENCH_e2e.json. Two measurements: a synthetic hash-join probe hot path
// (the workload the vectorized executor targets — per-tuple interface
// calls, per-tuple hashing, Go-map probes), and the environment's JOB-like
// suite executed end to end on both paths with the counts compared.
type ExecBenchResult struct {
	// Hot path: probe ProbeRows rows against a build side of BuildRows.
	BuildRows          int     `json:"build_rows"`
	ProbeRows          int     `json:"probe_rows"`
	ScalarProbeSeconds float64 `json:"scalar_probe_seconds"`
	BatchProbeSeconds  float64 `json:"batch_probe_seconds"`
	// Speedup is scalar/batch time on the probe hot path; the bench gate
	// fails when it drops below 1 (batch slower than scalar).
	Speedup float64 `json:"speedup"`

	// ExecWorkers is the morsel-parallelism worker count the parallel
	// measurements ran with; 0 when the parallel pass was skipped. The
	// parallel numbers ride the same probe hot path and suite with
	// Ctx.ExecWorkers set, and their counts fold into CountsIdentical.
	// Wall-clock gains track available cores: on a single-core host the
	// parallel wall is expected to roughly match the serial batch wall (the
	// benchdiff gate only rejects it exceeding serial by more than 10%).
	ExecWorkers          int     `json:"exec_workers,omitempty"`
	ParallelProbeSeconds float64 `json:"parallel_probe_seconds,omitempty"`
	// ParallelSpeedup is serial-batch/parallel-batch time on the probe hot
	// path (not scalar/parallel), isolating what the exchange adds.
	ParallelSpeedup float64 `json:"parallel_speedup,omitempty"`

	// Build wall: the vecTable build phase alone (drain and probe excluded)
	// over BuildBenchRows synthetic rows, serial vs ExecWorkers. The
	// serial/parallel layout parity and the gated comparison live in the
	// load_bench block; these fields localize a build-side regression when
	// the probe walls move.
	BuildBenchRows           int     `json:"build_bench_rows"`
	BuildWallSeconds         float64 `json:"build_wall_seconds"`
	ParallelBuildWallSeconds float64 `json:"parallel_build_wall_seconds,omitempty"`

	// Suite: executor wall (T_E only) across the JOB-like queries.
	SuiteQueries         int     `json:"suite_queries"`
	SuiteScalarSeconds   float64 `json:"suite_scalar_exec_seconds"`
	SuiteBatchSeconds    float64 `json:"suite_batch_exec_seconds"`
	SuiteSpeedup         float64 `json:"suite_speedup"`
	SuiteParallelSeconds float64 `json:"suite_parallel_exec_seconds,omitempty"`
	SuiteParallelSpeedup float64 `json:"suite_parallel_speedup,omitempty"`
	// CountsIdentical asserts every measured path — scalar, batch, and the
	// morsel-parallel batch when enabled — returned the same COUNT(*) for
	// every suite query and for the probe hot path.
	CountsIdentical bool `json:"counts_identical"`
}

// execBenchDB builds the synthetic probe workload: a build table of
// distinct keys and a probe table hitting them round-robin.
func execBenchDB(buildRows, probeRows int) (*storage.Database, *query.Query) {
	s := catalog.NewSchema()
	b := s.AddTable("bench_build", catalog.PK("id"), catalog.Attr("pad"))
	p := s.AddTable("bench_probe", catalog.FK("bid", b.Column("id")), catalog.Attr("f"))

	db := storage.NewDatabase(s)
	bt := storage.NewTable(b, buildRows)
	for i := 0; i < buildRows; i++ {
		bt.ColByName("id")[i] = int64(i)
		bt.ColByName("pad")[i] = int64(i * 3)
	}
	db.Tables[b.ID] = bt
	pt := storage.NewTable(p, probeRows)
	for i := 0; i < probeRows; i++ {
		pt.ColByName("bid")[i] = int64(i % buildRows)
		pt.ColByName("f")[i] = int64(i % 100)
	}
	db.Tables[p.ID] = pt
	bt.FinishLoad()
	pt.FinishLoad()

	q := query.New([]*catalog.Table{b, p},
		[]query.Join{{Left: p.Column("bid"), Right: b.Column("id")}}, nil)
	return db, q
}

// ExecBench measures the batch executor against the scalar reference, and —
// when execWorkers > 1 — the morsel-parallel batch path against both. The
// hot-path numbers are best-of-reps to shed scheduler noise; the suite
// numbers are single-pass sums of executor wall time under the PostgreSQL
// (histogram) configuration.
func ExecBench(e *Env, execWorkers int) (*ExecBenchResult, error) {
	const buildRows, probeRows, reps = 4096, 1 << 16, 5
	res := &ExecBenchResult{BuildRows: buildRows, ProbeRows: probeRows, CountsIdentical: true}
	if execWorkers > 1 {
		res.ExecWorkers = execWorkers
	}

	db, q := execBenchDB(buildRows, probeRows)
	// mode: 0 = scalar, 1 = batch, 2 = morsel-parallel batch.
	best := func(mode int) (float64, int, error) {
		bestSec := 0.0
		count := 0
		for r := 0; r < reps; r++ {
			pl := planOnly(q)
			ctx := &exec.Ctx{DB: db, Q: q}
			if mode == 2 {
				ctx.ExecWorkers = execWorkers
			}
			start := time.Now()
			var c int
			var err error
			if mode != 0 {
				c, err = exec.RunBatch(ctx, pl)
			} else {
				c, err = exec.Run(ctx, pl)
			}
			sec := time.Since(start).Seconds()
			if err != nil {
				return 0, 0, err
			}
			if bestSec == 0 || sec < bestSec {
				bestSec = sec
			}
			count = c
		}
		return bestSec, count, nil
	}
	scalarSec, scalarCount, err := best(0)
	if err != nil {
		return nil, err
	}
	batchSec, batchCount, err := best(1)
	if err != nil {
		return nil, err
	}
	if scalarCount != batchCount {
		res.CountsIdentical = false
	}
	res.ScalarProbeSeconds = scalarSec
	res.BatchProbeSeconds = batchSec
	if batchSec > 0 {
		res.Speedup = scalarSec / batchSec
	}
	if res.ExecWorkers > 1 {
		parSec, parCount, err := best(2)
		if err != nil {
			return nil, err
		}
		if parCount != batchCount {
			res.CountsIdentical = false
		}
		res.ParallelProbeSeconds = parSec
		if parSec > 0 {
			res.ParallelSpeedup = batchSec / parSec
		}
	}

	// Build wall: the hash-table build phase in isolation, at a row count
	// that clears the parallel path's morsel cutoff.
	const buildBenchRows, buildKeySpace = 1 << 16, 1 << 12
	res.BuildBenchRows = buildBenchRows
	buildSerial, buildPar, _ := exec.HashBuildBench(buildBenchRows, buildKeySpace, execWorkers, reps)
	res.BuildWallSeconds = buildSerial
	if res.ExecWorkers > 1 {
		res.ParallelBuildWallSeconds = buildPar
	}

	// Suite comparison: the JOB-like queries end to end, summing executor
	// wall only, with the result counts cross-checked.
	queries, err := joblike.Queries(e.DB.Schema)
	if err != nil {
		return nil, err
	}
	eng := engine.New(e.DB)
	cfg := engine.Config{Estimator: e.Histogram, Budget: e.P.budget}
	counts := make(map[string]int)
	modes := []int{0, 1}
	if res.ExecWorkers > 1 {
		modes = append(modes, 2)
	}
	for _, mode := range modes {
		c := cfg
		c.ScalarExec = mode == 0
		if mode == 2 {
			c.ExecWorkers = execWorkers
		}
		var wall time.Duration
		for _, name := range joblike.Names() {
			r, err := eng.Execute(queries[name], c)
			if err != nil {
				return nil, fmt.Errorf("execbench %s: %w", name, err)
			}
			wall += r.ExecTime
			if mode == 0 {
				counts[name] = r.Count
			} else if counts[name] != r.Count {
				res.CountsIdentical = false
			}
		}
		switch mode {
		case 0:
			res.SuiteScalarSeconds = wall.Seconds()
		case 1:
			res.SuiteBatchSeconds = wall.Seconds()
		case 2:
			res.SuiteParallelSeconds = wall.Seconds()
		}
	}
	res.SuiteQueries = len(joblike.Names())
	if res.SuiteBatchSeconds > 0 {
		res.SuiteSpeedup = res.SuiteScalarSeconds / res.SuiteBatchSeconds
	}
	if res.SuiteParallelSeconds > 0 {
		res.SuiteParallelSpeedup = res.SuiteBatchSeconds / res.SuiteParallelSeconds
	}
	return res, nil
}

// planOnly rebuilds the probe-outer hash-join plan for one measurement run
// (plans carry TrueCard stamps, so each run gets a fresh tree).
func planOnly(q *query.Query) *plan.Node {
	probe := plan.NewLeaf(plan.SeqScan, q.Tables[1], 1, nil)
	build := plan.NewLeaf(plan.SeqScan, q.Tables[0], 0, nil)
	return plan.NewJoin(plan.HashJoin, probe, build, q.Joins)
}

// Render formats the benchmark for terminal output.
func (r *ExecBenchResult) Render() string {
	t := &Table{
		Title: fmt.Sprintf("Executor: scalar vs batch (probe %d rows x build %d, counts identical: %v)",
			r.ProbeRows, r.BuildRows, r.CountsIdentical),
		Header: []string{"workload", "scalar", "batch", "speedup"},
	}
	t.AddRow("hash-join probe", FmtDur(r.ScalarProbeSeconds), FmtDur(r.BatchProbeSeconds),
		fmt.Sprintf("%.2fx", r.Speedup))
	t.AddRow(fmt.Sprintf("JOB-like suite T_E (%d queries)", r.SuiteQueries),
		FmtDur(r.SuiteScalarSeconds), FmtDur(r.SuiteBatchSeconds),
		fmt.Sprintf("%.2fx", r.SuiteSpeedup))
	t.AddRow(fmt.Sprintf("hash build wall (%d rows)", r.BuildBenchRows),
		FmtDur(r.BuildWallSeconds), "", "")
	out := t.String()
	if r.ExecWorkers > 1 {
		p := &Table{
			Title: fmt.Sprintf("Executor: batch vs morsel-parallel batch (%d workers)",
				r.ExecWorkers),
			Header: []string{"workload", "batch", "parallel", "speedup"},
		}
		p.AddRow("hash-join probe", FmtDur(r.BatchProbeSeconds), FmtDur(r.ParallelProbeSeconds),
			fmt.Sprintf("%.2fx", r.ParallelSpeedup))
		p.AddRow(fmt.Sprintf("JOB-like suite T_E (%d queries)", r.SuiteQueries),
			FmtDur(r.SuiteBatchSeconds), FmtDur(r.SuiteParallelSeconds),
			fmt.Sprintf("%.2fx", r.SuiteParallelSpeedup))
		buildSpeedup := 0.0
		if r.ParallelBuildWallSeconds > 0 {
			buildSpeedup = r.BuildWallSeconds / r.ParallelBuildWallSeconds
		}
		p.AddRow(fmt.Sprintf("hash build wall (%d rows)", r.BuildBenchRows),
			FmtDur(r.BuildWallSeconds), FmtDur(r.ParallelBuildWallSeconds),
			fmt.Sprintf("%.2fx", buildSpeedup))
		out += "\n" + p.String()
	}
	return out
}
