package experiments

import (
	"fmt"
	"strings"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/reopt"
)

// Figure17Result reproduces the paper's worked re-optimization example
// (Figures 2 and 17): one query whose LPCE-I estimates trigger
// re-optimization, with the initial plan, the re-optimized plan, and the
// end-to-end times of running with and without re-optimization.
type Figure17Result struct {
	SQL            string
	InitialPlan    string
	FinalPlan      string
	Reopts         int
	TimeWithout    float64 // seconds, LPCE-I only
	TimeWith       float64 // seconds, LPCE-R
	TriggerActual  float64
	TriggerEstim   float64
	Found          bool
	QueriesScanned int
}

// Figure17 searches the deep-join test set for a query that triggers
// re-optimization and documents it. A forced low threshold is used at Tiny
// scale so unit tests reliably find one.
func Figure17(e *Env) Figure17Result {
	policy := reopt.DefaultPolicy()
	if e.Scale == ScaleTiny {
		policy = reopt.Policy{QErrThreshold: 5, MaxReopts: 3}
	}
	eng := engine.New(e.DB)
	var res Figure17Result
	var est cardest.Estimator = e.LPCEIEstimator()
	for _, q := range e.JoinHigh {
		res.QueriesScanned++
		withR, err := eng.Execute(q, engine.Config{
			Estimator: est, Refiner: e.Refiner, Policy: policy, Budget: e.P.budget,
		})
		if err != nil || withR.Reopts == 0 {
			continue
		}
		withoutR, err := eng.Execute(q, engine.Config{Estimator: est, Budget: e.P.budget})
		if err != nil {
			continue
		}
		res.SQL = q.SQL()
		res.InitialPlan = withoutR.FinalPlan.String()
		res.FinalPlan = withR.FinalPlan.String()
		res.Reopts = withR.Reopts
		res.TimeWithout = withoutR.Total().Seconds()
		res.TimeWith = withR.Total().Seconds()
		res.Found = true
		return res
	}
	return res
}

// Render formats the example narrative.
func (r Figure17Result) Render() string {
	if !r.Found {
		return fmt.Sprintf("Figure 17: no query triggered re-optimization among %d candidates "+
			"(LPCE-I estimates were within the threshold everywhere)\n", r.QueriesScanned)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 17: query re-optimization example\n")
	fmt.Fprintf(&b, "query: %s\n", r.SQL)
	fmt.Fprintf(&b, "re-optimizations: %d\n", r.Reopts)
	fmt.Fprintf(&b, "end-to-end time without re-optimization: %s\n", FmtDur(r.TimeWithout))
	fmt.Fprintf(&b, "end-to-end time with re-optimization:    %s\n", FmtDur(r.TimeWith))
	fmt.Fprintf(&b, "\ninitial plan (LPCE-I):\n%s", r.InitialPlan)
	fmt.Fprintf(&b, "\nfinal plan (LPCE-R, resumed from materialized intermediates):\n%s", r.FinalPlan)
	return b.String()
}
