package experiments

import (
	"fmt"
	"io"
	"time"
)

// RunAll executes every experiment in paper order, streaming rendered
// tables to w. It is the engine behind cmd/lpce-bench and the EXPERIMENTS.md
// regeneration.
func RunAll(e *Env, w io.Writer) error {
	logf := func(format string, args ...interface{}) {
		fmt.Fprintf(w, format+"\n", args...)
	}
	logf("LPCE experiment suite — scale=%s seed=%d", e.Scale, e.Seed)
	logf("database: %d tables, %d total rows; training samples: %d (collection %s, model training %s)",
		len(e.DB.Tables), e.DB.TotalRows(), len(e.Samples),
		e.CollectStats.Duration.Round(time.Millisecond), e.TrainTime.Round(time.Millisecond))
	logf("test sets: %s, %s, %s (%d queries each)\n",
		e.JoinTinyLabel, e.JoinLowLabel, e.JoinHighLabel, e.P.testQueries)

	logf("%s", Table1(e).Render())
	logf("%s", Figure1(e).Render())

	suiteLow, err := e.RunSuite(e.JoinLowLabel, e.JoinLow)
	if err != nil {
		return err
	}
	suiteHigh, err := e.RunSuite(e.JoinHighLabel, e.JoinHigh)
	if err != nil {
		return err
	}
	suiteTiny, err := e.RunSuite(e.JoinTinyLabel, e.JoinTiny)
	if err != nil {
		return err
	}

	logf("%s", Figure11(suiteLow).Render())
	logf("%s", Figure11(suiteHigh).Render())
	logf("%s", Table2(suiteLow).Render())
	logf("%s", Table2(suiteHigh).Render())
	logf("%s", Figure12(suiteLow).Render())
	logf("%s", Figure12(suiteHigh).Render())
	logf("%s", Figure13(suiteHigh).Render())
	logf("%s", Figure14(suiteLow).Render())
	logf("%s", Figure14(suiteHigh).Render())
	logf("%s", Figure15(suiteTiny).Render())

	testSamples := e.CollectTestSamples(e.JoinHigh)
	logf("%s", Figure16(e, e.JoinHighLabel, testSamples).Render())
	logf("%s", Figure17(e).Render())
	logf("%s", Figure18(e).Render())
	logf("%s", Figure19And20(e).Render())
	logf("%s", Figure21(e).Render())
	logf("%s", Table3(e, testSamples).Render())

	// extensions beyond the paper (its §8 future-work directions)
	ext, err := ExtReopt(e, e.JoinHighLabel, e.JoinHigh)
	if err != nil {
		return err
	}
	logf("%s", ext.Render())
	sweep, err := ExtTriggerSweep(e, e.JoinHighLabel, e.JoinHigh)
	if err != nil {
		return err
	}
	logf("%s", sweep.Render())

	job, err := JobSuite(e)
	if err != nil {
		return err
	}
	logf("%s", job.Render())
	return nil
}
