package experiments

import (
	"time"

	"github.com/lpce-db/lpce/internal/nn"
	"github.com/lpce-db/lpce/internal/query"
)

// Table1Row is one estimator's accuracy/latency summary.
type Table1Row struct {
	Name         string
	DataAccess   bool
	MeanQError   float64
	InferTimeSec float64 // average per single cardinality estimation
}

// Table1Result reproduces Table 1: the estimation q-error and per-estimate
// inference time of every learning-based estimator on the deep-join test
// set, exposing the accuracy/latency tension that motivates LPCE.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 runs the experiment.
func Table1(e *Env) Table1Result {
	type entry struct {
		name       string
		dataAccess bool
		est        interface {
			Name() string
			EstimateSubset(*query.Query, query.BitSet) float64
		}
	}
	entries := []entry{
		{"UAE", true, e.UAE},
		{"DeepDB", true, e.DeepDB},
		{"NeuroCard", true, e.NeuroCard},
		{"FLAT", true, e.FLAT},
		{"MSCN", false, e.MSCN},
		{"TLSTM", false, e.TLSTM},
		{"Flow-Loss", false, e.FlowLoss},
		{"LPCE-I", false, e.LPCEIEstimator()},
	}
	var res Table1Result
	for _, en := range entries {
		var qs []float64
		var inferTime time.Duration
		calls := 0
		for _, q := range e.JoinHigh {
			full := q.AllTablesMask()
			truth := e.Oracle.EstimateSubset(q, full)
			start := time.Now()
			est := en.est.EstimateSubset(q, full)
			inferTime += time.Since(start)
			calls++
			qs = append(qs, nn.QError(truth, est))
		}
		res.Rows = append(res.Rows, Table1Row{
			Name:         en.name,
			DataAccess:   en.dataAccess,
			MeanQError:   Mean(qs),
			InferTimeSec: inferTime.Seconds() / float64(calls),
		})
	}
	return res
}

// Render formats the result like the paper's Table 1.
func (r Table1Result) Render() string {
	t := &Table{
		Title:  "Table 1: estimation q-error and inference time (deep-join test set)",
		Header: []string{"Name", "Data access", "mean q-error", "Inference time"},
	}
	for _, row := range r.Rows {
		access := "No"
		if row.DataAccess {
			access = "Yes"
		}
		t.AddRow(row.Name, access, FmtF(row.MeanQError), FmtDur(row.InferTimeSec))
	}
	return t.String()
}
