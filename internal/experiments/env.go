// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) on the synthetic IMDB-like database: workload
// generation, model training, end-to-end execution with every estimator,
// and the ablation studies. Each experiment accepts a Scale so unit tests
// (Tiny), `go test -bench` (Small), and `cmd/lpce-bench -scale=full` (Full)
// share one code path.
package experiments

import (
	"time"

	"github.com/lpce-db/lpce/internal/baselines"
	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/datagen"
	"github.com/lpce-db/lpce/internal/encode"
	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/modelio"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
	"github.com/lpce-db/lpce/internal/treenn"
	"github.com/lpce-db/lpce/internal/workload"
)

// Scale selects experiment sizes.
type Scale int

// Scales.
const (
	// ScaleTiny is for unit tests: seconds end to end.
	ScaleTiny Scale = iota
	// ScaleSmall is the default for benchmarks: a few minutes.
	ScaleSmall
	// ScaleFull approximates the paper's setup proportionally to the
	// synthetic data: tens of minutes.
	ScaleFull
)

func (s Scale) String() string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScaleFull:
		return "full"
	default:
		return "tiny"
	}
}

// ParseScale maps a flag string to a Scale.
func ParseScale(s string) Scale {
	switch s {
	case "small":
		return ScaleSmall
	case "full":
		return ScaleFull
	default:
		return ScaleTiny
	}
}

// params bundles every scale-dependent knob.
type params struct {
	titles        int
	trainQueries  int
	trainMinJoins int
	trainMaxJoins int
	testQueries   int // per test set
	budget        int64
	// collectBudget bounds per-query work during training-sample
	// collection, which materializes every operator's output; heavy
	// queries are skipped rather than allowed to buffer multi-GB
	// intermediates.
	collectBudget int64
	// oracleBudget bounds exact-count computation; test queries are
	// curated so their true cardinalities are computable within it (the
	// paper analogously selects test queries by execution time).
	oracleBudget int64

	teacher core.TrainConfig
	student core.TrainConfig
	mscn    baselines.MSCNConfig
	refiner core.RefinerConfig

	walksNeuroCard int
	walksFlat      int
	walksUAE       int
}

func paramsFor(scale Scale, seed int64) params {
	switch scale {
	case ScaleFull:
		return params{
			titles: 8000, trainQueries: 1500, trainMinJoins: 4, trainMaxJoins: 8,
			testQueries: 100, budget: 300_000_000, collectBudget: 40_000_000, oracleBudget: 200_000_000,
			teacher:        core.TrainConfig{Hidden: 64, OutWidth: 128, Epochs: 80, Batch: 50, LR: 1e-3, NodeWise: true, Seed: seed},
			student:        core.TrainConfig{Hidden: 16, OutWidth: 32, Epochs: 50, Batch: 50, LR: 1e-3, NodeWise: true, Seed: seed},
			mscn:           baselines.MSCNConfig{Hidden: 64, Epochs: 16, Batch: 50, LR: 1e-3, Seed: seed},
			refiner:        core.RefinerConfig{Kind: core.RefinerFull, AdjustEpochs: 8, PrefixesPerSample: 3},
			walksNeuroCard: 500, walksFlat: 160, walksUAE: 700,
		}
	case ScaleSmall:
		return params{
			titles: 2500, trainQueries: 450, trainMinJoins: 3, trainMaxJoins: 8,
			testQueries: 25, budget: 120_000_000, collectBudget: 30_000_000, oracleBudget: 80_000_000,
			teacher:        core.TrainConfig{Hidden: 48, OutWidth: 64, Epochs: 60, Batch: 32, LR: 1.5e-3, NodeWise: true, Seed: seed},
			student:        core.TrainConfig{Hidden: 12, OutWidth: 16, Epochs: 40, Batch: 32, LR: 1.5e-3, NodeWise: true, Seed: seed},
			mscn:           baselines.MSCNConfig{Hidden: 48, Epochs: 10, Batch: 50, LR: 1.5e-3, Seed: seed},
			refiner:        core.RefinerConfig{Kind: core.RefinerFull, AdjustEpochs: 5, PrefixesPerSample: 3},
			walksNeuroCard: 400, walksFlat: 130, walksUAE: 550,
		}
	default:
		return params{
			titles: 400, trainQueries: 60, trainMinJoins: 2, trainMaxJoins: 5,
			testQueries: 6, budget: 100_000_000, collectBudget: 30_000_000, oracleBudget: 30_000_000,
			teacher:        core.TrainConfig{Hidden: 16, OutWidth: 16, Epochs: 16, Batch: 16, LR: 3e-3, NodeWise: true, Seed: seed},
			student:        core.TrainConfig{Hidden: 8, OutWidth: 8, Epochs: 12, Batch: 16, LR: 3e-3, NodeWise: true, Seed: seed},
			mscn:           baselines.MSCNConfig{Hidden: 16, Epochs: 6, Batch: 32, LR: 3e-3, Seed: seed},
			refiner:        core.RefinerConfig{Kind: core.RefinerFull, AdjustEpochs: 3, PrefixesPerSample: 2},
			walksNeuroCard: 120, walksFlat: 50, walksUAE: 180,
		}
	}
}

// testJoins returns the join counts of the test sets at this scale. The
// paper tests Join-six and Join-eight (plus Join-three for Figure 15); Tiny
// shrinks them so unit tests stay fast.
func (p params) testJoins(scale Scale) (joinLow, joinHigh, joinTiny int) {
	if scale == ScaleTiny {
		return 3, 4, 2
	}
	return 6, 8, 3
}

// Env is the fully-prepared experimental environment: database, trained
// estimators, and test workloads.
type Env struct {
	Scale  Scale
	Seed   int64
	P      params
	DB     *storage.Database
	Enc    *encode.Encoder
	Oracle *exec.TrueCardOracle

	Samples []core.Sample
	LogMax  float64

	Histogram *histogram.Estimator
	LPCEI     *core.LPCEI
	Refiner   *core.Refiner
	TLSTM     *core.TreeEstimator
	FlowLoss  *core.TreeEstimator
	MSCN      *baselines.MSCN
	NeuroCard *datadrivenEst
	DeepDB    *datadrivenEst
	FLAT      *datadrivenEst
	UAE       *datadrivenEst

	JoinLow  []*query.Query // "Join-six" (Join-three at Tiny)
	JoinHigh []*query.Query // "Join-eight" (Join-four at Tiny)
	JoinTiny []*query.Query // "Join-three" for Figure 15

	JoinLowLabel, JoinHighLabel, JoinTinyLabel string

	CollectStats core.CollectStats
	TrainTime    time.Duration
}

// datadrivenEst tags a data-driven estimator with its display name.
type datadrivenEst struct {
	cardest.Estimator
	Display string
}

// LPCEIEstimator returns the deployed LPCE-I as an optimizer estimator.
func (e *Env) LPCEIEstimator() cardest.Estimator {
	return &core.TreeEstimator{Label: "lpce-i", Model: e.LPCEI.Model, Enc: e.Enc}
}

// QueryDriven lists (name, estimator) pairs for the query-driven models.
func (e *Env) QueryDriven() []NamedEstimator {
	return []NamedEstimator{
		{"MSCN", e.MSCN},
		{"Flow-Loss", e.FlowLoss},
		{"TLSTM", e.TLSTM},
		{"LPCE-I", e.LPCEIEstimator()},
	}
}

// DataDriven lists (name, estimator) pairs for the data-driven substitutes.
func (e *Env) DataDriven() []NamedEstimator {
	return []NamedEstimator{
		{"DeepDB", e.DeepDB},
		{"NeuroCard", e.NeuroCard},
		{"FLAT", e.FLAT},
		{"UAE", e.UAE},
	}
}

// NamedEstimator pairs a display name with an estimator.
type NamedEstimator struct {
	Name string
	Est  cardest.Estimator
}

// SetupOptions customizes SetupWith beyond (scale, seed).
type SetupOptions struct {
	// TrainWorkers fans every SGD training loop across this many
	// goroutines. Weights are byte-identical for every setting (see
	// core.TrainConfig.Workers); only training wall time changes. <= 1
	// trains serially.
	TrainWorkers int
	// ModelsDir, when non-empty, loads the SGD-trained models from a
	// modelio artifact directory (written by cmd/lpce-train) instead of
	// training them. The artifacts must have been trained against the same
	// (scale, seed) database; the format's encoder fingerprint rejects
	// anything else.
	ModelsDir string
	// TrainOnly skips the data-driven estimators and the curated test
	// workloads; cmd/lpce-train uses it because it only needs the trained
	// models.
	TrainOnly bool
}

// Setup builds the complete environment: generate data, collect training
// samples, train every model. Deterministic per (scale, seed).
func Setup(scale Scale, seed int64) *Env {
	// With zero options SetupWith has no failure path.
	env, err := SetupWith(scale, seed, SetupOptions{})
	if err != nil {
		panic(err)
	}
	return env
}

// SetupWith is Setup with explicit options: parallel training, loading
// pre-trained artifacts, or a training-only environment.
func SetupWith(scale Scale, seed int64, opts SetupOptions) (*Env, error) {
	p := paramsFor(scale, seed)
	if opts.TrainWorkers > 1 {
		p.teacher.Workers = opts.TrainWorkers
		p.student.Workers = opts.TrainWorkers
		p.mscn.Workers = opts.TrainWorkers
	}
	db := datagen.Generate(datagen.Config{Titles: p.titles, Seed: seed})
	enc := encode.NewEncoder(db.Schema)
	env := &Env{Scale: scale, Seed: seed, P: p, DB: db, Enc: enc, Oracle: exec.NewTrueCardOracle(db)}
	env.Oracle.Budget = p.oracleBudget

	env.Histogram = histogram.NewEstimator(db)

	// Training workload and sample collection (paper §7.1). Samples are
	// collected even when models are loaded from artifacts: LogMax, UAE
	// calibration, and the CE-evaluation experiments all consume them.
	gTrain := workload.NewGenerator(db, seed+1)
	trainQs := gTrain.QueriesRange(p.trainQueries, p.trainMinJoins, p.trainMaxJoins)
	env.Samples, env.CollectStats = core.CollectSamples(db, env.Histogram, trainQs, p.collectBudget)
	env.LogMax = core.MaxLogCard(env.Samples)

	trainStart := time.Now()
	if opts.ModelsDir != "" {
		set, err := modelio.LoadSet(opts.ModelsDir, enc, db)
		if err != nil {
			return nil, err
		}
		env.LPCEI = set.LPCEI
		env.Refiner = set.Refiner
		env.TLSTM = &core.TreeEstimator{Label: "tlstm", Model: set.TLSTM, Enc: enc}
		env.FlowLoss = &core.TreeEstimator{Label: "flow-loss", Model: set.FlowLoss, Enc: enc}
		env.MSCN = set.MSCN
	} else {
		env.LPCEI = core.TrainLPCEI(core.LPCEIConfig{Teacher: p.teacher, Student: p.student}, enc, env.Samples, env.LogMax)
		rcfg := p.refiner
		rcfg.Base = p.teacher
		env.Refiner = core.TrainRefiner(rcfg, enc, db, env.Samples, env.LogMax)

		tlstmCfg := p.teacher
		tlstmCfg.Cell = treenn.CellLSTM
		env.TLSTM = baselines.TrainTLSTM(tlstmCfg, enc, env.Samples, env.LogMax)
		env.FlowLoss = baselines.TrainFlowLoss(p.teacher, enc, env.Samples, env.LogMax)
		env.MSCN = baselines.TrainMSCN(p.mscn, db.Schema, env.Samples, env.LogMax)
	}
	env.TrainTime = time.Since(trainStart)

	if opts.TrainOnly {
		return env, nil
	}

	env.NeuroCard = &datadrivenEst{datadrivenFor(db, "neurocard", p, seed), "NeuroCard"}
	env.DeepDB = &datadrivenEst{datadrivenFor(db, "deepdb", p, seed), "DeepDB"}
	env.FLAT = &datadrivenEst{datadrivenFor(db, "flat", p, seed), "FLAT"}
	uae := newUAE(db, p, seed)
	calibrateUAE(uae, env.Samples)
	env.UAE = &datadrivenEst{uae, "UAE"}

	// Test workloads, curated so exact counts are computable (see
	// oracleBudget).
	jl, jh, jt := p.testJoins(scale)
	gTest := workload.NewGenerator(db, seed+2)
	env.JoinLow = env.CuratedQueries(gTest, p.testQueries, jl)
	env.JoinHigh = env.CuratedQueries(gTest, p.testQueries, jh)
	env.JoinTiny = env.CuratedQueries(gTest, p.testQueries, jt)
	env.JoinLowLabel = joinLabel(jl)
	env.JoinHighLabel = joinLabel(jh)
	env.JoinTinyLabel = joinLabel(jt)
	return env, nil
}

// ModelSet bundles the environment's SGD-trained models for modelio
// persistence; cmd/lpce-train saves it and cmd/lpce-bench -models-in loads
// it back.
func (e *Env) ModelSet() *modelio.Set {
	return &modelio.Set{
		LPCEI:    e.LPCEI,
		Refiner:  e.Refiner,
		TLSTM:    e.TLSTM.Model,
		FlowLoss: e.FlowLoss.Model,
		MSCN:     e.MSCN,
	}
}

// CuratedQueries generates queries with the requested join count whose
// true cardinality is computable within the oracle budget, discarding
// pathological candidates (the analogue of the paper's curation of test
// queries by PostgreSQL execution time).
func (e *Env) CuratedQueries(g *workload.Generator, n, joins int) []*query.Query {
	out := make([]*query.Query, 0, n)
	for attempts := 0; len(out) < n && attempts < n*30; attempts++ {
		q := g.Query(joins)
		if _, err := e.Oracle.TryEstimate(q, q.AllTablesMask()); err != nil {
			continue
		}
		out = append(out, q)
	}
	return out
}

func joinLabel(n int) string {
	names := map[int]string{2: "Join-two", 3: "Join-three", 4: "Join-four", 6: "Join-six", 8: "Join-eight"}
	if s, ok := names[n]; ok {
		return s
	}
	return "Join-n"
}
