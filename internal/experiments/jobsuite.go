package experiments

import (
	"fmt"

	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/joblike"
)

// JobSuiteRow is one named query's end-to-end outcome per configuration.
type JobSuiteRow struct {
	Name     string
	Joins    int
	Count    int
	Postgres float64 // seconds
	LPCEI    float64
	LPCER    float64
	Reopts   int
}

// JobSuiteResult runs the fixed joblike benchmark suite (stable named
// queries, unlike the random workloads) under the histogram baseline,
// LPCE-I and LPCE-R. It is the repository's regression benchmark: per-query
// rows are comparable across versions.
type JobSuiteResult struct {
	Rows []JobSuiteRow
}

// JobSuite executes the suite.
func JobSuite(e *Env) (JobSuiteResult, error) {
	queries, err := joblike.Queries(e.DB.Schema)
	if err != nil {
		return JobSuiteResult{}, err
	}
	eng := engine.New(e.DB)
	var res JobSuiteResult
	for _, name := range joblike.Names() {
		q := queries[name]
		row := JobSuiteRow{Name: name, Joins: q.NumJoins()}

		pg, err := eng.Execute(q, engine.Config{Estimator: e.Histogram, Budget: e.P.budget})
		if err != nil {
			return res, fmt.Errorf("joblike %s (postgres): %w", name, err)
		}
		li, err := eng.Execute(q, engine.Config{Estimator: e.LPCEIEstimator(), Budget: e.P.budget})
		if err != nil {
			return res, fmt.Errorf("joblike %s (lpce-i): %w", name, err)
		}
		lr, err := eng.Execute(q, engine.Config{
			Estimator: e.LPCEIEstimator(), Refiner: e.Refiner, Budget: e.P.budget,
		})
		if err != nil {
			return res, fmt.Errorf("joblike %s (lpce-r): %w", name, err)
		}
		row.Count = pg.Count
		row.Postgres = pg.Total().Seconds()
		row.LPCEI = li.Total().Seconds()
		row.LPCER = lr.Total().Seconds()
		row.Reopts = lr.Reopts
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the suite results.
func (r JobSuiteResult) Render() string {
	t := &Table{
		Title:  "JOB-like named suite: per-query end-to-end time (regression benchmark)",
		Header: []string{"Query", "Joins", "COUNT(*)", "PostgreSQL", "LPCE-I", "LPCE-R", "Reopts"},
	}
	var pgT, liT, lrT float64
	for _, row := range r.Rows {
		pgT += row.Postgres
		liT += row.LPCEI
		lrT += row.LPCER
		t.AddRow(row.Name, fmt.Sprint(row.Joins), fmt.Sprint(row.Count),
			FmtDur(row.Postgres), FmtDur(row.LPCEI), FmtDur(row.LPCER), fmt.Sprint(row.Reopts))
	}
	t.AddRow("TOTAL", "", "", FmtDur(pgT), FmtDur(liT), FmtDur(lrT), "")
	return t.String()
}
