package experiments

import (
	"strings"
	"testing"
)

func TestExtReopt(t *testing.T) {
	e := env(t)
	r, err := ExtReopt(e, "test", e.JoinHigh[:3])
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	if r.Rows[0].Reopts != 0 {
		t.Fatal("the no-reopt strategy must not re-optimize")
	}
	for _, row := range r.Rows {
		if row.TotalSec <= 0 {
			t.Fatalf("%s: no time recorded", row.Name)
		}
	}
	out := r.Render()
	for _, frag := range []string{"overlay reopt", "LPCE-R", "cost-aware"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q", frag)
		}
	}
}

func TestExtTriggerSweep(t *testing.T) {
	e := env(t)
	r, err := ExtTriggerSweep(e, "test", e.JoinHigh[:2])
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// lower thresholds must trigger at least as often as higher ones
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Threshold < r.Rows[i-1].Threshold {
			t.Fatal("thresholds not ascending")
		}
	}
	if r.Rows[0].Reopts < r.Rows[len(r.Rows)-1].Reopts {
		t.Fatal("lowest threshold should reopt at least as much as highest")
	}
	_ = r.Render()
}

func TestJobSuite(t *testing.T) {
	e := env(t)
	r, err := JobSuite(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no suite rows")
	}
	for _, row := range r.Rows {
		if row.Postgres <= 0 || row.LPCEI <= 0 || row.LPCER <= 0 {
			t.Fatalf("%s: missing timings", row.Name)
		}
	}
	if !strings.Contains(r.Render(), "TOTAL") {
		t.Fatal("render missing total row")
	}
}
