package experiments

import (
	"fmt"
	"runtime"
	"time"

	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/nn"
)

// TrainBenchResult reports the data-parallel training benchmark: the
// teacher model trained twice on the environment's samples — serially and
// with a worker pool — with the resulting weights compared bit for bit.
// Determinism is asserted, speedup is measured; on boxes with fewer cores
// than workers the speedup degrades gracefully while the weights stay
// identical.
type TrainBenchResult struct {
	Cores            int     `json:"cores"`
	Workers          int     `json:"workers"`
	Samples          int     `json:"samples"`
	SerialSeconds    float64 `json:"serial_seconds"`
	ParallelSeconds  float64 `json:"parallel_seconds"`
	Speedup          float64 `json:"speedup"`
	WeightsIdentical bool    `json:"weights_identical"`
	Weights          int     `json:"weights"`
}

// TrainBench trains the environment's teacher configuration with Workers=1
// and Workers=workers (GOMAXPROCS when <= 0) and compares the trained
// weights bitwise.
func TrainBench(e *Env, workers int) *TrainBenchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &TrainBenchResult{Cores: runtime.NumCPU(), Workers: workers, Samples: len(e.Samples)}

	serialCfg := e.P.teacher
	serialCfg.Workers = 1
	start := time.Now()
	serial := core.TrainTreeModel(serialCfg, e.Enc, e.Samples, e.LogMax, nil)
	res.SerialSeconds = time.Since(start).Seconds()

	parCfg := e.P.teacher
	parCfg.Workers = workers
	start = time.Now()
	parallel := core.TrainTreeModel(parCfg, e.Enc, e.Samples, e.LogMax, nil)
	res.ParallelSeconds = time.Since(start).Seconds()

	if res.ParallelSeconds > 0 {
		res.Speedup = res.SerialSeconds / res.ParallelSeconds
	}
	res.Weights = serial.NumWeights()
	res.WeightsIdentical = identicalWeights(serial.Params.All(), parallel.Params.All())
	return res
}

// identicalWeights compares two parameter lists bit for bit.
func identicalWeights(a, b []*nn.Param) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i].Val) != len(b[i].Val) {
			return false
		}
		for j := range a[i].Val {
			if a[i].Val[j] != b[i].Val[j] {
				return false
			}
		}
	}
	return true
}

// Render formats the benchmark for terminal output.
func (r *TrainBenchResult) Render() string {
	t := &Table{
		Title: fmt.Sprintf("Data-parallel training: teacher model, %d samples, %d cores",
			r.Samples, r.Cores),
		Header: []string{"workers", "wall", "speedup", "weights identical"},
	}
	t.AddRow("1", FmtDur(r.SerialSeconds), "1.00x", "-")
	t.AddRow(fmt.Sprint(r.Workers), FmtDur(r.ParallelSeconds),
		fmt.Sprintf("%.2fx", r.Speedup), fmt.Sprint(r.WeightsIdentical))
	return t.String()
}
