package experiments

import (
	"fmt"
	"time"

	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/nn"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/treenn"
)

// VariantRow is one model variant's latency and accuracy.
type VariantRow struct {
	Name         string
	Weights      int
	InferTimeSec float64 // per single cardinality estimation
	P50          float64
	P95          float64
	MeanQ        float64
}

// Figure1920Result reproduces Figures 19 and 20 together: the inference
// time and accuracy of LPCE-T (LSTM, uncompressed), LPCE-S (SRU,
// uncompressed), LPCE-C (small SRU trained directly) and LPCE-I (small SRU
// distilled), isolating the contributions of the SRU backbone and of
// knowledge distillation.
type Figure1920Result struct {
	Rows []VariantRow
}

// Figure19And20 trains the four variants and measures them on the
// deep-join test set.
func Figure19And20(e *Env) Figure1920Result {
	lstmCfg := e.P.teacher
	lstmCfg.Cell = treenn.CellLSTM
	lpceT := core.TrainTreeModel(lstmCfg, e.Enc, e.Samples, e.LogMax, nil)
	lpceS := e.LPCEI.Teacher // the uncompressed SRU model
	lpceC := core.TrainTreeModel(e.P.student, e.Enc, e.Samples, e.LogMax, nil)
	lpceI := e.LPCEI.Model

	variants := []struct {
		name  string
		model *treenn.TreeModel
	}{
		{"LPCE-T", lpceT},
		{"LPCE-S", lpceS},
		{"LPCE-C", lpceC},
		{"LPCE-I", lpceI},
	}
	var res Figure1920Result
	for _, v := range variants {
		est := &core.TreeEstimator{Label: v.name, Model: v.model, Enc: e.Enc}
		var qs []float64
		var infer time.Duration
		calls := 0
		for _, q := range e.JoinHigh {
			full := q.AllTablesMask()
			truth := e.Oracle.EstimateSubset(q, full)
			start := time.Now()
			got := est.EstimateSubset(q, full)
			infer += time.Since(start)
			calls++
			qs = append(qs, nn.QError(truth, got))
		}
		res.Rows = append(res.Rows, VariantRow{
			Name:         v.name,
			Weights:      v.model.NumWeights(),
			InferTimeSec: infer.Seconds() / float64(calls),
			P50:          Percentile(qs, 50),
			P95:          Percentile(qs, 95),
			MeanQ:        Mean(qs),
		})
	}
	return res
}

// Render formats the variant comparison.
func (r Figure1920Result) Render() string {
	t := &Table{
		Title:  "Figures 19-20: SRU and distillation ablation (inference time and accuracy)",
		Header: []string{"Variant", "Weights", "Inference time", "q-err p50", "q-err p95", "q-err mean"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, fmt.Sprint(row.Weights), FmtDur(row.InferTimeSec),
			FmtF(row.P50), FmtF(row.P95), FmtF(row.MeanQ))
	}
	return t.String()
}

// Figure21Row is one loss function's accuracy on one test set.
type Figure21Row struct {
	Loss  string
	Set   string
	P50   float64
	P75   float64
	P95   float64
	MeanQ float64
}

// Figure21Result reproduces Figure 21: the node-wise loss (LPCE-I) versus
// the query-wise loss (LPCE-Q) at identical architecture.
type Figure21Result struct {
	Rows []Figure21Row
}

// Figure21 trains LPCE-Q (query-wise) and compares it with a node-wise
// model of the same architecture on both test sets.
func Figure21(e *Env) Figure21Result {
	qCfg := e.P.teacher
	qCfg.NodeWise = false
	lpceQ := core.TrainTreeModel(qCfg, e.Enc, e.Samples, e.LogMax, nil)
	lpceN := e.LPCEI.Teacher // node-wise at the same architecture

	sets := []struct {
		name    string
		queries []*query.Query
	}{
		{e.JoinLowLabel, e.JoinLow},
		{e.JoinHighLabel, e.JoinHigh},
	}
	models := []struct {
		name  string
		model *treenn.TreeModel
	}{
		{"LPCE-Q (query-wise)", lpceQ},
		{"LPCE-I (node-wise)", lpceN},
	}
	var res Figure21Result
	for _, set := range sets {
		truths := make([]float64, len(set.queries))
		for i, q := range set.queries {
			truths[i] = e.Oracle.EstimateSubset(q, q.AllTablesMask())
		}
		for _, m := range models {
			est := &core.TreeEstimator{Label: m.name, Model: m.model, Enc: e.Enc}
			var qs []float64
			for i, q := range set.queries {
				qs = append(qs, nn.QError(truths[i], est.EstimateSubset(q, q.AllTablesMask())))
			}
			res.Rows = append(res.Rows, Figure21Row{
				Loss: m.name, Set: set.name,
				P50:   Percentile(qs, 50),
				P75:   Percentile(qs, 75),
				P95:   Percentile(qs, 95),
				MeanQ: Mean(qs),
			})
		}
	}
	return res
}

// Render formats the loss ablation.
func (r Figure21Result) Render() string {
	t := &Table{
		Title:  "Figure 21: node-wise vs query-wise loss",
		Header: []string{"Loss", "Set", "q-err p50", "q-err p75", "q-err p95", "q-err mean"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Loss, row.Set, FmtF(row.P50), FmtF(row.P75), FmtF(row.P95), FmtF(row.MeanQ))
	}
	return t.String()
}

// Figure18Point is the cost/quality trade-off at one training-set size.
type Figure18Point struct {
	Samples     int
	CollectSec  float64
	TrainSec    float64
	E2ELowSec   float64 // aggregate end-to-end time of the Join-low set
	E2EHighSec  float64 // aggregate end-to-end time of the Join-high set
	MeanQJoinHi float64
}

// Figure18Result reproduces Figure 18: sample collection time and model
// training time grow linearly with the training-set size, while end-to-end
// execution time improves with diminishing returns.
type Figure18Result struct {
	Points []Figure18Point
}

// Figure18 sweeps the training-set size.
func Figure18(e *Env) Figure18Result {
	fractions := []float64{0.25, 0.5, 0.75, 1.0}
	var res Figure18Result
	for _, f := range fractions {
		n := int(f * float64(len(e.Samples)))
		if n < 2 {
			continue
		}
		subset := e.Samples[:n]
		// collection cost scales linearly; attribute the measured total
		// proportionally rather than re-executing the collection
		collectSec := e.CollectStats.Duration.Seconds() * f

		trainStart := time.Now()
		cfg := e.P.teacher
		cfg.Seed += int64(n)
		m := core.TrainTreeModel(cfg, e.Enc, subset, e.LogMax, nil)
		trainSec := time.Since(trainStart).Seconds()

		est := &core.TreeEstimator{Label: "lpce-i", Model: m, Enc: e.Enc}
		var qs []float64
		for _, q := range e.JoinHigh {
			truth := e.Oracle.EstimateSubset(q, q.AllTablesMask())
			qs = append(qs, nn.QError(truth, est.EstimateSubset(q, q.AllTablesMask())))
		}
		e2eLow := e.aggregateE2E(est, e.JoinLow)
		e2eHigh := e.aggregateE2E(est, e.JoinHigh)
		res.Points = append(res.Points, Figure18Point{
			Samples:     n,
			CollectSec:  collectSec,
			TrainSec:    trainSec,
			E2ELowSec:   e2eLow,
			E2EHighSec:  e2eHigh,
			MeanQJoinHi: Mean(qs),
		})
	}
	return res
}

// aggregateE2E runs the query set end-to-end with the estimator and
// returns the total time in seconds.
func (e *Env) aggregateE2E(est *core.TreeEstimator, queries []*query.Query) float64 {
	eng := engine.New(e.DB)
	var total float64
	for _, q := range queries {
		r, err := eng.Execute(q, engine.Config{Estimator: est, Budget: e.P.budget})
		if err != nil {
			continue
		}
		total += r.Total().Seconds()
	}
	return total
}

// Render formats the sweep.
func (r Figure18Result) Render() string {
	t := &Table{
		Title:  "Figure 18: training dynamics vs number of training samples",
		Header: []string{"Samples", "Collection", "Training", "E2E (low)", "E2E (high)", "q-err mean (high)"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprint(p.Samples), FmtDur(p.CollectSec), FmtDur(p.TrainSec),
			FmtDur(p.E2ELowSec), FmtDur(p.E2EHighSec), FmtF(p.MeanQJoinHi))
	}
	return t.String()
}
