package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/lpce-db/lpce/internal/exec"
)

// TestObservability runs the observability experiment on the tiny
// environment with a worker pool and checks the report's load-bearing
// content: per-operator stats, a CE-evaluation table per estimator, and
// valid JSON for both the full result and the bench snapshot.
func TestObservability(t *testing.T) {
	e := env(t)
	res, err := Observability(e, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 3 {
		t.Fatalf("want 3 configs, got %d", len(res.Runs))
	}
	for _, run := range res.Runs {
		rep := run.Report
		if rep == nil {
			t.Fatalf("%s: nil report", run.Name)
		}
		if rep.Queries == 0 {
			t.Fatalf("%s: no queries observed", run.Name)
		}
		if len(rep.Operators) == 0 {
			t.Fatalf("%s: no operator stats", run.Name)
		}
		if len(rep.Phases) != 5 {
			t.Fatalf("%s: want 5 phases, got %d", run.Name, len(rep.Phases))
		}
		if len(rep.CE) == 0 {
			t.Fatalf("%s: no CE evaluation", run.Name)
		}
		for _, ce := range rep.CE {
			if ce.Matched == 0 {
				t.Fatalf("%s/%s: no estimates matched a true cardinality", run.Name, ce.Estimator)
			}
		}
		hits := rep.Metrics.Counters["cardest.cache.hits"]
		misses := rep.Metrics.Counters["cardest.cache.misses"]
		if hits+misses == 0 {
			t.Fatalf("%s: estimate cache counters missing from the registry", run.Name)
		}
	}

	out := res.Render()
	for _, frag := range []string{"Observability:", "phase latency", "per-operator runtime stats", "CE evaluation"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}

	if _, err := json.Marshal(res); err != nil {
		t.Fatalf("result not JSON-serializable: %v", err)
	}
	snap := res.Snapshot("tiny", e.Seed)
	if len(snap.Configs) != 3 {
		t.Fatalf("snapshot has %d configs", len(snap.Configs))
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("snapshot not JSON-serializable: %v", err)
	}
	for _, frag := range []string{`"phases"`, `"ce_evaluation"`, `"qps"`} {
		if !strings.Contains(string(raw), frag) {
			t.Fatalf("snapshot JSON missing %s", frag)
		}
	}
}

// TestObservabilityParallelRuns checks that ObsOptions.ExecWorkers adds one
// morsel-parallel run per configuration alongside the serial baseline, with
// identical query counts and no failures — the property the benchdiff
// speedup-sanity gate builds on.
func TestObservabilityParallelRuns(t *testing.T) {
	t.Cleanup(exec.SetMorselSize(64)) // tiny tables must split into many morsels
	t.Cleanup(exec.SetExchangeWorkerCap(64))
	e := env(t)
	res, err := ObservabilityWithOptions(e, ObsOptions{Workers: 2, ExecWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 6 {
		t.Fatalf("want 3 serial + 3 parallel runs, got %d", len(res.Runs))
	}
	byName := make(map[string]ObsRun, len(res.Runs))
	for _, run := range res.Runs {
		byName[run.Name] = run
	}
	for _, name := range []string{"PostgreSQL", "LPCE-I", "LPCE-R"} {
		s, ok := byName[name]
		if !ok {
			t.Fatalf("serial run %q missing", name)
		}
		p, ok := byName[name+"/px2"]
		if !ok {
			t.Fatalf("parallel run %q/px2 missing", name)
		}
		if p.Report.Queries != s.Report.Queries {
			t.Fatalf("%s: parallel ran %d queries, serial %d", name, p.Report.Queries, s.Report.Queries)
		}
		if p.Failed != 0 || p.Degraded != 0 {
			t.Fatalf("%s/px2: %d failed, %d degraded", name, p.Failed, p.Degraded)
		}
		if p.ExecWall <= 0 {
			t.Fatalf("%s/px2: no exec wall recorded", name)
		}
	}
	snap := res.Snapshot("tiny", e.Seed)
	if len(snap.Configs) != 6 {
		t.Fatalf("snapshot has %d configs, want 6", len(snap.Configs))
	}
}
