package experiments

import (
	"fmt"

	"github.com/lpce-db/lpce/internal/nn"
	"github.com/lpce-db/lpce/internal/workload"
)

// Figure1Series is the q-error distribution of one estimator at one join
// count (the box-plot statistics of the paper's Figure 1).
type Figure1Series struct {
	Estimator string
	Joins     int
	P5        float64
	P25       float64
	Median    float64
	P75       float64
	P95       float64
	Mean      float64
}

// Figure1Result reproduces Figure 1: estimation error versus query
// complexity (number of joins) for the learned estimators, showing errors
// amplifying on deeper joins — the observation motivating progressive
// estimation.
type Figure1Result struct {
	Series []Figure1Series
}

// Figure1 runs the experiment. Queries per join count follow the
// environment's test-set size.
func Figure1(e *Env) Figure1Result {
	minJoins, maxJoins := 2, 8
	if e.Scale == ScaleTiny {
		maxJoins = 4
	}
	ests := append(e.QueryDriven(), e.DataDriven()...)
	g := workload.NewGenerator(e.DB, e.Seed+3)

	var res Figure1Result
	for joins := minJoins; joins <= maxJoins; joins += 2 {
		queries := e.CuratedQueries(g, e.P.testQueries, joins)
		truths := make([]float64, len(queries))
		for i, q := range queries {
			truths[i] = e.Oracle.EstimateSubset(q, q.AllTablesMask())
		}
		for _, ne := range ests {
			var qs []float64
			for i, q := range queries {
				est := ne.Est.EstimateSubset(q, q.AllTablesMask())
				qs = append(qs, nn.QError(truths[i], est))
			}
			res.Series = append(res.Series, Figure1Series{
				Estimator: ne.Name,
				Joins:     joins,
				P5:        Percentile(qs, 5),
				P25:       Percentile(qs, 25),
				Median:    Percentile(qs, 50),
				P75:       Percentile(qs, 75),
				P95:       Percentile(qs, 95),
				Mean:      Mean(qs),
			})
		}
	}
	return res
}

// Render formats the distributions as a table (one row per estimator/join
// count, replacing the paper's box plots).
func (r Figure1Result) Render() string {
	t := &Table{
		Title:  "Figure 1: estimation q-error vs number of joins (box-plot stats)",
		Header: []string{"Estimator", "Joins", "p5", "p25", "median", "p75", "p95", "mean"},
	}
	for _, s := range r.Series {
		t.AddRow(s.Estimator, fmt.Sprint(s.Joins),
			FmtF(s.P5), FmtF(s.P25), FmtF(s.Median), FmtF(s.P75), FmtF(s.P95), FmtF(s.Mean))
	}
	return t.String()
}
