package experiments

import (
	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/query"
)

// RunConfig names one end-to-end configuration: an estimator, optionally
// with LPCE-R re-optimization enabled.
type RunConfig struct {
	Name    string
	Cfg     engine.Config
	IsLPCER bool
}

// Configs returns the end-to-end configurations of Table 2/Figure 12:
// PostgreSQL (histogram), the four data-driven substitutes, the three
// query-driven baselines, LPCE-I alone, and LPCE-R (LPCE-I initial +
// re-optimization).
func (e *Env) Configs() []RunConfig {
	budget := e.P.budget
	mk := func(name string, est interface {
		Name() string
		EstimateSubset(*query.Query, query.BitSet) float64
	}) RunConfig {
		return RunConfig{Name: name, Cfg: engine.Config{Estimator: est, Budget: budget}}
	}
	lpcer := RunConfig{
		Name: "LPCE-R",
		Cfg: engine.Config{
			Estimator: e.LPCEIEstimator(),
			Refiner:   e.Refiner,
			Budget:    budget,
		},
		IsLPCER: true,
	}
	return []RunConfig{
		mk("PostgreSQL", e.Histogram),
		mk("DeepDB", e.DeepDB),
		mk("NeuroCard", e.NeuroCard),
		mk("FLAT", e.FLAT),
		mk("UAE", e.UAE),
		mk("MSCN", e.MSCN),
		mk("Flow-Loss", e.FlowLoss),
		mk("TLSTM", e.TLSTM),
		mk("LPCE-I", e.LPCEIEstimator()),
		lpcer,
	}
}

// E2EResults holds the per-query results of one configuration over a query
// set, aligned with the query slice.
type E2EResults struct {
	Name    string
	Results []engine.Result
}

// Totals returns the per-query end-to-end times in seconds.
func (r E2EResults) Totals() []float64 {
	out := make([]float64, len(r.Results))
	for i, res := range r.Results {
		out[i] = res.Total().Seconds()
	}
	return out
}

// RunEndToEnd executes every configuration over the query set. The heavy
// shared computation behind Table 2 and Figures 12–15; callers cache the
// result.
func (e *Env) RunEndToEnd(queries []*query.Query) ([]E2EResults, error) {
	eng := engine.New(e.DB)
	var out []E2EResults
	for _, rc := range e.Configs() {
		res := E2EResults{Name: rc.Name, Results: make([]engine.Result, len(queries))}
		for i, q := range queries {
			r, err := eng.Execute(q, rc.Cfg)
			if err != nil {
				return nil, err
			}
			res.Results[i] = r
		}
		out = append(out, res)
	}
	return out, nil
}

// ReductionPercentiles computes the paper's execution-time-reduction
// metric (Eq. 9) of a configuration versus the PostgreSQL baseline at the
// requested percentiles. Both slices must be aligned with the same query
// set. Higher reduction percentiles correspond to the queries a method
// improves most, so the p-th percentile of the reduction distribution is
// reported directly.
func ReductionPercentiles(postgres, method E2EResults, pcts []float64) []float64 {
	pg := postgres.Totals()
	m := method.Totals()
	reds := make([]float64, len(pg))
	for i := range pg {
		if pg[i] <= 0 {
			reds[i] = 0
			continue
		}
		reds[i] = (pg[i] - m[i]) / pg[i]
	}
	out := make([]float64, len(pcts))
	for i, p := range pcts {
		out[i] = Percentile(reds, p)
	}
	return out
}

// CollectTestSamples executes test queries with the instrumented collector
// so refinement experiments (Figure 16, Table 3) have per-node true
// cardinalities. Plans come from the LPCE-I-optimized engine to match what
// LPCE-R sees at runtime.
func (e *Env) CollectTestSamples(queries []*query.Query) []core.Sample {
	samples, _ := core.CollectSamples(e.DB, e.LPCEIEstimator(), queries, e.P.collectBudget)
	return samples
}
