package experiments

import (
	"fmt"
	"time"

	"github.com/lpce-db/lpce/internal/catalog"
	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/obs"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
)

// StorageBenchResult is the segment-scan microbenchmark recorded in
// BENCH_e2e.json: a clustered synthetic table scanned with selective
// predicates through the raw column path (the RawScan escape hatch) and
// through the segmented path with zone-map pruning, with the result counts
// cross-checked and the pruning counters captured. The skip rate is the
// number benchdiff gates: a change that silently stops pruning (bad zone
// maps, a disabled segment path) shows up here before it shows up as a
// wall-time regression on bigger data.
type StorageBenchResult struct {
	Rows        int `json:"rows"`
	SegmentRows int `json:"segment_rows"`
	Queries     int `json:"queries"`
	// Wall times are best-of-reps over the whole selective query set.
	RawScanSeconds  float64 `json:"raw_scan_seconds"`
	ZoneScanSeconds float64 `json:"zone_scan_seconds"`
	// Speedup is raw/zone time; reported, not gated (microbenchmark walls
	// are noisy across CI machines — the skip rate is the stable signal).
	Speedup float64 `json:"speedup"`
	// Pruning counters from one instrumented pass over the query set.
	SegmentsTotal   int64   `json:"segments_total"`
	SegmentsSkipped int64   `json:"segments_skipped"`
	SkipRate        float64 `json:"skip_rate"`
	BytesDecoded    int64   `json:"bytes_decoded"`
	CountsIdentical bool    `json:"counts_identical"`
	// Seal walls: FinishLoad over a fresh copy of the bench table, serial
	// and (when BuildWorkers > 1) fanned across BuildWorkers workers. The
	// serial/parallel layout parity lives in the load_bench block, which
	// benchdiff gates.
	BuildWorkers        int     `json:"build_workers,omitempty"`
	SealWallSeconds     float64 `json:"seal_wall_seconds"`
	ParallelSealSeconds float64 `json:"parallel_seal_wall_seconds,omitempty"`
}

// storageBenchDB builds the clustered synthetic workload: a table whose id
// column is the row number (frame-of-reference packed), grp is the segment
// number (constant per segment, dictionary encoded), and val is a scaled
// row number — so equality, range, and IN predicates each overlap only a
// few segments and the zone maps can prune the rest.
func storageBenchDB(segs int) (*storage.Database, []*query.Query) {
	db, t, st := storageBenchTable(segs)
	segRows := storage.SegmentRows()
	st.FinishLoad()

	pred := func(col string, op query.Op, operand int64, in ...int64) query.Predicate {
		return query.Predicate{Col: t.Column(col), Op: op, Operand: operand, InSet: in}
	}
	var qs []*query.Query
	add := func(preds ...query.Predicate) {
		qs = append(qs, query.New([]*catalog.Table{t}, nil, preds))
	}
	for g := 0; g < segs; g += segs / 4 {
		add(pred("grp", query.OpEQ, int64(g)))
	}
	add(pred("val", query.OpGE, int64(2*segRows)), pred("val", query.OpLT, int64(4*segRows)))
	add(pred("id", query.OpGE, int64((segs-2)*segRows)))
	add(pred("grp", query.OpIn, 0, 1, int64(segs-1)))
	add(pred("val", query.OpLE, int64(segRows)))
	return db, qs
}

// storageBenchTable builds (without sealing) the clustered bench table at
// the current segment granularity; LoadBench and the seal-wall measurement
// reuse it to time FinishLoad on fresh, identical data.
func storageBenchTable(segs int) (*storage.Database, *catalog.Table, *storage.Table) {
	segRows := storage.SegmentRows()
	n := segs * segRows
	s := catalog.NewSchema()
	t := s.AddTable("bench_store", catalog.PK("id"), catalog.Attr("grp"), catalog.Attr("val"))
	db := storage.NewDatabase(s)
	st := storage.NewTable(t, n)
	id, grp, val := st.ColByName("id"), st.ColByName("grp"), st.ColByName("val")
	for i := 0; i < n; i++ {
		id[i] = int64(i)
		grp[i] = int64(i / segRows)
		val[i] = int64(2 * i)
	}
	db.Tables[t.ID] = st
	return db, t, st
}

// StorageBench measures the segmented scan path against the raw column
// path on the clustered synthetic table, plus the wall time of sealing it
// (serially and, when buildWorkers > 1, with parallel sealing).
// Self-contained: it builds its own database at the production segment
// granularity, so it needs no Env.
func StorageBench(buildWorkers int) (*StorageBenchResult, error) {
	const segs, reps = 32, 5
	db, qs := storageBenchDB(segs)
	res := &StorageBenchResult{
		Rows: segs * storage.SegmentRows(), SegmentRows: storage.SegmentRows(),
		Queries: len(qs), CountsIdentical: true,
	}

	// runAll executes every query once (fresh single-leaf plans — plans
	// carry TrueCard stamps) and returns the wall time and result counts.
	runAll := func(raw bool, reg *obs.Registry) (float64, []int, error) {
		counts := make([]int, len(qs))
		start := time.Now()
		for i, q := range qs {
			pl := plan.NewLeaf(plan.SeqScan, q.Tables[0], 0, q.Preds)
			ctx := &exec.Ctx{DB: db, Q: q, RawScan: raw, Metrics: reg}
			c, err := exec.RunBatch(ctx, pl)
			if err != nil {
				return 0, nil, err
			}
			counts[i] = c
		}
		return time.Since(start).Seconds(), counts, nil
	}

	best := func(raw bool) (float64, []int, error) {
		bestSec := 0.0
		var counts []int
		for r := 0; r < reps; r++ {
			sec, c, err := runAll(raw, nil)
			if err != nil {
				return 0, nil, err
			}
			if bestSec == 0 || sec < bestSec {
				bestSec = sec
			}
			counts = c
		}
		return bestSec, counts, nil
	}

	rawSec, rawCounts, err := best(true)
	if err != nil {
		return nil, fmt.Errorf("storage bench raw path: %w", err)
	}
	zoneSec, zoneCounts, err := best(false)
	if err != nil {
		return nil, fmt.Errorf("storage bench zone path: %w", err)
	}
	for i := range rawCounts {
		if rawCounts[i] != zoneCounts[i] {
			res.CountsIdentical = false
		}
	}
	res.RawScanSeconds = rawSec
	res.ZoneScanSeconds = zoneSec
	if zoneSec > 0 {
		res.Speedup = rawSec / zoneSec
	}

	// One instrumented pass for the pruning counters (kept out of the timed
	// reps so the registry's atomics don't color the walls, and so the
	// counters reflect exactly one execution of each query).
	reg := obs.NewRegistry()
	if _, _, err := runAll(false, reg); err != nil {
		return nil, fmt.Errorf("storage bench metrics pass: %w", err)
	}
	res.SegmentsTotal = reg.Counter("storage.segments_total").Value()
	res.SegmentsSkipped = reg.Counter("storage.segments_skipped").Value()
	res.BytesDecoded = reg.Counter("storage.bytes_decoded").Value()
	if res.SegmentsTotal > 0 {
		res.SkipRate = float64(res.SegmentsSkipped) / float64(res.SegmentsTotal)
	}

	// Seal walls: each rep rebuilds the table data untimed (sealing mutates
	// the table) and times FinishLoad alone.
	sealBest := func(workers int) float64 {
		defer storage.SetBuildWorkers(workers)()
		best := 0.0
		for r := 0; r < reps; r++ {
			_, _, st := storageBenchTable(segs)
			start := time.Now()
			st.FinishLoad()
			sec := time.Since(start).Seconds()
			if best == 0 || sec < best {
				best = sec
			}
		}
		return best
	}
	res.SealWallSeconds = sealBest(1)
	if buildWorkers > 1 {
		res.BuildWorkers = buildWorkers
		res.ParallelSealSeconds = sealBest(buildWorkers)
	}
	return res, nil
}

// Render formats the benchmark for terminal output.
func (r *StorageBenchResult) Render() string {
	t := &Table{
		Title: fmt.Sprintf("Storage: raw vs zone-map segment scan (%d rows, %d/segment, counts identical: %v)",
			r.Rows, r.SegmentRows, r.CountsIdentical),
		Header: []string{"metric", "value"},
	}
	t.AddRow("selective queries", fmt.Sprint(r.Queries))
	t.AddRow("raw scan wall", FmtDur(r.RawScanSeconds))
	t.AddRow("zone scan wall", FmtDur(r.ZoneScanSeconds))
	t.AddRow("speedup", fmt.Sprintf("%.2fx", r.Speedup))
	t.AddRow("segments scanned", fmt.Sprint(r.SegmentsTotal))
	t.AddRow("segments skipped", fmt.Sprintf("%d (%.1f%%)", r.SegmentsSkipped, r.SkipRate*100))
	t.AddRow("bytes decoded", fmt.Sprint(r.BytesDecoded))
	t.AddRow("seal wall (serial)", FmtDur(r.SealWallSeconds))
	if r.BuildWorkers > 1 {
		t.AddRow(fmt.Sprintf("seal wall (%d workers)", r.BuildWorkers), FmtDur(r.ParallelSealSeconds))
	}
	return t.String()
}
