package experiments

import (
	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/datadriven"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/storage"
)

// datadriven constructs the sampling-based substitutes for the data-driven
// baselines (see the datadriven package's doc comment for the substitution
// rationale).
func datadrivenFor(db *storage.Database, kind string, p params, seed int64) cardest.Estimator {
	switch kind {
	case "neurocard":
		return datadriven.NewJoinSample(db, p.walksNeuroCard, seed+11)
	case "deepdb":
		return datadriven.NewTableHist(db, seed+12)
	case "flat":
		return datadriven.NewFactorHist(db, p.walksFlat, seed+13)
	default:
		panic("experiments: unknown data-driven kind " + kind)
	}
}

func newUAE(db *storage.Database, p params, seed int64) *datadriven.CalibratedSample {
	return datadriven.NewCalibratedSample(db, p.walksUAE, seed+14)
}

// calibrateUAE feeds the hybrid estimator supervised feedback from the
// training plans (UAE's "learning from queries" half): every plan node is
// a (subset, true cardinality) example.
func calibrateUAE(uae *datadriven.CalibratedSample, samples []core.Sample) {
	var examples []datadriven.CalibrationExample
	// A bounded subsample keeps calibration cheap; the per-join-count
	// medians converge quickly.
	for i, s := range samples {
		if i >= 60 {
			break
		}
		s.Plan.Walk(func(n *plan.Node) {
			if n.TrueCard >= 0 && n.Tables.Count() >= 2 {
				examples = append(examples, datadriven.CalibrationExample{
					Query: s.Query, Mask: n.Tables, TrueCard: n.TrueCard,
				})
			}
		})
	}
	uae.Calibrate(examples)
}
