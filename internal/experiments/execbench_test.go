package experiments

import (
	"strings"
	"testing"

	"github.com/lpce-db/lpce/internal/exec"
)

// TestExecBenchParallel runs the executor benchmark with the morsel-parallel
// pass enabled: every path must agree on result counts, the parallel fields
// must be populated, and the render must surface the extra table. The worker
// clamp is lifted so the parallel path really runs even on one core.
func TestExecBenchParallel(t *testing.T) {
	t.Cleanup(exec.SetExchangeWorkerCap(64))
	e := env(t)
	r, err := ExecBench(e, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.CountsIdentical {
		t.Fatal("executor paths disagree on result counts")
	}
	if r.ExecWorkers != 2 {
		t.Fatalf("ExecWorkers = %d, want 2", r.ExecWorkers)
	}
	if r.ParallelProbeSeconds <= 0 || r.SuiteParallelSeconds <= 0 {
		t.Fatalf("parallel measurements missing: probe %v, suite %v",
			r.ParallelProbeSeconds, r.SuiteParallelSeconds)
	}
	if r.ParallelSpeedup <= 0 || r.SuiteParallelSpeedup <= 0 {
		t.Fatalf("parallel speedups missing: probe %v, suite %v",
			r.ParallelSpeedup, r.SuiteParallelSpeedup)
	}
	if !strings.Contains(r.Render(), "morsel-parallel") {
		t.Fatal("render missing the morsel-parallel table")
	}
}

// TestExecBenchSerialOnly pins the workers<=1 behaviour: no parallel fields,
// so existing snapshots and the benchdiff parallel checks stay inert.
func TestExecBenchSerialOnly(t *testing.T) {
	e := env(t)
	r, err := ExecBench(e, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.CountsIdentical {
		t.Fatal("executor paths disagree on result counts")
	}
	if r.ExecWorkers != 0 || r.ParallelProbeSeconds != 0 || r.SuiteParallelSeconds != 0 {
		t.Fatalf("serial-only run populated parallel fields: %+v", r)
	}
}
