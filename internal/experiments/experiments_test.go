package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"
)

var (
	envOnce sync.Once
	tinyEnv *Env
)

func env(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() { tinyEnv = Setup(ScaleTiny, 7) })
	return tinyEnv
}

func TestSetupEnvironment(t *testing.T) {
	e := env(t)
	if len(e.Samples) < 20 {
		t.Fatalf("only %d training samples", len(e.Samples))
	}
	if e.LPCEI == nil || e.Refiner == nil || e.TLSTM == nil || e.FlowLoss == nil || e.MSCN == nil {
		t.Fatal("missing trained models")
	}
	if len(e.JoinLow) == 0 || len(e.JoinHigh) == 0 || len(e.JoinTiny) == 0 {
		t.Fatal("missing test sets")
	}
	if e.LogMax <= 0 {
		t.Fatal("LogMax not set")
	}
	if e.TrainTime <= 0 || e.CollectStats.Duration <= 0 {
		t.Fatal("timings not recorded")
	}
}

func TestPercentileAndMean(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	if Percentile(vals, 0) != 1 || Percentile(vals, 100) != 5 {
		t.Fatal("extremes wrong")
	}
	if got := Percentile(vals, 50); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := Percentile(vals, 25); got != 2 {
		t.Fatalf("p25 = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
	if Mean(vals) != 3 {
		t.Fatal("mean wrong")
	}
	if math.Abs(GeoMean([]float64{1, 100})-10) > 1e-9 {
		t.Fatal("geomean wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bb"}}
	tab.AddRow("x", "y")
	s := tab.String()
	for _, frag := range []string{"T\n", "a", "bb", "x", "y", "--"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("rendering missing %q:\n%s", frag, s)
		}
	}
}

func TestFormatters(t *testing.T) {
	if FmtF(math.NaN()) != "-" || FmtPct(math.NaN()) != "-" || FmtDur(math.NaN()) != "-" {
		t.Fatal("NaN formatting")
	}
	if FmtDur(0.5e-3) != "500µs" {
		t.Fatalf("FmtDur = %s", FmtDur(0.5e-3))
	}
	if FmtDur(0.25) != "250.0ms" {
		t.Fatalf("FmtDur = %s", FmtDur(0.25))
	}
	if FmtDur(2.5) != "2.50s" {
		t.Fatalf("FmtDur = %s", FmtDur(2.5))
	}
	if FmtPct(0.5) != "50.0%" {
		t.Fatalf("FmtPct = %s", FmtPct(0.5))
	}
}

func TestParseScale(t *testing.T) {
	if ParseScale("small") != ScaleSmall || ParseScale("full") != ScaleFull || ParseScale("x") != ScaleTiny {
		t.Fatal("ParseScale")
	}
	if ScaleSmall.String() != "small" || ScaleFull.String() != "full" || ScaleTiny.String() != "tiny" {
		t.Fatal("Scale.String")
	}
}

func TestTable1Shape(t *testing.T) {
	e := env(t)
	r := Table1(e)
	if len(r.Rows) != 8 {
		t.Fatalf("Table 1 has %d rows, want 8", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.MeanQError < 1 || math.IsNaN(row.MeanQError) {
			t.Fatalf("%s: invalid q-error %v", row.Name, row.MeanQError)
		}
		if row.InferTimeSec <= 0 {
			t.Fatalf("%s: no inference time", row.Name)
		}
	}
	if !strings.Contains(r.Render(), "LPCE-I") {
		t.Fatal("render missing LPCE-I")
	}
	// the central trade-off: data-access estimators must cost more per
	// estimate than the cheapest query-driven model. (At Tiny scale the
	// sampling walk counts are shrunk, so we assert against MSCN; the
	// LPCE-I ordering is checked in the Small/Full-scale runs recorded in
	// EXPERIMENTS.md.)
	var mscn, slowest float64
	for _, row := range r.Rows {
		if row.Name == "MSCN" {
			mscn = row.InferTimeSec
		}
		if row.DataAccess && row.InferTimeSec > slowest {
			slowest = row.InferTimeSec
		}
	}
	if slowest <= mscn {
		t.Fatalf("data-driven estimators (max %v) should be slower than MSCN (%v)", slowest, mscn)
	}
}

func TestFigure1Shape(t *testing.T) {
	e := env(t)
	r := Figure1(e)
	if len(r.Series) == 0 {
		t.Fatal("no series")
	}
	for _, s := range r.Series {
		if s.P5 > s.Median || s.Median > s.P95 {
			t.Fatalf("%s joins=%d: percentiles not ordered", s.Estimator, s.Joins)
		}
	}
	if !strings.Contains(r.Render(), "Joins") {
		t.Fatal("render broken")
	}
}

func TestEndToEndSuiteAndDerivedFigures(t *testing.T) {
	e := env(t)
	suite, err := e.RunSuite(e.JoinHighLabel, e.JoinHigh[:3])
	if err != nil {
		t.Fatal(err)
	}
	if suite.Runs[0].Name != "PostgreSQL" {
		t.Fatal("first run must be the PostgreSQL baseline")
	}
	if len(suite.Runs) != 10 {
		t.Fatalf("runs = %d, want 10", len(suite.Runs))
	}
	// all configurations must compute identical counts per query
	for i := range suite.Queries {
		base := suite.Runs[0].Results[i]
		if base.TimedOut {
			continue
		}
		for _, run := range suite.Runs[1:] {
			r := run.Results[i]
			if r.TimedOut {
				continue
			}
			if r.Count != base.Count {
				t.Fatalf("%s query %d: count %d != postgres %d", run.Name, i, r.Count, base.Count)
			}
		}
	}

	t2 := Table2(suite)
	if len(t2.Rows) != 9 {
		t.Fatalf("Table 2 rows = %d", len(t2.Rows))
	}
	if !strings.Contains(t2.Render(), "LPCE-R") {
		t.Fatal("Table 2 render")
	}
	f11 := Figure11(suite)
	if len(f11.Totals) != 3 {
		t.Fatal("Figure 11 totals")
	}
	_ = f11.Render()
	f12 := Figure12(suite)
	if len(f12.Rows) != 10 {
		t.Fatal("Figure 12 rows")
	}
	for _, row := range f12.Rows {
		if row.ExecSec < 0 || row.InferSec < 0 {
			t.Fatal("negative decomposition")
		}
	}
	_ = f12.Render()
	f13 := Figure13(suite)
	if len(f13.Series) != 9 {
		t.Fatal("Figure 13 series")
	}
	_ = f13.Render()
	f14 := Figure14(suite)
	_ = f14.Render()
	f15 := Figure15(suite)
	if len(f15.Rows) != 10 {
		t.Fatal("Figure 15 rows")
	}
	_ = f15.Render()
}

func TestRefinementExperiments(t *testing.T) {
	e := env(t)
	samples := e.CollectTestSamples(e.JoinHigh[:4])
	if len(samples) == 0 {
		t.Fatal("no test samples")
	}
	f16 := Figure16(e, "test", samples)
	if len(f16.Points) == 0 {
		t.Fatal("Figure 16 empty")
	}
	for _, p := range f16.Points {
		if p.MeanQError < 1 || math.IsNaN(p.MeanQError) {
			t.Fatalf("invalid q-error at k=%d", p.ExecutedOps)
		}
	}
	_ = f16.Render()

	t3 := Table3(e, samples)
	variants := map[string]bool{}
	for _, row := range t3.Rows {
		variants[row.Variant] = true
		if row.P50 > row.P95 {
			t.Fatal("Table 3 percentiles not ordered")
		}
	}
	for _, v := range []string{"LPCE-R", "LPCE-R-Single", "LPCE-R-Two"} {
		if !variants[v] {
			t.Fatalf("Table 3 missing variant %s", v)
		}
	}
	_ = t3.Render()
}

func TestModelAblations(t *testing.T) {
	e := env(t)
	f1920 := Figure19And20(e)
	if len(f1920.Rows) != 4 {
		t.Fatalf("Figure 19/20 rows = %d", len(f1920.Rows))
	}
	byName := map[string]VariantRow{}
	for _, row := range f1920.Rows {
		byName[row.Name] = row
		if row.InferTimeSec <= 0 || row.Weights == 0 {
			t.Fatalf("%s: missing measurements", row.Name)
		}
	}
	// structural claims: SRU is smaller than LSTM at equal width; the
	// distilled student is much smaller than the teacher
	if byName["LPCE-S"].Weights >= byName["LPCE-T"].Weights {
		t.Fatal("SRU model should have fewer weights than LSTM")
	}
	// at Tiny scale the input-layer weights dominate so compression is
	// modest; Small/Full scales reach the paper's >10x
	if byName["LPCE-I"].Weights*2 > byName["LPCE-S"].Weights {
		t.Fatal("distilled model should be >=2x smaller")
	}
	_ = f1920.Render()

	f21 := Figure21(e)
	if len(f21.Rows) != 4 {
		t.Fatalf("Figure 21 rows = %d", len(f21.Rows))
	}
	_ = f21.Render()
}

func TestFigure17FindsExample(t *testing.T) {
	e := env(t)
	r := Figure17(e)
	out := r.Render()
	if r.Found {
		for _, frag := range []string{"query:", "initial plan", "final plan"} {
			if !strings.Contains(out, frag) {
				t.Fatalf("render missing %q", frag)
			}
		}
	} else if !strings.Contains(out, "no query triggered") {
		t.Fatal("not-found render broken")
	}
}

func TestFigure18Sweep(t *testing.T) {
	e := env(t)
	r := Figure18(e)
	if len(r.Points) < 2 {
		t.Fatalf("Figure 18 points = %d", len(r.Points))
	}
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Samples <= r.Points[i-1].Samples {
			t.Fatal("sample counts not increasing")
		}
		if r.Points[i].CollectSec < r.Points[i-1].CollectSec {
			t.Fatal("collection time should grow with samples")
		}
	}
	_ = r.Render()
}
