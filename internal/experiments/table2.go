package experiments

import (
	"fmt"

	"github.com/lpce-db/lpce/internal/query"
)

// E2ESuite bundles the end-to-end runs over one query set; Table 2 and
// Figures 11–14 all derive from it, so it is computed once per set.
type E2ESuite struct {
	Label   string
	Queries []*query.Query
	Runs    []E2EResults // Runs[0] is PostgreSQL
}

// RunSuite executes the full configuration matrix over a query set.
func (e *Env) RunSuite(label string, queries []*query.Query) (*E2ESuite, error) {
	runs, err := e.RunEndToEnd(queries)
	if err != nil {
		return nil, err
	}
	return &E2ESuite{Label: label, Queries: queries, Runs: runs}, nil
}

// Postgres returns the baseline run.
func (s *E2ESuite) Postgres() E2EResults { return s.Runs[0] }

// Table2Row is one estimator's reduction percentiles.
type Table2Row struct {
	Name string
	Pcts []float64 // aligned with Table2Percentiles
}

// Table2Percentiles are the percentiles the paper reports.
var Table2Percentiles = []float64{5, 25, 50, 75, 95}

// Table2Result reproduces Table 2: percentiles of end-to-end execution
// time reduction relative to PostgreSQL.
type Table2Result struct {
	Label string
	Rows  []Table2Row
}

// Table2 derives the reduction table from a suite.
func Table2(s *E2ESuite) Table2Result {
	res := Table2Result{Label: s.Label}
	for _, run := range s.Runs[1:] {
		res.Rows = append(res.Rows, Table2Row{
			Name: run.Name,
			Pcts: ReductionPercentiles(s.Postgres(), run, Table2Percentiles),
		})
	}
	return res
}

// Render formats the reduction table.
func (r Table2Result) Render() string {
	t := &Table{
		Title:  fmt.Sprintf("Table 2 (%s): end-to-end time reduction vs PostgreSQL", r.Label),
		Header: []string{"Estimator", "5th", "25th", "50th", "75th", "95th"},
	}
	for _, row := range r.Rows {
		cells := []string{row.Name}
		for _, v := range row.Pcts {
			cells = append(cells, FmtPct(v))
		}
		t.AddRow(cells...)
	}
	return t.String()
}

// Figure11Result reproduces Figure 11: the spread of PostgreSQL execution
// times over the test queries (the paper selects queries spanning 1s to
// 1,500s; ours span the corresponding range at simulator scale).
type Figure11Result struct {
	Label  string
	Totals []float64 // seconds, one per query
}

// Figure11 derives the distribution from a suite.
func Figure11(s *E2ESuite) Figure11Result {
	return Figure11Result{Label: s.Label, Totals: s.Postgres().Totals()}
}

// Render prints distribution statistics.
func (r Figure11Result) Render() string {
	t := &Table{
		Title:  fmt.Sprintf("Figure 11 (%s): PostgreSQL end-to-end time distribution", r.Label),
		Header: []string{"min", "p25", "median", "p75", "max", "mean"},
	}
	t.AddRow(
		FmtDur(Percentile(r.Totals, 0)),
		FmtDur(Percentile(r.Totals, 25)),
		FmtDur(Percentile(r.Totals, 50)),
		FmtDur(Percentile(r.Totals, 75)),
		FmtDur(Percentile(r.Totals, 100)),
		FmtDur(Mean(r.Totals)),
	)
	return t.String()
}

// Figure12Row decomposes one configuration's aggregate end-to-end time.
type Figure12Row struct {
	Name      string
	ExecSec   float64
	PlanSec   float64
	InferSec  float64
	ReoptSec  float64
	TimeoutQs int
}

// Figure12Result reproduces Figure 12: the decomposition of aggregate
// end-to-end time into query execution, plan search, initial inference and
// re-optimization.
type Figure12Result struct {
	Label string
	Rows  []Figure12Row
}

// Figure12 derives the decomposition from a suite.
func Figure12(s *E2ESuite) Figure12Result {
	res := Figure12Result{Label: s.Label}
	for _, run := range s.Runs {
		var row Figure12Row
		row.Name = run.Name
		for _, r := range run.Results {
			row.ExecSec += r.ExecTime.Seconds()
			row.PlanSec += r.PlanTime.Seconds()
			row.InferSec += r.InferTime.Seconds()
			row.ReoptSec += r.ReoptTime.Seconds()
			if r.TimedOut {
				row.TimeoutQs++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render formats the decomposition.
func (r Figure12Result) Render() string {
	t := &Table{
		Title:  fmt.Sprintf("Figure 12 (%s): end-to-end time decomposition (aggregate)", r.Label),
		Header: []string{"Estimator", "Query execution", "Plan search", "Initial inference", "Reoptimization", "Total", "Timeouts"},
	}
	for _, row := range r.Rows {
		total := row.ExecSec + row.PlanSec + row.InferSec + row.ReoptSec
		t.AddRow(row.Name, FmtDur(row.ExecSec), FmtDur(row.PlanSec), FmtDur(row.InferSec),
			FmtDur(row.ReoptSec), FmtDur(total), fmt.Sprint(row.TimeoutQs))
	}
	return t.String()
}

// Figure13Point is one query in the scatter plot: PostgreSQL end-to-end
// time versus an estimator's end-to-end time.
type Figure13Point struct {
	Postgres float64
	Method   float64
}

// Figure13Result reproduces Figure 13: per-query scatter series for every
// learning-based configuration against PostgreSQL.
type Figure13Result struct {
	Label  string
	Series map[string][]Figure13Point
}

// Figure13 derives the scatter series from a suite.
func Figure13(s *E2ESuite) Figure13Result {
	res := Figure13Result{Label: s.Label, Series: make(map[string][]Figure13Point)}
	pg := s.Postgres().Totals()
	for _, run := range s.Runs[1:] {
		m := run.Totals()
		pts := make([]Figure13Point, len(pg))
		for i := range pg {
			pts[i] = Figure13Point{Postgres: pg[i], Method: m[i]}
		}
		res.Series[run.Name] = pts
	}
	return res
}

// Render summarizes each scatter series (fractions below the diagonal and
// the speedup distribution) since terminals cannot draw the plot; the raw
// points are in Series for downstream plotting.
func (r Figure13Result) Render() string {
	t := &Table{
		Title:  fmt.Sprintf("Figure 13 (%s): per-query end-to-end vs PostgreSQL (scatter summary)", r.Label),
		Header: []string{"Estimator", "faster than PG", "median speedup", "p95 speedup", "worst slowdown"},
	}
	for _, run := range orderedSeries(r.Series) {
		pts := r.Series[run]
		var speedups []float64
		faster := 0
		worst := 1.0
		for _, p := range pts {
			if p.Method <= 0 || p.Postgres <= 0 {
				continue
			}
			sp := p.Postgres / p.Method
			speedups = append(speedups, sp)
			if sp >= 1 {
				faster++
			} else if sp < worst {
				worst = sp
			}
		}
		t.AddRow(run,
			fmt.Sprintf("%d/%d", faster, len(pts)),
			FmtF(Percentile(speedups, 50))+"x",
			FmtF(Percentile(speedups, 95))+"x",
			FmtF(worst)+"x")
	}
	return t.String()
}

func orderedSeries(m map[string][]Figure13Point) []string {
	order := []string{"DeepDB", "NeuroCard", "FLAT", "UAE", "MSCN", "Flow-Loss", "TLSTM", "LPCE-I", "LPCE-R"}
	var out []string
	for _, n := range order {
		if _, ok := m[n]; ok {
			out = append(out, n)
		}
	}
	return out
}

// Figure14Result reproduces Figure 14: for the queries that triggered
// re-optimization under LPCE-R, the aggregate time decomposition of LPCE-I
// (no re-optimization) versus LPCE-R.
type Figure14Result struct {
	Label          string
	TriggeredCount int
	LPCEI          Figure12Row
	LPCER          Figure12Row
	SpeedupFactor  float64 // LPCE-I total / LPCE-R total over the subset
}

// Figure14 derives the comparison from a suite.
func Figure14(s *E2ESuite) Figure14Result {
	res := Figure14Result{Label: s.Label}
	var lpcei, lpcer *E2EResults
	for i := range s.Runs {
		switch s.Runs[i].Name {
		case "LPCE-I":
			lpcei = &s.Runs[i]
		case "LPCE-R":
			lpcer = &s.Runs[i]
		}
	}
	if lpcei == nil || lpcer == nil {
		return res
	}
	var totalI, totalR float64
	for i := range lpcer.Results {
		if lpcer.Results[i].Reopts == 0 {
			continue
		}
		res.TriggeredCount++
		ri, rr := lpcei.Results[i], lpcer.Results[i]
		res.LPCEI.ExecSec += ri.ExecTime.Seconds()
		res.LPCEI.PlanSec += ri.PlanTime.Seconds()
		res.LPCEI.InferSec += ri.InferTime.Seconds()
		res.LPCER.ExecSec += rr.ExecTime.Seconds()
		res.LPCER.PlanSec += rr.PlanTime.Seconds()
		res.LPCER.InferSec += rr.InferTime.Seconds()
		res.LPCER.ReoptSec += rr.ReoptTime.Seconds()
		totalI += ri.Total().Seconds()
		totalR += rr.Total().Seconds()
	}
	res.LPCEI.Name = "LPCE-I"
	res.LPCER.Name = "LPCE-R"
	if totalR > 0 {
		res.SpeedupFactor = totalI / totalR
	}
	return res
}

// Render formats the comparison.
func (r Figure14Result) Render() string {
	t := &Table{
		Title: fmt.Sprintf("Figure 14 (%s): time decomposition for the %d re-optimized queries (speedup %.2fx)",
			r.Label, r.TriggeredCount, r.SpeedupFactor),
		Header: []string{"Config", "Query execution", "Plan search", "Model inference", "Reoptimization"},
	}
	for _, row := range []Figure12Row{r.LPCEI, r.LPCER} {
		t.AddRow(row.Name, FmtDur(row.ExecSec), FmtDur(row.PlanSec), FmtDur(row.InferSec), FmtDur(row.ReoptSec))
	}
	return t.String()
}

// Figure15Result reproduces Figure 15: aggregate end-to-end time on
// shallow (Join-three) queries, where data-driven estimators' accuracy
// outweighs their inference cost and they can beat LPCE.
type Figure15Result struct {
	Label string
	Rows  []Figure12Row
}

// Figure15 is Figure 12's decomposition applied to the shallow set.
func Figure15(s *E2ESuite) Figure15Result {
	d := Figure12(s)
	return Figure15Result{Label: s.Label, Rows: d.Rows}
}

// Render formats the aggregate totals.
func (r Figure15Result) Render() string {
	t := &Table{
		Title:  fmt.Sprintf("Figure 15 (%s): aggregate end-to-end time on shallow joins", r.Label),
		Header: []string{"Estimator", "Total", "Execution", "Inference"},
	}
	for _, row := range r.Rows {
		total := row.ExecSec + row.PlanSec + row.InferSec + row.ReoptSec
		t.AddRow(row.Name, FmtDur(total), FmtDur(row.ExecSec), FmtDur(row.InferSec))
	}
	return t.String()
}
