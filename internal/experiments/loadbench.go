package experiments

import (
	"fmt"
	"time"

	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/storage"
)

// LoadBenchResult is the build-side benchmark recorded in BENCH_e2e.json:
// the two parallel build paths — the partitioned hash-join build
// (exec.buildVecTable) and parallel segment sealing (storage FinishLoad) —
// measured against their serial oracles, with bitwise layout parity checked
// on both. benchdiff gates on this block: a missing block, a >25% build-wall
// regression, or any layout divergence fails CI. Speedups track available
// cores (a single-core host honestly reports ~1.0x because the worker
// clamps bind); the parity booleans are the machine-independent signal.
type LoadBenchResult struct {
	// BuildWorkers is the requested parallelism for both parallel passes
	// (clamped to the host's cores by the exchange/seal worker caps).
	BuildWorkers int `json:"build_workers"`

	// Hash-join build: buildVecTable over BuildRows synthetic rows.
	BuildRows            int     `json:"build_rows"`
	BuildSerialSeconds   float64 `json:"build_serial_seconds"`
	BuildParallelSeconds float64 `json:"build_parallel_seconds"`
	BuildSpeedup         float64 `json:"build_speedup"`
	BuildLayoutIdentical bool    `json:"build_layout_identical"`

	// Segment sealing: FinishLoad over the clustered storage-bench table.
	SealRows            int     `json:"seal_rows"`
	SealCols            int     `json:"seal_cols"`
	SegmentRows         int     `json:"segment_rows"`
	SealSerialSeconds   float64 `json:"seal_serial_seconds"`
	SealParallelSeconds float64 `json:"seal_parallel_seconds"`
	SealSpeedup         float64 `json:"seal_speedup"`
	SealLayoutIdentical bool    `json:"seal_layout_identical"`
}

// LoadBench measures both parallel build paths against their serial
// oracles. Self-contained: it fabricates its own build rows and bench
// table, so it needs no Env.
func LoadBench(buildWorkers int) *LoadBenchResult {
	const buildRows, keySpace, segs, reps = 1 << 16, 1 << 12, 32, 5
	if buildWorkers < 1 {
		buildWorkers = 1
	}
	res := &LoadBenchResult{BuildWorkers: buildWorkers, BuildRows: buildRows}

	serial, par, same := exec.HashBuildBench(buildRows, keySpace, buildWorkers, reps)
	res.BuildSerialSeconds, res.BuildParallelSeconds = serial, par
	res.BuildLayoutIdentical = same
	if par > 0 {
		res.BuildSpeedup = serial / par
	}

	// Seal walls time FinishLoad only: the table data is rebuilt untimed for
	// each rep (sealing mutates the table, so each rep needs a fresh one).
	seal := func(workers int) (float64, *storage.Table) {
		defer storage.SetBuildWorkers(workers)()
		best := 0.0
		var last *storage.Table
		for r := 0; r < reps; r++ {
			_, _, st := storageBenchTable(segs)
			start := time.Now()
			st.FinishLoad()
			sec := time.Since(start).Seconds()
			if best == 0 || sec < best {
				best = sec
			}
			last = st
		}
		return best, last
	}
	serialSec, st := seal(1)
	parSec, pt := seal(buildWorkers)
	res.SealRows, res.SealCols, res.SegmentRows = st.NumRows(), len(st.Cols), st.SegRows()
	res.SealSerialSeconds, res.SealParallelSeconds = serialSec, parSec
	if parSec > 0 {
		res.SealSpeedup = serialSec / parSec
	}
	res.SealLayoutIdentical = sealedTablesEqual(st, pt)
	return res
}

// sealedTablesEqual compares two independently sealed copies of the same
// data: catalog statistics, segment geometry, per-segment encoding choice
// and packed width, zone maps, and every decoded value. Encodings are pure
// functions of (values, width), so matching all of the above pins the
// packed words bit for bit.
func sealedTablesEqual(a, b *storage.Table) bool {
	if a.NumRows() != b.NumRows() || len(a.Cols) != len(b.Cols) || a.SegRows() != b.SegRows() {
		return false
	}
	for c := range a.Cols {
		am, bm := a.Meta.Columns[c], b.Meta.Columns[c]
		if am.Min != bm.Min || am.Max != bm.Max || am.NDV != bm.NDV {
			return false
		}
		as, bs := a.Segments(c), b.Segments(c)
		if len(as) != len(bs) {
			return false
		}
		for g := range as {
			x, y := as[g], bs[g]
			if x.Rows() != y.Rows() || x.Encoding() != y.Encoding() ||
				x.EncodedBits() != y.EncodedBits() || x.Min != y.Min || x.Max != y.Max {
				return false
			}
			for i := 0; i < x.Rows(); i++ {
				if x.Get(i) != y.Get(i) {
					return false
				}
			}
		}
	}
	return true
}

// Render formats the benchmark for terminal output.
func (r *LoadBenchResult) Render() string {
	t := &Table{
		Title: fmt.Sprintf("Build side: serial vs %d workers (layouts identical: build %v, seal %v)",
			r.BuildWorkers, r.BuildLayoutIdentical, r.SealLayoutIdentical),
		Header: []string{"phase", "serial", "parallel", "speedup"},
	}
	t.AddRow(fmt.Sprintf("hash-join build (%d rows)", r.BuildRows),
		FmtDur(r.BuildSerialSeconds), FmtDur(r.BuildParallelSeconds),
		fmt.Sprintf("%.2fx", r.BuildSpeedup))
	t.AddRow(fmt.Sprintf("segment seal (%d rows x %d cols, %d/seg)", r.SealRows, r.SealCols, r.SegmentRows),
		FmtDur(r.SealSerialSeconds), FmtDur(r.SealParallelSeconds),
		fmt.Sprintf("%.2fx", r.SealSpeedup))
	return t.String()
}
