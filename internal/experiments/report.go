package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Percentile returns the p-th percentile (0–100) of the values using
// nearest-rank interpolation; NaN for empty input.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Mean returns the arithmetic mean; NaN for empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range values {
		if v < 1e-12 {
			v = 1e-12
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(values)))
}

// Table renders rows of cells with aligned columns for terminal output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// FmtF formats a float compactly for table cells.
func FmtF(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// FmtPct formats a reduction fraction as a signed percentage.
func FmtPct(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", v*100)
}

// FmtDur formats seconds compactly.
func FmtDur(sec float64) string {
	switch {
	case math.IsNaN(sec):
		return "-"
	case sec < 1e-3:
		return fmt.Sprintf("%.0fµs", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.1fms", sec*1e3)
	default:
		return fmt.Sprintf("%.2fs", sec)
	}
}
