package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/joblike"
	"github.com/lpce-db/lpce/internal/obs"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/workload"
)

// ObsRun is one configuration's fully-observed workload execution: the
// aggregated observability report plus the run's wall time and the
// degradation tally under resource budgets.
type ObsRun struct {
	Name string        `json:"name"`
	Wall time.Duration `json:"wall_ns"`
	// ExecWall is the sum of per-query executor wall time (T_E) across the
	// run — the component the vectorized batch executor targets; Wall also
	// includes planning, inference, and pool scheduling.
	ExecWall time.Duration `json:"exec_wall_ns"`
	// Degraded counts queries that hit a configured budget — a resource
	// limit or per-query deadline — and were failed individually with a
	// typed error. Failed counts everything else that went wrong.
	Degraded int         `json:"degraded"`
	Failed   int         `json:"failed"`
	Report   *obs.Report `json:"report"`
}

// QPS returns the run's aggregate throughput in queries per second.
func (r ObsRun) QPS() float64 {
	if r.Wall <= 0 || r.Report == nil {
		return 0
	}
	return float64(r.Report.Queries) / r.Wall.Seconds()
}

// ObsResult is the observability experiment's outcome: the JOB-like named
// suite executed under the representative configurations, each with its own
// Observer collecting per-operator stats, re-optimization events, CE
// evaluation, and engine metrics.
type ObsResult struct {
	Label   string   `json:"workload"`
	Workers int      `json:"workers"`
	Runs    []ObsRun `json:"runs"`
}

// ObsOptions configure an observability run beyond the worker count: the
// per-query resource budgets of the robustness layer. Zero values disable
// each budget.
type ObsOptions struct {
	Workers int
	// Timeout is the per-query deadline; an exceeded query is cancelled
	// cooperatively and counted as degraded.
	Timeout time.Duration
	// MaxMatRows caps materialized intermediate rows per query execution
	// attempt; an exceeded query fails with *exec.ResourceError and is
	// counted as degraded.
	MaxMatRows int64
	// ScalarExec forces the tuple-at-a-time executor instead of the default
	// vectorized batch path (see engine.Config.ScalarExec).
	ScalarExec bool
	// RawScan disables the segmented scan path with zone-map pruning and
	// reads raw columns directly (see engine.Config.RawScan).
	RawScan bool
	// ExecWorkers, when > 1, adds one extra run per configuration with
	// morsel-driven intra-query parallelism enabled at that worker count,
	// named "<config>/px<N>". The base runs stay serial, so the snapshot
	// carries serial and parallel exec walls side by side for the benchdiff
	// speedup-sanity gate. Ignored when ScalarExec is set.
	ExecWorkers int
}

// Observability executes the JOB-like named suite under the PostgreSQL,
// LPCE-I, and LPCE-R configurations with the full observability layer on and
// no resource budgets.
func Observability(e *Env, workers int) (*ObsResult, error) {
	return ObservabilityWithOptions(e, ObsOptions{Workers: workers})
}

// ObservabilityWithOptions is Observability under explicit resource budgets:
// every engine.Config carries a fresh Observer, and the estimator is shared
// across workers behind a metrics-registered estimate cache, so cache
// hit/miss counters land in the same report as everything else. Queries run
// across a pool of opt.Workers goroutines (GOMAXPROCS when <= 0); the
// observer is the shared sink, exercising its goroutine-safety.
//
// A query exceeding a budget fails alone: the pool keeps draining, and the
// run's Degraded/Failed tallies report what happened instead of aborting the
// whole experiment.
func ObservabilityWithOptions(e *Env, opt ObsOptions) (*ObsResult, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queries, err := joblike.Queries(e.DB.Schema)
	if err != nil {
		return nil, err
	}
	wl := make([]*query.Query, 0, len(queries))
	for _, name := range joblike.Names() {
		wl = append(wl, queries[name])
	}
	want := map[string]bool{"PostgreSQL": true, "LPCE-I": true, "LPCE-R": true}
	res := &ObsResult{Label: fmt.Sprintf("JOB-like suite (%d queries)", len(wl)), Workers: workers}
	eng := engine.New(e.DB)
	runOne := func(name string, base engine.Config, execWorkers int) {
		o := obs.NewObserver()
		cfg := base
		cfg.Obs = o
		cfg.Estimator = cardest.NewCacheWithMetrics(cfg.Estimator, o.Registry())
		cfg.Limits.MaxMatRows = opt.MaxMatRows
		cfg.ScalarExec = opt.ScalarExec
		cfg.RawScan = opt.RawScan
		cfg.ExecWorkers = execWorkers
		var execWall atomic.Int64 // summed T_E nanos across workers
		start := time.Now()
		errs := workload.RunEach(context.Background(), len(wl), workers, func(i int) error {
			ctx := context.Background()
			if opt.Timeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
				defer cancel()
			}
			qres, err := eng.ExecuteContext(ctx, wl[i], cfg)
			execWall.Add(int64(qres.ExecTime))
			if err != nil {
				return fmt.Errorf("%s: %w", joblike.Names()[i], err)
			}
			return nil
		})
		run := ObsRun{Name: name, Wall: time.Since(start),
			ExecWall: time.Duration(execWall.Load()), Report: o.Report()}
		for _, err := range errs {
			switch {
			case err == nil:
			case isDegradation(err):
				run.Degraded++
			default:
				run.Failed++
			}
		}
		res.Runs = append(res.Runs, run)
	}
	for _, rc := range e.Configs() {
		if !want[rc.Name] {
			continue
		}
		runOne(rc.Name, rc.Cfg, 0)
		if opt.ExecWorkers > 1 && !opt.ScalarExec {
			runOne(fmt.Sprintf("%s/px%d", rc.Name, opt.ExecWorkers), rc.Cfg, opt.ExecWorkers)
		}
	}
	return res, nil
}

// isDegradation reports whether a per-query error is expected graceful
// degradation under the configured budgets, as opposed to a genuine failure.
func isDegradation(err error) bool {
	var re *exec.ResourceError
	return errors.As(err, &re) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

// Render formats the observability reports for terminal output: one summary
// table across configurations, then per-configuration phase, operator, and
// CE-evaluation tables.
func (r *ObsResult) Render() string {
	var b strings.Builder
	sum := &Table{
		Title:  fmt.Sprintf("Observability: %s, %d workers", r.Label, r.Workers),
		Header: []string{"config", "queries", "timeouts", "degraded", "failed", "reopts", "wall", "exec wall", "q/s", "cache hit%"},
	}
	for _, run := range r.Runs {
		rep := run.Report
		hits := rep.Metrics.Counters["cardest.cache.hits"]
		misses := rep.Metrics.Counters["cardest.cache.misses"]
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = float64(hits) / float64(hits+misses)
		}
		sum.AddRow(run.Name, fmt.Sprint(rep.Queries), fmt.Sprint(rep.Timeouts),
			fmt.Sprint(run.Degraded), fmt.Sprint(run.Failed), fmt.Sprint(rep.Reopts),
			run.Wall.Round(time.Millisecond).String(),
			run.ExecWall.Round(time.Millisecond).String(), FmtF(run.QPS()), FmtPct(hitRate))
	}
	b.WriteString(sum.String())

	for _, run := range r.Runs {
		rep := run.Report
		b.WriteString("\n")
		pt := &Table{
			Title:  fmt.Sprintf("%s: phase latency (Eq. 7 decomposition)", run.Name),
			Header: []string{"phase", "p50", "p90", "p99", "max"},
		}
		for _, ph := range rep.Phases {
			pt.AddRow(ph.Phase, FmtDur(ph.Seconds.P50), FmtDur(ph.Seconds.P90),
				FmtDur(ph.Seconds.P99), FmtDur(ph.Seconds.Max))
		}
		b.WriteString(pt.String())

		b.WriteString("\n")
		ot := &Table{
			Title:  fmt.Sprintf("%s: per-operator runtime stats", run.Name),
			Header: []string{"operator", "instances", "rows", "wall", "q-err p50", "q-err p99"},
		}
		for _, op := range rep.Operators {
			ot.AddRow(op.Op, fmt.Sprint(op.Count), fmt.Sprint(op.Rows), FmtDur(op.WallSeconds),
				FmtF(op.QError.P50), FmtF(op.QError.P99))
		}
		b.WriteString(ot.String())

		for _, ce := range rep.CE {
			b.WriteString("\n")
			ct := &Table{
				Title: fmt.Sprintf("%s: CE evaluation of %q (%d estimates matched, %d never executed)",
					run.Name, ce.Estimator, ce.Matched, ce.Unmatched),
				Header: []string{"subset size", "samples", "q-err p50", "p90", "p99", "max"},
			}
			for _, row := range ce.Sizes {
				ct.AddRow(fmt.Sprint(row.Size), fmt.Sprint(row.Samples),
					FmtF(row.P50), FmtF(row.P90), FmtF(row.P99), FmtF(row.Max))
			}
			b.WriteString(ct.String())
		}
	}
	return b.String()
}

// BenchConfigSnapshot is one configuration's entry in the perf snapshot.
type BenchConfigSnapshot struct {
	Name        string  `json:"name"`
	Queries     int     `json:"queries"`
	Timeouts    int     `json:"timeouts"`
	Degraded    int     `json:"degraded"`
	Failed      int     `json:"failed"`
	Reopts      int     `json:"reopts"`
	WallSeconds float64 `json:"wall_seconds"`
	// ExecWallSeconds is the summed executor wall time (T_E) — the
	// component gated by cmd/benchdiff against batch-executor regressions.
	ExecWallSeconds float64                 `json:"exec_wall_seconds"`
	QPS             float64                 `json:"qps"`
	Phases          []obs.PhaseSummary      `json:"phases"`
	CE              []obs.CEEstimatorReport `json:"ce_evaluation,omitempty"`
}

// BenchSnapshot is the machine-readable perf snapshot written as
// BENCH_e2e.json: per-configuration phase-time distributions and q-error
// summaries of the JOB-like regression suite, comparable across versions.
type BenchSnapshot struct {
	Scale    string                `json:"scale"`
	Seed     int64                 `json:"seed"`
	Workload string                `json:"workload"`
	Workers  int                   `json:"workers"`
	Configs  []BenchConfigSnapshot `json:"configs"`
	// Training is the data-parallel training benchmark (serial vs. pooled
	// workers, bitwise weight comparison), attached when the caller runs it.
	Training *TrainBenchResult `json:"training,omitempty"`
	// Exec is the scalar-vs-batch executor benchmark, attached when the
	// caller runs it.
	Exec *ExecBenchResult `json:"exec_bench,omitempty"`
	// Server is the multi-tenant serving benchmark (throughput, latency
	// percentiles, mid-run hot-swap), attached when the caller runs it.
	Server *ServerBenchResult `json:"server_bench,omitempty"`
	// Storage is the segment-scan microbenchmark (raw vs zone-map path,
	// pruning skip rate), attached when the caller runs it.
	Storage *StorageBenchResult `json:"storage_bench,omitempty"`
	// Load is the build-side benchmark (parallel hash-join build and
	// parallel segment sealing vs their serial oracles, with bitwise layout
	// parity), attached when the caller runs it.
	Load *LoadBenchResult `json:"load_bench,omitempty"`
}

// Snapshot reduces the observability result to the perf snapshot.
func (r *ObsResult) Snapshot(scale string, seed int64) BenchSnapshot {
	s := BenchSnapshot{Scale: scale, Seed: seed, Workload: r.Label, Workers: r.Workers}
	for _, run := range r.Runs {
		rep := run.Report
		s.Configs = append(s.Configs, BenchConfigSnapshot{
			Name: run.Name, Queries: rep.Queries, Timeouts: rep.Timeouts,
			Degraded: run.Degraded, Failed: run.Failed, Reopts: rep.Reopts,
			WallSeconds: run.Wall.Seconds(), ExecWallSeconds: run.ExecWall.Seconds(),
			QPS: run.QPS(), Phases: rep.Phases, CE: rep.CE,
		})
	}
	return s
}
