package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/server"
	"github.com/lpce-db/lpce/internal/workload"
)

// ServerBenchResult is the serving-subsystem benchmark recorded in
// BENCH_e2e.json: the environment's low-join suite pushed through the full
// internal/server path — HTTP-free but otherwise end to end: admission,
// per-tenant rate limiting, sessions, SQL re-parse, per-tenant caches — by
// concurrent workers across two tenants, with one model hot-swap landing
// mid-run. Tenants run with a deliberately tight token bucket, and clients
// retry sheds with jittered backoff honoring the server's retry hints, so
// the snapshot exercises the whole overload-control loop: every query must
// still land (served-count parity with the submitted workload). Latency is
// client-observed across all retries (admission wait and backoff included).
type ServerBenchResult struct {
	Tenants int `json:"tenants"`
	Workers int `json:"workers"`
	Queries int `json:"queries"`
	// RateQPS/RateBurst are the per-tenant token-bucket parameters the run
	// used; RateQPS > 0 arms benchdiff's served-count parity gate.
	RateQPS   float64 `json:"rate_qps"`
	RateBurst int     `json:"rate_burst"`
	// Swaps counts model hot-swaps during the run (at least 1: the mid-run
	// swap is part of the scenario, not an option).
	Swaps       int64   `json:"swaps"`
	WallSeconds float64 `json:"wall_seconds"`
	QPS         float64 `json:"qps"`
	P50Millis   float64 `json:"p50_ms"`
	P99Millis   float64 `json:"p99_ms"`
	// Served counts queries that completed successfully (possibly after
	// retries); Shed counts queries the server turned away even after the
	// client's retry budget — sheds are accounted, not errors. Under a
	// correctly-tuned bucket Served == Queries and Shed == 0.
	Served int `json:"served"`
	Shed   int `json:"shed"`
	// Retries is the pool-wide retry total; RateLimitHits is the server-side
	// count of 429s issued (every one was absorbed by client backoff when
	// Served == Queries).
	Retries       int64 `json:"retries"`
	RateLimitHits int64 `json:"rate_limit_hits"`
	// Errors counts queries that failed through the server for any reason
	// other than a shed; the bench gate fails on any, since the same queries
	// succeed on a bare engine.
	Errors int `json:"errors"`
	// CountsIdentical asserts every served COUNT(*) matched the bare
	// engine's answer for the same query — the serving layers (admission,
	// caching, sessions, swap) must be semantically invisible.
	CountsIdentical bool `json:"counts_identical"`
}

// ServerBench measures multi-tenant serving throughput and latency
// percentiles over the environment's LPCE-R stack.
func ServerBench(e *Env, workers int) (*ServerBenchResult, error) {
	if workers < 1 {
		workers = 1
	}
	var queries []*query.Query
	for i := 0; i < 4; i++ { // repeats exercise the prepared-statement and estimate caches
		queries = append(queries, e.JoinLow...)
	}
	n := len(queries)
	if n == 0 {
		return nil, fmt.Errorf("serverbench: environment has no workload")
	}

	// Bare-engine oracle counts, serial.
	eng := engine.New(e.DB)
	oracle := make([]int, n)
	for i, q := range queries {
		res, err := eng.Execute(q, engine.Config{Estimator: e.LPCEIEstimator(), Refiner: e.Refiner})
		if err != nil {
			return nil, fmt.Errorf("serverbench: oracle query %d: %w", i, err)
		}
		oracle[i] = res.Count
	}

	// Per-tenant token bucket, deliberately tighter than the unthrottled
	// arrival rate (the unlimited run clears this suite in ~tens of ms) so
	// the limiter actually fires, but with enough sustained qps that client
	// backoff absorbs every shed well inside its retry budget.
	const (
		rateQPS   = 200.0
		rateBurst = 4
	)
	srv, err := server.New(server.Config{
		DB:            e.DB,
		Enc:           e.Enc,
		Mode:          server.ModeLPCER,
		Models:        e.ModelSet(),
		ModelsVersion: "bench-v1",
		Tenants: []server.TenantConfig{
			{Name: "alpha", Weight: 1, RateQPS: rateQPS, RateBurst: rateBurst},
			{Name: "beta", Weight: 1, RateQPS: rateQPS, RateBurst: rateBurst},
		},
		MaxConcurrent:  int64(workers),
		MaxQueue:       2 * n,
		DefaultTimeout: 5 * time.Minute,
		CacheCapacity:  65536,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close(context.Background())

	// Compliant overload-control client: jittered exponential backoff with a
	// pool-wide retry budget, retrying only the server's shed classes and
	// honoring its Retry-After hints as delay floors.
	backoff := workload.Backoff{
		Base:        2 * time.Millisecond,
		Max:         50 * time.Millisecond,
		MaxAttempts: 8,
		Seed:        42,
		Budget:      workload.NewRetryBudget(int64(n) * 8),
	}
	retryable := func(err error) bool {
		return errors.Is(err, server.ErrRateLimited) || errors.Is(err, server.ErrQueueFull)
	}

	var (
		done      atomic.Int64
		retries   atomic.Int64
		swapOnce  sync.Once
		mu        sync.Mutex
		latencies = make([]float64, 0, n)
		served    int
		shed      int
		errCount  int
		identical = true
	)
	start := time.Now()
	workload.RunEach(context.Background(), n, workers, func(i int) error {
		tenant := []string{"alpha", "beta"}[i%2]
		qStart := time.Now()
		var res *server.QueryResult
		attempts, err := backoff.Retry(context.Background(), uint64(i), retryable, func() error {
			var qerr error
			res, qerr = srv.Query(context.Background(), server.QueryRequest{
				Tenant:  tenant,
				Session: fmt.Sprintf("%s-%d", tenant, i%workers),
				SQL:     queries[i].SQL(),
			})
			return qerr
		})
		lat := time.Since(qStart)
		retries.Add(int64(attempts - 1))
		mu.Lock()
		latencies = append(latencies, float64(lat)/float64(time.Millisecond))
		switch {
		case err == nil:
			served++
			if res.Count != oracle[i] {
				identical = false
			}
		case retryable(err):
			// Shed even after the retry budget: accounted, not an error.
			shed++
		default:
			errCount++
		}
		mu.Unlock()
		// Halfway through, hot-swap to a freshly-wired serving set of the
		// same models: the swap itself is the thing under test.
		if done.Add(1) == int64(n/2) {
			swapOnce.Do(func() {
				srv.InstallEstimator("bench-v2", e.LPCEIEstimator(), e.Refiner)
			})
		}
		return nil
	})
	wall := time.Since(start)

	snap := srv.MetricsSnapshot()
	sort.Float64s(latencies)
	r := &ServerBenchResult{
		Tenants:         2,
		Workers:         workers,
		Queries:         n,
		RateQPS:         rateQPS,
		RateBurst:       rateBurst,
		Swaps:           snap.Counters["server.model_swaps"],
		WallSeconds:     wall.Seconds(),
		QPS:             float64(n) / wall.Seconds(),
		P50Millis:       Percentile(latencies, 0.50),
		P99Millis:       Percentile(latencies, 0.99),
		Served:          served,
		Shed:            shed,
		Retries:         retries.Load(),
		RateLimitHits:   snap.Counters["tenant.alpha.server.shed.rate_limited"] + snap.Counters["tenant.beta.server.shed.rate_limited"],
		Errors:          errCount,
		CountsIdentical: identical && errCount == 0,
	}
	return r, nil
}
