package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/server"
	"github.com/lpce-db/lpce/internal/workload"
)

// ServerBenchResult is the serving-subsystem benchmark recorded in
// BENCH_e2e.json: the environment's low-join suite pushed through the full
// internal/server path — HTTP-free but otherwise end to end: admission,
// sessions, SQL re-parse, per-tenant caches — by concurrent workers across
// two tenants, with one model hot-swap landing mid-run. Latency is
// client-observed (admission wait included).
type ServerBenchResult struct {
	Tenants int `json:"tenants"`
	Workers int `json:"workers"`
	Queries int `json:"queries"`
	// Swaps counts model hot-swaps during the run (at least 1: the mid-run
	// swap is part of the scenario, not an option).
	Swaps       int64   `json:"swaps"`
	WallSeconds float64 `json:"wall_seconds"`
	QPS         float64 `json:"qps"`
	P50Millis   float64 `json:"p50_ms"`
	P99Millis   float64 `json:"p99_ms"`
	// Errors counts queries that failed through the server; the bench gate
	// fails on any, since the same queries succeed on a bare engine.
	Errors int `json:"errors"`
	// CountsIdentical asserts every served COUNT(*) matched the bare
	// engine's answer for the same query — the serving layers (admission,
	// caching, sessions, swap) must be semantically invisible.
	CountsIdentical bool `json:"counts_identical"`
}

// ServerBench measures multi-tenant serving throughput and latency
// percentiles over the environment's LPCE-R stack.
func ServerBench(e *Env, workers int) (*ServerBenchResult, error) {
	if workers < 1 {
		workers = 1
	}
	var queries []*query.Query
	for i := 0; i < 4; i++ { // repeats exercise the prepared-statement and estimate caches
		queries = append(queries, e.JoinLow...)
	}
	n := len(queries)
	if n == 0 {
		return nil, fmt.Errorf("serverbench: environment has no workload")
	}

	// Bare-engine oracle counts, serial.
	eng := engine.New(e.DB)
	oracle := make([]int, n)
	for i, q := range queries {
		res, err := eng.Execute(q, engine.Config{Estimator: e.LPCEIEstimator(), Refiner: e.Refiner})
		if err != nil {
			return nil, fmt.Errorf("serverbench: oracle query %d: %w", i, err)
		}
		oracle[i] = res.Count
	}

	srv, err := server.New(server.Config{
		DB:            e.DB,
		Enc:           e.Enc,
		Mode:          server.ModeLPCER,
		Models:        e.ModelSet(),
		ModelsVersion: "bench-v1",
		Tenants: []server.TenantConfig{
			{Name: "alpha", Weight: 1},
			{Name: "beta", Weight: 1},
		},
		MaxConcurrent:  int64(workers),
		MaxQueue:       2 * n,
		DefaultTimeout: 5 * time.Minute,
		CacheCapacity:  65536,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close(context.Background())

	var (
		done      atomic.Int64
		swapOnce  sync.Once
		mu        sync.Mutex
		latencies = make([]float64, 0, n)
		errCount  int
		identical = true
	)
	start := time.Now()
	workload.RunEach(context.Background(), n, workers, func(i int) error {
		tenant := []string{"alpha", "beta"}[i%2]
		qStart := time.Now()
		res, err := srv.Query(context.Background(), server.QueryRequest{
			Tenant:  tenant,
			Session: fmt.Sprintf("%s-%d", tenant, i%workers),
			SQL:     queries[i].SQL(),
		})
		lat := time.Since(qStart)
		mu.Lock()
		latencies = append(latencies, float64(lat)/float64(time.Millisecond))
		if err != nil {
			errCount++
		} else if res.Count != oracle[i] {
			identical = false
		}
		mu.Unlock()
		// Halfway through, hot-swap to a freshly-wired serving set of the
		// same models: the swap itself is the thing under test.
		if done.Add(1) == int64(n/2) {
			swapOnce.Do(func() {
				srv.InstallEstimator("bench-v2", e.LPCEIEstimator(), e.Refiner)
			})
		}
		return nil
	})
	wall := time.Since(start)

	sort.Float64s(latencies)
	r := &ServerBenchResult{
		Tenants:         2,
		Workers:         workers,
		Queries:         n,
		Swaps:           srv.MetricsSnapshot().Counters["server.model_swaps"],
		WallSeconds:     wall.Seconds(),
		QPS:             float64(n) / wall.Seconds(),
		P50Millis:       Percentile(latencies, 0.50),
		P99Millis:       Percentile(latencies, 0.99),
		Errors:          errCount,
		CountsIdentical: identical && errCount == 0,
	}
	return r, nil
}
