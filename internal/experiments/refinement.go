package experiments

import (
	"fmt"

	"github.com/lpce-db/lpce/internal/core"
)

// Figure16Point is the refinement error at one execution progress point.
type Figure16Point struct {
	ExecutedOps int
	MeanQError  float64
	MedianQ     float64
	Samples     int
}

// Figure16Result reproduces Figure 16: how LPCE-R's mean q-error over the
// remaining operators falls as more operators finish.
type Figure16Result struct {
	Label  string
	Points []Figure16Point
}

// Figure16 evaluates the trained refiner over executed prefixes of test
// plans.
func Figure16(e *Env, label string, samples []core.Sample) Figure16Result {
	res := Figure16Result{Label: label}
	if len(samples) == 0 {
		return res
	}
	maxOps := 0
	for _, s := range samples {
		if n := s.Plan.NumNodes(); n > maxOps {
			maxOps = n
		}
	}
	step := maxOps / 5
	if step < 1 {
		step = 1
	}
	for k := step; k < maxOps; k += step {
		var qs []float64
		for _, s := range samples {
			if k >= s.Plan.NumNodes() {
				continue
			}
			qs = append(qs, e.Refiner.EvalPrefix(s, k)...)
		}
		if len(qs) == 0 {
			continue
		}
		res.Points = append(res.Points, Figure16Point{
			ExecutedOps: k,
			MeanQError:  Mean(qs),
			MedianQ:     Percentile(qs, 50),
			Samples:     len(qs),
		})
	}
	return res
}

// Render formats the error trajectory.
func (r Figure16Result) Render() string {
	t := &Table{
		Title:  fmt.Sprintf("Figure 16 (%s): LPCE-R q-error vs executed operators", r.Label),
		Header: []string{"Executed ops", "mean q-error", "median q-error", "estimates"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprint(p.ExecutedOps), FmtF(p.MeanQError), FmtF(p.MedianQ), fmt.Sprint(p.Samples))
	}
	return t.String()
}

// Table3Row is one (variant, executed-operators) error summary.
type Table3Row struct {
	Variant     string
	ExecutedOps int
	P50         float64
	P75         float64
	P95         float64
	P99         float64
	Mean        float64
}

// Table3Result reproduces Table 3: refinement q-error percentiles for
// LPCE-R against the LPCE-R-Single and LPCE-R-Two ablations at several
// execution progress points.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 trains the two ablation variants (the full refiner is reused from
// the environment) and evaluates all three on executed prefixes.
func Table3(e *Env, samples []core.Sample) Table3Result {
	base := e.P.refiner
	base.Base = e.P.teacher
	single := base
	single.Kind = core.RefinerSingle
	two := base
	two.Kind = core.RefinerTwo

	variants := []struct {
		name string
		r    *core.Refiner
	}{
		{"LPCE-R", e.Refiner},
		{"LPCE-R-Single", core.TrainRefiner(single, e.Enc, e.DB, e.Samples, e.LogMax)},
		{"LPCE-R-Two", core.TrainRefiner(two, e.Enc, e.DB, e.Samples, e.LogMax)},
	}

	maxOps := 0
	for _, s := range samples {
		if n := s.Plan.NumNodes(); n > maxOps {
			maxOps = n
		}
	}
	var ks []int
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		k := int(frac * float64(maxOps))
		if k < 1 {
			k = 1
		}
		ks = append(ks, k)
	}

	var res Table3Result
	for _, v := range variants {
		for _, k := range ks {
			var qs []float64
			for _, s := range samples {
				if k >= s.Plan.NumNodes() {
					continue
				}
				qs = append(qs, v.r.EvalPrefix(s, k)...)
			}
			if len(qs) == 0 {
				continue
			}
			res.Rows = append(res.Rows, Table3Row{
				Variant:     v.name,
				ExecutedOps: k,
				P50:         Percentile(qs, 50),
				P75:         Percentile(qs, 75),
				P95:         Percentile(qs, 95),
				P99:         Percentile(qs, 99),
				Mean:        Mean(qs),
			})
		}
	}
	return res
}

// Render formats the ablation table.
func (r Table3Result) Render() string {
	t := &Table{
		Title:  "Table 3: refinement q-error percentiles by progressive-model design",
		Header: []string{"Variant", "Executed ops", "50th", "75th", "95th", "99th", "mean"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Variant, fmt.Sprint(row.ExecutedOps),
			FmtF(row.P50), FmtF(row.P75), FmtF(row.P95), FmtF(row.P99), FmtF(row.Mean))
	}
	return t.String()
}
