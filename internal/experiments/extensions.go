package experiments

import (
	"fmt"

	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/reopt"
)

// The paper's §8 lists two open directions: applying progressive
// estimation to other estimator families, and smarter re-optimization
// trigger policies. Both are implemented in this repository (reopt.Overlay
// and Policy.MinRemainingCostFrac); the experiments below quantify them.
// They have no counterpart table/figure in the paper and are labelled as
// extensions.

// ExtReoptRow is one re-optimization strategy's aggregate outcome.
type ExtReoptRow struct {
	Name       string
	TotalSec   float64
	ExecSec    float64
	OverheadMs float64 // re-planning + refinement time
	Reopts     int
	Timeouts   int
}

// ExtReoptResult compares re-optimization strategies on the deep-join set:
// no re-optimization, exact-cardinality overlay (no learning), LPCE-R, and
// LPCE-R with the cost-aware trigger.
type ExtReoptResult struct {
	Label string
	Rows  []ExtReoptRow
}

// ExtReopt runs the comparison with LPCE-I initial estimates.
func ExtReopt(e *Env, label string, queries []*query.Query) (ExtReoptResult, error) {
	base := e.LPCEIEstimator()
	pol := reopt.DefaultPolicy()
	costAware := pol
	costAware.MinRemainingCostFrac = 0.25
	configs := []struct {
		name string
		cfg  engine.Config
	}{
		{"no reopt (LPCE-I)", engine.Config{Estimator: base, Budget: e.P.budget}},
		{"overlay reopt", engine.Config{Estimator: base, OverlayReopt: true, Policy: pol, Budget: e.P.budget}},
		{"LPCE-R", engine.Config{Estimator: base, Refiner: e.Refiner, Policy: pol, Budget: e.P.budget}},
		{"LPCE-R cost-aware", engine.Config{Estimator: base, Refiner: e.Refiner, Policy: costAware, Budget: e.P.budget}},
	}
	eng := engine.New(e.DB)
	var res ExtReoptResult
	res.Label = label
	for _, c := range configs {
		var row ExtReoptRow
		row.Name = c.name
		for _, q := range queries {
			r, err := eng.Execute(q, c.cfg)
			if err != nil {
				return res, err
			}
			row.TotalSec += r.Total().Seconds()
			row.ExecSec += r.ExecTime.Seconds()
			row.OverheadMs += r.ReoptTime.Seconds() * 1e3
			row.Reopts += r.Reopts
			if r.TimedOut {
				row.Timeouts++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the comparison.
func (r ExtReoptResult) Render() string {
	t := &Table{
		Title:  fmt.Sprintf("Extension (%s): re-optimization strategies (no paper counterpart; §8 future work)", r.Label),
		Header: []string{"Strategy", "Total", "Execution", "Reopt overhead", "Reopts", "Timeouts"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, FmtDur(row.TotalSec), FmtDur(row.ExecSec),
			fmt.Sprintf("%.1fms", row.OverheadMs), fmt.Sprint(row.Reopts), fmt.Sprint(row.Timeouts))
	}
	return t.String()
}

// ExtTriggerRow is one threshold's outcome.
type ExtTriggerRow struct {
	Threshold float64
	TotalSec  float64
	Reopts    int
}

// ExtTriggerResult sweeps the q-error trigger threshold (the paper fixes
// it at 50 and calls better policies future work).
type ExtTriggerResult struct {
	Label string
	Rows  []ExtTriggerRow
}

// ExtTriggerSweep runs LPCE-R across trigger thresholds.
func ExtTriggerSweep(e *Env, label string, queries []*query.Query) (ExtTriggerResult, error) {
	eng := engine.New(e.DB)
	var res ExtTriggerResult
	res.Label = label
	for _, thr := range []float64{5, 20, 50, 200, 1000} {
		var row ExtTriggerRow
		row.Threshold = thr
		for _, q := range queries {
			r, err := eng.Execute(q, engine.Config{
				Estimator: e.LPCEIEstimator(),
				Refiner:   e.Refiner,
				Policy:    reopt.Policy{QErrThreshold: thr, MaxReopts: 3},
				Budget:    e.P.budget,
			})
			if err != nil {
				return res, err
			}
			row.TotalSec += r.Total().Seconds()
			row.Reopts += r.Reopts
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the sweep.
func (r ExtTriggerResult) Render() string {
	t := &Table{
		Title:  fmt.Sprintf("Extension (%s): q-error trigger threshold sweep (paper fixes 50)", r.Label),
		Header: []string{"Threshold", "Total end-to-end", "Reopts"},
	}
	for _, row := range r.Rows {
		t.AddRow(FmtF(row.Threshold), FmtDur(row.TotalSec), fmt.Sprint(row.Reopts))
	}
	return t.String()
}
