package experiments

import (
	"strings"
	"sync"
	"testing"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/query"
)

// TestParallelMatchesSerial is the tentpole correctness proof: running the
// workload across many workers must reproduce the serial run exactly —
// same cardinality estimates, same chosen plans, same row counts — for a
// sampling data-driven estimator, the histogram, and the full LPCE-R
// re-optimization stack.
func TestParallelMatchesSerial(t *testing.T) {
	e := env(t)
	queries := e.JoinLow
	if len(queries) > 4 {
		queries = queries[:4]
	}
	cfgs := []struct {
		name string
		cfg  engine.Config
	}{
		// sampling estimator: proves per-call RNG derivation makes walk
		// randomness independent of scheduling
		{"NeuroCard", engine.Config{Estimator: e.NeuroCard, Budget: e.P.budget}},
		{"PostgreSQL", engine.Config{Estimator: e.Histogram, Budget: e.P.budget}},
		// re-optimization path: replans and overlays must also be stable
		{"LPCE-R", engine.Config{Estimator: e.LPCEIEstimator(), Refiner: e.Refiner, Budget: e.P.budget}},
	}
	for _, tc := range cfgs {
		serial, err := RunParallelWorkload(e.DB, queries, tc.cfg, 1)
		if err != nil {
			t.Fatalf("%s serial: %v", tc.name, err)
		}
		par, err := RunParallelWorkload(e.DB, queries, tc.cfg, 8)
		if err != nil {
			t.Fatalf("%s parallel: %v", tc.name, err)
		}
		for i := range queries {
			s, p := serial.Results[i], par.Results[i]
			if s.Count != p.Count || s.TimedOut != p.TimedOut {
				t.Fatalf("%s query %d: serial count=%d timeout=%v, parallel count=%d timeout=%v",
					tc.name, i, s.Count, s.TimedOut, p.Count, p.TimedOut)
			}
			if s.Reopts != p.Reopts {
				t.Fatalf("%s query %d: serial reopts=%d, parallel reopts=%d", tc.name, i, s.Reopts, p.Reopts)
			}
			if s.EstimateCalls != p.EstimateCalls {
				t.Fatalf("%s query %d: serial estimate calls=%d, parallel=%d",
					tc.name, i, s.EstimateCalls, p.EstimateCalls)
			}
			sp, pp := s.FinalPlan.String(), p.FinalPlan.String()
			if sp != pp {
				t.Fatalf("%s query %d: plans diverge\nserial:\n%s\nparallel:\n%s", tc.name, i, sp, pp)
			}
		}
	}
}

// TestParallelCacheSharing checks the shared cache actually absorbs repeated
// estimates: running the same query list twice in one workload makes the
// second pass hit for every subset.
func TestParallelCacheSharing(t *testing.T) {
	e := env(t)
	qs := append(append([]*query.Query(nil), e.JoinLow[:2]...), e.JoinLow[:2]...)
	run, err := RunParallelWorkload(e.DB, qs, engine.Config{Estimator: e.Histogram, Budget: e.P.budget}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if run.CacheHits == 0 {
		t.Fatal("duplicated queries produced zero cache hits")
	}
	if run.HitRate() <= 0 || run.HitRate() >= 1 {
		t.Fatalf("hit rate = %v, want in (0,1)", run.HitRate())
	}
}

// TestSharedEstimatorHammer drives one shared estimator + cache from 8
// goroutines over overlapping (query, mask) pairs. Run under -race this is
// the concurrency audit's enforcement test.
func TestSharedEstimatorHammer(t *testing.T) {
	e := env(t)
	ests := []cardest.Estimator{e.NeuroCard, e.DeepDB, e.FLAT, e.UAE, e.Histogram, e.LPCEIEstimator(), e.Oracle}
	qs := e.JoinLow
	if len(qs) > 3 {
		qs = qs[:3]
	}
	for _, est := range ests {
		cache := cardest.NewCache(est)
		want := make(map[*query.Query]map[query.BitSet]float64)
		for _, q := range qs {
			want[q] = make(map[query.BitSet]float64)
			for mask := query.BitSet(1); mask <= q.AllTablesMask(); mask++ {
				if q.Connected(mask) {
					want[q][mask] = est.EstimateSubset(q, mask)
				}
			}
		}
		var wg sync.WaitGroup
		errs := make(chan string, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for rep := 0; rep < 3; rep++ {
					for _, q := range qs {
						for mask, w := range want[q] {
							if got := cache.EstimateSubset(q, mask); got != w {
								select {
								case errs <- est.Name():
								default:
								}
								return
							}
						}
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		if name, ok := <-errs; ok {
			t.Fatalf("%s: concurrent estimate diverged from serial value", name)
		}
		if hits, misses := cache.Stats(); hits == 0 || misses == 0 {
			t.Fatalf("%s: cache counters hits=%d misses=%d", est.Name(), hits, misses)
		}
	}
}

func TestParallelBenchRenders(t *testing.T) {
	e := env(t)
	r, err := ParallelBench(e, 4)
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, frag := range []string{"Concurrent workload execution", "PostgreSQL", "LPCE-I", "LPCE-R", "q/s", "p99", "total"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
	for _, p := range r.Par {
		if p.Workers != 4 || len(p.Results) < len(e.JoinLow) || len(p.Results)%len(e.JoinLow) != 0 {
			t.Fatalf("parallel run shape wrong: workers=%d results=%d", p.Workers, len(p.Results))
		}
		// cycling the query set must make the shared cache pay off
		if p.CacheHits == 0 {
			t.Fatalf("%s: repeated workload produced no cache hits", p.Name)
		}
	}
}
