package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
	"github.com/lpce-db/lpce/internal/workload"
)

// ParallelRun is the outcome of one configuration's query set executed
// across a worker pool: per-query results aligned with the query slice, the
// aggregate wall time, and the shared estimate cache's counters.
type ParallelRun struct {
	Name    string
	Workers int
	Results []engine.Result
	Wall    time.Duration
	// CacheHits and CacheMisses are the shared cardinality-estimate cache's
	// counters over the whole run (initial optimizations and replans).
	CacheHits   int64
	CacheMisses int64
}

// QPS returns the aggregate throughput in queries per second.
func (r ParallelRun) QPS() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(len(r.Results)) / r.Wall.Seconds()
}

// HitRate returns the estimate cache's hit fraction, NaN-free (0 when the
// cache was never consulted).
func (r ParallelRun) HitRate() float64 {
	total := r.CacheHits + r.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(total)
}

// phaseGetters maps the engine's time decomposition (Eq. 7: T_P, T_I, T_R,
// T_E) to labelled accessors for percentile reporting.
var phaseGetters = []struct {
	name string
	get  func(engine.Result) time.Duration
}{
	{"plan", func(r engine.Result) time.Duration { return r.PlanTime }},
	{"infer", func(r engine.Result) time.Duration { return r.InferTime }},
	{"reopt", func(r engine.Result) time.Duration { return r.ReoptTime }},
	{"exec", func(r engine.Result) time.Duration { return r.ExecTime }},
	{"total", func(r engine.Result) time.Duration { return r.Total() }},
}

// PhaseTable renders per-phase latency percentiles of the run.
func (r ParallelRun) PhaseTable() *Table {
	t := &Table{
		Title: fmt.Sprintf("%s: %d queries, %d workers, wall %s, %.1f q/s, cache hit %.0f%%",
			r.Name, len(r.Results), r.Workers, r.Wall.Round(time.Millisecond), r.QPS(), r.HitRate()*100),
		Header: []string{"phase", "p50", "p90", "p99"},
	}
	for _, ph := range phaseGetters {
		vals := make([]float64, len(r.Results))
		for i, res := range r.Results {
			vals[i] = ph.get(res).Seconds()
		}
		t.AddRow(ph.name, FmtDur(Percentile(vals, 50)), FmtDur(Percentile(vals, 90)), FmtDur(Percentile(vals, 99)))
	}
	return t
}

// RunParallelWorkload plans and executes every query with one configuration
// across a pool of workers goroutines (GOMAXPROCS when workers <= 0, serial
// when workers == 1). The configuration's estimator is shared by all workers
// behind a read-through estimate cache; everything else — Timed wrapper,
// re-optimization controller, executor context — is allocated per query by
// the engine, so results are identical to a serial run regardless of worker
// count or scheduling.
func RunParallelWorkload(db *storage.Database, queries []*query.Query, cfg engine.Config, workers int) (ParallelRun, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cache := cardest.NewCache(cfg.Estimator)
	cfg.Estimator = cache
	eng := engine.New(db)
	results := make([]engine.Result, len(queries))
	start := time.Now()
	err := workload.RunParallel(len(queries), workers, func(i int) error {
		r, err := eng.Execute(queries[i], cfg)
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return ParallelRun{}, err
	}
	hits, misses := cache.Stats()
	return ParallelRun{
		Workers: workers, Results: results, Wall: time.Since(start),
		CacheHits: hits, CacheMisses: misses,
	}, nil
}

// ParallelBenchResult compares serial against parallel execution of the
// same workload for representative configurations.
type ParallelBenchResult struct {
	Label   string
	Workers int
	Serial  []ParallelRun
	Par     []ParallelRun
}

// ParallelBench executes the Join-low test set serially and with a worker
// pool for the PostgreSQL, LPCE-I, and LPCE-R configurations, reporting
// aggregate throughput and per-phase latency percentiles. The set is cycled
// until the workload holds at least max(8*workers, 48) queries — a served
// workload repeats queries, which both gives the pool enough work to
// amortize goroutine startup and lets the shared estimate cache absorb the
// recurring plans. It is the demonstration behind the `-parallel` flag of
// cmd/lpce-bench.
func ParallelBench(e *Env, workers int) (*ParallelBenchResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	base := e.JoinLow
	if len(base) == 0 {
		return nil, fmt.Errorf("parallel bench: empty test set")
	}
	target := 8 * workers
	if target < 48 {
		target = 48
	}
	wl := make([]*query.Query, 0, target+len(base))
	for len(wl) < target {
		wl = append(wl, base...)
	}
	want := map[string]bool{"PostgreSQL": true, "LPCE-I": true, "LPCE-R": true}
	res := &ParallelBenchResult{
		Label:   fmt.Sprintf("%s x%d", e.JoinLowLabel, len(wl)/len(base)),
		Workers: workers,
	}
	for _, rc := range e.Configs() {
		if !want[rc.Name] {
			continue
		}
		serial, err := RunParallelWorkload(e.DB, wl, rc.Cfg, 1)
		if err != nil {
			return nil, fmt.Errorf("%s serial: %w", rc.Name, err)
		}
		serial.Name = rc.Name
		par, err := RunParallelWorkload(e.DB, wl, rc.Cfg, workers)
		if err != nil {
			return nil, fmt.Errorf("%s parallel: %w", rc.Name, err)
		}
		par.Name = rc.Name
		res.Serial = append(res.Serial, serial)
		res.Par = append(res.Par, par)
	}
	return res, nil
}

// Render renders the throughput comparison and the parallel runs' per-phase
// percentiles.
func (r ParallelBenchResult) Render() string {
	var b strings.Builder
	t := &Table{
		Title:  fmt.Sprintf("Concurrent workload execution (%s, %d workers)", r.Label, r.Workers),
		Header: []string{"config", "serial q/s", "parallel q/s", "speedup", "cache hit%"},
	}
	for i := range r.Serial {
		s, p := r.Serial[i], r.Par[i]
		speedup := 0.0
		if s.QPS() > 0 {
			speedup = p.QPS() / s.QPS()
		}
		t.AddRow(s.Name, FmtF(s.QPS()), FmtF(p.QPS()), FmtF(speedup), FmtPct(p.HitRate()))
	}
	b.WriteString(t.String())
	for _, p := range r.Par {
		b.WriteString("\n")
		b.WriteString(p.PhaseTable().String())
	}
	return b.String()
}
