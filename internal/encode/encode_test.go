package encode

import (
	"math"
	"testing"

	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/testutil"
	"github.com/lpce-db/lpce/internal/workload"
)

func TestDimConsistency(t *testing.T) {
	db := testutil.TinyDB()
	e := NewEncoder(db.Schema)
	nCols := db.Schema.NumColumns()
	want := NumFuncs + 4*nCols + query.NumOps
	if e.Dim() != want {
		t.Fatalf("Dim = %d, want %d", e.Dim(), want)
	}
	if e.DimWithCards() != want+2 {
		t.Fatalf("DimWithCards = %d", e.DimWithCards())
	}
}

func TestScanEncoding(t *testing.T) {
	db := testutil.TinyDB()
	e := NewEncoder(db.Schema)
	title := db.Schema.Table("title")
	year := title.Column("production_year")
	mid := (year.Min + year.Max) / 2
	p := query.Predicate{Col: year, Op: query.OpGT, Operand: mid}
	v := e.EncodeScan([]query.Predicate{p})
	if len(v) != e.Dim() {
		t.Fatalf("len = %d", len(v))
	}
	if v[FuncScan] != 1 || v[FuncJoin] != 0 {
		t.Fatal("function one-hot wrong")
	}
	if v[e.presenceOff()+year.GlobalID] != 1 {
		t.Fatal("predicate presence slot not set")
	}
	if v[e.predOpOff()+int(query.OpGT)] != 1 {
		t.Fatal("operator slot not set")
	}
	// > mid should admit roughly [0.5, 1]
	if math.Abs(v[e.loOff()+year.GlobalID]-0.5) > 0.02 {
		t.Fatalf("lo = %v, want ~0.5", v[e.loOff()+year.GlobalID])
	}
	if v[e.hiOff()+year.GlobalID] != 1 {
		t.Fatalf("hi = %v, want 1", v[e.hiOff()+year.GlobalID])
	}
	// join slots must be zero for scans
	for i := 0; i < db.Schema.NumColumns(); i++ {
		if v[e.joinOff()+i] != 0 {
			t.Fatal("scan has nonzero join slots")
		}
	}
}

func TestJoinEncodingTwoHot(t *testing.T) {
	db := testutil.TinyDB()
	e := NewEncoder(db.Schema)
	ci := db.Schema.Table("cast_info")
	title := db.Schema.Table("title")
	j := query.Join{Left: ci.Column("movie_id"), Right: title.Column("id")}
	v := e.EncodeJoin([]query.Join{j})
	if v[FuncJoin] != 1 {
		t.Fatal("function one-hot wrong")
	}
	nz := 0
	for i := 0; i < db.Schema.NumColumns(); i++ {
		if v[e.joinOff()+i] != 0 {
			nz++
		}
	}
	if nz != 2 {
		t.Fatalf("join encoding has %d nonzero slots, want 2", nz)
	}
	if v[e.joinOff()+j.Left.GlobalID] != 1 || v[e.joinOff()+j.Right.GlobalID] != 1 {
		t.Fatal("wrong join slots set")
	}
}

func TestMultiplePredicatesDifferentColumns(t *testing.T) {
	db := testutil.TinyDB()
	e := NewEncoder(db.Schema)
	title := db.Schema.Table("title")
	year := title.Column("production_year")
	kind := title.Column("kind_id")
	p1 := query.Predicate{Col: year, Op: query.OpGT, Operand: year.Min}
	p2 := query.Predicate{Col: kind, Op: query.OpEQ, Operand: kind.Min}
	v := e.EncodeScan([]query.Predicate{p1, p2})
	if v[e.presenceOff()+year.GlobalID] != 1 || v[e.presenceOff()+kind.GlobalID] != 1 {
		t.Fatal("both predicate columns should be marked")
	}
	if v[e.predOpOff()+int(query.OpGT)] != 1 || v[e.predOpOff()+int(query.OpEQ)] != 1 {
		t.Fatal("both operators should be marked")
	}
	// kind = min: interval collapses to [0, 0]
	if v[e.loOff()+kind.GlobalID] != 0 || v[e.hiOff()+kind.GlobalID] != 0 {
		t.Fatal("equality interval wrong")
	}
	// year > min: interval [0, 1] upper half -> lo 0, hi 1 with lo=0 since
	// operand = min normalizes to 0
	if v[e.hiOff()+year.GlobalID] != 1 {
		t.Fatal("range interval wrong")
	}
}

func TestSameColumnIntervalIntersection(t *testing.T) {
	db := testutil.TinyDB()
	e := NewEncoder(db.Schema)
	year := db.Schema.Table("title").Column("production_year")
	span := year.Max - year.Min
	p1 := query.Predicate{Col: year, Op: query.OpGE, Operand: year.Min + span/4}
	p2 := query.Predicate{Col: year, Op: query.OpLE, Operand: year.Min + 3*span/4}
	v := e.EncodeScan([]query.Predicate{p1, p2})
	lo := v[e.loOff()+year.GlobalID]
	hi := v[e.hiOff()+year.GlobalID]
	if math.Abs(lo-0.25) > 0.05 || math.Abs(hi-0.75) > 0.05 {
		t.Fatalf("intersection = [%v, %v], want ~[0.25, 0.75]", lo, hi)
	}
}

func TestOperandNormalizationBounds(t *testing.T) {
	db := testutil.TinyDB()
	e := NewEncoder(db.Schema)
	year := db.Schema.Table("title").Column("production_year")
	out := e.EncodeScan([]query.Predicate{{Col: year, Op: query.OpGE, Operand: year.Max + 1000}})
	if out[e.loOff()+year.GlobalID] != 1 {
		t.Fatal("out-of-range operand should clamp to 1")
	}
	under := e.EncodeScan([]query.Predicate{{Col: year, Op: query.OpLE, Operand: year.Min - 1000}})
	if under[e.hiOff()+year.GlobalID] != 0 {
		t.Fatal("below-range operand should clamp to 0")
	}
}

func TestInPredicateInterval(t *testing.T) {
	db := testutil.TinyDB()
	e := NewEncoder(db.Schema)
	kind := db.Schema.Table("title").Column("kind_id")
	v := e.EncodeScan([]query.Predicate{{Col: kind, Op: query.OpIn, InSet: []int64{kind.Min, kind.Max}}})
	if v[e.loOff()+kind.GlobalID] != 0 || v[e.hiOff()+kind.GlobalID] != 1 {
		t.Fatalf("IN {min,max} should span [0,1], got [%v,%v]",
			v[e.loOff()+kind.GlobalID], v[e.hiOff()+kind.GlobalID])
	}
}

func TestNEPredicateAdmitsEverything(t *testing.T) {
	db := testutil.TinyDB()
	e := NewEncoder(db.Schema)
	kind := db.Schema.Table("title").Column("kind_id")
	v := e.EncodeScan([]query.Predicate{{Col: kind, Op: query.OpNE, Operand: 3}})
	if v[e.loOff()+kind.GlobalID] != 0 || v[e.hiOff()+kind.GlobalID] != 1 {
		t.Fatal("NE should admit the full interval")
	}
	if v[e.presenceOff()+kind.GlobalID] != 1 {
		t.Fatal("NE should still mark presence")
	}
}

func TestWithCards(t *testing.T) {
	db := testutil.TinyDB()
	e := NewEncoder(db.Schema)
	base := e.EncodeScan(nil)
	logMax := math.Log(1e6)
	v := e.WithCards(base, 1000, 1e6, logMax)
	if len(v) != e.DimWithCards() {
		t.Fatalf("len = %d", len(v))
	}
	if math.Abs(v[len(v)-2]-math.Log(1000)/logMax) > 1e-9 {
		t.Fatal("left card normalization wrong")
	}
	if v[len(v)-1] != 1 {
		t.Fatal("max card should normalize to 1")
	}
	// zero/negative cards clamp to 0
	v2 := e.WithCards(base, 0, -5, logMax)
	if v2[len(v2)-2] != 0 || v2[len(v2)-1] != 0 {
		t.Fatal("sub-1 cards should clamp to 0")
	}
}

func TestEncodeNodeDispatch(t *testing.T) {
	db := testutil.TinyDB()
	e := NewEncoder(db.Schema)
	g := workload.NewGenerator(db, 61)
	q := g.Query(2)
	p := exec.CanonicalPlan(q, q.AllTablesMask())
	p.Walk(func(n *plan.Node) {
		v := e.EncodeNode(n)
		if n.Op.IsJoin() && v[FuncJoin] != 1 {
			t.Fatal("join node not encoded as join")
		}
		if !n.Op.IsJoin() && v[FuncScan] != 1 {
			t.Fatal("scan node not encoded as scan")
		}
	})
}
