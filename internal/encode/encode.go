// Package encode implements the feature encoding of paper §4.1 (Figure 5):
// every plan node becomes a dense vector that concatenates
//
//   - the logical function as a one-hot over |P| (scan or join — the paper
//     encodes logical rather than physical operators because estimation
//     happens before physical operators are chosen);
//   - the join condition as a two-hot over the |C| global columns;
//   - the filter predicates in [column, operator, operand] form. The paper
//     pools one operand scalar per node; we vectorize the same information
//     per column — a presence flag plus the normalized [lo, hi] interval
//     the predicates admit on that column — so that multi-predicate nodes
//     do not collapse different columns' operands into one slot. The
//     operator one-hots are sum-pooled as in MSCN.
//
// The encoder also provides the cardinality-augmented variant used by
// LPCE-R's cardinality module (§5.2): the node feature concatenated with
// the normalized real cardinalities of its two children.
package encode

import (
	"hash/fnv"
	"math"
	"strconv"

	"github.com/lpce-db/lpce/internal/catalog"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/tensor"
)

// Logical functions (the paper's operator set P).
const (
	FuncScan = iota
	FuncJoin
	NumFuncs
)

// Encoder maps plan nodes to feature vectors for one schema.
type Encoder struct {
	Schema *catalog.Schema
	nCols  int
}

// NewEncoder builds an encoder for the schema.
func NewEncoder(s *catalog.Schema) *Encoder {
	return &Encoder{Schema: s, nCols: s.NumColumns()}
}

// Dim returns the feature dimension:
// |P| + |C| (join) + 3·|C| (predicate presence/lo/hi) + |ops|.
func (e *Encoder) Dim() int {
	return NumFuncs + 4*e.nCols + query.NumOps
}

// DimWithCards returns the dimension of the cardinality-augmented features
// (two extra slots for the children's normalized log cardinalities).
func (e *Encoder) DimWithCards() int { return e.Dim() + 2 }

// Fingerprint digests everything the encoding depends on — the feature
// dimensions plus each column's identity and the min/max statistics behind
// operand normalization — into a 64-bit FNV-1a hash. Model artifacts store
// it so that loading a model against a different schema (or the same schema
// with different statistics, which silently shifts every operand feature)
// is rejected instead of producing garbage estimates.
func (e *Encoder) Fingerprint() uint64 {
	h := fnv.New64a()
	put := func(parts ...string) {
		for _, p := range parts {
			h.Write([]byte(p))
			h.Write([]byte{0})
		}
	}
	put(strconv.Itoa(e.Dim()), strconv.Itoa(e.DimWithCards()))
	for _, t := range e.Schema.Tables {
		put("t", t.Name)
	}
	for _, c := range e.Schema.Columns {
		put("c", c.Name, strconv.Itoa(c.GlobalID),
			strconv.FormatInt(c.Min, 10), strconv.FormatInt(c.Max, 10))
	}
	return h.Sum64()
}

// offsets within the feature vector
func (e *Encoder) joinOff() int     { return NumFuncs }
func (e *Encoder) presenceOff() int { return NumFuncs + e.nCols }
func (e *Encoder) loOff() int       { return NumFuncs + 2*e.nCols }
func (e *Encoder) hiOff() int       { return NumFuncs + 3*e.nCols }
func (e *Encoder) predOpOff() int   { return NumFuncs + 4*e.nCols }

// EncodeNode encodes one plan node (ignoring children). Materialized-scan
// leaves encode as plain scans (their contents are summarized separately by
// LPCE-R's executed-sub-plan embeddings).
func (e *Encoder) EncodeNode(n *plan.Node) tensor.Vec {
	if n.Op.IsJoin() {
		return e.EncodeJoin(n.JoinConds)
	}
	return e.EncodeScan(n.Preds)
}

// EncodeScan encodes a base-table scan with its predicates.
func (e *Encoder) EncodeScan(preds []query.Predicate) tensor.Vec {
	v := tensor.NewVec(e.Dim())
	v[FuncScan] = 1
	// accumulate per-column admitted intervals
	type iv struct{ lo, hi float64 }
	intervals := make(map[int]iv, len(preds))
	for _, p := range preds {
		lo, hi := e.interval(p)
		id := p.Col.GlobalID
		if cur, ok := intervals[id]; ok {
			// multiple predicates on one column: intersect
			if lo < cur.lo {
				lo = cur.lo
			}
			if hi > cur.hi {
				hi = cur.hi
			}
		}
		intervals[id] = iv{lo, hi}
		v[e.predOpOff()+int(p.Op)] += 1
	}
	for id, in := range intervals {
		v[e.presenceOff()+id] = 1
		v[e.loOff()+id] = in.lo
		v[e.hiOff()+id] = in.hi
	}
	return v
}

// EncodeJoin encodes a join node with its equi-join conditions as the
// two-hot column vector of Figure 5.
func (e *Encoder) EncodeJoin(conds []query.Join) tensor.Vec {
	v := tensor.NewVec(e.Dim())
	v[FuncJoin] = 1
	for _, j := range conds {
		v[e.joinOff()+j.Left.GlobalID] += 1
		v[e.joinOff()+j.Right.GlobalID] += 1
	}
	return v
}

// interval maps a predicate to the normalized value interval it admits on
// its column ([0,1] relative to the column's min/max statistics).
func (e *Encoder) interval(p query.Predicate) (lo, hi float64) {
	switch p.Op {
	case query.OpLT, query.OpLE:
		return 0, e.normalize(p.Col, p.Operand)
	case query.OpGT, query.OpGE:
		return e.normalize(p.Col, p.Operand), 1
	case query.OpEQ:
		x := e.normalize(p.Col, p.Operand)
		return x, x
	case query.OpIn:
		if len(p.InSet) == 0 {
			return 0, 1
		}
		mn, mx := p.InSet[0], p.InSet[0]
		for _, v := range p.InSet {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		return e.normalize(p.Col, mn), e.normalize(p.Col, mx)
	default: // OpNE admits almost everything
		return 0, 1
	}
}

// normalize maps a column value into [0,1] using min/max statistics (the
// paper records operands "as float after normalization").
func (e *Encoder) normalize(c *catalog.Column, v int64) float64 {
	span := float64(c.Max - c.Min)
	if span <= 0 {
		return 0.5
	}
	x := (float64(v) - float64(c.Min)) / span
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// WithCards appends the normalized log cardinalities of a node's two
// children to its feature vector (leaves use the base-relation row count,
// matching §5.2: "for the leaf nodes, their real cardinalities are the
// number of tuples in the considered attributes").
func (e *Encoder) WithCards(feat tensor.Vec, leftCard, rightCard, logMax float64) tensor.Vec {
	out := make(tensor.Vec, len(feat)+2)
	copy(out, feat)
	out[len(feat)] = normLog(leftCard, logMax)
	out[len(feat)+1] = normLog(rightCard, logMax)
	return out
}

func normLog(card, logMax float64) float64 {
	if card < 1 {
		card = 1
	}
	if logMax <= 0 {
		return 0
	}
	v := math.Log(card) / logMax
	if v > 1 {
		v = 1
	}
	return v
}
