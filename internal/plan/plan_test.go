package plan

import (
	"strings"
	"testing"

	"github.com/lpce-db/lpce/internal/catalog"
	"github.com/lpce-db/lpce/internal/query"
)

func fixture() (*catalog.Schema, *query.Query) {
	s := catalog.NewSchema()
	a := s.AddTable("a", catalog.PK("id"), catalog.Attr("x"))
	b := s.AddTable("b", catalog.FK("a_id", a.Column("id")), catalog.Attr("y"))
	c := s.AddTable("c", catalog.FK("b_y", b.Column("y")))
	q := query.New(
		[]*catalog.Table{a, b, c},
		[]query.Join{
			{Left: b.Column("a_id"), Right: a.Column("id")},
			{Left: c.Column("b_y"), Right: b.Column("y")},
		},
		[]query.Predicate{{Col: a.Column("x"), Op: query.OpLT, Operand: 3}},
	)
	return s, q
}

func buildTree(q *query.Query) *Node {
	la := NewLeaf(SeqScan, q.Tables[0], 0, q.PredsOn(q.Tables[0]))
	lb := NewLeaf(IndexScan, q.Tables[1], 1, nil)
	lc := NewLeaf(SeqScan, q.Tables[2], 2, nil)
	ab := NewJoin(HashJoin, la, lb, q.Joins[:1])
	return NewJoin(MergeJoin, ab, lc, q.Joins[1:])
}

func TestTreeShape(t *testing.T) {
	_, q := fixture()
	root := buildTree(q)
	if root.NumNodes() != 5 {
		t.Fatalf("nodes = %d", root.NumNodes())
	}
	if root.Depth() != 3 {
		t.Fatalf("depth = %d", root.Depth())
	}
	if !root.Tables.Has(0) || !root.Tables.Has(1) || !root.Tables.Has(2) {
		t.Fatalf("root covers %b", uint32(root.Tables))
	}
	if root.IsLeaf() || !root.Left.Left.IsLeaf() {
		t.Fatal("IsLeaf broken")
	}
}

func TestWalkPostOrder(t *testing.T) {
	_, q := fixture()
	root := buildTree(q)
	var ops []PhysOp
	root.Walk(func(n *Node) { ops = append(ops, n.Op) })
	want := []PhysOp{SeqScan, IndexScan, HashJoin, SeqScan, MergeJoin}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("post-order ops = %v, want %v", ops, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	_, q := fixture()
	root := buildTree(q)
	cp := root.Clone()
	cp.EstCard = 42
	cp.Left.Preds = nil
	if root.EstCard == 42 {
		t.Fatal("clone shares annotations")
	}
	if root.Left.Left.Preds == nil && len(q.Preds) > 0 {
		t.Fatal("clone damaged original predicates")
	}
	if cp.NumNodes() != root.NumNodes() {
		t.Fatal("clone changed shape")
	}
}

func TestCloneRemapsIndexPred(t *testing.T) {
	_, q := fixture()
	a := q.Tables[0]
	preds := []query.Predicate{
		{Col: a.Column("id"), Op: query.OpGE, Operand: 0},
		{Col: a.Column("x"), Op: query.OpEQ, Operand: 1},
	}
	n := NewLeaf(IndexScan, a, 0, preds)
	n.IndexPred = &n.Preds[1]
	cp := n.Clone()
	if cp.IndexPred == n.IndexPred {
		t.Fatal("clone's IndexPred aliases the original's Preds slice")
	}
	if cp.IndexPred != &cp.Preds[1] {
		t.Fatal("clone's IndexPred not remapped into its own Preds slice")
	}
}

func TestStringRendering(t *testing.T) {
	_, q := fixture()
	root := buildTree(q)
	root.EstCard = 100
	s := root.String()
	for _, frag := range []string{"MergeJoin", "HashJoin", "SeqScan(a", "IndexScan(b", "est=100"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("rendering missing %q:\n%s", frag, s)
		}
	}
}

func TestMatLeaf(t *testing.T) {
	m := &Materialized{Tables: query.NewBitSet().Set(0).Set(1), Rows: [][]int64{{1, 2}, {3, 4}}}
	n := NewMatLeaf(m)
	if n.Op != MatScan || n.EstCard != 2 || n.TrueCard != 2 {
		t.Fatalf("mat leaf = %+v", n)
	}
	if m.Card() != 2 {
		t.Fatalf("card = %d", m.Card())
	}
}

func TestLayoutOffsets(t *testing.T) {
	_, q := fixture()
	full := q.AllTablesMask()
	l := NewLayout(q, full)
	// a has 2 cols, b has 2 cols, c has 1 col
	if l.Width() != 5 {
		t.Fatalf("width = %d", l.Width())
	}
	if l.TableOffset(0) != 0 || l.TableOffset(1) != 2 || l.TableOffset(2) != 4 {
		t.Fatal("table offsets wrong")
	}
	bY := q.Tables[1].Column("y")
	if l.ColOffset(bY) != 3 {
		t.Fatalf("ColOffset(b.y) = %d", l.ColOffset(bY))
	}
	if !l.HasTable(1) {
		t.Fatal("HasTable broken")
	}

	// partial layout skips missing tables
	part := NewLayout(q, query.NewBitSet().Set(0).Set(2))
	if part.Width() != 3 || part.TableOffset(2) != 2 {
		t.Fatalf("partial layout width=%d off=%d", part.Width(), part.TableOffset(2))
	}
	if part.HasTable(1) {
		t.Fatal("partial layout should not contain table 1")
	}
}

func TestLayoutPanicsOutsideMask(t *testing.T) {
	_, q := fixture()
	l := NewLayout(q, query.NewBitSet().Set(0))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-mask table")
		}
	}()
	l.TableOffset(2)
}

func TestPhysOpStrings(t *testing.T) {
	if HashJoin.String() != "HashJoin" || SeqScan.String() != "SeqScan" {
		t.Fatal("op strings broken")
	}
	if !NestLoopJoin.IsJoin() || SeqScan.IsJoin() {
		t.Fatal("IsJoin broken")
	}
}
