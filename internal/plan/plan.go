// Package plan defines physical execution plans: binary join trees whose
// leaves scan base tables (or, after a re-optimization, materialized
// intermediate results) and whose internal nodes are hash, merge, or nested
// loop joins. Plans carry the optimizer's cardinality and cost annotations
// and, after instrumented execution, the true cardinalities used to train
// the learned estimators.
package plan

import (
	"fmt"
	"strings"

	"github.com/lpce-db/lpce/internal/catalog"
	"github.com/lpce-db/lpce/internal/query"
)

// PhysOp identifies the physical operator of a plan node.
type PhysOp int

// Physical operators. The engine mirrors PostgreSQL's operator set for
// SPJA queries: two scan methods and three join methods.
const (
	SeqScan PhysOp = iota
	IndexScan
	MatScan // scan of a materialized intermediate (re-optimization resume)
	HashJoin
	MergeJoin
	NestLoopJoin
)

func (op PhysOp) String() string {
	switch op {
	case SeqScan:
		return "SeqScan"
	case IndexScan:
		return "IndexScan"
	case MatScan:
		return "MatScan"
	case HashJoin:
		return "HashJoin"
	case MergeJoin:
		return "MergeJoin"
	case NestLoopJoin:
		return "NestLoopJoin"
	default:
		return fmt.Sprintf("PhysOp(%d)", int(op))
	}
}

// IsJoin reports whether the operator is one of the three join methods.
func (op PhysOp) IsJoin() bool { return op >= HashJoin }

// Materialized holds the buffered output of an executed sub-plan, keyed by
// the table subset it covers. Re-optimized plans scan these instead of
// recomputing the executed work (paper §6.2).
type Materialized struct {
	Tables query.BitSet
	Rows   [][]int64
}

// Card returns the exact cardinality of the materialized result.
func (m *Materialized) Card() int { return len(m.Rows) }

// Node is one operator of a physical plan.
type Node struct {
	Op PhysOp

	// Leaf fields (SeqScan / IndexScan / MatScan).
	Table     *catalog.Table
	Preds     []query.Predicate
	IndexPred *query.Predicate // the predicate driving an IndexScan
	Mat       *Materialized

	// Join fields.
	Left, Right *Node
	JoinConds   []query.Join

	// Tables is the subset of the query's relations this node covers.
	Tables query.BitSet

	// Optimizer annotations.
	EstCard float64
	EstCost float64

	// TrueCard is filled by instrumented execution (counters at every
	// operator, the paper's EXPLAIN ANALYZE analogue); -1 when unknown.
	TrueCard float64
}

// NewLeaf builds a scan leaf covering the single table at local index idx.
func NewLeaf(op PhysOp, t *catalog.Table, idx int, preds []query.Predicate) *Node {
	return &Node{Op: op, Table: t, Preds: preds, Tables: query.NewBitSet().Set(idx), TrueCard: -1}
}

// NewMatLeaf builds a leaf scanning a materialized intermediate.
func NewMatLeaf(m *Materialized) *Node {
	return &Node{Op: MatScan, Mat: m, Tables: m.Tables, EstCard: float64(m.Card()), TrueCard: float64(m.Card())}
}

// NewJoin builds a join node over two children.
func NewJoin(op PhysOp, left, right *Node, conds []query.Join) *Node {
	return &Node{
		Op: op, Left: left, Right: right, JoinConds: conds,
		Tables: left.Tables.Union(right.Tables), TrueCard: -1,
	}
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Walk visits the subtree in post-order (left, right, node), the order in
// which a bottom-up executor completes operators; LPCE-R's "first k
// executed operators" prefixes follow this order.
func (n *Node) Walk(visit func(*Node)) {
	if n == nil {
		return
	}
	n.Left.Walk(visit)
	n.Right.Walk(visit)
	visit(n)
}

// Nodes returns the subtree's nodes in post-order.
func (n *Node) Nodes() []*Node {
	var out []*Node
	n.Walk(func(x *Node) { out = append(out, x) })
	return out
}

// NumNodes returns the operator count of the subtree.
func (n *Node) NumNodes() int {
	c := 0
	n.Walk(func(*Node) { c++ })
	return c
}

// Depth returns the height of the subtree (a single leaf has depth 1).
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	l, r := n.Left.Depth(), n.Right.Depth()
	if r > l {
		l = r
	}
	return l + 1
}

// Clone deep-copies the plan tree. Materialized payloads are shared, not
// copied.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	cp := *n
	cp.Left = n.Left.Clone()
	cp.Right = n.Right.Clone()
	cp.Preds = append([]query.Predicate(nil), n.Preds...)
	cp.JoinConds = append([]query.Join(nil), n.JoinConds...)
	// remap IndexPred into the cloned Preds slice: the executor identifies
	// the index-driving predicate by pointer, so a clone pointing into the
	// original's slice would silently re-apply it as a residual filter
	if n.IndexPred != nil {
		for i := range n.Preds {
			if &n.Preds[i] == n.IndexPred {
				cp.IndexPred = &cp.Preds[i]
				break
			}
		}
	}
	return &cp
}

// String renders the plan as an indented tree for logs and examples.
func (n *Node) String() string {
	return n.StringWith(nil)
}

// StringWith renders the plan like String, appending annot's output (when
// non-nil) to each operator line — the hook EXPLAIN ANALYZE uses to attach
// per-operator runtime stats without the plan package knowing about them.
func (n *Node) StringWith(annot func(*Node) string) string {
	var b strings.Builder
	n.render(&b, 0, annot)
	return b.String()
}

func (n *Node) render(b *strings.Builder, depth int, annot func(*Node) string) {
	indent := strings.Repeat("  ", depth)
	switch {
	case n.Op.IsJoin():
		fmt.Fprintf(b, "%s%s", indent, n.Op)
		for _, j := range n.JoinConds {
			fmt.Fprintf(b, " [%s]", j)
		}
	case n.Op == MatScan:
		fmt.Fprintf(b, "%sMatScan(subset=%b, rows=%d)", indent, uint32(n.Mat.Tables), n.Mat.Card())
	default:
		fmt.Fprintf(b, "%s%s(%s", indent, n.Op, n.Table.Name)
		for _, p := range n.Preds {
			fmt.Fprintf(b, " %s", p)
		}
		b.WriteString(")")
	}
	fmt.Fprintf(b, " est=%.0f", n.EstCard)
	if n.TrueCard >= 0 {
		fmt.Fprintf(b, " true=%.0f", n.TrueCard)
	}
	if annot != nil {
		b.WriteString(annot(n))
	}
	b.WriteString("\n")
	if n.Left != nil {
		n.Left.render(b, depth+1, annot)
	}
	if n.Right != nil {
		n.Right.render(b, depth+1, annot)
	}
}

// Layout maps columns to offsets within the tuples produced by a node that
// covers a given table subset. Tuples are the concatenation of the covered
// tables' rows in ascending local-index order.
type Layout struct {
	q       *query.Query
	offsets map[int]int // local table index -> starting offset
	width   int
}

// NewLayout computes the tuple layout for the subset mask of query q.
func NewLayout(q *query.Query, mask query.BitSet) *Layout {
	l := &Layout{q: q, offsets: make(map[int]int)}
	for _, i := range mask.Indices() {
		l.offsets[i] = l.width
		l.width += len(q.Tables[i].Columns)
	}
	return l
}

// Width returns the tuple width in columns.
func (l *Layout) Width() int { return l.width }

// TableOffset returns the starting offset of the table at local index i.
func (l *Layout) TableOffset(i int) int {
	off, ok := l.offsets[i]
	if !ok {
		panic(fmt.Sprintf("plan: table index %d not in layout", i))
	}
	return off
}

// ColOffset returns the tuple offset of column c.
func (l *Layout) ColOffset(c *catalog.Column) int {
	idx := l.q.TableIndex(c.Table)
	if idx < 0 {
		panic(fmt.Sprintf("plan: column %s not in query", c.QualifiedName()))
	}
	return l.TableOffset(idx) + c.Pos
}

// HasTable reports whether the layout covers local table index i.
func (l *Layout) HasTable(i int) bool {
	_, ok := l.offsets[i]
	return ok
}
