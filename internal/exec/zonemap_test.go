package exec

import (
	"testing"

	"github.com/lpce-db/lpce/internal/catalog"
	"github.com/lpce-db/lpce/internal/datagen"
	"github.com/lpce-db/lpce/internal/obs"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
)

// The zone-map scan path must be byte-identical to the raw path: pruning
// and encoded-form filtering change which values are read, never which
// rows qualify, how much work is charged, or what any observer sees. These
// tests sweep the same randomized corpus as the scalar/batch equivalence
// suite with the segment layer engaged (segments shrunk so tiny fixtures
// split into many), compare against both the scalar oracle and the
// RawScan escape hatch, and pin the ≥50% skip rate on selective reference
// queries.

func TestSegPrune(t *testing.T) {
	col := &catalog.Column{}
	p := func(op query.Op, operand int64, in ...int64) query.Predicate {
		return query.Predicate{Col: col, Op: op, Operand: operand, InSet: in}
	}
	cases := []struct {
		name   string
		p      query.Predicate
		mn, mx int64
		want   bool
	}{
		{"eq-below", p(query.OpEQ, 9), 10, 20, true},
		{"eq-above", p(query.OpEQ, 21), 10, 20, true},
		{"eq-edge-lo", p(query.OpEQ, 10), 10, 20, false},
		{"eq-edge-hi", p(query.OpEQ, 20), 10, 20, false},
		{"ne-constant-match", p(query.OpNE, 10), 10, 10, true},
		{"ne-constant-other", p(query.OpNE, 11), 10, 10, false},
		{"ne-range", p(query.OpNE, 15), 10, 20, false},
		{"lt-at-min", p(query.OpLT, 10), 10, 20, true},
		{"lt-above-min", p(query.OpLT, 11), 10, 20, false},
		{"le-below-min", p(query.OpLE, 9), 10, 20, true},
		{"le-at-min", p(query.OpLE, 10), 10, 20, false},
		{"gt-at-max", p(query.OpGT, 20), 10, 20, true},
		{"gt-below-max", p(query.OpGT, 19), 10, 20, false},
		{"ge-above-max", p(query.OpGE, 21), 10, 20, true},
		{"ge-at-max", p(query.OpGE, 20), 10, 20, false},
		{"in-all-outside", p(query.OpIn, 0, 5, 25), 10, 20, true},
		{"in-one-inside", p(query.OpIn, 0, 5, 15), 10, 20, false},
		{"in-empty", p(query.OpIn, 0), 10, 20, true},
	}
	for _, tc := range cases {
		if got := segPrune(tc.p, tc.mn, tc.mx); got != tc.want {
			t.Errorf("%s: segPrune(%v, [%d,%d]) = %v, want %v", tc.name, tc.p, tc.mn, tc.mx, got, tc.want)
		}
	}
}

// segTinyDB generates a fresh tiny database sealed at a small segment
// granularity, so its tables split into many segments and the corpus
// queries exercise real pruning. A fresh instance per call: the shared
// testutil.TinyDB must keep its production-granularity segments.
func segTinyDB(t *testing.T) *storage.Database {
	t.Helper()
	defer storage.SetSegmentRows(256)()
	return datagen.Generate(datagen.Config{Titles: 300, Seed: 42})
}

// TestZoneMapScanEquivalence compares, over the full plan-variant corpus:
// the scalar oracle, the batch path reading raw columns (RawScan), and the
// batch path reading through segments with zone maps. Counts, row-content
// hashes, work totals, materialization totals, and TrueCard stamps must
// all be identical.
func TestZoneMapScanEquivalence(t *testing.T) {
	db := segTinyDB(t)
	reg := obs.NewRegistry()
	equivCorpus(t, db, 51, 10, func(q *query.Query, p *plan.Node, variant string) {
		ps, pr, pz := p.Clone(), p.Clone(), p.Clone()
		ctxS := &Ctx{DB: db, Q: q, Controller: NopController{}}
		ctxR := &Ctx{DB: db, Q: q, Controller: NopController{}, RawScan: true}
		ctxZ := &Ctx{DB: db, Q: q, Controller: NopController{}, Metrics: reg}
		cS, hS, errS := runPath(ctxS, ps, false)
		cR, hR, errR := runPath(ctxR, pr, true)
		cZ, hZ, errZ := runPath(ctxZ, pz, true)
		if errS != nil || errR != nil || errZ != nil {
			t.Fatalf("%s/%s: errs scalar=%v raw=%v zone=%v", q.SQL(), variant, errS, errR, errZ)
		}
		if cS != cR || cS != cZ {
			t.Fatalf("%s/%s: counts scalar=%d raw=%d zone=%d", q.SQL(), variant, cS, cR, cZ)
		}
		if hS != hR || hS != hZ {
			t.Fatalf("%s/%s: row hashes scalar=%x raw=%x zone=%x", q.SQL(), variant, hS, hR, hZ)
		}
		if ctxS.Work() != ctxZ.Work() || ctxR.Work() != ctxZ.Work() {
			t.Fatalf("%s/%s: work scalar=%d raw=%d zone=%d", q.SQL(), variant, ctxS.Work(), ctxR.Work(), ctxZ.Work())
		}
		if ctxS.MatRows() != ctxZ.MatRows() {
			t.Fatalf("%s/%s: matRows scalar=%d zone=%d", q.SQL(), variant, ctxS.MatRows(), ctxZ.MatRows())
		}
		tcS, tcZ := trueCards(ps), trueCards(pz)
		for mask, v := range tcS {
			if tcZ[mask] != v {
				t.Fatalf("%s/%s: TrueCard at %b: scalar %v, zone %v", q.SQL(), variant, uint32(mask), v, tcZ[mask])
			}
		}
	})
	if reg.Counter("storage.segments_total").Value() == 0 {
		t.Fatal("corpus never engaged the segment scan path")
	}
}

// TestZoneMapParallelEquivalence runs the zone-map path through the morsel
// exchange at 1/2/4/8 workers and demands byte-identity with the serial
// zone-map run — and that the storage metrics (pruning decisions and
// decoded bytes) are themselves identical for every worker count.
func TestZoneMapParallelEquivalence(t *testing.T) {
	shrinkMorsels(t)
	db := segTinyDB(t)
	equivCorpus(t, db, 52, 6, func(q *query.Query, p *plan.Node, variant string) {
		regS := obs.NewRegistry()
		ctxS := &Ctx{DB: db, Q: q, Controller: NopController{}, Metrics: regS}
		cS, hS, errS := runPath(ctxS, p.Clone(), true)
		if errS != nil {
			t.Fatalf("%s/%s: serial err %v", q.SQL(), variant, errS)
		}
		base := regS.Snapshot()
		for _, w := range parallelWorkerCounts {
			regW := obs.NewRegistry()
			ctxW := &Ctx{DB: db, Q: q, Controller: NopController{}, Metrics: regW}
			cW, hW, errW := runPathWorkers(ctxW, p.Clone(), w)
			if errW != nil {
				t.Fatalf("%s/%s w=%d: err %v", q.SQL(), variant, w, errW)
			}
			if cW != cS || hW != hS {
				t.Fatalf("%s/%s w=%d: count/hash %d/%x, serial %d/%x", q.SQL(), variant, w, cW, hW, cS, hS)
			}
			if ctxW.Work() != ctxS.Work() {
				t.Fatalf("%s/%s w=%d: work %d, serial %d", q.SQL(), variant, w, ctxW.Work(), ctxS.Work())
			}
			snap := regW.Snapshot()
			for _, name := range []string{"storage.segments_total", "storage.segments_skipped", "storage.bytes_decoded"} {
				if snap.Counters[name] != base.Counters[name] {
					t.Fatalf("%s/%s w=%d: %s = %d, serial %d",
						q.SQL(), variant, w, name, snap.Counters[name], base.Counters[name])
				}
			}
		}
	})
}

// zoneRefDB builds the selective-predicate reference fixture: 64k rows in
// 16 production-size segments, with a clustered group column (dictionary
// segments, each holding one group) and a sorted value column (bit-packed
// segments), so equality and range predicates each disprove most zone
// maps.
func zoneRefDB(t *testing.T) (*storage.Database, *catalog.Table) {
	t.Helper()
	const n = 16 * storage.DefaultSegmentRows
	s := catalog.NewSchema()
	meta := s.AddTable("zone_ref", catalog.PK("id"), catalog.Attr("grp"), catalog.Attr("val"))
	db := storage.NewDatabase(s)
	tbl := storage.NewTable(meta, n)
	for i := 0; i < n; i++ {
		tbl.ColByName("id")[i] = int64(i)
		tbl.ColByName("grp")[i] = int64(i / storage.DefaultSegmentRows)
		tbl.ColByName("val")[i] = int64(2 * i)
	}
	db.Tables[meta.ID] = tbl
	tbl.FinishLoad()
	return db, meta
}

// TestZoneMapSkipRateReference pins the acceptance criterion: on selective
// reference predicates the scan skips at least 50% of segments, with
// results byte-identical to the raw path for any worker count.
func TestZoneMapSkipRateReference(t *testing.T) {
	shrinkMorsels(t)
	db, meta := zoneRefDB(t)
	preds := map[string][]query.Predicate{
		"grp-eq":    {{Col: meta.Column("grp"), Op: query.OpEQ, Operand: 11}},
		"val-range": {{Col: meta.Column("val"), Op: query.OpLT, Operand: 9000}},
		"grp-in":    {{Col: meta.Column("grp"), Op: query.OpIn, InSet: []int64{2, 9}}},
		"id-ge":     {{Col: meta.Column("id"), Op: query.OpGE, Operand: int64(14 * storage.DefaultSegmentRows)}},
	}
	for name, ps := range preds {
		q := query.New([]*catalog.Table{meta}, nil, ps)
		mkPlan := func() *plan.Node { return plan.NewLeaf(plan.SeqScan, meta, 0, ps) }

		rawCtx := &Ctx{DB: db, Q: q, RawScan: true, Controller: NopController{}}
		cRaw, hRaw, err := runPath(rawCtx, mkPlan(), true)
		if err != nil {
			t.Fatalf("%s: raw path: %v", name, err)
		}

		reg := obs.NewRegistry()
		zCtx := &Ctx{DB: db, Q: q, Metrics: reg, Controller: NopController{}}
		cZ, hZ, err := runPath(zCtx, mkPlan(), true)
		if err != nil {
			t.Fatalf("%s: zone path: %v", name, err)
		}
		if cZ != cRaw || hZ != hRaw {
			t.Fatalf("%s: zone path count/hash %d/%x, raw %d/%x", name, cZ, hZ, cRaw, hRaw)
		}
		if rawCtx.Work() != zCtx.Work() {
			t.Fatalf("%s: zone path work %d, raw %d", name, zCtx.Work(), rawCtx.Work())
		}
		total := reg.Counter("storage.segments_total").Value()
		skipped := reg.Counter("storage.segments_skipped").Value()
		if total != 16 {
			t.Fatalf("%s: segments_total = %d, want 16", name, total)
		}
		if skipped*2 < total {
			t.Fatalf("%s: skipped %d of %d segments, want >= 50%%", name, skipped, total)
		}

		for _, w := range parallelWorkerCounts {
			wCtx := &Ctx{DB: db, Q: q, Controller: NopController{}}
			cW, hW, err := runPathWorkers(wCtx, mkPlan(), w)
			if err != nil {
				t.Fatalf("%s w=%d: %v", name, w, err)
			}
			if cW != cRaw || hW != hRaw {
				t.Fatalf("%s w=%d: count/hash %d/%x, raw %d/%x", name, w, cW, hW, cRaw, hRaw)
			}
		}
	}
}

// TestZoneMapUnsealedFallback covers the DML window: after a maintenance
// append the table is unsealed, the segment path must disengage (stale
// zone maps would be wrong), and the scan still returns correct results.
func TestZoneMapUnsealedFallback(t *testing.T) {
	db, meta := zoneRefDB(t)
	tbl := db.Tables[meta.ID]
	preds := []query.Predicate{{Col: meta.Column("grp"), Op: query.OpEQ, Operand: 16}}
	q := query.New([]*catalog.Table{meta}, nil, preds)

	reg := obs.NewRegistry()
	ctx := &Ctx{DB: db, Q: q, Metrics: reg, Controller: NopController{}}
	c0, _, err := runPath(ctx, plan.NewLeaf(plan.SeqScan, meta, 0, preds), true)
	if err != nil {
		t.Fatal(err)
	}
	if c0 != 0 {
		t.Fatalf("pre-append count = %d, want 0", c0)
	}
	if v := reg.Counter("storage.segments_skipped").Value(); v != 16 {
		t.Fatalf("pre-append skipped = %d, want 16 (grp 16 nowhere)", v)
	}

	// Rows with grp=16 arrive via the maintenance path; the unsealed table
	// must scan raw (segments gone) and find them.
	rows := make([][]int64, 100)
	for i := range rows {
		rows[i] = []int64{int64(tbl.NumRows() + i), 16, 0}
	}
	tbl.MaintenanceAppend(rows)
	reg2 := obs.NewRegistry()
	ctx2 := &Ctx{DB: db, Q: q, Metrics: reg2, Controller: NopController{}}
	c1, _, err := runPath(ctx2, plan.NewLeaf(plan.SeqScan, meta, 0, preds), true)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != 100 {
		t.Fatalf("post-append count = %d, want 100", c1)
	}
	if v := reg2.Counter("storage.segments_total").Value(); v != 0 {
		t.Fatalf("unsealed scan recorded %d segments; segment path should disengage", v)
	}

	// Resealing rebuilds the dirtied tail; the zone path re-engages and
	// still sees the new rows.
	tbl.FinishLoad()
	reg3 := obs.NewRegistry()
	ctx3 := &Ctx{DB: db, Q: q, Metrics: reg3, Controller: NopController{}}
	c2, _, err := runPath(ctx3, plan.NewLeaf(plan.SeqScan, meta, 0, preds), true)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != 100 {
		t.Fatalf("post-reseal count = %d, want 100", c2)
	}
	if v := reg3.Counter("storage.segments_total").Value(); v != 17 {
		t.Fatalf("post-reseal segments_total = %d, want 17", v)
	}
}
