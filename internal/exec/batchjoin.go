package exec

import (
	"sort"

	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/storage"
)

// pendingCharger accumulates per-tuple work charges and flushes them as one
// lump, amortizing the charge call (and its budget/cancellation checks)
// over a batch. flushAt bounds how much work can accrue between flushes so
// cancellation latency stays close to the scalar path's poll interval.
type pendingCharger struct {
	pending int64
}

const flushAt = BatchSize

func (p *pendingCharger) add(n int64) { p.pending += n }

func (p *pendingCharger) flush(ctx *Ctx) error {
	if p.pending == 0 {
		return nil
	}
	n := p.pending
	p.pending = 0
	return ctx.charge(n)
}

// flushIfFull flushes once the accumulated work exceeds flushAt.
func (p *pendingCharger) flushIfFull(ctx *Ctx) error {
	if p.pending < flushAt {
		return nil
	}
	return p.flush(ctx)
}

// batchHashJoin is the vectorized hash join: the build side is drained into
// a flat arena and indexed by a vecTable during Open (one pipeline breaker
// with a checkpoint, exactly like the scalar hashJoin), then probe batches
// stream from the left child and matches are emitted straight into the
// output arena.
type batchHashJoin struct {
	node  *plan.Node
	left  BatchOperator
	right BatchOperator

	conds []condOffsets
	merge joinMerge

	rows  [][]int64 // build rows, views into one flat arena
	table *vecTable

	// probe state, persisted across NextBatch calls so a long match chain
	// can span output batches
	probe *Batch
	pi    int   // rows of probe consumed
	chain int32 // current candidate chain cursor, -1 when none

	charges pendingCharger
	out     Batch
	count   int
}

func newBatchHashJoin(ctx *Ctx, n *plan.Node) (*batchHashJoin, error) {
	l, err := BuildBatch(ctx, n.Left)
	if err != nil {
		return nil, err
	}
	r, err := BuildBatch(ctx, n.Right)
	if err != nil {
		return nil, err
	}
	conds, err := resolveConds(ctx, n.JoinConds, n.Left.Tables, n.Right.Tables)
	if err != nil {
		return nil, err
	}
	return &batchHashJoin{
		node: n, left: l, right: r,
		conds: conds,
		merge: newJoinMerge(ctx, n.Left.Tables, n.Right.Tables),
	}, nil
}

func (h *batchHashJoin) Open(ctx *Ctx) (err error) {
	// A failed Open must leave the join releasable: drop the build arena and
	// table so Close after the failure frees memory instead of retaining a
	// half-initialized hash table.
	defer func() {
		if err != nil {
			h.rows, h.table = nil, nil
		}
	}()
	rows, err := drainBatch(ctx, h.node.Right, h.right)
	if err != nil {
		return err
	}
	// vecTable chains rows with int32 links; a build side at or beyond 2^31
	// rows would silently wrap into corruption, so refuse it with a typed
	// resource error before building.
	if err = checkVecBuildSize(len(rows)); err != nil {
		return err
	}
	if err = ctx.charge(int64(len(rows))); err != nil {
		return err
	}
	h.rows = rows
	h.table = buildVecTable(ctx, rows, h.conds, ctx.ExecWorkers)
	// CHECK: the inner sub-plan is fully materialized; report its exact
	// cardinality (paper Figure 10a).
	if err = checkpoint(ctx, h.node.Right, rows); err != nil {
		return err
	}
	if err = h.left.Open(ctx); err != nil {
		return err
	}
	h.probe, h.pi, h.chain = nil, 0, -1
	h.charges = pendingCharger{}
	h.count = 0
	return nil
}

func (h *batchHashJoin) NextBatch(ctx *Ctx) (*Batch, error) {
	h.out.reset(h.merge.width)
	for {
		// walk the current probe row's candidate chain
		if h.chain != -1 {
			probeRow := h.probe.Row(h.pi - 1)
			for h.chain != -1 {
				r := h.chain
				h.chain = h.table.next[r]
				h.charges.add(1)
				if err := h.charges.flushIfFull(ctx); err != nil {
					return nil, err
				}
				row := h.rows[r]
				if !condsEqual(h.conds, probeRow, row) {
					continue // hash collision
				}
				h.merge.mergeFlat(h.out.pushRow(), probeRow, row)
				h.count++
				if h.out.full() {
					if err := h.charges.flush(ctx); err != nil {
						return nil, err
					}
					return &h.out, nil
				}
			}
		}
		// advance within the current probe batch
		if h.probe != nil && h.pi < h.probe.n {
			row := h.probe.Row(h.pi)
			h.pi++
			h.charges.add(1)
			h.chain = h.table.lookup(hashRowConds(row, h.conds, true))
			continue
		}
		// pull the next probe batch; settle our charges first so work
		// stays monotone against the child's own lumps
		if err := h.charges.flush(ctx); err != nil {
			return nil, err
		}
		b, err := h.left.NextBatch(ctx)
		if err != nil {
			return nil, err
		}
		if b == nil {
			h.node.TrueCard = float64(h.count)
			if h.out.n > 0 {
				return &h.out, nil
			}
			return nil, nil
		}
		h.probe, h.pi = b, 0
	}
}

func (h *batchHashJoin) Close() {
	h.left.Close()
	h.right.Close()
	h.rows, h.table = nil, nil
}

// batchMergeJoin sorts both drained inputs during Open (two pipeline
// breakers, each with a checkpoint) and emits the cross product of matching
// key groups batch-at-a-time.
type batchMergeJoin struct {
	node  *plan.Node
	left  BatchOperator
	right BatchOperator

	conds []condOffsets
	merge joinMerge

	lrows, rrows [][]int64
	li, ri       int

	groupL, groupR [][]int64
	gi, gj         int

	charges pendingCharger
	out     Batch
	count   int
}

func newBatchMergeJoin(ctx *Ctx, n *plan.Node) (*batchMergeJoin, error) {
	l, err := BuildBatch(ctx, n.Left)
	if err != nil {
		return nil, err
	}
	r, err := BuildBatch(ctx, n.Right)
	if err != nil {
		return nil, err
	}
	conds, err := resolveConds(ctx, n.JoinConds, n.Left.Tables, n.Right.Tables)
	if err != nil {
		return nil, err
	}
	return &batchMergeJoin{
		node: n, left: l, right: r,
		conds: conds,
		merge: newJoinMerge(ctx, n.Left.Tables, n.Right.Tables),
	}, nil
}

func (m *batchMergeJoin) Open(ctx *Ctx) (err error) {
	// Release both sorted buffers if any Open step fails, mirroring
	// batchHashJoin: Close after a failed Open must not retain arenas.
	defer func() {
		if err != nil {
			m.lrows, m.rrows = nil, nil
		}
	}()
	m.lrows, err = drainBatch(ctx, m.node.Left, m.left)
	if err != nil {
		return err
	}
	if err := ctx.charge(sortCost(len(m.lrows))); err != nil {
		return err
	}
	sort.Slice(m.lrows, func(i, j int) bool { return condsLess(m.conds, m.lrows[i], m.lrows[j], true) })
	// CHECK after the outer sort completes (paper Figure 10b).
	if err := checkpoint(ctx, m.node.Left, m.lrows); err != nil {
		return err
	}

	m.rrows, err = drainBatch(ctx, m.node.Right, m.right)
	if err != nil {
		return err
	}
	if err := ctx.charge(sortCost(len(m.rrows))); err != nil {
		return err
	}
	sort.Slice(m.rrows, func(i, j int) bool { return condsLess(m.conds, m.rrows[i], m.rrows[j], false) })
	// CHECK after the inner sort completes.
	if err := checkpoint(ctx, m.node.Right, m.rrows); err != nil {
		return err
	}

	m.li, m.ri = 0, 0
	m.groupL, m.groupR = nil, nil
	m.gi, m.gj = 0, 0
	m.charges = pendingCharger{}
	m.count = 0
	return nil
}

func (m *batchMergeJoin) NextBatch(ctx *Ctx) (*Batch, error) {
	m.out.reset(m.merge.width)
	for {
		// emit the cross product of the current key group
		if m.gi < len(m.groupL) {
			l := m.groupL[m.gi]
			r := m.groupR[m.gj]
			m.gj++
			if m.gj >= len(m.groupR) {
				m.gj = 0
				m.gi++
			}
			m.charges.add(1)
			m.merge.mergeFlat(m.out.pushRow(), l, r)
			m.count++
			if m.out.full() {
				if err := m.charges.flush(ctx); err != nil {
					return nil, err
				}
				return &m.out, nil
			}
			continue
		}
		// advance to the next matching key group
		if m.li >= len(m.lrows) || m.ri >= len(m.rrows) {
			if err := m.charges.flush(ctx); err != nil {
				return nil, err
			}
			m.node.TrueCard = float64(m.count)
			if m.out.n > 0 {
				return &m.out, nil
			}
			return nil, nil
		}
		m.charges.add(1)
		if err := m.charges.flushIfFull(ctx); err != nil {
			return nil, err
		}
		switch condsCompare(m.conds, m.lrows[m.li], m.rrows[m.ri]) {
		case -1:
			m.li++
		case 1:
			m.ri++
		default:
			l0, r0 := m.li, m.ri
			for m.li < len(m.lrows) && condsSameKey(m.conds, m.lrows[l0], m.lrows[m.li], true) {
				m.li++
			}
			for m.ri < len(m.rrows) && condsSameKey(m.conds, m.rrows[r0], m.rrows[m.ri], false) {
				m.ri++
			}
			m.groupL = m.lrows[l0:m.li]
			m.groupR = m.rrows[r0:m.ri]
			m.gi, m.gj = 0, 0
		}
	}
}

func (m *batchMergeJoin) Close() {
	m.left.Close()
	m.right.Close()
	m.lrows, m.rrows = nil, nil
}

// batchNLJoin is the vectorized nested loop join. As in the scalar nlJoin
// (paper Figure 10c), the outer side is always materialized with a
// checkpoint; the inner either probes a base table's hash index per outer
// row or rescans a materialized buffer.
type batchNLJoin struct {
	node  *plan.Node
	left  BatchOperator
	right BatchOperator // nil on the index path

	conds []condOffsets
	merge joinMerge

	outer [][]int64
	oi    int

	// index path
	idxTable   *storage.Table
	idxCol     int
	idxCondOff int
	idxMatches []int32
	mi         int
	innerBuf   Tuple

	// rescan path
	inner [][]int64
	ii    int

	charges pendingCharger
	out     Batch
	count   int
}

func newBatchNLJoin(ctx *Ctx, n *plan.Node) (*batchNLJoin, error) {
	l, err := BuildBatch(ctx, n.Left)
	if err != nil {
		return nil, err
	}
	conds, err := resolveConds(ctx, n.JoinConds, n.Left.Tables, n.Right.Tables)
	if err != nil {
		return nil, err
	}
	j := &batchNLJoin{
		node: n, left: l,
		conds: conds,
		merge: newJoinMerge(ctx, n.Left.Tables, n.Right.Tables),
	}
	// Index path selection mirrors newNLJoin exactly.
	if n.Right.IsLeaf() && n.Right.Op != plan.MatScan && len(conds) > 0 {
		j.idxTable = ctx.DB.Table(n.Right.Table)
		j.idxCol = conds[0].rightOff
		j.idxCondOff = conds[0].leftOff
		j.innerBuf = make(Tuple, len(n.Right.Table.Columns))
		return j, nil
	}
	r, err := BuildBatch(ctx, n.Right)
	if err != nil {
		return nil, err
	}
	j.right = r
	return j, nil
}

func (j *batchNLJoin) Open(ctx *Ctx) (err error) {
	// Release both materialized sides if any Open step fails, mirroring
	// batchHashJoin.
	defer func() {
		if err != nil {
			j.outer, j.inner = nil, nil
		}
	}()
	// Materialize the outer side and CHECK it (paper Figure 10c).
	rows, err := drainBatch(ctx, j.node.Left, j.left)
	if err != nil {
		return err
	}
	j.outer = rows
	if err = checkpoint(ctx, j.node.Left, rows); err != nil {
		return err
	}
	if j.idxTable == nil {
		j.inner, err = drainBatch(ctx, j.node.Right, j.right)
		if err != nil {
			return err
		}
		if err = checkpoint(ctx, j.node.Right, j.inner); err != nil {
			return err
		}
	}
	j.oi, j.ii, j.mi = 0, 0, 0
	j.idxMatches = nil
	j.charges = pendingCharger{}
	j.count = 0
	return nil
}

func (j *batchNLJoin) NextBatch(ctx *Ctx) (*Batch, error) {
	j.out.reset(j.merge.width)
	if j.idxTable != nil {
		return j.nextIndexBatch(ctx)
	}
	return j.nextRescanBatch(ctx)
}

func (j *batchNLJoin) nextIndexBatch(ctx *Ctx) (*Batch, error) {
	for {
		for j.mi < len(j.idxMatches) {
			r := int(j.idxMatches[j.mi])
			j.mi++
			j.charges.add(1)
			if err := j.charges.flushIfFull(ctx); err != nil {
				return nil, err
			}
			if !rowMatches(j.idxTable, r, j.node.Right.Preds) {
				continue
			}
			for c := range j.innerBuf {
				j.innerBuf[c] = j.idxTable.Cols[c][r]
			}
			cur := j.outer[j.oi-1]
			// the index probe only guarantees the first condition; the
			// inner tuple is a bare table row, whose single-table layout
			// starts at 0, so condsEqual applies directly
			if !condsEqual(j.conds, cur, j.innerBuf) {
				continue
			}
			j.merge.mergeFlat(j.out.pushRow(), cur, j.innerBuf)
			j.count++
			if j.out.full() {
				if err := j.charges.flush(ctx); err != nil {
					return nil, err
				}
				return &j.out, nil
			}
		}
		if j.oi >= len(j.outer) {
			if err := j.charges.flush(ctx); err != nil {
				return nil, err
			}
			j.node.TrueCard = float64(j.count)
			if j.out.n > 0 {
				return &j.out, nil
			}
			return nil, nil
		}
		cur := j.outer[j.oi]
		j.oi++
		j.charges.add(2) // index probe
		j.idxMatches = j.idxTable.HashIndex(j.idxCol).Lookup(cur[j.idxCondOff])
		j.mi = 0
	}
}

func (j *batchNLJoin) nextRescanBatch(ctx *Ctx) (*Batch, error) {
	for {
		if j.oi >= len(j.outer) {
			if err := j.charges.flush(ctx); err != nil {
				return nil, err
			}
			j.node.TrueCard = float64(j.count)
			if j.out.n > 0 {
				return &j.out, nil
			}
			return nil, nil
		}
		cur := j.outer[j.oi]
		for j.ii < len(j.inner) {
			row := j.inner[j.ii]
			j.ii++
			j.charges.add(1)
			if err := j.charges.flushIfFull(ctx); err != nil {
				return nil, err
			}
			if !condsEqual(j.conds, cur, row) {
				continue
			}
			j.merge.mergeFlat(j.out.pushRow(), cur, row)
			j.count++
			if j.out.full() {
				if err := j.charges.flush(ctx); err != nil {
					return nil, err
				}
				return &j.out, nil
			}
		}
		j.ii = 0
		j.oi++
	}
}

func (j *batchNLJoin) Close() {
	j.left.Close()
	if j.right != nil {
		j.right.Close()
	}
	j.outer, j.inner = nil, nil
}
