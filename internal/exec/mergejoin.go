package exec

import (
	"sort"

	"github.com/lpce-db/lpce/internal/plan"
)

// mergeJoin sorts both inputs during Open — two pipeline breakers, each
// with a checkpoint, matching Figure 10(b) of the paper — then merges the
// sorted runs, emitting the cross product of each matching key group.
type mergeJoin struct {
	node  *plan.Node
	left  Operator
	right Operator

	conds []condOffsets
	merge joinMerge

	lrows, rrows [][]int64
	li, ri       int

	// current matching group cross-product state
	groupL, groupR [][]int64
	gi, gj         int

	out   Tuple
	count int
}

func newMergeJoin(ctx *Ctx, n *plan.Node) (*mergeJoin, error) {
	l, err := Build(ctx, n.Left)
	if err != nil {
		return nil, err
	}
	r, err := Build(ctx, n.Right)
	if err != nil {
		return nil, err
	}
	conds, err := resolveConds(ctx, n.JoinConds, n.Left.Tables, n.Right.Tables)
	if err != nil {
		return nil, err
	}
	return &mergeJoin{
		node: n, left: l, right: r,
		conds: conds,
		merge: newJoinMerge(ctx, n.Left.Tables, n.Right.Tables),
	}, nil
}

func (m *mergeJoin) Open(ctx *Ctx) error {
	var err error
	m.lrows, err = drain(ctx, m.node.Left, m.left)
	if err != nil {
		return err
	}
	// charge the sort: n log n comparisons
	if err := ctx.charge(sortCost(len(m.lrows))); err != nil {
		return err
	}
	sort.Slice(m.lrows, func(i, j int) bool { return m.less(m.lrows[i], m.lrows[j], true) })
	// CHECK after the outer sort completes (paper Figure 10b).
	if err := checkpoint(ctx, m.node.Left, m.lrows); err != nil {
		return err
	}

	m.rrows, err = drain(ctx, m.node.Right, m.right)
	if err != nil {
		return err
	}
	if err := ctx.charge(sortCost(len(m.rrows))); err != nil {
		return err
	}
	sort.Slice(m.rrows, func(i, j int) bool { return m.less(m.rrows[i], m.rrows[j], false) })
	// CHECK after the inner sort completes.
	if err := checkpoint(ctx, m.node.Right, m.rrows); err != nil {
		return err
	}

	m.li, m.ri = 0, 0
	m.groupL, m.groupR = nil, nil
	m.gi, m.gj = 0, 0
	m.count = 0
	return nil
}

func sortCost(n int) int64 {
	if n <= 1 {
		return 1
	}
	c := int64(n)
	bits := int64(0)
	for x := n; x > 1; x >>= 1 {
		bits++
	}
	return c * bits
}

func (m *mergeJoin) less(a, b Tuple, left bool) bool {
	return condsLess(m.conds, a, b, left)
}

// cmpKeys compares a left tuple's key with a right tuple's key.
func (m *mergeJoin) cmpKeys(l, r Tuple) int {
	return condsCompare(m.conds, l, r)
}

func (m *mergeJoin) Next(ctx *Ctx) (Tuple, bool, error) {
	for {
		// emit the cross product of the current key group
		if m.gi < len(m.groupL) {
			l := m.groupL[m.gi]
			r := m.groupR[m.gj]
			m.gj++
			if m.gj >= len(m.groupR) {
				m.gj = 0
				m.gi++
			}
			if err := ctx.charge(1); err != nil {
				return nil, false, err
			}
			m.out = m.merge.merge(m.out, l, r)
			m.count++
			return m.out, true, nil
		}
		// advance to the next matching key group
		if m.li >= len(m.lrows) || m.ri >= len(m.rrows) {
			m.node.TrueCard = float64(m.count)
			return nil, false, nil
		}
		if err := ctx.charge(1); err != nil {
			return nil, false, err
		}
		switch m.cmpKeys(m.lrows[m.li], m.rrows[m.ri]) {
		case -1:
			m.li++
		case 1:
			m.ri++
		default:
			// collect both key groups
			l0, r0 := m.li, m.ri
			for m.li < len(m.lrows) && m.sameKeySide(m.lrows[l0], m.lrows[m.li], true) {
				m.li++
			}
			for m.ri < len(m.rrows) && m.sameKeySide(m.rrows[r0], m.rrows[m.ri], false) {
				m.ri++
			}
			m.groupL = m.lrows[l0:m.li]
			m.groupR = m.rrows[r0:m.ri]
			m.gi, m.gj = 0, 0
		}
	}
}

func (m *mergeJoin) sameKeySide(a, b Tuple, left bool) bool {
	return condsSameKey(m.conds, a, b, left)
}

func (m *mergeJoin) Close() {
	m.left.Close()
	m.right.Close()
	m.lrows, m.rrows = nil, nil
}
