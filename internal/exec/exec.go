// Package exec implements the Volcano-style pipelined execution engine. It
// mirrors the PostgreSQL behaviours the paper depends on (§6):
//
//   - pipelined processing: tuples flow through operators without
//     materialization except at pipeline breakers;
//   - pipeline breakers that buffer tuples: the build side of a hash join,
//     both sorted inputs of a merge join, and (added by the paper, Figure
//     10c) the outer side of a nested loop join;
//   - checkpoints at those breakers: when a sub-plan's output has been
//     fully buffered its exact cardinality is known, and a controller is
//     notified so it can compare the actual cardinality against the
//     optimizer's estimate and trigger re-optimization.
//
// Every operator counts its output rows, so a completed execution leaves
// exact cardinalities (the paper's EXPLAIN ANALYZE counters) on the plan.
package exec

import (
	"context"
	"errors"
	"fmt"

	"github.com/lpce-db/lpce/internal/obs"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
)

// Tuple is one intermediate-result row: the concatenated columns of the
// covered tables in ascending local-index order (see plan.Layout).
type Tuple = []int64

// ErrBudget is returned when a query exceeds the context's work budget; the
// engine reports such queries as timeouts instead of running pathological
// plans for hours.
var ErrBudget = errors.New("exec: work budget exceeded")

// ResourceError reports that one query exceeded a per-query resource budget
// (materialized intermediate rows, re-optimization replans). It fails only
// the offending query — never the process or the worker pool — so callers
// match it with errors.As and degrade gracefully.
type ResourceError struct {
	Resource string // "materialized-rows" or "replans"
	Limit    int64
	Used     int64
}

func (e *ResourceError) Error() string {
	return fmt.Sprintf("exec: %s budget exceeded (limit %d, used %d)", e.Resource, e.Limit, e.Used)
}

// cancelPollInterval is how many work units pass between cooperative
// cancellation checks. Every scan and join inner loop charges work per
// tuple, so polling the context once per interval bounds the cancellation
// latency to the time of ~1k tuple operations while keeping the per-tuple
// overhead negligible.
const cancelPollInterval = 1024

// ReoptSignal is returned through the operator stack when the controller
// decides to pause execution and re-optimize. It is an error value so it
// unwinds the pipelined iterators without extra plumbing.
type ReoptSignal struct {
	Node   *plan.Node // sub-plan whose materialization triggered the signal
	Actual int        // exact cardinality observed
}

func (r *ReoptSignal) Error() string {
	return fmt.Sprintf("exec: re-optimization requested at %v (est %.0f, actual %d)",
		r.Node.Op, r.Node.EstCard, r.Actual)
}

// Controller observes materialization checkpoints. OnMaterialized may
// retain rows (they are not reused by the executor) and may return a
// *ReoptSignal to pause execution.
type Controller interface {
	OnMaterialized(node *plan.Node, rows [][]int64) error
}

// NopController ignores all checkpoints (plain PostgreSQL behaviour).
type NopController struct{}

// OnMaterialized implements Controller.
func (NopController) OnMaterialized(*plan.Node, [][]int64) error { return nil }

// WrapFunc intercepts operator construction: Build applies it to every
// operator it creates (outermost, above the tracing shim). The
// fault-injection harness uses it to wrap chosen operators with injected
// errors and stalls; a nil WrapFunc costs one pointer check per Build call.
type WrapFunc func(ctx *Ctx, op Operator, n *plan.Node) Operator

// Ctx carries the per-execution state shared by all operators.
type Ctx struct {
	DB         *storage.Database
	Q          *query.Query
	Controller Controller
	// Trace, when non-nil, collects per-operator runtime stats (rows,
	// estimated vs actual cardinality, inclusive wall time) for this
	// execution attempt: Build wraps every operator in a timing shim. A nil
	// Trace leaves the operator tree untouched, so disabled tracing costs
	// nothing.
	Trace *obs.ExecTrace
	// Context, when non-nil, cancels execution cooperatively: every operator
	// inner loop charges work, and charge polls the context once per
	// cancelPollInterval units, unwinding with the context's error (deadline
	// or caller cancellation) mid-pipeline.
	Context context.Context
	// Wrap, when non-nil, is applied to every operator Build constructs.
	Wrap WrapFunc
	// Budget bounds the total work units (tuples scanned, probed, emitted);
	// zero means unlimited.
	Budget int64
	// MaxMatRows bounds the total tuples buffered by pipeline breakers
	// (hash-join builds, merge-join sorts, nested-loop materializations)
	// across the whole execution; exceeding it fails the query with a
	// *ResourceError. Zero means unlimited.
	MaxMatRows int64
	// Metrics, when non-nil, receives the storage-layer scan counters
	// (storage.segments_total, storage.segments_skipped,
	// storage.bytes_decoded). Scans resolve their counters once in Open, so
	// a nil registry costs nothing on the per-batch paths.
	Metrics *obs.Registry
	// RawScan forces batch scans to bypass the encoded segment layer and
	// read the flat columns directly — the oracle escape hatch for the
	// zone-map/compression machinery. Results are byte-identical either
	// way; only wall time and the storage metrics differ.
	RawScan bool
	// ExecWorkers enables morsel-driven intra-query parallelism on the batch
	// path: RunBatch and drainBatch wrap eligible pipelines in an
	// order-preserving exchange running up to ExecWorkers goroutines. Values
	// <= 1 keep execution strictly serial. Results are byte-identical for any
	// worker count (see exchange.go).
	ExecWorkers int
	work        int64
	matRows     int64
	nextPoll    int64
	// rec, when non-nil, marks this Ctx as a morsel worker's replica context:
	// charge records work into the recorder instead of mutating budget state,
	// and the exchange coordinator replays the recorded amounts on the real
	// Ctx in deterministic morsel order.
	rec *morselRecorder
	// buildHashes and buildTails recycle buildVecTable's scratch across the
	// hash-join builds of one execution (a multi-join plan builds one table
	// per hash join), like the exchange's arena free-list. Builds all run on
	// the goroutine executing pipeline-breaker Opens — replica contexts
	// (rec != nil) never build — so take/put need no lock.
	buildHashes []uint64
	buildTails  []int32
	// layouts memoizes plan.NewLayout per table subset: every join node
	// resolves left/right/output layouts, and without the cache plan
	// construction recomputes the same layouts once per node per helper
	// (O(nodes × layout width)). A Ctx belongs to one execution of one
	// query on one goroutine, so no lock is needed.
	layouts map[query.BitSet]*plan.Layout
}

// Layout returns the memoized tuple layout for the subset mask of the
// context's query.
func (c *Ctx) Layout(mask query.BitSet) *plan.Layout {
	if l, ok := c.layouts[mask]; ok {
		return l
	}
	if c.layouts == nil {
		c.layouts = make(map[query.BitSet]*plan.Layout, 8)
	}
	l := plan.NewLayout(c.Q, mask)
	c.layouts[mask] = l
	return l
}

// takeBuildHashes steals the recycled hash scratch buffer, allocating only
// when the previous build was smaller. Contents are stale; buildVecTable
// overwrites every element before reading.
func (c *Ctx) takeBuildHashes(n int) []uint64 {
	b := c.buildHashes
	if cap(b) < n {
		b = make([]uint64, n)
	}
	c.buildHashes = nil
	return b[:n]
}

// putBuildHashes returns the hash scratch for the next build to steal.
func (c *Ctx) putBuildHashes(b []uint64) { c.buildHashes = b }

// takeBuildTails steals the recycled chain-tail scratch (slot-indexed; see
// vecTable.insert for why stale contents are harmless).
func (c *Ctx) takeBuildTails(n int) []int32 {
	b := c.buildTails
	if cap(b) < n {
		b = make([]int32, n)
	}
	c.buildTails = nil
	return b[:n]
}

// putBuildTails returns the chain-tail scratch for the next build to steal.
func (c *Ctx) putBuildTails(b []int32) { c.buildTails = b }

// charge consumes n work units, failing when the budget is exhausted or the
// context is cancelled. On a morsel worker's replica context the units are
// recorded instead, to be replayed serially by the exchange coordinator.
func (c *Ctx) charge(n int64) error {
	if c.rec != nil {
		return c.rec.charge(n)
	}
	c.work += n
	if c.Budget > 0 && c.work > c.Budget {
		return ErrBudget
	}
	if c.Context != nil && c.work >= c.nextPoll {
		c.nextPoll = c.work + cancelPollInterval
		if err := c.Context.Err(); err != nil {
			return err
		}
	}
	return nil
}

// chargeMat accounts one materialized row against the buffered-rows budget.
func (c *Ctx) chargeMat() error {
	c.matRows++
	if c.MaxMatRows > 0 && c.matRows > c.MaxMatRows {
		return &ResourceError{Resource: "materialized-rows", Limit: c.MaxMatRows, Used: c.matRows}
	}
	return nil
}

// chargeMatN accounts n materialized rows at once — the batch path's
// counterpart of chargeMat. When the lump would cross the limit it stops at
// the first exceeding row, so the counter and the *ResourceError payload are
// identical to n scalar chargeMat calls.
func (c *Ctx) chargeMatN(n int64) error {
	if c.MaxMatRows > 0 && c.matRows+n > c.MaxMatRows {
		c.matRows = c.MaxMatRows + 1
		return &ResourceError{Resource: "materialized-rows", Limit: c.MaxMatRows, Used: c.matRows}
	}
	c.matRows += n
	return nil
}

// MatRows reports the total rows buffered by pipeline breakers so far.
func (c *Ctx) MatRows() int64 { return c.matRows }

// Work reports the consumed work units, a deterministic proxy for execution
// effort used by tests.
func (c *Ctx) Work() int64 { return c.work }

// Operator is the Volcano iterator interface.
type Operator interface {
	Open(ctx *Ctx) error
	Next(ctx *Ctx) (Tuple, bool, error)
	Close()
}

// Build constructs the operator tree for a physical plan. With ctx.Trace
// set, every operator (this node and, through the recursive constructor
// calls, all children) is wrapped in a stats-collecting shim.
func Build(ctx *Ctx, n *plan.Node) (Operator, error) {
	var op Operator
	var err error
	switch n.Op {
	case plan.SeqScan:
		op = newSeqScan(ctx, n)
	case plan.IndexScan:
		op, err = newIndexScan(ctx, n)
	case plan.MatScan:
		op = newMatScan(n)
	case plan.HashJoin:
		op, err = newHashJoin(ctx, n)
	case plan.MergeJoin:
		op, err = newMergeJoin(ctx, n)
	case plan.NestLoopJoin:
		op, err = newNLJoin(ctx, n)
	default:
		return nil, fmt.Errorf("exec: unknown operator %v", n.Op)
	}
	if err != nil {
		return nil, err
	}
	if ctx.Trace != nil {
		op = &tracedOp{inner: op, node: n, tr: ctx.Trace}
	}
	if ctx.Wrap != nil {
		op = ctx.Wrap(ctx, op, n)
	}
	return op, nil
}

// Run executes the plan and returns the COUNT(*) result. On a
// *ReoptSignal or ErrBudget the error is returned with the rows counted so
// far discarded.
func Run(ctx *Ctx, root *plan.Node) (int, error) {
	op, err := Build(ctx, root)
	if err != nil {
		return 0, err
	}
	defer op.Close()
	if err := op.Open(ctx); err != nil {
		return 0, err
	}
	count := 0
	for {
		_, ok, err := op.Next(ctx)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		count++
	}
	root.TrueCard = float64(count)
	return count, nil
}

// drain pulls every tuple from a child operator into a buffer, counting
// work, and stamps the child's true cardinality. It is the shared
// materialization routine of the pipeline breakers.
func drain(ctx *Ctx, node *plan.Node, op Operator) ([][]int64, error) {
	// Close the child on every exit, not just the clean one: a budget or
	// cancellation error mid-drain must still tear down the child's own
	// subtree. Operators tolerate the caller's second Close.
	defer op.Close()
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	var rows [][]int64
	for {
		t, ok, err := op.Next(ctx)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		// materialization cost scales with tuple width, which also keeps
		// the work budget an effective bound on buffered memory
		if err := ctx.charge(1 + int64(len(t))/4); err != nil {
			return nil, err
		}
		if err := ctx.chargeMat(); err != nil {
			return nil, err
		}
		cp := make([]int64, len(t))
		copy(cp, t)
		rows = append(rows, cp)
	}
	node.TrueCard = float64(len(rows))
	return rows, nil
}

// checkpoint reports a completed materialization to the controller.
func checkpoint(ctx *Ctx, node *plan.Node, rows [][]int64) error {
	if ctx.Controller == nil {
		return nil
	}
	return ctx.Controller.OnMaterialized(node, rows)
}

// joinMerge precomputes how to stitch a left tuple and a right tuple into
// the output layout (tables in ascending local-index order).
type joinMerge struct {
	width int
	segs  []mergeSeg
}

type mergeSeg struct {
	fromLeft bool
	srcOff   int
	dstOff   int
	n        int
}

func newJoinMerge(ctx *Ctx, left, right query.BitSet) joinMerge {
	q := ctx.Q
	leftLayout := ctx.Layout(left)
	rightLayout := ctx.Layout(right)
	out := ctx.Layout(left.Union(right))
	var m joinMerge
	m.width = out.Width()
	for _, i := range left.Union(right).Indices() {
		n := len(q.Tables[i].Columns)
		if left.Has(i) {
			m.segs = append(m.segs, mergeSeg{true, leftLayout.TableOffset(i), out.TableOffset(i), n})
		} else {
			m.segs = append(m.segs, mergeSeg{false, rightLayout.TableOffset(i), out.TableOffset(i), n})
		}
	}
	return m
}

func (m joinMerge) merge(dst, l, r Tuple) Tuple {
	if cap(dst) < m.width {
		dst = make(Tuple, m.width)
	}
	dst = dst[:m.width]
	m.mergeFlat(dst, l, r)
	return dst
}

// mergeFlat stitches l and r into dst, which must already have the output
// width — the allocation-free variant the batch operators use to write
// straight into a batch arena.
func (m joinMerge) mergeFlat(dst, l, r []int64) {
	for _, s := range m.segs {
		src := r
		if s.fromLeft {
			src = l
		}
		copy(dst[s.dstOff:s.dstOff+s.n], src[s.srcOff:s.srcOff+s.n])
	}
}

// condOffsets resolves a join condition's column offsets relative to the
// left and right child layouts, swapping sides if needed.
type condOffsets struct {
	leftOff, rightOff int
}

func resolveConds(ctx *Ctx, conds []query.Join, left, right query.BitSet) ([]condOffsets, error) {
	q := ctx.Q
	leftLayout := ctx.Layout(left)
	rightLayout := ctx.Layout(right)
	out := make([]condOffsets, len(conds))
	for i, c := range conds {
		li, ri := q.TableIndex(c.Left.Table), q.TableIndex(c.Right.Table)
		switch {
		case left.Has(li) && right.Has(ri):
			out[i] = condOffsets{leftLayout.ColOffset(c.Left), rightLayout.ColOffset(c.Right)}
		case left.Has(ri) && right.Has(li):
			out[i] = condOffsets{leftLayout.ColOffset(c.Right), rightLayout.ColOffset(c.Left)}
		default:
			return nil, fmt.Errorf("exec: join condition %v does not span children", c)
		}
	}
	return out, nil
}

// hashKey mixes the join-key values of a tuple into a single hash; matches
// are verified value-by-value so collisions only cost time.
func hashKey(vals []int64) uint64 {
	var h uint64 = 14695981039346656037
	for _, v := range vals {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

// hashRowConds hashes a tuple's join-key columns in place — bit-identical
// to hashKey over the gathered key, without materializing it.
func hashRowConds(row []int64, conds []condOffsets, left bool) uint64 {
	var h uint64 = 14695981039346656037
	for _, c := range conds {
		off := c.rightOff
		if left {
			off = c.leftOff
		}
		h ^= uint64(row[off])
		h *= 1099511628211
	}
	return h
}

// condsEqual reports whether a left and a right tuple agree on every join
// condition.
func condsEqual(conds []condOffsets, l, r []int64) bool {
	for _, c := range conds {
		if l[c.leftOff] != r[c.rightOff] {
			return false
		}
	}
	return true
}

// condsLess orders tuples of one side by their join-key columns.
func condsLess(conds []condOffsets, a, b Tuple, left bool) bool {
	for _, c := range conds {
		off := c.rightOff
		if left {
			off = c.leftOff
		}
		if a[off] != b[off] {
			return a[off] < b[off]
		}
	}
	return false
}

// condsCompare compares a left tuple's key with a right tuple's key.
func condsCompare(conds []condOffsets, l, r Tuple) int {
	for _, c := range conds {
		lv, rv := l[c.leftOff], r[c.rightOff]
		if lv < rv {
			return -1
		}
		if lv > rv {
			return 1
		}
	}
	return 0
}

// condsSameKey reports whether two tuples of the same side share a join key.
func condsSameKey(conds []condOffsets, a, b Tuple, left bool) bool {
	for _, c := range conds {
		off := c.rightOff
		if left {
			off = c.leftOff
		}
		if a[off] != b[off] {
			return false
		}
	}
	return true
}
