package exec

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// The parallel build side must be bitwise identical to the serial build for
// every worker count: same slot placement, same occupied-slot hashes, same
// equal-hash chain order. These tests sweep workers ∈ {1, 2, 4, 8} (the same
// grid as the exchange equivalence suite) over varied sizes and key skews,
// with morselSize shrunk so modest inputs clear the parallel cutoff, plus a
// crafted partition-overflow input that forces the global-probing fallback
// on serial and parallel builds alike.

// buildConds is the single-key join condition every build test hashes on.
var buildConds = []condOffsets{{0, 0}}

// TestBuildEquivalenceWorkerCounts sweeps buildVecTable over sizes and key
// distributions — heavy duplicate chains through mostly-distinct keys — and
// requires each parallel worker count to reproduce the serial layout bit for
// bit.
func TestBuildEquivalenceWorkerCounts(t *testing.T) {
	shrinkMorsels(t)
	sizes := []int{300, 1000, 4096, 20000}
	keySpaces := []int{4, 64, 1 << 12, 1 << 30}
	for _, n := range sizes {
		for _, ks := range keySpaces {
			rows := hashBuildRows(n, ks)
			serial := buildVecTable(&Ctx{}, rows, buildConds, 1)
			for _, w := range parallelWorkerCounts {
				got := buildVecTable(&Ctx{}, rows, buildConds, w)
				if !vecTablesEqual(serial, got) {
					t.Fatalf("n=%d keySpace=%d w=%d: layout differs from serial", n, ks, w)
				}
			}
		}
	}
}

// TestBuildEquivalenceChainOrder cross-checks the layout equality with the
// semantic ground truth: for every distinct hash, the chain reached through
// lookup lists exactly the rows carrying that hash, in build row order.
func TestBuildEquivalenceChainOrder(t *testing.T) {
	shrinkMorsels(t)
	rows := hashBuildRows(5000, 32)
	want := map[uint64][]int32{}
	for i, row := range rows {
		h := hashRowConds(row, buildConds, false)
		want[h] = append(want[h], int32(i))
	}
	for _, w := range parallelWorkerCounts {
		tbl := buildVecTable(&Ctx{}, rows, buildConds, w)
		for h, exp := range want {
			var got []int32
			for r := tbl.lookup(h); r != -1; r = tbl.next[r] {
				got = append(got, r)
			}
			if len(got) != len(exp) {
				t.Fatalf("w=%d hash %x: chain len %d, want %d", w, h, len(got), len(exp))
			}
			for i := range exp {
				if got[i] != exp[i] {
					t.Fatalf("w=%d hash %x: chain[%d]=%d, want %d", w, h, i, got[i], exp[i])
				}
			}
		}
	}
}

// overflowRows fabricates n rows with distinct hashes that all home in the
// first probe partition of the table buildVecTable would size for them — so
// any n above vecPartSlots overflows that partition and forces the
// global-probing rebuild, on the serial path and on every parallel worker
// count identically.
func overflowRows(t *testing.T, n int) [][]int64 {
	t.Helper()
	tbl := newVecTable(n)
	if tbl.partitions() < 2 {
		t.Fatalf("overflow fixture needs a partitioned table, got %d slots", tbl.mask+1)
	}
	rows := make([][]int64, 0, n)
	seen := map[uint64]bool{}
	for v := int64(0); len(rows) < n; v++ {
		row := []int64{v}
		h := hashRowConds(row, buildConds, false)
		if h&tbl.mask > tbl.partMask || seen[h] {
			continue
		}
		seen[h] = true
		rows = append(rows, row)
	}
	return rows
}

// TestBuildEquivalenceOverflowFallback drives a partition past vecPartSlots
// distinct hashes and checks that the fallback fires (partMask widens to the
// whole array), that every worker count lands on the identical fallback
// layout, and that chains still resolve correctly afterwards.
func TestBuildEquivalenceOverflowFallback(t *testing.T) {
	shrinkMorsels(t)
	rows := overflowRows(t, vecPartSlots+88)
	serial := buildVecTable(&Ctx{}, rows, buildConds, 1)
	if serial.partMask != serial.mask {
		t.Fatalf("expected global-probing fallback, partMask=%d mask=%d", serial.partMask, serial.mask)
	}
	for _, w := range parallelWorkerCounts {
		got := buildVecTable(&Ctx{}, rows, buildConds, w)
		if got.partMask != got.mask {
			t.Fatalf("w=%d: fallback did not fire, partMask=%d mask=%d", w, got.partMask, got.mask)
		}
		if !vecTablesEqual(serial, got) {
			t.Fatalf("w=%d: fallback layout differs from serial", w)
		}
		for i, row := range rows {
			h := hashRowConds(row, buildConds, false)
			if r := got.lookup(h); r != int32(i) {
				t.Fatalf("w=%d: lookup(row %d) = %d after fallback", w, i, r)
			}
		}
	}
}

// TestBuildEquivalenceWorkerCapClamps asserts SetExchangeWorkerCap governs
// the build side too: with the cap at 1, a workers=8 build must take the
// serial path (observable only through the layout staying equal — and, more
// directly, through not panicking under the race detector with a cap of 1
// on a contended input).
func TestBuildEquivalenceWorkerCapClamps(t *testing.T) {
	old := morselSize
	morselSize = 64
	t.Cleanup(func() { morselSize = old })
	t.Cleanup(SetExchangeWorkerCap(1))
	rows := hashBuildRows(5000, 16)
	serial := buildVecTable(&Ctx{}, rows, buildConds, 1)
	got := buildVecTable(&Ctx{}, rows, buildConds, 8)
	if !vecTablesEqual(serial, got) {
		t.Fatal("capped build differs from serial")
	}
}

// TestBuildEquivalenceNoGoroutineLeaks runs parallel builds (including an
// overflow fallback) and requires the goroutine count to return to its
// pre-build level: build workers must all exit before buildVecTable returns.
func TestBuildEquivalenceNoGoroutineLeaks(t *testing.T) {
	shrinkMorsels(t)
	before := runtime.NumGoroutine()
	rows := hashBuildRows(20000, 1<<10)
	ofRows := overflowRows(t, vecPartSlots+88)
	ctx := &Ctx{}
	for i := 0; i < 5; i++ {
		buildVecTable(ctx, rows, buildConds, 8)
		buildVecTable(ctx, ofRows, buildConds, 8)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func BenchmarkBuildVecTable(b *testing.B) {
	rows := hashBuildRows(1<<16, 1<<12)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			ctx := &Ctx{}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buildVecTable(ctx, rows, buildConds, w)
			}
		})
	}
}
