package exec

import (
	"testing"

	"github.com/lpce-db/lpce/internal/catalog"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
)

// benchDB builds a synthetic two-table join workload sized for the probe
// hot path: a build side of buildRows distinct keys and a probe side of
// probeRows rows hitting those keys round-robin, plus a filter column so
// the scan-filter benchmarks have a predicate to vectorize.
func benchDB(buildRows, probeRows int) (*storage.Database, *query.Query) {
	s := catalog.NewSchema()
	b := s.AddTable("build", catalog.PK("id"), catalog.Attr("pad"))
	p := s.AddTable("probe", catalog.FK("bid", b.Column("id")), catalog.Attr("f"))

	db := storage.NewDatabase(s)
	bt := storage.NewTable(b, buildRows)
	for i := 0; i < buildRows; i++ {
		bt.ColByName("id")[i] = int64(i)
		bt.ColByName("pad")[i] = int64(i * 3)
	}
	db.Tables[b.ID] = bt
	pt := storage.NewTable(p, probeRows)
	for i := 0; i < probeRows; i++ {
		pt.ColByName("bid")[i] = int64(i % buildRows)
		pt.ColByName("f")[i] = int64(i % 100)
	}
	db.Tables[p.ID] = pt
	bt.FinishLoad()
	pt.FinishLoad()

	q := query.New([]*catalog.Table{b, p},
		[]query.Join{{Left: p.Column("bid"), Right: b.Column("id")}}, nil)
	return db, q
}

// joinPlan builds probe ⋈ build with the probe side outer, so the hash
// join's Next loop is the measured hot path.
func joinPlan(q *query.Query) *plan.Node {
	probe := plan.NewLeaf(plan.SeqScan, q.Tables[1], 1, nil)
	build := plan.NewLeaf(plan.SeqScan, q.Tables[0], 0, nil)
	return plan.NewJoin(plan.HashJoin, probe, build, q.Joins)
}

func BenchmarkHashJoinProbe(b *testing.B) {
	db, q := benchDB(4096, 1<<16)
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(&Ctx{DB: db, Q: q}, joinPlan(q)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := RunBatch(&Ctx{DB: db, Q: q}, joinPlan(q)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// scanPlan is a single-table filtered scan: f < 50 keeps half the rows.
func scanPlan(q *query.Query) (*plan.Node, *query.Query) {
	probe := q.Tables[1]
	q2 := query.New([]*catalog.Table{probe}, nil,
		[]query.Predicate{{Col: probe.Column("f"), Op: query.OpLT, Operand: 50}})
	return plan.NewLeaf(plan.SeqScan, probe, 0, q2.Preds), q2
}

func BenchmarkScanFilter(b *testing.B) {
	db, q := benchDB(64, 1<<18)
	p, q2 := scanPlan(q)
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(&Ctx{DB: db, Q: q2}, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := RunBatch(&Ctx{DB: db, Q: q2}, p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestBatchProbeAllocsPerTuple asserts the headline allocation claim: the
// batch hash join allocates O(log n) blocks per execution (arena growth,
// hash table, batches) — amortized ~0 per tuple — while the scalar path
// allocates per build row (map growth + per-row copies). The thresholds
// are generous so the test pins the complexity class, not exact counts.
func TestBatchProbeAllocsPerTuple(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow")
	}
	db, q := benchDB(4096, 1<<15)
	scalar := testing.AllocsPerRun(5, func() {
		if _, err := Run(&Ctx{DB: db, Q: q}, joinPlan(q)); err != nil {
			t.Fatal(err)
		}
	})
	batch := testing.AllocsPerRun(5, func() {
		if _, err := RunBatch(&Ctx{DB: db, Q: q}, joinPlan(q)); err != nil {
			t.Fatal(err)
		}
	})
	// scalar allocates at least one copy per build row; batch must stay at
	// least an order of magnitude below that and well under one per tuple
	if batch >= scalar/10 {
		t.Fatalf("batch path allocates too much: %v allocs vs scalar %v", batch, scalar)
	}
	if perTuple := batch / float64(1<<15); perTuple >= 0.01 {
		t.Fatalf("batch path allocates %v per probe tuple, want ~0", perTuple)
	}
}

// TestBuildScratchRecycled asserts the build scratch (chain tails, and on
// the parallel path the row hashes) recycles through the Ctx free-list: a
// warm context's serial build allocates only the vecTable itself — struct
// plus its three arrays — while a fresh context pays for the tails scratch
// on top of that.
func TestBuildScratchRecycled(t *testing.T) {
	rows := hashBuildRows(4096, 256)
	warmCtx := &Ctx{}
	buildVecTable(warmCtx, rows, buildConds, 1)
	warm := testing.AllocsPerRun(10, func() {
		buildVecTable(warmCtx, rows, buildConds, 1)
	})
	fresh := testing.AllocsPerRun(10, func() {
		buildVecTable(&Ctx{}, rows, buildConds, 1)
	})
	if warm > 4 {
		t.Fatalf("warm build allocates %v blocks, want ≤ 4 (scratch not recycled)", warm)
	}
	if warm >= fresh {
		t.Fatalf("warm build allocates %v blocks vs fresh %v, want fewer", warm, fresh)
	}
}

// TestBuildScratchParallelReturned asserts a parallel build hands both
// scratch buffers back to its Ctx, sized for reuse by the next build in the
// same execution.
func TestBuildScratchParallelReturned(t *testing.T) {
	old := morselSize
	morselSize = 64
	t.Cleanup(func() { morselSize = old })
	t.Cleanup(SetExchangeWorkerCap(8))
	ctx := &Ctx{}
	rows := hashBuildRows(5000, 256)
	buildVecTable(ctx, rows, buildConds, 4)
	if cap(ctx.buildHashes) < len(rows) {
		t.Fatalf("hash scratch not returned: cap %d, want ≥ %d", cap(ctx.buildHashes), len(rows))
	}
	if cap(ctx.buildTails) == 0 {
		t.Fatal("tails scratch not returned")
	}
}
