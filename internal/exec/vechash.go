package exec

// vecTable is the batch hash join's open-addressing build table: a
// power-of-two array of (hash, chain-head) slots probed linearly on the
// full 64-bit key hash, with per-row chain links into the flat build arena.
// It replaces the scalar path's map[uint64][][]int64 — no per-bucket slice
// headers, no map overhead, and probes touch at most two contiguous arrays.
//
// Rows with equal full hashes (equal keys or rare 64-bit collisions) share
// one slot and are chained in build insertion order, so a probe visits
// exactly the candidates the scalar map bucket holds, in the same order —
// keeping output row order and per-candidate work charges identical.
type vecTable struct {
	mask   uint64
	hashes []uint64
	heads  []int32 // first build row per occupied slot, -1 when empty
	next   []int32 // per build row: next row with the same hash, -1 at end
}

// newVecTable sizes the table for nrows build rows at ≤50% load.
func newVecTable(nrows int) *vecTable {
	n := 2
	for n < 2*nrows {
		n <<= 1
	}
	v := &vecTable{
		mask:   uint64(n - 1),
		hashes: make([]uint64, n),
		heads:  make([]int32, n),
		next:   make([]int32, nrows),
	}
	for i := range v.heads {
		v.heads[i] = -1
	}
	return v
}

// insert links build row r under hash h. tails is caller-provided scratch
// (len == len(heads)) tracking each slot's chain tail so insertion order is
// preserved without walking the chain.
func (v *vecTable) insert(r int32, h uint64, tails []int32) {
	i := h & v.mask
	for {
		if v.heads[i] == -1 {
			v.heads[i] = r
			v.hashes[i] = h
			tails[i] = r
			v.next[r] = -1
			return
		}
		if v.hashes[i] == h {
			v.next[tails[i]] = r
			v.next[r] = -1
			tails[i] = r
			return
		}
		i = (i + 1) & v.mask
	}
}

// lookup returns the first build row whose hash equals h, or -1; the caller
// follows next[] for the rest of the chain.
func (v *vecTable) lookup(h uint64) int32 {
	i := h & v.mask
	for {
		r := v.heads[i]
		if r == -1 {
			return -1
		}
		if v.hashes[i] == h {
			return r
		}
		i = (i + 1) & v.mask
	}
}
