package exec

// vecTable is the batch hash join's open-addressing build table: a
// power-of-two array of (hash, chain-head) slots probed linearly on the
// full 64-bit key hash, with per-row chain links into the flat build arena.
// It replaces the scalar path's map[uint64][][]int64 — no per-bucket slice
// headers, no map overhead, and probes touch at most two contiguous arrays.
//
// Rows with equal full hashes (equal keys or rare 64-bit collisions) share
// one slot and are chained in build insertion order, so a probe visits
// exactly the candidates the scalar map bucket holds, in the same order —
// keeping output row order and per-candidate work charges identical.
//
// Probing is partition-bounded: the slot array is split into fixed runs of
// vecPartSlots slots, and a probe wraps within the home partition of its
// hash instead of walking the whole array. The partition geometry is a pure
// function of the table size — never of the worker count — which is what
// lets buildVecTable hand disjoint partition ranges to parallel workers
// while keeping slot placement bitwise identical to the serial build (see
// parbuild.go). A partition holds at most vecPartSlots hashes; in the rare
// case one fills up (the table is globally at most half full, so this takes
// a badly skewed hash prefix), the build re-places every row with plain
// linear probing over the whole array by setting partMask = mask. That
// fallback decision depends only on the data, so serial and parallel builds
// take it identically.
type vecTable struct {
	mask     uint64
	partMask uint64   // partition size - 1; == mask once fallen back to global probing
	hashes   []uint64 // slot hash, valid where heads[i] != -1
	heads    []int32  // first build row per occupied slot, -1 when empty
	next     []int32  // per build row: next row with the same hash, -1 at end
}

// vecPartSlots is the probe-partition granularity: a power of two, small
// enough that many partitions exist for parallel builds of interesting size,
// large enough that a partition overflow (the serial-rebuild fallback) is
// vanishingly rare at ≤50% table load.
const vecPartSlots = 512

// newVecTable sizes the table for nrows build rows at ≤50% load. Tables at
// or below vecPartSlots slots are a single partition, where partition-bounded
// probing degenerates to plain linear probing.
func newVecTable(nrows int) *vecTable {
	n := 2
	for n < 2*nrows {
		n <<= 1
	}
	pm := uint64(n - 1)
	if n > vecPartSlots {
		pm = vecPartSlots - 1
	}
	v := &vecTable{
		mask:     uint64(n - 1),
		partMask: pm,
		hashes:   make([]uint64, n),
		heads:    make([]int32, n),
		next:     make([]int32, nrows),
	}
	for i := range v.heads {
		v.heads[i] = -1
	}
	return v
}

// partitions reports how many probe partitions the slot array holds.
func (v *vecTable) partitions() int {
	return int((v.mask + 1) / (v.partMask + 1))
}

// insert links build row r under hash h, probing within h's home partition.
// tails is caller-provided scratch (len == len(heads)) tracking each slot's
// chain tail so insertion order is preserved without walking the chain; a
// slot's tail is only read after its head was written in the same build, so
// tails never needs clearing. It returns false when the home partition is
// completely full — the caller must then rebuild in global-probing mode.
func (v *vecTable) insert(r int32, h uint64, tails []int32) bool {
	i := h & v.mask
	base := i &^ v.partMask
	for n := uint64(0); n <= v.partMask; n++ {
		if v.heads[i] == -1 {
			v.heads[i] = r
			v.hashes[i] = h
			tails[i] = r
			v.next[r] = -1
			return true
		}
		if v.hashes[i] == h {
			v.next[tails[i]] = r
			v.next[r] = -1
			tails[i] = r
			return true
		}
		i = base | ((i + 1) & v.partMask)
	}
	return false
}

// lookup returns the first build row whose hash equals h, or -1; the caller
// follows next[] for the rest of the chain. The probe mirrors insert: it
// wraps within the home partition, and because a non-overflowing partition
// can end exactly full, the walk is bounded by the partition size rather
// than relying on an empty slot to terminate.
func (v *vecTable) lookup(h uint64) int32 {
	i := h & v.mask
	base := i &^ v.partMask
	for n := uint64(0); n <= v.partMask; n++ {
		r := v.heads[i]
		if r == -1 {
			return -1
		}
		if v.hashes[i] == h {
			return r
		}
		i = base | ((i + 1) & v.partMask)
	}
	return -1
}
