package exec

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// errExchangeStopped is the sentinel a morsel worker unwinds with when the
// exchange is tearing down; it never escapes the exchange.
var errExchangeStopped = errors.New("exec: exchange stopped")

// morselRecorder is a morsel worker's stand-in for the real budget state: a
// replica Ctx carries one, and every charge lands here instead of mutating
// work counters. The coordinator replays the recorded amounts on the real
// Ctx in morsel order, so budget trips, work totals, and their interleaving
// with checkpoints are identical to the serial batch path for any worker
// count. The recorder still polls cancellation at the scalar path's
// interval, keeping cancellation latency bounded even though the budget
// verdict itself is the coordinator's.
type morselRecorder struct {
	cancel    context.Context
	done      <-chan struct{}
	pending   int64
	sincePoll int64
}

func (r *morselRecorder) charge(n int64) error {
	r.pending += n
	r.sincePoll += n
	if r.sincePoll >= cancelPollInterval {
		r.sincePoll = 0
		select {
		case <-r.done:
			return errExchangeStopped
		default:
		}
		if r.cancel != nil {
			if err := r.cancel.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}

// take returns and clears the work recorded since the last take.
func (r *morselRecorder) take() int64 {
	n := r.pending
	r.pending = 0
	return n
}

// morselItem is one message from a morsel worker to the coordinator: a
// stolen output batch, or the morsel's final per-stage counts, or an error —
// always prefixed by the work recorded since the previous item, which the
// coordinator replays before acting on the payload.
type morselItem struct {
	work    int64
	batch   *Batch
	rows    []int64 // per pipeline stage, set on the final item
	batches []int64
	final   bool
	err     error
}

// exchangeOp is the order-preserving exchange at the top of a parallel
// pipeline. Open runs the inner tree's Open serially (build sides,
// checkpoints, and their work charges are untouched), then splits the
// pipeline's morsel source into fixed-size morsels and runs replica
// pipelines over a bounded worker pool. NextBatch yields each morsel's
// output batches strictly in morsel order, replaying the workers' recorded
// work charges on the real Ctx as it goes — so counts, row order, TrueCard
// stamps, checkpoint sequences, work and materialization totals, and typed
// errors are byte-identical to the serial batch path for any worker count.
//
// Pipelines the exchange cannot split (merge joins, scalar-wrapped
// operators, single-morsel inputs) pass through to the inner operator
// untouched.
type exchangeOp struct {
	inner   BatchOperator
	workers int

	// parallel run state; zero when passing through
	running  bool
	finished bool
	failed   error
	pipe     []pipeNode
	source   morselSource
	unitsEnd int
	chans    []chan morselItem
	tokens   chan struct{}
	done     chan struct{}
	stopped  bool
	wg       sync.WaitGroup
	cur      int // morsel currently being consumed
	rows     []int64
	batches  []int64
	// free recycles consumed output arenas back to the workers so the
	// steady state allocates nothing per batch: the arena handed to the
	// consumer at NextBatch i is reclaimed at NextBatch i+1 (the Batch
	// validity contract) and replaces the one the next steal detaches.
	free chan []int64
	last *Batch
}

// exchangeWorkerCap bounds the effective exchange worker count to the
// scheduler's processor count: with one runnable pipeline per core the
// exchange scales, while oversubscribing a core just interleaves replica
// working sets and pays scheduling for nothing (measured ~1.4x slower on a
// single core). Results are worker-count independent by construction, so
// the clamp is observationally invisible; tests raise it via
// SetExchangeWorkerCap to force real multi-worker runs on any machine.
var exchangeWorkerCap = runtime.GOMAXPROCS(0)

// maybeExchange wraps op in an exchange when the context asks for
// intra-query parallelism. Replica contexts never wrap: their operators are
// born open and pull no children.
func maybeExchange(ctx *Ctx, op BatchOperator) BatchOperator {
	workers := ctx.ExecWorkers
	if workers > exchangeWorkerCap {
		workers = exchangeWorkerCap
	}
	if workers < 2 || ctx.rec != nil {
		return op
	}
	if _, ok := op.(*exchangeOp); ok {
		return op
	}
	return &exchangeOp{inner: op, workers: workers}
}

func (e *exchangeOp) Open(ctx *Ctx) error {
	e.stop() // tear down any previous run before re-Open
	e.running, e.finished, e.failed = false, false, nil
	e.pipe, e.source, e.chans, e.tokens, e.done = nil, nil, nil, nil, nil
	e.stopped, e.cur, e.free, e.last = false, 0, nil, nil
	// The inner Open is serial and identical to the serial path: it drains
	// build sides, charges their work, and fires checkpoints on the real Ctx.
	if err := e.inner.Open(ctx); err != nil {
		return err
	}
	pipe, src, ok := extractPipeline(e.inner)
	if !ok {
		return nil
	}
	units := src.morselUnits()
	nMorsels := (units + morselSize - 1) / morselSize
	if nMorsels < 2 {
		return nil
	}
	workers := e.workers
	if workers > nMorsels {
		workers = nMorsels
	}
	e.pipe, e.source, e.unitsEnd = pipe, src, units
	e.chans = make([]chan morselItem, nMorsels)
	for i := range e.chans {
		e.chans[i] = make(chan morselItem, 4)
	}
	// tokens bound how many morsels may be claimed ahead of the one being
	// consumed, capping buffered output at O(workers) batches instead of the
	// whole result.
	e.tokens = make(chan struct{}, 2*workers)
	e.free = make(chan []int64, 2*workers+2)
	e.done = make(chan struct{})
	e.rows = make([]int64, len(pipe))
	e.batches = make([]int64, len(pipe))
	qctx := ctx.Context
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		e.wg.Add(1)
		go e.worker(qctx, &next, nMorsels)
	}
	e.running = true
	return nil
}

func (e *exchangeOp) NextBatch(ctx *Ctx) (*Batch, error) {
	if e.failed != nil {
		return nil, e.failed
	}
	if e.finished {
		return nil, nil
	}
	if !e.running {
		return e.inner.NextBatch(ctx)
	}
	// The batch handed out last call is relinquished now (the Batch validity
	// contract); hand its arena back to the workers.
	if e.last != nil {
		if d := e.last.data; d != nil {
			select {
			case e.free <- d[:0]:
			default:
			}
		}
		e.last = nil
	}
	var cancel <-chan struct{} // nil (blocks forever) without a context
	if ctx.Context != nil {
		cancel = ctx.Context.Done()
	}
	for {
		if e.cur >= len(e.chans) {
			e.finish()
			return nil, nil
		}
		var it morselItem
		// Liveness needs no timeout: claimed morsels form a contiguous
		// prefix and every claimed morsel produces an item or observes done,
		// so this receive always completes unless the query is cancelled.
		select {
		case it = <-e.chans[e.cur]:
		case <-cancel:
			return nil, e.fail(ctx.Context.Err())
		}
		// Replay the worker's recorded work on the real Ctx first: budget
		// trips land at the same cumulative work as on the serial path.
		if it.work > 0 {
			if err := ctx.charge(it.work); err != nil {
				return nil, e.fail(err)
			}
		}
		if it.err != nil {
			return nil, e.fail(it.err)
		}
		if it.batch != nil {
			e.last = it.batch
			return it.batch, nil
		}
		// final item of the current morsel: fold its counts, move on
		for i := range e.rows {
			e.rows[i] += it.rows[i]
			e.batches[i] += it.batches[i]
		}
		e.cur++
		select {
		case <-e.tokens:
		default:
		}
	}
}

// finish completes a clean parallel run: workers are joined, and the real
// plan nodes and tracing shims receive the aggregated counts the serial
// operators would have stamped at exhaustion.
func (e *exchangeOp) finish() {
	e.finished = true
	e.stop()
	for i, pn := range e.pipe {
		pn.plan.TrueCard = float64(e.rows[i])
		if pn.shim != nil {
			pn.shim.markParallel(e.rows[i], e.batches[i])
		}
	}
}

func (e *exchangeOp) fail(err error) error {
	e.failed = err
	e.stop()
	return err
}

// stop halts the worker pool and waits for it to drain; it is safe to call
// repeatedly and from any exchange state.
func (e *exchangeOp) stop() {
	if e.done == nil || e.stopped {
		return
	}
	e.stopped = true
	close(e.done)
	e.wg.Wait()
}

func (e *exchangeOp) Close() {
	e.stop()
	e.inner.Close()
}

// worker claims morsels in index order from the shared counter, runs a
// replica pipeline over each, and streams the results to the morsel's
// channel. It exits when the counter runs out, the exchange stops, or its
// morsel fails.
func (e *exchangeOp) worker(qctx context.Context, next *atomic.Int64, nMorsels int) {
	defer e.wg.Done()
	for {
		select {
		case e.tokens <- struct{}{}:
		case <-e.done:
			return
		}
		m := int(next.Add(1) - 1)
		if m >= nMorsels {
			return
		}
		lo := m * morselSize
		hi := min(lo+morselSize, e.unitsEnd)
		if !e.runMorsel(qctx, lo, hi, e.chans[m]) {
			return
		}
	}
}

// runMorsel drives one replica pipeline to exhaustion, reporting work,
// stolen batches, and final counts. It returns false when the worker should
// stop claiming morsels.
func (e *exchangeOp) runMorsel(qctx context.Context, lo, hi int, ch chan morselItem) bool {
	rec := &morselRecorder{cancel: qctx, done: e.done}
	wctx := &Ctx{Context: qctx, rec: rec}
	root, shims := buildReplicaChain(e.pipe, e.source, lo, hi)
	for {
		b, err := root.NextBatch(wctx)
		work := rec.take()
		if err != nil {
			if errors.Is(err, errExchangeStopped) {
				return false
			}
			e.send(ch, morselItem{work: work, err: err})
			return false
		}
		if b == nil {
			rows := make([]int64, len(shims))
			batches := make([]int64, len(shims))
			for i, s := range shims {
				rows[i] = s.rows
				batches[i] = s.batches
			}
			return e.send(ch, morselItem{work: work, rows: rows, batches: batches, final: true})
		}
		if !e.send(ch, morselItem{work: work, batch: e.stealBatch(b)}) {
			return false
		}
	}
}

func (e *exchangeOp) send(ch chan morselItem, it morselItem) bool {
	select {
	case ch <- it:
		return true
	case <-e.done:
		return false
	}
}

// stealBatch detaches a replica operator's output arena so it can cross the
// channel without a copy; the consumer owns the stolen arena until it pulls
// the next batch. The producer gets a recycled arena from the free list when
// one is available (its next reset() then reuses it), falling back to a nil
// arena that reset() reallocates.
func (e *exchangeOp) stealBatch(b *Batch) *Batch {
	nb := &Batch{width: b.width, n: b.n, data: b.data[:b.n*b.width]}
	select {
	case b.data = <-e.free:
	default:
		b.data = nil
	}
	return nb
}

// markParallel stamps a tracing shim whose inner operator ran as replicas:
// the aggregated rows and batches are what the serial operator would have
// counted, and the wall time spans the shim's serial Open through pipeline
// exhaustion — the same inclusive window the serial shim records. Per-stage
// time is not separable when all stages run concurrently, so every stage of
// the pipeline reports the shared span.
func (t *tracedBatchOp) markParallel(rows, batches int64) {
	t.rows = rows
	t.batches = batches
	t.exhausted = true
	t.wall = time.Since(t.start)
}
