package exec

import (
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
)

// batchSeqScan reads a base table in fixed chunks of physical rows,
// evaluates the leaf predicates column-at-a-time into a selection vector,
// and gathers the passing rows into the output arena. Work is charged per
// chunk (1 per physical row examined, as in the scalar scan) — including
// chunks the zone maps skip, so work accounting is independent of pruning.
//
// When the table is sealed and the scan has predicates, filtering and
// gathering go through the encoded segment layer (zs): pruned segments are
// never decoded, surviving ones are filtered on their encoded form and
// late-materialized by selection vector. Ctx.RawScan forces the raw path.
type batchSeqScan struct {
	node  *plan.Node
	table *storage.Table
	zs    *segScanState // shared read-only with morsel replicas; nil = raw
	row   int
	end   int // one past the last physical row to scan (morsel bound)
	count int
	sel   []int32
	buf   []int64 // replica-private segment decode scratch
	out   Batch
}

func newBatchSeqScan(ctx *Ctx, n *plan.Node) *batchSeqScan {
	return &batchSeqScan{node: n, table: ctx.DB.Table(n.Table)}
}

func (s *batchSeqScan) Open(ctx *Ctx) error {
	s.row = 0
	s.end = s.table.NumRows()
	s.count = 0
	s.zs = newSegScanState(ctx, s.table, s.node.Preds, true)
	return nil
}

func (s *batchSeqScan) NextBatch(ctx *Ctx) (*Batch, error) {
	width := len(s.table.Meta.Columns)
	for s.row < s.end {
		lo := s.row
		hi := lo + BatchSize
		if hi > s.end {
			hi = s.end
		}
		s.row = hi
		if err := ctx.charge(int64(hi - lo)); err != nil {
			return nil, err
		}
		if s.zs != nil {
			s.sel, s.buf = s.zs.selectRange(s.sel[:0], s.buf, lo, hi, s.node.Preds)
		} else {
			s.sel = selectRange(s.sel[:0], s.table, lo, hi, s.node.Preds)
		}
		if len(s.sel) == 0 {
			continue
		}
		s.out.reset(width)
		if s.zs != nil {
			s.zs.gather(&s.out, s.sel)
		} else {
			gatherRows(&s.out, s.table, s.sel)
		}
		s.count += len(s.sel)
		return &s.out, nil
	}
	s.node.TrueCard = float64(s.count)
	return nil, nil
}

func (s *batchSeqScan) Close() {}

// selectRange appends to sel the row ids in [lo, hi) that satisfy every
// predicate: the first predicate scans the range directly, the rest refine
// the selection vector in place.
func selectRange(sel []int32, t *storage.Table, lo, hi int, preds []query.Predicate) []int32 {
	if len(preds) == 0 {
		for r := lo; r < hi; r++ {
			sel = append(sel, int32(r))
		}
		return sel
	}
	sel = filterRange(sel, t.Cols[preds[0].Col.Pos], lo, hi, preds[0])
	for _, p := range preds[1:] {
		sel = filterSel(sel, t.Cols[p.Col.Pos], p)
	}
	return sel
}

// filterRange appends the ids in [lo, hi) whose column value satisfies p.
// The operator switch sits outside the row loop so each case is a tight
// branch-predictable compare loop; OpIn (set membership) falls back to the
// predicate's own evaluator.
func filterRange(sel []int32, col []int64, lo, hi int, p query.Predicate) []int32 {
	switch p.Op {
	case query.OpEQ:
		for r := lo; r < hi; r++ {
			if col[r] == p.Operand {
				sel = append(sel, int32(r))
			}
		}
	case query.OpNE:
		for r := lo; r < hi; r++ {
			if col[r] != p.Operand {
				sel = append(sel, int32(r))
			}
		}
	case query.OpLT:
		for r := lo; r < hi; r++ {
			if col[r] < p.Operand {
				sel = append(sel, int32(r))
			}
		}
	case query.OpLE:
		for r := lo; r < hi; r++ {
			if col[r] <= p.Operand {
				sel = append(sel, int32(r))
			}
		}
	case query.OpGT:
		for r := lo; r < hi; r++ {
			if col[r] > p.Operand {
				sel = append(sel, int32(r))
			}
		}
	case query.OpGE:
		for r := lo; r < hi; r++ {
			if col[r] >= p.Operand {
				sel = append(sel, int32(r))
			}
		}
	default:
		for r := lo; r < hi; r++ {
			if p.Eval(col[r]) {
				sel = append(sel, int32(r))
			}
		}
	}
	return sel
}

// filterSel compacts sel in place, keeping the ids whose column value
// satisfies p.
func filterSel(sel []int32, col []int64, p query.Predicate) []int32 {
	out := sel[:0]
	switch p.Op {
	case query.OpEQ:
		for _, r := range sel {
			if col[r] == p.Operand {
				out = append(out, r)
			}
		}
	case query.OpNE:
		for _, r := range sel {
			if col[r] != p.Operand {
				out = append(out, r)
			}
		}
	case query.OpLT:
		for _, r := range sel {
			if col[r] < p.Operand {
				out = append(out, r)
			}
		}
	case query.OpLE:
		for _, r := range sel {
			if col[r] <= p.Operand {
				out = append(out, r)
			}
		}
	case query.OpGT:
		for _, r := range sel {
			if col[r] > p.Operand {
				out = append(out, r)
			}
		}
	case query.OpGE:
		for _, r := range sel {
			if col[r] >= p.Operand {
				out = append(out, r)
			}
		}
	default:
		for _, r := range sel {
			if p.Eval(col[r]) {
				out = append(out, r)
			}
		}
	}
	return out
}

// gatherRows copies the selected rows of a column-major table into the
// batch arena, column by column so each source column is read sequentially.
func gatherRows(b *Batch, t *storage.Table, sel []int32) {
	w := b.width
	for c := 0; c < w; c++ {
		col := t.Cols[c]
		d := b.data[c:]
		for k, r := range sel {
			d[k*w] = col[r]
		}
	}
	b.n = len(sel)
}

// batchIndexScan drives the scan from the IndexPred column's index (same
// rid resolution as the scalar indexScan, including the 16-unit descent
// charge) and applies the remaining predicates per chunk of rids. With the
// segment layer available, a rid landing in a segment where some residual
// predicate is zone-map-disproven is dropped before any column is read,
// and the survivors are filtered and gathered through the encoded form.
type batchIndexScan struct {
	node  *plan.Node
	table *storage.Table
	zs    *segScanState // shared read-only with morsel replicas; nil = raw
	rids  []int32
	rest  []query.Predicate
	pos   int
	end   int // one past the last rid position to scan (morsel bound)
	count int
	sel   []int32
	out   Batch
}

func newBatchIndexScan(ctx *Ctx, n *plan.Node) (*batchIndexScan, error) {
	if n.IndexPred == nil {
		return nil, errNoIndexPred(n)
	}
	return &batchIndexScan{node: n, table: ctx.DB.Table(n.Table)}, nil
}

func (s *batchIndexScan) Open(ctx *Ctx) error {
	s.pos = 0
	s.count = 0
	s.rest = s.rest[:0]
	for i := range s.node.Preds {
		if &s.node.Preds[i] != s.node.IndexPred {
			s.rest = append(s.rest, s.node.Preds[i])
		}
	}
	if err := ctx.charge(16); err != nil {
		return err
	}
	rids, err := resolveIndexRids(s.table, *s.node.IndexPred, s.rids)
	if err != nil {
		return err
	}
	s.rids = rids
	s.end = len(rids)
	s.zs = newSegScanState(ctx, s.table, s.rest, false)
	return nil
}

func (s *batchIndexScan) NextBatch(ctx *Ctx) (*Batch, error) {
	width := len(s.table.Meta.Columns)
	for s.pos < s.end {
		lo := s.pos
		hi := lo + BatchSize
		if hi > s.end {
			hi = s.end
		}
		s.pos = hi
		if err := ctx.charge(int64(hi - lo)); err != nil {
			return nil, err
		}
		s.sel = append(s.sel[:0], s.rids[lo:hi]...)
		if s.zs != nil {
			s.sel = s.zs.pruneSel(s.sel)
			for _, p := range s.rest {
				s.sel = s.zs.filterSel(s.sel, p)
			}
		} else {
			for _, p := range s.rest {
				s.sel = filterSel(s.sel, s.table.Cols[p.Col.Pos], p)
			}
		}
		if len(s.sel) == 0 {
			continue
		}
		s.out.reset(width)
		if s.zs != nil {
			s.zs.gather(&s.out, s.sel)
		} else {
			gatherRows(&s.out, s.table, s.sel)
		}
		s.count += len(s.sel)
		return &s.out, nil
	}
	s.node.TrueCard = float64(s.count)
	return nil, nil
}

func (s *batchIndexScan) Close() {}

// batchMatScan replays a materialized intermediate result in chunks,
// charging 1 per emitted row like the scalar matScan. Rows are copied into
// the arena because Mat.Rows may be retained by the controller.
type batchMatScan struct {
	node  *plan.Node
	width int
	pos   int
	end   int // one past the last materialized row to replay (morsel bound)
	out   Batch
}

func newBatchMatScan(ctx *Ctx, n *plan.Node) *batchMatScan {
	return &batchMatScan{node: n, width: ctx.Layout(n.Tables).Width()}
}

func (s *batchMatScan) Open(*Ctx) error {
	s.pos = 0
	s.end = len(s.node.Mat.Rows)
	return nil
}

func (s *batchMatScan) NextBatch(ctx *Ctx) (*Batch, error) {
	rows := s.node.Mat.Rows
	if s.pos >= s.end {
		s.node.TrueCard = float64(len(rows))
		return nil, nil
	}
	lo := s.pos
	hi := lo + BatchSize
	if hi > s.end {
		hi = s.end
	}
	s.pos = hi
	if err := ctx.charge(int64(hi - lo)); err != nil {
		return nil, err
	}
	s.out.reset(s.width)
	for _, row := range rows[lo:hi] {
		copy(s.out.pushRow(), row)
	}
	return &s.out, nil
}

func (s *batchMatScan) Close() {}
