package exec

import (
	"math"
	"sync"
	"sync/atomic"
)

// maxVecBuildRows is the largest build side a vecTable can index: rows are
// linked with int32, so one more row than MaxInt32 would wrap the chain
// links into silent corruption.
const maxVecBuildRows = math.MaxInt32

// checkVecBuildSize guards the int32 row links of vecTable: a build side
// beyond maxVecBuildRows fails with a typed *ResourceError (consistent with
// the budget errors) instead of corrupting the table.
func checkVecBuildSize(n int) error {
	if int64(n) > maxVecBuildRows {
		return &ResourceError{Resource: "hash-build-rows", Limit: maxVecBuildRows, Used: int64(n)}
	}
	return nil
}

// buildVecTable indexes the build rows. With workers > 1 and enough rows,
// both passes are parallel: the hash of every row is computed by a pool of
// workers over morsel-sized chunks, then the same pool inserts rows into
// disjoint partition ranges of the slot array. Because probing is bounded to
// a row's home partition (see vecTable), a partition's final layout depends
// only on the rows homed in it taken in global row order — each worker scans
// all hashes in that order and inserts exactly the rows it owns, so slot
// placement and equal-hash chain order are bitwise identical to the serial
// build for any worker count. A morsel-sized cutoff keeps small builds on
// the serial path, and the worker count is clamped like the exchange's
// (GOMAXPROCS by default; SetExchangeWorkerCap caps builds too).
//
// The hash and chain-tail scratch buffers are recycled through ctx (one
// execution can build several hash tables), like the exchange's arena
// free-list; builds run on the single goroutine that executes pipeline-
// breaker Opens, so no locking is needed.
func buildVecTable(ctx *Ctx, rows [][]int64, conds []condOffsets, workers int) *vecTable {
	t := newVecTable(len(rows))
	tails := ctx.takeBuildTails(len(t.heads))
	defer ctx.putBuildTails(tails)
	if workers > exchangeWorkerCap {
		workers = exchangeWorkerCap
	}
	nparts := t.partitions()
	if workers < 2 || len(rows) < 2*morselSize || nparts < 2 {
		for i, row := range rows {
			if !t.insert(int32(i), hashRowConds(row, conds, false), tails) {
				t.rebuildGlobal(nil, rows, conds, tails)
				break
			}
		}
		return t
	}

	hashes := ctx.takeBuildHashes(len(rows))
	defer ctx.putBuildHashes(hashes)
	nm := (len(rows) + morselSize - 1) / morselSize
	if workers > nm {
		workers = nm
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m := int(next.Add(1) - 1)
				if m >= nm {
					return
				}
				lo := m * morselSize
				hi := min(lo+morselSize, len(rows))
				for i := lo; i < hi; i++ {
					hashes[i] = hashRowConds(rows[i], conds, false)
				}
			}
		}()
	}
	wg.Wait()

	// Partitioned insert: worker w owns the contiguous partitions
	// [w*nparts/workers, (w+1)*nparts/workers) — a contiguous slot range, so
	// ownership is a pair of comparisons on the home slot. Every write is
	// owner-private: heads/hashes/tails are indexed by slots of owned
	// partitions, and next is indexed by rows, each of which has exactly one
	// home partition (equal hashes share one). Each worker inserts its rows
	// in global row order, which is the same subsequence the serial loop
	// would feed that partition — hence the bitwise-equal layout.
	if workers > nparts {
		workers = nparts
	}
	partSlots := t.partMask + 1
	var overflow atomic.Bool
	for w := 0; w < workers; w++ {
		slotLo := uint64(w*nparts/workers) * partSlots
		slotHi := uint64((w+1)*nparts/workers) * partSlots
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, h := range hashes {
				if home := h & t.mask; home < slotLo || home >= slotHi {
					continue
				}
				if !t.insert(int32(i), h, tails) {
					// A full partition is decided purely by the data (the
					// owner saw exactly the serial build's insert sequence
					// for it), so every worker count — including the serial
					// path — falls back on the same input.
					overflow.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if overflow.Load() {
		t.rebuildGlobal(hashes, rows, conds, tails)
	}
	return t
}

// rebuildGlobal re-places every row using plain linear probing over the
// whole slot array (partMask == mask) after a partition overflowed. The
// table is at most half full, so every probe finds an empty slot and the
// bounded walk in insert never trips. hashes may be nil (the serial path
// does not keep them), in which case they are recomputed.
func (v *vecTable) rebuildGlobal(hashes []uint64, rows [][]int64, conds []condOffsets, tails []int32) {
	v.partMask = v.mask
	for i := range v.heads {
		v.heads[i] = -1
	}
	for i, row := range rows {
		var h uint64
		if hashes != nil {
			h = hashes[i]
		} else {
			h = hashRowConds(row, conds, false)
		}
		if !v.insert(int32(i), h, tails) {
			panic("exec: vecTable global rebuild overflowed a half-full table")
		}
	}
}
