package exec

import (
	"math"
	"sync"
	"sync/atomic"
)

// maxVecBuildRows is the largest build side a vecTable can index: rows are
// linked with int32, so one more row than MaxInt32 would wrap the chain
// links into silent corruption.
const maxVecBuildRows = math.MaxInt32

// checkVecBuildSize guards the int32 row links of vecTable: a build side
// beyond maxVecBuildRows fails with a typed *ResourceError (consistent with
// the budget errors) instead of corrupting the table.
func checkVecBuildSize(n int) error {
	if int64(n) > maxVecBuildRows {
		return &ResourceError{Resource: "hash-build-rows", Limit: maxVecBuildRows, Used: int64(n)}
	}
	return nil
}

// buildVecTable indexes the build rows. With workers > 1 and enough rows,
// the hash of every row is computed by a pool of workers over morsel-sized
// partitions; the table inserts then happen serially in global row order, so
// slot placement and chain order are byte-identical to the serial build —
// hashing is the dominant cost, insertion is a cheap pointer walk.
func buildVecTable(rows [][]int64, conds []condOffsets, workers int) *vecTable {
	t := newVecTable(len(rows))
	tails := make([]int32, len(t.heads))
	if workers < 2 || len(rows) < 2*morselSize {
		for i, row := range rows {
			t.insert(int32(i), hashRowConds(row, conds, false), tails)
		}
		return t
	}
	hashes := make([]uint64, len(rows))
	nm := (len(rows) + morselSize - 1) / morselSize
	if workers > nm {
		workers = nm
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m := int(next.Add(1) - 1)
				if m >= nm {
					return
				}
				lo := m * morselSize
				hi := min(lo+morselSize, len(rows))
				for i := lo; i < hi; i++ {
					hashes[i] = hashRowConds(rows[i], conds, false)
				}
			}
		}()
	}
	wg.Wait()
	// Deterministic merge: insertion order is the global row order, exactly
	// as the serial loop would have inserted.
	for i := range rows {
		t.insert(int32(i), hashes[i], tails)
	}
	return t
}
