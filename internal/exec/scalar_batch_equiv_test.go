package exec

import (
	"context"
	"errors"
	"testing"

	"github.com/lpce-db/lpce/internal/obs"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
	"github.com/lpce-db/lpce/internal/testutil"
	"github.com/lpce-db/lpce/internal/workload"
)

// The scalar and batch executors must be observationally identical: same
// result rows in the same order, same TrueCard stamps on every node, same
// checkpoint sequences (nodes, cardinalities, row contents), the same work
// totals, and the same typed errors under budget / MaxMatRows /
// cancellation limits. These tests run a randomized corpus through both
// paths and compare everything observable.
//
// One caveat is intentional: when Budget AND MaxMatRows are BOTH set and
// both trip inside the same drained batch, the lumped charges can surface
// ErrBudget where the scalar path surfaces a *ResourceError (or vice
// versa); the limits are therefore exercised separately below, which is
// also how the engine configures them in practice.

// ckptEvent is one checkpoint observation: which node materialized, how
// many rows, and a content hash of the rows in order.
type ckptEvent struct {
	mask query.BitSet
	card int
	hash uint64
}

type ckptRecorder struct {
	events []ckptEvent
	failAt query.BitSet // when non-zero, return a ReoptSignal at this mask
}

func (r *ckptRecorder) OnMaterialized(n *plan.Node, rows [][]int64) error {
	r.events = append(r.events, ckptEvent{n.Tables, len(rows), hashRows(rows)})
	if r.failAt != 0 && n.Tables == r.failAt {
		return &ReoptSignal{Node: n, Actual: len(rows)}
	}
	return nil
}

func hashRows(rows [][]int64) uint64 {
	var h uint64 = 14695981039346656037
	for _, row := range rows {
		for _, v := range row {
			h ^= uint64(v)
			h *= 1099511628211
		}
	}
	return h
}

// runPath executes a plan on one path, returning the count, a content hash
// of the emitted rows in order, and the error.
func runPath(ctx *Ctx, p *plan.Node, batch bool) (int, uint64, error) {
	var hash uint64 = 14695981039346656037
	mix := func(row []int64) {
		for _, v := range row {
			hash ^= uint64(v)
			hash *= 1099511628211
		}
	}
	count := 0
	if batch {
		op, err := BuildBatch(ctx, p)
		if err != nil {
			return 0, 0, err
		}
		defer op.Close()
		if err := op.Open(ctx); err != nil {
			return 0, 0, err
		}
		for {
			b, err := op.NextBatch(ctx)
			if err != nil {
				return 0, 0, err
			}
			if b == nil {
				break
			}
			for i := 0; i < b.Len(); i++ {
				mix(b.Row(i))
			}
			count += b.Len()
		}
	} else {
		op, err := Build(ctx, p)
		if err != nil {
			return 0, 0, err
		}
		defer op.Close()
		if err := op.Open(ctx); err != nil {
			return 0, 0, err
		}
		for {
			t, ok, err := op.Next(ctx)
			if err != nil {
				return 0, 0, err
			}
			if !ok {
				break
			}
			mix(t)
			count++
		}
	}
	p.TrueCard = float64(count)
	return count, hash, nil
}

// trueCards collects (op, mask) -> TrueCard over the whole tree.
func trueCards(p *plan.Node) map[query.BitSet]float64 {
	out := make(map[query.BitSet]float64)
	p.Walk(func(n *plan.Node) { out[n.Tables] = n.TrueCard })
	return out
}

// equivCorpus yields randomized (query, plan-variant) pairs: canonical
// plans under each join algorithm, a mixed-operator assignment, and an
// index-scan conversion.
func equivCorpus(t *testing.T, db *storage.Database, seed int64, n int, fn func(q *query.Query, p *plan.Node, variant string)) {
	g := workload.NewGenerator(db, seed)
	for i := 0; i < n; i++ {
		q := g.Query(1 + i%3)
		base := CanonicalPlan(q, q.AllTablesMask())
		for _, op := range []plan.PhysOp{plan.HashJoin, plan.MergeJoin, plan.NestLoopJoin} {
			p := base.Clone()
			setJoinOps(p, op)
			fn(q, p, op.String())
		}
		// mixed operators: alternate join algorithms down the tree
		mixed := base.Clone()
		k := 0
		mixed.Walk(func(x *plan.Node) {
			if x.Op.IsJoin() {
				x.Op = []plan.PhysOp{plan.HashJoin, plan.MergeJoin, plan.NestLoopJoin}[k%3]
				k++
			}
		})
		fn(q, mixed, "mixed")
		// index scans on every eligible leaf
		idx := base.Clone()
		converted := false
		idx.Walk(func(x *plan.Node) {
			if x.IsLeaf() && len(x.Preds) > 0 && x.Preds[0].Op != query.OpNE {
				x.Op = plan.IndexScan
				x.IndexPred = &x.Preds[0]
				converted = true
			}
		})
		if converted {
			fn(q, idx, "indexscan")
		}
	}
}

func TestScalarBatchEquivalence(t *testing.T) {
	db := testutil.TinyDB()
	equivCorpus(t, db, 41, 12, func(q *query.Query, p *plan.Node, variant string) {
		ps, pb := p.Clone(), p.Clone()
		rcS, rcB := &ckptRecorder{}, &ckptRecorder{}
		ctxS := &Ctx{DB: db, Q: q, Controller: rcS}
		ctxB := &Ctx{DB: db, Q: q, Controller: rcB}
		cS, hS, errS := runPath(ctxS, ps, false)
		cB, hB, errB := runPath(ctxB, pb, true)
		if errS != nil || errB != nil {
			t.Fatalf("%s/%s: scalar err %v, batch err %v", q.SQL(), variant, errS, errB)
		}
		if cS != cB {
			t.Fatalf("%s/%s: scalar count %d, batch count %d", q.SQL(), variant, cS, cB)
		}
		if hS != hB {
			t.Fatalf("%s/%s: result row contents differ (scalar %x, batch %x)", q.SQL(), variant, hS, hB)
		}
		if ctxS.Work() != ctxB.Work() {
			t.Fatalf("%s/%s: scalar work %d, batch work %d", q.SQL(), variant, ctxS.Work(), ctxB.Work())
		}
		if ctxS.MatRows() != ctxB.MatRows() {
			t.Fatalf("%s/%s: scalar matRows %d, batch matRows %d", q.SQL(), variant, ctxS.MatRows(), ctxB.MatRows())
		}
		if len(rcS.events) != len(rcB.events) {
			t.Fatalf("%s/%s: scalar %d checkpoints, batch %d", q.SQL(), variant, len(rcS.events), len(rcB.events))
		}
		for i := range rcS.events {
			if rcS.events[i] != rcB.events[i] {
				t.Fatalf("%s/%s: checkpoint %d differs: scalar %+v, batch %+v", q.SQL(), variant, i, rcS.events[i], rcB.events[i])
			}
		}
		tcS, tcB := trueCards(ps), trueCards(pb)
		for mask, v := range tcS {
			if tcB[mask] != v {
				t.Fatalf("%s/%s: TrueCard at %b: scalar %v, batch %v", q.SQL(), variant, uint32(mask), v, tcB[mask])
			}
		}
	})
}

// sameTypedError reports whether two execution errors are the same typed
// failure: both nil, both ErrBudget, equal *ResourceError payloads, equal
// *ReoptSignal targets, or the same context error.
func sameTypedError(a, b error) bool {
	switch {
	case a == nil || b == nil:
		return a == nil && b == nil
	case errors.Is(a, ErrBudget) || errors.Is(b, ErrBudget):
		return errors.Is(a, ErrBudget) && errors.Is(b, ErrBudget)
	}
	var ra, rb *ResourceError
	if errors.As(a, &ra) || errors.As(b, &rb) {
		if !errors.As(a, &ra) || !errors.As(b, &rb) {
			return false
		}
		return *ra == *rb
	}
	var sa, sb *ReoptSignal
	if errors.As(a, &sa) || errors.As(b, &sb) {
		if !errors.As(a, &sa) || !errors.As(b, &sb) {
			return false
		}
		return sa.Node.Tables == sb.Node.Tables && sa.Actual == sb.Actual
	}
	return errors.Is(a, b) || errors.Is(b, a)
}

func TestScalarBatchEquivalenceUnderBudget(t *testing.T) {
	db := testutil.TinyDB()
	equivCorpus(t, db, 42, 6, func(q *query.Query, p *plan.Node, variant string) {
		// measure the full cost once, then squeeze budgets across the range
		probe := &Ctx{DB: db, Q: q, Controller: NopController{}}
		if _, err := Run(probe, p.Clone()); err != nil {
			t.Fatalf("%s/%s: unlimited run failed: %v", q.SQL(), variant, err)
		}
		total := probe.Work()
		for _, budget := range []int64{1, total / 4, total / 2, total - 1, total, total + 1} {
			if budget <= 0 {
				continue
			}
			rcS, rcB := &ckptRecorder{}, &ckptRecorder{}
			ctxS := &Ctx{DB: db, Q: q, Controller: rcS, Budget: budget}
			ctxB := &Ctx{DB: db, Q: q, Controller: rcB, Budget: budget}
			_, _, errS := runPath(ctxS, p.Clone(), false)
			_, _, errB := runPath(ctxB, p.Clone(), true)
			if !sameTypedError(errS, errB) {
				t.Fatalf("%s/%s budget %d: scalar err %v, batch err %v", q.SQL(), variant, budget, errS, errB)
			}
			if (errS == nil) != (budget >= total) {
				t.Fatalf("%s/%s budget %d of %d: unexpected scalar outcome %v", q.SQL(), variant, budget, total, errS)
			}
			// budget failures land between the same two checkpoints on both
			// paths, so the recorded sequences match even on error
			if len(rcS.events) != len(rcB.events) {
				t.Fatalf("%s/%s budget %d: scalar %d checkpoints, batch %d", q.SQL(), variant, budget, len(rcS.events), len(rcB.events))
			}
			for i := range rcS.events {
				if rcS.events[i] != rcB.events[i] {
					t.Fatalf("%s/%s budget %d: checkpoint %d differs", q.SQL(), variant, budget, i)
				}
			}
		}
	})
}

func TestScalarBatchEquivalenceUnderMatLimit(t *testing.T) {
	db := testutil.TinyDB()
	equivCorpus(t, db, 43, 6, func(q *query.Query, p *plan.Node, variant string) {
		probe := &Ctx{DB: db, Q: q, Controller: NopController{}}
		if _, err := Run(probe, p.Clone()); err != nil {
			t.Fatal(err)
		}
		total := probe.MatRows()
		if total == 0 {
			return // plan materializes nothing; no limit to trip
		}
		for _, limit := range []int64{1, total / 2, total - 1, total, total + 1} {
			if limit <= 0 {
				continue
			}
			ctxS := &Ctx{DB: db, Q: q, Controller: NopController{}, MaxMatRows: limit}
			ctxB := &Ctx{DB: db, Q: q, Controller: NopController{}, MaxMatRows: limit}
			_, _, errS := runPath(ctxS, p.Clone(), false)
			_, _, errB := runPath(ctxB, p.Clone(), true)
			if !sameTypedError(errS, errB) {
				t.Fatalf("%s/%s limit %d: scalar err %v, batch err %v", q.SQL(), variant, limit, errS, errB)
			}
			if ctxS.MatRows() != ctxB.MatRows() {
				t.Fatalf("%s/%s limit %d: scalar matRows %d, batch matRows %d", q.SQL(), variant, limit, ctxS.MatRows(), ctxB.MatRows())
			}
			// work totals are only comparable on success: at a mid-drain
			// failure the batch child has already charged its whole chunk
			// while the scalar child stopped at the offending tuple
			if errS == nil && ctxS.Work() != ctxB.Work() {
				t.Fatalf("%s/%s limit %d: scalar work %d, batch work %d", q.SQL(), variant, limit, ctxS.Work(), ctxB.Work())
			}
		}
	})
}

func TestScalarBatchEquivalenceUnderReoptSignal(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 44)
	tested := 0
	for i := 0; i < 20 && tested < 8; i++ {
		q := g.Query(2)
		p := CanonicalPlan(q, q.AllTablesMask())
		failMask := p.Left.Right.Tables // first hash build to materialize
		rcS := &ckptRecorder{failAt: failMask}
		rcB := &ckptRecorder{failAt: failMask}
		_, _, errS := runPath(&Ctx{DB: db, Q: q, Controller: rcS}, p.Clone(), false)
		_, _, errB := runPath(&Ctx{DB: db, Q: q, Controller: rcB}, p.Clone(), true)
		if !sameTypedError(errS, errB) {
			t.Fatalf("%s: scalar err %v, batch err %v", q.SQL(), errS, errB)
		}
		var sig *ReoptSignal
		if !errors.As(errS, &sig) || sig.Node.Tables != failMask {
			t.Fatalf("%s: expected ReoptSignal at %b, got %v", q.SQL(), uint32(failMask), errS)
		}
		tested++
	}
	if tested == 0 {
		t.Fatal("no multi-join queries generated")
	}
}

func TestScalarBatchEquivalenceUnderCancellation(t *testing.T) {
	db := testutil.TinyDB()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	equivCorpus(t, db, 45, 4, func(q *query.Query, p *plan.Node, variant string) {
		ctxS := &Ctx{DB: db, Q: q, Controller: NopController{}, Context: cancelled}
		ctxB := &Ctx{DB: db, Q: q, Controller: NopController{}, Context: cancelled}
		_, _, errS := runPath(ctxS, p.Clone(), false)
		_, _, errB := runPath(ctxB, p.Clone(), true)
		// a pre-cancelled context must fail both paths with the context's
		// error; the exact unwind point may differ (poll cadence is batch-
		// granular) but the typed error must not
		if !errors.Is(errS, context.Canceled) || !errors.Is(errB, context.Canceled) {
			t.Fatalf("%s/%s: scalar err %v, batch err %v", q.SQL(), variant, errS, errB)
		}
	})
}

// TestScalarBatchEquivalenceWithTraceAndWrap exercises the compatibility
// adapters: tracing shims on both paths must report the same per-node row
// counts, and a scalar-level WrapFunc must compose with batch producers
// (lift/lower round trip) without changing results.
func TestScalarBatchEquivalenceWithTraceAndWrap(t *testing.T) {
	db := testutil.TinyDB()
	// wrapEven wraps operators covering an even number of tables in a
	// pass-through scalar shim, forcing the lift path for some operators
	// while the unwrap optimization keeps the rest on the batch path.
	wrapEven := func(ctx *Ctx, op Operator, n *plan.Node) Operator {
		if len(n.Tables.Indices())%2 == 0 {
			return passThrough{op}
		}
		return op
	}
	equivCorpus(t, db, 46, 6, func(q *query.Query, p *plan.Node, variant string) {
		trS, trB := &obs.ExecTrace{}, &obs.ExecTrace{}
		ctxS := &Ctx{DB: db, Q: q, Controller: NopController{}, Trace: trS, Wrap: wrapEven}
		ctxB := &Ctx{DB: db, Q: q, Controller: NopController{}, Trace: trB, Wrap: wrapEven}
		cS, hS, errS := runPath(ctxS, p.Clone(), false)
		cB, hB, errB := runPath(ctxB, p.Clone(), true)
		if errS != nil || errB != nil {
			t.Fatalf("%s/%s: scalar err %v, batch err %v", q.SQL(), variant, errS, errB)
		}
		if cS != cB || hS != hB {
			t.Fatalf("%s/%s: results differ under trace+wrap (counts %d/%d)", q.SQL(), variant, cS, cB)
		}
		for _, s := range trS.Ops {
			b := trB.ByMask(s.Mask)
			if b == nil {
				t.Fatalf("%s/%s: batch trace missing op at %b", q.SQL(), variant, uint32(s.Mask))
			}
			if b.Rows != s.Rows || b.ActualRows != s.ActualRows {
				t.Fatalf("%s/%s: trace at %b: scalar rows=%d actual=%v, batch rows=%d actual=%v",
					q.SQL(), variant, uint32(s.Mask), s.Rows, s.ActualRows, b.Rows, b.ActualRows)
			}
		}
	})
}

// passThrough is a no-op scalar wrapper used to force the lift adapter.
type passThrough struct{ inner Operator }

func (p passThrough) Open(ctx *Ctx) error                { return p.inner.Open(ctx) }
func (p passThrough) Next(ctx *Ctx) (Tuple, bool, error) { return p.inner.Next(ctx) }
func (p passThrough) Close()                             { p.inner.Close() }
