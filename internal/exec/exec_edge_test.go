package exec

import (
	"testing"

	"github.com/lpce-db/lpce/internal/catalog"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
	"github.com/lpce-db/lpce/internal/testutil"
	"github.com/lpce-db/lpce/internal/workload"
)

// dupDB builds a tiny hand-crafted database with heavy duplicate join keys
// so merge-join group handling is exercised deterministically.
func dupDB() (*storage.Database, *query.Query) {
	s := catalog.NewSchema()
	l := s.AddTable("l", catalog.PK("id"), catalog.Attr("k"))
	r := s.AddTable("r", catalog.FK("lk", l.Column("k")), catalog.Attr("v"))

	db := storage.NewDatabase(s)
	lt := storage.NewTable(l, 6)
	copy(lt.ColByName("id"), []int64{0, 1, 2, 3, 4, 5})
	copy(lt.ColByName("k"), []int64{7, 7, 7, 8, 9, 9})
	db.Tables[l.ID] = lt
	rt := storage.NewTable(r, 5)
	copy(rt.ColByName("lk"), []int64{7, 7, 9, 10, 9})
	copy(rt.ColByName("v"), []int64{1, 2, 3, 4, 5})
	db.Tables[r.ID] = rt
	lt.FinishLoad()
	rt.FinishLoad()

	q := query.New([]*catalog.Table{l, r},
		[]query.Join{{Left: r.Column("lk"), Right: l.Column("k")}}, nil)
	return db, q
}

func TestMergeJoinDuplicateGroups(t *testing.T) {
	db, q := dupDB()
	// key 7: 3 left x 2 right = 6; key 9: 2 x 2 = 4; total 10
	const want = 10
	for _, op := range []plan.PhysOp{plan.HashJoin, plan.MergeJoin, plan.NestLoopJoin} {
		p := CanonicalPlan(q, q.AllTablesMask())
		setJoinOps(p, op)
		got, err := Run(&Ctx{DB: db, Q: q}, p)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if got != want {
			t.Fatalf("%v: count = %d, want %d", op, got, want)
		}
	}
}

func TestEmptyResultAllOperators(t *testing.T) {
	db, q0 := dupDB()
	l := db.Schema.Table("l")
	r := db.Schema.Table("r")
	// impossible predicate -> zero rows everywhere
	q := query.New([]*catalog.Table{l, r},
		[]query.Join{{Left: r.Column("lk"), Right: l.Column("k")}},
		[]query.Predicate{{Col: l.Column("k"), Op: query.OpLT, Operand: -100}})
	_ = q0
	for _, op := range []plan.PhysOp{plan.HashJoin, plan.MergeJoin, plan.NestLoopJoin} {
		p := CanonicalPlan(q, q.AllTablesMask())
		setJoinOps(p, op)
		got, err := Run(&Ctx{DB: db, Q: q}, p)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if got != 0 {
			t.Fatalf("%v: count = %d, want 0", op, got)
		}
	}
}

func TestIndexScanWithInPredicate(t *testing.T) {
	db, _ := dupDB()
	l := db.Schema.Table("l")
	q := query.New([]*catalog.Table{l}, nil,
		[]query.Predicate{{Col: l.Column("k"), Op: query.OpIn, InSet: []int64{7, 9}}})
	leaf := plan.NewLeaf(plan.IndexScan, l, 0, q.PredsOn(l))
	leaf.IndexPred = &leaf.Preds[0]
	got, err := Run(&Ctx{DB: db, Q: q}, leaf)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 { // three 7s + two 9s
		t.Fatalf("count = %d, want 5", got)
	}
}

func TestIndexScanEqualityUsesHashIndex(t *testing.T) {
	db, _ := dupDB()
	l := db.Schema.Table("l")
	q := query.New([]*catalog.Table{l}, nil,
		[]query.Predicate{{Col: l.Column("k"), Op: query.OpEQ, Operand: 7}})
	leaf := plan.NewLeaf(plan.IndexScan, l, 0, q.PredsOn(l))
	leaf.IndexPred = &leaf.Preds[0]
	got, err := Run(&Ctx{DB: db, Q: q}, leaf)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
}

func TestNLJoinRescanPath(t *testing.T) {
	// Force the quadratic rescan path by making the inner child a join
	// (non-leaf), and compare against the hash-join reference.
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 131)
	for i := 0; i < 10; i++ {
		q := g.Query(2)
		// right-deep shape: t0 NLJ (t1 HJ t2); requires t0 joined to {1,2}
		m12 := query.NewBitSet().Set(1).Set(2)
		m0 := query.NewBitSet().Set(0)
		if !q.Connected(m12) || len(q.JoinsBetween(m0, m12)) == 0 {
			continue
		}
		inner := CanonicalPlan(q, m12)
		outer := plan.NewLeaf(plan.SeqScan, q.Tables[0], 0, q.PredsOn(q.Tables[0]))
		root := plan.NewJoin(plan.NestLoopJoin, outer, inner, q.JoinsBetween(m0, m12))
		got, err := Run(&Ctx{DB: db, Q: q}, root)
		if err != nil {
			t.Fatal(err)
		}
		want, err := RunCollect(&Ctx{DB: db, Q: q}, CanonicalPlan(q, q.AllTablesMask()))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("rescan NLJ = %d, want %d for %s", got, want, q.SQL())
		}
	}
}

func TestMultiConditionJoin(t *testing.T) {
	// Two tables joined on two columns simultaneously.
	s := catalog.NewSchema()
	a := s.AddTable("a", catalog.PK("id"), catalog.Attr("x"))
	b := s.AddTable("b", catalog.FK("a_id", a.Column("id")), catalog.FK("ax", a.Column("x")))
	db := storage.NewDatabase(s)
	at := storage.NewTable(a, 4)
	copy(at.ColByName("id"), []int64{0, 1, 2, 3})
	copy(at.ColByName("x"), []int64{5, 5, 6, 6})
	db.Tables[a.ID] = at
	bt := storage.NewTable(b, 4)
	copy(bt.ColByName("a_id"), []int64{0, 1, 2, 3})
	copy(bt.ColByName("ax"), []int64{5, 6, 6, 5}) // rows 1 and 3 mismatch x
	db.Tables[b.ID] = bt
	at.FinishLoad()
	bt.FinishLoad()

	q := query.New([]*catalog.Table{a, b},
		[]query.Join{
			{Left: b.Column("a_id"), Right: a.Column("id")},
			{Left: b.Column("ax"), Right: a.Column("x")},
		}, nil)
	const want = 2 // only rows 0 and 2 satisfy both conditions
	for _, op := range []plan.PhysOp{plan.HashJoin, plan.MergeJoin, plan.NestLoopJoin} {
		p := CanonicalPlan(q, q.AllTablesMask())
		setJoinOps(p, op)
		got, err := Run(&Ctx{DB: db, Q: q}, p)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if got != want {
			t.Fatalf("%v: multi-cond count = %d, want %d", op, got, want)
		}
	}
	// brute force cross-check
	if got := testutil.BruteCount(db, q); got != want {
		t.Fatalf("brute force = %d, want %d", got, want)
	}
}

func TestOracleBudgetExceeded(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 132)
	q := g.Query(3)
	o := NewTrueCardOracle(db)
	o.Budget = 5
	if _, err := o.TryEstimate(q, q.AllTablesMask()); err == nil {
		t.Fatal("expected budget error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EstimateSubset should panic on budget exhaustion")
		}
	}()
	o.EstimateSubset(q, q.AllTablesMask())
}

func TestOraclePipelinedMatchesCollect(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 133)
	o := NewTrueCardOracle(db)
	for i := 0; i < 10; i++ {
		q := g.Query(2 + i%3)
		want, err := RunCollect(&Ctx{DB: db, Q: q}, CanonicalPlan(q, q.AllTablesMask()))
		if err != nil {
			t.Fatal(err)
		}
		if got := o.EstimateSubset(q, q.AllTablesMask()); int(got) != want {
			t.Fatalf("pipelined oracle %v != collected %d for %s", got, want, q.SQL())
		}
	}
}
