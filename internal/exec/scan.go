package exec

import (
	"fmt"

	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
)

// seqScan reads a base table row by row, applying the leaf's predicates.
type seqScan struct {
	node  *plan.Node
	table *storage.Table
	row   int
	buf   Tuple
	count int
}

func newSeqScan(ctx *Ctx, n *plan.Node) *seqScan {
	return &seqScan{node: n, table: ctx.DB.Table(n.Table)}
}

func (s *seqScan) Open(*Ctx) error {
	s.row = 0
	s.count = 0
	s.buf = make(Tuple, len(s.table.Meta.Columns))
	return nil
}

func (s *seqScan) Next(ctx *Ctx) (Tuple, bool, error) {
	n := s.table.NumRows()
	for s.row < n {
		r := s.row
		s.row++
		if err := ctx.charge(1); err != nil {
			return nil, false, err
		}
		if !rowMatches(s.table, r, s.node.Preds) {
			continue
		}
		for c := range s.buf {
			s.buf[c] = s.table.Cols[c][r]
		}
		s.count++
		return s.buf, true, nil
	}
	s.node.TrueCard = float64(s.count)
	return nil, false, nil
}

func (s *seqScan) Close() {}

// rowMatches evaluates all predicates on one physical row.
func rowMatches(t *storage.Table, row int, preds []query.Predicate) bool {
	for _, p := range preds {
		if !p.Eval(t.Cols[p.Col.Pos][row]) {
			return false
		}
	}
	return true
}

// indexScan drives the scan from an ordered (range/equality) index on the
// IndexPred column and applies the remaining predicates to each match.
type indexScan struct {
	node    *plan.Node
	table   *storage.Table
	rids    []int32
	rest    []query.Predicate
	pos     int
	buf     Tuple
	count   int
	inLists [][]int32 // pre-resolved rid lists for IN predicates
}

func newIndexScan(ctx *Ctx, n *plan.Node) (*indexScan, error) {
	if n.IndexPred == nil {
		return nil, errNoIndexPred(n)
	}
	return &indexScan{node: n, table: ctx.DB.Table(n.Table)}, nil
}

func errNoIndexPred(n *plan.Node) error {
	return fmt.Errorf("exec: IndexScan on %s without an index predicate", n.Table.Name)
}

// resolveIndexRids resolves the row ids matching an index predicate. The
// prev slice is reused for the OpIn gather; the other cases return
// index-owned slices which callers must treat as read-only.
func resolveIndexRids(t *storage.Table, p query.Predicate, prev []int32) ([]int32, error) {
	switch p.Op {
	case query.OpEQ:
		return t.HashIndex(p.Col.Pos).Lookup(p.Operand), nil
	case query.OpIn:
		ix := t.HashIndex(p.Col.Pos)
		rids := prev[:0]
		for _, v := range p.InSet {
			rids = append(rids, ix.Lookup(v)...)
		}
		return rids, nil
	case query.OpLT:
		return t.OrderedIndex(p.Col.Pos).Range(minInt64, p.Operand-1), nil
	case query.OpLE:
		return t.OrderedIndex(p.Col.Pos).Range(minInt64, p.Operand), nil
	case query.OpGT:
		return t.OrderedIndex(p.Col.Pos).Range(p.Operand+1, maxInt64), nil
	case query.OpGE:
		return t.OrderedIndex(p.Col.Pos).Range(p.Operand, maxInt64), nil
	default:
		return nil, fmt.Errorf("exec: operator %v cannot drive an index scan", p.Op)
	}
}

func (s *indexScan) Open(ctx *Ctx) error {
	s.pos = 0
	s.count = 0
	s.buf = make(Tuple, len(s.table.Meta.Columns))
	s.rest = s.rest[:0]
	for i := range s.node.Preds {
		if &s.node.Preds[i] != s.node.IndexPred {
			s.rest = append(s.rest, s.node.Preds[i])
		}
	}
	// charge the index descent
	if err := ctx.charge(16); err != nil {
		return err
	}
	rids, err := resolveIndexRids(s.table, *s.node.IndexPred, s.rids)
	if err != nil {
		return err
	}
	s.rids = rids
	return nil
}

const (
	minInt64 = int64(-1 << 63)
	maxInt64 = int64(1<<63 - 1)
)

func (s *indexScan) Next(ctx *Ctx) (Tuple, bool, error) {
	for s.pos < len(s.rids) {
		r := int(s.rids[s.pos])
		s.pos++
		if err := ctx.charge(1); err != nil {
			return nil, false, err
		}
		if !rowMatches(s.table, r, s.rest) {
			continue
		}
		for c := range s.buf {
			s.buf[c] = s.table.Cols[c][r]
		}
		s.count++
		return s.buf, true, nil
	}
	s.node.TrueCard = float64(s.count)
	return nil, false, nil
}

func (s *indexScan) Close() {}

// matScan replays a materialized intermediate result (re-optimization
// resume path).
type matScan struct {
	node *plan.Node
	pos  int
}

func newMatScan(n *plan.Node) *matScan { return &matScan{node: n} }

func (s *matScan) Open(*Ctx) error {
	s.pos = 0
	return nil
}

func (s *matScan) Next(ctx *Ctx) (Tuple, bool, error) {
	rows := s.node.Mat.Rows
	if s.pos >= len(rows) {
		s.node.TrueCard = float64(len(rows))
		return nil, false, nil
	}
	if err := ctx.charge(1); err != nil {
		return nil, false, err
	}
	t := rows[s.pos]
	s.pos++
	return t, true, nil
}

func (s *matScan) Close() {}
