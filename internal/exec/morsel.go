package exec

import (
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/storage"
)

// morselSize is the number of source units (physical rows, index rids, or
// materialized/outer rows) per morsel. It is a multiple of BatchSize so a
// replica scan's per-chunk work charges lump exactly like the serial scan's,
// and it is independent of the worker count so the recorded charge sequence
// — and therefore every observable — is identical for any Workers value.
// Tests shrink it to exercise multi-morsel runs on small tables.
var morselSize = 4 * BatchSize

// SetMorselSize overrides the morsel granularity and returns a function
// restoring the previous value. It exists for cross-package tests that need
// multi-morsel scheduling on tiny fixtures; production code never calls it,
// and it must not be called while executions are in flight.
func SetMorselSize(n int) (restore func()) {
	old := morselSize
	morselSize = n
	return func() { morselSize = old }
}

// SetExchangeWorkerCap overrides the GOMAXPROCS clamp on exchange workers
// and returns a function restoring the previous value. It exists for tests
// that must exercise genuinely concurrent replica pipelines regardless of
// the host's core count (results are identical either way — that is the
// property under test); production code never calls it. The cap also bounds
// buildVecTable's workers and forwards to storage.SetSealWorkerCap, so one
// hook governs every parallel path whose output must match serial.
func SetExchangeWorkerCap(n int) (restore func()) {
	old := exchangeWorkerCap
	exchangeWorkerCap = n
	restoreSeal := storage.SetSealWorkerCap(n)
	return func() {
		exchangeWorkerCap = old
		restoreSeal()
	}
}

// morselSource is a batch operator whose output can be split into morsels:
// contiguous ranges of source units, each surfaced as an independent
// BatchOperator stream. morselUnits and morselReplica are only called after
// the source's Open has succeeded; replicas are born open — their Open and
// Close are never called — and concatenating the replica streams for
// [0,k), [k,m), ... [n,units) in range order reproduces the serial stream
// byte for byte, including the per-chunk work charges.
type morselSource interface {
	BatchOperator
	// morselUnits reports the total number of splittable source units.
	morselUnits() int
	// morselReplica returns an operator streaming units [lo, hi). The
	// replica must not share mutable state with the source or any other
	// replica; plan-node stamps go to a private shadow node and are
	// discarded (the exchange stamps the real nodes from aggregated counts).
	morselReplica(lo, hi int) BatchOperator
}

func (s *batchSeqScan) morselUnits() int { return s.table.NumRows() }

// morselReplica shares the segment view (zone-map pruning decisions) built
// by the source's serial Open; decode scratch and selection vectors are
// replica-private.
func (s *batchSeqScan) morselReplica(lo, hi int) BatchOperator {
	shadow := *s.node
	return &batchSeqScan{node: &shadow, table: s.table, zs: s.zs, row: lo, end: hi}
}

func (s *batchIndexScan) morselUnits() int { return len(s.rids) }

// morselReplica shares the resolved rids and residual predicates read-only;
// the 16-unit index-descent charge stays with the source's serial Open.
func (s *batchIndexScan) morselReplica(lo, hi int) BatchOperator {
	shadow := *s.node
	return &batchIndexScan{node: &shadow, table: s.table, zs: s.zs, rids: s.rids, rest: s.rest, pos: lo, end: hi}
}

func (s *batchMatScan) morselUnits() int { return len(s.node.Mat.Rows) }

func (s *batchMatScan) morselReplica(lo, hi int) BatchOperator {
	shadow := *s.node
	return &batchMatScan{node: &shadow, width: s.width, pos: lo, end: hi}
}

// batchNLJoin is a morsel source over its materialized outer side: both
// pipeline breakers (outer drain, and inner drain or index) complete during
// the serial Open, so the remaining probe work partitions cleanly by outer
// row.
func (j *batchNLJoin) morselUnits() int { return len(j.outer) }

func (j *batchNLJoin) morselReplica(lo, hi int) BatchOperator {
	shadow := *j.node
	r := &batchNLJoin{
		node:  &shadow,
		conds: j.conds, merge: j.merge,
		outer:      j.outer[lo:hi],
		inner:      j.inner,
		idxTable:   j.idxTable,
		idxCol:     j.idxCol,
		idxCondOff: j.idxCondOff,
	}
	if j.idxTable != nil {
		r.innerBuf = make(Tuple, len(j.innerBuf))
	}
	return r
}

// probeReplica clones a hash join's probe stage over a replica left child:
// the build arena, vecTable, conditions, and merge plan are shared read-only
// while all probe-side state (probe cursor, chain cursor, pending charges,
// output arena) is private. The replica is born open; its right child is nil
// and never touched because builds happen only in Open.
func (h *batchHashJoin) probeReplica(left BatchOperator) *batchHashJoin {
	shadow := *h.node
	return &batchHashJoin{
		node: &shadow, left: left,
		conds: h.conds, merge: h.merge,
		rows: h.rows, table: h.table,
		chain: -1,
	}
}

// pipeNode is one stage of an extracted streaming pipeline, bottom (source)
// first. op is the unwrapped operator; shim is the tracing wrapper that
// surrounded it, if any, so the exchange can stamp aggregated stats into the
// trace at exhaustion.
type pipeNode struct {
	op   BatchOperator
	shim *tracedBatchOp
	plan *plan.Node
}

// extractPipeline walks a built (and opened) batch operator tree down its
// streaming edge — hash joins stream their left child; every other operator
// either is a source or materializes its children in Open — and returns the
// pipeline stages bottom-up plus the morsel source at the bottom. It returns
// ok=false when any stage is not morsel-aware (scalar-wrapped lift adapters,
// merge joins, test wrappers), in which case the caller keeps the serial
// path.
func extractPipeline(op BatchOperator) ([]pipeNode, morselSource, bool) {
	var rev []pipeNode
	cur := op
	for {
		var shim *tracedBatchOp
		if t, ok := cur.(*tracedBatchOp); ok {
			shim = t
			cur = t.inner
		}
		switch v := cur.(type) {
		case *batchHashJoin:
			rev = append(rev, pipeNode{op: v, shim: shim, plan: v.node})
			cur = v.left
		case *batchSeqScan:
			return pipelineOrder(rev, pipeNode{op: v, shim: shim, plan: v.node}), v, true
		case *batchIndexScan:
			return pipelineOrder(rev, pipeNode{op: v, shim: shim, plan: v.node}), v, true
		case *batchMatScan:
			return pipelineOrder(rev, pipeNode{op: v, shim: shim, plan: v.node}), v, true
		case *batchNLJoin:
			return pipelineOrder(rev, pipeNode{op: v, shim: shim, plan: v.node}), v, true
		default:
			return nil, nil, false
		}
	}
}

// pipelineOrder reverses the top-down stage list collected by
// extractPipeline into bottom-up order, with the source prepended.
func pipelineOrder(rev []pipeNode, src pipeNode) []pipeNode {
	out := make([]pipeNode, 0, len(rev)+1)
	out = append(out, src)
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// buildReplicaChain assembles one morsel's replica pipeline: a source
// replica for units [lo, hi), each upper hash-join stage cloned via
// probeReplica, and a counting shim per stage so the worker can report
// per-node row/batch counts for the coordinator to aggregate.
func buildReplicaChain(pipe []pipeNode, src morselSource, lo, hi int) (BatchOperator, []*replicaShim) {
	shims := make([]*replicaShim, len(pipe))
	cur := BatchOperator(src.morselReplica(lo, hi))
	shims[0] = &replicaShim{inner: cur}
	cur = shims[0]
	for i := 1; i < len(pipe); i++ {
		j := pipe[i].op.(*batchHashJoin)
		shims[i] = &replicaShim{inner: j.probeReplica(cur)}
		cur = shims[i]
	}
	return cur, shims
}

// replicaShim counts rows and batches flowing out of one replica pipeline
// stage. It is worker-local; the exchange coordinator sums the counts across
// morsels to stamp TrueCard and trace stats exactly as the serial operators
// would have.
type replicaShim struct {
	inner   BatchOperator
	rows    int64
	batches int64
}

func (s *replicaShim) Open(ctx *Ctx) error { return s.inner.Open(ctx) }

func (s *replicaShim) NextBatch(ctx *Ctx) (*Batch, error) {
	b, err := s.inner.NextBatch(ctx)
	if b != nil {
		s.rows += int64(b.n)
		s.batches++
	}
	return b, err
}

func (s *replicaShim) Close() { s.inner.Close() }
