package exec

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"github.com/lpce-db/lpce/internal/obs"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/testutil"
	"github.com/lpce-db/lpce/internal/workload"
)

// The morsel-driven parallel path must be observationally identical to the
// scalar reference for every worker count: same counts, same result rows in
// the same order, same TrueCard stamps, same checkpoint sequences, the same
// work and materialization totals on success, and the same typed errors
// under budget / MaxMatRows / reopt / cancellation. These tests sweep
// Workers ∈ {1, 2, 4, 8} over the same randomized corpus as the serial
// equivalence suite, with morselSize shrunk so the tiny fixtures split into
// many morsels.

var parallelWorkerCounts = []int{1, 2, 4, 8}

// shrinkMorsels drops morselSize so TinyDB-sized inputs exercise real
// multi-morsel scheduling, and lifts the GOMAXPROCS worker clamp so every
// requested worker count runs genuinely concurrently even on a single-core
// host — the equivalence property must hold regardless of cores. Both are
// restored afterwards; tests in this package run sequentially, so the swap
// cannot race.
func shrinkMorsels(t *testing.T) {
	old := morselSize
	morselSize = 64
	t.Cleanup(func() { morselSize = old })
	t.Cleanup(SetExchangeWorkerCap(64))
}

// runPathWorkers executes a plan on the batch path behind maybeExchange with
// the given worker count — the same wiring RunBatch uses — returning the
// count, an order-sensitive content hash of the emitted rows, and the error.
func runPathWorkers(ctx *Ctx, p *plan.Node, workers int) (int, uint64, error) {
	ctx.ExecWorkers = workers
	var hash uint64 = 14695981039346656037
	op, err := BuildBatch(ctx, p)
	if err != nil {
		return 0, 0, err
	}
	op = maybeExchange(ctx, op)
	defer op.Close()
	if err := op.Open(ctx); err != nil {
		return 0, 0, err
	}
	count := 0
	for {
		b, err := op.NextBatch(ctx)
		if err != nil {
			return 0, 0, err
		}
		if b == nil {
			break
		}
		for i := 0; i < b.Len(); i++ {
			row := b.Row(i)
			for _, v := range row {
				hash ^= uint64(v)
				hash *= 1099511628211
			}
		}
		count += b.Len()
	}
	p.TrueCard = float64(count)
	return count, hash, nil
}

func TestScalarBatchParallelEquivalence(t *testing.T) {
	shrinkMorsels(t)
	db := testutil.TinyDB()
	equivCorpus(t, db, 41, 8, func(q *query.Query, p *plan.Node, variant string) {
		ps := p.Clone()
		rcS := &ckptRecorder{}
		ctxS := &Ctx{DB: db, Q: q, Controller: rcS}
		cS, hS, errS := runPath(ctxS, ps, false)
		if errS != nil {
			t.Fatalf("%s/%s: scalar err %v", q.SQL(), variant, errS)
		}
		tcS := trueCards(ps)
		for _, w := range parallelWorkerCounts {
			pw := p.Clone()
			rcW := &ckptRecorder{}
			ctxW := &Ctx{DB: db, Q: q, Controller: rcW}
			cW, hW, errW := runPathWorkers(ctxW, pw, w)
			if errW != nil {
				t.Fatalf("%s/%s w=%d: err %v", q.SQL(), variant, w, errW)
			}
			if cW != cS || hW != hS {
				t.Fatalf("%s/%s w=%d: count/hash %d/%x, scalar %d/%x", q.SQL(), variant, w, cW, hW, cS, hS)
			}
			if ctxW.Work() != ctxS.Work() {
				t.Fatalf("%s/%s w=%d: work %d, scalar %d", q.SQL(), variant, w, ctxW.Work(), ctxS.Work())
			}
			if ctxW.MatRows() != ctxS.MatRows() {
				t.Fatalf("%s/%s w=%d: matRows %d, scalar %d", q.SQL(), variant, w, ctxW.MatRows(), ctxS.MatRows())
			}
			if len(rcW.events) != len(rcS.events) {
				t.Fatalf("%s/%s w=%d: %d checkpoints, scalar %d", q.SQL(), variant, w, len(rcW.events), len(rcS.events))
			}
			for i := range rcS.events {
				if rcW.events[i] != rcS.events[i] {
					t.Fatalf("%s/%s w=%d: checkpoint %d differs: %+v vs %+v",
						q.SQL(), variant, w, i, rcW.events[i], rcS.events[i])
				}
			}
			tcW := trueCards(pw)
			for mask, v := range tcS {
				if tcW[mask] != v {
					t.Fatalf("%s/%s w=%d: TrueCard at %b: %v, scalar %v", q.SQL(), variant, w, uint32(mask), tcW[mask], v)
				}
			}
		}
	})
}

func TestScalarBatchParallelEquivalenceUnderBudget(t *testing.T) {
	shrinkMorsels(t)
	db := testutil.TinyDB()
	equivCorpus(t, db, 42, 4, func(q *query.Query, p *plan.Node, variant string) {
		probe := &Ctx{DB: db, Q: q, Controller: NopController{}}
		if _, err := Run(probe, p.Clone()); err != nil {
			t.Fatalf("%s/%s: unlimited run failed: %v", q.SQL(), variant, err)
		}
		total := probe.Work()
		for _, budget := range []int64{1, total / 2, total - 1, total, total + 1} {
			if budget <= 0 {
				continue
			}
			rcS := &ckptRecorder{}
			ctxS := &Ctx{DB: db, Q: q, Controller: rcS, Budget: budget}
			_, _, errS := runPath(ctxS, p.Clone(), false)
			for _, w := range []int{2, 4} {
				rcW := &ckptRecorder{}
				ctxW := &Ctx{DB: db, Q: q, Controller: rcW, Budget: budget}
				_, _, errW := runPathWorkers(ctxW, p.Clone(), w)
				if !sameTypedError(errS, errW) {
					t.Fatalf("%s/%s budget %d w=%d: scalar err %v, parallel err %v", q.SQL(), variant, budget, w, errS, errW)
				}
				if len(rcW.events) != len(rcS.events) {
					t.Fatalf("%s/%s budget %d w=%d: %d checkpoints, scalar %d",
						q.SQL(), variant, budget, w, len(rcW.events), len(rcS.events))
				}
				for i := range rcS.events {
					if rcW.events[i] != rcS.events[i] {
						t.Fatalf("%s/%s budget %d w=%d: checkpoint %d differs", q.SQL(), variant, budget, w, i)
					}
				}
			}
		}
	})
}

func TestScalarBatchParallelEquivalenceUnderMatLimit(t *testing.T) {
	shrinkMorsels(t)
	db := testutil.TinyDB()
	equivCorpus(t, db, 43, 4, func(q *query.Query, p *plan.Node, variant string) {
		probe := &Ctx{DB: db, Q: q, Controller: NopController{}}
		if _, err := Run(probe, p.Clone()); err != nil {
			t.Fatal(err)
		}
		total := probe.MatRows()
		if total == 0 {
			return
		}
		for _, limit := range []int64{1, total / 2, total, total + 1} {
			if limit <= 0 {
				continue
			}
			ctxS := &Ctx{DB: db, Q: q, Controller: NopController{}, MaxMatRows: limit}
			_, _, errS := runPath(ctxS, p.Clone(), false)
			for _, w := range []int{2, 4} {
				ctxW := &Ctx{DB: db, Q: q, Controller: NopController{}, MaxMatRows: limit}
				_, _, errW := runPathWorkers(ctxW, p.Clone(), w)
				if !sameTypedError(errS, errW) {
					t.Fatalf("%s/%s limit %d w=%d: scalar err %v, parallel err %v", q.SQL(), variant, limit, w, errS, errW)
				}
				if ctxW.MatRows() != ctxS.MatRows() {
					t.Fatalf("%s/%s limit %d w=%d: matRows %d, scalar %d",
						q.SQL(), variant, limit, w, ctxW.MatRows(), ctxS.MatRows())
				}
				if errS == nil && ctxW.Work() != ctxS.Work() {
					t.Fatalf("%s/%s limit %d w=%d: work %d, scalar %d",
						q.SQL(), variant, limit, w, ctxW.Work(), ctxS.Work())
				}
			}
		}
	})
}

func TestScalarBatchParallelEquivalenceUnderReoptSignal(t *testing.T) {
	shrinkMorsels(t)
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 44)
	tested := 0
	for i := 0; i < 20 && tested < 6; i++ {
		q := g.Query(2)
		p := CanonicalPlan(q, q.AllTablesMask())
		failMask := p.Left.Right.Tables
		rcS := &ckptRecorder{failAt: failMask}
		_, _, errS := runPath(&Ctx{DB: db, Q: q, Controller: rcS}, p.Clone(), false)
		for _, w := range []int{2, 4} {
			rcW := &ckptRecorder{failAt: failMask}
			_, _, errW := runPathWorkers(&Ctx{DB: db, Q: q, Controller: rcW}, p.Clone(), w)
			if !sameTypedError(errS, errW) {
				t.Fatalf("%s w=%d: scalar err %v, parallel err %v", q.SQL(), w, errS, errW)
			}
			var sig *ReoptSignal
			if !errors.As(errW, &sig) || sig.Node.Tables != failMask {
				t.Fatalf("%s w=%d: expected ReoptSignal at %b, got %v", q.SQL(), w, uint32(failMask), errW)
			}
		}
		tested++
	}
	if tested == 0 {
		t.Fatal("no multi-join queries generated")
	}
}

func TestScalarBatchParallelEquivalenceUnderCancellation(t *testing.T) {
	shrinkMorsels(t)
	db := testutil.TinyDB()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	equivCorpus(t, db, 45, 3, func(q *query.Query, p *plan.Node, variant string) {
		for _, w := range []int{2, 4} {
			ctxW := &Ctx{DB: db, Q: q, Controller: NopController{}, Context: cancelled}
			_, _, errW := runPathWorkers(ctxW, p.Clone(), w)
			if !errors.Is(errW, context.Canceled) {
				t.Fatalf("%s/%s w=%d: expected context.Canceled, got %v", q.SQL(), variant, w, errW)
			}
		}
	})
}

// TestScalarBatchParallelWithTraceAndWrap checks that the exchange composes
// with the observability shims (aggregated per-node Rows/ActualRows match
// the scalar trace) and that scalar-level wrappers force the affected
// pipelines back to the serial batch path without changing results.
func TestScalarBatchParallelWithTraceAndWrap(t *testing.T) {
	shrinkMorsels(t)
	db := testutil.TinyDB()
	wrapEven := func(ctx *Ctx, op Operator, n *plan.Node) Operator {
		if len(n.Tables.Indices())%2 == 0 {
			return passThrough{op}
		}
		return op
	}
	for _, wrap := range []WrapFunc{nil, wrapEven} {
		equivCorpus(t, db, 46, 4, func(q *query.Query, p *plan.Node, variant string) {
			trS := &obs.ExecTrace{}
			ctxS := &Ctx{DB: db, Q: q, Controller: NopController{}, Trace: trS, Wrap: wrap}
			cS, hS, errS := runPath(ctxS, p.Clone(), false)
			if errS != nil {
				t.Fatalf("%s/%s: scalar err %v", q.SQL(), variant, errS)
			}
			for _, w := range []int{2, 4} {
				trW := &obs.ExecTrace{}
				ctxW := &Ctx{DB: db, Q: q, Controller: NopController{}, Trace: trW, Wrap: wrap}
				cW, hW, errW := runPathWorkers(ctxW, p.Clone(), w)
				if errW != nil {
					t.Fatalf("%s/%s w=%d: err %v", q.SQL(), variant, w, errW)
				}
				if cW != cS || hW != hS {
					t.Fatalf("%s/%s w=%d: results differ under trace (counts %d/%d)", q.SQL(), variant, w, cW, cS)
				}
				for _, s := range trS.Ops {
					b := trW.ByMask(s.Mask)
					if b == nil {
						t.Fatalf("%s/%s w=%d: parallel trace missing op at %b", q.SQL(), variant, w, uint32(s.Mask))
					}
					if b.Rows != s.Rows || b.ActualRows != s.ActualRows {
						t.Fatalf("%s/%s w=%d: trace at %b: scalar rows=%d actual=%v, parallel rows=%d actual=%v",
							q.SQL(), variant, w, uint32(s.Mask), s.Rows, s.ActualRows, b.Rows, b.ActualRows)
					}
				}
			}
		})
	}
}

// TestScalarBatchParallelNoGoroutineLeaks drives parallel runs to success,
// budget failure, and cancellation, then checks the exchange joined every
// worker it spawned.
func TestScalarBatchParallelNoGoroutineLeaks(t *testing.T) {
	shrinkMorsels(t)
	db := testutil.TinyDB()
	before := runtime.NumGoroutine()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	equivCorpus(t, db, 47, 3, func(q *query.Query, p *plan.Node, variant string) {
		for _, w := range []int{2, 8} {
			ctxOK := &Ctx{DB: db, Q: q, Controller: NopController{}}
			if _, _, err := runPathWorkers(ctxOK, p.Clone(), w); err != nil {
				t.Fatalf("%s/%s w=%d: %v", q.SQL(), variant, w, err)
			}
			ctxB := &Ctx{DB: db, Q: q, Controller: NopController{}, Budget: 10}
			_, _, _ = runPathWorkers(ctxB, p.Clone(), w)
			ctxC := &Ctx{DB: db, Q: q, Controller: NopController{}, Context: cancelled}
			_, _, _ = runPathWorkers(ctxC, p.Clone(), w)
		}
	})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
