package exec

import (
	"errors"
	"math"
	"testing"

	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/testutil"
)

// Operator lifecycle regression suite: a failed Open or a mid-drain error
// must still tear the operator tree down — every operator that was opened
// gets closed, closes are idempotent, and pipeline breakers release their
// buffered state after a failed Open.

// countingBatchOp counts Open/Close calls and can fail its inner Open on
// command (when its owner's failing counter selects it).
type countingBatchOp struct {
	inner  BatchOperator
	node   *plan.Node
	owner  *lifecycleProbe
	opens  int
	closes int
}

type lifecycleProbe struct {
	ops      []*countingBatchOp
	openSeq  int // Open attempts so far, across the tree
	failOpen int // fail the N-th Open attempt (1-based), 0 = never
}

var errInjectedOpen = errors.New("exec test: injected Open failure")

func (p *lifecycleProbe) install(t *testing.T) {
	t.Helper()
	if testBatchWrap != nil {
		t.Fatal("testBatchWrap already installed")
	}
	testBatchWrap = func(op BatchOperator, n *plan.Node) BatchOperator {
		c := &countingBatchOp{inner: op, node: n, owner: p}
		p.ops = append(p.ops, c)
		return c
	}
	t.Cleanup(func() { testBatchWrap = nil })
}

func (c *countingBatchOp) Open(ctx *Ctx) error {
	c.opens++
	c.owner.openSeq++
	if c.owner.failOpen != 0 && c.owner.openSeq == c.owner.failOpen {
		return errInjectedOpen
	}
	return c.inner.Open(ctx)
}

func (c *countingBatchOp) NextBatch(ctx *Ctx) (*Batch, error) { return c.inner.NextBatch(ctx) }

func (c *countingBatchOp) Close() {
	c.closes++
	c.inner.Close()
}

// lifecyclePlans yields a handful of plan shapes covering every batch
// operator: hash, merge, and nested-loop joins plus the mixed assignment.
func lifecyclePlans(t *testing.T, fn func(q *query.Query, p *plan.Node, variant string)) {
	db := testutil.TinyDB()
	equivCorpus(t, db, 48, 2, fn)
}

// TestDrainBatchClosesChildOnError is the regression test for the
// drainBatch leak: an error during materialization (here a MaxMatRows trip)
// must close the drained child before drainBatch returns, not leave it for
// the caller's eventual teardown.
func TestDrainBatchClosesChildOnError(t *testing.T) {
	db := testutil.TinyDB()
	tripped := 0
	lifecyclePlans(t, func(q *query.Query, p *plan.Node, variant string) {
		ctx := &Ctx{DB: db, Q: q, Controller: NopController{}, MaxMatRows: 1}
		inner, err := BuildBatch(ctx, p)
		if err != nil {
			t.Fatalf("%s/%s: build: %v", q.SQL(), variant, err)
		}
		closes := 0
		counted := &closeCountingBatchOp{inner: inner, closes: &closes}
		_, err = drainBatch(ctx, p, counted)
		if closes == 0 {
			t.Fatalf("%s/%s: drainBatch returned (err=%v) without closing its child", q.SQL(), variant, err)
		}
		var re *ResourceError
		if errors.As(err, &re) {
			tripped++
		}
		counted.Close() // callers may close again; must be harmless
	})
	if tripped == 0 {
		t.Fatal("no corpus plan tripped the materialization limit; error path untested")
	}
}

type closeCountingBatchOp struct {
	inner  BatchOperator
	closes *int
}

func (c *closeCountingBatchOp) Open(ctx *Ctx) error { return c.inner.Open(ctx) }
func (c *closeCountingBatchOp) NextBatch(ctx *Ctx) (*Batch, error) {
	return c.inner.NextBatch(ctx)
}
func (c *closeCountingBatchOp) Close() { *c.closes++; c.inner.Close() }

// TestBatchOpenFailureLifecycle errors at every possible Open step of every
// corpus plan, then Closes the root: every operator that was opened must be
// closed, with no double-close panics.
func TestBatchOpenFailureLifecycle(t *testing.T) {
	db := testutil.TinyDB()
	probe := &lifecycleProbe{}
	probe.install(t)
	lifecyclePlans(t, func(q *query.Query, p *plan.Node, variant string) {
		// first pass: count Open attempts on a clean run
		probe.ops, probe.openSeq, probe.failOpen = nil, 0, 0
		ctx := &Ctx{DB: db, Q: q, Controller: NopController{}}
		op, err := BuildBatch(ctx, p.Clone())
		if err != nil {
			t.Fatalf("%s/%s: build: %v", q.SQL(), variant, err)
		}
		if err := op.Open(ctx); err != nil {
			t.Fatalf("%s/%s: clean open: %v", q.SQL(), variant, err)
		}
		op.Close()
		attempts := probe.openSeq

		for k := 1; k <= attempts; k++ {
			probe.ops, probe.openSeq, probe.failOpen = nil, 0, k
			ctx := &Ctx{DB: db, Q: q, Controller: NopController{}}
			op, err := BuildBatch(ctx, p.Clone())
			if err != nil {
				t.Fatalf("%s/%s k=%d: build: %v", q.SQL(), variant, k, err)
			}
			if err := op.Open(ctx); !errors.Is(err, errInjectedOpen) {
				t.Fatalf("%s/%s k=%d: expected injected Open failure, got %v", q.SQL(), variant, k, err)
			}
			op.Close()
			for _, c := range probe.ops {
				if c.opens > 0 && c.closes == 0 {
					t.Fatalf("%s/%s k=%d: %v over %#x opened %d times but never closed",
						q.SQL(), variant, k, c.node.Op, uint32(c.node.Tables), c.opens)
				}
			}
			op.Close() // idempotency: a second Close must be harmless
		}
	})
}

// TestBatchBudgetFailureLifecycle sweeps small work budgets so errors land
// mid-drain and mid-probe rather than at Open boundaries, asserting the same
// opened-implies-closed invariant.
func TestBatchBudgetFailureLifecycle(t *testing.T) {
	db := testutil.TinyDB()
	probe := &lifecycleProbe{}
	probe.install(t)
	lifecyclePlans(t, func(q *query.Query, p *plan.Node, variant string) {
		for _, budget := range []int64{1, 7, 63, 500, 2000} {
			probe.ops, probe.openSeq, probe.failOpen = nil, 0, 0
			ctx := &Ctx{DB: db, Q: q, Controller: NopController{}, Budget: budget}
			op, err := BuildBatch(ctx, p.Clone())
			if err != nil {
				t.Fatalf("%s/%s: build: %v", q.SQL(), variant, err)
			}
			if err := op.Open(ctx); err == nil {
				for {
					b, err := op.NextBatch(ctx)
					if err != nil || b == nil {
						break
					}
				}
			}
			op.Close()
			for _, c := range probe.ops {
				if c.opens > 0 && c.closes == 0 {
					t.Fatalf("%s/%s budget %d: %v over %#x opened but never closed",
						q.SQL(), variant, budget, c.node.Op, uint32(c.node.Tables))
				}
			}
		}
	})
}

// TestBatchHashJoinReleasesOnOpenFailure checks that a hash join whose Open
// fails after the build completed (checkpoint returns an error) does not
// retain the build arena or table.
func TestBatchHashJoinReleasesOnOpenFailure(t *testing.T) {
	db := testutil.TinyDB()
	tested := 0
	lifecyclePlans(t, func(q *query.Query, p *plan.Node, variant string) {
		if p.Op != plan.HashJoin {
			return
		}
		rc := &ckptRecorder{failAt: p.Right.Tables}
		ctx := &Ctx{DB: db, Q: q, Controller: rc}
		op, err := BuildBatch(ctx, p)
		if err != nil {
			t.Fatalf("%s/%s: build: %v", q.SQL(), variant, err)
		}
		h, ok := op.(*batchHashJoin)
		if !ok {
			t.Fatalf("%s/%s: expected *batchHashJoin, got %T", q.SQL(), variant, op)
		}
		err = h.Open(ctx)
		var sig *ReoptSignal
		if !errors.As(err, &sig) {
			t.Fatalf("%s/%s: expected ReoptSignal from checkpoint, got %v", q.SQL(), variant, err)
		}
		if h.rows != nil || h.table != nil {
			t.Fatalf("%s/%s: failed Open retained rows=%v table=%v", q.SQL(), variant, h.rows != nil, h.table != nil)
		}
		h.Close()
		h.Close() // double Close after failed Open must not panic
		tested++
	})
	if tested == 0 {
		t.Fatal("corpus produced no hash-join roots")
	}
}

// TestVecBuildSizeGuard pins the int32 overflow guard: builds up to
// MaxInt32 rows pass, anything larger fails with a typed *ResourceError
// before the table would corrupt its chain links.
func TestVecBuildSizeGuard(t *testing.T) {
	if err := checkVecBuildSize(0); err != nil {
		t.Fatalf("0 rows: %v", err)
	}
	if err := checkVecBuildSize(1 << 20); err != nil {
		t.Fatalf("2^20 rows: %v", err)
	}
	if err := checkVecBuildSize(math.MaxInt32); err != nil {
		t.Fatalf("MaxInt32 rows must pass: %v", err)
	}
	err := checkVecBuildSize(math.MaxInt32 + 1)
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("MaxInt32+1 rows: expected *ResourceError, got %v", err)
	}
	if re.Resource != "hash-build-rows" || re.Limit != math.MaxInt32 || re.Used != math.MaxInt32+1 {
		t.Fatalf("unexpected payload: %+v", re)
	}
}

// TestScalarDrainClosesChildOnError is drain's counterpart of the
// drainBatch regression: the scalar pipeline breakers must also close their
// drained child on a mid-drain error.
func TestScalarDrainClosesChildOnError(t *testing.T) {
	db := testutil.TinyDB()
	lifecyclePlans(t, func(q *query.Query, p *plan.Node, variant string) {
		if !p.Op.IsJoin() {
			return
		}
		closes := 0
		ctx := &Ctx{DB: db, Q: q, Controller: NopController{}, MaxMatRows: 1}
		inner, err := Build(ctx, p.Right)
		if err != nil {
			t.Fatalf("%s/%s: build: %v", q.SQL(), variant, err)
		}
		counted := &closeCountingOp{inner: inner, closes: &closes}
		_, err = drain(ctx, p.Right, counted)
		var re *ResourceError
		if !errors.As(err, &re) {
			return // side materializes <= 1 row
		}
		if closes == 0 {
			t.Fatalf("%s/%s: drain error left child open", q.SQL(), variant)
		}
	})
}

type closeCountingOp struct {
	inner  Operator
	closes *int
}

func (c *closeCountingOp) Open(ctx *Ctx) error                { return c.inner.Open(ctx) }
func (c *closeCountingOp) Next(ctx *Ctx) (Tuple, bool, error) { return c.inner.Next(ctx) }
func (c *closeCountingOp) Close()                             { *c.closes++; c.inner.Close() }
