package exec

import (
	"fmt"

	"github.com/lpce-db/lpce/internal/plan"
)

// BatchSize is the number of tuples a batch holds at most. 1024 rows of a
// few dozen int64 columns keep a batch within L2 cache while amortizing the
// per-call overhead (interface dispatch, work charging, cancellation polls)
// over a thousand tuples. It deliberately equals cancelPollInterval so the
// batch path polls the context about as often as the scalar path.
const BatchSize = 1024

// Batch is a reusable column-width × BatchSize tuple buffer backed by a
// single flat arena, in row-major order. A batch returned by NextBatch —
// and every row view derived from it — is valid only until the next
// NextBatch or Close call on the producing operator; consumers that need
// the data longer must copy it (drainBatch does).
type Batch struct {
	width int
	n     int
	data  []int64
}

// Len reports the number of tuples in the batch.
func (b *Batch) Len() int { return b.n }

// Width reports the tuple width.
func (b *Batch) Width() int { return b.width }

// Row returns a view of tuple i. The full-slice expression pins the
// capacity so an append by a misbehaving consumer cannot clobber the
// neighbouring tuple.
func (b *Batch) Row(i int) []int64 {
	off := i * b.width
	return b.data[off : off+b.width : off+b.width]
}

// reset prepares the batch for refilling at the given tuple width, growing
// the arena once and then reusing it for the operator's lifetime.
func (b *Batch) reset(width int) {
	b.width = width
	b.n = 0
	if cap(b.data) < width*BatchSize {
		b.data = make([]int64, width*BatchSize)
	}
	b.data = b.data[:width*BatchSize]
}

// pushRow appends an uninitialized tuple and returns its view for the
// caller to fill (typically via joinMerge.mergeFlat or copy).
func (b *Batch) pushRow() []int64 {
	off := b.n * b.width
	b.n++
	return b.data[off : off+b.width : off+b.width]
}

// full reports whether the batch has reached capacity.
func (b *Batch) full() bool { return b.n >= BatchSize }

// BatchOperator is the vectorized Volcano interface: NextBatch returns up
// to BatchSize tuples at a time, or nil at exhaustion (never an empty
// batch). Operators charge the same work totals as their scalar
// counterparts, lumped at batch granularity, and stamp plan.Node.TrueCard
// at exhaustion exactly like the scalar path.
type BatchOperator interface {
	Open(ctx *Ctx) error
	NextBatch(ctx *Ctx) (*Batch, error)
	Close()
}

// BuildBatch constructs the batch operator tree for a physical plan. It
// mirrors Build: with ctx.Trace set every operator is wrapped in a
// stats-collecting shim, and ctx.Wrap — a scalar-level interceptor — is
// honoured by lowering the batch operator to the scalar interface, offering
// it to Wrap, and lifting the result back only when Wrap actually replaced
// it, so the common not-wrapped case stays on the batch fast path.
func BuildBatch(ctx *Ctx, n *plan.Node) (BatchOperator, error) {
	var op BatchOperator
	var err error
	switch n.Op {
	case plan.SeqScan:
		op = newBatchSeqScan(ctx, n)
	case plan.IndexScan:
		op, err = newBatchIndexScan(ctx, n)
	case plan.MatScan:
		op = newBatchMatScan(ctx, n)
	case plan.HashJoin:
		op, err = newBatchHashJoin(ctx, n)
	case plan.MergeJoin:
		op, err = newBatchMergeJoin(ctx, n)
	case plan.NestLoopJoin:
		op, err = newBatchNLJoin(ctx, n)
	default:
		return nil, fmt.Errorf("exec: unknown operator %v", n.Op)
	}
	if err != nil {
		return nil, err
	}
	if ctx.Trace != nil {
		op = &tracedBatchOp{inner: op, node: n, tr: ctx.Trace}
	}
	if ctx.Wrap != nil {
		low := &lowerOp{inner: op}
		wrapped := ctx.Wrap(ctx, low, n)
		if wrapped != Operator(low) {
			op = &liftOp{inner: wrapped}
		}
	}
	if testBatchWrap != nil {
		op = testBatchWrap(op, n)
	}
	return op, nil
}

// testBatchWrap, when set by a test, wraps every batch operator BuildBatch
// constructs (outermost). The lifecycle suite uses it to install
// close-counting and Open-failing shims without touching ctx.Wrap, which
// would route execution through the scalar lower/lift adapters.
var testBatchWrap func(op BatchOperator, n *plan.Node) BatchOperator

// RunBatch executes the plan through the batch path and returns the
// COUNT(*) result — the vectorized equivalent of Run, with identical
// counts, TrueCard stamps, checkpoint sequences, and typed errors.
func RunBatch(ctx *Ctx, root *plan.Node) (int, error) {
	op, err := BuildBatch(ctx, root)
	if err != nil {
		return 0, err
	}
	op = maybeExchange(ctx, op)
	defer op.Close()
	if err := op.Open(ctx); err != nil {
		return 0, err
	}
	count := 0
	for {
		b, err := op.NextBatch(ctx)
		if err != nil {
			return 0, err
		}
		if b == nil {
			break
		}
		count += b.n
	}
	root.TrueCard = float64(count)
	return count, nil
}

// drainBatch pulls every batch from a child operator into one flat arena
// and returns stable row views into it — the batch path's materialization
// routine. It charges the same per-tuple materialization cost as drain
// (1 + width/4 work plus one materialized row each), lumped per batch; when
// the MaxMatRows limit falls inside a batch, work is charged only for the
// tuples up to and including the first exceeding row, so the work counter
// and the *ResourceError payload match the scalar path exactly.
func drainBatch(ctx *Ctx, node *plan.Node, op BatchOperator) ([][]int64, error) {
	op = maybeExchange(ctx, op)
	// Close the child on every exit, not just the clean one: a budget or
	// cancellation error during build-side materialization must still tear
	// down the child's subtree. Closes are idempotent, so callers like
	// batchHashJoin.Close closing the same child again is harmless.
	defer op.Close()
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	w := ctx.Layout(node.Tables).Width()
	cost := 1 + int64(w)/4
	var arena []int64
	total := 0
	for {
		b, err := op.NextBatch(ctx)
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		n := int64(b.n)
		if ctx.MaxMatRows > 0 && ctx.matRows+n > ctx.MaxMatRows {
			// the limit trips at row k of this batch: charge work for
			// exactly k tuples (budget errors take precedence, as in the
			// scalar loop), then fail on the materialized-rows budget
			k := ctx.MaxMatRows - ctx.matRows + 1
			if err := ctx.charge(k * cost); err != nil {
				return nil, err
			}
			return nil, ctx.chargeMatN(n)
		}
		if err := ctx.charge(n * cost); err != nil {
			return nil, err
		}
		if err := ctx.chargeMatN(n); err != nil {
			return nil, err
		}
		arena = append(arena, b.data[:b.n*b.width]...)
		total += b.n
	}
	node.TrueCard = float64(total)
	rows := make([][]int64, total)
	for i := range rows {
		rows[i] = arena[i*w : (i+1)*w : (i+1)*w]
	}
	return rows, nil
}

// lowerOp adapts a BatchOperator to the scalar Operator interface so
// scalar-level wrappers (fault injection, unconverted consumers) compose
// with batch producers. Tuples are served as views into the current batch,
// which stays valid until the next pull — matching the scalar contract
// that a tuple is valid until the next Next call.
type lowerOp struct {
	inner BatchOperator
	cur   *Batch
	i     int
}

func (l *lowerOp) Open(ctx *Ctx) error {
	l.cur, l.i = nil, 0
	return l.inner.Open(ctx)
}

func (l *lowerOp) Next(ctx *Ctx) (Tuple, bool, error) {
	for l.cur == nil || l.i >= l.cur.n {
		b, err := l.inner.NextBatch(ctx)
		if err != nil {
			return nil, false, err
		}
		if b == nil {
			return nil, false, nil
		}
		l.cur, l.i = b, 0
	}
	t := l.cur.Row(l.i)
	l.i++
	return t, true, nil
}

func (l *lowerOp) Close() { l.inner.Close() }

// liftOp adapts a scalar Operator to the batch interface by accumulating
// its tuples into a reusable batch. Each tuple is copied because scalar
// operators reuse their output buffer between Next calls.
type liftOp struct {
	inner Operator
	out   Batch
	done  bool
}

func (l *liftOp) Open(ctx *Ctx) error {
	l.done = false
	return l.inner.Open(ctx)
}

func (l *liftOp) NextBatch(ctx *Ctx) (*Batch, error) {
	if l.done {
		return nil, nil
	}
	started := false
	for {
		t, ok, err := l.inner.Next(ctx)
		if err != nil {
			return nil, err
		}
		if !ok {
			l.done = true
			if !started {
				return nil, nil
			}
			return &l.out, nil
		}
		if !started {
			l.out.reset(len(t))
			started = true
		}
		copy(l.out.pushRow(), t)
		if l.out.full() {
			return &l.out, nil
		}
	}
}

func (l *liftOp) Close() { l.inner.Close() }
