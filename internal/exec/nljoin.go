package exec

import (
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/storage"
)

// nlJoin is the nested loop join. Following the paper's Figure 10(c), the
// outer (left) side is always materialized with a checkpoint — this is the
// one materialization the paper *adds* to PostgreSQL (measured there at
// +1.2% time / +5.8% memory, acceptable because NL join is only chosen for
// small outer sides).
//
// Two inner strategies:
//   - index path: when the inner child is a base-table scan and a join
//     condition touches one of its columns, each outer tuple probes the
//     table's hash index (PostgreSQL's index nested loop);
//   - rescan path: otherwise the inner is materialized once and scanned
//     per outer tuple (PostgreSQL's Materialize node under a nest loop).
type nlJoin struct {
	node  *plan.Node
	left  Operator
	right Operator // nil on the index path

	conds []condOffsets
	merge joinMerge

	outer [][]int64
	oi    int

	// index path
	idxTable   *storage.Table
	idxCol     int // column position in the inner table driving the probe
	idxCondOff int // offset of the probe value in the outer tuple
	idxMatches []int32
	mi         int
	innerBuf   Tuple

	// rescan path
	inner [][]int64
	ii    int

	out   Tuple
	count int
}

func newNLJoin(ctx *Ctx, n *plan.Node) (*nlJoin, error) {
	l, err := Build(ctx, n.Left)
	if err != nil {
		return nil, err
	}
	conds, err := resolveConds(ctx, n.JoinConds, n.Left.Tables, n.Right.Tables)
	if err != nil {
		return nil, err
	}
	j := &nlJoin{
		node: n, left: l,
		conds: conds,
		merge: newJoinMerge(ctx, n.Left.Tables, n.Right.Tables),
	}
	// Index path: inner is a base-table leaf and some equi-join condition
	// lands on one of its columns.
	if n.Right.IsLeaf() && n.Right.Op != plan.MatScan && len(conds) > 0 {
		// A single-table layout starts at offset 0, so rightOff is directly
		// the probe column's position within the inner table.
		j.idxTable = ctx.DB.Table(n.Right.Table)
		j.idxCol = conds[0].rightOff
		j.idxCondOff = conds[0].leftOff
		j.innerBuf = make(Tuple, len(n.Right.Table.Columns))
		return j, nil
	}
	r, err := Build(ctx, n.Right)
	if err != nil {
		return nil, err
	}
	j.right = r
	return j, nil
}

func (j *nlJoin) Open(ctx *Ctx) error {
	// Materialize the outer side and CHECK it (paper Figure 10c).
	rows, err := drain(ctx, j.node.Left, j.left)
	if err != nil {
		return err
	}
	j.outer = rows
	if err := checkpoint(ctx, j.node.Left, rows); err != nil {
		return err
	}
	if j.idxTable == nil {
		// rescan path: buffer the inner once
		j.inner, err = drain(ctx, j.node.Right, j.right)
		if err != nil {
			return err
		}
		if err := checkpoint(ctx, j.node.Right, j.inner); err != nil {
			return err
		}
	}
	j.oi, j.ii, j.mi = 0, 0, 0
	j.idxMatches = nil
	j.count = 0
	return nil
}

func (j *nlJoin) Next(ctx *Ctx) (Tuple, bool, error) {
	if j.idxTable != nil {
		return j.nextIndex(ctx)
	}
	return j.nextRescan(ctx)
}

// nextIndex probes the inner table's hash index per outer tuple.
func (j *nlJoin) nextIndex(ctx *Ctx) (Tuple, bool, error) {
	for {
		for j.mi < len(j.idxMatches) {
			r := int(j.idxMatches[j.mi])
			j.mi++
			if err := ctx.charge(1); err != nil {
				return nil, false, err
			}
			if !rowMatches(j.idxTable, r, j.node.Right.Preds) {
				continue
			}
			for c := range j.innerBuf {
				j.innerBuf[c] = j.idxTable.Cols[c][r]
			}
			cur := j.outer[j.oi-1]
			if !j.extraCondsMatch(cur, j.innerBuf) {
				continue
			}
			j.out = j.merge.merge(j.out, cur, j.innerBuf)
			j.count++
			return j.out, true, nil
		}
		if j.oi >= len(j.outer) {
			j.node.TrueCard = float64(j.count)
			return nil, false, nil
		}
		cur := j.outer[j.oi]
		j.oi++
		if err := ctx.charge(2); err != nil { // index probe
			return nil, false, err
		}
		j.idxMatches = j.idxTable.HashIndex(j.idxCol).Lookup(cur[j.idxCondOff])
		j.mi = 0
	}
}

// extraCondsMatch verifies every join condition against an inner base-table
// row (the index probe only guarantees the first condition).
func (j *nlJoin) extraCondsMatch(outer, inner Tuple) bool {
	for _, c := range j.conds {
		// inner tuple is the bare table row, so rightOff is relative to the
		// single-table layout which starts at 0.
		if outer[c.leftOff] != inner[c.rightOff] {
			return false
		}
	}
	return true
}

// nextRescan runs the classic quadratic loop over two buffers.
func (j *nlJoin) nextRescan(ctx *Ctx) (Tuple, bool, error) {
	for {
		if j.oi >= len(j.outer) {
			j.node.TrueCard = float64(j.count)
			return nil, false, nil
		}
		cur := j.outer[j.oi]
		for j.ii < len(j.inner) {
			row := j.inner[j.ii]
			j.ii++
			if err := ctx.charge(1); err != nil {
				return nil, false, err
			}
			match := true
			for _, c := range j.conds {
				if cur[c.leftOff] != row[c.rightOff] {
					match = false
					break
				}
			}
			if match {
				j.out = j.merge.merge(j.out, cur, row)
				j.count++
				return j.out, true, nil
			}
		}
		j.ii = 0
		j.oi++
	}
}

func (j *nlJoin) Close() {
	j.left.Close()
	if j.right != nil {
		j.right.Close()
	}
	j.outer, j.inner = nil, nil
}
