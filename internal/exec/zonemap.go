package exec

import (
	"github.com/lpce-db/lpce/internal/obs"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
)

// Zone-map scanning: when a table is sealed, its columns carry encoded
// segments with min/max zone maps (storage/segment.go). A predicated batch
// scan precomputes, per segment, whether any predicate is disproven by the
// zone map; pruned segments are skipped without decoding a single value,
// and surviving segments are filtered on their encoded form and gathered
// into the arena by selection vector (late materialization).
//
// The contract with the equivalence suites: pruning changes which values
// are *read*, never which rows qualify or how much work is *charged* — the
// per-chunk ctx.charge(hi-lo) stays exactly the scalar scan's accounting,
// so Work(), checkpoints, and budget errors are byte-identical to the raw
// path for any worker count. Wall time, not work units, is where skipping
// pays.

// segPrune reports whether predicate p is disproven for every value in
// [mn, mx] — the zone-map test. It must only ever return a false negative
// (scanning a segment that contains no match is correct, skipping one that
// does is not).
func segPrune(p query.Predicate, mn, mx int64) bool {
	switch p.Op {
	case query.OpEQ:
		return p.Operand < mn || p.Operand > mx
	case query.OpNE:
		return mn == mx && mn == p.Operand
	case query.OpLT:
		return mn >= p.Operand
	case query.OpLE:
		return mn > p.Operand
	case query.OpGT:
		return mx <= p.Operand
	case query.OpGE:
		return mx < p.Operand
	case query.OpIn:
		for _, v := range p.InSet {
			if v >= mn && v <= mx {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// segScanState is the segment view one batch scan operates through. It is
// built once in the source's (serial) Open and shared read-only by every
// morsel replica, so the pruning decisions — and therefore the skip
// metrics — are identical for any worker count. Decode scratch lives on
// the operators, not here.
type segScanState struct {
	table   *storage.Table
	segRows int
	cols    [][]*storage.Segment // by column position
	prune   []bool               // per segment: some predicate disproven
	decoded *obs.Counter         // storage.bytes_decoded (nil-safe, atomic)
}

// newSegScanState returns the segment view for a scan with the given
// conjunctive predicates, or nil when the scan should use the raw columns:
// the raw escape hatch is on, the table is unsealed (DML since the last
// stats refresh), there are no predicates (a full gather gains nothing
// over the raw alias — zone maps have nothing to act on), or the zone
// maps prune no segment at all (unselective predicates on this data; the
// encoded path would pay decode cost with nothing skipped to fund it).
//
// recordSkips controls the storage.segments_total / segments_skipped
// counters: sequential scans record them (a pruned segment is genuinely
// never visited); index scans do not, since they only touch indexed rids
// and use the zone maps per-rid.
func newSegScanState(ctx *Ctx, t *storage.Table, preds []query.Predicate, recordSkips bool) *segScanState {
	if ctx.RawScan || len(preds) == 0 || !t.Sealed() || t.SegRows() <= 0 || len(t.Cols) == 0 {
		return nil
	}
	zs := &segScanState{
		table:   t,
		segRows: t.SegRows(),
		cols:    make([][]*storage.Segment, len(t.Cols)),
	}
	for c := range zs.cols {
		zs.cols[c] = t.Segments(c)
	}
	zs.prune = make([]bool, len(zs.cols[0]))
	skipped := 0
	for _, p := range preds {
		for g, sg := range zs.cols[p.Col.Pos] {
			if !zs.prune[g] && segPrune(p, sg.Min, sg.Max) {
				zs.prune[g] = true
				skipped++
			}
		}
	}
	reg := ctx.Metrics
	zs.decoded = reg.Counter("storage.bytes_decoded")
	if recordSkips {
		reg.Counter("storage.segments_total").Add(int64(len(zs.prune)))
		reg.Counter("storage.segments_skipped").Add(int64(skipped))
	}
	// When the zone maps disprove nothing, the segment path is pure decode
	// overhead over reading the raw columns — fall back. Results are
	// byte-identical either way (that is the whole contract); only wall
	// time differs, and it favors raw exactly when nothing prunes.
	if skipped == 0 {
		return nil
	}
	return zs
}

// selectRange is the segment-path counterpart of selectRange: it appends
// the row ids in [lo, hi) satisfying every predicate, skipping pruned
// segments outright and evaluating the first predicate on each surviving
// segment's encoded form (raw segments alias the column, so they filter in
// place; encoded ones decode the sub-range into buf first). The returned
// buf is the possibly-grown scratch for the caller to reuse.
func (zs *segScanState) selectRange(sel []int32, buf []int64, lo, hi int, preds []query.Predicate) ([]int32, []int64) {
	p0 := preds[0]
	segs0 := zs.cols[p0.Col.Pos]
	col0 := zs.table.Cols[p0.Col.Pos]
	var dec int64
	for g := lo / zs.segRows; g*zs.segRows < hi; g++ {
		if zs.prune[g] {
			continue
		}
		base := g * zs.segRows
		subLo := max(lo, base)
		subHi := min(hi, base+zs.segRows)
		if seg := segs0[g]; seg.Encoding() == storage.EncRaw {
			sel = filterRange(sel, col0, subLo, subHi, p0)
		} else {
			vals := seg.DecodeRange(buf, subLo-base, subHi-base)
			if cap(vals) > cap(buf) {
				buf = vals[:0]
			}
			dec += int64(8 * len(vals))
			sel = filterVals(sel, vals, subLo, p0)
		}
	}
	for _, p := range preds[1:] {
		sel = zs.filterSel(sel, p)
	}
	zs.decoded.Add(dec)
	return sel, buf
}

// pruneSel drops the row ids that fall in pruned segments — the index
// scan's use of the zone maps: a rid inside a segment where some residual
// predicate is disproven is rejected without reading any column.
func (zs *segScanState) pruneSel(sel []int32) []int32 {
	out := sel[:0]
	for _, r := range sel {
		if !zs.prune[int(r)/zs.segRows] {
			out = append(out, r)
		}
	}
	return out
}

// filterSel compacts sel in place, keeping the ids whose value — read
// through the segment layer — satisfies p. Mirrors filterSel's
// operator-outside-the-loop structure; Segment.Get is O(1) for every
// encoding, so scattered residual filtering stays cheap.
func (zs *segScanState) filterSel(sel []int32, p query.Predicate) []int32 {
	segs := zs.cols[p.Col.Pos]
	segRows := zs.segRows
	get := func(r int32) int64 {
		g := int(r) / segRows
		return segs[g].Get(int(r) - g*segRows)
	}
	out := sel[:0]
	switch p.Op {
	case query.OpEQ:
		for _, r := range sel {
			if get(r) == p.Operand {
				out = append(out, r)
			}
		}
	case query.OpNE:
		for _, r := range sel {
			if get(r) != p.Operand {
				out = append(out, r)
			}
		}
	case query.OpLT:
		for _, r := range sel {
			if get(r) < p.Operand {
				out = append(out, r)
			}
		}
	case query.OpLE:
		for _, r := range sel {
			if get(r) <= p.Operand {
				out = append(out, r)
			}
		}
	case query.OpGT:
		for _, r := range sel {
			if get(r) > p.Operand {
				out = append(out, r)
			}
		}
	case query.OpGE:
		for _, r := range sel {
			if get(r) >= p.Operand {
				out = append(out, r)
			}
		}
	default:
		for _, r := range sel {
			if p.Eval(get(r)) {
				out = append(out, r)
			}
		}
	}
	return out
}

// gather is the late-materialization counterpart of gatherRows: the
// selected rows are decoded straight into the batch arena column by
// column, one Segment.Gather call per (column, segment run) so each run is
// a tight copy or unpack loop.
func (zs *segScanState) gather(b *Batch, sel []int32) {
	w := b.width
	segRows := zs.segRows
	var dec int64
	for c := 0; c < w; c++ {
		segs := zs.cols[c]
		d := b.data[c:]
		// sel need not be sorted (index scans emit rids in index order), so
		// runs are maximal stretches of ids that happen to share a segment.
		for i := 0; i < len(sel); {
			g := int(sel[i]) / segRows
			j := i + 1
			for j < len(sel) && int(sel[j])/segRows == g {
				j++
			}
			seg := segs[g]
			seg.Gather(d[i*w:], w, sel[i:j], g*segRows)
			if seg.Encoding() != storage.EncRaw {
				dec += int64(8 * (j - i))
			}
			i = j
		}
	}
	b.n = len(sel)
	zs.decoded.Add(dec)
}

// filterVals appends base+i for every decoded value vals[i] satisfying p —
// filterRange over a decoded segment sub-range instead of a raw column.
func filterVals(sel []int32, vals []int64, base int, p query.Predicate) []int32 {
	switch p.Op {
	case query.OpEQ:
		for i, v := range vals {
			if v == p.Operand {
				sel = append(sel, int32(base+i))
			}
		}
	case query.OpNE:
		for i, v := range vals {
			if v != p.Operand {
				sel = append(sel, int32(base+i))
			}
		}
	case query.OpLT:
		for i, v := range vals {
			if v < p.Operand {
				sel = append(sel, int32(base+i))
			}
		}
	case query.OpLE:
		for i, v := range vals {
			if v <= p.Operand {
				sel = append(sel, int32(base+i))
			}
		}
	case query.OpGT:
		for i, v := range vals {
			if v > p.Operand {
				sel = append(sel, int32(base+i))
			}
		}
	case query.OpGE:
		for i, v := range vals {
			if v >= p.Operand {
				sel = append(sel, int32(base+i))
			}
		}
	default:
		for i, v := range vals {
			if p.Eval(v) {
				sel = append(sel, int32(base+i))
			}
		}
	}
	return sel
}
