package exec

import (
	"time"

	"github.com/lpce-db/lpce/internal/obs"
	"github.com/lpce-db/lpce/internal/plan"
)

// tracedOp wraps an operator with runtime-stats collection: rows produced,
// inclusive wall time, and the estimated-vs-actual cardinality of the plan
// node. Build installs it around every operator when ctx.Trace is set; with
// tracing disabled the wrapper does not exist, so the trace layer's
// disabled cost is exactly zero.
//
// The clock starts at Open and stops when the operator exhausts (Next
// returns ok=false), giving EXPLAIN ANALYZE-style inclusive time; an
// operator unwound early (budget exhaustion, re-optimization pause) is
// stamped at teardown instead and reports ActualRows = -1, marking its
// cardinality as unknown.
type tracedOp struct {
	inner Operator
	node  *plan.Node
	tr    *obs.ExecTrace

	start     time.Time
	wall      time.Duration
	rows      int64
	exhausted bool
	flushed   bool
}

func (t *tracedOp) Open(ctx *Ctx) error {
	t.start = time.Now()
	t.wall = 0
	t.rows = 0
	t.exhausted = false
	t.flushed = false
	return t.inner.Open(ctx)
}

func (t *tracedOp) Next(ctx *Ctx) (Tuple, bool, error) {
	tup, ok, err := t.inner.Next(ctx)
	if ok {
		t.rows++
	} else if err == nil && !t.exhausted {
		t.exhausted = true
		t.wall = time.Since(t.start)
	}
	return tup, ok, err
}

// Close flushes the operator's stats exactly once, then tears down the
// inner operator. Pipeline breakers close their drained children early, so
// a plan's stats arrive roughly in completion order.
func (t *tracedOp) Close() {
	if !t.flushed && !t.start.IsZero() {
		t.flushed = true
		wall := t.wall
		if !t.exhausted {
			wall = time.Since(t.start)
		}
		actual := float64(-1)
		if t.exhausted {
			actual = float64(t.rows)
		}
		t.tr.AddOp(obs.OpStats{
			Op:         t.node.Op.String(),
			Mask:       t.node.Tables,
			EstRows:    t.node.EstCard,
			ActualRows: actual,
			Rows:       t.rows,
			Wall:       wall,
		})
	}
	t.inner.Close()
}

// tracedBatchOp is tracedOp's batch-path twin: BuildBatch installs it
// around every batch operator when ctx.Trace is set. Per-call bookkeeping
// happens once per batch instead of once per tuple, and the flushed stats
// additionally record how many batches the operator produced.
type tracedBatchOp struct {
	inner BatchOperator
	node  *plan.Node
	tr    *obs.ExecTrace

	start     time.Time
	wall      time.Duration
	rows      int64
	batches   int64
	exhausted bool
	flushed   bool
}

func (t *tracedBatchOp) Open(ctx *Ctx) error {
	t.start = time.Now()
	t.wall = 0
	t.rows = 0
	t.batches = 0
	t.exhausted = false
	t.flushed = false
	return t.inner.Open(ctx)
}

func (t *tracedBatchOp) NextBatch(ctx *Ctx) (*Batch, error) {
	b, err := t.inner.NextBatch(ctx)
	if b != nil {
		t.rows += int64(b.n)
		t.batches++
	} else if err == nil && !t.exhausted {
		t.exhausted = true
		t.wall = time.Since(t.start)
	}
	return b, err
}

func (t *tracedBatchOp) Close() {
	if !t.flushed && !t.start.IsZero() {
		t.flushed = true
		wall := t.wall
		if !t.exhausted {
			wall = time.Since(t.start)
		}
		actual := float64(-1)
		if t.exhausted {
			actual = float64(t.rows)
		}
		t.tr.AddOp(obs.OpStats{
			Op:         t.node.Op.String(),
			Mask:       t.node.Tables,
			EstRows:    t.node.EstCard,
			ActualRows: actual,
			Rows:       t.rows,
			Batches:    t.batches,
			Wall:       wall,
		})
	}
	t.inner.Close()
}
