package exec

import (
	"testing"

	"github.com/lpce-db/lpce/internal/obs"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/testutil"
	"github.com/lpce-db/lpce/internal/workload"
)

// TestTraceRecordsEveryOperator: with a trace installed, every plan node
// must yield one OpStats record whose actual cardinality matches the
// node's stamped true cardinality.
func TestTraceRecordsEveryOperator(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 41)
	q := g.Query(3)
	p := CanonicalPlan(q, q.AllTablesMask())
	tr := &obs.ExecTrace{}
	ctx := newCtx(db, q)
	ctx.Trace = tr
	count, err := Run(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Ops) != p.NumNodes() {
		t.Fatalf("trace has %d ops, plan has %d nodes", len(tr.Ops), p.NumNodes())
	}
	p.Walk(func(n *plan.Node) {
		s := tr.ByMask(n.Tables)
		if s == nil {
			t.Fatalf("no stats for node %v covering %b", n.Op, uint32(n.Tables))
		}
		if s.Op != n.Op.String() {
			t.Fatalf("op mismatch: %s vs %v", s.Op, n.Op)
		}
		if s.ActualRows != n.TrueCard {
			t.Fatalf("%v: actual %v != true card %v", n.Op, s.ActualRows, n.TrueCard)
		}
		if s.Rows != int64(n.TrueCard) {
			t.Fatalf("%v: rows %d != true card %v", n.Op, s.Rows, n.TrueCard)
		}
	})
	root := tr.ByMask(q.AllTablesMask())
	if int(root.ActualRows) != count {
		t.Fatalf("root actual %v != count %d", root.ActualRows, count)
	}
}

// TestTraceMarksAbortedOperators: operators unwound by the work budget must
// report ActualRows = -1 (cardinality unknown), not a misleading partial
// count.
func TestTraceMarksAbortedOperators(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 42)
	q := g.Query(3)
	p := CanonicalPlan(q, q.AllTablesMask())
	tr := &obs.ExecTrace{}
	ctx := newCtx(db, q)
	ctx.Budget = 10
	ctx.Trace = tr
	if _, err := Run(ctx, p); err == nil {
		t.Fatal("expected budget error")
	}
	if len(tr.Ops) == 0 {
		t.Fatal("aborted execution left no trace")
	}
	aborted := 0
	for _, s := range tr.Ops {
		if s.ActualRows < 0 {
			aborted++
		}
	}
	if aborted == 0 {
		t.Fatalf("no operator marked aborted: %+v", tr.Ops)
	}
}

// TestTraceIdenticalResults: tracing must not change query results or the
// work accounting.
func TestTraceIdenticalResults(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 43)
	for i := 0; i < 5; i++ {
		q := g.Query(3)
		plain := newCtx(db, q)
		want, err := Run(plain, CanonicalPlan(q, q.AllTablesMask()))
		if err != nil {
			t.Fatal(err)
		}
		traced := newCtx(db, q)
		traced.Trace = &obs.ExecTrace{}
		got, err := Run(traced, CanonicalPlan(q, q.AllTablesMask()))
		if err != nil {
			t.Fatal(err)
		}
		if got != want || traced.Work() != plain.Work() {
			t.Fatalf("traced run diverged: count %d vs %d, work %d vs %d",
				got, want, traced.Work(), plain.Work())
		}
	}
}

// benchQuery builds a fixed query/plan pair for the overhead benchmarks.
func benchQuery(b *testing.B) (*query.Query, *plan.Node, *Ctx) {
	b.Helper()
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 44)
	q := g.Query(3)
	return q, CanonicalPlan(q, q.AllTablesMask()), newCtx(db, q)
}

// BenchmarkExecTraceOff is the baseline: tracing disabled, so the trace
// shim is never installed. Compare with BenchmarkExecTraceOn to price the
// enabled trace layer; the disabled layer is structurally free (no wrapper,
// and the nil-path obs calls are allocation-free — see
// obs.TestDisabledRecordingAllocFree).
func BenchmarkExecTraceOff(b *testing.B) {
	q, p, ctx := benchQuery(b)
	_ = q
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(ctx, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecTraceOn executes the same plan with per-operator stats
// collection installed.
func BenchmarkExecTraceOn(b *testing.B) {
	q, p, ctx := benchQuery(b)
	_ = q
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx.Trace = &obs.ExecTrace{}
		if _, err := Run(ctx, p); err != nil {
			b.Fatal(err)
		}
	}
}
