package exec

import "github.com/lpce-db/lpce/internal/plan"

// hashJoin builds a hash table over its right (inner) child during Open —
// a pipeline breaker with a checkpoint, matching Figure 10(a) of the paper
// — then streams probe tuples from the left (outer) child.
type hashJoin struct {
	node  *plan.Node
	left  Operator
	right Operator

	conds []condOffsets
	merge joinMerge

	table map[uint64][][]int64 // build rows grouped by key hash

	// key is a scratch buffer for gathering join-key values; allocated once
	// at construction so neither Open (build side) nor Next (probe side)
	// allocates per tuple.
	key []int64

	// probe state
	cur     Tuple // current left tuple
	matches [][]int64
	mi      int
	out     Tuple
	count   int
}

func newHashJoin(ctx *Ctx, n *plan.Node) (*hashJoin, error) {
	l, err := Build(ctx, n.Left)
	if err != nil {
		return nil, err
	}
	r, err := Build(ctx, n.Right)
	if err != nil {
		return nil, err
	}
	conds, err := resolveConds(ctx, n.JoinConds, n.Left.Tables, n.Right.Tables)
	if err != nil {
		return nil, err
	}
	return &hashJoin{
		node: n, left: l, right: r,
		conds: conds,
		merge: newJoinMerge(ctx, n.Left.Tables, n.Right.Tables),
		key:   make([]int64, len(conds)),
	}, nil
}

func (h *hashJoin) Open(ctx *Ctx) error {
	// Build phase: drain and hash the inner side.
	rows, err := drain(ctx, h.node.Right, h.right)
	if err != nil {
		return err
	}
	h.table = make(map[uint64][][]int64, len(rows))
	for _, row := range rows {
		for i, c := range h.conds {
			h.key[i] = row[c.rightOff]
		}
		k := hashKey(h.key)
		h.table[k] = append(h.table[k], row)
		if err := ctx.charge(1); err != nil {
			return err
		}
	}
	// CHECK: the inner sub-plan is fully materialized; report its exact
	// cardinality (paper Figure 10a).
	if err := checkpoint(ctx, h.node.Right, rows); err != nil {
		return err
	}
	if err := h.left.Open(ctx); err != nil {
		return err
	}
	h.cur = nil
	h.matches = nil
	h.mi = 0
	h.count = 0
	return nil
}

func (h *hashJoin) Next(ctx *Ctx) (Tuple, bool, error) {
	for {
		// emit remaining matches for the current probe tuple
		for h.mi < len(h.matches) {
			row := h.matches[h.mi]
			h.mi++
			if err := ctx.charge(1); err != nil {
				return nil, false, err
			}
			if !h.condsMatch(h.cur, row) {
				continue // hash collision
			}
			h.out = h.merge.merge(h.out, h.cur, row)
			h.count++
			return h.out, true, nil
		}
		// advance the probe side
		t, ok, err := h.left.Next(ctx)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			h.node.TrueCard = float64(h.count)
			return nil, false, nil
		}
		if err := ctx.charge(1); err != nil {
			return nil, false, err
		}
		h.cur = t
		for i, c := range h.conds {
			h.key[i] = t[c.leftOff]
		}
		h.matches = h.table[hashKey(h.key)]
		h.mi = 0
	}
}

func (h *hashJoin) condsMatch(l, r Tuple) bool {
	for _, c := range h.conds {
		if l[c.leftOff] != r[c.rightOff] {
			return false
		}
	}
	return true
}

func (h *hashJoin) Close() {
	h.left.Close()
	h.right.Close()
	h.table = nil
}
