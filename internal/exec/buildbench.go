package exec

import "time"

// HashBuildBench measures buildVecTable over n synthetic rows keyed into
// keySpace distinct values, serially and with workers, returning the
// best-of-reps walls and whether the two tables have bitwise-identical
// layouts. It exists for the experiments load_bench block and the nightly
// scaling probe: vecTable and the build internals are unexported, and
// measuring here keeps drain/probe costs out of the build wall. The worker
// count still clamps to the exchange cap (GOMAXPROCS), so a single-core
// snapshot machine reports an honest 1.0x.
func HashBuildBench(n, keySpace, workers, reps int) (serialSec, parallelSec float64, identical bool) {
	rows := hashBuildRows(n, keySpace)
	conds := []condOffsets{{0, 0}}
	run := func(w int) (float64, *vecTable) {
		ctx := &Ctx{}
		best := 0.0
		var t *vecTable
		for r := 0; r < reps; r++ {
			start := time.Now()
			t = buildVecTable(ctx, rows, conds, w)
			sec := time.Since(start).Seconds()
			if best == 0 || sec < best {
				best = sec
			}
		}
		return best, t
	}
	serialSec, st := run(1)
	parallelSec, pt := run(workers)
	return serialSec, parallelSec, vecTablesEqual(st, pt)
}

// hashBuildRows fabricates n single-column build rows with keys drawn from
// [0, keySpace) by a fixed-seed LCG — deterministic across runs and hosts.
func hashBuildRows(n, keySpace int) [][]int64 {
	rows := make([][]int64, n)
	vals := make([]int64, n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range rows {
		state = state*6364136223846793005 + 1442695040888963407
		vals[i] = int64(state>>33) % int64(keySpace)
		rows[i] = vals[i : i+1 : i+1]
	}
	return rows
}

// vecTablesEqual reports bitwise layout equality: geometry, slot heads, the
// hash of every occupied slot, and the full chain-link array (which pins
// equal-hash chain order down to the last row).
func vecTablesEqual(a, b *vecTable) bool {
	if a.mask != b.mask || a.partMask != b.partMask || len(a.next) != len(b.next) {
		return false
	}
	for i := range a.heads {
		if a.heads[i] != b.heads[i] {
			return false
		}
		if a.heads[i] != -1 && a.hashes[i] != b.hashes[i] {
			return false
		}
	}
	for i := range a.next {
		if a.next[i] != b.next[i] {
			return false
		}
	}
	return true
}
