package exec

import (
	"errors"
	"testing"

	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
	"github.com/lpce-db/lpce/internal/testutil"
	"github.com/lpce-db/lpce/internal/workload"
)

func newCtx(db *storage.Database, q *query.Query) *Ctx {
	return &Ctx{DB: db, Q: q, Controller: NopController{}}
}

// setJoinOps overrides the physical operator of every join in the tree.
func setJoinOps(n *plan.Node, op plan.PhysOp) {
	n.Walk(func(x *plan.Node) {
		if x.Op.IsJoin() {
			x.Op = op
		}
	})
}

func TestRunMatchesBruteForce(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 11)
	for i := 0; i < 12; i++ {
		q := g.Query(1 + i%2)
		want := testutil.BruteCount(db, q)
		p := CanonicalPlan(q, q.AllTablesMask())
		got, err := Run(newCtx(db, q), p)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("query %d (%s): engine %d, brute force %d", i, q.SQL(), got, want)
		}
	}
}

func TestAllJoinOperatorsAgree(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 12)
	for i := 0; i < 10; i++ {
		q := g.Query(2 + i%3)
		ref, err := RunCollect(newCtx(db, q), CanonicalPlan(q, q.AllTablesMask()))
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range []plan.PhysOp{plan.HashJoin, plan.MergeJoin, plan.NestLoopJoin} {
			p := CanonicalPlan(q, q.AllTablesMask())
			setJoinOps(p, op)
			got, err := Run(newCtx(db, q), p)
			if err != nil {
				t.Fatalf("query %d op %v: %v", i, op, err)
			}
			if got != ref {
				t.Fatalf("query %d (%s): %v returned %d, reference %d", i, q.SQL(), op, got, ref)
			}
		}
	}
}

func TestBushyPlanAgrees(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 13)
	for i := 0; i < 20; i++ {
		q := g.Query(3)
		ref, err := RunCollect(newCtx(db, q), CanonicalPlan(q, q.AllTablesMask()))
		if err != nil {
			t.Fatal(err)
		}
		// bushy shape: (t0 ⋈ t1) ⋈ (t2 ⋈ t3) when both pairs are connected
		m01 := query.NewBitSet().Set(0).Set(1)
		m23 := query.NewBitSet().Set(2).Set(3)
		if !q.Connected(m01) || !q.Connected(m23) || len(q.JoinsBetween(m01, m23)) == 0 {
			continue
		}
		left := CanonicalPlan(q, m01)
		right := CanonicalPlan(q, m23)
		root := plan.NewJoin(plan.HashJoin, left, right, q.JoinsBetween(m01, m23))
		got, err := Run(newCtx(db, q), root)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Fatalf("bushy plan returned %d, reference %d for %s", got, ref, q.SQL())
		}
	}
}

func TestIndexScanAgreesWithSeqScan(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 14)
	tested := 0
	for i := 0; i < 40 && tested < 10; i++ {
		q := g.Query(1)
		p := CanonicalPlan(q, q.AllTablesMask())
		ref, err := Run(newCtx(db, q), p.Clone())
		if err != nil {
			t.Fatal(err)
		}
		// convert every predicated leaf into an index scan
		idxPlan := p.Clone()
		converted := false
		idxPlan.Walk(func(n *plan.Node) {
			if n.IsLeaf() && len(n.Preds) > 0 && n.Preds[0].Op != query.OpNE {
				n.Op = plan.IndexScan
				n.IndexPred = &n.Preds[0]
				converted = true
			}
		})
		if !converted {
			continue
		}
		tested++
		got, err := Run(newCtx(db, q), idxPlan)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Fatalf("index scan returned %d, seq scan %d for %s", got, ref, q.SQL())
		}
	}
	if tested == 0 {
		t.Fatal("no index-scannable queries generated")
	}
}

func TestTrueCardsStampedOnAllNodes(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 15)
	q := g.Query(3)
	p := CanonicalPlan(q, q.AllTablesMask())
	if _, err := RunCollect(newCtx(db, q), p); err != nil {
		t.Fatal(err)
	}
	p.Walk(func(n *plan.Node) {
		if n.TrueCard < 0 {
			t.Fatalf("node %v missing TrueCard", n.Op)
		}
	})
}

type recordingController struct {
	events []struct {
		mask query.BitSet
		card int
	}
	failAt query.BitSet
}

func (r *recordingController) OnMaterialized(n *plan.Node, rows [][]int64) error {
	r.events = append(r.events, struct {
		mask query.BitSet
		card int
	}{n.Tables, len(rows)})
	if r.failAt != 0 && n.Tables == r.failAt {
		return &ReoptSignal{Node: n, Actual: len(rows)}
	}
	return nil
}

func TestCheckpointsFireAtPipelineBreakers(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 16)
	q := g.Query(2)
	p := CanonicalPlan(q, q.AllTablesMask()) // two hash joins
	rc := &recordingController{}
	ctx := &Ctx{DB: db, Q: q, Controller: rc}
	if _, err := Run(ctx, p); err != nil {
		t.Fatal(err)
	}
	// each hash join checkpoints its build (right) side: 2 events
	if len(rc.events) != 2 {
		t.Fatalf("checkpoint events = %d, want 2", len(rc.events))
	}
	for _, e := range rc.events {
		if e.card < 0 {
			t.Fatal("negative cardinality")
		}
	}

	// merge joins checkpoint both sides: 2 joins -> 4 events
	p2 := CanonicalPlan(q, q.AllTablesMask())
	setJoinOps(p2, plan.MergeJoin)
	rc2 := &recordingController{}
	if _, err := Run(&Ctx{DB: db, Q: q, Controller: rc2}, p2); err != nil {
		t.Fatal(err)
	}
	if len(rc2.events) != 4 {
		t.Fatalf("merge join checkpoint events = %d, want 4", len(rc2.events))
	}
}

func TestReoptSignalPropagates(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 17)
	q := g.Query(2)
	p := CanonicalPlan(q, q.AllTablesMask())
	// fail at the first hash build: the rightmost leaf of the lower join
	failMask := p.Left.Right.Tables
	rc := &recordingController{failAt: failMask}
	_, err := Run(&Ctx{DB: db, Q: q, Controller: rc}, p)
	var sig *ReoptSignal
	if !errors.As(err, &sig) {
		t.Fatalf("expected ReoptSignal, got %v", err)
	}
	if sig.Node.Tables != failMask {
		t.Fatalf("signal at %b, want %b", uint32(sig.Node.Tables), uint32(failMask))
	}
	if sig.Error() == "" {
		t.Fatal("signal should render an error message")
	}
}

func TestBudgetEnforced(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 18)
	q := g.Query(3)
	p := CanonicalPlan(q, q.AllTablesMask())
	ctx := &Ctx{DB: db, Q: q, Controller: NopController{}, Budget: 10}
	_, err := Run(ctx, p)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
	if ctx.Work() <= 10 {
		t.Fatal("work counter should exceed budget at failure")
	}
}

func TestMatScanReplay(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 19)
	q := g.Query(2)
	// materialize the lower join's subset, then re-plan using it as a leaf
	sub := query.NewBitSet().Set(0).Set(1)
	if !q.Connected(sub) {
		t.Skip("generated query lacks a connected 0-1 pair")
	}
	ctx := newCtx(db, q)
	rows, err := collect(ctx, CanonicalPlan(q, sub))
	if err != nil {
		t.Fatal(err)
	}
	mat := &plan.Materialized{Tables: sub, Rows: rows}
	leaf := plan.NewMatLeaf(mat)
	restIdx := q.AllTablesMask().Clear(0).Clear(1).First()
	rest := plan.NewLeaf(plan.SeqScan, q.Tables[restIdx], restIdx, q.PredsOn(q.Tables[restIdx]))
	conds := q.JoinsBetween(sub, query.NewBitSet().Set(restIdx))
	if len(conds) == 0 {
		t.Skip("no join between materialized pair and remainder")
	}
	root := plan.NewJoin(plan.HashJoin, leaf, rest, conds)
	got, err := Run(newCtx(db, q), root)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunCollect(newCtx(db, q), CanonicalPlan(q, q.AllTablesMask()))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("materialized resume returned %d, want %d", got, want)
	}
}

func TestOracleMatchesCollectAndMemoizes(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 20)
	q := g.Query(2)
	o := NewTrueCardOracle(db)
	full := q.AllTablesMask()
	want, err := RunCollect(newCtx(db, q), CanonicalPlan(q, full))
	if err != nil {
		t.Fatal(err)
	}
	if got := o.EstimateSubset(q, full); int(got) != want {
		t.Fatalf("oracle = %v, want %d", got, want)
	}
	// memoized second call must agree
	if got := o.EstimateSubset(q, full); int(got) != want {
		t.Fatal("memoized oracle result differs")
	}
	if o.Name() != "oracle" {
		t.Fatal("oracle name")
	}
}

func TestCanonicalPlanConnectedNoCross(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 21)
	for i := 0; i < 20; i++ {
		q := g.Query(4)
		p := CanonicalPlan(q, q.AllTablesMask())
		p.Walk(func(n *plan.Node) {
			if n.Op.IsJoin() && len(n.JoinConds) == 0 {
				t.Fatalf("canonical plan contains a cross join for %s", q.SQL())
			}
		})
		if p.NumNodes() != 2*len(q.Tables)-1 {
			t.Fatalf("canonical plan has %d nodes for %d tables", p.NumNodes(), len(q.Tables))
		}
	}
}

func TestHashKeyDistinguishesOrder(t *testing.T) {
	a := hashKey([]int64{1, 2})
	b := hashKey([]int64{2, 1})
	if a == b {
		t.Fatal("hashKey should be order-sensitive")
	}
}
