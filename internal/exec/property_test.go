package exec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/testutil"
	"github.com/lpce-db/lpce/internal/workload"
)

// Property: joinMerge places every column of both inputs at the offsets
// the output layout assigns, for arbitrary left/right partitions of a
// query's tables.
func TestJoinMergeLayoutProperty(t *testing.T) {
	db := testutil.TinyDB()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := workload.NewGenerator(db, seed)
		q := g.Query(2 + rng.Intn(3))
		full := q.AllTablesMask()
		// random non-empty bipartition
		var left query.BitSet
		for _, i := range full.Indices() {
			if rng.Intn(2) == 0 {
				left = left.Set(i)
			}
		}
		if left == 0 || left == full {
			return true // degenerate split, skip
		}
		right := full &^ left

		leftLayout := plan.NewLayout(q, left)
		rightLayout := plan.NewLayout(q, right)
		outLayout := plan.NewLayout(q, full)

		lt := make(Tuple, leftLayout.Width())
		rt := make(Tuple, rightLayout.Width())
		for i := range lt {
			lt[i] = rng.Int63n(1000)
		}
		for i := range rt {
			rt[i] = rng.Int63n(1000) + 10000
		}
		m := newJoinMerge(&Ctx{Q: q}, left, right)
		out := m.merge(nil, lt, rt)
		if len(out) != outLayout.Width() {
			return false
		}
		// every column value must survive at its out-layout offset
		for _, tab := range q.Tables {
			ti := q.TableIndex(tab)
			for _, col := range tab.Columns {
				var src Tuple
				var srcOff int
				if left.Has(ti) {
					src, srcOff = lt, leftLayout.ColOffset(col)
				} else {
					src, srcOff = rt, rightLayout.ColOffset(col)
				}
				if out[outLayout.ColOffset(col)] != src[srcOff] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the canonical plan of any connected subset covers exactly that
// subset, has 2k−1 nodes, and every join condition it applies comes from
// the query.
func TestCanonicalPlanSubsetProperty(t *testing.T) {
	db := testutil.TinyDB()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := workload.NewGenerator(db, seed)
		q := g.Query(3 + rng.Intn(3))
		full := q.AllTablesMask()
		// random connected subset: grow from a random start
		idxs := full.Indices()
		mask := query.NewBitSet().Set(idxs[rng.Intn(len(idxs))])
		for grow := 0; grow < len(idxs); grow++ {
			var cands []int
			for _, i := range idxs {
				if mask.Has(i) {
					continue
				}
				if len(q.JoinsBetween(mask, query.NewBitSet().Set(i))) > 0 {
					cands = append(cands, i)
				}
			}
			if len(cands) == 0 || rng.Intn(3) == 0 {
				break
			}
			mask = mask.Set(cands[rng.Intn(len(cands))])
		}
		p := CanonicalPlan(q, mask)
		if p.Tables != mask {
			return false
		}
		if p.NumNodes() != 2*mask.Count()-1 {
			return false
		}
		valid := true
		known := map[string]bool{}
		for _, j := range q.Joins {
			known[j.String()] = true
		}
		p.Walk(func(n *plan.Node) {
			for _, j := range n.JoinConds {
				if !known[j.String()] {
					valid = false
				}
			}
		})
		return valid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: execution work is monotone in the work already performed —
// charging can only move the counter forward, and budget violations are
// detected exactly when exceeded.
func TestWorkBudgetMonotoneProperty(t *testing.T) {
	f := func(charges []uint8, budget uint16) bool {
		ctx := &Ctx{Budget: int64(budget)}
		var sum int64
		for _, c := range charges {
			err := ctx.charge(int64(c))
			sum += int64(c)
			if (err != nil) != (ctx.Budget > 0 && sum > ctx.Budget) {
				return false
			}
			if ctx.Work() != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
